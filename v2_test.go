package lam

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// v2Fixture trains a hybrid model and an extra-trees pipeline on the
// stencil-grid workload and returns them with a held-out matrix.
func v2Fixture(t *testing.T) (*HybridModel, Regressor, [][]float64) {
	t.Helper()
	m := BlueWaters()
	ds, err := BuildDataset("stencil-grid", m, 42)
	if err != nil {
		t.Fatal(err)
	}
	am, err := AnalyticalModelFor("stencil-grid", m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	train, test, err := ds.SampleFraction(0.02, rng)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := TrainHybridCtx(context.Background(), train, am, HybridConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	et := NewExtraTrees(30, 5)
	if err := et.Fit(train.X, train.Y); err != nil {
		t.Fatal(err)
	}
	return hy, et, test.X[:40]
}

// TestPredictorAdaptersBitIdentical checks both adapters agree exactly
// with the v1 call paths.
func TestPredictorAdaptersBitIdentical(t *testing.T) {
	hy, et, X := v2Fixture(t)
	ctx := context.Background()

	var hp Predictor = HybridPredictor(hy)
	got, err := hp.PredictBatch(ctx, X)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		want, err := hy.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("hybrid row %d: %v != %v", i, got[i], want)
		}
	}

	var mp Predictor = MLPredictor(et)
	got, err = mp.PredictBatch(ctx, X)
	if err != nil {
		t.Fatal(err)
	}
	seq := PredictBatch(et, X)
	for i := range X {
		if got[i] != seq[i] {
			t.Fatalf("ml row %d: %v != %v", i, got[i], seq[i])
		}
	}
}

// TestPredictorTypedErrors covers ErrNotFitted, ErrDimension and
// ErrCancelled on the adapter paths.
func TestPredictorTypedErrors(t *testing.T) {
	hy, et, X := v2Fixture(t)
	ctx := context.Background()

	if _, err := MLPredictor(NewExtraTrees(5, 1)).Predict(ctx, X[0]); !errors.Is(err, ErrNotFitted) {
		t.Fatalf("unfitted: got %v, want ErrNotFitted", err)
	}
	if _, err := MLPredictor(et).Predict(ctx, []float64{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("bad arity (ml): got %v, want ErrDimension", err)
	}
	if _, err := HybridPredictor(hy).Predict(ctx, []float64{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("bad arity (hybrid): got %v, want ErrDimension", err)
	}

	// Wrong arity through the free function must be a typed error, not
	// the estimator's index-out-of-range panic in a worker goroutine.
	if _, err := PredictBatchCtx(ctx, et, [][]float64{{1}}); !errors.Is(err, ErrDimension) {
		t.Fatalf("bad arity (PredictBatchCtx): got %v, want ErrDimension", err)
	}
	if _, err := MLPredictor(et).PredictBatch(ctx, [][]float64{X[0], {1}}); !errors.Is(err, ErrDimension) {
		t.Fatalf("bad arity (adapter batch): got %v, want ErrDimension", err)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := HybridPredictor(hy).PredictBatch(cancelled, X); !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled batch: got %v, want ErrCancelled", err)
	}
	if _, err := FigureCtx(cancelled, "fig5", FigureOptions{Reps: 1, Trees: 5}); !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled figure: got %v, want ErrCancelled wrapping context.Canceled", err)
	}
}

// TestRegistryThroughFacade round-trips a hybrid model through
// OpenRegistry and checks the loaded Predictor is bit-identical.
func TestRegistryThroughFacade(t *testing.T) {
	hy, _, X := v2Fixture(t)
	ctx := context.Background()

	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta, err := reg.SaveHybrid(hy, ModelMeta{
		Name: "grid", Workload: "stencil-grid", Machine: "bluewaters",
	})
	if err != nil {
		t.Fatal(err)
	}
	lm, err := reg.Load(meta.Name, 0)
	if err != nil {
		t.Fatal(err)
	}
	var p Predictor = lm
	got, err := p.PredictBatch(ctx, X)
	if err != nil {
		t.Fatal(err)
	}
	want, err := HybridPredictor(hy).PredictBatch(ctx, X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: registry %v != library %v", i, got[i], want[i])
		}
	}
	if _, err := reg.Load("missing", 0); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("missing model: got %v, want ErrUnknownModel", err)
	}
}

// TestUnknownSentinelsOnFacade checks MachineByName/BuildDataset/Figure
// wrap their sentinels.
func TestUnknownSentinelsOnFacade(t *testing.T) {
	if _, err := MachineByName("nope"); !errors.Is(err, ErrUnknownMachine) {
		t.Fatalf("machine: got %v, want ErrUnknownMachine", err)
	}
	if _, err := BuildDataset("nope", BlueWaters(), 1); !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("workload: got %v, want ErrUnknownWorkload", err)
	}
	if _, err := Figure("nope", FigureOptions{}); !errors.Is(err, ErrUnknownFigure) {
		t.Fatalf("figure: got %v, want ErrUnknownFigure", err)
	}
}

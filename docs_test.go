package lam

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links/images and captures the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinksResolve walks every markdown file in the repository root
// and docs/ and asserts that each intra-repo link target exists — the
// docs plane's equivalent of a compile check. External URLs and pure
// anchors are skipped; `path#anchor` links are checked for the path
// half.
func TestDocLinksResolve(t *testing.T) {
	var files []string
	for _, glob := range []string{"*.md", "docs/*.md"} {
		matches, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, matches...)
	}
	if len(files) < 5 {
		t.Fatalf("found only %d markdown files — the glob set is broken", len(files))
	}
	for _, file := range files {
		if filepath.Base(file) == "SNIPPETS.md" {
			// Verbatim exemplar excerpts from other repositories; their
			// internal links point into those repos, not this one.
			continue
		}
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") ||
				strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not resolve (%v)", file, m[1], err)
			}
		}
	}
}

package lam

// The context-first v2 API. Everything here takes a context.Context,
// returns typed sentinel errors, and is what new code should call; the
// original free functions in lam.go remain as thin wrappers (marked
// Deprecated) so existing programs keep compiling. Three pieces:
//
//   - Predictor, the unified prediction interface implemented by
//     hybrid models (HybridPredictor), ML pipelines and every other
//     fitted regressor (MLPredictor), and registry-loaded models
//     (Registry.Load) — one shape for the library, the experiment
//     harness and the lam-serve HTTP service;
//   - the sentinel errors (ErrCancelled, ErrUnknownMachine, …) every
//     layer wraps, matchable with errors.Is;
//   - Registry, versioned on-disk model storage with metadata, the
//     storage backend of cmd/lam-serve.
//
// Cancellation is prompt everywhere: contexts are re-checked between
// independent units (trees, trials, folds, prediction rows), so a
// cancelled sweep or fit returns within one unit's duration, and the
// returned error wraps both ErrCancelled and ctx.Err().

import (
	"context"

	"lam/internal/artifact"
	"lam/internal/experiments"
	"lam/internal/hybrid"
	"lam/internal/lamerr"
	"lam/internal/ml"
	"lam/internal/registry"
)

// Typed sentinel errors. Every error returned by this module that
// represents one of these failure classes wraps the corresponding
// sentinel; match with errors.Is.
var (
	// ErrCancelled class-tags context cancellation; such errors also
	// wrap the concrete ctx.Err().
	ErrCancelled = lamerr.ErrCancelled
	// ErrUnknownMachine tags unknown machine-preset names.
	ErrUnknownMachine = lamerr.ErrUnknownMachine
	// ErrUnknownWorkload tags unknown canonical dataset names.
	ErrUnknownWorkload = lamerr.ErrUnknownWorkload
	// ErrUnknownFigure tags figure ids outside FigureIDs().
	ErrUnknownFigure = lamerr.ErrUnknownFigure
	// ErrNotFitted tags predictions against untrained models.
	ErrNotFitted = lamerr.ErrNotFitted
	// ErrDimension tags feature vectors of the wrong arity.
	ErrDimension = lamerr.ErrDimension
	// ErrUnknownModel tags registry names/versions that do not exist.
	ErrUnknownModel = lamerr.ErrUnknownModel
	// ErrCorruptArtifact tags model artifacts that fail integrity or
	// structural validation on load (bad magic, truncation, checksum
	// mismatch); corrupt artifacts always error, never panic.
	ErrCorruptArtifact = lamerr.ErrCorruptArtifact
)

// Predictor is the unified v2 prediction interface: context-first,
// error-returning, batch-capable. Hybrid models, fitted ML regressors
// and registry-loaded models all serve through it, and the batch path
// is bit-identical to sequential Predict calls for every worker count.
type Predictor interface {
	// Predict scores one feature vector.
	Predict(ctx context.Context, x []float64) (float64, error)
	// PredictBatch scores every row of X, with prompt cancellation
	// between rows.
	PredictBatch(ctx context.Context, X [][]float64) ([]float64, error)
}

// HybridPredictor adapts a trained hybrid model to the Predictor
// interface.
func HybridPredictor(m *HybridModel) Predictor { return hybridPredictor{m} }

type hybridPredictor struct{ m *hybrid.Model }

func (p hybridPredictor) Predict(ctx context.Context, x []float64) (float64, error) {
	return p.m.PredictCtx(ctx, x)
}

func (p hybridPredictor) PredictBatch(ctx context.Context, X [][]float64) ([]float64, error) {
	return p.m.PredictBatchCtx(ctx, X)
}

// MLPredictor adapts a fitted ML regressor (pipelines, forests, any
// Regressor) to the Predictor interface. Unlike Regressor.Predict,
// which panics on misuse, the adapter returns ErrNotFitted and
// ErrDimension.
func MLPredictor(r Regressor) Predictor { return regressorPredictor{r} }

type regressorPredictor struct{ r ml.Regressor }

func (p regressorPredictor) Predict(ctx context.Context, x []float64) (float64, error) {
	return ml.PredictCtx(ctx, p.r, x)
}

func (p regressorPredictor) PredictBatch(ctx context.Context, X [][]float64) ([]float64, error) {
	return ml.PredictBatchCtx(ctx, p.r, X, 0)
}

// Registry is versioned on-disk model storage: each save allocates a
// new immutable version holding the serialised artifact plus metadata
// (workload, machine, train size, test MAPE, created-at). It unifies
// the v1 SaveRegressor/LoadRegressor and HybridModel.Save/LoadHybrid
// paths and backs the lam-serve prediction service.
type Registry = registry.Registry

// ModelMeta describes one stored model version.
type ModelMeta = registry.Meta

// RegistryModel is a loaded registry version; it implements Predictor.
type RegistryModel = registry.Model

// SaveOptions tune how a registry save encodes its artifact; the zero
// value writes the default lamb1 flat binary format.
type SaveOptions = registry.SaveOptions

// Artifact format names for SaveOptions.Format and Registry.Convert.
// FormatLAMB1 is the flat binary default (instant cold start: one file
// read, no per-node decode); FormatJSONV1 is the legacy JSON encoding,
// readable by every build of this module.
const (
	FormatLAMB1  = artifact.FormatLAMB1
	FormatJSONV1 = artifact.FormatJSONV1
)

// OpenRegistry opens (creating if necessary) a model registry rooted
// at dir.
func OpenRegistry(dir string) (*Registry, error) { return registry.Open(dir) }

// ValidModelName reports whether name is a legal registry model name;
// check it before a long training run that ends in a registry save.
func ValidModelName(name string) bool { return registry.ValidName(name) }

// TrainHybridCtx is TrainHybrid with prompt cancellation: the context
// is checked between analytical-model scores and threaded through the
// ML component's tree fits.
func TrainHybridCtx(ctx context.Context, train *Dataset, am AnalyticalModel, cfg HybridConfig) (*HybridModel, error) {
	return hybrid.TrainCtx(ctx, train, am, cfg)
}

// FitCtx fits a regressor with prompt cancellation when the estimator
// supports it (every ensemble in this module does); otherwise the
// context is checked once up front.
func FitCtx(ctx context.Context, r Regressor, X [][]float64, y []float64) error {
	return ml.FitCtx(ctx, r, X, y)
}

// PredictBatchCtx applies a fitted regressor to every row of X with
// prompt cancellation between row blocks; the output is bit-identical
// to PredictBatch.
func PredictBatchCtx(ctx context.Context, r Regressor, X [][]float64) ([]float64, error) {
	return ml.PredictBatchCtx(ctx, r, X, 0)
}

// PredictBatchIntoCtx is PredictBatchCtx writing into a caller-owned
// slice (len(out) == len(X)) instead of allocating — the serve-grade
// hot path: tree-based estimators run compiled, allocation-free flat
// node-table walks (see README §Inference internals).
func PredictBatchIntoCtx(ctx context.Context, r Regressor, X [][]float64, out []float64) error {
	return ml.PredictBatchIntoCtx(ctx, r, X, out, 0)
}

// AnalyticalMAPECtx is AnalyticalMAPE with prompt cancellation between
// rows.
func AnalyticalMAPECtx(ctx context.Context, ds *Dataset, am AnalyticalModel) (float64, error) {
	return hybrid.AnalyticalMAPECtx(ctx, ds, am)
}

// FigureCtx is Figure with prompt cancellation between the sweep's
// (fraction, repetition) trials: a cancelled figure returns a typed
// error (wrapping ErrCancelled and ctx.Err()) within one trial's
// duration.
func FigureCtx(ctx context.Context, id string, opts FigureOptions) (*Report, error) {
	return experiments.RunCtx(ctx, id, opts)
}

// FiguresCtx is Figures with prompt cancellation threaded through
// every figure's sweep.
func FiguresCtx(ctx context.Context, ids []string, opts FigureOptions) ([]*Report, error) {
	return experiments.RunManyCtx(ctx, ids, opts)
}

// NoiseSensitivityCtx is NoiseSensitivity with prompt cancellation.
func NoiseSensitivityCtx(ctx context.Context, opts FigureOptions, noiseLevels []float64) (*Report, error) {
	return experiments.NoiseSensitivityCtx(ctx, opts, noiseLevels)
}

// HardwareTransferCtx is HardwareTransfer with prompt cancellation.
func HardwareTransferCtx(ctx context.Context, opts FigureOptions, target *Machine, budgets []float64) (*Report, error) {
	return experiments.HardwareTransferCtx(ctx, opts, target, budgets)
}

package lam

import (
	"math/rand"
	"testing"
)

func TestMachinePresets(t *testing.T) {
	names := Machines()
	if len(names) < 3 {
		t.Fatalf("machines = %v, want >= 3 presets", names)
	}
	for _, n := range names {
		m, err := MachineByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", n, err)
		}
	}
	if _, err := MachineByName("nope"); err == nil {
		t.Error("expected error for unknown machine")
	}
	if BlueWaters().Name == "" {
		t.Error("BlueWaters preset must be named")
	}
}

func TestWorkloadsBuildAndHaveAMs(t *testing.T) {
	m := BlueWaters()
	for _, w := range Workloads() {
		if w == "fmm" || w == "stencil-blocking" {
			continue // exercised in the end-to-end test below; slow here
		}
		ds, err := BuildDataset(w, m, 1)
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if ds.Len() == 0 {
			t.Errorf("%s: empty dataset", w)
		}
		am, err := AnalyticalModelFor(w, m)
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if _, err := am.Predict(ds.X[0]); err != nil {
			t.Errorf("%s: AM predict: %v", w, err)
		}
	}
	if _, err := BuildDataset("nope", m, 1); err == nil {
		t.Error("expected error for unknown workload")
	}
	if _, err := AnalyticalModelFor("nope", m); err == nil {
		t.Error("expected error for unknown workload AM")
	}
}

func TestEndToEndHybridBeatsPureMLOnFig6Workload(t *testing.T) {
	// The paper's headline claim, end to end through the facade: on
	// the blocking dataset at 2% training, the hybrid model beats pure
	// extra trees by a wide margin.
	m := BlueWaters()
	ds, err := BuildDataset("stencil-blocking", m, 7)
	if err != nil {
		t.Fatal(err)
	}
	am, err := AnalyticalModelFor("stencil-blocking", m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	train, test, err := ds.SampleFraction(0.02, rng)
	if err != nil {
		t.Fatal(err)
	}

	hy, err := TrainHybrid(train, am, HybridConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hyMAPE, err := hy.MAPE(test)
	if err != nil {
		t.Fatal(err)
	}

	et := NewExtraTrees(100, 1)
	if err := et.Fit(train.X, train.Y); err != nil {
		t.Fatal(err)
	}
	etMAPE := MAPE(test.Y, PredictBatch(et, test.X))

	t.Logf("fig6 @2%%: hybrid %.1f%%, extra trees %.1f%%", hyMAPE, etMAPE)
	if hyMAPE >= etMAPE/2 {
		t.Errorf("hybrid (%.1f%%) should at least halve pure-ML error (%.1f%%)", hyMAPE, etMAPE)
	}
	amMAPE, err := AnalyticalMAPE(test, am)
	if err != nil {
		t.Fatal(err)
	}
	if hyMAPE >= amMAPE {
		t.Errorf("hybrid (%.1f%%) should beat the raw AM (%.1f%%)", hyMAPE, amMAPE)
	}
}

func TestFigureRunnerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow")
	}
	r, err := Figure("fig5", FigureOptions{Seed: 1, Reps: 2, Trees: 20})
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "fig5" || len(r.Series) != 2 {
		t.Errorf("unexpected report shape: %+v", r)
	}
	if _, err := Figure("nope", FigureOptions{}); err == nil {
		t.Error("expected error for unknown figure")
	}
	if len(FigureIDs()) != 6 {
		t.Errorf("FigureIDs = %v, want 6 figures", FigureIDs())
	}
}

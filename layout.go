package lam

import "lam/internal/ml"

// Layout selects the traversal layout of compiled tree ensembles — the
// raw-speed knob of the inference plane. See internal/ml's Layout for
// the full taxonomy; in short:
//
//   - LayoutImplicitLeft (default): branchless descent over the
//     canonical implicit-left preorder table. Exact.
//   - LayoutStandard: the explicit two-child branchy walk, kept as the
//     benchmarking baseline. Exact.
//   - LayoutLevelOrder: depth-bucketed level-order table for tree-major
//     batch striding. Exact.
//   - LayoutQuant16 / LayoutQuant8: opt-in quantized node tables, ~3.5-4x
//     smaller, approximate within one quantization step per split.
type Layout = ml.Layout

// Re-exported layout constants; see Layout.
const (
	LayoutDefault      = ml.LayoutDefault
	LayoutImplicitLeft = ml.LayoutImplicitLeft
	LayoutStandard     = ml.LayoutStandard
	LayoutLevelOrder   = ml.LayoutLevelOrder
	LayoutQuant16      = ml.LayoutQuant16
	LayoutQuant8       = ml.LayoutQuant8
)

// ParseLayout parses a -layout flag value: default, implicit-left
// (alias branchless), standard, level-order, quant16, quant8.
func ParseLayout(s string) (Layout, error) { return ml.ParseLayout(s) }

// SetDefaultLayout sets the process-default traversal layout applied to
// every subsequently compiled ensemble (fits and artifact loads alike).
// LayoutDefault restores LayoutImplicitLeft.
func SetDefaultLayout(l Layout) { ml.SetDefaultLayout(l) }

// DefaultLayout returns the current process-default layout.
func DefaultLayout() Layout { return ml.DefaultLayout() }

// SetLayoutOf applies a traversal layout to a fitted estimator's
// compiled tree plane(s), recursing through compound estimators. Not
// concurrency-safe with prediction: apply right after fitting/loading,
// before the model is shared.
func SetLayoutOf(r Regressor, l Layout) error { return ml.SetLayoutOf(r, l) }

// LayoutOf reports the traversal layout of a fitted estimator's
// compiled tree plane, and whether it has one.
func LayoutOf(r Regressor) (Layout, bool) { return ml.LayoutOf(r) }

// Quantize converts a fitted tree-based regressor into a frozen
// serving-only model with bits-wide (8 or 16) integer thresholds and
// float32 leaves — a ~3.5-4x smaller node table. The result is
// approximate (within one quantization step per split) and cannot be
// refitted; publish it as a new artifact version, never over the exact
// model. The source model is not modified.
func Quantize(r Regressor, bits int) (Regressor, error) { return ml.Quantize(r, bits) }

// SetBatchTreeMajorThreshold retunes the node-count threshold above
// which batch prediction switches from row-major to tree-major
// traversal. n < 1 restores the built-in default (4096). The switch is
// bit-identical either way; this is purely a cache-behaviour knob.
func SetBatchTreeMajorThreshold(n int) { ml.SetBatchTreeMajorThreshold(n) }

// BatchTreeMajorThreshold returns the current switchover threshold.
func BatchTreeMajorThreshold() int { return ml.BatchTreeMajorThreshold() }

// Benchmark harness: one benchmark per figure of the paper's
// evaluation, each reporting the regenerated MAPE values as custom
// metrics (mape_<series>_<fraction>), plus the ablation benches
// EXPERIMENTS.md §Ablations catalogues and micro-benchmarks of the
// substrates.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The figure benches use reduced repetitions/ensemble sizes so the full
// suite completes in minutes; cmd/lam-bench runs the full-fidelity
// versions.
package lam

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lam/internal/analytical"
	"lam/internal/cachesim"
	"lam/internal/dataset"
	"lam/internal/fmm"
	"lam/internal/hybrid"
	"lam/internal/machine"
	"lam/internal/ml"
	"lam/internal/stencil"
	"lam/internal/trace"
)

// benchOpts are the reduced-fidelity settings shared by the figure
// benches.
func benchOpts() FigureOptions {
	return FigureOptions{Seed: 42, Reps: 3, Trees: 40}
}

// benchFigure regenerates one figure per iteration and reports the
// final series values as metrics.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	var rep *Report
	for i := 0; i < b.N; i++ {
		r, err := Figure(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		rep = r
	}
	for _, s := range rep.Series {
		label := strings.ToLower(strings.Fields(s.Label)[0])
		for i, f := range s.Fractions {
			b.ReportMetric(s.MeanMAPE[i], fmt.Sprintf("mape_%s_%g%%", label, f*100))
		}
	}
}

// BenchmarkFig3AStencilML regenerates Fig. 3(A): DT vs extra trees vs
// random forests on the stencil blocking dataset.
func BenchmarkFig3AStencilML(b *testing.B) { benchFigure(b, "fig3a") }

// BenchmarkFig3BFMMML regenerates Fig. 3(B): the same comparison on the
// FMM dataset.
func BenchmarkFig3BFMMML(b *testing.B) { benchFigure(b, "fig3b") }

// BenchmarkFig5GridHybrid regenerates Fig. 5: accurate AM, hybrid at
// 1-4% vs extra trees at 10-20%.
func BenchmarkFig5GridHybrid(b *testing.B) { benchFigure(b, "fig5") }

// BenchmarkFig6BlockingHybrid regenerates Fig. 6: inaccurate blocking
// AM still halves the pure-ML error.
func BenchmarkFig6BlockingHybrid(b *testing.B) { benchFigure(b, "fig6") }

// BenchmarkFig7ThreadsHybrid regenerates Fig. 7: serial AM coupled with
// a multithreaded workload (stacking only).
func BenchmarkFig7ThreadsHybrid(b *testing.B) { benchFigure(b, "fig7") }

// BenchmarkFig8FMMHybrid regenerates Fig. 8: the FMM hybrid model.
func BenchmarkFig8FMMHybrid(b *testing.B) { benchFigure(b, "fig8") }

// --- Ablations (EXPERIMENTS.md §Ablations) ---

// ablationSetup builds the Fig. 6 workload split used by several
// ablations: blocking dataset, 2% training.
func ablationSetup(b *testing.B) (train, test *Dataset, am AnalyticalModel) {
	b.Helper()
	m := BlueWaters()
	ds, err := BuildDataset("stencil-blocking", m, 42)
	if err != nil {
		b.Fatal(err)
	}
	am, err = AnalyticalModelFor("stencil-blocking", m)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	train, test, err = ds.SampleFraction(0.02, rng)
	if err != nil {
		b.Fatal(err)
	}
	return train, test, am
}

// BenchmarkAblationHybridModes compares the paper's feature stacking
// against residual and ratio coupling (the Didona et al. alternatives).
func BenchmarkAblationHybridModes(b *testing.B) {
	train, test, am := ablationSetup(b)
	modes := []hybrid.Mode{hybrid.StackMode, hybrid.ResidualMode, hybrid.RatioMode}
	results := map[hybrid.Mode]float64{}
	for i := 0; i < b.N; i++ {
		for _, mode := range modes {
			hm, err := TrainHybrid(train, am, HybridConfig{Mode: mode, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			mape, err := hm.MAPE(test)
			if err != nil {
				b.Fatal(err)
			}
			results[mode] = mape
		}
	}
	for _, mode := range modes {
		b.ReportMetric(results[mode], "mape_"+mode.String())
	}
}

// BenchmarkAblationAggregation measures the bagging-style aggregation
// of analytical and stacked predictions on the accurate-AM workload
// (Fig. 5), where the paper says it helps, and reports both variants.
func BenchmarkAblationAggregation(b *testing.B) {
	m := BlueWaters()
	ds, err := BuildDataset("stencil-grid", m, 42)
	if err != nil {
		b.Fatal(err)
	}
	am, err := AnalyticalModelFor("stencil-grid", m)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	train, test, err := ds.SampleFraction(0.02, rng)
	if err != nil {
		b.Fatal(err)
	}
	var plain, agg float64
	for i := 0; i < b.N; i++ {
		hm, err := TrainHybrid(train, am, HybridConfig{Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		plain, err = hm.MAPE(test)
		if err != nil {
			b.Fatal(err)
		}
		ha, err := TrainHybrid(train, am, HybridConfig{Seed: 3, Aggregate: true})
		if err != nil {
			b.Fatal(err)
		}
		agg, err = ha.MAPE(test)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(plain, "mape_stack_only")
	b.ReportMetric(agg, "mape_stack+bagging")
}

// BenchmarkAblationAMCalibration quantifies the effect of analytical
// model accuracy on the hybrid (Section VII.A's question): untuned AM
// vs an AM whose global constant is calibrated on the training set.
func BenchmarkAblationAMCalibration(b *testing.B) {
	train, test, amUntuned := ablationSetup(b)
	// Calibrate a single multiplicative constant on the training set —
	// the "tuning" the paper deliberately skips.
	sum, n := 0.0, 0
	for i, x := range train.X {
		p, err := amUntuned.Predict(x)
		if err != nil {
			b.Fatal(err)
		}
		if p > 0 {
			sum += train.Y[i] / p
			n++
		}
	}
	scale := sum / float64(n)
	amTuned := AnalyticalFunc(func(x []float64) (float64, error) {
		p, err := amUntuned.Predict(x)
		return p * scale, err
	})

	var untuned, tuned, amU, amT float64
	for i := 0; i < b.N; i++ {
		h1, err := TrainHybrid(train, amUntuned, HybridConfig{Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		untuned, _ = h1.MAPE(test)
		h2, err := TrainHybrid(train, amTuned, HybridConfig{Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		tuned, _ = h2.MAPE(test)
		amU, _ = AnalyticalMAPE(test, amUntuned)
		amT, _ = AnalyticalMAPE(test, amTuned)
	}
	b.ReportMetric(amU, "mape_am_untuned")
	b.ReportMetric(amT, "mape_am_tuned")
	b.ReportMetric(untuned, "mape_hybrid_untunedAM")
	b.ReportMetric(tuned, "mape_hybrid_tunedAM")
}

// BenchmarkAblationMissModelVsCacheSim validates the paper's closed-form
// cache-miss model (Section IV.A) against the trace-driven simulator:
// mean relative error of the modelled L1 misses over a grid sweep.
func BenchmarkAblationMissModelVsCacheSim(b *testing.B) {
	m := machine.BlueWatersXE6()
	model := &analytical.StencilModel{Machine: m, WriteAllocate: true}
	var meanRelErr float64
	for i := 0; i < b.N; i++ {
		totalErr, cnt := 0.0, 0
		for _, dims := range [][3]int{{32, 32, 8}, {64, 48, 8}, {96, 64, 4}} {
			h, err := cachesim.FromMachine(m)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := trace.Stencil(trace.StencilConfig{I: dims[0], J: dims[1], K: dims[2]},
				func(a trace.Access) { h.Access(a.Addr) }); err != nil {
				b.Fatal(err)
			}
			simMisses := float64(h.Levels()[0].Misses())
			pred, err := model.Misses(analytical.StencilParams{I: dims[0], J: dims[1], K: dims[2]})
			if err != nil {
				b.Fatal(err)
			}
			rel := (pred[0] - simMisses) / simMisses
			if rel < 0 {
				rel = -rel
			}
			totalErr += rel
			cnt++
		}
		meanRelErr = totalErr / float64(cnt)
	}
	b.ReportMetric(meanRelErr*100, "l1_miss_model_err_%")
}

// --- Substrate micro-benchmarks ---

// BenchmarkStencilKernelNaive measures the naive serial kernel.
func BenchmarkStencilKernelNaive(b *testing.B) {
	benchStencil(b, stencil.Config{})
}

// BenchmarkStencilKernelBlocked measures the spatially blocked kernel.
func BenchmarkStencilKernelBlocked(b *testing.B) {
	benchStencil(b, stencil.Config{BI: 32, BJ: 8, BK: 8})
}

// BenchmarkStencilKernelUnrolled measures the unrolled kernel.
func BenchmarkStencilKernelUnrolled(b *testing.B) {
	benchStencil(b, stencil.Config{Unroll: 4})
}

// BenchmarkStencilKernelParallel measures the multithreaded kernel.
func BenchmarkStencilKernelParallel(b *testing.B) {
	benchStencil(b, stencil.Config{Threads: 4})
}

func benchStencil(b *testing.B, cfg stencil.Config) {
	b.Helper()
	src, err := stencil.NewGrid(96, 96, 96)
	if err != nil {
		b.Fatal(err)
	}
	src.Fill(func(i, j, k int) float64 { return float64(i+j+k) * 0.01 })
	dst := src.Clone()
	cfg.TimeSteps = 1
	b.SetBytes(96 * 96 * 96 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stencil.Run(src, dst, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFMMEvaluate measures the full FMM pipeline.
func BenchmarkFMMEvaluate(b *testing.B) {
	ps := fmm.UniformCube(4096, 1)
	run := make([]fmm.Particle, len(ps))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(run, ps)
		if _, err := fmm.Evaluate(run, fmm.Config{Order: 4, LeafCap: 64}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFMMDirect measures the O(N²) baseline for the same N.
func BenchmarkFMMDirect(b *testing.B) {
	ps := fmm.UniformCube(4096, 1)
	run := make([]fmm.Particle, len(ps))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(run, ps)
		fmm.Direct(run, 0)
	}
}

// BenchmarkExtraTreesFit measures ensemble training on a
// figure-representative dataset size.
func BenchmarkExtraTreesFit(b *testing.B) {
	ds := benchTrainingSet(b, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		et := ml.NewExtraTrees(50, int64(i))
		if err := et.Fit(ds.X, ds.Y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtraTreesPredict measures single-vector inference.
func BenchmarkExtraTreesPredict(b *testing.B) {
	ds := benchTrainingSet(b, 300)
	et := ml.NewExtraTrees(50, 1)
	if err := et.Fit(ds.X, ds.Y); err != nil {
		b.Fatal(err)
	}
	x := ds.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = et.Predict(x)
	}
}

// BenchmarkHybridTrain measures end-to-end hybrid training at the
// paper's typical training-set size.
func BenchmarkHybridTrain(b *testing.B) {
	train, _, am := ablationSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainHybrid(train, am, HybridConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Worker-pool parallelism: sequential vs parallel fit/predict ---
//
// The *Sequential/*Parallel pairs document the speedup of the shared
// worker pool (internal/parallel) on multi-core hardware; on one core
// they cost the same. Predictions are bit-identical in every case
// (asserted by the determinism tests in internal/ml and
// internal/experiments).

func benchForestFit(b *testing.B, workers int) {
	ds := benchTrainingSet(b, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		et := ml.NewExtraTrees(100, 7)
		et.Workers = workers
		if err := et.Fit(ds.X, ds.Y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestFitSequential fits a 100-tree extra-trees ensemble on
// one worker.
func BenchmarkForestFitSequential(b *testing.B) { benchForestFit(b, 1) }

// BenchmarkForestFitParallel fits the same ensemble on the full worker
// pool (GOMAXPROCS workers).
func BenchmarkForestFitParallel(b *testing.B) { benchForestFit(b, 0) }

func benchBaggingFit(b *testing.B, workers int) {
	ds := benchTrainingSet(b, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bag := &ml.Bagging{
			NewBase: func() ml.Regressor {
				return ml.NewDecisionTree(ml.TreeConfig{Seed: 3})
			},
			N:       50,
			Seed:    7,
			Workers: workers,
		}
		if err := bag.Fit(ds.X, ds.Y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaggingFitSequential fits a 50-member bagging ensemble on
// one worker.
func BenchmarkBaggingFitSequential(b *testing.B) { benchBaggingFit(b, 1) }

// BenchmarkBaggingFitParallel fits the same ensemble on the full pool.
func BenchmarkBaggingFitParallel(b *testing.B) { benchBaggingFit(b, 0) }

func benchForestPredictBatch(b *testing.B, workers int) {
	ds := benchTrainingSet(b, 400)
	et := ml.NewExtraTrees(100, 7)
	et.Workers = workers
	if err := et.Fit(ds.X, ds.Y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = et.PredictBatch(ds.X)
	}
}

// BenchmarkForestPredictBatchSequential scores 400 rows on one worker.
func BenchmarkForestPredictBatchSequential(b *testing.B) { benchForestPredictBatch(b, 1) }

// BenchmarkForestPredictBatchParallel scores the same rows on the pool.
func BenchmarkForestPredictBatchParallel(b *testing.B) { benchForestPredictBatch(b, 0) }

func benchCrossVal(b *testing.B, workers int) {
	ds := benchTrainingSet(b, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := ml.CrossValScoreWorkers(func() ml.Regressor {
			et := ml.NewExtraTrees(20, 5)
			et.Workers = 1 // isolate the fold-level fan-out
			return et
		}, ds.X, ds.Y, 5, 9, ml.MAPE, workers)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossValSequential evaluates 5 folds one after another.
func BenchmarkCrossValSequential(b *testing.B) { benchCrossVal(b, 1) }

// BenchmarkCrossValParallel evaluates the folds on the worker pool.
func BenchmarkCrossValParallel(b *testing.B) { benchCrossVal(b, 0) }

// --- v2 Predictor interface overhead ---
//
// The pair below documents that routing batch prediction through the
// context-first Predictor interface (the path lam-serve and the
// registry use) adds no measurable overhead over calling
// ml.PredictBatch directly: both funnel into the same block loop, and
// the extra work is one fitted/arity check per row plus a context poll
// per block.

// benchPredictorSetup fits a 100-tree extra-trees pipeline on 400 rows
// and returns it with its training matrix.
func benchPredictorSetup(b *testing.B) (*ml.Pipeline, [][]float64) {
	b.Helper()
	ds := benchTrainingSet(b, 400)
	p := &ml.Pipeline{Model: ml.NewExtraTrees(100, 7)}
	if err := p.Fit(ds.X, ds.Y); err != nil {
		b.Fatal(err)
	}
	return p, ds.X
}

// BenchmarkPredictBatchDirect scores 400 rows via the v1 free function.
func BenchmarkPredictBatchDirect(b *testing.B) {
	p, X := benchPredictorSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ml.PredictBatch(p, X)
	}
}

// BenchmarkPredictBatchPredictor scores the same rows through the v2
// Predictor interface.
func BenchmarkPredictBatchPredictor(b *testing.B) {
	p, X := benchPredictorSetup(b)
	pred := MLPredictor(p)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.PredictBatch(ctx, X); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTrainingSet draws n rows from the blocking dataset.
func benchTrainingSet(b *testing.B, n int) *dataset.Dataset {
	b.Helper()
	ds, err := BuildDataset("stencil-blocking", BlueWaters(), 42)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	sub, _, err := ds.SampleN(n, rng)
	if err != nil {
		b.Fatal(err)
	}
	return sub
}

package fmm

import "math"

// Force evaluation. ExaFMM computes accelerations alongside potentials;
// with Cartesian local expansions the field is the (negated) gradient
// of the local polynomial, and P2P contributes the familiar
// q·r/|r|³ terms.

// L2PGrad evaluates the gradient of a local expansion about c at
// (x, y, z): ∂φ/∂x_d = Σ_β L_β β_d (p−c)^{β−e_d}.
func L2PGrad(s *MultiIndexSet, l []float64, cx, cy, cz, x, y, z float64) (gx, gy, gz float64) {
	dx, dy, dz := x-cx, y-cy, z-cz
	for bi, b := range s.Idx {
		if b[0] > 0 {
			gx += l[bi] * float64(b[0]) * Power(dx, dy, dz, [3]int{b[0] - 1, b[1], b[2]})
		}
		if b[1] > 0 {
			gy += l[bi] * float64(b[1]) * Power(dx, dy, dz, [3]int{b[0], b[1] - 1, b[2]})
		}
		if b[2] > 0 {
			gz += l[bi] * float64(b[2]) * Power(dx, dy, dz, [3]int{b[0], b[1], b[2] - 1})
		}
	}
	return gx, gy, gz
}

// ForceParticle extends Particle with the field vector F = −∇φ.
type ForceParticle struct {
	Particle
	FX, FY, FZ float64
}

// EvaluateForces computes potentials and fields for every particle:
// Φ(y_j) = Σ q_i/|y_j−x_i| and F(y_j) = Σ q_i (y_j−x_i)/|y_j−x_i|³
// (self-interactions excluded). It reuses the potential pipeline in
// Evaluate for the far field and adds gradient evaluation at the leaf
// stage; the near field accumulates exact pairwise forces.
func EvaluateForces(particles []ForceParticle, cfg Config) (*Stats, error) {
	c, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	base := make([]Particle, len(particles))
	for i := range particles {
		particles[i].Phi, particles[i].FX, particles[i].FY, particles[i].FZ = 0, 0, 0, 0
		base[i] = particles[i].Particle
	}
	tree, err := BuildTree(base, c.LeafCap, c.MaxDepth)
	if err != nil {
		return nil, err
	}
	set, err := NewMultiIndexSet(c.Order)
	if err != nil {
		return nil, err
	}

	px := make([]float64, len(base))
	py := make([]float64, len(base))
	pz := make([]float64, len(base))
	pq := make([]float64, len(base))
	for i, p := range base {
		px[i], py[i], pz[i], pq[i] = p.X, p.Y, p.Z, p.Q
	}
	upward(tree.Root, set, px, py, pz, pq)

	m2lByTarget := map[*Cell][]*Cell{}
	p2pByTarget := map[*Cell][]*Cell{}
	st := &Stats{Cells: len(tree.Cells), TreeDepth: tree.Depth()}
	traverse(tree.Root, tree.Root, c.Theta, m2lByTarget, p2pByTarget, st)

	targets := make([]*Cell, 0, len(m2lByTarget))
	for t := range m2lByTarget {
		t.L = make([]float64, set.Len())
		targets = append(targets, t)
	}
	runM2L(targets, m2lByTarget, set, c.Threads)
	downward(tree.Root, set, nil)

	leaves := tree.Leaves()
	st.Leaves = len(leaves)

	parallelFor(len(leaves), c.Threads, func(_, li int) {
		leaf := leaves[li]
		if leaf.L != nil {
			for _, i := range leaf.Particles {
				p := &particles[i]
				p.Phi += L2P(set, leaf.L, leaf.CX, leaf.CY, leaf.CZ, p.X, p.Y, p.Z)
				gx, gy, gz := L2PGrad(set, leaf.L, leaf.CX, leaf.CY, leaf.CZ, p.X, p.Y, p.Z)
				p.FX -= gx
				p.FY -= gy
				p.FZ -= gz
			}
		}
		for _, src := range p2pByTarget[leaf] {
			p2pForces(particles, leaf.Particles, src.Particles, leaf == src)
		}
	})
	for t, srcs := range p2pByTarget {
		for _, s := range srcs {
			st.P2PInteractions += len(t.Particles) * len(s.Particles)
		}
	}
	return st, nil
}

// p2pForces accumulates exact near-field potentials and forces.
func p2pForces(ps []ForceParticle, targets, sources []int, same bool) {
	for _, ti := range targets {
		t := &ps[ti]
		phi, fx, fy, fz := 0.0, 0.0, 0.0, 0.0
		for _, si := range sources {
			if same && si == ti {
				continue
			}
			dx := t.X - ps[si].X
			dy := t.Y - ps[si].Y
			dz := t.Z - ps[si].Z
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				continue
			}
			inv := 1 / math.Sqrt(r2)
			inv3 := inv / r2
			q := ps[si].Q
			phi += q * inv
			fx += q * dx * inv3
			fy += q * dy * inv3
			fz += q * dz * inv3
		}
		t.Phi += phi
		t.FX += fx
		t.FY += fy
		t.FZ += fz
	}
}

// DirectForces is the exact O(N²) potential+force baseline.
func DirectForces(ps []ForceParticle, threads int) {
	n := len(ps)
	if threads < 1 {
		threads = 1
	}
	parallelFor(n, threads, func(_, j int) {
		t := &ps[j]
		phi, fx, fy, fz := 0.0, 0.0, 0.0, 0.0
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			dx := t.X - ps[i].X
			dy := t.Y - ps[i].Y
			dz := t.Z - ps[i].Z
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				continue
			}
			inv := 1 / math.Sqrt(r2)
			inv3 := inv / r2
			q := ps[i].Q
			phi += q * inv
			fx += q * dx * inv3
			fy += q * dy * inv3
			fz += q * dz * inv3
		}
		t.Phi, t.FX, t.FY, t.FZ = phi, fx, fy, fz
	})
}

package fmm

import "math"

// PlummerSphere places n particles following the Plummer model — the
// standard clustered astrophysical distribution — scaled into the unit
// cube. Unlike UniformCube it produces a strongly adaptive oct-tree
// (deep where the core is dense, shallow outside), exercising the
// traversal paths a uniform distribution never reaches.
func PlummerSphere(n int, seed uint64) []Particle {
	ps := make([]Particle, n)
	state := seed*0x9e3779b97f4a7c15 + 0x1234567
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / float64(1<<53)
	}
	q := 1 / float64(n)
	for i := range ps {
		// Inverse-CDF radius of the Plummer profile, clipped to keep
		// the far tail inside a bounded box.
		m := 0.01 + 0.98*next()
		r := 1 / math.Sqrt(math.Pow(m, -2.0/3.0)-1)
		if r > 4 {
			r = 4
		}
		// Uniform direction.
		z := 2*next() - 1
		phi := 2 * math.Pi * next()
		s := math.Sqrt(1 - z*z)
		// Scale into the unit cube around (0.5, 0.5, 0.5).
		ps[i] = Particle{
			X: 0.5 + 0.12*r*s*math.Cos(phi),
			Y: 0.5 + 0.12*r*s*math.Sin(phi),
			Z: 0.5 + 0.12*r*z,
			Q: q,
		}
	}
	return ps
}

package fmm

import (
	"fmt"
	"math"
)

// Particle is one source/target point with charge Q. Phi accumulates
// the computed potential.
type Particle struct {
	X, Y, Z float64
	Q       float64
	Phi     float64
}

// Cell is one node of the adaptive oct-tree.
type Cell struct {
	// Center coordinates and half-width of the cube.
	CX, CY, CZ float64
	Half       float64
	// Particles holds indices into the particle slice for leaves;
	// internal cells keep the union of their children for P2P fallback.
	Particles []int
	// Children holds up to eight occupied child cells.
	Children []*Cell
	// Level is the tree depth (root = 0).
	Level int
	// M and L are the multipole and local expansion coefficients.
	M, L []float64
}

// IsLeaf reports whether the cell has no children.
func (c *Cell) IsLeaf() bool { return len(c.Children) == 0 }

// Tree is the spatial decomposition of a particle set.
type Tree struct {
	Root  *Cell
	Cells []*Cell // all cells in construction order
	// LeafCap is the maximum particles per leaf (the paper's q).
	LeafCap int
	// MaxDepth bounds subdivision.
	MaxDepth int
}

// BuildTree subdivides the bounding cube of the particles until every
// leaf holds at most leafCap particles (or maxDepth is reached;
// maxDepth <= 0 means 24).
func BuildTree(particles []Particle, leafCap, maxDepth int) (*Tree, error) {
	if len(particles) == 0 {
		return nil, fmt.Errorf("fmm: no particles")
	}
	if leafCap < 1 {
		return nil, fmt.Errorf("fmm: leaf capacity %d < 1", leafCap)
	}
	if maxDepth <= 0 {
		maxDepth = 24
	}
	// Bounding cube.
	minX, minY, minZ := math.Inf(1), math.Inf(1), math.Inf(1)
	maxX, maxY, maxZ := math.Inf(-1), math.Inf(-1), math.Inf(-1)
	for _, p := range particles {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		minZ, maxZ = math.Min(minZ, p.Z), math.Max(maxZ, p.Z)
	}
	half := math.Max(maxX-minX, math.Max(maxY-minY, maxZ-minZ))/2 + 1e-12
	t := &Tree{LeafCap: leafCap, MaxDepth: maxDepth}
	idx := make([]int, len(particles))
	for i := range idx {
		idx[i] = i
	}
	t.Root = t.build(particles, idx,
		(minX+maxX)/2, (minY+maxY)/2, (minZ+maxZ)/2, half, 0)
	return t, nil
}

func (t *Tree) build(ps []Particle, idx []int, cx, cy, cz, half float64, level int) *Cell {
	c := &Cell{CX: cx, CY: cy, CZ: cz, Half: half, Particles: idx, Level: level}
	t.Cells = append(t.Cells, c)
	if len(idx) <= t.LeafCap || level >= t.MaxDepth {
		return c
	}
	var buckets [8][]int
	for _, i := range idx {
		o := 0
		if ps[i].X > cx {
			o |= 1
		}
		if ps[i].Y > cy {
			o |= 2
		}
		if ps[i].Z > cz {
			o |= 4
		}
		buckets[o] = append(buckets[o], i)
	}
	h := half / 2
	for o, b := range buckets {
		if len(b) == 0 {
			continue
		}
		ox, oy, oz := -h, -h, -h
		if o&1 != 0 {
			ox = h
		}
		if o&2 != 0 {
			oy = h
		}
		if o&4 != 0 {
			oz = h
		}
		c.Children = append(c.Children, t.build(ps, b, cx+ox, cy+oy, cz+oz, h, level+1))
	}
	return c
}

// Leaves returns all leaf cells.
func (t *Tree) Leaves() []*Cell {
	var out []*Cell
	for _, c := range t.Cells {
		if c.IsLeaf() {
			out = append(out, c)
		}
	}
	return out
}

// Depth returns the maximum cell level plus one.
func (t *Tree) Depth() int {
	d := 0
	for _, c := range t.Cells {
		if c.Level+1 > d {
			d = c.Level + 1
		}
	}
	return d
}

// Validate checks the tree invariants: every particle appears in exactly
// one leaf, children partition their parent's particles, leaves respect
// the capacity (unless at MaxDepth), and children lie inside parents.
func (t *Tree) Validate(n int) error {
	seen := make([]int, n)
	for _, c := range t.Cells {
		if c.IsLeaf() {
			if len(c.Particles) > t.LeafCap && c.Level < t.MaxDepth {
				return fmt.Errorf("fmm: leaf at level %d holds %d > %d particles", c.Level, len(c.Particles), t.LeafCap)
			}
			for _, i := range c.Particles {
				seen[i]++
			}
		} else {
			total := 0
			for _, ch := range c.Children {
				total += len(ch.Particles)
				if math.Abs(ch.CX-c.CX) > c.Half || math.Abs(ch.CY-c.CY) > c.Half || math.Abs(ch.CZ-c.CZ) > c.Half {
					return fmt.Errorf("fmm: child centre escapes parent cube at level %d", c.Level)
				}
				if ch.Half*2 != c.Half {
					return fmt.Errorf("fmm: child half-width %v not half of parent %v", ch.Half, c.Half)
				}
			}
			if total != len(c.Particles) {
				return fmt.Errorf("fmm: children hold %d particles, parent %d", total, len(c.Particles))
			}
		}
	}
	for i, s := range seen {
		if s != 1 {
			return fmt.Errorf("fmm: particle %d appears in %d leaves", i, s)
		}
	}
	return nil
}

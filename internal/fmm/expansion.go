package fmm

import "math"

// TaylorCoeffs fills out with the Taylor coefficients of the Laplace
// Green's function b_γ = (1/γ!) ∂^γ (1/|v|) evaluated at v = (x, y, z),
// for all |γ| <= set-degree that out's index set covers. It uses the
// Duan–Krasny recurrence
//
//	n·|v|²·b_γ = −(2n-1)·Σ_d v_d·b_{γ-e_d} − (n-1)·Σ_d b_{γ-2e_d},
//
// with n = |γ| and out-of-range terms zero. The recurrence is validated
// in the tests against closed forms and finite differences.
func TaylorCoeffs(s *MultiIndexSet, x, y, z float64, out []float64) {
	r2 := x*x + y*y + z*z
	r := math.Sqrt(r2)
	out[0] = 1 / r
	inv := 1 / r2
	for i := 1; i < s.Len(); i++ {
		g := s.Idx[i]
		n := float64(g[0] + g[1] + g[2])
		acc := 0.0
		// (2n-1) Σ v_d b_{γ-e_d}
		if g[0] > 0 {
			acc += x * out[s.Pos(g[0]-1, g[1], g[2])]
		}
		if g[1] > 0 {
			acc += y * out[s.Pos(g[0], g[1]-1, g[2])]
		}
		if g[2] > 0 {
			acc += z * out[s.Pos(g[0], g[1], g[2]-1)]
		}
		acc *= -(2*n - 1)
		// −(n−1) Σ b_{γ-2e_d}
		sub := 0.0
		if g[0] > 1 {
			sub += out[s.Pos(g[0]-2, g[1], g[2])]
		}
		if g[1] > 1 {
			sub += out[s.Pos(g[0], g[1]-2, g[2])]
		}
		if g[2] > 1 {
			sub += out[s.Pos(g[0], g[1], g[2]-2)]
		}
		acc -= (n - 1) * sub
		out[i] = acc * inv / n
	}
}

// P2M accumulates multipole moments M_γ = Σ_i q_i (x_i − c)^γ for the
// given particles about centre c into m.
func P2M(s *MultiIndexSet, px, py, pz, q []float64, cx, cy, cz float64, m []float64) {
	for i := range q {
		dx, dy, dz := px[i]-cx, py[i]-cy, pz[i]-cz
		for j, g := range s.Idx {
			m[j] += q[i] * Power(dx, dy, dz, g)
		}
	}
}

// M2M translates child moments (about cc) into parent moments (about
// cp): M_γ(cp) = Σ_{β<=γ} C(γ, β) (cc − cp)^{γ−β} M_β(cc).
func M2M(s *MultiIndexSet, child []float64, ccx, ccy, ccz, cpx, cpy, cpz float64, parent []float64) {
	dx, dy, dz := ccx-cpx, ccy-cpy, ccz-cpz
	for gi, g := range s.Idx {
		acc := 0.0
		for bx := 0; bx <= g[0]; bx++ {
			for by := 0; by <= g[1]; by++ {
				for bz := 0; bz <= g[2]; bz++ {
					bi := s.Pos(bx, by, bz)
					shift := Power(dx, dy, dz, [3]int{g[0] - bx, g[1] - by, g[2] - bz})
					acc += s.MultiBinomial(g, [3]int{bx, by, bz}) * shift * child[bi]
				}
			}
		}
		parent[gi] += acc
	}
}

// m2lContext caches the per-order scratch of repeated M2L applications:
// a double-order index set and its Taylor coefficient buffer.
type m2lContext struct {
	s2   *MultiIndexSet // index set of order 2P
	b    []float64      // Taylor coefficients at order 2P
	mul  []float64      // precomputed (γ+β)!/(γ!β!) per (γ, β) pair
	sign []float64      // (−1)^{|γ|} per source index
}

func newM2LContext(s *MultiIndexSet) *m2lContext {
	s2, err := NewMultiIndexSet(2 * s.P)
	if err != nil {
		panic(err) // unreachable: s.P >= 0
	}
	n := s.Len()
	ctx := &m2lContext{
		s2:   s2,
		b:    make([]float64, s2.Len()),
		mul:  make([]float64, n*n),
		sign: make([]float64, n),
	}
	for gi, g := range s.Idx {
		if (g[0]+g[1]+g[2])%2 == 0 {
			ctx.sign[gi] = 1
		} else {
			ctx.sign[gi] = -1
		}
		for bi, b := range s.Idx {
			f := s2.Binomial[g[0]+b[0]][b[0]] *
				s2.Binomial[g[1]+b[1]][b[1]] *
				s2.Binomial[g[2]+b[2]][b[2]]
			ctx.mul[gi*n+bi] = f
		}
	}
	return ctx
}

// M2L converts source moments (about cs) into a local Taylor expansion
// about ct: L_β += Σ_γ (−1)^{|γ|} M_γ b_{γ+β}(ct − cs) · (γ+β)!/(γ!β!),
// where b are Taylor coefficients of 1/r at the cell separation.
func (ctx *m2lContext) M2L(s *MultiIndexSet, m []float64, csx, csy, csz, ctx0, cty, ctz float64, l []float64) {
	TaylorCoeffs(ctx.s2, ctx0-csx, cty-csy, ctz-csz, ctx.b)
	n := s.Len()
	for bi, bIdx := range s.Idx {
		acc := 0.0
		for gi, g := range s.Idx {
			sum := [3]int{g[0] + bIdx[0], g[1] + bIdx[1], g[2] + bIdx[2]}
			acc += ctx.sign[gi] * m[gi] * ctx.b[ctx.s2.Pos(sum[0], sum[1], sum[2])] * ctx.mul[gi*n+bi]
		}
		l[bi] += acc
	}
}

// L2L translates a parent local expansion (about cp) to a child centre
// cc: L'_α = Σ_{β>=α} C(β, α) (cc − cp)^{β−α} L_β.
func L2L(s *MultiIndexSet, parent []float64, cpx, cpy, cpz, ccx, ccy, ccz float64, child []float64) {
	dx, dy, dz := ccx-cpx, ccy-cpy, ccz-cpz
	for ai, a := range s.Idx {
		acc := 0.0
		for bi, b := range s.Idx {
			if b[0] < a[0] || b[1] < a[1] || b[2] < a[2] {
				continue
			}
			shift := Power(dx, dy, dz, [3]int{b[0] - a[0], b[1] - a[1], b[2] - a[2]})
			acc += s.MultiBinomial(b, a) * shift * parent[bi]
		}
		child[ai] += acc
	}
}

// L2P evaluates a local expansion about c at point (x, y, z):
// φ = Σ_β L_β (p − c)^β.
func L2P(s *MultiIndexSet, l []float64, cx, cy, cz, x, y, z float64) float64 {
	dx, dy, dz := x-cx, y-cy, z-cz
	acc := 0.0
	for bi, b := range s.Idx {
		acc += l[bi] * Power(dx, dy, dz, b)
	}
	return acc
}

// M2P evaluates a multipole expansion about c directly at a
// well-separated point: φ = Σ_γ (−1)^{|γ|} M_γ b_γ(p − c). Used by
// tests to validate P2M/M2M independently of the local-expansion path.
func M2P(s *MultiIndexSet, m []float64, cx, cy, cz, x, y, z float64) float64 {
	b := make([]float64, s.Len())
	TaylorCoeffs(s, x-cx, y-cy, z-cz, b)
	acc := 0.0
	sign := 1.0
	for gi, g := range s.Idx {
		if (g[0]+g[1]+g[2])%2 == 0 {
			sign = 1
		} else {
			sign = -1
		}
		acc += sign * m[gi] * b[gi]
	}
	return acc
}

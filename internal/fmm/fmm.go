package fmm

import (
	"fmt"
	"runtime"
	"sync"
)

// Config selects an FMM run: the paper's X = (t, N, q, k) with N
// implied by the particle slice.
type Config struct {
	// Order is the expansion order k (>= 1).
	Order int
	// LeafCap is the maximum particles per leaf cell (the paper's q).
	LeafCap int
	// Theta is the multipole acceptance criterion: cells interact via
	// M2L when (h_a + h_b) / distance < Theta. 0 means 0.5, the classic
	// one-cell-buffer criterion for equal cells.
	Theta float64
	// Threads bounds phase parallelism; 0 means GOMAXPROCS.
	Threads int
	// MaxDepth bounds tree subdivision; 0 means 24.
	MaxDepth int
}

func (c Config) normalized() (Config, error) {
	if c.Order < 1 {
		return c, fmt.Errorf("fmm: expansion order %d < 1", c.Order)
	}
	if c.LeafCap < 1 {
		return c, fmt.Errorf("fmm: leaf capacity %d < 1", c.LeafCap)
	}
	if c.Theta == 0 {
		c.Theta = 0.5
	}
	if c.Theta < 0 || c.Theta >= 1 {
		return c, fmt.Errorf("fmm: theta %v out of (0, 1)", c.Theta)
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	return c, nil
}

// Stats reports the work the traversal generated, which the analytical
// models approximate: counts of each interaction kind.
type Stats struct {
	Cells     int
	Leaves    int
	TreeDepth int
	P2PPairs  int
	M2LPairs  int
	// P2PInteractions counts particle-particle pairs evaluated.
	P2PInteractions int
}

// pair is one target/source interaction from the dual-tree traversal.
type pair struct{ target, source *Cell }

// Evaluate computes the potential Φ(y_j) = Σ_i q_i / |y_j − x_i|
// (self-interactions excluded) for every particle, in place, and returns
// traversal statistics.
func Evaluate(particles []Particle, cfg Config) (*Stats, error) {
	c, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	for i := range particles {
		particles[i].Phi = 0
	}
	tree, err := BuildTree(particles, c.LeafCap, c.MaxDepth)
	if err != nil {
		return nil, err
	}
	set, err := NewMultiIndexSet(c.Order)
	if err != nil {
		return nil, err
	}

	// Upward pass: P2M at leaves, M2M towards the root.
	px := make([]float64, len(particles))
	py := make([]float64, len(particles))
	pz := make([]float64, len(particles))
	pq := make([]float64, len(particles))
	for i, p := range particles {
		px[i], py[i], pz[i], pq[i] = p.X, p.Y, p.Z, p.Q
	}
	upward(tree.Root, set, px, py, pz, pq)

	// Dual-tree traversal: collect M2L and P2P pairs grouped by target.
	m2lByTarget := map[*Cell][]*Cell{}
	p2pByTarget := map[*Cell][]*Cell{}
	st := &Stats{Cells: len(tree.Cells), TreeDepth: tree.Depth()}
	traverse(tree.Root, tree.Root, c.Theta, m2lByTarget, p2pByTarget, st)

	// M2L phase: parallel over target cells (each target's L is only
	// written by its own worker, with worker-local Taylor scratch).
	targets := make([]*Cell, 0, len(m2lByTarget))
	for t := range m2lByTarget {
		t.L = make([]float64, set.Len())
		targets = append(targets, t)
	}
	runM2L(targets, m2lByTarget, set, c.Threads)

	// Downward pass: L2L from the root, then L2P at leaves.
	downward(tree.Root, set, nil)

	leaves := tree.Leaves()
	st.Leaves = len(leaves)

	// L2P + P2P phase, parallel over leaves: every leaf only writes the
	// potentials of its own particles.
	parallelFor(len(leaves), c.Threads, func(w, li int) {
		leaf := leaves[li]
		if leaf.L != nil {
			for _, i := range leaf.Particles {
				particles[i].Phi += L2P(set, leaf.L, leaf.CX, leaf.CY, leaf.CZ,
					particles[i].X, particles[i].Y, particles[i].Z)
			}
		}
		for _, src := range p2pByTarget[leaf] {
			p2p(particles, leaf.Particles, src.Particles, leaf == src)
		}
	})
	for t, srcs := range p2pByTarget {
		for _, s := range srcs {
			st.P2PInteractions += len(t.Particles) * len(s.Particles)
		}
	}
	return st, nil
}

// runM2L executes the M2L lists with one scratch context per worker.
func runM2L(targets []*Cell, lists map[*Cell][]*Cell, set *MultiIndexSet, threads int) {
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := range targets {
			next <- i
		}
		close(next)
	}()
	if threads > len(targets) {
		threads = len(targets)
	}
	if threads < 1 {
		threads = 1
	}
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := newM2LContext(set)
			for i := range next {
				t := targets[i]
				for _, s := range lists[t] {
					ctx.M2L(set, s.M, s.CX, s.CY, s.CZ, t.CX, t.CY, t.CZ, t.L)
				}
			}
		}()
	}
	wg.Wait()
}

// upward computes multipole expansions bottom-up.
func upward(c *Cell, set *MultiIndexSet, px, py, pz, pq []float64) {
	c.M = make([]float64, set.Len())
	if c.IsLeaf() {
		lx := make([]float64, len(c.Particles))
		ly := make([]float64, len(c.Particles))
		lz := make([]float64, len(c.Particles))
		lq := make([]float64, len(c.Particles))
		for k, i := range c.Particles {
			lx[k], ly[k], lz[k], lq[k] = px[i], py[i], pz[i], pq[i]
		}
		P2M(set, lx, ly, lz, lq, c.CX, c.CY, c.CZ, c.M)
		return
	}
	for _, ch := range c.Children {
		upward(ch, set, px, py, pz, pq)
		M2M(set, ch.M, ch.CX, ch.CY, ch.CZ, c.CX, c.CY, c.CZ, c.M)
	}
}

// downward pushes local expansions to children (L2L).
func downward(c *Cell, set *MultiIndexSet, parentL []float64) {
	if parentL != nil {
		if c.L == nil {
			c.L = make([]float64, set.Len())
		}
		// Parent L is expressed about the parent centre; the caller
		// already translated it — parentL here is the translated
		// contribution about this cell's centre.
		for i := range parentL {
			c.L[i] += parentL[i]
		}
	}
	if c.IsLeaf() {
		return
	}
	for _, ch := range c.Children {
		var shifted []float64
		if c.L != nil {
			shifted = make([]float64, set.Len())
			L2L(set, c.L, c.CX, c.CY, c.CZ, ch.CX, ch.CY, ch.CZ, shifted)
		}
		downward(ch, set, shifted)
	}
}

// traverse is the dual-tree traversal of Yokota's ExaFMM: it accepts
// well-separated pairs via the MAC, descends into the larger cell
// otherwise, and emits P2P for leaf-leaf pairs.
func traverse(target, source *Cell, theta float64, m2l, p2pLists map[*Cell][]*Cell, st *Stats) {
	dx := target.CX - source.CX
	dy := target.CY - source.CY
	dz := target.CZ - source.CZ
	d2 := dx*dx + dy*dy + dz*dz
	sep := target.Half + source.Half
	if d2*theta*theta > sep*sep {
		m2l[target] = append(m2l[target], source)
		st.M2LPairs++
		return
	}
	if target.IsLeaf() && source.IsLeaf() {
		p2pLists[target] = append(p2pLists[target], source)
		st.P2PPairs++
		return
	}
	// Descend into the larger cell (ties: source).
	if target.IsLeaf() || (!source.IsLeaf() && source.Half >= target.Half) {
		for _, ch := range source.Children {
			traverse(target, ch, theta, m2l, p2pLists, st)
		}
		return
	}
	for _, ch := range target.Children {
		traverse(ch, source, theta, m2l, p2pLists, st)
	}
}

// p2p accumulates direct interactions of source particles onto targets.
func p2p(ps []Particle, targets, sources []int, same bool) {
	for _, ti := range targets {
		tx, ty, tz := ps[ti].X, ps[ti].Y, ps[ti].Z
		acc := 0.0
		for _, si := range sources {
			if same && si == ti {
				continue
			}
			dx := tx - ps[si].X
			dy := ty - ps[si].Y
			dz := tz - ps[si].Z
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				continue // coincident particles contribute no finite term
			}
			acc += ps[si].Q * invSqrt(r2)
		}
		ps[ti].Phi += acc
	}
}

// parallelFor runs f(worker, i) for i in [0, n) across at most t
// goroutines with contiguous block scheduling.
func parallelFor(n, t int, f func(worker, i int)) {
	if n == 0 {
		return
	}
	if t > n {
		t = n
	}
	if t <= 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < t; w++ {
		lo := w * n / t
		hi := (w + 1) * n / t
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(w, i)
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

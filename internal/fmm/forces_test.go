package fmm

import (
	"math"
	"testing"
)

func toForceParticles(ps []Particle) []ForceParticle {
	out := make([]ForceParticle, len(ps))
	for i, p := range ps {
		out[i] = ForceParticle{Particle: p}
	}
	return out
}

func TestDirectForcesTwoBody(t *testing.T) {
	ps := []ForceParticle{
		{Particle: Particle{X: 0, Y: 0, Z: 0, Q: 1}},
		{Particle: Particle{X: 2, Y: 0, Z: 0, Q: 3}},
	}
	DirectForces(ps, 1)
	// Field at particle 0 from charge 3 at distance 2, pointing from
	// source to target: direction (-1, 0, 0), magnitude 3/4.
	if math.Abs(ps[0].FX+0.75) > 1e-14 || ps[0].FY != 0 || ps[0].FZ != 0 {
		t.Errorf("F0 = (%v, %v, %v), want (-0.75, 0, 0)", ps[0].FX, ps[0].FY, ps[0].FZ)
	}
	if math.Abs(ps[1].FX-0.25) > 1e-14 {
		t.Errorf("F1x = %v, want 0.25", ps[1].FX)
	}
	if math.Abs(ps[0].Phi-1.5) > 1e-14 {
		t.Errorf("Phi0 = %v, want 1.5", ps[0].Phi)
	}
}

func TestL2PGradMatchesFiniteDifference(t *testing.T) {
	s, _ := NewMultiIndexSet(5)
	l := make([]float64, s.Len())
	for i := range l {
		l[i] = math.Sin(float64(i)) / float64(i+1)
	}
	cx, cy, cz := 0.3, -0.2, 0.1
	x, y, z := 0.5, 0.1, -0.15
	const h = 1e-6
	gx, gy, gz := L2PGrad(s, l, cx, cy, cz, x, y, z)
	fdx := (L2P(s, l, cx, cy, cz, x+h, y, z) - L2P(s, l, cx, cy, cz, x-h, y, z)) / (2 * h)
	fdy := (L2P(s, l, cx, cy, cz, x, y+h, z) - L2P(s, l, cx, cy, cz, x, y-h, z)) / (2 * h)
	fdz := (L2P(s, l, cx, cy, cz, x, y, z+h) - L2P(s, l, cx, cy, cz, x, y, z-h)) / (2 * h)
	if math.Abs(gx-fdx) > 1e-6 || math.Abs(gy-fdy) > 1e-6 || math.Abs(gz-fdz) > 1e-6 {
		t.Errorf("grad (%v, %v, %v) vs FD (%v, %v, %v)", gx, gy, gz, fdx, fdy, fdz)
	}
}

func forceRelErr(run, ref []ForceParticle) float64 {
	num, den := 0.0, 0.0
	for i := range run {
		dx := run[i].FX - ref[i].FX
		dy := run[i].FY - ref[i].FY
		dz := run[i].FZ - ref[i].FZ
		num += dx*dx + dy*dy + dz*dz
		den += ref[i].FX*ref[i].FX + ref[i].FY*ref[i].FY + ref[i].FZ*ref[i].FZ
	}
	return math.Sqrt(num / den)
}

func TestEvaluateForcesMatchesDirect(t *testing.T) {
	ps := toForceParticles(UniformCube(1000, 11))
	ref := make([]ForceParticle, len(ps))
	copy(ref, ps)
	DirectForces(ref, 4)
	run := make([]ForceParticle, len(ps))
	copy(run, ps)
	st, err := EvaluateForces(run, Config{Order: 6, LeafCap: 32})
	if err != nil {
		t.Fatal(err)
	}
	if st.Leaves == 0 {
		t.Error("no leaves in stats")
	}
	if e := forceRelErr(run, ref); e > 5e-3 {
		t.Errorf("force rel error %v, want < 5e-3", e)
	}
	// Potentials must match the potential-only pipeline too.
	phiRun := make([]Particle, len(ps))
	for i := range ps {
		phiRun[i] = ps[i].Particle
	}
	if _, err := Evaluate(phiRun, Config{Order: 6, LeafCap: 32}); err != nil {
		t.Fatal(err)
	}
	for i := range run {
		if math.Abs(run[i].Phi-phiRun[i].Phi) > 1e-12*(1+math.Abs(phiRun[i].Phi)) {
			t.Fatalf("particle %d: force-pipeline phi %v vs potential pipeline %v",
				i, run[i].Phi, phiRun[i].Phi)
		}
	}
}

func TestEvaluateForcesAccuracyImprovesWithOrder(t *testing.T) {
	ps := toForceParticles(UniformCube(600, 12))
	ref := make([]ForceParticle, len(ps))
	copy(ref, ps)
	DirectForces(ref, 4)
	prev := math.Inf(1)
	for _, k := range []int{2, 4, 6} {
		run := make([]ForceParticle, len(ps))
		copy(run, ps)
		if _, err := EvaluateForces(run, Config{Order: k, LeafCap: 24}); err != nil {
			t.Fatal(err)
		}
		e := forceRelErr(run, ref)
		if e >= prev {
			t.Errorf("order %d force error %v did not improve on %v", k, e, prev)
		}
		prev = e
	}
}

func TestEvaluateForcesNewtonThirdLawNet(t *testing.T) {
	// Net force over all equal-charge particles must vanish (momentum
	// conservation) to truncation accuracy.
	ps := toForceParticles(UniformCube(800, 13))
	if _, err := EvaluateForces(ps, Config{Order: 5, LeafCap: 32}); err != nil {
		t.Fatal(err)
	}
	var sx, sy, sz, mag float64
	for _, p := range ps {
		sx += p.FX
		sy += p.FY
		sz += p.FZ
		mag += math.Abs(p.FX) + math.Abs(p.FY) + math.Abs(p.FZ)
	}
	net := math.Abs(sx) + math.Abs(sy) + math.Abs(sz)
	if net > 1e-3*mag {
		t.Errorf("net force %v not small vs total magnitude %v", net, mag)
	}
}

func TestEvaluateForcesConfigValidation(t *testing.T) {
	ps := toForceParticles(UniformCube(10, 14))
	if _, err := EvaluateForces(ps, Config{Order: 0, LeafCap: 8}); err == nil {
		t.Error("expected order validation error")
	}
}

// Package fmm is a from-scratch fast multipole method for the 3-D
// Laplace kernel 1/r — the repository's stand-in for ExaFMM
// (Section II.B of the paper). It implements the six kernels the paper
// names (P2M, M2M, M2L, L2L, L2P, P2P) with Cartesian Taylor expansions
// of order k, an adaptive oct-tree with a leaf capacity q, a dual-tree
// traversal with a multipole acceptance criterion, goroutine parallelism
// over target cells, and a direct O(N²) summation baseline.
//
// The configuration space matches the paper's modelling vector
// X = (t, N, q, k): threads, particles, particles per leaf cell and
// expansion order.
package fmm

import "fmt"

// MultiIndexSet enumerates the 3-D multi-indices γ = (gx, gy, gz) with
// |γ| <= P, graded lexicographically, and precomputes the combinatorial
// tables the expansion operators need. One set is shared per FMM run.
type MultiIndexSet struct {
	// P is the maximum total degree.
	P int
	// Idx lists the multi-indices in graded order.
	Idx [][3]int
	// pos maps (gx, gy, gz) to its position in Idx.
	pos map[[3]int]int
	// Factorial holds n! for n <= 2P+2.
	Factorial []float64
	// Binomial holds C(n, k) for n, k <= 2P+2.
	Binomial [][]float64
}

// NumCoeffs returns the number of multi-indices of total degree <= p in
// three variables: (p+1)(p+2)(p+3)/6.
func NumCoeffs(p int) int {
	return (p + 1) * (p + 2) * (p + 3) / 6
}

// NewMultiIndexSet builds the index set for maximum degree p >= 0.
func NewMultiIndexSet(p int) (*MultiIndexSet, error) {
	if p < 0 {
		return nil, fmt.Errorf("fmm: negative expansion order %d", p)
	}
	s := &MultiIndexSet{P: p, pos: make(map[[3]int]int)}
	for n := 0; n <= p; n++ {
		for gx := n; gx >= 0; gx-- {
			for gy := n - gx; gy >= 0; gy-- {
				gz := n - gx - gy
				g := [3]int{gx, gy, gz}
				s.pos[g] = len(s.Idx)
				s.Idx = append(s.Idx, g)
			}
		}
	}
	m := 2*p + 3
	s.Factorial = make([]float64, m)
	s.Factorial[0] = 1
	for i := 1; i < m; i++ {
		s.Factorial[i] = s.Factorial[i-1] * float64(i)
	}
	s.Binomial = make([][]float64, m)
	for n := 0; n < m; n++ {
		s.Binomial[n] = make([]float64, m)
		s.Binomial[n][0] = 1
		for k := 1; k <= n; k++ {
			s.Binomial[n][k] = s.Binomial[n-1][k-1]
			if k < n {
				s.Binomial[n][k] += s.Binomial[n-1][k]
			}
		}
	}
	return s, nil
}

// Len returns the number of coefficients (multi-indices up to degree P).
func (s *MultiIndexSet) Len() int { return len(s.Idx) }

// Pos returns the flat position of multi-index g, or -1 if |g| > P.
func (s *MultiIndexSet) Pos(gx, gy, gz int) int {
	if p, ok := s.pos[[3]int{gx, gy, gz}]; ok {
		return p
	}
	return -1
}

// Degree returns |γ| for the multi-index at position i.
func (s *MultiIndexSet) Degree(i int) int {
	g := s.Idx[i]
	return g[0] + g[1] + g[2]
}

// MultiBinomial returns Π_d C(a_d, b_d), the multi-index binomial
// coefficient C(a, b).
func (s *MultiIndexSet) MultiBinomial(a, b [3]int) float64 {
	return s.Binomial[a[0]][b[0]] * s.Binomial[a[1]][b[1]] * s.Binomial[a[2]][b[2]]
}

// Power returns v^γ = vx^gx * vy^gy * vz^gz.
func Power(vx, vy, vz float64, g [3]int) float64 {
	out := 1.0
	for i := 0; i < g[0]; i++ {
		out *= vx
	}
	for i := 0; i < g[1]; i++ {
		out *= vy
	}
	for i := 0; i < g[2]; i++ {
		out *= vz
	}
	return out
}

package fmm

import (
	"math"
	"testing"
)

func TestNumCoeffs(t *testing.T) {
	cases := []struct{ p, want int }{
		{0, 1}, {1, 4}, {2, 10}, {3, 20}, {4, 35}, {10, 286},
	}
	for _, c := range cases {
		if got := NumCoeffs(c.p); got != c.want {
			t.Errorf("NumCoeffs(%d) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestMultiIndexSetEnumeration(t *testing.T) {
	s, err := NewMultiIndexSet(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != NumCoeffs(3) {
		t.Fatalf("len = %d, want %d", s.Len(), NumCoeffs(3))
	}
	// Every index has |γ| <= 3, appears once, and Pos inverts Idx.
	seen := map[[3]int]bool{}
	for i, g := range s.Idx {
		if g[0]+g[1]+g[2] > 3 || g[0] < 0 || g[1] < 0 || g[2] < 0 {
			t.Errorf("invalid multi-index %v", g)
		}
		if seen[g] {
			t.Errorf("duplicate multi-index %v", g)
		}
		seen[g] = true
		if s.Pos(g[0], g[1], g[2]) != i {
			t.Errorf("Pos(%v) = %d, want %d", g, s.Pos(g[0], g[1], g[2]), i)
		}
		if s.Degree(i) != g[0]+g[1]+g[2] {
			t.Errorf("Degree(%d) = %d, want %d", i, s.Degree(i), g[0]+g[1]+g[2])
		}
	}
	if s.Pos(4, 0, 0) != -1 {
		t.Error("Pos beyond P should be -1")
	}
	if _, err := NewMultiIndexSet(-1); err == nil {
		t.Error("expected error for negative order")
	}
}

func TestMultiIndexGradedOrder(t *testing.T) {
	s, _ := NewMultiIndexSet(4)
	for i := 1; i < s.Len(); i++ {
		if s.Degree(i) < s.Degree(i-1) {
			t.Fatalf("indices not graded at %d: degree %d after %d", i, s.Degree(i), s.Degree(i-1))
		}
	}
}

func TestFactorialAndBinomialTables(t *testing.T) {
	s, _ := NewMultiIndexSet(5)
	if s.Factorial[5] != 120 {
		t.Errorf("5! = %v, want 120", s.Factorial[5])
	}
	if s.Binomial[6][2] != 15 {
		t.Errorf("C(6,2) = %v, want 15", s.Binomial[6][2])
	}
	if s.Binomial[4][0] != 1 || s.Binomial[4][4] != 1 {
		t.Error("binomial boundary values wrong")
	}
	if got := s.MultiBinomial([3]int{3, 2, 1}, [3]int{1, 1, 0}); got != 3*2*1 {
		t.Errorf("MultiBinomial = %v, want 6", got)
	}
}

func TestPower(t *testing.T) {
	if got := Power(2, 3, 5, [3]int{2, 1, 0}); got != 12 {
		t.Errorf("Power = %v, want 12", got)
	}
	if got := Power(2, 3, 5, [3]int{0, 0, 0}); got != 1 {
		t.Errorf("Power^0 = %v, want 1", got)
	}
}

// closed-form Taylor coefficients b_γ = D_γ(1/r)/γ! for low orders.
func closedFormCoeff(g [3]int, x, y, z float64) (float64, bool) {
	r2 := x*x + y*y + z*z
	r := math.Sqrt(r2)
	r3 := r * r2
	r5 := r3 * r2
	r7 := r5 * r2
	switch g {
	case [3]int{0, 0, 0}:
		return 1 / r, true
	case [3]int{1, 0, 0}:
		return -x / r3, true
	case [3]int{0, 1, 0}:
		return -y / r3, true
	case [3]int{0, 0, 1}:
		return -z / r3, true
	case [3]int{2, 0, 0}:
		return (3*x*x/r5 - 1/r3) / 2, true
	case [3]int{0, 2, 0}:
		return (3*y*y/r5 - 1/r3) / 2, true
	case [3]int{0, 0, 2}:
		return (3*z*z/r5 - 1/r3) / 2, true
	case [3]int{1, 1, 0}:
		return 3 * x * y / r5, true
	case [3]int{1, 0, 1}:
		return 3 * x * z / r5, true
	case [3]int{0, 1, 1}:
		return 3 * y * z / r5, true
	case [3]int{1, 1, 1}:
		return -15 * x * y * z / r7, true
	}
	return 0, false
}

func TestTaylorCoeffsMatchClosedForms(t *testing.T) {
	s, _ := NewMultiIndexSet(3)
	b := make([]float64, s.Len())
	points := [][3]float64{
		{1, 0, 0}, {0.5, -1.2, 2.0}, {-3, 4, -5}, {0.1, 0.1, 0.1}, {2, -2, 1},
	}
	for _, p := range points {
		TaylorCoeffs(s, p[0], p[1], p[2], b)
		for i, g := range s.Idx {
			want, ok := closedFormCoeff(g, p[0], p[1], p[2])
			if !ok {
				continue
			}
			if math.Abs(b[i]-want) > 1e-10*(1+math.Abs(want)) {
				t.Errorf("point %v index %v: coeff %v, want %v", p, g, b[i], want)
			}
		}
	}
}

func TestTaylorCoeffsMatchFiniteDifferences(t *testing.T) {
	// Verify a higher-order coefficient (|γ|=4) against central finite
	// differences of lower-order recurrence values, exploiting
	// b_{γ+e_x}·(γ_x+1) = ∂_x b_γ / ... — concretely:
	// D_{γ+e_x} = ∂_x D_γ, so b_{γ+e_x} = ∂_x(b_γ · γ!)/ (γ+e_x)!.
	s4, _ := NewMultiIndexSet(4)
	s3, _ := NewMultiIndexSet(3)
	b4 := make([]float64, s4.Len())
	bp := make([]float64, s3.Len())
	bm := make([]float64, s3.Len())
	x, y, z := 1.3, -0.7, 2.1
	h := 1e-5
	TaylorCoeffs(s4, x, y, z, b4)
	TaylorCoeffs(s3, x+h, y, z, bp)
	TaylorCoeffs(s3, x-h, y, z, bm)
	for i3, g := range s3.Idx {
		if g[0]+g[1]+g[2] != 3 {
			continue
		}
		// ∂_x b_γ ≈ (b_γ(x+h) − b_γ(x−h)) / 2h; b_{γ+e_x} = ∂_x b_γ / (γ_x+1).
		dfdx := (bp[i3] - bm[i3]) / (2 * h)
		want := dfdx / float64(g[0]+1)
		got := b4[s4.Pos(g[0]+1, g[1], g[2])]
		if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("index %v + e_x: coeff %v, want %v (FD)", g, got, want)
		}
	}
}

func TestP2MSinglePointExpansion(t *testing.T) {
	// One unit charge at the centre: M_0 = 1, all higher moments 0.
	s, _ := NewMultiIndexSet(3)
	m := make([]float64, s.Len())
	P2M(s, []float64{2}, []float64{3}, []float64{4}, []float64{1}, 2, 3, 4, m)
	if m[0] != 1 {
		t.Errorf("M_0 = %v, want 1", m[0])
	}
	for i := 1; i < len(m); i++ {
		if m[i] != 0 {
			t.Errorf("M[%d] = %v, want 0", i, m[i])
		}
	}
}

func TestM2PConvergesToDirect(t *testing.T) {
	// A cluster near the origin evaluated far away: error must fall
	// rapidly with order.
	srcX := []float64{0.1, -0.05, 0.08, -0.1}
	srcY := []float64{0.02, 0.09, -0.04, 0.06}
	srcZ := []float64{-0.07, 0.01, 0.05, -0.03}
	srcQ := []float64{1, 2, -1, 0.5}
	tx, ty, tz := 3.0, 2.0, 2.5
	exact := 0.0
	for i := range srcQ {
		dx, dy, dz := tx-srcX[i], ty-srcY[i], tz-srcZ[i]
		exact += srcQ[i] / math.Sqrt(dx*dx+dy*dy+dz*dz)
	}
	var prevErr float64 = math.Inf(1)
	for _, p := range []int{1, 3, 5, 7} {
		s, _ := NewMultiIndexSet(p)
		m := make([]float64, s.Len())
		P2M(s, srcX, srcY, srcZ, srcQ, 0, 0, 0, m)
		got := M2P(s, m, 0, 0, 0, tx, ty, tz)
		err := math.Abs(got - exact)
		if err >= prevErr {
			t.Errorf("order %d error %v did not shrink from %v", p, err, prevErr)
		}
		prevErr = err
	}
	if prevErr > 1e-10 {
		t.Errorf("order-7 M2P error %v, want < 1e-10", prevErr)
	}
}

func TestM2MPreservesFarField(t *testing.T) {
	// Moments about a child centre translated to the parent must give
	// the same far potential as direct P2M about the parent.
	s, _ := NewMultiIndexSet(6)
	srcX := []float64{0.45, 0.55, 0.52}
	srcY := []float64{0.48, 0.51, 0.46}
	srcZ := []float64{0.53, 0.47, 0.55}
	srcQ := []float64{1, -2, 0.7}

	mChild := make([]float64, s.Len())
	P2M(s, srcX, srcY, srcZ, srcQ, 0.5, 0.5, 0.5, mChild)
	mParent := make([]float64, s.Len())
	M2M(s, mChild, 0.5, 0.5, 0.5, 0.25, 0.25, 0.25, mParent)

	mDirect := make([]float64, s.Len())
	P2M(s, srcX, srcY, srcZ, srcQ, 0.25, 0.25, 0.25, mDirect)

	for i := range mParent {
		if math.Abs(mParent[i]-mDirect[i]) > 1e-9*(1+math.Abs(mDirect[i])) {
			t.Errorf("moment %d: M2M %v vs direct %v", i, mParent[i], mDirect[i])
		}
	}
}

func TestM2LPlusL2PMatchesM2P(t *testing.T) {
	// Multipole → local → evaluate must agree with multipole → evaluate
	// to truncation accuracy for well-separated boxes.
	s, _ := NewMultiIndexSet(8)
	srcX := []float64{0.1, -0.1, 0.05}
	srcY := []float64{-0.08, 0.03, 0.09}
	srcZ := []float64{0.04, -0.06, 0.02}
	srcQ := []float64{2, 1, -1.5}
	m := make([]float64, s.Len())
	P2M(s, srcX, srcY, srcZ, srcQ, 0, 0, 0, m)

	lcx, lcy, lcz := 4.0, 0.5, -0.5 // well separated local centre
	ctx := newM2LContext(s)
	l := make([]float64, s.Len())
	ctx.M2L(s, m, 0, 0, 0, lcx, lcy, lcz, l)

	// Evaluation points inside the local box.
	for _, d := range [][3]float64{{0, 0, 0}, {0.2, -0.1, 0.15}, {-0.15, 0.2, -0.1}} {
		x, y, z := lcx+d[0], lcy+d[1], lcz+d[2]
		exact := 0.0
		for i := range srcQ {
			dx, dy, dz := x-srcX[i], y-srcY[i], z-srcZ[i]
			exact += srcQ[i] / math.Sqrt(dx*dx+dy*dy+dz*dz)
		}
		got := L2P(s, l, lcx, lcy, lcz, x, y, z)
		if math.Abs(got-exact) > 1e-7*(1+math.Abs(exact)) {
			t.Errorf("point %v: local eval %v, exact %v", d, got, exact)
		}
	}
}

func TestL2LPreservesEvaluation(t *testing.T) {
	// Shifting a local expansion to a sub-centre must not change values
	// (exactly, since local expansions are polynomials).
	s, _ := NewMultiIndexSet(5)
	l := make([]float64, s.Len())
	for i := range l {
		l[i] = 1 / float64(i+1) // arbitrary polynomial
	}
	child := make([]float64, s.Len())
	L2L(s, l, 0, 0, 0, 0.3, -0.2, 0.1, child)
	for _, d := range [][3]float64{{0.35, -0.15, 0.12}, {0.25, -0.3, 0.05}} {
		want := L2P(s, l, 0, 0, 0, d[0], d[1], d[2])
		got := L2P(s, child, 0.3, -0.2, 0.1, d[0], d[1], d[2])
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("point %v: shifted %v, original %v", d, got, want)
		}
	}
}

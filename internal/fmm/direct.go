package fmm

import "math"

// invSqrt returns 1/sqrt(v). Isolated so the hot P2P loop has a single
// call site.
func invSqrt(v float64) float64 { return 1 / math.Sqrt(v) }

// Direct computes the exact O(N²) pairwise potentials
// Φ(y_j) = Σ_{i≠j} q_i / |y_j − x_i| in place, parallel over targets
// with the given thread count (0 means serial). It is the accuracy
// oracle for the FMM and the paper's "direct approach" baseline
// (Section II.B).
func Direct(particles []Particle, threads int) {
	n := len(particles)
	if threads < 1 {
		threads = 1
	}
	parallelFor(n, threads, func(_, j int) {
		tx, ty, tz := particles[j].X, particles[j].Y, particles[j].Z
		acc := 0.0
		for i := 0; i < n; i++ {
			if i == j {
				continue
			}
			dx := tx - particles[i].X
			dy := ty - particles[i].Y
			dz := tz - particles[i].Z
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				continue
			}
			acc += particles[i].Q * invSqrt(r2)
		}
		particles[j].Phi = acc
	})
}

// UniformCube places n particles uniformly at random in the unit cube
// with unit charges scaled to sum to one, using the deterministic
// splitmix-style stream seeded by seed. This is the paper's benchmark
// distribution ("random distribution of particles in a cube").
func UniformCube(n int, seed uint64) []Particle {
	ps := make([]Particle, n)
	state := seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / float64(1<<53)
	}
	q := 1 / float64(n)
	for i := range ps {
		ps[i] = Particle{X: next(), Y: next(), Z: next(), Q: q}
	}
	return ps
}

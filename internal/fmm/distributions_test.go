package fmm

import (
	"math"
	"testing"
)

func TestPlummerDeterministicAndCentred(t *testing.T) {
	a := PlummerSphere(500, 3)
	b := PlummerSphere(500, 3)
	cx, cy, cz := 0.0, 0.0, 0.0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PlummerSphere not deterministic")
		}
		cx += a[i].X
		cy += a[i].Y
		cz += a[i].Z
	}
	n := float64(len(a))
	if math.Abs(cx/n-0.5) > 0.05 || math.Abs(cy/n-0.5) > 0.05 || math.Abs(cz/n-0.5) > 0.05 {
		t.Errorf("centroid (%v, %v, %v), want ~(0.5, 0.5, 0.5)", cx/n, cy/n, cz/n)
	}
}

func TestPlummerIsClustered(t *testing.T) {
	// The Plummer core concentrates mass: the tree must be deeper than
	// for the same number of uniform particles.
	plummer := PlummerSphere(2000, 1)
	uniform := UniformCube(2000, 1)
	tp, err := BuildTree(plummer, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	tu, err := BuildTree(uniform, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Depth() <= tu.Depth() {
		t.Errorf("plummer depth %d should exceed uniform depth %d", tp.Depth(), tu.Depth())
	}
	if err := tp.Validate(len(plummer)); err != nil {
		t.Error(err)
	}
}

func TestFMMAccurateOnClusteredDistribution(t *testing.T) {
	// The adaptive tree + dual-tree traversal must stay accurate on a
	// strongly non-uniform distribution.
	ps := PlummerSphere(1200, 7)
	ref := make([]Particle, len(ps))
	copy(ref, ps)
	Direct(ref, 4)
	run := make([]Particle, len(ps))
	copy(run, ps)
	if _, err := Evaluate(run, Config{Order: 5, LeafCap: 32}); err != nil {
		t.Fatal(err)
	}
	if e := relErrNorm(run, ref); e > 2e-3 {
		t.Errorf("clustered rel error %v, want < 2e-3", e)
	}
}

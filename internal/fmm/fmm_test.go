package fmm

import (
	"math"
	"testing"
	"testing/quick"
)

func relErrNorm(ps, ref []Particle) float64 {
	num, den := 0.0, 0.0
	for i := range ps {
		d := ps[i].Phi - ref[i].Phi
		num += d * d
		den += ref[i].Phi * ref[i].Phi
	}
	return math.Sqrt(num / den)
}

func TestTreeInvariants(t *testing.T) {
	ps := UniformCube(500, 1)
	tree, err := BuildTree(ps, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(len(ps)); err != nil {
		t.Error(err)
	}
	if tree.Depth() < 2 {
		t.Errorf("tree depth = %d, want >= 2 for 500 particles with q=16", tree.Depth())
	}
}

func TestTreeInvariantsProperty(t *testing.T) {
	f := func(seed uint64, capRaw uint8) bool {
		n := 50 + int(seed%400)
		leafCap := 1 + int(capRaw)%64
		ps := UniformCube(n, seed)
		tree, err := BuildTree(ps, leafCap, 0)
		if err != nil {
			return false
		}
		return tree.Validate(n) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTreeErrors(t *testing.T) {
	if _, err := BuildTree(nil, 8, 0); err == nil {
		t.Error("expected error for empty particle set")
	}
	if _, err := BuildTree(UniformCube(10, 1), 0, 0); err == nil {
		t.Error("expected error for zero leaf capacity")
	}
}

func TestTreeDuplicatePointsTerminates(t *testing.T) {
	// 100 coincident particles cannot split below leafCap; MaxDepth
	// must stop subdivision.
	ps := make([]Particle, 100)
	for i := range ps {
		ps[i] = Particle{X: 0.5, Y: 0.5, Z: 0.5, Q: 1}
	}
	tree, err := BuildTree(ps, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(len(ps)); err != nil {
		t.Error(err)
	}
}

func TestFMMAccuracyImprovesWithOrder(t *testing.T) {
	ps := UniformCube(800, 2)
	ref := make([]Particle, len(ps))
	copy(ref, ps)
	Direct(ref, 4)

	prev := math.Inf(1)
	for _, k := range []int{2, 4, 6} {
		run := make([]Particle, len(ps))
		copy(run, ps)
		if _, err := Evaluate(run, Config{Order: k, LeafCap: 32}); err != nil {
			t.Fatal(err)
		}
		e := relErrNorm(run, ref)
		t.Logf("order %d: rel L2 error %.3g", k, e)
		if e >= prev {
			t.Errorf("order %d error %v did not improve on %v", k, e, prev)
		}
		prev = e
	}
	if prev > 1e-4 {
		t.Errorf("order-6 error %v, want < 1e-4", prev)
	}
}

func TestFMMMatchesDirectModerateAccuracy(t *testing.T) {
	ps := UniformCube(1500, 3)
	ref := make([]Particle, len(ps))
	copy(ref, ps)
	Direct(ref, 4)
	run := make([]Particle, len(ps))
	copy(run, ps)
	st, err := Evaluate(run, Config{Order: 5, LeafCap: 40})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErrNorm(run, ref); e > 1e-3 {
		t.Errorf("rel error %v, want < 1e-3", e)
	}
	if st.P2PPairs == 0 || st.M2LPairs == 0 {
		t.Errorf("traversal produced no work: %+v", st)
	}
	if st.Leaves == 0 || st.Cells < st.Leaves {
		t.Errorf("inconsistent stats: %+v", st)
	}
}

func TestFMMParallelMatchesSerial(t *testing.T) {
	ps := UniformCube(600, 4)
	serial := make([]Particle, len(ps))
	copy(serial, ps)
	parallel := make([]Particle, len(ps))
	copy(parallel, ps)
	if _, err := Evaluate(serial, Config{Order: 4, LeafCap: 24, Threads: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(parallel, Config{Order: 4, LeafCap: 24, Threads: 8}); err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if math.Abs(serial[i].Phi-parallel[i].Phi) > 1e-12*(1+math.Abs(serial[i].Phi)) {
			t.Fatalf("particle %d: serial %v vs parallel %v", i, serial[i].Phi, parallel[i].Phi)
		}
	}
}

func TestFMMConfigValidation(t *testing.T) {
	ps := UniformCube(10, 5)
	if _, err := Evaluate(ps, Config{Order: 0, LeafCap: 8}); err == nil {
		t.Error("expected error for order 0")
	}
	if _, err := Evaluate(ps, Config{Order: 2, LeafCap: 0}); err == nil {
		t.Error("expected error for leaf cap 0")
	}
	if _, err := Evaluate(ps, Config{Order: 2, LeafCap: 8, Theta: 1.5}); err == nil {
		t.Error("expected error for theta >= 1")
	}
}

func TestFMMSmallSystemExact(t *testing.T) {
	// With everything in one leaf, FMM degenerates to P2P = direct.
	ps := UniformCube(30, 6)
	ref := make([]Particle, len(ps))
	copy(ref, ps)
	Direct(ref, 1)
	run := make([]Particle, len(ps))
	copy(run, ps)
	if _, err := Evaluate(run, Config{Order: 2, LeafCap: 64}); err != nil {
		t.Fatal(err)
	}
	for i := range run {
		if math.Abs(run[i].Phi-ref[i].Phi) > 1e-12*(1+math.Abs(ref[i].Phi)) {
			t.Fatalf("particle %d: fmm %v vs direct %v", i, run[i].Phi, ref[i].Phi)
		}
	}
}

func TestDirectSymmetricPair(t *testing.T) {
	ps := []Particle{
		{X: 0, Y: 0, Z: 0, Q: 2},
		{X: 3, Y: 4, Z: 0, Q: 5},
	}
	Direct(ps, 1)
	// r = 5: phi0 = 5/5 = 1, phi1 = 2/5 = 0.4.
	if math.Abs(ps[0].Phi-1) > 1e-14 {
		t.Errorf("phi0 = %v, want 1", ps[0].Phi)
	}
	if math.Abs(ps[1].Phi-0.4) > 1e-14 {
		t.Errorf("phi1 = %v, want 0.4", ps[1].Phi)
	}
}

func TestDirectCoincidentParticlesSkipped(t *testing.T) {
	ps := []Particle{
		{X: 1, Y: 1, Z: 1, Q: 1},
		{X: 1, Y: 1, Z: 1, Q: 1},
		{X: 2, Y: 1, Z: 1, Q: 1},
	}
	Direct(ps, 1)
	for i, p := range ps {
		if math.IsInf(p.Phi, 0) || math.IsNaN(p.Phi) {
			t.Errorf("particle %d potential = %v", i, p.Phi)
		}
	}
}

func TestDirectParallelMatchesSerial(t *testing.T) {
	ps := UniformCube(400, 7)
	a := make([]Particle, len(ps))
	copy(a, ps)
	b := make([]Particle, len(ps))
	copy(b, ps)
	Direct(a, 1)
	Direct(b, 8)
	for i := range a {
		if a[i].Phi != b[i].Phi {
			t.Fatalf("particle %d: serial %v vs parallel %v", i, a[i].Phi, b[i].Phi)
		}
	}
}

func TestUniformCubeDeterministicAndBounded(t *testing.T) {
	a := UniformCube(100, 42)
	b := UniformCube(100, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("UniformCube not deterministic")
		}
		if a[i].X < 0 || a[i].X >= 1 || a[i].Y < 0 || a[i].Y >= 1 || a[i].Z < 0 || a[i].Z >= 1 {
			t.Fatalf("particle %d outside unit cube: %+v", i, a[i])
		}
	}
	c := UniformCube(100, 43)
	if a[0] == c[0] {
		t.Error("different seeds should differ")
	}
	q := 0.0
	for _, p := range a {
		q += p.Q
	}
	if math.Abs(q-1) > 1e-9 {
		t.Errorf("total charge = %v, want 1", q)
	}
}

func TestFMMStatsScaleWithLeafCap(t *testing.T) {
	// Smaller q → more leaves → more M2L pairs; larger q → more P2P
	// interactions. This is the trade-off the paper's FMM analytical
	// model captures (Eqs. 8 and 9).
	ps := UniformCube(2000, 8)
	small := make([]Particle, len(ps))
	copy(small, ps)
	big := make([]Particle, len(ps))
	copy(big, ps)
	stSmall, err := Evaluate(small, Config{Order: 2, LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	stBig, err := Evaluate(big, Config{Order: 2, LeafCap: 256})
	if err != nil {
		t.Fatal(err)
	}
	if stSmall.Leaves <= stBig.Leaves {
		t.Errorf("q=8 leaves %d should exceed q=256 leaves %d", stSmall.Leaves, stBig.Leaves)
	}
	if stSmall.P2PInteractions >= stBig.P2PInteractions {
		t.Errorf("q=8 P2P %d should be below q=256 P2P %d", stSmall.P2PInteractions, stBig.P2PInteractions)
	}
}

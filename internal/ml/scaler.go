package ml

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// StandardScaler standardises features to zero mean and unit variance —
// the preprocessing the paper applies before every scikit-learn
// estimator (Section V). Constant columns keep their mean removed and a
// unit divisor, matching scikit-learn's behaviour.
type StandardScaler struct {
	mean []float64
	std  []float64
}

// Fit learns per-column means and standard deviations.
func (s *StandardScaler) Fit(X [][]float64) error {
	if len(X) == 0 {
		return errors.New("ml: StandardScaler.Fit on empty matrix")
	}
	p := len(X[0])
	s.mean = make([]float64, p)
	s.std = make([]float64, p)
	n := float64(len(X))
	for _, row := range X {
		if len(row) != p {
			return fmt.Errorf("ml: StandardScaler.Fit row arity %d, want %d", len(row), p)
		}
		for j, v := range row {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.mean[j]
			s.std[j] += d * d
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] == 0 {
			s.std[j] = 1
		}
	}
	return nil
}

// Transform standardises X into a newly allocated matrix.
func (s *StandardScaler) Transform(X [][]float64) ([][]float64, error) {
	if s.mean == nil {
		return nil, errors.New("ml: StandardScaler.Transform before Fit")
	}
	out := make([][]float64, len(X))
	for i, row := range X {
		if len(row) != len(s.mean) {
			return nil, fmt.Errorf("ml: StandardScaler.Transform row arity %d, want %d", len(row), len(s.mean))
		}
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = (v - s.mean[j]) / s.std[j]
		}
		out[i] = r
	}
	return out, nil
}

// TransformRow standardises a single feature vector.
func (s *StandardScaler) TransformRow(x []float64) ([]float64, error) {
	rows, err := s.Transform([][]float64{x})
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}

// InverseTransform maps standardised rows back to the original scale.
func (s *StandardScaler) InverseTransform(X [][]float64) ([][]float64, error) {
	if s.mean == nil {
		return nil, errors.New("ml: StandardScaler.InverseTransform before Fit")
	}
	out := make([][]float64, len(X))
	for i, row := range X {
		if len(row) != len(s.mean) {
			return nil, fmt.Errorf("ml: StandardScaler.InverseTransform row arity %d, want %d", len(row), len(s.mean))
		}
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = v*s.std[j] + s.mean[j]
		}
		out[i] = r
	}
	return out, nil
}

// FitTransform is Fit followed by Transform.
func (s *StandardScaler) FitTransform(X [][]float64) ([][]float64, error) {
	if err := s.Fit(X); err != nil {
		return nil, err
	}
	return s.Transform(X)
}

// Pipeline standardises features before delegating to an inner model,
// reproducing the paper's scaler-then-estimator composition. It
// implements Regressor.
type Pipeline struct {
	// Model is the inner estimator. Required.
	Model Regressor

	scaler StandardScaler
	fitted bool
}

// Fit standardises X and fits the inner model on the scaled features.
func (p *Pipeline) Fit(X [][]float64, y []float64) error {
	return p.FitCtx(context.Background(), X, y)
}

// FitCtx is Fit with the context forwarded to the inner model's fit
// when it supports cancellation (see ContextFitter). The scaler is
// staged locally and only assigned once the inner fit succeeds, so a
// cancelled or failed refit of an already-fitted pipeline leaves the
// previous (consistent) state untouched.
func (p *Pipeline) FitCtx(ctx context.Context, X [][]float64, y []float64) error {
	if p.Model == nil {
		return errors.New("ml: Pipeline requires a Model")
	}
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	var scaler StandardScaler
	scaled, err := scaler.FitTransform(X)
	if err != nil {
		return err
	}
	if err := FitCtx(ctx, p.Model, scaled, y); err != nil {
		return err
	}
	p.scaler = scaler
	p.fitted = true
	return nil
}

// IsFitted reports whether the pipeline has been trained.
func (p *Pipeline) IsFitted() bool { return p.fitted }

// NumFeatures returns the feature arity the pipeline was fitted on (0
// before Fit).
func (p *Pipeline) NumFeatures() int { return len(p.scaler.mean) }

// Predict scales x with the training statistics and delegates. The
// scaled row lives in pooled scratch, so the call is allocation-free
// in steady state while remaining safe for concurrent use.
func (p *Pipeline) Predict(x []float64) float64 {
	if !p.fitted {
		panic("ml: Pipeline.Predict called before Fit")
	}
	if len(x) != len(p.scaler.mean) {
		panic(fmt.Sprintf("ml: Pipeline.Predict got %d features, want %d", len(x), len(p.scaler.mean)))
	}
	buf := GetScratch(len(x))
	defer PutScratch(buf)
	p.scaler.transformInto(x, *buf)
	return p.Model.Predict(*buf)
}

// transformInto standardises x into dst (same arithmetic as Transform,
// no allocation). Caller guarantees matching arities.
func (s *StandardScaler) transformInto(x, dst []float64) {
	for j, v := range x {
		dst[j] = (v - s.mean[j]) / s.std[j]
	}
}

// PredictBatchInto scores every row of X into out (len(X) elements)
// sequentially, reusing one scratch row — zero allocations in steady
// state.
func (p *Pipeline) PredictBatchInto(X [][]float64, out []float64) error {
	if err := checkInto(p, X, out); err != nil {
		return err
	}
	p.predictBatchIntoSeq(X, out)
	return nil
}

// predictBatchIntoSeq implements the compiled plane's sequential block
// contract: one checked-out scratch row reused across the block.
func (p *Pipeline) predictBatchIntoSeq(X [][]float64, out []float64) {
	buf := GetScratch(len(p.scaler.mean))
	defer PutScratch(buf)
	for i, x := range X {
		p.scaler.transformInto(x, *buf)
		out[i] = p.Model.Predict(*buf)
	}
}

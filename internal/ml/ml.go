package ml

import (
	"errors"
	"fmt"

	"lam/internal/lamerr"
	"lam/internal/parallel"
)

// Regressor is the common estimator interface: fit on a design matrix
// and predict scalar responses.
type Regressor interface {
	// Fit trains the model. Implementations must not retain X or y.
	Fit(X [][]float64, y []float64) error
	// Predict returns the model's estimate for a single feature vector.
	// Calling Predict before a successful Fit is a programming error and
	// panics. After a successful Fit, Predict must be safe for
	// concurrent use — every estimator in this package reads only
	// immutable fitted state, which is what lets batch prediction and
	// the experiment sweeps fan out over a fitted model.
	Predict(x []float64) float64
}

// PredictBatch applies r.Predict to every row of X on the process
// default worker pool; see PredictBatchWorkers.
func PredictBatch(r Regressor, X [][]float64) []float64 {
	return PredictBatchWorkers(r, X, 0)
}

// PredictBatchWorkers applies r.Predict to every row of X using up to
// workers goroutines (<= 0 means the process default, 1 forces the
// plain sequential loop). Each result is written at its row index, so
// the output is bit-identical for every worker count.
func PredictBatchWorkers(r Regressor, X [][]float64, workers int) []float64 {
	out := make([]float64, len(X))
	parallel.ForBlocks(len(X), workers, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = r.Predict(X[i])
		}
	})
	return out
}

// checkInto validates an allocation-free batch-prediction call: fitted
// model, matching output length, per-row arity.
func checkInto(r Regressor, X [][]float64, out []float64) error {
	if !Fitted(r) {
		return fmt.Errorf("ml: %w", lamerr.ErrNotFitted)
	}
	if len(out) != len(X) {
		return fmt.Errorf("ml: %w: output slice holds %d values for %d rows", lamerr.ErrDimension, len(out), len(X))
	}
	if want, ok := NumFeaturesOf(r); ok {
		for i, x := range X {
			if len(x) != want {
				return fmt.Errorf("ml: row %d: %w: got %d features, want %d",
					i, lamerr.ErrDimension, len(x), want)
			}
		}
	}
	return nil
}

// seqBatchIntoPredictor is the internal fast-path contract of the
// compiled inference plane: score a validated row block into out
// sequentially (no pool dispatch, no allocation), using the
// estimator's best batch walk — the fused node table for tree
// ensembles, a reused scratch row for pipelines. The generic batch
// cores below dispatch through it per block, so every layer that
// funnels into them (registry, serve, the experiment sweeps) gets the
// compiled walk without per-call-site wiring; the caller's workers
// argument still governs parallelism.
type seqBatchIntoPredictor interface {
	predictBatchIntoSeq(X [][]float64, out []float64)
}

// PredictBatchInto applies r to every row of X, writing the results
// into out (which must have len(X) elements) instead of allocating:
// the serve-grade batch path. With workers == 1 and an estimator from
// this package the call performs zero allocations in steady state —
// compiled tree walks are allocation-free and the scaler/stacking
// layers draw scratch from sync.Pools.
func PredictBatchInto(r Regressor, X [][]float64, out []float64, workers int) error {
	if err := checkInto(r, X, out); err != nil {
		return err
	}
	predictBatchInto(r, X, out, workers)
	return nil
}

// predictBatchInto is the shared validated core of the Into batch
// paths. The sequential case has no closure and no pool dispatch, so
// it is provably allocation-free.
func predictBatchInto(r Regressor, X [][]float64, out []float64, workers int) {
	seq, hasSeq := r.(seqBatchIntoPredictor)
	if parallel.Resolve(workers, len(X)) == 1 {
		if hasSeq {
			seq.predictBatchIntoSeq(X, out)
			return
		}
		predictRows(r, X, out)
		return
	}
	parallel.ForBlocks(len(X), workers, 16, func(lo, hi int) {
		if hasSeq {
			seq.predictBatchIntoSeq(X[lo:hi], out[lo:hi])
		} else {
			predictRows(r, X[lo:hi], out[lo:hi])
		}
	})
}

// predictRows is the plain per-row fallback for regressors without a
// compiled batch walk. Implementations of seqBatchIntoPredictor must
// never call back into the generic cores, so dispatch cannot recurse.
func predictRows(r Regressor, X [][]float64, out []float64) {
	for i, x := range X {
		out[i] = r.Predict(x)
	}
}

// checkXY validates the design matrix and response vector shapes shared
// by all estimators. It returns the feature arity.
func checkXY(X [][]float64, y []float64) (int, error) {
	if len(X) == 0 {
		return 0, errors.New("ml: empty training set")
	}
	if len(X) != len(y) {
		return 0, fmt.Errorf("ml: %d samples but %d responses", len(X), len(y))
	}
	p := len(X[0])
	if p == 0 {
		return 0, errors.New("ml: samples have zero features")
	}
	for i, row := range X {
		if len(row) != p {
			return 0, fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), p)
		}
	}
	return p, nil
}

// copyMatrix deep-copies a design matrix.
func copyMatrix(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	flat := make([]float64, 0, len(X)*len(X[0]))
	for i, row := range X {
		flat = append(flat, row...)
		out[i] = flat[len(flat)-len(row):]
	}
	return out
}

// copyVector copies a response vector.
func copyVector(y []float64) []float64 {
	out := make([]float64, len(y))
	copy(out, y)
	return out
}

package ml

import (
	"fmt"
	"math/rand"
)

// KFoldIndices partitions 0..n-1 into k shuffled folds whose sizes
// differ by at most one. k is clamped to [2, n].
func KFoldIndices(n, k int, rng *rand.Rand) [][]int {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		f := i % k
		folds[f] = append(folds[f], idx)
	}
	return folds
}

// CrossValScore runs k-fold cross-validation of the model produced by
// newModel, scoring each held-out fold with score (e.g. MAPE), and
// returns the per-fold scores.
func CrossValScore(newModel func() Regressor, X [][]float64, y []float64, k int, seed int64, score func(yTrue, yPred []float64) float64) ([]float64, error) {
	if _, err := checkXY(X, y); err != nil {
		return nil, err
	}
	n := len(X)
	folds := KFoldIndices(n, k, rand.New(rand.NewSource(seed)))
	scores := make([]float64, 0, len(folds))
	inFold := make([]bool, n)
	for f, fold := range folds {
		for i := range inFold {
			inFold[i] = false
		}
		for _, i := range fold {
			inFold[i] = true
		}
		trX := make([][]float64, 0, n-len(fold))
		trY := make([]float64, 0, n-len(fold))
		for i := 0; i < n; i++ {
			if !inFold[i] {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		m := newModel()
		if err := m.Fit(trX, trY); err != nil {
			return nil, fmt.Errorf("ml: cross-validation fold %d: %w", f, err)
		}
		yt := make([]float64, len(fold))
		yp := make([]float64, len(fold))
		for j, i := range fold {
			yt[j] = y[i]
			yp[j] = m.Predict(X[i])
		}
		scores = append(scores, score(yt, yp))
	}
	return scores, nil
}

package ml

import (
	"context"
	"fmt"
	"math/rand"

	"lam/internal/parallel"
)

// KFoldIndices partitions 0..n-1 into k shuffled folds whose sizes
// differ by at most one. k is clamped to [2, n].
func KFoldIndices(n, k int, rng *rand.Rand) [][]int {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		f := i % k
		folds[f] = append(folds[f], idx)
	}
	return folds
}

// CrossValScore runs k-fold cross-validation of the model produced by
// newModel, scoring each held-out fold with score (e.g. MAPE), and
// returns the per-fold scores. Folds are evaluated on the process
// default worker pool; see CrossValScoreWorkers.
func CrossValScore(newModel func() Regressor, X [][]float64, y []float64, k int, seed int64, score func(yTrue, yPred []float64) float64) ([]float64, error) {
	return CrossValScoreWorkers(newModel, X, y, k, seed, score, 0)
}

// CrossValScoreWorkers is CrossValScore with an explicit worker count
// (<= 0 means the process default, 1 forces sequential evaluation).
// The fold partition is drawn from the master seed before fan-out and
// scores are stored by fold index, so the result is bit-identical for
// every worker count. newModel must be safe to call concurrently.
func CrossValScoreWorkers(newModel func() Regressor, X [][]float64, y []float64, k int, seed int64, score func(yTrue, yPred []float64) float64, workers int) ([]float64, error) {
	return crossValScore(context.Background(), newModel, X, y, k, seed, score, workers)
}

// crossValScore is the shared implementation behind CrossValScoreWorkers
// and CrossValScoreCtx: fold evaluation on the worker pool with prompt
// cancellation between folds.
func crossValScore(ctx context.Context, newModel func() Regressor, X [][]float64, y []float64, k int, seed int64, score func(yTrue, yPred []float64) float64, workers int) ([]float64, error) {
	if _, err := checkXY(X, y); err != nil {
		return nil, err
	}
	n := len(X)
	folds := KFoldIndices(n, k, rand.New(rand.NewSource(seed)))
	scores := make([]float64, len(folds))
	err := parallel.ForCtx(ctx, len(folds), workers, func(f int) error {
		fold := folds[f]
		inFold := make([]bool, n)
		for _, i := range fold {
			inFold[i] = true
		}
		trX := make([][]float64, 0, n-len(fold))
		trY := make([]float64, 0, n-len(fold))
		for i := 0; i < n; i++ {
			if !inFold[i] {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		m := newModel()
		if err := m.Fit(trX, trY); err != nil {
			return fmt.Errorf("ml: cross-validation fold %d: %w", f, err)
		}
		yt := make([]float64, len(fold))
		yp := make([]float64, len(fold))
		for j, i := range fold {
			yt[j] = y[i]
			yp[j] = m.Predict(X[i])
		}
		scores[f] = score(yt, yp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return scores, nil
}

package ml

// The depth-bucketed level-order layout (LayoutLevelOrder). Each
// member tree's nodes are re-emitted breadth-first, level by level, so
// all nodes of one depth are contiguous. Tree-major batch scoring then
// walks *one level of one tree per pass* over the whole row block:
// every active row advances exactly one level per sweep, which keeps
// the touched node span of each pass as small as one level bucket
// instead of one root-to-leaf path per row. Rows that reach a leaf
// fold its value into their accumulator (in tree order, so the result
// stays bit-identical to per-row Predict) and drop out of the sweep.
//
// This is a batch layout: single-row prediction keeps using the
// canonical preorder walk, which is bit-identical.

// levelEnsemble holds the BFS re-emission of a compiled ensemble.
// Child indices are explicit (the implicit-left trick is a preorder
// property) and global across the concatenated trees.
type levelEnsemble struct {
	feature   []int32
	threshold []float64
	value     []float64
	left      []int32
	right     []int32
	roots     []int32
}

// buildLevelEnsemble re-emits every member tree of e breadth-first.
func buildLevelEnsemble(e *CompiledEnsemble) *levelEnsemble {
	n := e.nodes.Len()
	le := &levelEnsemble{
		feature:   make([]int32, 0, n),
		threshold: make([]float64, 0, n),
		value:     make([]float64, 0, n),
		left:      make([]int32, 0, n),
		right:     make([]int32, 0, n),
		roots:     make([]int32, 0, len(e.roots)),
	}
	c := &e.nodes
	// queue holds global old indices in BFS order; newIdx maps a
	// position in queue to its new global index, which is just the
	// emission order — so children enqueued later automatically get
	// later (deeper-level) slots.
	queue := make([]int32, 0, 64)
	for _, root := range e.roots {
		base := int32(len(le.feature))
		le.roots = append(le.roots, base)
		queue = queue[:0]
		queue = append(queue, root)
		// First pass: BFS emission order. A node's new index is
		// base + its position in queue.
		for qi := 0; qi < len(queue); qi++ {
			old := queue[qi]
			if c.feature[old] >= 0 {
				queue = append(queue, old+1, c.right[old])
			}
		}
		// newOf maps old (tree-local offset from the tree's first old
		// node is not contiguous in BFS, so index by old global).
		newOf := make(map[int32]int32, len(queue))
		for qi, old := range queue {
			newOf[old] = base + int32(qi)
		}
		for _, old := range queue {
			f := c.feature[old]
			le.feature = append(le.feature, f)
			le.threshold = append(le.threshold, c.threshold[old])
			le.value = append(le.value, c.value[old])
			if f < 0 {
				le.left = append(le.left, -1)
				le.right = append(le.right, -1)
			} else {
				le.left = append(le.left, newOf[old+1])
				le.right = append(le.right, newOf[c.right[old]])
			}
		}
	}
	return le
}

// predictBatchInto is the level-synchronous tree-major batch walk:
// outer loop trees, middle loop level sweeps, inner loop rows. Each
// row's accumulator folds tree contributions in tree order, so the
// result is bit-identical to per-row Predict calls. Steady-state
// allocation-free (the per-row cursor comes from a pool).
func (le *levelEnsemble) predictBatchInto(e *CompiledEnsemble, X [][]float64, out []float64) {
	boosted := e.combine == combineBoosted
	if boosted {
		for i := range out {
			out[i] = e.init
		}
	} else {
		for i := range out {
			out[i] = 0
		}
	}
	curp := getScratchI32(len(X))
	cur := *curp
	feature, threshold := le.feature, le.threshold
	left, right := le.left, le.right
	for _, r := range le.roots {
		for i := range cur {
			cur[i] = r
		}
		active := len(X)
		for active > 0 {
			for i, x := range X {
				n := cur[i]
				if n < 0 {
					continue
				}
				f := feature[n]
				if f < 0 {
					if boosted {
						out[i] += e.rate * le.value[n]
					} else {
						out[i] += le.value[n]
					}
					cur[i] = -1
					active--
					continue
				}
				if x[f] <= threshold[n] {
					cur[i] = left[n]
				} else {
					cur[i] = right[n]
				}
			}
		}
	}
	putScratchI32(curp)
	if !boosted {
		n := float64(len(le.roots))
		for i := range out {
			out[i] /= n
		}
	}
}

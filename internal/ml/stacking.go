package ml

import (
	"context"
	"errors"
	"math/rand"

	"lam/internal/parallel"
)

// Stacking is Wolpert's stacked-generalization meta-estimator: the
// predictions of the base models become input features for a meta
// model. With KFold > 1 the meta features are produced out-of-fold,
// which avoids training-set leakage; with KFold <= 1 the base models
// simply refit on the full set (cheaper, adequate for low-variance
// bases).
//
// The hybrid model in internal/hybrid is a special case of stacking in
// which one "base model" is the closed-form analytical model — there the
// augmentation is done directly since the analytical model needs no
// fitting. This generic estimator exists for ensembling fitted models
// and for the ablation studies.
type Stacking struct {
	// NewBases construct the untrained base models. Required, non-empty.
	NewBases []func() Regressor
	// NewMeta constructs the untrained meta model. Required.
	NewMeta func() Regressor
	// PassThrough includes the original features alongside the base
	// predictions in the meta model's input (the paper's hybrid always
	// passes the original features through).
	PassThrough bool
	// KFold > 1 enables out-of-fold meta-feature generation.
	KFold int
	// Seed drives fold shuffling.
	Seed int64
	// Workers bounds fitting parallelism across the independent
	// (fold, base) training units; values <= 0 mean the process
	// default. The factories in NewBases must be safe to call
	// concurrently. Results are bit-identical for every worker count.
	Workers int

	bases []Regressor
	meta  Regressor
}

// Fit trains the stack.
func (s *Stacking) Fit(X [][]float64, y []float64) error {
	return s.FitCtx(context.Background(), X, y)
}

// FitCtx is Fit with prompt cancellation between the independent
// (fold, base) training units; once ctx is done the fit returns a
// typed cancellation error without mutating the receiver.
func (s *Stacking) FitCtx(ctx context.Context, X [][]float64, y []float64) error {
	if len(s.NewBases) == 0 {
		return errors.New("ml: Stacking requires at least one base model")
	}
	if s.NewMeta == nil {
		return errors.New("ml: Stacking requires a meta model")
	}
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	n := len(X)
	nb := len(s.NewBases)

	// metaFeat[i] collects the base-model predictions for sample i.
	metaFeat := make([][]float64, n)
	for i := range metaFeat {
		metaFeat[i] = make([]float64, nb)
	}

	if s.KFold > 1 && s.KFold <= n {
		folds := KFoldIndices(n, s.KFold, rand.New(rand.NewSource(s.Seed)))
		// Materialise every fold's training set up front, then fan the
		// independent (fold, base) units out on the worker pool. The
		// folds partition the samples, so each unit writes a disjoint
		// set of metaFeat cells.
		trainXs := make([][][]float64, len(folds))
		trainYs := make([][]float64, len(folds))
		for f, fold := range folds {
			inFold := make(map[int]bool, len(fold))
			for _, i := range fold {
				inFold[i] = true
			}
			trainX := make([][]float64, 0, n-len(fold))
			trainY := make([]float64, 0, n-len(fold))
			for i := 0; i < n; i++ {
				if !inFold[i] {
					trainX = append(trainX, X[i])
					trainY = append(trainY, y[i])
				}
			}
			trainXs[f], trainYs[f] = trainX, trainY
		}
		units := len(folds) * nb
		if err := parallel.ForCtx(ctx, units, s.Workers, func(u int) error {
			f, b := u/nb, u%nb
			m := s.NewBases[b]()
			if err := m.Fit(trainXs[f], trainYs[f]); err != nil {
				return err
			}
			for _, i := range folds[f] {
				metaFeat[i][b] = m.Predict(X[i])
			}
			return nil
		}); err != nil {
			return err
		}
	} else {
		if err := parallel.ForCtx(ctx, nb, s.Workers, func(b int) error {
			m := s.NewBases[b]()
			if err := m.Fit(X, y); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				metaFeat[i][b] = m.Predict(X[i])
			}
			return nil
		}); err != nil {
			return err
		}
	}

	// Final base models are always refit on the full training set; they
	// produce the meta features at prediction time.
	bases := make([]Regressor, nb)
	if err := parallel.ForCtx(ctx, nb, s.Workers, func(b int) error {
		m := s.NewBases[b]()
		if err := m.Fit(X, y); err != nil {
			return err
		}
		bases[b] = m
		return nil
	}); err != nil {
		return err
	}

	metaX := make([][]float64, n)
	for i := 0; i < n; i++ {
		metaX[i] = s.assemble(X[i], metaFeat[i])
	}
	meta := s.NewMeta()
	if err := FitCtx(ctx, meta, metaX, y); err != nil {
		return err
	}
	s.bases = bases
	s.meta = meta
	return nil
}

// IsFitted reports whether the stack has been trained.
func (s *Stacking) IsFitted() bool { return s.meta != nil }

// NumFeatures returns the original feature arity the stack was fitted
// on (the base models' input, not the meta model's augmented vector);
// 0 before Fit, or when the base models do not expose theirs.
func (s *Stacking) NumFeatures() int {
	if len(s.bases) == 0 {
		return 0
	}
	n, _ := NumFeaturesOf(s.bases[0])
	return n
}

// assemble builds the meta model's input for one sample.
func (s *Stacking) assemble(x, preds []float64) []float64 {
	if !s.PassThrough {
		return copyVector(preds)
	}
	out := make([]float64, 0, len(x)+len(preds))
	out = append(out, x...)
	return append(out, preds...)
}

// Predict runs the base models and feeds their outputs to the meta
// model. The meta input vector is assembled in pooled scratch — the
// same layout assemble produced at fit time — so the call is
// allocation-free in steady state.
func (s *Stacking) Predict(x []float64) float64 {
	if s.meta == nil {
		panic("ml: Stacking.Predict called before Fit")
	}
	nb := len(s.bases)
	skip := 0
	if s.PassThrough {
		skip = len(x)
	}
	buf := GetScratch(skip + nb)
	defer PutScratch(buf)
	meta := *buf
	copy(meta, x[:skip])
	for i, b := range s.bases {
		meta[skip+i] = b.Predict(x)
	}
	return s.meta.Predict(meta)
}

// PredictBatchInto scores every row of X into out (len(X) elements)
// sequentially with zero steady-state allocations.
func (s *Stacking) PredictBatchInto(X [][]float64, out []float64) error {
	if err := checkInto(s, X, out); err != nil {
		return err
	}
	s.predictBatchIntoSeq(X, out)
	return nil
}

// predictBatchIntoSeq implements the compiled plane's sequential block
// contract; the per-row pooled meta vector is the whole state.
func (s *Stacking) predictBatchIntoSeq(X [][]float64, out []float64) {
	predictRows(s, X, out)
}

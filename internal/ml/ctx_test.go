package ml

import (
	"context"
	"errors"
	"testing"
	"time"

	"lam/internal/lamerr"
)

// ctxTrainingSet builds a small deterministic regression problem.
func ctxTrainingSet(n int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a := float64(i % 17)
		b := float64(i % 5)
		X[i] = []float64{a, b, float64(i)}
		y[i] = 3*a - b + 0.25*float64(i)
	}
	return X, y
}

// TestFitCtxPreCancelledLeavesModelUntrained checks that a cancelled
// fit reports the typed error and does not mutate the estimator.
func TestFitCtxPreCancelledLeavesModelUntrained(t *testing.T) {
	X, y := ctxTrainingSet(64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, r := range []Regressor{
		NewExtraTrees(10, 1),
		&Bagging{NewBase: func() Regressor { return NewDecisionTree(TreeConfig{Seed: 1}) }, N: 4},
		&GradientBoosting{NStages: 5},
		&Pipeline{Model: NewExtraTrees(5, 2)},
		&Stacking{
			NewBases: []func() Regressor{func() Regressor { return NewDecisionTree(TreeConfig{Seed: 1}) }},
			NewMeta:  func() Regressor { return &LinearRegression{} },
		},
	} {
		err := FitCtx(ctx, r, X, y)
		if err == nil {
			t.Fatalf("%T: cancelled fit returned nil error", r)
		}
		if !errors.Is(err, lamerr.ErrCancelled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("%T: error %v missing cancellation sentinels", r, err)
		}
		if Fitted(r) {
			t.Fatalf("%T: estimator reports fitted after cancelled fit", r)
		}
	}
}

// TestPipelineRefitCancelKeepsOldState checks a cancelled refit of an
// already-fitted pipeline leaves the previous scaler+model pair
// consistent (predictions unchanged), not a half-updated hybrid.
func TestPipelineRefitCancelKeepsOldState(t *testing.T) {
	X, y := ctxTrainingSet(80)
	p := &Pipeline{Model: NewExtraTrees(10, 3)}
	if err := p.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	before := p.Predict(X[0])

	// Refit on shifted data with a pre-cancelled context: the inner fit
	// must refuse, and the scaler must not have been re-fitted.
	shifted := make([][]float64, len(X))
	for i, row := range X {
		s := make([]float64, len(row))
		for j, v := range row {
			s[j] = v*100 + 5
		}
		shifted[i] = s
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.FitCtx(ctx, shifted, y); !errors.Is(err, lamerr.ErrCancelled) {
		t.Fatalf("cancelled refit: got %v, want ErrCancelled", err)
	}
	if got := p.Predict(X[0]); got != before {
		t.Fatalf("prediction changed after cancelled refit: %v != %v", got, before)
	}
}

// TestPredictBatchCtxMatchesSequential checks bit-identical output and
// the not-fitted guard.
func TestPredictBatchCtxMatchesSequential(t *testing.T) {
	X, y := ctxTrainingSet(200)
	et := NewExtraTrees(20, 7)

	if _, err := PredictBatchCtx(context.Background(), et, X, 0); !errors.Is(err, lamerr.ErrNotFitted) {
		t.Fatalf("unfitted batch predict: got %v, want ErrNotFitted", err)
	}

	if err := et.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	got, err := PredictBatchCtx(context.Background(), et, X, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		if got[i] != et.Predict(x) {
			t.Fatalf("row %d: batch %v != sequential %v", i, got[i], et.Predict(x))
		}
	}
}

// TestEnsembleNumFeatures checks the meta-estimators report the
// original feature arity, so the serving guards catch wrong-arity
// input instead of panicking.
func TestEnsembleNumFeatures(t *testing.T) {
	X, y := ctxTrainingSet(60)
	bag := &Bagging{NewBase: func() Regressor { return NewDecisionTree(TreeConfig{Seed: 1}) }, N: 3}
	if err := bag.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	stack := &Stacking{
		NewBases: []func() Regressor{func() Regressor { return NewDecisionTree(TreeConfig{Seed: 1}) }},
		NewMeta:  func() Regressor { return &LinearRegression{} },
	}
	if err := stack.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for _, r := range []Regressor{bag, stack} {
		if n, ok := NumFeaturesOf(r); !ok || n != 3 {
			t.Fatalf("%T: NumFeaturesOf = (%d, %v), want (3, true)", r, n, ok)
		}
		if _, err := PredictBatchCtx(context.Background(), r, [][]float64{{1}}, 0); !errors.Is(err, lamerr.ErrDimension) {
			t.Fatalf("%T: wrong-arity batch: got %v, want ErrDimension", r, err)
		}
	}
}

// TestGridSearchCtxCancelPromptly cancels a grid search mid-sweep and
// checks it stops quickly with the typed error.
func TestGridSearchCtxCancelPromptly(t *testing.T) {
	X, y := ctxTrainingSet(150)
	grids := []ParamGrid{{Name: "trees", Values: []float64{5, 10, 15, 20, 25, 30, 35, 40}}}
	ctx, cancel := context.WithCancel(context.Background())
	evaluated := make(chan struct{}, 1)
	start := time.Now()
	go func() {
		<-evaluated
		cancel()
	}()
	_, _, err := GridSearchCtx(ctx, grids, func(p map[string]float64) Regressor {
		select {
		case evaluated <- struct{}{}:
		default:
		}
		return NewExtraTrees(int(p["trees"]), 3)
	}, X, y, 4, 11, MAPE, 2)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled grid search took %v", elapsed)
	}
	if !errors.Is(err, lamerr.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("grid search error %v missing cancellation sentinels", err)
	}
}

// TestGridSearchCtxMatchesWorkers checks the ctx path returns the same
// winner as the v1 entry point.
func TestGridSearchCtxMatchesWorkers(t *testing.T) {
	X, y := ctxTrainingSet(120)
	grids := []ParamGrid{{Name: "trees", Values: []float64{5, 15}}}
	newModel := func(p map[string]float64) Regressor { return NewExtraTrees(int(p["trees"]), 3) }
	bestCtx, allCtx, err := GridSearchCtx(context.Background(), grids, newModel, X, y, 3, 11, MAPE, 0)
	if err != nil {
		t.Fatal(err)
	}
	bestV1, allV1, err := GridSearchWorkers(grids, newModel, X, y, 3, 11, MAPE, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bestCtx.Score != bestV1.Score || len(allCtx) != len(allV1) {
		t.Fatalf("ctx path diverged: best %v vs %v", bestCtx, bestV1)
	}
	for i := range allCtx {
		if allCtx[i].Score != allV1[i].Score {
			t.Fatalf("candidate %d: %v vs %v", i, allCtx[i], allV1[i])
		}
	}
}

package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScalerZeroMeanUnitVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X := make([][]float64, 500)
	for i := range X {
		X[i] = []float64{rng.NormFloat64()*10 + 5, rng.Float64() * 1000}
	}
	var s StandardScaler
	scaled, err := s.FitTransform(X)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		mean, m2 := 0.0, 0.0
		for _, row := range scaled {
			mean += row[j]
		}
		mean /= float64(len(scaled))
		for _, row := range scaled {
			d := row[j] - mean
			m2 += d * d
		}
		sd := math.Sqrt(m2 / float64(len(scaled)))
		if math.Abs(mean) > 1e-9 {
			t.Errorf("column %d mean = %v, want 0", j, mean)
		}
		if math.Abs(sd-1) > 1e-9 {
			t.Errorf("column %d std = %v, want 1", j, sd)
		}
	}
}

func TestScalerConstantColumn(t *testing.T) {
	X := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	var s StandardScaler
	scaled, err := s.FitTransform(X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scaled {
		if scaled[i][0] != 0 {
			t.Errorf("constant column scaled to %v, want 0", scaled[i][0])
		}
	}
}

func TestScalerRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		X := make([][]float64, n)
		for i := range X {
			X[i] = []float64{rng.NormFloat64() * 100, rng.NormFloat64()}
		}
		var s StandardScaler
		scaled, err := s.FitTransform(X)
		if err != nil {
			return false
		}
		back, err := s.InverseTransform(scaled)
		if err != nil {
			return false
		}
		for i := range X {
			for j := range X[i] {
				if math.Abs(back[i][j]-X[i][j]) > 1e-6*(1+math.Abs(X[i][j])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestScalerErrors(t *testing.T) {
	var s StandardScaler
	if err := s.Fit(nil); err == nil {
		t.Error("expected error on empty fit")
	}
	if _, err := s.Transform([][]float64{{1}}); err == nil {
		t.Error("expected error on transform before fit")
	}
	if _, err := s.InverseTransform([][]float64{{1}}); err == nil {
		t.Error("expected error on inverse before fit")
	}
	if err := s.Fit([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("expected error on ragged fit")
	}
	if err := s.Fit([][]float64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Transform([][]float64{{1}}); err == nil {
		t.Error("expected arity error on transform")
	}
	if _, err := s.InverseTransform([][]float64{{1}}); err == nil {
		t.Error("expected arity error on inverse transform")
	}
}

func TestPipelineMatchesManualScaling(t *testing.T) {
	X, y := friedman1(200, 0, 31)
	pipe := &Pipeline{Model: NewExtraTrees(20, 4)}
	if err := pipe.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var s StandardScaler
	scaled, err := s.FitTransform(X)
	if err != nil {
		t.Fatal(err)
	}
	manual := NewExtraTrees(20, 4)
	if err := manual.Fit(scaled, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		row, err := s.TransformRow(X[i])
		if err != nil {
			t.Fatal(err)
		}
		if got, want := pipe.Predict(X[i]), manual.Predict(row); got != want {
			t.Fatalf("pipeline %v != manual %v", got, want)
		}
	}
}

func TestPipelineValidation(t *testing.T) {
	p := &Pipeline{}
	if err := p.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("expected error without Model")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic predicting before fit")
		}
	}()
	(&Pipeline{Model: &KNN{}}).Predict([]float64{1})
}

func TestKNNExactNeighbour(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}}
	y := []float64{10, 20, 30}
	k := &KNN{K: 1}
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := k.Predict([]float64{1.1}); got != 20 {
		t.Errorf("1-NN predict = %v, want 20", got)
	}
}

func TestKNNUniformAverage(t *testing.T) {
	X := [][]float64{{0}, {1}, {10}}
	y := []float64{10, 20, 90}
	k := &KNN{K: 2}
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := k.Predict([]float64{0.5}); got != 15 {
		t.Errorf("2-NN predict = %v, want 15", got)
	}
}

func TestKNNDistanceWeighted(t *testing.T) {
	X := [][]float64{{0}, {3}}
	y := []float64{0, 30}
	k := &KNN{K: 2, Weighting: DistanceWeights}
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// At x=1: weights 1/1 and 1/2 -> (0*1 + 30*0.5) / 1.5 = 10.
	if got := k.Predict([]float64{1}); math.Abs(got-10) > 1e-12 {
		t.Errorf("weighted predict = %v, want 10", got)
	}
	// Exact match dominates.
	if got := k.Predict([]float64{0}); got != 0 {
		t.Errorf("exact-match predict = %v, want 0", got)
	}
}

func TestKNNKLargerThanN(t *testing.T) {
	X := [][]float64{{0}, {1}}
	y := []float64{10, 20}
	k := &KNN{K: 50}
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := k.Predict([]float64{0}); got != 15 {
		t.Errorf("K>n predict = %v, want mean 15", got)
	}
}

func TestKNNDefaultK(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}, {4}, {50}}
	y := []float64{1, 1, 1, 1, 1, 100}
	k := &KNN{} // default K=5
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := k.Predict([]float64{2}); got != 1 {
		t.Errorf("default-K predict = %v, want 1", got)
	}
}

func TestKNNFitCopiesData(t *testing.T) {
	X := [][]float64{{0}, {1}}
	y := []float64{10, 20}
	k := &KNN{K: 1}
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	X[0][0] = 100
	y[0] = -1
	if got := k.Predict([]float64{0}); got != 10 {
		t.Errorf("KNN must copy training data; predict = %v, want 10", got)
	}
}

func TestKNNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	(&KNN{}).Predict([]float64{1})
}

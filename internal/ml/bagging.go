package ml

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"lam/internal/parallel"
	"lam/internal/xmath"
)

// Bagging is Breiman's bootstrap-aggregation meta-estimator over an
// arbitrary base regressor: N base models are fitted on bootstrap
// resamples and their predictions averaged. The paper uses bagging as
// the variance-reduction component of the hybrid model (Section VI).
type Bagging struct {
	// NewBase constructs one untrained base model. Required.
	NewBase func() Regressor
	// N is the number of base models; values below 1 are treated as 10.
	N int
	// SampleFrac is the bootstrap sample size as a fraction of the
	// training set; values outside (0, 1] are treated as 1.
	SampleFrac float64
	// Seed drives the bootstrap resampling.
	Seed int64
	// Workers bounds fitting/prediction parallelism; values <= 0 mean
	// the process default. NewBase must be safe to call concurrently
	// (factories capturing only immutable state, as all estimators in
	// this package are, qualify). Results are bit-identical for every
	// worker count: each member's bootstrap RNG is derived from
	// (Seed, member index) before fan-out.
	Workers int
	// Layout selects the fused ensemble's traversal layout when every
	// base model is a DecisionTree; LayoutDefault means the process
	// default (SetDefaultLayout). Ignored for non-tree bases (apply
	// SetLayoutOf to the fitted estimator instead, which recurses).
	Layout Layout

	models []Regressor
	// compiled is the fused flat node table when every base model is a
	// plain DecisionTree (the common configuration); nil otherwise, in
	// which case prediction loops over the members — whose own Predict
	// paths are compiled anyway for every tree-based estimator.
	compiled *CompiledEnsemble
}

// Fit trains the ensemble on bootstrap resamples of (X, y).
func (b *Bagging) Fit(X [][]float64, y []float64) error {
	return b.FitCtx(context.Background(), X, y)
}

// FitCtx is Fit with prompt cancellation between ensemble members: once
// ctx is done no further base model is fitted and a typed cancellation
// error is returned without mutating the receiver.
func (b *Bagging) FitCtx(ctx context.Context, X [][]float64, y []float64) error {
	if b.NewBase == nil {
		return errors.New("ml: Bagging requires NewBase")
	}
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	n := b.N
	if n < 1 {
		n = 10
	}
	frac := b.SampleFrac
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	size := int(frac * float64(len(X)))
	if size < 1 {
		size = 1
	}
	models := make([]Regressor, n)
	err := parallel.ForCtx(ctx, n, b.Workers, func(t int) error {
		rng := rand.New(rand.NewSource(int64(xmath.Hash64(uint64(b.Seed), uint64(t), 0x62616767))))
		bx := make([][]float64, size)
		by := make([]float64, size)
		for i := 0; i < size; i++ {
			j := rng.Intn(len(X))
			bx[i] = X[j]
			by[i] = y[j]
		}
		m := b.NewBase()
		if err := m.Fit(bx, by); err != nil {
			return err
		}
		models[t] = m
		return nil
	})
	if err != nil {
		return err
	}
	compiled := compileBaggedTrees(models)
	if compiled != nil && b.Layout != LayoutDefault {
		if err := compiled.SetLayout(b.Layout); err != nil {
			return err
		}
	}
	b.models = models
	b.compiled = compiled
	return nil
}

// compileBaggedTrees fuses the members into one shared node table when
// every base model is a DecisionTree; the mean combine is bit-identical
// to summing member Predict calls in order.
func compileBaggedTrees(models []Regressor) *CompiledEnsemble {
	trees := make([]*DecisionTree, len(models))
	for i, m := range models {
		t, ok := m.(*DecisionTree)
		if !ok {
			return nil
		}
		trees[i] = t
	}
	return compileMeanEnsemble(trees)
}

// Predict returns the mean prediction of the ensemble.
func (b *Bagging) Predict(x []float64) float64 {
	if len(b.models) == 0 {
		panic("ml: Bagging.Predict called before Fit")
	}
	if b.compiled != nil {
		if want := b.NumFeatures(); want > 0 && len(x) != want {
			panic(fmt.Sprintf("ml: Bagging.Predict got %d features, want %d", len(x), want))
		}
		return b.compiled.Predict(x)
	}
	s := 0.0
	for _, m := range b.models {
		s += m.Predict(x)
	}
	return s / float64(len(b.models))
}

// PredictBatch scores every row of X on the worker pool; each row's
// member contributions are summed in member order, so the output
// matches sequential Predict calls exactly.
func (b *Bagging) PredictBatch(X [][]float64) []float64 {
	if len(b.models) == 0 {
		panic("ml: Bagging.PredictBatch called before Fit")
	}
	if want := b.NumFeatures(); want > 0 {
		for _, x := range X {
			if len(x) != want {
				panic(fmt.Sprintf("ml: Bagging.PredictBatch got %d features, want %d", len(x), want))
			}
		}
	}
	out := make([]float64, len(X))
	b.predictBatchInto(X, out)
	return out
}

// PredictBatchInto scores every row of X into out (which must have
// len(X) elements) with no allocations beyond the pool's block
// dispatch — none at all with Workers == 1 and tree bases.
func (b *Bagging) PredictBatchInto(X [][]float64, out []float64) error {
	if err := checkInto(b, X, out); err != nil {
		return err
	}
	b.predictBatchInto(X, out)
	return nil
}

// predictBatchInto routes through the shared dispatching core, which
// lands on predictBatchIntoSeq block by block.
func (b *Bagging) predictBatchInto(X [][]float64, out []float64) {
	predictBatchInto(b, X, out, b.Workers)
}

// predictBatchIntoSeq implements the compiled plane's sequential block
// contract: the fused node table's cache-blocked walk when every base
// is a tree, a per-row member loop otherwise (the members' own Predict
// paths are compiled anyway).
func (b *Bagging) predictBatchIntoSeq(X [][]float64, out []float64) {
	if b.compiled != nil {
		b.compiled.PredictBatchInto(X, out)
		return
	}
	predictRows(b, X, out)
}

// NumModels returns the number of fitted base models.
func (b *Bagging) NumModels() int { return len(b.models) }

// IsFitted reports whether the ensemble has been trained.
func (b *Bagging) IsFitted() bool { return len(b.models) > 0 }

// NumFeatures returns the feature arity the ensemble was fitted on (0
// before Fit, or when the base models do not expose theirs).
func (b *Bagging) NumFeatures() int {
	if len(b.models) == 0 {
		return 0
	}
	n, _ := NumFeaturesOf(b.models[0])
	return n
}

package ml

import (
	"errors"
	"math/rand"

	"lam/internal/xmath"
)

// Bagging is Breiman's bootstrap-aggregation meta-estimator over an
// arbitrary base regressor: N base models are fitted on bootstrap
// resamples and their predictions averaged. The paper uses bagging as
// the variance-reduction component of the hybrid model (Section VI).
type Bagging struct {
	// NewBase constructs one untrained base model. Required.
	NewBase func() Regressor
	// N is the number of base models; values below 1 are treated as 10.
	N int
	// SampleFrac is the bootstrap sample size as a fraction of the
	// training set; values outside (0, 1] are treated as 1.
	SampleFrac float64
	// Seed drives the bootstrap resampling.
	Seed int64

	models []Regressor
}

// Fit trains the ensemble on bootstrap resamples of (X, y).
func (b *Bagging) Fit(X [][]float64, y []float64) error {
	if b.NewBase == nil {
		return errors.New("ml: Bagging requires NewBase")
	}
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	n := b.N
	if n < 1 {
		n = 10
	}
	frac := b.SampleFrac
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	size := int(frac * float64(len(X)))
	if size < 1 {
		size = 1
	}
	b.models = b.models[:0]
	for t := 0; t < n; t++ {
		rng := rand.New(rand.NewSource(int64(xmath.Hash64(uint64(b.Seed), uint64(t), 0x62616767))))
		bx := make([][]float64, size)
		by := make([]float64, size)
		for i := 0; i < size; i++ {
			j := rng.Intn(len(X))
			bx[i] = X[j]
			by[i] = y[j]
		}
		m := b.NewBase()
		if err := m.Fit(bx, by); err != nil {
			return err
		}
		b.models = append(b.models, m)
	}
	return nil
}

// Predict returns the mean prediction of the ensemble.
func (b *Bagging) Predict(x []float64) float64 {
	if len(b.models) == 0 {
		panic("ml: Bagging.Predict called before Fit")
	}
	s := 0.0
	for _, m := range b.models {
		s += m.Predict(x)
	}
	return s / float64(len(b.models))
}

// NumModels returns the number of fitted base models.
func (b *Bagging) NumModels() int { return len(b.models) }

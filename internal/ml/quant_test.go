package ml

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// refQuantPredict is the executable specification of the quantized
// walk: quantize the row and every threshold with quantizeCode, walk
// the exact canonical table recursively with integer compares, read
// leaves through float32. The table-driven quantWalk must reproduce it
// bit for bit — this is the exactness half of the quantization pin;
// the error-bound half is TestQuantizeErrorBound.
func refQuantPredict(e *CompiledEnsemble, q *quantEnsemble, x []float64) float64 {
	maxQ := q.maxQ()
	qx := make([]uint16, q.nFeatures)
	for f := range qx {
		qx[f] = uint16(quantizeCode(x[f], q.lo[f], q.scale[f], maxQ))
	}
	c := &e.nodes
	var walk func(i int32) float64
	walk = func(i int32) float64 {
		f := c.feature[i]
		if f < 0 {
			return float64(float32(c.value[i]))
		}
		qt := uint16(quantizeCode(c.threshold[i], q.lo[f], q.scale[f], maxQ))
		if qx[f] <= qt {
			return walk(i + 1)
		}
		return walk(c.right[i])
	}
	if q.combine == combineBoosted {
		out := q.init
		for _, r := range e.roots {
			out += q.rate * walk(r)
		}
		return out
	}
	s := 0.0
	for _, r := range e.roots {
		s += walk(r)
	}
	return s / float64(len(e.roots))
}

// quantStep returns feature f's quantization step (the width of one
// code bucket), or 0 when the feature cannot misroute (never split on,
// or a single threshold coded with infinite scale).
func quantStep(q *quantEnsemble, f int) float64 {
	s := q.scale[f]
	if s <= 0 || s == math.MaxFloat64 {
		return 0
	}
	return 1 / s
}

// safeRow reports whether x routes identically through the exact and
// quantized tables: quantization can only flip a split whose threshold
// t satisfies x[f] in (t, t+step] (left routing is always preserved —
// floor is monotone), so a row whose exact root-to-leaf path in every
// tree stays clear of that band is exact up to float32 leaf rounding.
// Only visited nodes matter — a band elsewhere in the tree is never
// compared against.
func safeRow(e *CompiledEnsemble, q *quantEnsemble, x []float64) bool {
	c := &e.nodes
	for _, root := range e.roots {
		i := root
		for {
			f := c.feature[i]
			if f < 0 {
				break
			}
			t := c.threshold[i]
			d := x[f] - t
			if d > 0 && d <= quantStep(q, int(f)) {
				return false
			}
			if x[f] <= t {
				i++
			} else {
				i = c.right[i]
			}
		}
	}
	return true
}

// TestQuantizedMatchesReference pins the quantized table against the
// recursive integer-compare reference, bit for bit, across both widths
// and both combine modes, single and batch, on both sides of the
// tree-major threshold.
func TestQuantizedMatchesReference(t *testing.T) {
	defer SetBatchTreeMajorThreshold(0)
	rng := rand.New(rand.NewSource(0x9a17))
	for trial := 0; trial < 6; trial++ {
		n := 40 + rng.Intn(160)
		p := 1 + rng.Intn(5)
		X, y := randomRegression(rng, n, p)
		Xq, _ := randomRegression(rng, 40, p)
		cfg := randomTreeConfig(rng)

		f := &Forest{NTrees: 2 + rng.Intn(6), Tree: cfg, Seed: rng.Int63(), Workers: 1}
		if err := f.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		g := &GradientBoosting{NStages: 2 + rng.Intn(6), MaxDepth: 1 + rng.Intn(4), Seed: rng.Int63(), Workers: 1}
		if err := g.Fit(X, y); err != nil {
			t.Fatal(err)
		}

		for _, bits := range []int{16, 8} {
			for _, src := range []struct {
				name string
				r    Regressor
				e    *CompiledEnsemble
			}{{"forest", f, f.compiled}, {"gbr", g, g.compiled}} {
				qr, err := Quantize(src.r, bits)
				if err != nil {
					t.Fatalf("%s/%d: %v", src.name, bits, err)
				}
				qm := qr.(*QuantizedModel)
				if qm.Bits() != bits {
					t.Fatalf("%s: Bits() = %d, want %d", src.name, qm.Bits(), bits)
				}
				out := make([]float64, len(Xq))
				for _, thr := range []int{1 << 30, 1} {
					SetBatchTreeMajorThreshold(thr)
					if err := qm.PredictBatchInto(Xq, out); err != nil {
						t.Fatal(err)
					}
					for i, x := range Xq {
						want := refQuantPredict(src.e, qm.q, x)
						if !sameBits(out[i], want) {
							t.Fatalf("%s/%d thr=%d row %d: batch %x != reference %x", src.name, bits, thr, i, out[i], want)
						}
						if got := qm.Predict(x); !sameBits(got, want) {
							t.Fatalf("%s/%d row %d: single %x != reference %x", src.name, bits, i, got, want)
						}
					}
				}
			}
		}
	}
}

// TestQuantizeErrorBound is the error-bound property test the ISSUE
// pins the approximate modes on: on rows that sit clear of every
// split's one-quantization-step band (see safeRow), the quantized
// prediction must match the exact model within a configured relative
// bound — the residual being pure float32 leaf rounding. Rows inside a
// band legitimately take the other branch, so no pointwise bound can
// exist for them; the geometric guarantee (threshold moves by at most
// one step) is exactly what safeRow encodes.
func TestQuantizeErrorBound(t *testing.T) {
	const relBound = 1e-5
	rng := rand.New(rand.NewSource(0xe88))
	for trial := 0; trial < 4; trial++ {
		n := 60 + rng.Intn(140)
		p := 2 + rng.Intn(4)
		X, y := randomRegression(rng, n, p)
		// Continuous (non-grid) query rows: some land inside bands and
		// are skipped; most must be safe and tightly bounded.
		Xq := make([][]float64, 200)
		for i := range Xq {
			Xq[i] = make([]float64, p)
			for j := range Xq[i] {
				Xq[i][j] = rng.NormFloat64() * 2
			}
		}

		f := &Forest{NTrees: 4 + rng.Intn(6), Tree: TreeConfig{Splitter: RandomSplitter, Seed: rng.Int63()}, Seed: rng.Int63(), Workers: 1}
		if err := f.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		for _, bits := range []int{16, 8} {
			qr, err := Quantize(f, bits)
			if err != nil {
				t.Fatal(err)
			}
			qm := qr.(*QuantizedModel)
			safe, maxRel := 0, 0.0
			for _, x := range Xq {
				if !safeRow(f.compiled, qm.q, x) {
					continue
				}
				safe++
				want := f.Predict(x)
				got := qm.Predict(x)
				rel := math.Abs(got-want) / math.Max(1, math.Abs(want))
				if rel > maxRel {
					maxRel = rel
				}
			}
			if safe < len(Xq)/4 {
				t.Fatalf("%d-bit: only %d/%d rows clear the quantization bands — fixture too coarse to test the bound", bits, safe, len(Xq))
			}
			if maxRel > relBound {
				t.Errorf("%d-bit: max relative error %.3g on safe rows exceeds bound %.3g", bits, maxRel, relBound)
			}
		}
	}
}

// TestQuantizedTableShrink pins the footprint claim. A binary tree is
// always ~half leaves (L = I + 1), so per node the 16-bit table spends
// ~8 bytes (feature 2 + next 2 + qthr 2 + ~half a float32 leaf 2) and
// the 8-bit one ~7, against 28 exact — structural ratios of ~3.5x and
// ~4x. The floors leave headroom for the per-tree and per-feature
// side tables.
func TestQuantizedTableShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5123))
	X, y := randomRegression(rng, 800, 5)
	f := &Forest{NTrees: 30, Tree: TreeConfig{Splitter: RandomSplitter}, Seed: 4, Workers: 1}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	exact := exactTableBytes(f.compiled)
	for _, tc := range []struct {
		bits  int
		floor float64
	}{{16, 3.3}, {8, 3.8}} {
		qr, err := Quantize(f, tc.bits)
		if err != nil {
			t.Fatal(err)
		}
		qb := qr.(*QuantizedModel).TableBytes()
		if ratio := float64(exact) / float64(qb); ratio < tc.floor {
			t.Errorf("%d-bit table shrink %.2fx (exact %d B, quant %d B), want >= %.1fx", tc.bits, ratio, exact, qb, tc.floor)
		}
	}
}

// TestQuantizedModelRoundTrip pins the lamb1 v2 persistence of the
// quantized kind: binary round trip is bit-identical, version-1
// decoders reject the kind, and jsonv1 refuses to encode it.
func TestQuantizedModelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(0x6d4))
	X, y := randomRegression(rng, 200, 4)
	Xq, _ := randomRegression(rng, 40, 4)
	g := &GradientBoosting{NStages: 10, Seed: 6, Workers: 1}
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for _, bits := range []int{16, 8} {
		qr, err := Quantize(g, bits)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := AppendBinary(nil, qr)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeBinary(buf)
		if err != nil {
			t.Fatal(err)
		}
		qb, ok := back.(*QuantizedModel)
		if !ok {
			t.Fatalf("round trip decoded %T", back)
		}
		if qb.Bits() != bits || qb.NumFeatures() != qr.(*QuantizedModel).NumFeatures() {
			t.Fatalf("round trip lost shape: bits %d features %d", qb.Bits(), qb.NumFeatures())
		}
		for _, x := range Xq {
			if got, want := qb.Predict(x), qr.(*QuantizedModel).Predict(x); !sameBits(got, want) {
				t.Fatalf("round trip: %x != %x", got, want)
			}
		}
		if _, err := DecodeBinaryVersion(buf, BinaryVersion1); err == nil {
			t.Error("version-1 decoder accepted a quantized payload")
		}
		if _, err := encodeModel(qr); err == nil || !strings.Contains(err.Error(), "binary codec") {
			t.Errorf("jsonv1 encode of a quantized model: %v, want a use-the-binary-codec error", err)
		}
		stats := StatsOf(qr)
		wantKind := "quant16"
		if bits == 8 {
			wantKind = "quant8"
		}
		if stats.Kind != wantKind || stats.Quant != wantKind || stats.Trees != g.NumStages() {
			t.Errorf("StatsOf = %+v, want kind/quant %s with %d trees", stats, wantKind, g.NumStages())
		}
	}
}

// TestQuantizePipeline asserts quantization recurses through Pipeline
// (scaler exact, inner model quantized) and survives a binary round
// trip.
func TestQuantizePipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(0x99))
	X, y := randomRegression(rng, 150, 3)
	Xq, _ := randomRegression(rng, 30, 3)
	pl := &Pipeline{Model: NewExtraTrees(8, 2)}
	if err := pl.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	qr, err := Quantize(pl, 16)
	if err != nil {
		t.Fatal(err)
	}
	qp, ok := qr.(*Pipeline)
	if !ok {
		t.Fatalf("quantized pipeline is %T", qr)
	}
	if _, ok := qp.Model.(*QuantizedModel); !ok {
		t.Fatalf("quantized pipeline inner is %T", qp.Model)
	}
	buf, err := AppendBinary(nil, qr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range Xq {
		if got, want := back.Predict(x), qr.Predict(x); !sameBits(got, want) {
			t.Fatalf("pipeline round trip: %x != %x", got, want)
		}
		// The 16-bit tables are dense; scaled coarse-grid rows stay far
		// from the bands, so the quantized pipeline tracks the exact one.
		if got, want := qr.Predict(x), pl.Predict(x); math.Abs(got-want) > 0.05*(1+math.Abs(want)) {
			t.Fatalf("quantized pipeline drifted: %v vs %v", got, want)
		}
	}
}

// TestQuantizeErrors pins the misuse contract.
func TestQuantizeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := randomRegression(rng, 60, 3)

	if _, err := Quantize(&Forest{}, 16); err == nil {
		t.Error("quantize of an unfitted forest accepted")
	}
	lr := &LinearRegression{}
	if err := lr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if _, err := Quantize(lr, 16); err == nil {
		t.Error("quantize of a linear model accepted")
	}
	f := &Forest{NTrees: 3, Seed: 1, Workers: 1}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if _, err := Quantize(f, 12); err == nil {
		t.Error("12-bit quantization accepted")
	}
	q16, err := Quantize(f, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Quantize(q16, 8); err == nil {
		t.Error("re-quantization to a different width accepted")
	}
	if again, err := Quantize(q16, 16); err != nil || again != q16 {
		t.Errorf("same-width re-quantization should be the identity, got %T %v", again, err)
	}
	if err := q16.Fit(X, y); err == nil {
		t.Error("refit of a frozen quantized model accepted")
	}
}

// TestQuantizedNaNRow documents the quantized caveat: NaN features
// clamp to code 0 (routing left) instead of the exact plane's
// NaN-goes-right, and the walk must still terminate with a finite
// leaf combination.
func TestQuantizedNaNRow(t *testing.T) {
	rng := rand.New(rand.NewSource(0x4a4))
	X, y := randomRegression(rng, 100, 3)
	f := &Forest{NTrees: 4, Seed: 1, Workers: 1}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	qr, err := Quantize(f, 16)
	if err != nil {
		t.Fatal(err)
	}
	got := qr.Predict([]float64{math.NaN(), 1, math.Inf(1)})
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("NaN/Inf row produced %v, want a finite leaf combination", got)
	}
}

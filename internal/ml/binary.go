package ml

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"lam/internal/lamerr"
)

// Binary model encoding: the payload layer of the lamb1 artifact format
// (see internal/artifact). Where the JSON encoding spells every node
// out as a document, this encoding writes the compiled plane's SoA node
// tables — feature/left/right/nSamples ([]int32) and threshold/value
// ([]float64) — verbatim in their runtime layout, little-endian, so
// decoding a tree ensemble is a handful of bounds checks plus
// slice-casting the arrays straight out of the file buffer. No per-node
// structure is ever allocated or parsed on load; on a little-endian
// machine the decoded tables alias the input buffer outright
// (zero-copy), and on big-endian or misaligned inputs a bulk
// element-wise conversion keeps the format portable.
//
// Layout discipline, relied on for the casts:
//
//   - Every scalar is a fixed 8-byte little-endian word (u64/i64/f64),
//     so sections never perturb alignment.
//   - []int32 arrays are written in groups of four (4·4n bytes), so a
//     group is always a multiple of 8 bytes and any following []float64
//     stays 8-byte aligned.
//   - Consequently every section is a multiple of 8 bytes long and, as
//     long as the caller hands Decode an 8-byte-aligned buffer (the
//     artifact layer guarantees it), every array lands on its natural
//     alignment.
//
// Integrity: the artifact layer CRC-checks the whole file before the
// payload is decoded, so these decoders mainly defend structure —
// counts are bounded by the remaining input before any allocation, and
// node tables go through the same validate() pass as the JSON path.
// Every failure wraps lamerr.ErrCorruptArtifact; nothing panics.

// Binary model-kind tags. Values are part of the on-disk format; never
// renumber, only append.
const (
	binKindTree     uint64 = 1
	binKindForest   uint64 = 2
	binKindLinreg   uint64 = 3
	binKindKNN      uint64 = 4
	binKindGBR      uint64 = 5
	binKindPipeline uint64 = 6
	binKindBagging  uint64 = 7
	binKindStacking uint64 = 8
	// binKindQuant is a quantized node table (QuantizedModel) —
	// payload version 2 only; version-1 decoders reject it as an
	// unknown kind, which is the intended forward-compat behaviour.
	binKindQuant uint64 = 9
)

// Payload versions (the artifact layer's lamb1 header carries the
// version and passes it down here). Version 1 tree bodies store an
// explicit left-child array; version 2 drops it — the runtime layout
// is canonical implicit-left preorder (left == i+1), so the column is
// pure redundancy — and adds the quantized model kind. Encoding always
// writes the current version; decoding accepts both.
const (
	BinaryVersion1      = 1
	BinaryVersionLatest = 2
)

// nativeLittleEndian reports whether the host stores multi-byte words
// little-endian — the fast path where array bytes can be reinterpreted
// in place instead of converted element by element.
var nativeLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func corruptf(format string, args ...any) error {
	return fmt.Errorf("ml: %w: "+format, append([]any{lamerr.ErrCorruptArtifact}, args...)...)
}

// --- encoding -------------------------------------------------------

func appendU64(buf []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(buf, v) }
func appendI64(buf []byte, v int64) []byte  { return appendU64(buf, uint64(v)) }
func appendF64(buf []byte, v float64) []byte {
	return appendU64(buf, math.Float64bits(v))
}

func appendF64s(buf []byte, v []float64) []byte {
	if len(v) == 0 {
		return buf
	}
	if nativeLittleEndian {
		return append(buf, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)...)
	}
	for _, x := range v {
		buf = appendF64(buf, x)
	}
	return buf
}

func appendI32s(buf []byte, v []int32) []byte {
	if len(v) == 0 {
		return buf
	}
	if nativeLittleEndian {
		return append(buf, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)...)
	}
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
	}
	return buf
}

// pad8 returns the zero-byte padding that realigns a section after an
// array of elems elements of size bytes each. Sections are kept
// 8-byte-multiples so the zero-copy slice casts stay naturally aligned
// (see the layout discipline above); padding is derived from the
// element count, never from buffer offsets, so nested encodings cannot
// skew it.
func pad8(elems, size int) int { return (8 - elems*size%8) % 8 }

var zeroPad [8]byte

func appendPad8(buf []byte, elems, size int) []byte {
	return append(buf, zeroPad[:pad8(elems, size)]...)
}

func appendU16s(buf []byte, v []uint16) []byte {
	if len(v) > 0 {
		if nativeLittleEndian {
			buf = append(buf, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*2)...)
		} else {
			for _, x := range v {
				buf = binary.LittleEndian.AppendUint16(buf, x)
			}
		}
	}
	return appendPad8(buf, len(v), 2)
}

func appendI16s(buf []byte, v []int16) []byte {
	if len(v) > 0 {
		if nativeLittleEndian {
			buf = append(buf, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*2)...)
		} else {
			for _, x := range v {
				buf = binary.LittleEndian.AppendUint16(buf, uint16(x))
			}
		}
	}
	return appendPad8(buf, len(v), 2)
}

func appendU8s(buf []byte, v []uint8) []byte {
	buf = append(buf, v...)
	return appendPad8(buf, len(v), 1)
}

func appendF32s(buf []byte, v []float32) []byte {
	if len(v) > 0 {
		if nativeLittleEndian {
			buf = append(buf, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)...)
		} else {
			for _, x := range v {
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(x))
			}
		}
	}
	return appendPad8(buf, len(v), 4)
}

func boolI64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func appendTreeConfig(buf []byte, cfg TreeConfig) []byte {
	buf = appendI64(buf, int64(cfg.MaxDepth))
	buf = appendI64(buf, int64(cfg.MinSamplesSplit))
	buf = appendI64(buf, int64(cfg.MinSamplesLeaf))
	buf = appendI64(buf, int64(cfg.MaxFeatures))
	buf = appendI64(buf, int64(cfg.Splitter))
	return appendI64(buf, cfg.Seed)
}

// appendTreeBody writes one fitted tree (config, importances and the
// compiled node table) without a kind tag — forests and boosters embed
// member trees directly since their members are trees by construction.
// Version-2 bodies carry three int32 arrays per tree (feature, right,
// nSamples — the left column is implicit in the canonical layout), so
// an odd node count needs 4 bytes of padding to keep the following
// float64 arrays 8-byte aligned; version-1 bodies carry four arrays
// (an explicit left-child column) and never needed it.
func appendTreeBody(buf []byte, t *DecisionTree, v1 bool) []byte {
	c := &t.nodes
	buf = appendU64(buf, uint64(c.Len()))
	buf = appendU64(buf, uint64(t.nFeatures))
	buf = appendU64(buf, uint64(len(t.importances)))
	buf = appendTreeConfig(buf, t.Config)
	buf = appendF64s(buf, t.importances)
	buf = appendI32s(buf, c.feature)
	if v1 {
		buf = appendI32s(buf, materializeLeft(c))
	}
	buf = appendI32s(buf, c.right)
	buf = appendI32s(buf, c.nSamples)
	if !v1 {
		buf = appendPad8(buf, 3*c.Len(), 4)
	}
	buf = appendF64s(buf, c.threshold)
	return appendF64s(buf, c.value)
}

// AppendBinary appends the binary encoding of a fitted regressor to buf
// and returns the extended slice. Supported types and fitted-state
// requirements match SaveModel exactly; the two encodings are
// interconvertible without loss.
func AppendBinary(buf []byte, m Regressor) ([]byte, error) {
	return AppendBinaryVersion(buf, m, BinaryVersionLatest)
}

// AppendBinaryVersion is AppendBinary at an explicit payload version —
// the legacy writer behind downgrade tooling and the version-1
// compatibility tests. Version-1 payloads cannot represent quantized
// models (the kind tag does not exist there).
func AppendBinaryVersion(buf []byte, m Regressor, version int) ([]byte, error) {
	switch version {
	case BinaryVersion1, BinaryVersionLatest:
	default:
		return nil, fmt.Errorf("ml: unsupported binary payload version %d (have %d and %d)",
			version, BinaryVersion1, BinaryVersionLatest)
	}
	return appendBinaryVersion(buf, m, version == BinaryVersion1)
}

func appendBinaryVersion(buf []byte, m Regressor, v1 bool) ([]byte, error) {
	switch v := m.(type) {
	case *DecisionTree:
		if !v.IsFitted() {
			return nil, fmt.Errorf("ml: cannot save unfitted DecisionTree")
		}
		return appendTreeBody(appendU64(buf, binKindTree), v, v1), nil
	case *Forest:
		if len(v.trees) == 0 {
			return nil, fmt.Errorf("ml: cannot save unfitted Forest")
		}
		buf = appendU64(buf, binKindForest)
		buf = appendI64(buf, int64(v.NTrees))
		buf = appendI64(buf, boolI64(v.Bootstrap))
		buf = appendI64(buf, v.Seed)
		buf = appendU64(buf, uint64(v.nFeatures))
		buf = appendTreeConfig(buf, v.Tree)
		buf = appendU64(buf, uint64(len(v.trees)))
		for _, t := range v.trees {
			buf = appendTreeBody(buf, t, v1)
		}
		return buf, nil
	case *LinearRegression:
		if !v.fitted {
			return nil, fmt.Errorf("ml: cannot save unfitted LinearRegression")
		}
		buf = appendU64(buf, binKindLinreg)
		buf = appendF64(buf, v.Lambda)
		buf = appendF64(buf, v.intercept)
		buf = appendU64(buf, uint64(len(v.weights)))
		return appendF64s(buf, v.weights), nil
	case *KNN:
		if len(v.x) == 0 {
			return nil, fmt.Errorf("ml: cannot save unfitted KNN")
		}
		buf = appendU64(buf, binKindKNN)
		buf = appendI64(buf, int64(v.K))
		buf = appendI64(buf, int64(v.Weighting))
		buf = appendU64(buf, uint64(len(v.x)))
		buf = appendU64(buf, uint64(len(v.x[0])))
		buf = appendF64s(buf, v.y)
		for _, row := range v.x {
			buf = appendF64s(buf, row)
		}
		return buf, nil
	case *GradientBoosting:
		if len(v.stages) == 0 {
			return nil, fmt.Errorf("ml: cannot save unfitted GradientBoosting")
		}
		buf = appendU64(buf, binKindGBR)
		buf = appendF64(buf, v.init)
		buf = appendF64(buf, v.rate)
		buf = appendU64(buf, uint64(len(v.stages)))
		for _, t := range v.stages {
			buf = appendTreeBody(buf, t, v1)
		}
		return buf, nil
	case *Pipeline:
		if !v.fitted {
			return nil, fmt.Errorf("ml: cannot save unfitted Pipeline")
		}
		buf = appendU64(buf, binKindPipeline)
		buf = appendU64(buf, uint64(len(v.scaler.mean)))
		buf = appendF64s(buf, v.scaler.mean)
		buf = appendF64s(buf, v.scaler.std)
		return appendBinaryVersion(buf, v.Model, v1)
	case *Bagging:
		if len(v.models) == 0 {
			return nil, fmt.Errorf("ml: cannot save unfitted Bagging")
		}
		buf = appendU64(buf, binKindBagging)
		buf = appendI64(buf, int64(v.N))
		buf = appendF64(buf, v.SampleFrac)
		buf = appendI64(buf, v.Seed)
		buf = appendU64(buf, uint64(len(v.models)))
		var err error
		for _, m := range v.models {
			if buf, err = appendBinaryVersion(buf, m, v1); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case *Stacking:
		if v.meta == nil {
			return nil, fmt.Errorf("ml: cannot save unfitted Stacking")
		}
		buf = appendU64(buf, binKindStacking)
		buf = appendI64(buf, boolI64(v.PassThrough))
		buf = appendI64(buf, int64(v.KFold))
		buf = appendI64(buf, v.Seed)
		buf = appendU64(buf, uint64(len(v.bases)))
		var err error
		for _, b := range v.bases {
			if buf, err = appendBinaryVersion(buf, b, v1); err != nil {
				return nil, err
			}
		}
		return appendBinaryVersion(buf, v.meta, v1)
	case *QuantizedModel:
		if v1 {
			return nil, fmt.Errorf("ml: version-1 binary payloads cannot represent a quantized model")
		}
		q := v.q
		buf = appendU64(buf, binKindQuant)
		buf = appendU64(buf, uint64(q.bits))
		buf = appendU64(buf, uint64(q.combine))
		buf = appendF64(buf, q.init)
		buf = appendF64(buf, q.rate)
		buf = appendU64(buf, uint64(q.nFeatures))
		buf = appendU64(buf, uint64(len(q.roots)))
		buf = appendU64(buf, uint64(len(q.feature)))
		buf = appendU64(buf, uint64(len(q.leafVal)))
		// roots and leafBase are one int32 each per tree; written
		// back-to-back they total 8 bytes per tree, keeping alignment.
		buf = appendI32s(buf, q.roots)
		buf = appendI32s(buf, q.leafBase)
		buf = appendF64s(buf, q.lo)
		buf = appendF64s(buf, q.scale)
		buf = appendI16s(buf, q.feature)
		buf = appendU16s(buf, q.next)
		if q.bits == 8 {
			buf = appendU8s(buf, q.qthr8)
		} else {
			buf = appendU16s(buf, q.qthr16)
		}
		return appendF32s(buf, q.leafVal), nil
	default:
		return nil, fmt.Errorf("ml: binary encoding does not support %T", m)
	}
}

// --- decoding -------------------------------------------------------

// binReader walks a binary payload with bounds-checked, typed reads.
// Array reads slice-cast in place when the host is little-endian and
// the underlying bytes are naturally aligned (always, given an aligned
// buffer — see the layout discipline above); otherwise they fall back
// to a bulk element-wise conversion.
type binReader struct {
	data []byte
	off  int
	// v1 selects the legacy payload layout: tree bodies carry an
	// explicit left-child array (and no odd-count padding), and the
	// quantized kind does not exist.
	v1 bool
}

func (r *binReader) remaining() int { return len(r.data) - r.off }

func (r *binReader) bytes(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, corruptf("short payload: need %d bytes at offset %d, have %d", n, r.off, r.remaining())
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *binReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *binReader) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

func (r *binReader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

// count reads an element count and bounds it by the bytes actually left
// in the payload, so a corrupt length can neither over-allocate nor
// overflow downstream size arithmetic.
func (r *binReader) count(elemSize int) (int, error) {
	v, err := r.u64()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()/elemSize) {
		return 0, corruptf("element count %d exceeds remaining payload (%d bytes)", v, r.remaining())
	}
	return int(v), nil
}

func (r *binReader) f64s(n int) ([]float64, error) {
	if n == 0 {
		return nil, nil
	}
	b, err := r.bytes(n * 8)
	if err != nil {
		return nil, err
	}
	if nativeLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

func (r *binReader) i32s(n int) ([]int32, error) {
	if n == 0 {
		return nil, nil
	}
	b, err := r.bytes(n * 4)
	if err != nil {
		return nil, err
	}
	if nativeLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

func (r *binReader) skipPad(elems, size int) error {
	_, err := r.bytes(pad8(elems, size))
	return err
}

func (r *binReader) u16s(n int) ([]uint16, error) {
	if n == 0 {
		return nil, r.skipPad(n, 2)
	}
	b, err := r.bytes(n * 2)
	if err != nil {
		return nil, err
	}
	if err := r.skipPad(n, 2); err != nil {
		return nil, err
	}
	if nativeLittleEndian && uintptr(unsafe.Pointer(&b[0]))%2 == 0 {
		return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[i*2:])
	}
	return out, nil
}

func (r *binReader) i16s(n int) ([]int16, error) {
	u, err := r.u16s(n)
	if err != nil || u == nil {
		return nil, err
	}
	return unsafe.Slice((*int16)(unsafe.Pointer(&u[0])), n), nil
}

func (r *binReader) u8s(n int) ([]uint8, error) {
	if n == 0 {
		return nil, r.skipPad(n, 1)
	}
	b, err := r.bytes(n)
	if err != nil {
		return nil, err
	}
	if err := r.skipPad(n, 1); err != nil {
		return nil, err
	}
	return b, nil
}

func (r *binReader) f32s(n int) ([]float32, error) {
	if n == 0 {
		return nil, r.skipPad(n, 4)
	}
	b, err := r.bytes(n * 4)
	if err != nil {
		return nil, err
	}
	if err := r.skipPad(n, 4); err != nil {
		return nil, err
	}
	if nativeLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

func (r *binReader) treeConfig() (TreeConfig, error) {
	var cfg TreeConfig
	vals := make([]int64, 6)
	for i := range vals {
		v, err := r.i64()
		if err != nil {
			return cfg, err
		}
		vals[i] = v
	}
	cfg.MaxDepth = int(vals[0])
	cfg.MinSamplesSplit = int(vals[1])
	cfg.MinSamplesLeaf = int(vals[2])
	cfg.MaxFeatures = int(vals[3])
	cfg.Splitter = Splitter(vals[4])
	cfg.Seed = vals[5]
	return cfg, nil
}

func (r *binReader) treeBody() (*DecisionTree, error) {
	nNodes, err := r.count(4)
	if err != nil {
		return nil, err
	}
	nFeat, err := r.u64()
	if err != nil {
		return nil, err
	}
	nImp, err := r.count(8)
	if err != nil {
		return nil, err
	}
	cfg, err := r.treeConfig()
	if err != nil {
		return nil, err
	}
	imp, err := r.f64s(nImp)
	if err != nil {
		return nil, err
	}
	var c CompiledTree
	var left []int32
	if c.feature, err = r.i32s(nNodes); err != nil {
		return nil, err
	}
	if r.v1 {
		// Legacy layout: explicit left column, four int32 arrays (a
		// multiple of 8 bytes for any node count, so no padding).
		if left, err = r.i32s(nNodes); err != nil {
			return nil, err
		}
	}
	if c.right, err = r.i32s(nNodes); err != nil {
		return nil, err
	}
	if c.nSamples, err = r.i32s(nNodes); err != nil {
		return nil, err
	}
	if !r.v1 {
		if err := r.skipPad(3*nNodes, 4); err != nil {
			return nil, err
		}
	}
	if c.threshold, err = r.f64s(nNodes); err != nil {
		return nil, err
	}
	if c.value, err = r.f64s(nNodes); err != nil {
		return nil, err
	}
	if r.v1 {
		// Fold the explicit children back into canonical implicit-left
		// form. Every table this codebase ever wrote is already
		// canonical, so this validates and adopts the zero-copy arrays
		// without moving a node; foreign-but-valid orders are permuted
		// (prediction-bit-identical).
		if c, err = canonicalTree(c.feature, c.threshold, c.value, left, c.right, c.nSamples); err != nil {
			return nil, corruptf("%v", err)
		}
	} else if err := c.validate(); err != nil {
		return nil, corruptf("%v", err)
	}
	return &DecisionTree{Config: cfg, nodes: c, nFeatures: int(nFeat), importances: imp}, nil
}

// DecodeBinary restores a current-version regressor payload encoded by
// AppendBinary, consuming the whole input. Trailing bytes are treated
// as corruption — the artifact layer frames payloads with an exact
// length.
func DecodeBinary(data []byte) (Regressor, error) {
	return DecodeBinaryVersion(data, BinaryVersionLatest)
}

// DecodeBinaryVersion is DecodeBinary for an explicit payload version
// (the artifact layer reads the version from the lamb1 header and
// passes it down, so files written before the implicit-left layout
// keep decoding forever).
func DecodeBinaryVersion(data []byte, version int) (Regressor, error) {
	r, err := newBinReader(data, version)
	if err != nil {
		return nil, err
	}
	m, err := decodeModelBinary(r)
	if err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, corruptf("%d trailing bytes after model payload", r.remaining())
	}
	return m, nil
}

// DecodeBinaryPrefix restores a current-version regressor from the
// front of data and reports how many bytes it consumed — the hook
// nested encodings (the hybrid model's ML component) decode through.
func DecodeBinaryPrefix(data []byte) (Regressor, int, error) {
	return DecodeBinaryPrefixVersion(data, BinaryVersionLatest)
}

// DecodeBinaryPrefixVersion is DecodeBinaryPrefix for an explicit
// payload version.
func DecodeBinaryPrefixVersion(data []byte, version int) (Regressor, int, error) {
	r, err := newBinReader(data, version)
	if err != nil {
		return nil, 0, err
	}
	m, err := decodeModelBinary(r)
	if err != nil {
		return nil, 0, err
	}
	return m, r.off, nil
}

func newBinReader(data []byte, version int) (*binReader, error) {
	switch version {
	case BinaryVersion1:
		return &binReader{data: data, v1: true}, nil
	case BinaryVersionLatest:
		return &binReader{data: data}, nil
	default:
		return nil, corruptf("unsupported binary payload version %d", version)
	}
}

func decodeModelBinary(r *binReader) (Regressor, error) {
	kind, err := r.u64()
	if err != nil {
		return nil, err
	}
	switch kind {
	case binKindTree:
		return r.treeBody()
	case binKindForest:
		nTreesCfg, err := r.i64()
		if err != nil {
			return nil, err
		}
		bootstrap, err := r.i64()
		if err != nil {
			return nil, err
		}
		seed, err := r.i64()
		if err != nil {
			return nil, err
		}
		nFeat, err := r.u64()
		if err != nil {
			return nil, err
		}
		cfg, err := r.treeConfig()
		if err != nil {
			return nil, err
		}
		// A member tree body is at least its 9-word header.
		n, err := r.count(72)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, corruptf("forest with no trees")
		}
		f := &Forest{NTrees: int(nTreesCfg), Tree: cfg, Bootstrap: bootstrap != 0,
			Seed: seed, nFeatures: int(nFeat)}
		for i := 0; i < n; i++ {
			t, err := r.treeBody()
			if err != nil {
				return nil, fmt.Errorf("forest tree %d: %w", i, err)
			}
			f.trees = append(f.trees, t)
		}
		f.compiled = compileMeanEnsemble(f.trees)
		return f, nil
	case binKindLinreg:
		lambda, err := r.f64()
		if err != nil {
			return nil, err
		}
		intercept, err := r.f64()
		if err != nil {
			return nil, err
		}
		nW, err := r.count(8)
		if err != nil {
			return nil, err
		}
		if nW == 0 {
			return nil, corruptf("linreg with no weights")
		}
		w, err := r.f64s(nW)
		if err != nil {
			return nil, err
		}
		return &LinearRegression{Lambda: lambda, weights: w, intercept: intercept, fitted: true}, nil
	case binKindKNN:
		k, err := r.i64()
		if err != nil {
			return nil, err
		}
		weighting, err := r.i64()
		if err != nil {
			return nil, err
		}
		n, err := r.count(8)
		if err != nil {
			return nil, err
		}
		p, err := r.count(8)
		if err != nil {
			return nil, err
		}
		if n == 0 || p == 0 {
			return nil, corruptf("knn with %d samples × %d features", n, p)
		}
		y, err := r.f64s(n)
		if err != nil {
			return nil, err
		}
		if n > r.remaining()/(8*p) {
			return nil, corruptf("knn design matrix %d×%d exceeds remaining payload", n, p)
		}
		flat, err := r.f64s(n * p)
		if err != nil {
			return nil, err
		}
		X := make([][]float64, n)
		for i := range X {
			X[i] = flat[i*p : (i+1)*p]
		}
		return &KNN{K: int(k), Weighting: KNNWeighting(weighting), x: X, y: y}, nil
	case binKindGBR:
		init, err := r.f64()
		if err != nil {
			return nil, err
		}
		rate, err := r.f64()
		if err != nil {
			return nil, err
		}
		n, err := r.count(72)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, corruptf("gbr with no stages")
		}
		g := &GradientBoosting{init: init, rate: rate}
		for i := 0; i < n; i++ {
			t, err := r.treeBody()
			if err != nil {
				return nil, fmt.Errorf("boosting stage %d: %w", i, err)
			}
			g.stages = append(g.stages, t)
		}
		g.compiled = compileBoostedEnsemble(g.stages, init, rate)
		return g, nil
	case binKindPipeline:
		p, err := r.count(16)
		if err != nil {
			return nil, err
		}
		if p == 0 {
			return nil, corruptf("pipeline with no scaler state")
		}
		mean, err := r.f64s(p)
		if err != nil {
			return nil, err
		}
		std, err := r.f64s(p)
		if err != nil {
			return nil, err
		}
		inner, err := decodeModelBinary(r)
		if err != nil {
			return nil, err
		}
		pl := &Pipeline{Model: inner, fitted: true}
		pl.scaler.mean = mean
		pl.scaler.std = std
		return pl, nil
	case binKindBagging:
		nCfg, err := r.i64()
		if err != nil {
			return nil, err
		}
		frac, err := r.f64()
		if err != nil {
			return nil, err
		}
		seed, err := r.i64()
		if err != nil {
			return nil, err
		}
		n, err := r.count(8)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, corruptf("bagging with no members")
		}
		b := &Bagging{N: int(nCfg), SampleFrac: frac, Seed: seed}
		for i := 0; i < n; i++ {
			m, err := decodeModelBinary(r)
			if err != nil {
				return nil, fmt.Errorf("bagging member %d: %w", i, err)
			}
			b.models = append(b.models, m)
		}
		b.compiled = compileBaggedTrees(b.models)
		return b, nil
	case binKindStacking:
		passThrough, err := r.i64()
		if err != nil {
			return nil, err
		}
		kfold, err := r.i64()
		if err != nil {
			return nil, err
		}
		seed, err := r.i64()
		if err != nil {
			return nil, err
		}
		n, err := r.count(8)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, corruptf("stacking with no base models")
		}
		s := &Stacking{PassThrough: passThrough != 0, KFold: int(kfold), Seed: seed}
		for i := 0; i < n; i++ {
			m, err := decodeModelBinary(r)
			if err != nil {
				return nil, fmt.Errorf("stacking base %d: %w", i, err)
			}
			s.bases = append(s.bases, m)
		}
		meta, err := decodeModelBinary(r)
		if err != nil {
			return nil, fmt.Errorf("stacking meta model: %w", err)
		}
		s.meta = meta
		return s, nil
	case binKindQuant:
		if r.v1 {
			return nil, corruptf("quantized model kind in a version-1 payload")
		}
		bits, err := r.u64()
		if err != nil {
			return nil, err
		}
		if bits != 8 && bits != 16 {
			return nil, corruptf("quantized model with %d-bit thresholds", bits)
		}
		combine, err := r.u64()
		if err != nil {
			return nil, err
		}
		if combine != uint64(combineMean) && combine != uint64(combineBoosted) {
			return nil, corruptf("quantized model with unknown combine mode %d", combine)
		}
		init, err := r.f64()
		if err != nil {
			return nil, err
		}
		rate, err := r.f64()
		if err != nil {
			return nil, err
		}
		nFeat, err := r.count(16)
		if err != nil {
			return nil, err
		}
		nTrees, err := r.count(8)
		if err != nil {
			return nil, err
		}
		nNodes, err := r.count(4)
		if err != nil {
			return nil, err
		}
		nLeaf, err := r.count(4)
		if err != nil {
			return nil, err
		}
		q := &quantEnsemble{bits: int(bits), combine: ensembleCombine(combine),
			init: init, rate: rate, nFeatures: nFeat}
		if q.roots, err = r.i32s(nTrees); err != nil {
			return nil, err
		}
		if q.leafBase, err = r.i32s(nTrees); err != nil {
			return nil, err
		}
		if q.lo, err = r.f64s(nFeat); err != nil {
			return nil, err
		}
		if q.scale, err = r.f64s(nFeat); err != nil {
			return nil, err
		}
		if q.feature, err = r.i16s(nNodes); err != nil {
			return nil, err
		}
		if q.next, err = r.u16s(nNodes); err != nil {
			return nil, err
		}
		if bits == 8 {
			if q.qthr8, err = r.u8s(nNodes); err != nil {
				return nil, err
			}
		} else {
			if q.qthr16, err = r.u16s(nNodes); err != nil {
				return nil, err
			}
		}
		if q.leafVal, err = r.f32s(nLeaf); err != nil {
			return nil, err
		}
		if err := q.validate(); err != nil {
			return nil, corruptf("%v", err)
		}
		return &QuantizedModel{q: q}, nil
	default:
		return nil, corruptf("unknown binary model kind %d", kind)
	}
}

// ModelStats summarises a fitted model's structure for artifact
// introspection (lam-model info): a human-readable kind, the member
// tree count and the total flat-table node count (both zero for
// non-tree estimators), and the quantization mode ("quant16"/"quant8",
// empty for exact models) of any quantized table in the model.
type ModelStats struct {
	Kind  string
	Trees int
	Nodes int
	Quant string
}

// StatsOf computes ModelStats by structural walk; composite estimators
// (pipeline, bagging, stacking) aggregate their members.
func StatsOf(m Regressor) ModelStats {
	switch v := m.(type) {
	case *DecisionTree:
		return ModelStats{Kind: "decision_tree", Trees: 1, Nodes: v.nodes.Len()}
	case *Forest:
		s := ModelStats{Kind: "forest", Trees: len(v.trees)}
		if v.compiled != nil {
			s.Nodes = v.compiled.NumNodes()
		}
		return s
	case *GradientBoosting:
		s := ModelStats{Kind: "gbr", Trees: len(v.stages)}
		if v.compiled != nil {
			s.Nodes = v.compiled.NumNodes()
		}
		return s
	case *LinearRegression:
		return ModelStats{Kind: "linreg"}
	case *KNN:
		return ModelStats{Kind: "knn"}
	case *Pipeline:
		inner := StatsOf(v.Model)
		return ModelStats{Kind: "pipeline(" + inner.Kind + ")", Trees: inner.Trees, Nodes: inner.Nodes, Quant: inner.Quant}
	case *Bagging:
		s := ModelStats{Kind: "bagging"}
		for _, m := range v.models {
			ms := StatsOf(m)
			s.Trees += ms.Trees
			s.Nodes += ms.Nodes
			if s.Quant == "" {
				s.Quant = ms.Quant
			}
		}
		return s
	case *Stacking:
		s := ModelStats{Kind: "stacking"}
		for _, b := range v.bases {
			bs := StatsOf(b)
			s.Trees += bs.Trees
			s.Nodes += bs.Nodes
			if s.Quant == "" {
				s.Quant = bs.Quant
			}
		}
		if v.meta != nil {
			ms := StatsOf(v.meta)
			s.Trees += ms.Trees
			s.Nodes += ms.Nodes
			if s.Quant == "" {
				s.Quant = ms.Quant
			}
		}
		return s
	case *QuantizedModel:
		quant := "quant16"
		if v.q.bits == 8 {
			quant = "quant8"
		}
		return ModelStats{Kind: quant, Trees: v.q.NumTrees(), Nodes: v.q.NumNodes(), Quant: quant}
	default:
		return ModelStats{Kind: fmt.Sprintf("%T", m)}
	}
}

// Package ml is a from-scratch, dependency-free implementation of the
// supervised regression estimators the paper takes from scikit-learn
// (Section V): CART decision trees, random forests, extremely randomized
// trees (extra trees), bagging and stacking ensembles, plus the
// supporting cast — ordinary/ridge linear regression, k-nearest
// neighbours, feature standardization, regression metrics (MAPE first
// and foremost) and k-fold cross-validation.
//
// All estimators are deterministic given their Seed, and fit in memory
// on the dataset sizes the paper uses (10^3–10^5 samples).
//
// Contracts callers rely on:
//
//   - Determinism: fitting and prediction are bit-identical for every
//     worker count — parallel loops write results by index and derive
//     per-unit seeds before fan-out (see internal/parallel).
//   - Batch/single equivalence: PredictBatch(X) equals len(X)
//     sequential Predict calls bit for bit, even where the compiled
//     plane scores batches tree-major for cache locality. The serving
//     layer's micro-batch coalescer is built on this guarantee.
//   - The *Into contract: PredictBatchInto-style variants
//     (PredictBatchInto/PredictBatchIntoCtx, estimator
//     PredictBatchInto methods, GradientBoosting.StagedPredictInto)
//     write into a caller-owned output slice of exactly len(X)
//     elements and perform zero allocations per call in steady state
//     with Workers == 1 — single-row scratch (pipeline scaling rows,
//     stacking meta-features) comes from sync.Pools (GetScratch /
//     PutScratch). This is the allocation-free path lam-serve feeds
//     its pooled response buffers through; TestPredictAllocationFree
//     and the serve-side AllocsPerRun guards enforce it in CI.
//   - Fitted estimators are immutable: after a successful Fit, Predict
//     and PredictBatch are safe for unbounded concurrent use, which is
//     what lets the server hot-swap model versions under live traffic.
package ml

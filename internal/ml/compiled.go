package ml

import (
	"fmt"
	"math"
)

// The compiled inference plane. Fitted trees are stored as contiguous
// structure-of-arrays node tables — the same flat form the persistence
// layer has always serialised — instead of per-node heap objects, and
// traversal is an iterative index walk instead of pointer chasing. The
// layout is preorder (a node's left child immediately follows it), so a
// root-to-leaf walk touches a mostly ascending address sequence and an
// ensemble's whole node table lives in a handful of cache lines per
// tree. Every tree-based estimator (DecisionTree, Forest, Bagging over
// tree bases, GradientBoosting) compiles at Fit/load time; there is no
// pointer-tree runtime representation left.
//
// Predictions are bit-identical to the recursive form: the node
// ordering, thresholds and comparison directions are unchanged, only
// the storage differs (asserted exhaustively by TestCompiledEquivalence
// in compiled_test.go).

// CompiledTree is one regression tree flattened onto parallel arrays.
// Leaves have feature[i] < 0; internal nodes satisfy left[i] > i and
// right[i] > i (preorder), which both guarantees traversal terminates
// and keeps walks cache-friendly. The zero value is an empty (unfitted)
// tree.
type CompiledTree struct {
	feature   []int32
	threshold []float64
	value     []float64
	left      []int32
	right     []int32
	// nSamples is the training-sample count per node — diagnostic
	// state carried for the persistence round trip, never read on the
	// prediction hot path.
	nSamples []int32
}

// Len returns the number of nodes.
func (c *CompiledTree) Len() int { return len(c.feature) }

// grow appends a leaf node and returns its index.
func (c *CompiledTree) grow(value float64, n int) int32 {
	idx := int32(len(c.feature))
	c.feature = append(c.feature, -1)
	c.threshold = append(c.threshold, 0)
	c.value = append(c.value, value)
	c.left = append(c.left, -1)
	c.right = append(c.right, -1)
	c.nSamples = append(c.nSamples, int32(n))
	return idx
}

// split turns the leaf at idx into an internal node.
func (c *CompiledTree) split(idx int32, feature int, threshold float64, left, right int32) {
	c.feature[idx] = int32(feature)
	c.threshold[idx] = threshold
	c.left[idx] = left
	c.right[idx] = right
}

// Predict walks the tree iteratively from the root. The caller
// guarantees x has the arity the tree was fitted on (the estimator
// wrappers check). Allocation-free.
func (c *CompiledTree) Predict(x []float64) float64 { return c.predictFrom(0, x) }

// predictFrom walks one tree of a (possibly concatenated) node table
// starting at root. The slice headers are hoisted into locals so the
// loop reloads nothing through the receiver.
func (c *CompiledTree) predictFrom(root int32, x []float64) float64 {
	feature, threshold := c.feature, c.threshold
	left, right := c.left, c.right
	i := root
	for {
		f := feature[i]
		if f < 0 {
			return c.value[i]
		}
		if x[f] <= threshold[i] {
			i = left[i]
		} else {
			i = right[i]
		}
	}
}

// depth returns the tree depth (a lone leaf has depth 1) by one linear
// pass: preorder guarantees parents precede children, so each node's
// depth is known when its children are visited.
func (c *CompiledTree) depth() int {
	n := len(c.feature)
	if n == 0 {
		return 0
	}
	depths := make([]int32, n)
	depths[0] = 1
	max := int32(1)
	for i := 0; i < n; i++ {
		if c.feature[i] < 0 {
			continue
		}
		d := depths[i] + 1
		depths[c.left[i]] = d
		depths[c.right[i]] = d
		if d > max {
			max = d
		}
	}
	return int(max)
}

// numLeaves counts the leaf nodes.
func (c *CompiledTree) numLeaves() int {
	n := 0
	for _, f := range c.feature {
		if f < 0 {
			n++
		}
	}
	return n
}

// validate checks the structural invariants a deserialised node table
// must satisfy: every internal node's children exist and follow it
// (which rules out cycles), and values are finite indices. It accepts
// exactly the tables the builder and the persistence layer produce.
func (c *CompiledTree) validate() error {
	n := len(c.feature)
	if n == 0 {
		return fmt.Errorf("ml: corrupt tree: empty node list")
	}
	if len(c.threshold) != n || len(c.value) != n || len(c.left) != n || len(c.right) != n {
		return fmt.Errorf("ml: corrupt tree: ragged node arrays")
	}
	for i := 0; i < n; i++ {
		if c.feature[i] < 0 {
			continue // leaf; child indices are ignored
		}
		l, r := c.left[i], c.right[i]
		if l <= int32(i) || r <= int32(i) || int(l) >= n || int(r) >= n {
			return fmt.Errorf("ml: corrupt tree: internal node %d has children (%d, %d) outside (%d, %d)", i, l, r, i, n)
		}
	}
	return nil
}

// ensembleCombine selects how a compiled ensemble folds its member
// trees' outputs into one prediction.
type ensembleCombine int

const (
	// combineMean averages the member predictions in tree order —
	// forests and bagged trees.
	combineMean ensembleCombine = iota
	// combineBoosted sums init + rate·treeᵢ(x) in stage order —
	// gradient boosting.
	combineBoosted
)

// CompiledEnsemble is a whole tree ensemble flattened onto one shared
// contiguous node table: every member tree's nodes are concatenated
// (each tree preorder-contiguous) with per-tree root offsets, so batch
// scoring streams through one allocation-free memory region instead of
// hopping between per-tree heaps.
type CompiledEnsemble struct {
	nodes   CompiledTree
	roots   []int32
	combine ensembleCombine
	// init and rate are the boosting constants (combineBoosted only).
	init, rate float64
}

// NumTrees returns the number of member trees.
func (e *CompiledEnsemble) NumTrees() int { return len(e.roots) }

// NumNodes returns the total node count across all members.
func (e *CompiledEnsemble) NumNodes() int { return e.nodes.Len() }

// appendTree copies one compiled tree into the shared node table,
// rebasing its child indices, and records its root.
func (e *CompiledEnsemble) appendTree(t *CompiledTree) {
	base := int32(e.nodes.Len())
	e.roots = append(e.roots, base)
	e.nodes.feature = append(e.nodes.feature, t.feature...)
	e.nodes.threshold = append(e.nodes.threshold, t.threshold...)
	e.nodes.value = append(e.nodes.value, t.value...)
	for _, l := range t.left {
		if l >= 0 {
			l += base
		}
		e.nodes.left = append(e.nodes.left, l)
	}
	for _, r := range t.right {
		if r >= 0 {
			r += base
		}
		e.nodes.right = append(e.nodes.right, r)
	}
}

// compileMeanEnsemble concatenates fitted trees into a mean-combining
// ensemble (forests, bagged trees).
func compileMeanEnsemble(trees []*DecisionTree) *CompiledEnsemble {
	e := &CompiledEnsemble{combine: combineMean}
	for _, t := range trees {
		e.appendTree(&t.nodes)
	}
	return e
}

// compileBoostedEnsemble concatenates boosting stages with their
// shrinkage constants.
func compileBoostedEnsemble(stages []*DecisionTree, init, rate float64) *CompiledEnsemble {
	e := &CompiledEnsemble{combine: combineBoosted, init: init, rate: rate}
	for _, t := range stages {
		e.appendTree(&t.nodes)
	}
	return e
}

// Predict scores one feature vector, folding the member trees in
// order. Bit-identical to summing the members' individual predictions
// the way the estimators' recursive implementations did:
// mean = (t₀+t₁+…)/n, boosted = init + rate·t₀ + rate·t₁ + ….
// Allocation-free.
func (e *CompiledEnsemble) Predict(x []float64) float64 {
	switch e.combine {
	case combineBoosted:
		out := e.init
		for _, r := range e.roots {
			out += e.rate * e.nodes.predictFrom(r, x)
		}
		return out
	default:
		s := 0.0
		for _, r := range e.roots {
			s += e.nodes.predictFrom(r, x)
		}
		return s / float64(len(e.roots))
	}
}

// PredictInto scores one feature vector per member prefix: out[i] is
// the prediction using trees [0, i] — the staged-prediction primitive.
// out must have NumTrees elements. Allocation-free.
func (e *CompiledEnsemble) PredictInto(x []float64, out []float64) {
	switch e.combine {
	case combineBoosted:
		acc := e.init
		for i, r := range e.roots {
			acc += e.rate * e.nodes.predictFrom(r, x)
			out[i] = acc
		}
	default:
		s := 0.0
		for i, r := range e.roots {
			s += e.nodes.predictFrom(r, x)
			out[i] = s / float64(i+1)
		}
	}
}

// batchTreeMajorMinNodes is the node-table size above which batch
// scoring switches from row-major to tree-major traversal. Small
// ensembles (shallow boosting stages) fit in L1/L2 whole, and
// row-major keeps the accumulator in a register; large forests blow
// the cache per row, and tree-major keeps one tree's nodes hot across
// the whole block instead. Either order is bit-identical (see below),
// so the cutoff is purely a performance knob.
const batchTreeMajorMinNodes = 4096

// PredictBatchInto scores every row of X into out sequentially with
// zero allocations; out must have len(X) elements. For large node
// tables the traversal is tree-major — the outer loop walks trees, the
// inner loop rows — so one tree's nodes stay cache-hot across the
// whole block instead of the entire ensemble being re-streamed per
// row. Each out[i] still accumulates its tree contributions in tree
// order, so the result is bit-identical to per-row Predict calls.
// Parallel batch scoring lives in the estimators
// (Forest.PredictBatchInto and friends), which block-split over this
// walk.
func (e *CompiledEnsemble) PredictBatchInto(X [][]float64, out []float64) {
	out = out[:len(X)]
	if e.nodes.Len() < batchTreeMajorMinNodes {
		for i, x := range X {
			out[i] = e.Predict(x)
		}
		return
	}
	switch e.combine {
	case combineBoosted:
		for i := range out {
			out[i] = e.init
		}
		for _, r := range e.roots {
			for i, x := range X {
				out[i] += e.rate * e.nodes.predictFrom(r, x)
			}
		}
	default:
		for i := range out {
			out[i] = 0
		}
		for _, r := range e.roots {
			for i, x := range X {
				out[i] += e.nodes.predictFrom(r, x)
			}
		}
		n := float64(len(e.roots))
		for i := range out {
			out[i] /= n
		}
	}
}

// MeanAbs returns the mean absolute leaf value across the table — a
// cheap structural fingerprint used by tests; NaN for empty ensembles.
func (e *CompiledEnsemble) MeanAbs() float64 {
	if e.nodes.Len() == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range e.nodes.value {
		s += math.Abs(v)
	}
	return s / float64(e.nodes.Len())
}

package ml

import (
	"fmt"
	"math"
	"sync/atomic"
	"unsafe"
)

// b2i32 converts a bool to 0/1 without a branch: the comparison's
// SETcc result is read back as a byte instead of being re-branched on.
func b2i32(b bool) int32 {
	return int32(*(*byte)(unsafe.Pointer(&b)))
}

// The compiled inference plane. Fitted trees are stored as contiguous
// structure-of-arrays node tables — the same flat form the persistence
// layer has always serialised — instead of per-node heap objects, and
// traversal is an iterative index walk instead of pointer chasing.
//
// The node order is *canonical preorder*: a node's left child is always
// the next node (left == i+1), so the left-child array does not exist
// at runtime — only the right-child indices are stored. A root-to-leaf
// walk touches a mostly ascending address sequence, needs one fewer
// cache line per level than the explicit two-child form, and the
// descent itself compiles to a conditional move instead of a branch
// (see predictFrom), so the CPU never mispredicts data-dependent
// splits. Every tree-based estimator (DecisionTree, Forest, Bagging
// over tree bases, GradientBoosting) compiles at Fit/load time; there
// is no pointer-tree runtime representation left.
//
// Alternative traversal layouts (the PR 3 explicit-child walk kept as a
// benchmark baseline, a depth-bucketed level-order batch layout, and
// quantized node tables) are derived from this canonical form — see
// layout.go, levelorder.go and quant.go.
//
// Exact layouts are bit-identical to the recursive form: the node
// ordering, thresholds and comparison directions are unchanged, only
// the storage differs (asserted exhaustively by TestCompiledEquivalence
// in compiled_test.go). Quantized layouts are approximate and opt-in.

// CompiledTree is one regression tree flattened onto parallel arrays in
// canonical preorder. Leaves have feature[i] < 0; internal nodes keep
// their left child at i+1 (implicit, not stored) and their right child
// at right[i] > i+1. This both guarantees traversal terminates and
// keeps walks cache-friendly. The zero value is an empty (unfitted)
// tree.
type CompiledTree struct {
	feature   []int32
	threshold []float64
	value     []float64
	right     []int32
	// nSamples is the training-sample count per node — diagnostic
	// state carried for the persistence round trip, never read on the
	// prediction hot path.
	nSamples []int32
}

// Len returns the number of nodes.
func (c *CompiledTree) Len() int { return len(c.feature) }

// grow appends a leaf node and returns its index.
func (c *CompiledTree) grow(value float64, n int) int32 {
	idx := int32(len(c.feature))
	c.feature = append(c.feature, -1)
	c.threshold = append(c.threshold, 0)
	c.value = append(c.value, value)
	c.right = append(c.right, -1)
	c.nSamples = append(c.nSamples, int32(n))
	return idx
}

// split turns the leaf at idx into an internal node. The builder grows
// the left subtree immediately after idx (preorder), so left must be
// idx+1 — the canonical-layout invariant the whole plane rests on; it
// is asserted here so a future builder change cannot silently corrupt
// traversal.
func (c *CompiledTree) split(idx int32, feature int, threshold float64, left, right int32) {
	if left != idx+1 {
		panic(fmt.Sprintf("ml: tree builder broke the preorder invariant: node %d has left child %d, want %d", idx, left, idx+1))
	}
	c.feature[idx] = int32(feature)
	c.threshold[idx] = threshold
	c.right[idx] = right
}

// Predict walks the tree iteratively from the root. The caller
// guarantees x has the arity the tree was fitted on (the estimator
// wrappers check). Allocation-free.
func (c *CompiledTree) Predict(x []float64) float64 { return c.predictFrom(0, x) }

// predictFrom walks one tree of a (possibly concatenated) node table
// starting at root. The slice headers are hoisted into locals so the
// loop reloads nothing through the receiver, and the descent is
// branchless: the left child is implicit at i+1, so the step is a
// compare and a conditional move, never a data-dependent branch the
// CPU could mispredict. The comparison direction (x <= threshold goes
// left, everything else — including NaN — goes right) is exactly the
// legacy recursive walk's, so exact layouts stay bit-identical.
func (c *CompiledTree) predictFrom(root int32, x []float64) float64 {
	feature, threshold, right := c.feature, c.threshold, c.right
	i := root
	for {
		f := feature[i]
		if f < 0 {
			return c.value[i]
		}
		next := right[i]
		if x[f] <= threshold[i] {
			next = i + 1
		}
		i = next
	}
}

// hotNode packs the three fields the branchless descent reads into one
// 16-byte record, so each visited node costs a single cache line where
// the SoA walk touches three (feature, threshold and right live in
// separate arrays). Leaves reuse the threshold slot for the leaf value
// — the walk never touches the value column at all. Derived from the
// canonical table for LayoutImplicitLeft (the serving default); the
// values are verbatim copies, so the walk stays bit-identical.
type hotNode struct {
	threshold float64 // leaf value when feature < 0
	feature   int32
	right     int32
}

// buildHotNodes packs a (possibly concatenated) canonical node table.
func buildHotNodes(c *CompiledTree) []hotNode {
	hot := make([]hotNode, c.Len())
	for i, f := range c.feature {
		if f < 0 {
			hot[i] = hotNode{threshold: c.value[i], feature: -1}
		} else {
			hot[i] = hotNode{threshold: c.threshold[i], feature: f, right: c.right[i]}
		}
	}
	return hot
}

// predictHot is predictFrom over the packed record array: one cache
// line per visited node and a fully branchless step. Go's compiler
// lowers `if cond { next = i+1 }` to a conditional jump (not CMOV) for
// float-controlled conditions, so the select is done arithmetically:
// the comparison materialises as a SETcc byte (b2i32), negating it
// gives an all-ones/all-zero mask, and the mask picks between right
// and i+1 with no data-dependent control flow for the predictor to
// miss. NaN features compare false and take the right child, exactly
// like the recursive walk.
func predictHot(hot []hotNode, root int32, x []float64) float64 {
	i := root
	for {
		n := hot[i]
		if n.feature < 0 {
			return n.threshold
		}
		goLeft := -b2i32(x[n.feature] <= n.threshold) // all ones when left
		i = n.right + ((i + 1 - n.right) & goLeft)
	}
}

// depth returns the tree depth (a lone leaf has depth 1) by one linear
// pass: preorder guarantees parents precede children, so each node's
// depth is known when its children are visited.
func (c *CompiledTree) depth() int {
	n := len(c.feature)
	if n == 0 {
		return 0
	}
	depths := make([]int32, n)
	depths[0] = 1
	max := int32(1)
	for i := 0; i < n; i++ {
		if c.feature[i] < 0 {
			continue
		}
		d := depths[i] + 1
		depths[i+1] = d
		depths[c.right[i]] = d
		if d > max {
			max = d
		}
	}
	return int(max)
}

// numLeaves counts the leaf nodes.
func (c *CompiledTree) numLeaves() int {
	n := 0
	for _, f := range c.feature {
		if f < 0 {
			n++
		}
	}
	return n
}

// validate checks the structural invariants a deserialised node table
// must satisfy: every internal node's implicit left child (i+1) exists
// and its right child strictly follows the left subtree's first node
// (which rules out cycles). It accepts exactly the canonical tables
// the builder produces; explicit-child inputs from the persistence
// layer are canonicalised first (see canonicalTree in persist.go).
func (c *CompiledTree) validate() error {
	n := len(c.feature)
	if n == 0 {
		return fmt.Errorf("ml: corrupt tree: empty node list")
	}
	if len(c.threshold) != n || len(c.value) != n || len(c.right) != n {
		return fmt.Errorf("ml: corrupt tree: ragged node arrays")
	}
	for i := 0; i < n; i++ {
		if c.feature[i] < 0 {
			continue // leaf; the right slot is ignored
		}
		r := c.right[i]
		if r <= int32(i)+1 || int(r) >= n {
			return fmt.Errorf("ml: corrupt tree: internal node %d has right child %d outside (%d, %d)", i, r, i+1, n)
		}
	}
	return nil
}

// ensembleCombine selects how a compiled ensemble folds its member
// trees' outputs into one prediction.
type ensembleCombine int

const (
	// combineMean averages the member predictions in tree order —
	// forests and bagged trees.
	combineMean ensembleCombine = iota
	// combineBoosted sums init + rate·treeᵢ(x) in stage order —
	// gradient boosting.
	combineBoosted
)

// CompiledEnsemble is a whole tree ensemble flattened onto one shared
// contiguous node table: every member tree's nodes are concatenated
// (each tree preorder-contiguous) with per-tree root offsets, so batch
// scoring streams through one allocation-free memory region instead of
// hopping between per-tree heaps.
//
// The canonical table is the implicit-left branchless layout; SetLayout
// derives the alternative traversal forms (explicit-child baseline,
// level-order batch striding, quantized tables) from it. SetLayout is
// not safe to call concurrently with prediction — apply it right after
// Fit/load, before the ensemble is shared (the registry/serve layers
// do exactly that).
type CompiledEnsemble struct {
	nodes   CompiledTree
	roots   []int32
	combine ensembleCombine
	// init and rate are the boosting constants (combineBoosted only).
	init, rate float64

	// layout is the active traversal layout (always resolved, never
	// LayoutDefault; the zero value acts as LayoutImplicitLeft). The
	// derived tables below are non-nil only for their layout.
	layout Layout
	// hot is the packed 16-byte-per-node walk table for
	// LayoutImplicitLeft (nil for other layouts and for ad-hoc
	// ensembles that never had a layout applied, which fall back to
	// the SoA walk — bit-identical either way).
	hot []hotNode
	// stdLeft is the materialised explicit left-child array for
	// LayoutStandard (the PR 3 baseline walk).
	stdLeft []int32
	// lvl is the depth-bucketed level-order table for LayoutLevelOrder.
	lvl *levelEnsemble
	// qt is the quantized node table for LayoutQuant16/LayoutQuant8.
	qt *quantEnsemble
}

// NumTrees returns the number of member trees.
func (e *CompiledEnsemble) NumTrees() int { return len(e.roots) }

// NumNodes returns the total node count across all members.
func (e *CompiledEnsemble) NumNodes() int { return e.nodes.Len() }

// appendTree copies one compiled tree into the shared node table,
// rebasing its child indices, and records its root.
func (e *CompiledEnsemble) appendTree(t *CompiledTree) {
	base := int32(e.nodes.Len())
	e.roots = append(e.roots, base)
	e.nodes.feature = append(e.nodes.feature, t.feature...)
	e.nodes.threshold = append(e.nodes.threshold, t.threshold...)
	e.nodes.value = append(e.nodes.value, t.value...)
	for _, r := range t.right {
		if r >= 0 {
			r += base
		}
		e.nodes.right = append(e.nodes.right, r)
	}
}

// compileMeanEnsemble concatenates fitted trees into a mean-combining
// ensemble (forests, bagged trees) and applies the process-default
// traversal layout.
func compileMeanEnsemble(trees []*DecisionTree) *CompiledEnsemble {
	e := &CompiledEnsemble{combine: combineMean}
	for _, t := range trees {
		e.appendTree(&t.nodes)
	}
	e.applyDefaultLayout()
	return e
}

// compileBoostedEnsemble concatenates boosting stages with their
// shrinkage constants and applies the process-default traversal layout.
func compileBoostedEnsemble(stages []*DecisionTree, init, rate float64) *CompiledEnsemble {
	e := &CompiledEnsemble{combine: combineBoosted, init: init, rate: rate}
	for _, t := range stages {
		e.appendTree(&t.nodes)
	}
	e.applyDefaultLayout()
	return e
}

// Predict scores one feature vector, folding the member trees in
// order. Exact layouts are bit-identical to summing the members'
// individual predictions the way the estimators' recursive
// implementations did: mean = (t₀+t₁+…)/n, boosted = init + rate·t₀ +
// rate·t₁ + …. Quantized layouts approximate within the documented
// threshold-perturbation bound. Allocation-free.
func (e *CompiledEnsemble) Predict(x []float64) float64 {
	switch e.layout {
	case LayoutQuant16, LayoutQuant8:
		return e.qt.predict(x)
	case LayoutStandard:
		return e.predictStd(x)
	}
	// Implicit-left branchless — also serves LayoutLevelOrder: the
	// level table is a batch-striding layout, single rows walk the
	// canonical preorder form (bit-identical either way). The packed
	// hot table is preferred when the layout built one.
	if e.hot != nil {
		return e.predictHotInterleaved(x)
	}
	switch e.combine {
	case combineBoosted:
		out := e.init
		for _, r := range e.roots {
			out += e.rate * e.nodes.predictFrom(r, x)
		}
		return out
	default:
		s := 0.0
		for _, r := range e.roots {
			s += e.nodes.predictFrom(r, x)
		}
		return s / float64(len(e.roots))
	}
}

// hotLanes is the number of member trees a single-row ensemble walk
// descends simultaneously. Each walk is a serial chain of dependent
// loads — on tables past the cache the walker mostly waits on memory —
// but walks of different trees are independent, so stepping a few in
// lockstep keeps that many misses in flight. Leaf values are still
// folded in tree order, so the result is bit-identical to walking the
// trees one by one.
const hotLanes = 4

// predictHotInterleaved is the implicit-left single-row ensemble walk
// over the packed hot table, hotLanes trees at a time.
func (e *CompiledEnsemble) predictHotInterleaved(x []float64) float64 {
	hot, roots := e.hot, e.roots
	var idx [hotLanes]int32
	var val [hotLanes]float64
	boosted := e.combine == combineBoosted
	out := 0.0
	if boosted {
		out = e.init
	}
	for g := 0; g < len(roots); g += hotLanes {
		m := len(roots) - g
		if m > hotLanes {
			m = hotLanes
		}
		for l := 0; l < m; l++ {
			idx[l] = roots[g+l]
		}
		for active := m; active > 0; {
			active = 0
			for l := 0; l < m; l++ {
				i := idx[l]
				n := hot[i]
				if n.feature < 0 {
					val[l] = n.threshold
					continue
				}
				active++
				goLeft := -b2i32(x[n.feature] <= n.threshold)
				idx[l] = n.right + ((i + 1 - n.right) & goLeft)
			}
		}
		if boosted {
			for l := 0; l < m; l++ {
				out += e.rate * val[l]
			}
		} else {
			for l := 0; l < m; l++ {
				out += val[l]
			}
		}
	}
	if !boosted {
		out /= float64(len(roots))
	}
	return out
}

// predictStd is Predict through the LayoutStandard explicit-child walk
// (the PR 3 baseline kept for benchmarking and regression guarding).
func (e *CompiledEnsemble) predictStd(x []float64) float64 {
	switch e.combine {
	case combineBoosted:
		out := e.init
		for _, r := range e.roots {
			out += e.rate * e.predictFromStd(r, x)
		}
		return out
	default:
		s := 0.0
		for _, r := range e.roots {
			s += e.predictFromStd(r, x)
		}
		return s / float64(len(e.roots))
	}
}

// predictFromStd is the explicit two-child branchy descent: exactly the
// pre-PR 8 hot loop, reading the materialised left array.
func (e *CompiledEnsemble) predictFromStd(root int32, x []float64) float64 {
	feature, threshold := e.nodes.feature, e.nodes.threshold
	left, right := e.stdLeft, e.nodes.right
	i := root
	for {
		f := feature[i]
		if f < 0 {
			return e.nodes.value[i]
		}
		if x[f] <= threshold[i] {
			i = left[i]
		} else {
			i = right[i]
		}
	}
}

// PredictInto scores one feature vector per member prefix: out[i] is
// the prediction using trees [0, i] — the staged-prediction primitive.
// out must have NumTrees elements. Staged prediction is an analysis
// path, not a serving path, so it always walks the exact canonical
// table regardless of the active layout. Allocation-free.
func (e *CompiledEnsemble) PredictInto(x []float64, out []float64) {
	switch e.combine {
	case combineBoosted:
		acc := e.init
		for i, r := range e.roots {
			acc += e.rate * e.nodes.predictFrom(r, x)
			out[i] = acc
		}
	default:
		s := 0.0
		for i, r := range e.roots {
			s += e.nodes.predictFrom(r, x)
			out[i] = s / float64(i+1)
		}
	}
}

// batchTreeMajorMinNodes is the node-table size above which batch
// scoring switches from row-major to tree-major traversal. Small
// ensembles (shallow boosting stages) fit in L1/L2 whole, and
// row-major keeps the accumulator in a register; large forests blow
// the cache per row, and tree-major keeps one tree's nodes hot across
// the whole block instead. Either order is bit-identical (see below),
// so the cutoff is purely a performance knob — tunable per host via
// SetBatchTreeMajorThreshold (the atomic makes runtime retuning safe
// while serving).
var batchTreeMajorMinNodes atomic.Int64

const defaultBatchTreeMajorMinNodes = 4096

func init() { batchTreeMajorMinNodes.Store(defaultBatchTreeMajorMinNodes) }

// SetBatchTreeMajorThreshold tunes the node-table size at which batch
// scoring switches from row-major to tree-major traversal. Values < 1
// restore the built-in default (4096). Both orders are bit-identical;
// the threshold is purely a per-host performance knob (benchmark with
// lam-bench).
func SetBatchTreeMajorThreshold(n int) {
	if n < 1 {
		n = defaultBatchTreeMajorMinNodes
	}
	batchTreeMajorMinNodes.Store(int64(n))
}

// BatchTreeMajorThreshold returns the current row-major/tree-major
// switchover threshold.
func BatchTreeMajorThreshold() int { return int(batchTreeMajorMinNodes.Load()) }

// PredictBatchInto scores every row of X into out sequentially with
// zero steady-state allocations; out must have len(X) elements. For
// large node tables the traversal is tree-major — the outer loop walks
// trees, the inner loop rows — so one tree's nodes stay cache-hot
// across the whole block instead of the entire ensemble being
// re-streamed per row. Each out[i] still accumulates its tree
// contributions in tree order, so exact layouts are bit-identical to
// per-row Predict calls. Parallel batch scoring lives in the
// estimators (Forest.PredictBatchInto and friends), which block-split
// over this walk.
func (e *CompiledEnsemble) PredictBatchInto(X [][]float64, out []float64) {
	out = out[:len(X)]
	switch e.layout {
	case LayoutQuant16, LayoutQuant8:
		e.qt.predictBatchInto(X, out)
		return
	case LayoutLevelOrder:
		e.lvl.predictBatchInto(e, X, out)
		return
	}
	if int64(e.nodes.Len()) < batchTreeMajorMinNodes.Load() {
		for i, x := range X {
			out[i] = e.Predict(x)
		}
		return
	}
	if e.layout == LayoutStandard {
		e.predictBatchTreeMajorStd(X, out)
		return
	}
	hot := e.hot
	switch e.combine {
	case combineBoosted:
		for i := range out {
			out[i] = e.init
		}
		for _, r := range e.roots {
			if hot != nil {
				predictHotTreeRows(hot, r, X, out, e.rate)
			} else {
				for i, x := range X {
					out[i] += e.rate * e.nodes.predictFrom(r, x)
				}
			}
		}
	default:
		for i := range out {
			out[i] = 0
		}
		for _, r := range e.roots {
			if hot != nil {
				predictHotTreeRows(hot, r, X, out, 1)
			} else {
				for i, x := range X {
					out[i] += e.nodes.predictFrom(r, x)
				}
			}
		}
		n := float64(len(e.roots))
		for i := range out {
			out[i] /= n
		}
	}
}

// predictHotTreeRows accumulates one tree's scaled leaf values into out
// for every row of X, hotLanes rows in lockstep — the batch twin of
// predictHotInterleaved: within a tree the rows are independent walks,
// so stepping a few at once keeps their loads in flight. The caller's
// outer loop still visits trees in order, so each out[i] accumulates
// tree contributions exactly as the row-major walk would.
func predictHotTreeRows(hot []hotNode, r int32, X [][]float64, out []float64, scale float64) {
	var idx [hotLanes]int32
	var val [hotLanes]float64
	for g := 0; g < len(X); g += hotLanes {
		m := len(X) - g
		if m > hotLanes {
			m = hotLanes
		}
		for l := 0; l < m; l++ {
			idx[l] = r
		}
		for active := m; active > 0; {
			active = 0
			for l := 0; l < m; l++ {
				i := idx[l]
				n := hot[i]
				if n.feature < 0 {
					val[l] = n.threshold
					continue
				}
				active++
				x := X[g+l]
				goLeft := -b2i32(x[n.feature] <= n.threshold)
				idx[l] = n.right + ((i + 1 - n.right) & goLeft)
			}
		}
		for l := 0; l < m; l++ {
			out[g+l] += scale * val[l]
		}
	}
}

// predictBatchTreeMajorStd is the tree-major batch walk through the
// LayoutStandard explicit-child descent.
func (e *CompiledEnsemble) predictBatchTreeMajorStd(X [][]float64, out []float64) {
	switch e.combine {
	case combineBoosted:
		for i := range out {
			out[i] = e.init
		}
		for _, r := range e.roots {
			for i, x := range X {
				out[i] += e.rate * e.predictFromStd(r, x)
			}
		}
	default:
		for i := range out {
			out[i] = 0
		}
		for _, r := range e.roots {
			for i, x := range X {
				out[i] += e.predictFromStd(r, x)
			}
		}
		n := float64(len(e.roots))
		for i := range out {
			out[i] /= n
		}
	}
}

// MeanAbs returns the mean absolute leaf value across the table — a
// cheap structural fingerprint used by tests; NaN for empty ensembles.
func (e *CompiledEnsemble) MeanAbs() float64 {
	if e.nodes.Len() == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range e.nodes.value {
		s += math.Abs(v)
	}
	return s / float64(e.nodes.Len())
}

package ml

import (
	"math"
	"math/rand"
	"testing"
)

// parallelTestData builds a deterministic nonlinear regression problem.
func parallelTestData(n int) (X [][]float64, y []float64) {
	rng := rand.New(rand.NewSource(11))
	X = make([][]float64, n)
	y = make([]float64, n)
	for i := range X {
		a, b, c := rng.Float64()*4, rng.Float64()*4, rng.Float64()*4
		X[i] = []float64{a, b, c}
		y[i] = a*b + math.Sin(c) + 0.05*rng.NormFloat64()
	}
	return X, y
}

func identical(t *testing.T, name string, seq, par []float64) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("%s: length mismatch %d vs %d", name, len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("%s: output %d differs: sequential %v, parallel %v", name, i, seq[i], par[i])
		}
	}
}

// TestForestParallelFitBitIdentical is the core determinism guarantee:
// a forest fitted on one worker and one fitted on many produce
// byte-identical predictions under the same seed.
func TestForestParallelFitBitIdentical(t *testing.T) {
	X, y := parallelTestData(200)
	for _, bootstrap := range []bool{false, true} {
		seq := &Forest{NTrees: 30, Bootstrap: bootstrap, Seed: 5, Workers: 1}
		par := &Forest{NTrees: 30, Bootstrap: bootstrap, Seed: 5, Workers: 8}
		if err := seq.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if err := par.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		identical(t, "forest predictions",
			PredictBatchWorkers(seq, X, 1), par.PredictBatch(X))
	}
}

func TestBaggingParallelFitBitIdentical(t *testing.T) {
	X, y := parallelTestData(150)
	newBag := func(workers int) *Bagging {
		return &Bagging{
			NewBase: func() Regressor {
				return &DecisionTree{Config: TreeConfig{MaxDepth: 6}}
			},
			N:       20,
			Seed:    9,
			Workers: workers,
		}
	}
	seq, par := newBag(1), newBag(8)
	if err := seq.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := par.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	identical(t, "bagging predictions",
		PredictBatchWorkers(seq, X, 1), par.PredictBatch(X))
}

func TestGradientBoostingParallelBitIdentical(t *testing.T) {
	X, y := parallelTestData(150)
	seq := &GradientBoosting{NStages: 25, Subsample: 0.7, Seed: 3, Workers: 1}
	par := &GradientBoosting{NStages: 25, Subsample: 0.7, Seed: 3, Workers: 8}
	if err := seq.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := par.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	identical(t, "gbr predictions",
		PredictBatchWorkers(seq, X, 1), PredictBatchWorkers(par, X, 8))
}

func TestStackingParallelBitIdentical(t *testing.T) {
	X, y := parallelTestData(120)
	newStack := func(workers int) *Stacking {
		return &Stacking{
			NewBases: []func() Regressor{
				func() Regressor { return &DecisionTree{Config: TreeConfig{MaxDepth: 4}} },
				func() Regressor { return &LinearRegression{} },
			},
			NewMeta:     func() Regressor { return &LinearRegression{} },
			PassThrough: true,
			KFold:       4,
			Seed:        7,
			Workers:     workers,
		}
	}
	seq, par := newStack(1), newStack(8)
	if err := seq.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := par.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	identical(t, "stacking predictions",
		PredictBatchWorkers(seq, X, 1), PredictBatchWorkers(par, X, 8))
}

func TestCrossValParallelBitIdentical(t *testing.T) {
	X, y := parallelTestData(120)
	newModel := func() Regressor { return &DecisionTree{Config: TreeConfig{MaxDepth: 5}} }
	seq, err := CrossValScoreWorkers(newModel, X, y, 5, 13, MAPE, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CrossValScoreWorkers(newModel, X, y, 5, 13, MAPE, 8)
	if err != nil {
		t.Fatal(err)
	}
	identical(t, "cross-validation fold scores", seq, par)
}

func TestGridSearchParallelBitIdentical(t *testing.T) {
	X, y := parallelTestData(100)
	grids := []ParamGrid{
		{Name: "depth", Values: []float64{2, 4, 6}},
		{Name: "leaf", Values: []float64{1, 5}},
	}
	newModel := func(p map[string]float64) Regressor {
		return &DecisionTree{Config: TreeConfig{
			MaxDepth:       int(p["depth"]),
			MinSamplesLeaf: int(p["leaf"]),
		}}
	}
	bestSeq, allSeq, err := GridSearchWorkers(grids, newModel, X, y, 3, 17, MAPE, 1)
	if err != nil {
		t.Fatal(err)
	}
	bestPar, allPar, err := GridSearchWorkers(grids, newModel, X, y, 3, 17, MAPE, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(allSeq) != len(allPar) {
		t.Fatalf("candidate count differs: %d vs %d", len(allSeq), len(allPar))
	}
	for i := range allSeq {
		if allSeq[i].Score != allPar[i].Score {
			t.Fatalf("candidate %d score differs: %v vs %v", i, allSeq[i].Score, allPar[i].Score)
		}
		for k, v := range allSeq[i].Params {
			if allPar[i].Params[k] != v {
				t.Fatalf("candidate %d enumerated out of order", i)
			}
		}
	}
	if bestSeq.Score != bestPar.Score {
		t.Fatalf("best score differs: %v vs %v", bestSeq.Score, bestPar.Score)
	}
	for k, v := range bestSeq.Params {
		if bestPar.Params[k] != v {
			t.Fatalf("best params differ at %q: %v vs %v", k, v, bestPar.Params[k])
		}
	}
}

// TestParallelDegenerateInputs checks the Workers <= 0 / tiny-dataset
// guard rails: everything degrades to sequential instead of panicking
// or deadlocking.
func TestParallelDegenerateInputs(t *testing.T) {
	X := [][]float64{{1, 2}}
	y := []float64{3}

	for _, workers := range []int{-4, 0, 1, 16} {
		f := &Forest{NTrees: 5, Seed: 1, Workers: workers}
		if err := f.Fit(X, y); err != nil {
			t.Fatalf("forest on single sample (workers=%d): %v", workers, err)
		}
		if got := f.PredictBatch(X); len(got) != 1 || got[0] != 3 {
			t.Fatalf("forest predict on single sample (workers=%d): %v", workers, got)
		}

		b := &Bagging{
			NewBase: func() Regressor { return &DecisionTree{} },
			N:       3, Seed: 1, Workers: workers,
		}
		if err := b.Fit(X, y); err != nil {
			t.Fatalf("bagging on single sample (workers=%d): %v", workers, err)
		}

		g := &GradientBoosting{NStages: 3, Workers: workers}
		if err := g.Fit(X, y); err != nil {
			t.Fatalf("gbr on single sample (workers=%d): %v", workers, err)
		}
	}

	if got := PredictBatchWorkers(&constModel{v: 2}, nil, -1); len(got) != 0 {
		t.Fatalf("PredictBatch on empty input: %v", got)
	}
}

type constModel struct{ v float64 }

func (c *constModel) Fit([][]float64, []float64) error { return nil }
func (c *constModel) Predict([]float64) float64        { return c.v }

package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthetic builds n samples of a noiseless piecewise function of two
// features that a tree can represent exactly.
func synthetic(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a := rng.Float64() * 10
		b := rng.Float64() * 10
		X[i] = []float64{a, b}
		switch {
		case a < 5 && b < 5:
			y[i] = 1
		case a < 5:
			y[i] = 2
		case b < 5:
			y[i] = 3
		default:
			y[i] = 4
		}
	}
	return X, y
}

func TestTreeFitsPiecewiseExactly(t *testing.T) {
	X, y := synthetic(400, 1)
	tree := NewDecisionTree(TreeConfig{})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		if got := tree.Predict(x); got != y[i] {
			t.Fatalf("training sample %d: predict %v, want %v", i, got, y[i])
		}
	}
	// A fresh grid point inside each region must also be exact.
	probes := []struct {
		x    []float64
		want float64
	}{
		{[]float64{1, 1}, 1}, {[]float64{1, 9}, 2}, {[]float64{9, 1}, 3}, {[]float64{9, 9}, 4},
	}
	for _, p := range probes {
		if got := tree.Predict(p.x); got != p.want {
			t.Errorf("probe %v: predict %v, want %v", p.x, got, p.want)
		}
	}
}

func TestTreeConstantResponseIsSingleLeaf(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	tree := NewDecisionTree(TreeConfig{})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 1 {
		t.Errorf("constant response grew %d leaves, want 1", tree.NumLeaves())
	}
	if got := tree.Predict([]float64{99}); got != 7 {
		t.Errorf("predict = %v, want 7", got)
	}
}

func TestTreeMaxDepth(t *testing.T) {
	X, y := synthetic(400, 2)
	tree := NewDecisionTree(TreeConfig{MaxDepth: 2})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 2 {
		t.Errorf("depth = %d, want <= 2", d)
	}
	if l := tree.NumLeaves(); l > 2 {
		t.Errorf("leaves = %d, want <= 2 at depth 2", l)
	}
}

func TestTreeMinSamplesLeaf(t *testing.T) {
	X, y := synthetic(100, 3)
	tree := NewDecisionTree(TreeConfig{MinSamplesLeaf: 10})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	assertLeafSizes(t, &tree.nodes, 10)
}

func assertLeafSizes(t *testing.T, c *CompiledTree, min int) {
	t.Helper()
	for i := 0; i < c.Len(); i++ {
		if c.feature[i] < 0 && int(c.nSamples[i]) < min {
			t.Errorf("leaf %d holds %d samples, want >= %d", i, c.nSamples[i], min)
		}
	}
}

func TestTreeMinSamplesSplit(t *testing.T) {
	X, y := synthetic(50, 4)
	tree := NewDecisionTree(TreeConfig{MinSamplesSplit: 1000})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 1 {
		t.Errorf("MinSamplesSplit > n should give a stump, got %d leaves", tree.NumLeaves())
	}
}

func TestTreeDeterminism(t *testing.T) {
	X, y := synthetic(300, 5)
	for _, splitter := range []Splitter{BestSplitter, RandomSplitter} {
		a := NewDecisionTree(TreeConfig{Splitter: splitter, Seed: 42})
		b := NewDecisionTree(TreeConfig{Splitter: splitter, Seed: 42})
		if err := a.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			x := []float64{float64(i) / 5, float64(50-i) / 5}
			if a.Predict(x) != b.Predict(x) {
				t.Fatalf("splitter %v: trees with equal seeds disagree at %v", splitter, x)
			}
		}
	}
}

func TestTreePredictionWithinTrainingRange(t *testing.T) {
	// Property: any tree prediction is a mean of training responses, so
	// it must lie within [min(y), max(y)].
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := range X {
			X[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			y[i] = rng.NormFloat64() * 100
		}
		lo, hi := y[0], y[0]
		for _, v := range y {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for _, splitter := range []Splitter{BestSplitter, RandomSplitter} {
			tree := NewDecisionTree(TreeConfig{Splitter: splitter, Seed: seed})
			if err := tree.Fit(X, y); err != nil {
				return false
			}
			for i := 0; i < 20; i++ {
				x := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3, rng.NormFloat64() * 3}
				p := tree.Predict(x)
				if p < lo-1e-9 || p > hi+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTreeFullyGrownInterpolatesTraining(t *testing.T) {
	// Property: with MinSamplesLeaf=1 and unlimited depth, distinct
	// feature vectors are predicted exactly.
	rng := rand.New(rand.NewSource(9))
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	seen := map[float64]bool{}
	for i := range X {
		v := rng.Float64()
		for seen[v] {
			v = rng.Float64()
		}
		seen[v] = true
		X[i] = []float64{v}
		y[i] = v*v + 3
	}
	tree := NewDecisionTree(TreeConfig{})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if got := tree.Predict(X[i]); math.Abs(got-y[i]) > 1e-12 {
			t.Fatalf("sample %d: predict %v, want %v", i, got, y[i])
		}
	}
}

func TestTreeErrors(t *testing.T) {
	tree := NewDecisionTree(TreeConfig{})
	if err := tree.Fit(nil, nil); err == nil {
		t.Error("expected error on empty training set")
	}
	if err := tree.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected error on length mismatch")
	}
	if err := tree.Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Error("expected error on ragged matrix")
	}
	if err := tree.Fit([][]float64{{}, {}}, []float64{1, 2}); err == nil {
		t.Error("expected error on zero features")
	}
}

func TestTreePredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDecisionTree(TreeConfig{}).Predict([]float64{1})
}

func TestTreePredictArityPanics(t *testing.T) {
	X, y := synthetic(50, 6)
	tree := NewDecisionTree(TreeConfig{})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong arity")
		}
	}()
	tree.Predict([]float64{1})
}

func TestTreeFeatureImportances(t *testing.T) {
	// Response depends only on feature 0; importance must concentrate there.
	rng := rand.New(rand.NewSource(7))
	n := 500
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64()}
		if X[i][0] > 0.5 {
			y[i] = 10
		} else {
			y[i] = 0
		}
	}
	tree := NewDecisionTree(TreeConfig{})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := tree.FeatureImportances()
	if len(imp) != 2 {
		t.Fatalf("importances len = %d, want 2", len(imp))
	}
	if imp[0] < 0.9 {
		t.Errorf("feature 0 importance = %v, want > 0.9 (got %v)", imp[0], imp)
	}
	sum := imp[0] + imp[1]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v, want 1", sum)
	}
}

func TestTreeDuplicateFeatureValues(t *testing.T) {
	// Equal feature values with different responses must not split
	// between them; the tree must still terminate and average.
	X := [][]float64{{1}, {1}, {1}, {2}, {2}}
	y := []float64{1, 2, 3, 10, 20}
	tree := NewDecisionTree(TreeConfig{})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{1}); got != 2 {
		t.Errorf("predict(1) = %v, want 2 (mean of duplicates)", got)
	}
	if got := tree.Predict([]float64{2}); got != 15 {
		t.Errorf("predict(2) = %v, want 15", got)
	}
}

func TestRandomSplitterReducesErrorVsStump(t *testing.T) {
	X, y := synthetic(400, 8)
	full := NewDecisionTree(TreeConfig{Splitter: RandomSplitter, Seed: 1})
	if err := full.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	stump := NewDecisionTree(TreeConfig{Splitter: RandomSplitter, Seed: 1, MaxDepth: 1})
	if err := stump.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	fullErr := RMSE(y, PredictBatch(full, X))
	stumpErr := RMSE(y, PredictBatch(stump, X))
	if fullErr >= stumpErr {
		t.Errorf("full tree RMSE %v should beat stump %v", fullErr, stumpErr)
	}
}

func TestTreeMaxFeatures(t *testing.T) {
	X, y := synthetic(200, 11)
	tree := NewDecisionTree(TreeConfig{MaxFeatures: 1, Seed: 3})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Sanity only: the tree must fit and keep predictions in range.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	p := tree.Predict([]float64{5, 5})
	if p < lo || p > hi {
		t.Errorf("prediction %v outside [%v, %v]", p, lo, hi)
	}
}

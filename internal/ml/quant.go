package ml

import (
	"fmt"
	"math"
)

// Quantized node tables (LayoutQuant16 / LayoutQuant8 and the
// standalone QuantizedModel). The exact table spends 28 bytes per node
// (feature i32, right i32, nSamples i32, threshold f64, value f64);
// the quantized table spends 6 (16-bit) or 5 (8-bit) plus 4 bytes per
// leaf value, a ~3.5-4x shrink that lets 100-tree ensembles sit in
// L1/L2:
//
//   - thresholds are per-feature affine-coded unsigned integers:
//     q(v) = clamp(floor((v - lo[f]) · scale[f]), 0, maxQ) with lo/hi
//     the min/max threshold of feature f across the ensemble and
//     scale = (maxQ-1) / (hi - lo) — one bucket of headroom, so the
//     top threshold codes to maxQ-1 and a row above every threshold
//     still clamps to maxQ and routes right. A row is quantized once
//     per predict and every split compares integers.
//   - child links are implicit-left preorder with a tree-local uint16
//     right index; at a leaf the same slot holds the tree-local leaf
//     ordinal into a shared float32 leaf-value array.
//
// The mode is approximate, with a hard geometric bound: a split can
// only flip for rows within one quantization step (hi-lo)/(maxQ-1)
// above its threshold — left routing is always preserved, floor being
// monotone (pinned by the error-bound property test in quant_test.go).
// Exact modes are unaffected. Caveats: rows are
// assumed finite — NaN features lose the legacy NaN-goes-right
// routing — and predictions are no longer bit-identical to the exact
// table, so quantized artifacts are published as new versions, never
// swapped in place.

// quantEnsemble is the quantized twin of CompiledEnsemble.
type quantEnsemble struct {
	bits       int // 8 or 16
	combine    ensembleCombine
	init, rate float64
	nFeatures  int

	roots    []int32 // per-tree first node (into the node arrays)
	leafBase []int32 // per-tree first leaf ordinal (into leafVal)

	feature []int16  // per node; < 0 marks a leaf
	next    []uint16 // tree-local right-child index; leaf ordinal at leaves
	qthr16  []uint16 // bits == 16
	qthr8   []uint8  // bits == 8
	leafVal []float32

	lo    []float64 // per feature: minimum threshold
	scale []float64 // per feature: maxQ / (hi - lo)
}

// quantMaxNodesPerTree bounds one tree's node count and leaf count so
// tree-local links fit uint16.
const quantMaxNodesPerTree = 1 << 16

// maxQ returns the top quantization code.
func (q *quantEnsemble) maxQ() float64 {
	if q.bits == 8 {
		return 255
	}
	return 65535
}

// NumTrees returns the number of member trees.
func (q *quantEnsemble) NumTrees() int { return len(q.roots) }

// NumNodes returns the total node count.
func (q *quantEnsemble) NumNodes() int { return len(q.feature) }

// TableBytes returns the quantized table footprint in bytes — the
// number the ~4x shrink claim is measured on (node arrays, leaf
// values, per-tree offsets and the per-feature affine code).
func (q *quantEnsemble) TableBytes() int {
	return len(q.feature)*2 + len(q.next)*2 + len(q.qthr16)*2 + len(q.qthr8) +
		len(q.leafVal)*4 + (len(q.roots)+len(q.leafBase))*4 + (len(q.lo)+len(q.scale))*8
}

// exactTableBytes is the canonical table's per-node footprint for the
// same ensemble, for shrink-factor reporting.
func exactTableBytes(e *CompiledEnsemble) int {
	return e.nodes.Len()*28 + len(e.roots)*4
}

// buildQuantEnsemble quantizes a compiled ensemble's node table. The
// feature arity is inferred from the table (max feature index + 1) —
// unreferenced trailing features simply never participate in a split.
// Errors when a tree exceeds the uint16 link space or a feature index
// exceeds int16.
func buildQuantEnsemble(e *CompiledEnsemble, bits int) (*quantEnsemble, error) {
	if bits != 8 && bits != 16 {
		return nil, fmt.Errorf("ml: quantization bits must be 8 or 16, got %d", bits)
	}
	n := e.nodes.Len()
	if n == 0 {
		return nil, fmt.Errorf("ml: cannot quantize an empty ensemble")
	}
	c := &e.nodes
	nFeatures := 0
	for _, f := range c.feature {
		if int(f) >= nFeatures {
			nFeatures = int(f) + 1
		}
	}
	if nFeatures > math.MaxInt16 {
		return nil, fmt.Errorf("ml: cannot quantize: %d features exceed the int16 feature space", nFeatures)
	}
	q := &quantEnsemble{
		bits: bits, combine: e.combine, init: e.init, rate: e.rate,
		nFeatures: nFeatures,
		roots:     make([]int32, 0, len(e.roots)),
		leafBase:  make([]int32, 0, len(e.roots)),
		feature:   make([]int16, n),
		next:      make([]uint16, n),
		lo:        make([]float64, nFeatures),
		scale:     make([]float64, nFeatures),
	}
	// Per-feature threshold range across the whole ensemble.
	hi := make([]float64, nFeatures)
	seen := make([]bool, nFeatures)
	for i, f := range c.feature {
		if f < 0 {
			continue
		}
		t := c.threshold[i]
		if !seen[f] {
			q.lo[f], hi[f], seen[f] = t, t, true
		} else {
			if t < q.lo[f] {
				q.lo[f] = t
			}
			if t > hi[f] {
				hi[f] = t
			}
		}
	}
	maxQ := q.maxQ()
	for f := range q.scale {
		switch {
		case !seen[f]:
			q.scale[f] = 0 // feature never split on; codes are all 0
		case hi[f] > q.lo[f]:
			// maxQ-1, not maxQ: the top threshold must code strictly
			// below the row clamp or nothing could route right of it.
			q.scale[f] = (maxQ - 1) / (hi[f] - q.lo[f])
		default:
			// One distinct threshold t: code 0 for v <= t, maxQ above.
			// (v-t)·MaxFloat64 overflows to +Inf for any v
			// meaningfully above t and clamps to maxQ; v <= t gives a
			// non-positive product that clamps to 0.
			q.scale[f] = math.MaxFloat64
		}
	}
	qthr := make([]float64, n) // staging before narrowing
	for i, f := range c.feature {
		if f < 0 {
			continue
		}
		qthr[i] = quantizeCode(c.threshold[i], q.lo[f], q.scale[f], maxQ)
	}
	if q.bits == 8 {
		q.qthr8 = make([]uint8, n)
		for i, v := range qthr {
			q.qthr8[i] = uint8(v)
		}
	} else {
		q.qthr16 = make([]uint16, n)
		for i, v := range qthr {
			q.qthr16[i] = uint16(v)
		}
	}
	// Per-tree link and leaf-value re-emission.
	for t, root := range e.roots {
		end := n
		if t+1 < len(e.roots) {
			end = int(e.roots[t+1])
		}
		treeLen := end - int(root)
		if treeLen > quantMaxNodesPerTree {
			return nil, fmt.Errorf("ml: cannot quantize: tree %d has %d nodes, exceeding the uint16 link space (%d)", t, treeLen, quantMaxNodesPerTree)
		}
		q.roots = append(q.roots, root)
		q.leafBase = append(q.leafBase, int32(len(q.leafVal)))
		leaves := 0
		for g := int(root); g < end; g++ {
			f := c.feature[g]
			if f < 0 {
				q.feature[g] = -1
				q.next[g] = uint16(leaves)
				q.leafVal = append(q.leafVal, float32(c.value[g]))
				leaves++
			} else {
				q.feature[g] = int16(f)
				q.next[g] = uint16(c.right[g] - root)
			}
		}
	}
	return q, nil
}

// quantizeCode maps a value to its quantization code as a float64
// (the caller narrows). Non-finite products (NaN from NaN inputs,
// -Inf) clamp to 0, +Inf to maxQ.
func quantizeCode(v, lo, scale, maxQ float64) float64 {
	c := math.Floor((v - lo) * scale)
	if !(c > 0) { // also catches NaN
		return 0
	}
	if c > maxQ {
		return maxQ
	}
	return c
}

// quantizeRow quantizes one feature row into qx (len nFeatures).
func (q *quantEnsemble) quantizeRow(x []float64, qx []uint16) {
	maxQ := q.maxQ()
	for f := range qx {
		qx[f] = uint16(quantizeCode(x[f], q.lo[f], q.scale[f], maxQ))
	}
}

// quantWalk is the branchless implicit-left descent over a quantized
// tree: identical control flow to CompiledTree.predictFrom but with
// integer compares and a tree-local link array. Generic over the
// threshold width so both modes share one loop body.
func quantWalk[T uint8 | uint16](feature []int16, qthr []T, next []uint16, leafVal []float32, base, lbase int32, qx []uint16) float64 {
	j := base
	for {
		f := feature[j]
		if f < 0 {
			return float64(leafVal[lbase+int32(next[j])])
		}
		nxt := base + int32(next[j])
		if qx[f] <= uint16(qthr[j]) {
			nxt = j + 1
		}
		j = nxt
	}
}

// predictQuantized folds the member trees over one quantized row,
// hotLanes trees at a time (same latency-hiding interleave as
// predictHotInterleaved; leaf values still fold in tree order).
func (q *quantEnsemble) predictQuantized(qx []uint16) float64 {
	if q.bits == 8 {
		return quantFoldInterleaved(q, q.qthr8, qx)
	}
	return quantFoldInterleaved(q, q.qthr16, qx)
}

// quantFoldInterleaved walks hotLanes member trees in lockstep over one
// quantized row. Lanes carry their own tree base and leaf base since
// links and leaf ordinals are tree-local.
func quantFoldInterleaved[T uint8 | uint16](q *quantEnsemble, qthr []T, qx []uint16) float64 {
	feature, next, leafVal, roots := q.feature, q.next, q.leafVal, q.roots
	var idx, base, lb [hotLanes]int32
	var val [hotLanes]float64
	boosted := q.combine == combineBoosted
	out := 0.0
	if boosted {
		out = q.init
	}
	for g := 0; g < len(roots); g += hotLanes {
		m := len(roots) - g
		if m > hotLanes {
			m = hotLanes
		}
		for l := 0; l < m; l++ {
			idx[l], base[l], lb[l] = roots[g+l], roots[g+l], q.leafBase[g+l]
		}
		for active := m; active > 0; {
			active = 0
			for l := 0; l < m; l++ {
				j := idx[l]
				f := feature[j]
				if f < 0 {
					val[l] = float64(leafVal[lb[l]+int32(next[j])])
					continue
				}
				active++
				nxt := base[l] + int32(next[j])
				if qx[f] <= uint16(qthr[j]) {
					nxt = j + 1
				}
				idx[l] = nxt
			}
		}
		if boosted {
			for l := 0; l < m; l++ {
				out += q.rate * val[l]
			}
		} else {
			for l := 0; l < m; l++ {
				out += val[l]
			}
		}
	}
	if !boosted {
		out /= float64(len(roots))
	}
	return out
}

// predict quantizes one row (pooled scratch) and folds the trees.
// Steady-state allocation-free.
func (q *quantEnsemble) predict(x []float64) float64 {
	qp := getScratchU16(q.nFeatures)
	qx := *qp
	q.quantizeRow(x, qx)
	out := q.predictQuantized(qx)
	putScratchU16(qp)
	return out
}

// predictBatchInto scores a row block. Rows are quantized once into a
// pooled flat buffer; above the tree-major threshold the outer loop
// walks trees so the (already small) quantized table's hot span stays
// resident across the whole block.
func (q *quantEnsemble) predictBatchInto(X [][]float64, out []float64) {
	p := q.nFeatures
	qp := getScratchU16(len(X) * p)
	flat := *qp
	for i, x := range X {
		q.quantizeRow(x, flat[i*p:(i+1)*p])
	}
	if int64(len(q.feature)) < batchTreeMajorMinNodes.Load() {
		for i := range X {
			out[i] = q.predictQuantized(flat[i*p : (i+1)*p])
		}
		putScratchU16(qp)
		return
	}
	if q.combine == combineBoosted {
		for i := range out {
			out[i] = q.init
		}
		for t, r := range q.roots {
			lb := q.leafBase[t]
			if q.bits == 8 {
				quantTreeRows(q, q.qthr8, r, lb, flat, p, out, q.rate)
			} else {
				quantTreeRows(q, q.qthr16, r, lb, flat, p, out, q.rate)
			}
		}
	} else {
		for i := range out {
			out[i] = 0
		}
		for t, r := range q.roots {
			lb := q.leafBase[t]
			if q.bits == 8 {
				quantTreeRows(q, q.qthr8, r, lb, flat, p, out, 1)
			} else {
				quantTreeRows(q, q.qthr16, r, lb, flat, p, out, 1)
			}
		}
		n := float64(len(q.roots))
		for i := range out {
			out[i] /= n
		}
	}
	putScratchU16(qp)
}

// quantTreeRows accumulates one quantized tree's scaled leaf values
// into out for every row of the flat quantized block, hotLanes rows in
// lockstep (the quantized twin of predictHotTreeRows). The caller's
// outer loop visits trees in order, so each out[i] accumulates exactly
// as the per-row fold would.
func quantTreeRows[T uint8 | uint16](q *quantEnsemble, qthr []T, r, lb int32, flat []uint16, p int, out []float64, scale float64) {
	feature, next, leafVal := q.feature, q.next, q.leafVal
	var idx [hotLanes]int32
	var val [hotLanes]float64
	rows := len(out)
	for g := 0; g < rows; g += hotLanes {
		m := rows - g
		if m > hotLanes {
			m = hotLanes
		}
		for l := 0; l < m; l++ {
			idx[l] = r
		}
		for active := m; active > 0; {
			active = 0
			for l := 0; l < m; l++ {
				j := idx[l]
				f := feature[j]
				if f < 0 {
					val[l] = float64(leafVal[lb+int32(next[j])])
					continue
				}
				active++
				nxt := r + int32(next[j])
				if flat[(g+l)*p+int(f)] <= uint16(qthr[j]) {
					nxt = j + 1
				}
				idx[l] = nxt
			}
		}
		for l := 0; l < m; l++ {
			out[g+l] += scale * val[l]
		}
	}
}

// validate checks a deserialised quantized table's structural
// invariants (the quantized twin of CompiledTree.validate): per-tree
// implicit-left preorder links, leaf ordinals within the shared value
// array, features within arity.
func (q *quantEnsemble) validate() error {
	n := len(q.feature)
	if n == 0 || len(q.roots) == 0 {
		return fmt.Errorf("ml: corrupt quantized table: empty")
	}
	if len(q.next) != n || len(q.leafBase) != len(q.roots) {
		return fmt.Errorf("ml: corrupt quantized table: ragged arrays")
	}
	if q.bits == 8 && len(q.qthr8) != n || q.bits == 16 && len(q.qthr16) != n {
		return fmt.Errorf("ml: corrupt quantized table: threshold array length mismatch")
	}
	if len(q.lo) != q.nFeatures || len(q.scale) != q.nFeatures {
		return fmt.Errorf("ml: corrupt quantized table: affine code length mismatch")
	}
	for t, root := range q.roots {
		if t == 0 && root != 0 {
			return fmt.Errorf("ml: corrupt quantized table: first root at %d", root)
		}
		end := int32(n)
		if t+1 < len(q.roots) {
			end = q.roots[t+1]
		}
		if root < 0 || root >= end {
			return fmt.Errorf("ml: corrupt quantized table: tree %d spans [%d, %d)", t, root, end)
		}
		lb := q.leafBase[t]
		lend := int32(len(q.leafVal))
		if t+1 < len(q.leafBase) {
			lend = q.leafBase[t+1]
		}
		if lb < 0 || lb > lend || lend > int32(len(q.leafVal)) {
			return fmt.Errorf("ml: corrupt quantized table: tree %d leaf span [%d, %d)", t, lb, lend)
		}
		for j := root; j < end; j++ {
			f := q.feature[j]
			if f >= int16(q.nFeatures) {
				return fmt.Errorf("ml: corrupt quantized table: node %d splits on feature %d of %d", j, f, q.nFeatures)
			}
			if f < 0 {
				if lb+int32(q.next[j]) >= lend {
					return fmt.Errorf("ml: corrupt quantized table: node %d leaf ordinal %d outside its tree", j, q.next[j])
				}
				continue
			}
			r := root + int32(q.next[j])
			if r <= j+1 || r >= end {
				return fmt.Errorf("ml: corrupt quantized table: node %d right child %d outside (%d, %d)", j, r, j+1, end)
			}
		}
	}
	return nil
}

// QuantizedModel is a frozen serving-only regressor around a quantized
// node table — the form Quantize returns and the lamb1 codec persists.
// It cannot be refitted (the exact table is gone); Fit returns an
// error. Predictions approximate the source model within the
// quantization bound.
type QuantizedModel struct {
	q *quantEnsemble
}

// Fit always errors: quantized models are frozen serving artifacts.
func (m *QuantizedModel) Fit(X [][]float64, y []float64) error {
	return fmt.Errorf("ml: a QuantizedModel is frozen and cannot be refitted; refit the source model and re-quantize")
}

// Predict scores one feature vector. Panics on arity mismatch,
// matching the other estimators. Allocation-free in steady state.
func (m *QuantizedModel) Predict(x []float64) float64 {
	if len(x) != m.q.nFeatures {
		panic(fmt.Sprintf("ml: QuantizedModel.Predict got %d features, want %d", len(x), m.q.nFeatures))
	}
	return m.q.predict(x)
}

// PredictBatchInto scores every row of X into out; out must have
// len(X) elements.
func (m *QuantizedModel) PredictBatchInto(X [][]float64, out []float64) error {
	if err := checkInto(m, X, out); err != nil {
		return err
	}
	m.q.predictBatchInto(X, out)
	return nil
}

// predictBatchIntoSeq implements the compiled plane's sequential block
// contract.
func (m *QuantizedModel) predictBatchIntoSeq(X [][]float64, out []float64) {
	m.q.predictBatchInto(X, out)
}

// IsFitted always reports true: a QuantizedModel only exists fitted.
func (m *QuantizedModel) IsFitted() bool { return true }

// NumFeatures returns the feature arity of the quantized table.
func (m *QuantizedModel) NumFeatures() int { return m.q.nFeatures }

// Bits returns the threshold width (8 or 16).
func (m *QuantizedModel) Bits() int { return m.q.bits }

// NumTrees returns the number of member trees.
func (m *QuantizedModel) NumTrees() int { return m.q.NumTrees() }

// NumNodes returns the total node count.
func (m *QuantizedModel) NumNodes() int { return m.q.NumNodes() }

// TableBytes returns the quantized table footprint in bytes.
func (m *QuantizedModel) TableBytes() int { return m.q.TableBytes() }

// Quantize converts a fitted tree-based regressor into a frozen
// QuantizedModel with bits-wide (8 or 16) thresholds. Pipelines are
// rebuilt around a quantized inner model (the scaler is exact);
// supported inner estimators are DecisionTree, Forest,
// GradientBoosting and Bagging over tree bases. The source model is
// not modified. Quantization is approximate — persist the result as a
// new artifact version, never over the exact model.
func Quantize(r Regressor, bits int) (Regressor, error) {
	switch v := r.(type) {
	case *DecisionTree:
		if !v.IsFitted() {
			return nil, fmt.Errorf("ml: cannot quantize an unfitted DecisionTree")
		}
		e := &CompiledEnsemble{combine: combineMean}
		e.appendTree(&v.nodes)
		q, err := buildQuantEnsemble(e, bits)
		if err != nil {
			return nil, err
		}
		if q.nFeatures < v.nFeatures {
			q.nFeatures = v.nFeatures
			q.lo = append(q.lo, make([]float64, v.nFeatures-len(q.lo))...)
			q.scale = append(q.scale, make([]float64, v.nFeatures-len(q.scale))...)
		}
		return &QuantizedModel{q: q}, nil
	case *Forest:
		if v.compiled == nil {
			return nil, fmt.Errorf("ml: cannot quantize an unfitted Forest")
		}
		return quantizeEnsemble(v.compiled, v.nFeatures, bits)
	case *GradientBoosting:
		if v.compiled == nil {
			return nil, fmt.Errorf("ml: cannot quantize an unfitted GradientBoosting")
		}
		return quantizeEnsemble(v.compiled, v.NumFeatures(), bits)
	case *Bagging:
		if v.compiled == nil {
			if len(v.models) == 0 {
				return nil, fmt.Errorf("ml: cannot quantize an unfitted Bagging")
			}
			return nil, fmt.Errorf("ml: cannot quantize Bagging over non-tree bases")
		}
		return quantizeEnsemble(v.compiled, v.NumFeatures(), bits)
	case *Pipeline:
		if !v.fitted {
			return nil, fmt.Errorf("ml: cannot quantize an unfitted Pipeline")
		}
		inner, err := Quantize(v.Model, bits)
		if err != nil {
			return nil, err
		}
		p := &Pipeline{Model: inner, fitted: true}
		p.scaler = v.scaler
		return p, nil
	case *QuantizedModel:
		if v.q.bits == bits {
			return v, nil
		}
		return nil, fmt.Errorf("ml: cannot re-quantize a %d-bit QuantizedModel to %d bits (the exact table was dropped)", v.q.bits, bits)
	default:
		return nil, fmt.Errorf("ml: Quantize does not support %T", r)
	}
}

// quantizeEnsemble wraps buildQuantEnsemble, widening the inferred
// arity to the estimator's recorded one so arity checks stay strict.
func quantizeEnsemble(e *CompiledEnsemble, nFeatures, bits int) (Regressor, error) {
	q, err := buildQuantEnsemble(e, bits)
	if err != nil {
		return nil, err
	}
	if nFeatures > q.nFeatures {
		q.lo = append(q.lo, make([]float64, nFeatures-q.nFeatures)...)
		q.scale = append(q.scale, make([]float64, nFeatures-q.nFeatures)...)
		q.nFeatures = nFeatures
	}
	return &QuantizedModel{q: q}, nil
}

package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMAPE(t *testing.T) {
	yt := []float64{100, 200}
	yp := []float64{110, 180}
	// APEs: 10%, 10% -> MAPE 10.
	if got := MAPE(yt, yp); math.Abs(got-10) > 1e-12 {
		t.Errorf("MAPE = %v, want 10", got)
	}
}

func TestMAPEPerfect(t *testing.T) {
	y := []float64{1, 2, 3}
	if got := MAPE(y, y); got != 0 {
		t.Errorf("MAPE of perfect prediction = %v, want 0", got)
	}
}

func TestMAPESkipsZeroTruth(t *testing.T) {
	yt := []float64{0, 100}
	yp := []float64{5, 150}
	if got := MAPE(yt, yp); math.Abs(got-50) > 1e-12 {
		t.Errorf("MAPE = %v, want 50 (zero-truth sample skipped)", got)
	}
	if got := MAPE([]float64{0}, []float64{1}); got != 0 {
		t.Errorf("MAPE with only zero truth = %v, want 0", got)
	}
}

func TestMedAPE(t *testing.T) {
	yt := []float64{100, 100, 100}
	yp := []float64{101, 110, 200}
	// APEs: 1, 10, 100 -> median 10.
	if got := MedAPE(yt, yp); math.Abs(got-10) > 1e-12 {
		t.Errorf("MedAPE = %v, want 10", got)
	}
	yt = []float64{100, 100}
	yp = []float64{110, 130}
	if got := MedAPE(yt, yp); math.Abs(got-20) > 1e-12 {
		t.Errorf("MedAPE even = %v, want 20", got)
	}
}

func TestMAERMSE(t *testing.T) {
	yt := []float64{1, 2, 3}
	yp := []float64{2, 2, 5}
	if got := MAE(yt, yp); math.Abs(got-1) > 1e-12 {
		t.Errorf("MAE = %v, want 1", got)
	}
	want := math.Sqrt((1.0 + 0 + 4) / 3)
	if got := RMSE(yt, yp); math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
}

func TestR2(t *testing.T) {
	yt := []float64{1, 2, 3, 4}
	if got := R2(yt, yt); got != 1 {
		t.Errorf("R2 perfect = %v, want 1", got)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(yt, mean); math.Abs(got) > 1e-12 {
		t.Errorf("R2 of mean predictor = %v, want 0", got)
	}
	if got := R2([]float64{5, 5}, []float64{5, 5}); got != 1 {
		t.Errorf("R2 constant-exact = %v, want 1", got)
	}
	if got := R2([]float64{5, 5}, []float64{4, 6}); got != 0 {
		t.Errorf("R2 constant-inexact = %v, want 0", got)
	}
}

func TestMetricsEmpty(t *testing.T) {
	if MAE(nil, nil) != 0 || RMSE(nil, nil) != 0 || R2(nil, nil) != 0 || MAPE(nil, nil) != 0 || MedAPE(nil, nil) != 0 {
		t.Error("metrics on empty slices should be 0")
	}
}

func TestMetricsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MAPE([]float64{1}, []float64{1, 2})
}

func TestRMSEAtLeastMAEProperty(t *testing.T) {
	// RMSE >= MAE always (Jensen).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		yt := make([]float64, n)
		yp := make([]float64, n)
		for i := range yt {
			yt[i] = rng.NormFloat64() * 10
			yp[i] = rng.NormFloat64() * 10
		}
		return RMSE(yt, yp) >= MAE(yt, yp)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMAPEScaleInvarianceProperty(t *testing.T) {
	// MAPE is invariant under multiplying truth and prediction by the
	// same positive constant.
	f := func(seed int64, scaleRaw float64) bool {
		scale := 0.1 + math.Abs(math.Mod(scaleRaw, 100))
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		yt := make([]float64, n)
		yp := make([]float64, n)
		yts := make([]float64, n)
		yps := make([]float64, n)
		for i := range yt {
			yt[i] = 0.1 + rng.Float64()*10
			yp[i] = 0.1 + rng.Float64()*10
			yts[i] = yt[i] * scale
			yps[i] = yp[i] * scale
		}
		return math.Abs(MAPE(yt, yp)-MAPE(yts, yps)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

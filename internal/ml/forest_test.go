package ml

import (
	"math"
	"math/rand"
	"testing"
)

// friedman1 is the classic Friedman #1 regression benchmark surface
// (5 informative features), a standard sanity check for forests.
func friedman1(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := make([]float64, 5)
		for j := range x {
			x[j] = rng.Float64()
		}
		X[i] = x
		y[i] = 10*math.Sin(math.Pi*x[0]*x[1]) + 20*(x[2]-0.5)*(x[2]-0.5) +
			10*x[3] + 5*x[4] + noise*rng.NormFloat64()
	}
	return X, y
}

func TestForestBeatsSingleTreeOnNoisyData(t *testing.T) {
	trainX, trainY := friedman1(400, 1.0, 1)
	testX, testY := friedman1(400, 0, 2)

	tree := NewDecisionTree(TreeConfig{Seed: 1})
	if err := tree.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	forest := NewRandomForest(100, 1)
	if err := forest.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	treeErr := RMSE(testY, PredictBatch(tree, testX))
	forestErr := RMSE(testY, PredictBatch(forest, testX))
	if forestErr >= treeErr {
		t.Errorf("forest RMSE %v should beat single tree %v", forestErr, treeErr)
	}
}

func TestExtraTreesFitsReasonably(t *testing.T) {
	trainX, trainY := friedman1(600, 0.5, 3)
	testX, testY := friedman1(300, 0, 4)
	et := NewExtraTrees(100, 7)
	if err := et.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(testY, PredictBatch(et, testX)); r2 < 0.85 {
		t.Errorf("extra trees R2 = %v, want >= 0.85", r2)
	}
}

func TestForestDeterministicAcrossRuns(t *testing.T) {
	X, y := friedman1(200, 0.5, 5)
	probes, _ := friedman1(20, 0, 6)
	for _, make2 := range []func() *Forest{
		func() *Forest { return NewRandomForest(30, 99) },
		func() *Forest { return NewExtraTrees(30, 99) },
	} {
		a, b := make2(), make2()
		// Different worker counts must not change the fitted ensemble.
		a.Workers = 1
		b.Workers = 8
		if err := a.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		for _, x := range probes {
			if pa, pb := a.Predict(x), b.Predict(x); pa != pb {
				t.Fatalf("same-seed forests disagree: %v vs %v", pa, pb)
			}
		}
	}
}

func TestForestSeedChangesModel(t *testing.T) {
	X, y := friedman1(200, 1.0, 7)
	a := NewExtraTrees(10, 1)
	b := NewExtraTrees(10, 2)
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	probes, _ := friedman1(50, 0, 8)
	same := true
	for _, x := range probes {
		if a.Predict(x) != b.Predict(x) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical ensembles")
	}
}

func TestForestDefaultSize(t *testing.T) {
	X, y := friedman1(50, 0, 9)
	f := &Forest{Tree: TreeConfig{}, Seed: 1}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 100 {
		t.Errorf("default ensemble size = %d, want 100", f.NumTrees())
	}
}

func TestForestPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRandomForest(10, 1).Predict([]float64{1})
}

func TestForestErrorsPropagate(t *testing.T) {
	f := NewRandomForest(4, 1)
	if err := f.Fit(nil, nil); err == nil {
		t.Error("expected error on empty training set")
	}
}

func TestForestImportancesConcentrate(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = 100 * X[i][1] // only feature 1 matters
	}
	f := NewExtraTrees(30, 3)
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportances()
	if imp[1] < 0.8 {
		t.Errorf("feature 1 importance = %v, want > 0.8 (%v)", imp[1], imp)
	}
}

func TestForestPredictionWithinRange(t *testing.T) {
	X, y := friedman1(200, 2.0, 11)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	for _, f := range []*Forest{NewRandomForest(20, 1), NewExtraTrees(20, 1)} {
		if err := f.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		probes, _ := friedman1(50, 0, 12)
		for _, x := range probes {
			p := f.Predict(x)
			if p < lo-1e-9 || p > hi+1e-9 {
				t.Errorf("prediction %v outside training range [%v, %v]", p, lo, hi)
			}
		}
	}
}

package ml

import (
	"encoding/json"
	"fmt"
	"io"
)

// Model persistence. The paper stresses that the model "is constructed
// once offline but used many times" (Section VI) — these functions
// serialise fitted estimators to JSON so a trained predictor can be
// shipped with an application and queried without retraining.
//
// SaveModel writes any supported fitted Regressor; LoadModel restores
// it. Supported: DecisionTree, Forest, LinearRegression, KNN,
// GradientBoosting, Bagging, Stacking, Pipeline (wrapping any of the
// former).
//
// This file is the jsonv1 side of the artifact codec layer
// (internal/artifact): SaveModel/LoadModel define the legacy JSON
// encoding that every registry written before the binary format keeps
// loading forever, and binary.go defines the lamb1 payload encoding of
// the same estimators. The two are interconvertible without loss and
// must stay prediction-bit-identical (asserted by the round-trip
// property test in internal/artifact).

// modelEnvelope tags the concrete type on disk.
type modelEnvelope struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// nodeDTO serialises one tree node (children by index; -1 = none).
type nodeDTO struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Value     float64 `json:"v"`
	N         int     `json:"n"`
	Left      int     `json:"l"`
	Right     int     `json:"r"`
}

type treeDTO struct {
	Config      TreeConfig `json:"config"`
	NFeatures   int        `json:"n_features"`
	Importances []float64  `json:"importances"`
	Nodes       []nodeDTO  `json:"nodes"`
}

// The on-disk node list keeps explicit two-child form (the jsonv1
// forward-compat contract): the Left column is synthesised from the
// canonical implicit-left runtime layout on save (i+1 for internal
// nodes, -1 for leaves — exactly the bytes the pre-PR 8 format wrote,
// since the builder has always emitted canonical preorder) and folded
// back out on load. Loading canonicalises: any structurally valid
// explicit-child table — canonical or not — is re-emitted in preorder
// with the left child adjacent, a node permutation that leaves every
// prediction bit-identical.

func flattenTree(c *CompiledTree) []nodeDTO {
	nodes := make([]nodeDTO, c.Len())
	for i := range nodes {
		left := -1
		if c.feature[i] >= 0 {
			left = i + 1
		}
		nodes[i] = nodeDTO{
			Feature:   int(c.feature[i]),
			Threshold: c.threshold[i],
			Value:     c.value[i],
			N:         int(c.nSamples[i]),
			Left:      left,
			Right:     int(c.right[i]),
		}
	}
	return nodes
}

func compileNodes(nodes []nodeDTO) (CompiledTree, error) {
	n := len(nodes)
	feature := make([]int32, n)
	threshold := make([]float64, n)
	value := make([]float64, n)
	left := make([]int32, n)
	right := make([]int32, n)
	nSamples := make([]int32, n)
	for i, d := range nodes {
		feature[i] = int32(d.Feature)
		threshold[i] = d.Threshold
		value[i] = d.Value
		left[i] = int32(d.Left)
		right[i] = int32(d.Right)
		nSamples[i] = int32(d.N)
	}
	return canonicalTree(feature, threshold, value, left, right, nSamples)
}

// canonicalTree builds a canonical implicit-left CompiledTree from
// explicit child arrays, validating the structural invariants the
// legacy format promised (children exist and strictly follow their
// parent, ruling out cycles; every node reachable from the root).
// Tables already in canonical order — everything this codebase has
// ever written — are adopted without copying, preserving the binary
// codec's zero-copy decode; anything else is permuted into preorder,
// which leaves predictions bit-identical.
func canonicalTree(feature []int32, threshold, value []float64, left, right, nSamples []int32) (CompiledTree, error) {
	n := len(feature)
	if n == 0 {
		return CompiledTree{}, fmt.Errorf("ml: corrupt tree: empty node list")
	}
	if len(threshold) != n || len(value) != n || len(left) != n || len(right) != n || len(nSamples) != n {
		return CompiledTree{}, fmt.Errorf("ml: corrupt tree: ragged node arrays")
	}
	canonical := true
	for i := 0; i < n; i++ {
		if feature[i] < 0 {
			continue // leaf; child indices are ignored
		}
		l, r := left[i], right[i]
		if l <= int32(i) || r <= int32(i) || int(l) >= n || int(r) >= n {
			return CompiledTree{}, fmt.Errorf("ml: corrupt tree: internal node %d has children (%d, %d) outside (%d, %d)", i, l, r, i, n)
		}
		if l != int32(i)+1 {
			canonical = false
		}
	}
	// Subtree sizes, children-after-parent order makes one descending
	// pass suffice; the root's size doubles as a reachability check.
	size := make([]int32, n)
	for i := n - 1; i >= 0; i-- {
		if feature[i] < 0 {
			size[i] = 1
		} else {
			size[i] = 1 + size[left[i]] + size[right[i]]
		}
	}
	if size[0] != int32(n) {
		return CompiledTree{}, fmt.Errorf("ml: corrupt tree: node graph is not a single tree (root subtree covers %d of %d nodes)", size[0], n)
	}
	c := CompiledTree{feature: feature, threshold: threshold, value: value, right: right, nSamples: nSamples}
	if !canonical {
		out := CompiledTree{
			feature:   make([]int32, n),
			threshold: make([]float64, n),
			value:     make([]float64, n),
			right:     make([]int32, n),
			nSamples:  make([]int32, n),
		}
		type frame struct{ old, new int32 }
		stack := make([]frame, 1, 64)
		stack[0] = frame{0, 0}
		for len(stack) > 0 {
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			out.feature[fr.new] = feature[fr.old]
			out.threshold[fr.new] = threshold[fr.old]
			out.value[fr.new] = value[fr.old]
			out.nSamples[fr.new] = nSamples[fr.old]
			if feature[fr.old] < 0 {
				out.right[fr.new] = -1
				continue
			}
			l, r := left[fr.old], right[fr.old]
			rNew := fr.new + 1 + size[l]
			out.right[fr.new] = rNew
			stack = append(stack, frame{r, rNew}, frame{l, fr.new + 1})
		}
		c = out
	}
	if err := c.validate(); err != nil {
		return CompiledTree{}, err
	}
	return c, nil
}

func (t *DecisionTree) toDTO() treeDTO {
	return treeDTO{
		Config:      t.Config,
		NFeatures:   t.nFeatures,
		Importances: t.importances,
		Nodes:       flattenTree(&t.nodes),
	}
}

func (t *DecisionTree) fromDTO(d treeDTO) error {
	nodes, err := compileNodes(d.Nodes)
	if err != nil {
		return err
	}
	t.Config = d.Config
	t.nFeatures = d.NFeatures
	t.importances = d.Importances
	t.nodes = nodes
	return nil
}

type forestDTO struct {
	NTrees    int        `json:"n_trees"`
	Tree      TreeConfig `json:"tree"`
	Bootstrap bool       `json:"bootstrap"`
	Seed      int64      `json:"seed"`
	NFeatures int        `json:"n_features"`
	Trees     []treeDTO  `json:"trees"`
}

type linregDTO struct {
	Lambda    float64   `json:"lambda"`
	Weights   []float64 `json:"weights"`
	Intercept float64   `json:"intercept"`
}

type knnDTO struct {
	K         int          `json:"k"`
	Weighting KNNWeighting `json:"weighting"`
	X         [][]float64  `json:"x"`
	Y         []float64    `json:"y"`
}

type gbrDTO struct {
	Init   float64   `json:"init"`
	Rate   float64   `json:"rate"`
	Stages []treeDTO `json:"stages"`
}

type pipelineDTO struct {
	Mean  []float64     `json:"mean"`
	Std   []float64     `json:"std"`
	Model modelEnvelope `json:"model"`
}

type baggingDTO struct {
	N          int             `json:"n"`
	SampleFrac float64         `json:"sample_frac"`
	Seed       int64           `json:"seed"`
	Models     []modelEnvelope `json:"models"`
}

type stackingDTO struct {
	PassThrough bool            `json:"pass_through"`
	KFold       int             `json:"kfold"`
	Seed        int64           `json:"seed"`
	Bases       []modelEnvelope `json:"bases"`
	Meta        modelEnvelope   `json:"meta"`
}

// SaveModel serialises a fitted regressor to w.
func SaveModel(w io.Writer, m Regressor) error {
	env, err := encodeModel(m)
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(env)
}

func encodeModel(m Regressor) (*modelEnvelope, error) {
	var kind string
	var payload any
	switch v := m.(type) {
	case *DecisionTree:
		if !v.IsFitted() {
			return nil, fmt.Errorf("ml: cannot save unfitted DecisionTree")
		}
		kind, payload = "decision_tree", v.toDTO()
	case *Forest:
		if len(v.trees) == 0 {
			return nil, fmt.Errorf("ml: cannot save unfitted Forest")
		}
		d := forestDTO{NTrees: v.NTrees, Tree: v.Tree, Bootstrap: v.Bootstrap,
			Seed: v.Seed, NFeatures: v.nFeatures}
		for _, t := range v.trees {
			d.Trees = append(d.Trees, t.toDTO())
		}
		kind, payload = "forest", d
	case *LinearRegression:
		if !v.fitted {
			return nil, fmt.Errorf("ml: cannot save unfitted LinearRegression")
		}
		kind, payload = "linreg", linregDTO{Lambda: v.Lambda, Weights: v.weights, Intercept: v.intercept}
	case *KNN:
		if len(v.x) == 0 {
			return nil, fmt.Errorf("ml: cannot save unfitted KNN")
		}
		kind, payload = "knn", knnDTO{K: v.K, Weighting: v.Weighting, X: v.x, Y: v.y}
	case *GradientBoosting:
		if len(v.stages) == 0 {
			return nil, fmt.Errorf("ml: cannot save unfitted GradientBoosting")
		}
		d := gbrDTO{Init: v.init, Rate: v.rate}
		for _, t := range v.stages {
			d.Stages = append(d.Stages, t.toDTO())
		}
		kind, payload = "gbr", d
	case *Pipeline:
		if !v.fitted {
			return nil, fmt.Errorf("ml: cannot save unfitted Pipeline")
		}
		inner, err := encodeModel(v.Model)
		if err != nil {
			return nil, err
		}
		kind, payload = "pipeline", pipelineDTO{Mean: v.scaler.mean, Std: v.scaler.std, Model: *inner}
	case *Bagging:
		if len(v.models) == 0 {
			return nil, fmt.Errorf("ml: cannot save unfitted Bagging")
		}
		d := baggingDTO{N: v.N, SampleFrac: v.SampleFrac, Seed: v.Seed}
		for i, m := range v.models {
			inner, err := encodeModel(m)
			if err != nil {
				return nil, fmt.Errorf("ml: bagging member %d: %w", i, err)
			}
			d.Models = append(d.Models, *inner)
		}
		kind, payload = "bagging", d
	case *Stacking:
		if v.meta == nil {
			return nil, fmt.Errorf("ml: cannot save unfitted Stacking")
		}
		d := stackingDTO{PassThrough: v.PassThrough, KFold: v.KFold, Seed: v.Seed}
		for i, b := range v.bases {
			inner, err := encodeModel(b)
			if err != nil {
				return nil, fmt.Errorf("ml: stacking base %d: %w", i, err)
			}
			d.Bases = append(d.Bases, *inner)
		}
		meta, err := encodeModel(v.meta)
		if err != nil {
			return nil, fmt.Errorf("ml: stacking meta model: %w", err)
		}
		d.Meta = *meta
		kind, payload = "stacking", d
	case *QuantizedModel:
		// jsonv1 stores exact float64 split thresholds per node; a
		// quantized table dropped those. Quantized models persist only
		// through the lamb1 binary codec (version 2).
		return nil, fmt.Errorf("ml: SaveModel cannot represent a quantized model; use the binary codec (EncodeBinary)")
	default:
		return nil, fmt.Errorf("ml: SaveModel does not support %T", m)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	return &modelEnvelope{Kind: kind, Data: raw}, nil
}

// LoadModel restores a regressor saved by SaveModel.
func LoadModel(r io.Reader) (Regressor, error) {
	var env modelEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("ml: decoding model envelope: %w", err)
	}
	return decodeModel(env)
}

func decodeModel(env modelEnvelope) (Regressor, error) {
	switch env.Kind {
	case "decision_tree":
		var d treeDTO
		if err := json.Unmarshal(env.Data, &d); err != nil {
			return nil, err
		}
		t := &DecisionTree{}
		if err := t.fromDTO(d); err != nil {
			return nil, err
		}
		return t, nil
	case "forest":
		var d forestDTO
		if err := json.Unmarshal(env.Data, &d); err != nil {
			return nil, err
		}
		f := &Forest{NTrees: d.NTrees, Tree: d.Tree, Bootstrap: d.Bootstrap,
			Seed: d.Seed, nFeatures: d.NFeatures}
		for i, td := range d.Trees {
			t := &DecisionTree{}
			if err := t.fromDTO(td); err != nil {
				return nil, fmt.Errorf("ml: forest tree %d: %w", i, err)
			}
			f.trees = append(f.trees, t)
		}
		if len(f.trees) == 0 {
			return nil, fmt.Errorf("ml: corrupt forest: no trees")
		}
		f.compiled = compileMeanEnsemble(f.trees)
		return f, nil
	case "linreg":
		var d linregDTO
		if err := json.Unmarshal(env.Data, &d); err != nil {
			return nil, err
		}
		if d.Weights == nil {
			return nil, fmt.Errorf("ml: corrupt linreg: no weights")
		}
		return &LinearRegression{Lambda: d.Lambda, weights: d.Weights,
			intercept: d.Intercept, fitted: true}, nil
	case "knn":
		var d knnDTO
		if err := json.Unmarshal(env.Data, &d); err != nil {
			return nil, err
		}
		if len(d.X) == 0 || len(d.X) != len(d.Y) {
			return nil, fmt.Errorf("ml: corrupt knn payload")
		}
		return &KNN{K: d.K, Weighting: d.Weighting, x: d.X, y: d.Y}, nil
	case "gbr":
		var d gbrDTO
		if err := json.Unmarshal(env.Data, &d); err != nil {
			return nil, err
		}
		g := &GradientBoosting{init: d.Init, rate: d.Rate}
		for i, td := range d.Stages {
			t := &DecisionTree{}
			if err := t.fromDTO(td); err != nil {
				return nil, fmt.Errorf("ml: boosting stage %d: %w", i, err)
			}
			g.stages = append(g.stages, t)
		}
		if len(g.stages) == 0 {
			return nil, fmt.Errorf("ml: corrupt gbr: no stages")
		}
		g.compiled = compileBoostedEnsemble(g.stages, g.init, g.rate)
		return g, nil
	case "pipeline":
		var d pipelineDTO
		if err := json.Unmarshal(env.Data, &d); err != nil {
			return nil, err
		}
		inner, err := decodeModel(d.Model)
		if err != nil {
			return nil, err
		}
		p := &Pipeline{Model: inner, fitted: true}
		p.scaler.mean = d.Mean
		p.scaler.std = d.Std
		if p.scaler.mean == nil || p.scaler.std == nil {
			return nil, fmt.Errorf("ml: corrupt pipeline: missing scaler state")
		}
		return p, nil
	case "bagging":
		var d baggingDTO
		if err := json.Unmarshal(env.Data, &d); err != nil {
			return nil, err
		}
		if len(d.Models) == 0 {
			return nil, fmt.Errorf("ml: corrupt bagging: no members")
		}
		// NewBase is a factory and is not serialised: a loaded ensemble
		// predicts with its fitted members but cannot be refitted.
		b := &Bagging{N: d.N, SampleFrac: d.SampleFrac, Seed: d.Seed}
		for i, env := range d.Models {
			m, err := decodeModel(env)
			if err != nil {
				return nil, fmt.Errorf("ml: bagging member %d: %w", i, err)
			}
			b.models = append(b.models, m)
		}
		b.compiled = compileBaggedTrees(b.models)
		return b, nil
	case "stacking":
		var d stackingDTO
		if err := json.Unmarshal(env.Data, &d); err != nil {
			return nil, err
		}
		if len(d.Bases) == 0 {
			return nil, fmt.Errorf("ml: corrupt stacking: no base models")
		}
		// Like Bagging, the factories (NewBases/NewMeta) are not
		// serialised; the fitted bases and meta model are.
		s := &Stacking{PassThrough: d.PassThrough, KFold: d.KFold, Seed: d.Seed}
		for i, env := range d.Bases {
			m, err := decodeModel(env)
			if err != nil {
				return nil, fmt.Errorf("ml: stacking base %d: %w", i, err)
			}
			s.bases = append(s.bases, m)
		}
		meta, err := decodeModel(d.Meta)
		if err != nil {
			return nil, fmt.Errorf("ml: stacking meta model: %w", err)
		}
		s.meta = meta
		return s, nil
	default:
		return nil, fmt.Errorf("ml: unknown model kind %q", env.Kind)
	}
}

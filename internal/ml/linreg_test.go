package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearRegressionRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y[i] = 2*X[i][0] - 3*X[i][1] + 0.5*X[i][2] + 7
	}
	lr := &LinearRegression{}
	if err := lr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	w, b := lr.Coefficients()
	want := []float64{2, -3, 0.5}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-8 {
			t.Errorf("w[%d] = %v, want %v", i, w[i], want[i])
		}
	}
	if math.Abs(b-7) > 1e-8 {
		t.Errorf("intercept = %v, want 7", b)
	}
}

func TestLinearRegressionExactOnLinearProperty(t *testing.T) {
	f := func(a, b, c float64, seed int64) bool {
		a, b, c = math.Mod(a, 100), math.Mod(b, 100), math.Mod(c, 100)
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		X := make([][]float64, 50)
		y := make([]float64, 50)
		for i := range X {
			X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			y[i] = a*X[i][0] + b*X[i][1] + c
		}
		lr := &LinearRegression{}
		if err := lr.Fit(X, y); err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			x := []float64{rng.NormFloat64(), rng.NormFloat64()}
			want := a*x[0] + b*x[1] + c
			if !nearly(lr.Predict(x), want, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func nearly(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

func TestLinearRegressionRidgeShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X := make([][]float64, 50)
	y := make([]float64, 50)
	for i := range X {
		X[i] = []float64{rng.NormFloat64()}
		y[i] = 5 * X[i][0]
	}
	ols := &LinearRegression{}
	ridge := &LinearRegression{Lambda: 100}
	if err := ols.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := ridge.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	wo, _ := ols.Coefficients()
	wr, _ := ridge.Coefficients()
	if math.Abs(wr[0]) >= math.Abs(wo[0]) {
		t.Errorf("ridge |w| = %v should shrink below OLS |w| = %v", math.Abs(wr[0]), math.Abs(wo[0]))
	}
}

func TestLinearRegressionCollinear(t *testing.T) {
	// Duplicated column: OLS normal equations are singular; Fit must
	// still succeed via its internal fallback ridge.
	X := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	y := []float64{2, 4, 6, 8}
	lr := &LinearRegression{}
	if err := lr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := lr.Predict([]float64{5, 5}); math.Abs(got-10) > 1e-3 {
		t.Errorf("collinear prediction = %v, want ~10", got)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	lr := &LinearRegression{}
	if err := lr.Fit(nil, nil); err == nil {
		t.Error("expected empty-set error")
	}
	lr = &LinearRegression{Lambda: -1}
	if err := lr.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("expected negative-lambda error")
	}
}

func TestLinearRegressionPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	(&LinearRegression{}).Predict([]float64{1})
}

func TestSolveSPDKnownSystem(t *testing.T) {
	a := [][]float64{{4, 1}, {1, 3}}
	b := []float64{1, 2}
	x, err := solveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Solution of [[4,1],[1,3]] x = [1,2] is [1/11, 7/11].
	if math.Abs(x[0]-1.0/11) > 1e-12 || math.Abs(x[1]-7.0/11) > 1e-12 {
		t.Errorf("x = %v, want [1/11, 7/11]", x)
	}
}

func TestSolveSPDSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {1, 1}}
	b := []float64{1, 2}
	if _, err := solveSPD(a, b); err == nil {
		t.Error("expected singular-matrix error")
	}
}

package ml

import (
	"math"
	"testing"
)

func TestGradientBoostingLearnsFriedman(t *testing.T) {
	trainX, trainY := friedman1(600, 0.3, 51)
	testX, testY := friedman1(300, 0, 52)
	g := &GradientBoosting{NStages: 200, LearningRate: 0.1, MaxDepth: 3, Seed: 1}
	if err := g.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(testY, PredictBatch(g, testX)); r2 < 0.9 {
		t.Errorf("boosting R2 = %v, want >= 0.9", r2)
	}
}

func TestGradientBoostingBeatsSingleShallowTree(t *testing.T) {
	trainX, trainY := friedman1(400, 0.5, 53)
	testX, testY := friedman1(300, 0, 54)
	g := &GradientBoosting{NStages: 150, MaxDepth: 3, Seed: 1}
	if err := g.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	shallow := NewDecisionTree(TreeConfig{MaxDepth: 3})
	if err := shallow.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	ge := RMSE(testY, PredictBatch(g, testX))
	se := RMSE(testY, PredictBatch(shallow, testX))
	if ge >= se {
		t.Errorf("boosting RMSE %v should beat a single depth-3 tree %v", ge, se)
	}
}

func TestGradientBoostingStagedPredictMonotoneTrainingError(t *testing.T) {
	X, y := friedman1(300, 0.2, 55)
	g := &GradientBoosting{NStages: 50, MaxDepth: 3, Seed: 2}
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Training error after the final stage must not exceed the error of
	// the first stage (boosting fits residuals).
	firstErr, lastErr := 0.0, 0.0
	for i, x := range X {
		staged := g.StagedPredict(x)
		if len(staged) != 50 {
			t.Fatalf("StagedPredict returned %d stages, want 50", len(staged))
		}
		d0 := staged[0] - y[i]
		dN := staged[len(staged)-1] - y[i]
		firstErr += d0 * d0
		lastErr += dN * dN
		if staged[len(staged)-1] != g.Predict(x) {
			t.Fatal("final staged prediction must equal Predict")
		}
	}
	if lastErr >= firstErr {
		t.Errorf("boosting did not reduce training error: stage1 %v vs final %v", firstErr, lastErr)
	}
}

func TestGradientBoostingSubsample(t *testing.T) {
	X, y := friedman1(300, 0.5, 56)
	g := &GradientBoosting{NStages: 60, Subsample: 0.5, Seed: 3}
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if g.NumStages() != 60 {
		t.Errorf("stages = %d, want 60", g.NumStages())
	}
	if r2 := R2(y, PredictBatch(g, X)); r2 < 0.7 {
		t.Errorf("stochastic boosting training R2 = %v, want >= 0.7", r2)
	}
}

func TestGradientBoostingDeterministic(t *testing.T) {
	X, y := friedman1(200, 0.5, 57)
	a := &GradientBoosting{NStages: 30, Subsample: 0.7, Seed: 9}
	b := &GradientBoosting{NStages: 30, Subsample: 0.7, Seed: 9}
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	probes, _ := friedman1(20, 0, 58)
	for _, x := range probes {
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same-seed boosting disagrees")
		}
	}
}

func TestGradientBoostingConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{5, 5, 5}
	g := &GradientBoosting{NStages: 10}
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := g.Predict([]float64{10}); math.Abs(got-5) > 1e-9 {
		t.Errorf("constant target predicted %v, want 5", got)
	}
}

func TestGradientBoostingErrorsAndPanics(t *testing.T) {
	g := &GradientBoosting{}
	if err := g.Fit(nil, nil); err == nil {
		t.Error("expected error for empty data")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic before fit")
		}
	}()
	(&GradientBoosting{}).Predict([]float64{1})
}

func TestGridSearchFindsBetterDepth(t *testing.T) {
	X, y := friedman1(300, 0.3, 61)
	grids := []ParamGrid{
		{Name: "depth", Values: []float64{1, 6}},
		{Name: "leaf", Values: []float64{1, 5}},
	}
	best, all, err := GridSearch(grids,
		func(p map[string]float64) Regressor {
			return NewDecisionTree(TreeConfig{
				MaxDepth:       int(p["depth"]),
				MinSamplesLeaf: int(p["leaf"]),
			})
		},
		X, y, 4, 7, MAPE)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("evaluated %d combos, want 4", len(all))
	}
	if best.Params["depth"] != 6 {
		t.Errorf("best depth = %v, want 6 (depth 1 badly underfits)", best.Params["depth"])
	}
	for _, r := range all {
		if r.Score < best.Score {
			t.Errorf("combo %v scored %v better than reported best %v", r.Params, r.Score, best.Score)
		}
	}
}

func TestGridSearchValidation(t *testing.T) {
	X, y := friedman1(20, 0, 62)
	if _, _, err := GridSearch(nil, nil, X, y, 3, 1, MAPE); err == nil {
		t.Error("expected error with no grids")
	}
	grids := []ParamGrid{{Name: "a", Values: nil}}
	if _, _, err := GridSearch(grids, nil, X, y, 3, 1, MAPE); err == nil {
		t.Error("expected error with empty value list")
	}
	grids = []ParamGrid{{Name: "a", Values: []float64{1}}}
	if _, _, err := GridSearch(grids, func(map[string]float64) Regressor { return &KNN{} },
		nil, nil, 3, 1, MAPE); err == nil {
		t.Error("expected error with empty data")
	}
}

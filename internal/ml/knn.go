package ml

import (
	"fmt"
	"math"
	"sort"
)

// KNNWeighting selects how k-NN combines neighbour responses.
type KNNWeighting int

const (
	// UniformWeights averages the k nearest responses.
	UniformWeights KNNWeighting = iota
	// DistanceWeights averages with 1/d weights (an exact match wins
	// outright).
	DistanceWeights
)

// KNN is a brute-force k-nearest-neighbours regressor with Euclidean
// distance. It rounds out the model suite for baseline comparisons; the
// paper's figure set uses tree models only.
type KNN struct {
	// K is the neighbourhood size; values below 1 are treated as 5.
	K int
	// Weighting selects uniform or inverse-distance averaging.
	Weighting KNNWeighting

	x [][]float64
	y []float64
}

// Fit memorises the training set.
func (k *KNN) Fit(X [][]float64, y []float64) error {
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	k.x = copyMatrix(X)
	k.y = copyVector(y)
	return nil
}

// IsFitted reports whether the training set has been memorised.
func (k *KNN) IsFitted() bool { return len(k.x) > 0 }

// NumFeatures returns the feature arity the model was fitted on (0
// before Fit).
func (k *KNN) NumFeatures() int {
	if len(k.x) == 0 {
		return 0
	}
	return len(k.x[0])
}

// Predict averages the responses of the K nearest training points.
func (k *KNN) Predict(x []float64) float64 {
	if len(k.x) == 0 {
		panic("ml: KNN.Predict called before Fit")
	}
	if len(x) != len(k.x[0]) {
		panic(fmt.Sprintf("ml: KNN.Predict got %d features, want %d", len(x), len(k.x[0])))
	}
	kk := k.K
	if kk < 1 {
		kk = 5
	}
	if kk > len(k.x) {
		kk = len(k.x)
	}
	type nd struct {
		d float64
		y float64
	}
	ds := make([]nd, len(k.x))
	for i, xi := range k.x {
		s := 0.0
		for j := range x {
			d := x[j] - xi[j]
			s += d * d
		}
		ds[i] = nd{d: math.Sqrt(s), y: k.y[i]}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
	ds = ds[:kk]

	if k.Weighting == DistanceWeights {
		// Exact matches dominate: average them alone.
		exactSum, exactN := 0.0, 0
		for _, n := range ds {
			if n.d == 0 {
				exactSum += n.y
				exactN++
			}
		}
		if exactN > 0 {
			return exactSum / float64(exactN)
		}
		num, den := 0.0, 0.0
		for _, n := range ds {
			w := 1 / n.d
			num += w * n.y
			den += w
		}
		return num / den
	}

	s := 0.0
	for _, n := range ds {
		s += n.y
	}
	return s / float64(kk)
}

package ml

import (
	"math/rand"
	"os"
	"testing"
)

// Before/after pairs for the compiled inference plane: the "recursive"
// variants rebuild the pre-refactor pointer-tree representation (see
// refNode in compiled_test.go) and walk it the way the estimators used
// to; the "compiled" variants run the flat node-table plane the
// estimators now use. Run with:
//
//	go test ./internal/ml -bench 'PredictBatch|PredictSingle' -benchmem
func benchSetup(b *testing.B, n int) ([][]float64, []float64, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	X, y := randomRegression(rng, n, 6)
	Xq, _ := randomRegression(rng, 512, 6)
	return X, y, Xq
}

// BenchmarkForestPredictBatch scores 512 rows with a 100-tree extra
// trees ensemble, sequentially (workers 1), so the pair isolates
// traversal cost from pool parallelism.
func BenchmarkForestPredictBatch(b *testing.B) {
	X, y, Xq := benchSetup(b, 400)
	f := &Forest{NTrees: 100, Tree: TreeConfig{Splitter: RandomSplitter}, Seed: 7, Workers: 1}
	if err := f.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	refs := make([]*refNode, len(f.trees))
	for i, t := range f.trees {
		refs[i] = refTree(&t.nodes)
	}
	out := make([]float64, len(Xq))

	b.Run("recursive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r, x := range Xq {
				out[r] = refForestPredict(refs, x)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := f.PredictBatchInto(Xq, out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGBRPredictBatch is the same pair for a 100-stage booster.
func BenchmarkGBRPredictBatch(b *testing.B) {
	X, y, Xq := benchSetup(b, 400)
	g := &GradientBoosting{NStages: 100, Seed: 7, Workers: 1}
	if err := g.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	refs := make([]*refNode, len(g.stages))
	for i, t := range g.stages {
		refs[i] = refTree(&t.nodes)
	}
	out := make([]float64, len(Xq))

	b.Run("recursive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r, x := range Xq {
				out[r] = refBoostedPredict(refs, g.init, g.rate, x)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := g.PredictBatchInto(Xq, out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTreePredictSingle pairs one deep tree's single-vector
// latency: pointer chase vs index walk.
func BenchmarkTreePredictSingle(b *testing.B) {
	X, y, Xq := benchSetup(b, 4000)
	tr := NewDecisionTree(TreeConfig{Seed: 3})
	if err := tr.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	ref := refTree(&tr.nodes)
	x := Xq[0]

	b.Run("recursive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ref.predict(x)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tr.Predict(x)
		}
	})
}

// benchForest fits the layout benchmarks' shared 100-tree ensemble.
func benchForest(b *testing.B) (*Forest, [][]float64) {
	b.Helper()
	X, y, Xq := benchSetup(b, 4000)
	f := &Forest{NTrees: 100, Tree: TreeConfig{Splitter: RandomSplitter}, Seed: 7, Workers: 1}
	if err := f.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	return f, Xq
}

// benchLayouts is the traversal-layout sweep the PR 8 numbers
// (BENCH_PR8.json) and the CI regression guard are measured on:
// "standard" is the explicit-child branchy walk (the PR 3 baseline),
// "implicit-left" the branchless canonical walk, then the batch-only
// and quantized variants.
var benchLayouts = []Layout{LayoutStandard, LayoutImplicitLeft, LayoutLevelOrder, LayoutQuant16, LayoutQuant8}

// BenchmarkForestPredictSingleLayout pairs single-row latency across
// traversal layouts on a 100-tree ensemble.
func BenchmarkForestPredictSingleLayout(b *testing.B) {
	f, Xq := benchForest(b)
	for _, layout := range benchLayouts {
		if layout == LayoutLevelOrder {
			continue // batch-only: single rows take the canonical walk
		}
		if err := SetLayoutOf(f, layout); err != nil {
			b.Fatal(err)
		}
		b.Run(layout.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = f.Predict(Xq[i%len(Xq)])
			}
		})
	}
	if err := SetLayoutOf(f, LayoutImplicitLeft); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkForestPredictBatchLayout pairs 512-row batch scoring across
// traversal layouts (sequential, workers 1, tree-major engaged — the
// 100-tree table is far past the threshold).
func BenchmarkForestPredictBatchLayout(b *testing.B) {
	f, Xq := benchForest(b)
	out := make([]float64, len(Xq))
	for _, layout := range benchLayouts {
		if err := SetLayoutOf(f, layout); err != nil {
			b.Fatal(err)
		}
		b.Run(layout.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := f.PredictBatchInto(Xq, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	if err := SetLayoutOf(f, LayoutImplicitLeft); err != nil {
		b.Fatal(err)
	}
}

// TestTraversalBenchGuard is the CI bench-regression smoke gate
// (satellite of the PR 8 raw-speed push): with LAM_BENCH_GUARD=1 it
// times the branchless implicit-left walk against the explicit-child
// baseline and fails when branchless is more than 1.3x slower — a
// generous guard that only trips on a real regression (the whole point
// of the layout is to be faster), not on scheduler noise.
func TestTraversalBenchGuard(t *testing.T) {
	if os.Getenv("LAM_BENCH_GUARD") != "1" {
		t.Skip("set LAM_BENCH_GUARD=1 to run the traversal regression guard")
	}
	rng := rand.New(rand.NewSource(42))
	X, y := randomRegression(rng, 4000, 6)
	Xq, _ := randomRegression(rng, 512, 6)
	f := &Forest{NTrees: 100, Tree: TreeConfig{Splitter: RandomSplitter}, Seed: 7, Workers: 1}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	time := func(layout Layout) float64 {
		if err := SetLayoutOf(f, layout); err != nil {
			t.Fatal(err)
		}
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = f.Predict(Xq[i%len(Xq)])
			}
		})
		return float64(res.NsPerOp())
	}
	standard := time(LayoutStandard)
	branchless := time(LayoutImplicitLeft)
	t.Logf("single-row: standard %.0f ns/op, branchless %.0f ns/op (%.2fx)",
		standard, branchless, standard/branchless)
	if branchless > 1.3*standard {
		t.Errorf("branchless single-row walk is %.2fx the baseline (%.0f vs %.0f ns/op), beyond the 1.3x guard",
			branchless/standard, branchless, standard)
	}
}

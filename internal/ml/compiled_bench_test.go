package ml

import (
	"math/rand"
	"testing"
)

// Before/after pairs for the compiled inference plane: the "recursive"
// variants rebuild the pre-refactor pointer-tree representation (see
// refNode in compiled_test.go) and walk it the way the estimators used
// to; the "compiled" variants run the flat node-table plane the
// estimators now use. Run with:
//
//	go test ./internal/ml -bench 'PredictBatch|PredictSingle' -benchmem
func benchSetup(b *testing.B, n int) ([][]float64, []float64, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	X, y := randomRegression(rng, n, 6)
	Xq, _ := randomRegression(rng, 512, 6)
	return X, y, Xq
}

// BenchmarkForestPredictBatch scores 512 rows with a 100-tree extra
// trees ensemble, sequentially (workers 1), so the pair isolates
// traversal cost from pool parallelism.
func BenchmarkForestPredictBatch(b *testing.B) {
	X, y, Xq := benchSetup(b, 400)
	f := &Forest{NTrees: 100, Tree: TreeConfig{Splitter: RandomSplitter}, Seed: 7, Workers: 1}
	if err := f.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	refs := make([]*refNode, len(f.trees))
	for i, t := range f.trees {
		refs[i] = refTree(&t.nodes)
	}
	out := make([]float64, len(Xq))

	b.Run("recursive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r, x := range Xq {
				out[r] = refForestPredict(refs, x)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := f.PredictBatchInto(Xq, out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGBRPredictBatch is the same pair for a 100-stage booster.
func BenchmarkGBRPredictBatch(b *testing.B) {
	X, y, Xq := benchSetup(b, 400)
	g := &GradientBoosting{NStages: 100, Seed: 7, Workers: 1}
	if err := g.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	refs := make([]*refNode, len(g.stages))
	for i, t := range g.stages {
		refs[i] = refTree(&t.nodes)
	}
	out := make([]float64, len(Xq))

	b.Run("recursive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r, x := range Xq {
				out[r] = refBoostedPredict(refs, g.init, g.rate, x)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := g.PredictBatchInto(Xq, out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTreePredictSingle pairs one deep tree's single-vector
// latency: pointer chase vs index walk.
func BenchmarkTreePredictSingle(b *testing.B) {
	X, y, Xq := benchSetup(b, 4000)
	tr := NewDecisionTree(TreeConfig{Seed: 3})
	if err := tr.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	ref := refTree(&tr.nodes)
	x := Xq[0]

	b.Run("recursive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ref.predict(x)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tr.Predict(x)
		}
	})
}

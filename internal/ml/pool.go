package ml

import "sync"

// f64Pool recycles scratch vectors for the per-row work the compound
// estimators do at prediction time (a scaled feature row in Pipeline,
// the augmented meta vector in Stacking, the stacked analytical
// feature in internal/hybrid). Predict must stay safe for concurrent
// use, so the scratch cannot live on the estimator; pooling keeps the
// serve hot path allocation-free in steady state. The pool stores
// *[]float64 (not []float64) so Get/Put never box a slice header.
var f64Pool = sync.Pool{New: func() any { return new([]float64) }}

// GetScratch returns a length-n scratch vector from the shared pool.
// Contents are undefined; release with PutScratch.
func GetScratch(n int) *[]float64 {
	p := f64Pool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

// PutScratch returns a scratch vector to the pool.
func PutScratch(p *[]float64) { f64Pool.Put(p) }

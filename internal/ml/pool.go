package ml

import "sync"

// f64Pool recycles scratch vectors for the per-row work the compound
// estimators do at prediction time (a scaled feature row in Pipeline,
// the augmented meta vector in Stacking, the stacked analytical
// feature in internal/hybrid). Predict must stay safe for concurrent
// use, so the scratch cannot live on the estimator; pooling keeps the
// serve hot path allocation-free in steady state. The pool stores
// *[]float64 (not []float64) so Get/Put never box a slice header.
var f64Pool = sync.Pool{New: func() any { return new([]float64) }}

// GetScratch returns a length-n scratch vector from the shared pool.
// Contents are undefined; release with PutScratch.
func GetScratch(n int) *[]float64 {
	p := f64Pool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

// PutScratch returns a scratch vector to the pool.
func PutScratch(p *[]float64) { f64Pool.Put(p) }

// i32Pool and u16Pool recycle the integer scratch the alternative
// traversal layouts need per batch/row: the level-order walk's per-row
// cursor ([]int32) and the quantized walk's quantized feature row
// ([]uint16). Same pointer-boxing discipline as f64Pool.
var (
	i32Pool = sync.Pool{New: func() any { return new([]int32) }}
	u16Pool = sync.Pool{New: func() any { return new([]uint16) }}
)

func getScratchI32(n int) *[]int32 {
	p := i32Pool.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	*p = (*p)[:n]
	return p
}

func putScratchI32(p *[]int32) { i32Pool.Put(p) }

func getScratchU16(n int) *[]uint16 {
	p := u16Pool.Get().(*[]uint16)
	if cap(*p) < n {
		*p = make([]uint16, n)
	}
	*p = (*p)[:n]
	return p
}

func putScratchU16(p *[]uint16) { u16Pool.Put(p) }

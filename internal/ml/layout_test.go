package ml

import (
	"math/rand"
	"testing"
)

// exactLayouts are the layouts that must stay bit-identical to the
// recursive reference walk.
var exactLayouts = []Layout{LayoutImplicitLeft, LayoutStandard, LayoutLevelOrder}

func TestLayoutParseRoundTrip(t *testing.T) {
	for _, l := range []Layout{LayoutDefault, LayoutImplicitLeft, LayoutStandard,
		LayoutLevelOrder, LayoutQuant16, LayoutQuant8} {
		got, err := ParseLayout(l.String())
		if err != nil {
			t.Fatalf("ParseLayout(%q): %v", l.String(), err)
		}
		if got != l {
			t.Fatalf("ParseLayout(%q) = %v, want %v", l.String(), got, l)
		}
	}
	if l, err := ParseLayout("branchless"); err != nil || l != LayoutImplicitLeft {
		t.Fatalf("branchless alias: got %v, %v", l, err)
	}
	if _, err := ParseLayout("zigzag"); err == nil {
		t.Fatal("unknown layout name accepted")
	}
}

// TestCompiledEquivalenceLayouts is the layout extension of
// TestCompiledEquivalence: across random tree configurations, every
// exact layout must produce bit-identical predictions to the legacy
// recursive pointer walk — single vector and batch, on both sides of
// the tree-major threshold (forced via SetBatchTreeMajorThreshold so
// small fixtures exercise the tree-major striding too).
func TestCompiledEquivalenceLayouts(t *testing.T) {
	defer SetBatchTreeMajorThreshold(0)
	rng := rand.New(rand.NewSource(0x1a7))
	for trial := 0; trial < 8; trial++ {
		n := 30 + rng.Intn(170)
		p := 1 + rng.Intn(6)
		X, y := randomRegression(rng, n, p)
		Xq, _ := randomRegression(rng, 48, p)
		cfg := randomTreeConfig(rng)

		f := &Forest{NTrees: 2 + rng.Intn(8), Tree: cfg, Bootstrap: rng.Intn(2) == 0, Seed: rng.Int63(), Workers: 1}
		if err := f.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		refs := make([]*refNode, len(f.trees))
		for i, tr := range f.trees {
			refs[i] = refTree(&tr.nodes)
		}

		g := &GradientBoosting{NStages: 2 + rng.Intn(8), MaxDepth: 1 + rng.Intn(4), Seed: rng.Int63(), Workers: 1}
		if err := g.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		grefs := make([]*refNode, len(g.stages))
		for i, tr := range g.stages {
			grefs[i] = refTree(&tr.nodes)
		}

		out := make([]float64, len(Xq))
		for _, layout := range exactLayouts {
			if err := SetLayoutOf(f, layout); err != nil {
				t.Fatalf("forest SetLayoutOf(%v): %v", layout, err)
			}
			if err := SetLayoutOf(g, layout); err != nil {
				t.Fatalf("gbr SetLayoutOf(%v): %v", layout, err)
			}
			if got := f.compiled.Layout(); got != layout {
				t.Fatalf("forest layout = %v, want %v", got, layout)
			}
			// Both batch strategies: row-major (huge threshold) and
			// tree-major (threshold 1).
			for _, thr := range []int{1 << 30, 1} {
				SetBatchTreeMajorThreshold(thr)
				if err := f.PredictBatchInto(Xq, out); err != nil {
					t.Fatal(err)
				}
				for i, x := range Xq {
					want := refForestPredict(refs, x)
					if !sameBits(out[i], want) {
						t.Fatalf("forest %v thr=%d row %d: %x != recursive %x (cfg %+v)", layout, thr, i, out[i], want, cfg)
					}
				}
				if err := g.PredictBatchInto(Xq, out); err != nil {
					t.Fatal(err)
				}
				for i, x := range Xq {
					want := refBoostedPredict(grefs, g.init, g.rate, x)
					if !sameBits(out[i], want) {
						t.Fatalf("gbr %v thr=%d row %d: %x != recursive %x", layout, thr, i, out[i], want)
					}
				}
			}
			for _, x := range Xq {
				if got, want := f.Predict(x), refForestPredict(refs, x); !sameBits(got, want) {
					t.Fatalf("forest %v single: %x != recursive %x (cfg %+v)", layout, got, want, cfg)
				}
				if got, want := g.Predict(x), refBoostedPredict(grefs, g.init, g.rate, x); !sameBits(got, want) {
					t.Fatalf("gbr %v single: %x != recursive %x", layout, got, want)
				}
			}
		}
	}
}

// TestSetBatchTreeMajorThresholdBoundary pins the satellite contract:
// the tree-major crossover is tunable at runtime, the two strategies
// are bit-identical at the boundary, and 0 restores the default.
func TestSetBatchTreeMajorThresholdBoundary(t *testing.T) {
	defer SetBatchTreeMajorThreshold(0)
	rng := rand.New(rand.NewSource(0x7e57))
	X, y := randomRegression(rng, 300, 4)
	Xq, _ := randomRegression(rng, 64, 4)

	f := &Forest{NTrees: 12, Tree: TreeConfig{Splitter: RandomSplitter}, Seed: 3, Workers: 1}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	nodes := f.compiled.NumNodes()

	rowMajor := make([]float64, len(Xq))
	treeMajor := make([]float64, len(Xq))
	// Just above the table size: row-major. At the table size (the
	// boundary value where n >= threshold first holds): tree-major.
	SetBatchTreeMajorThreshold(nodes + 1)
	if got := BatchTreeMajorThreshold(); got != nodes+1 {
		t.Fatalf("threshold getter = %d, want %d", got, nodes+1)
	}
	if err := f.PredictBatchInto(Xq, rowMajor); err != nil {
		t.Fatal(err)
	}
	SetBatchTreeMajorThreshold(nodes)
	if err := f.PredictBatchInto(Xq, treeMajor); err != nil {
		t.Fatal(err)
	}
	for i := range rowMajor {
		if !sameBits(rowMajor[i], treeMajor[i]) {
			t.Fatalf("row %d: row-major %x != tree-major %x", i, rowMajor[i], treeMajor[i])
		}
		if want := f.Predict(Xq[i]); !sameBits(rowMajor[i], want) {
			t.Fatalf("row %d: batch %x != single %x", i, rowMajor[i], want)
		}
	}

	SetBatchTreeMajorThreshold(0)
	if got := BatchTreeMajorThreshold(); got != defaultBatchTreeMajorMinNodes {
		t.Fatalf("threshold after reset = %d, want default %d", got, defaultBatchTreeMajorMinNodes)
	}
}

// TestSetDefaultLayout asserts the process default is applied at
// compile time and stays bit-identical across exact layouts.
func TestSetDefaultLayout(t *testing.T) {
	defer SetDefaultLayout(LayoutDefault)
	rng := rand.New(rand.NewSource(0xd3f))
	X, y := randomRegression(rng, 150, 3)
	Xq, _ := randomRegression(rng, 32, 3)

	f := &Forest{NTrees: 6, Seed: 1, Workers: 1}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	want := f.PredictBatch(Xq)

	SetDefaultLayout(LayoutStandard)
	if got := DefaultLayout(); got != LayoutStandard {
		t.Fatalf("DefaultLayout = %v, want standard", got)
	}
	f2 := &Forest{NTrees: 6, Seed: 1, Workers: 1}
	if err := f2.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := f2.compiled.Layout(); got != LayoutStandard {
		t.Fatalf("compiled layout = %v, want standard", got)
	}
	for i, x := range Xq {
		if got := f2.Predict(x); !sameBits(got, want[i]) {
			t.Fatalf("row %d: standard-default %x != implicit-left %x", i, got, want[i])
		}
	}
}

// TestLayoutEstimatorConfig asserts the per-estimator Layout knob is
// honoured at Fit time, including quantized layouts.
func TestLayoutEstimatorConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(0xcf9))
	X, y := randomRegression(rng, 150, 4)

	f := &Forest{NTrees: 5, Seed: 2, Workers: 1, Layout: LayoutLevelOrder}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := f.compiled.Layout(); got != LayoutLevelOrder {
		t.Fatalf("forest layout = %v, want level-order", got)
	}

	g := &GradientBoosting{NStages: 5, Seed: 2, Workers: 1, Layout: LayoutStandard}
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := g.compiled.Layout(); got != LayoutStandard {
		t.Fatalf("gbr layout = %v, want standard", got)
	}

	bag := &Bagging{
		NewBase: func() Regressor { return NewDecisionTree(TreeConfig{Seed: 3, MaxDepth: 5}) },
		N:       4, Seed: 2, Workers: 1, Layout: LayoutQuant16,
	}
	if err := bag.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := bag.compiled.Layout(); got != LayoutQuant16 {
		t.Fatalf("bagging layout = %v, want quant16", got)
	}
	if l, ok := LayoutOf(bag); !ok || l != LayoutQuant16 {
		t.Fatalf("LayoutOf(bagging) = %v, %v", l, ok)
	}
}

// TestSetLayoutOfErrors pins the misuse contract of the structural
// relayout helper.
func TestSetLayoutOfErrors(t *testing.T) {
	if err := SetLayoutOf(&Forest{}, LayoutStandard); err == nil {
		t.Error("relayout of an unfitted forest accepted")
	}
	lr := &LinearRegression{}
	if err := SetLayoutOf(lr, LayoutImplicitLeft); err != nil {
		t.Errorf("exact layout on a non-tree model should be a no-op, got %v", err)
	}
	if err := SetLayoutOf(lr, LayoutQuant8); err == nil {
		t.Error("quantized layout on a non-tree model accepted")
	}
	rng := rand.New(rand.NewSource(9))
	X, y := randomRegression(rng, 60, 3)
	tr := NewDecisionTree(TreeConfig{Seed: 1, MaxDepth: 4})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := SetLayoutOf(tr, LayoutLevelOrder); err != nil {
		t.Errorf("exact layout on a bare tree should be a no-op, got %v", err)
	}
	if err := SetLayoutOf(tr, LayoutQuant16); err == nil {
		t.Error("in-place quantization of a bare tree accepted (should direct to Quantize)")
	}
}

// TestLayoutPredictAllocationFree extends the serve-hot-path contract
// to the alternative layouts: every layout's single and sequential
// batch prediction stays allocation-free in steady state.
func TestLayoutPredictAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	defer SetBatchTreeMajorThreshold(0)
	rng := rand.New(rand.NewSource(0xa110c))
	X, y := randomRegression(rng, 200, 4)
	Xq, _ := randomRegression(rng, 50, 4)
	out := make([]float64, len(Xq))

	f := &Forest{NTrees: 10, Seed: 1, Workers: 1}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	layouts := append([]Layout{LayoutQuant16, LayoutQuant8}, exactLayouts...)
	for _, layout := range layouts {
		if err := SetLayoutOf(f, layout); err != nil {
			t.Fatal(err)
		}
		for _, thr := range []int{1 << 30, 1} {
			SetBatchTreeMajorThreshold(thr)
			x := Xq[0]
			if allocs := testing.AllocsPerRun(100, func() { f.Predict(x) }); allocs != 0 {
				t.Errorf("%v: Predict allocates %.1f per call, want 0", layout, allocs)
			}
			if allocs := testing.AllocsPerRun(50, func() {
				if err := f.PredictBatchInto(Xq, out); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("%v thr=%d: PredictBatchInto allocates %.1f per batch, want 0", layout, thr, allocs)
			}
		}
	}
}

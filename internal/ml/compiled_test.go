package ml

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// The legacy pointer-tree representation, retained here as the
// executable specification of tree traversal: before the compiled
// inference plane, fitted trees were heap-allocated refNode graphs
// walked exactly like refNode.predict below. The equivalence tests
// rebuild that form from the compiled node tables and assert the two
// traversals agree bit for bit; the benchmarks in
// compiled_bench_test.go use it as the recursive baseline.

type refNode struct {
	feature   int
	threshold float64
	value     float64
	left      *refNode
	right     *refNode
}

func (n *refNode) predict(x []float64) float64 {
	if n.feature < 0 {
		return n.value
	}
	if x[n.feature] <= n.threshold {
		return n.left.predict(x)
	}
	return n.right.predict(x)
}

// refTree rebuilds the pointer form of a compiled node table.
func refTree(c *CompiledTree) *refNode { return buildRef(c, 0) }

func buildRef(c *CompiledTree, i int32) *refNode {
	n := &refNode{feature: int(c.feature[i]), threshold: c.threshold[i], value: c.value[i]}
	if c.feature[i] >= 0 {
		n.left = buildRef(c, i+1) // canonical preorder: left child is implicit
		n.right = buildRef(c, c.right[i])
	}
	return n
}

// refForestPredict is the pre-refactor Forest.Predict: per-tree
// recursive walks summed in tree order, then averaged.
func refForestPredict(trees []*refNode, x []float64) float64 {
	s := 0.0
	for _, t := range trees {
		s += t.predict(x)
	}
	return s / float64(len(trees))
}

// refBoostedPredict is the pre-refactor GradientBoosting.Predict.
func refBoostedPredict(stages []*refNode, init, rate float64, x []float64) float64 {
	out := init
	for _, t := range stages {
		out += rate * t.predict(x)
	}
	return out
}

// refStagedPredict is the pre-refactor GradientBoosting.StagedPredict.
func refStagedPredict(stages []*refNode, init, rate float64, x []float64) []float64 {
	out := make([]float64, len(stages))
	acc := init
	for i, t := range stages {
		acc += rate * t.predict(x)
		out[i] = acc
	}
	return out
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// randomRegression draws a dataset with deliberately coarse feature
// values (ties matter: equal values exercise the can't-split-between-
// equal-values branches) and a noisy nonlinear response.
func randomRegression(rng *rand.Rand, n, p int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, p)
		for j := range X[i] {
			X[i][j] = math.Round(rng.NormFloat64()*8) / 4
		}
		y[i] = math.Sin(X[i][0]) + 0.5*X[i][p-1] + rng.NormFloat64()*0.2
	}
	return X, y
}

func randomTreeConfig(rng *rand.Rand) TreeConfig {
	return TreeConfig{
		MaxDepth:        rng.Intn(8), // 0 = unlimited
		MinSamplesSplit: rng.Intn(8), // < 2 normalises to 2
		MinSamplesLeaf:  rng.Intn(5), // < 1 normalises to 1
		MaxFeatures:     rng.Intn(7), // 0 = all; may exceed p
		Splitter:        Splitter(rng.Intn(2)),
		Seed:            rng.Int63(),
	}
}

// TestCompiledEquivalence is the property test of the compiled
// inference plane: across random tree configurations and random
// datasets, the compiled iterative traversal must produce bit-identical
// predictions to the legacy recursive pointer walk — single vector,
// batch, Into-batch, and staged — for every tree-based estimator.
func TestCompiledEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1ab))
	for trial := 0; trial < 20; trial++ {
		n := 30 + rng.Intn(170)
		p := 1 + rng.Intn(6)
		X, y := randomRegression(rng, n, p)
		Xq, _ := randomRegression(rng, 64, p)
		cfg := randomTreeConfig(rng)

		t.Run("", func(t *testing.T) {
			// Single tree.
			tree := NewDecisionTree(cfg)
			if err := tree.Fit(X, y); err != nil {
				t.Fatal(err)
			}
			ref := refTree(&tree.nodes)
			for _, x := range Xq {
				if got, want := tree.Predict(x), ref.predict(x); !sameBits(got, want) {
					t.Fatalf("tree: compiled %x != recursive %x (cfg %+v)", got, want, cfg)
				}
			}

			// Forest (random bootstrap choice).
			f := &Forest{NTrees: 2 + rng.Intn(8), Tree: cfg, Bootstrap: rng.Intn(2) == 0, Seed: rng.Int63()}
			if err := f.Fit(X, y); err != nil {
				t.Fatal(err)
			}
			refs := make([]*refNode, len(f.trees))
			for i, tr := range f.trees {
				refs[i] = refTree(&tr.nodes)
			}
			batch := f.PredictBatch(Xq)
			into := make([]float64, len(Xq))
			if err := f.PredictBatchInto(Xq, into); err != nil {
				t.Fatal(err)
			}
			for i, x := range Xq {
				want := refForestPredict(refs, x)
				if got := f.Predict(x); !sameBits(got, want) {
					t.Fatalf("forest: compiled %x != recursive %x", got, want)
				}
				if !sameBits(batch[i], want) || !sameBits(into[i], want) {
					t.Fatalf("forest batch row %d: batch %x into %x want %x", i, batch[i], into[i], want)
				}
			}

			// Gradient boosting (staged too).
			g := &GradientBoosting{NStages: 2 + rng.Intn(10), MaxDepth: 1 + rng.Intn(4),
				Subsample: 0.5 + rng.Float64()/2, Seed: rng.Int63()}
			if err := g.Fit(X, y); err != nil {
				t.Fatal(err)
			}
			grefs := make([]*refNode, len(g.stages))
			for i, tr := range g.stages {
				grefs[i] = refTree(&tr.nodes)
			}
			for _, x := range Xq {
				wantStaged := refStagedPredict(grefs, g.init, g.rate, x)
				gotStaged := g.StagedPredict(x)
				for i := range wantStaged {
					if !sameBits(gotStaged[i], wantStaged[i]) {
						t.Fatalf("gbr stage %d: compiled %x != recursive %x", i, gotStaged[i], wantStaged[i])
					}
				}
				if got, want := g.Predict(x), wantStaged[len(wantStaged)-1]; !sameBits(got, want) {
					t.Fatalf("gbr: compiled %x != recursive %x", got, want)
				}
			}

			// Bagging over tree bases uses the fused table.
			bag := &Bagging{
				NewBase: func() Regressor { return NewDecisionTree(cfg) },
				N:       2 + rng.Intn(6), Seed: rng.Int63(),
			}
			if err := bag.Fit(X, y); err != nil {
				t.Fatal(err)
			}
			if bag.compiled == nil {
				t.Fatal("bagging over DecisionTree bases should compile a fused ensemble")
			}
			brefs := make([]*refNode, len(bag.models))
			for i, m := range bag.models {
				brefs[i] = refTree(&m.(*DecisionTree).nodes)
			}
			for _, x := range Xq {
				if got, want := bag.Predict(x), refForestPredict(brefs, x); !sameBits(got, want) {
					t.Fatalf("bagging: compiled %x != recursive %x", got, want)
				}
			}
		})
	}
}

// TestCompiledEquivalenceTreeMajor crosses the batchTreeMajorMinNodes
// threshold so batch scoring takes the tree-major traversal, and
// asserts it stays bit-identical to per-row Predict calls and to the
// recursive reference.
func TestCompiledEquivalenceTreeMajor(t *testing.T) {
	rng := rand.New(rand.NewSource(0xbeef))
	X, y := randomRegression(rng, 500, 5)
	Xq, _ := randomRegression(rng, 100, 5)

	f := &Forest{NTrees: 40, Tree: TreeConfig{Splitter: RandomSplitter}, Seed: 11, Workers: 1}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if n := f.compiled.NumNodes(); n < BatchTreeMajorThreshold() {
		t.Fatalf("setup too small for the tree-major path: %d nodes", n)
	}
	refs := make([]*refNode, len(f.trees))
	for i, tr := range f.trees {
		refs[i] = refTree(&tr.nodes)
	}
	out := make([]float64, len(Xq))
	if err := f.PredictBatchInto(Xq, out); err != nil {
		t.Fatal(err)
	}
	for i, x := range Xq {
		want := refForestPredict(refs, x)
		if !sameBits(out[i], want) {
			t.Fatalf("tree-major row %d: %x != recursive %x", i, out[i], want)
		}
		if got := f.Predict(x); !sameBits(out[i], got) {
			t.Fatalf("tree-major row %d: batch %x != single %x", i, out[i], got)
		}
	}
}

// TestCompiledEquivalenceConcurrent hammers one compiled model from
// many goroutines; under -race this asserts the compiled plane's
// fitted state is read-only on the hot path, and every goroutine must
// still see bit-identical results.
func TestCompiledEquivalenceConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := randomRegression(rng, 150, 4)
	Xq, _ := randomRegression(rng, 40, 4)

	f := &Forest{NTrees: 20, Tree: TreeConfig{Splitter: RandomSplitter}, Seed: 5}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	want := f.PredictBatch(Xq)

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, len(Xq))
			for rep := 0; rep < 50; rep++ {
				if err := f.PredictBatchInto(Xq, out); err != nil {
					errc <- err
					return
				}
				for i := range out {
					if !sameBits(out[i], want[i]) {
						t.Errorf("row %d: %x != %x", i, out[i], want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestCompiledLoadedEquivalence asserts a save/load round trip decodes
// straight into compiled form with bit-identical predictions.
func TestCompiledLoadedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	X, y := randomRegression(rng, 120, 3)
	Xq, _ := randomRegression(rng, 30, 3)

	f := &Forest{NTrees: 10, Tree: TreeConfig{Splitter: RandomSplitter}, Seed: 2}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, f).(*Forest)
	if loaded.compiled == nil {
		t.Fatal("loaded forest not compiled")
	}
	for _, x := range Xq {
		if got, want := loaded.Predict(x), f.Predict(x); !sameBits(got, want) {
			t.Fatalf("loaded forest: %x != %x", got, want)
		}
	}

	g := &GradientBoosting{NStages: 12, Seed: 4}
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	gl := roundTrip(t, g).(*GradientBoosting)
	if gl.compiled == nil {
		t.Fatal("loaded booster not compiled")
	}
	for _, x := range Xq {
		if got, want := gl.Predict(x), g.Predict(x); !sameBits(got, want) {
			t.Fatalf("loaded gbr: %x != %x", got, want)
		}
	}
}

// TestCompiledPredictArityPanics pins the misuse contract the compiled
// plane must preserve from the pointer-tree era: predicting with a
// wrong-arity vector is a programming error and panics with a clear
// message instead of silently indexing a truncated row.
func TestCompiledPredictArityPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := randomRegression(rng, 80, 4)
	bad := []float64{1, 2, 3} // one feature short

	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: wrong-arity predict did not panic", name)
			}
		}()
		fn()
	}

	f := &Forest{NTrees: 3, Seed: 1}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	expectPanic("Forest.Predict", func() { f.Predict(bad) })
	expectPanic("Forest.PredictBatch", func() { f.PredictBatch([][]float64{bad}) })

	g := &GradientBoosting{NStages: 3, Seed: 1}
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	expectPanic("GradientBoosting.Predict", func() { g.Predict(bad) })
	expectPanic("GradientBoosting.StagedPredict", func() { g.StagedPredict(bad) })

	bag := &Bagging{NewBase: func() Regressor { return NewDecisionTree(TreeConfig{Seed: 1, MaxDepth: 3}) }, N: 3, Seed: 1}
	if err := bag.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	expectPanic("Bagging.Predict", func() { bag.Predict(bad) })
	expectPanic("Bagging.PredictBatch", func() { bag.PredictBatch([][]float64{bad}) })
}

// TestCompiledValidateRejectsCorruptTables exercises the structural
// validation deserialised node tables pass through: child indices must
// exist and strictly follow their parent (ruling out cycles that would
// hang the iterative walk).
func TestCompiledValidateRejectsCorruptTables(t *testing.T) {
	cases := []struct {
		name  string
		nodes []nodeDTO
	}{
		{"empty", nil},
		{"child out of range", []nodeDTO{{Feature: 0, Left: 1, Right: 5}, {Feature: -1}}},
		{"self cycle", []nodeDTO{{Feature: 0, Left: 0, Right: 1}, {Feature: -1}}},
		{"backward edge", []nodeDTO{{Feature: -1}, {Feature: 0, Left: 0, Right: 2}, {Feature: -1}}},
	}
	for _, tc := range cases {
		if _, err := compileNodes(tc.nodes); err == nil {
			t.Errorf("%s: corrupt table accepted", tc.name)
		}
	}
}

// TestPredictAllocationFree asserts the serve-hot-path contract: after
// fit, single predictions and sequential Into-batch predictions of
// every tree-based estimator (and the compound layers above them)
// perform zero allocations in steady state.
func TestPredictAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(3))
	X, y := randomRegression(rng, 200, 4)
	Xq, _ := randomRegression(rng, 50, 4)
	out := make([]float64, len(Xq))

	fit := func(r Regressor) Regressor {
		t.Helper()
		if err := r.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		return r
	}
	models := []struct {
		name string
		r    Regressor
	}{
		{"tree", fit(NewDecisionTree(TreeConfig{Seed: 1}))},
		{"forest", fit(&Forest{NTrees: 10, Seed: 1, Workers: 1})},
		{"gbr", fit(&GradientBoosting{NStages: 10, Seed: 1, Workers: 1})},
		{"bagging", fit(&Bagging{NewBase: func() Regressor { return NewDecisionTree(TreeConfig{Seed: 2, MaxDepth: 5}) }, N: 8, Seed: 1, Workers: 1})},
		{"pipeline", fit(&Pipeline{Model: NewExtraTrees(10, 1)})},
		{"stacking", fit(&Stacking{
			NewBases:    []func() Regressor{func() Regressor { return NewDecisionTree(TreeConfig{Seed: 1, MaxDepth: 4}) }},
			NewMeta:     func() Regressor { return NewDecisionTree(TreeConfig{Seed: 2, MaxDepth: 3}) },
			PassThrough: true, Workers: 1,
		})},
	}
	for _, m := range models {
		x := Xq[0]
		if allocs := testing.AllocsPerRun(100, func() { m.r.Predict(x) }); allocs != 0 {
			t.Errorf("%s: Predict allocates %.1f per call, want 0", m.name, allocs)
		}
		if allocs := testing.AllocsPerRun(50, func() {
			if err := PredictBatchInto(m.r, Xq, out, 1); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s: PredictBatchInto allocates %.1f per batch, want 0", m.name, allocs)
		}
	}

	// Staged prediction through the Into variant.
	g := models[2].r.(*GradientBoosting)
	staged := make([]float64, g.NumStages())
	x := Xq[0]
	if allocs := testing.AllocsPerRun(100, func() { g.StagedPredictInto(x, staged) }); allocs != 0 {
		t.Errorf("gbr: StagedPredictInto allocates %.1f per call, want 0", allocs)
	}
}

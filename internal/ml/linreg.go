package ml

import (
	"errors"
	"fmt"
	"math"
)

// LinearRegression fits y = intercept + w·x by (ridge-regularised)
// normal equations. With Lambda = 0 it is ordinary least squares. It is
// the default meta model of the generic Stacking estimator and the
// calibration tool used to tune analytical-model constants.
type LinearRegression struct {
	// Lambda is the L2 (ridge) penalty on the weights (never on the
	// intercept). 0 means ordinary least squares.
	Lambda float64

	weights   []float64 // coefficient per feature
	intercept float64
	fitted    bool
}

// IsFitted reports whether the regression has been solved.
func (l *LinearRegression) IsFitted() bool { return l.fitted }

// NumFeatures returns the feature arity the regression was fitted on
// (0 before Fit).
func (l *LinearRegression) NumFeatures() int { return len(l.weights) }

// Fit solves the normal equations (X'X + λI) w = X'y with an intercept
// column. Rank-deficient systems fall back to a tiny implicit ridge to
// stay solvable.
func (l *LinearRegression) Fit(X [][]float64, y []float64) error {
	p, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if l.Lambda < 0 {
		return errors.New("ml: negative ridge penalty")
	}
	n := len(X)
	// Augmented design: p features + intercept.
	d := p + 1
	ata := make([][]float64, d)
	for i := range ata {
		ata[i] = make([]float64, d)
	}
	aty := make([]float64, d)
	row := make([]float64, d)
	for s := 0; s < n; s++ {
		copy(row, X[s])
		row[p] = 1
		for i := 0; i < d; i++ {
			aty[i] += row[i] * y[s]
			for j := i; j < d; j++ {
				ata[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}
	for i := 0; i < p; i++ { // ridge on weights only
		ata[i][i] += l.Lambda
	}

	w, err := solveSPD(ata, aty)
	if err != nil {
		// Rank deficient: retry with a tiny ridge.
		for i := 0; i < p; i++ {
			ata[i][i] += 1e-8
		}
		w, err = solveSPD(ata, aty)
		if err != nil {
			return fmt.Errorf("ml: linear regression normal equations singular: %w", err)
		}
	}
	l.weights = w[:p]
	l.intercept = w[p]
	l.fitted = true
	return nil
}

// Predict evaluates intercept + w·x.
func (l *LinearRegression) Predict(x []float64) float64 {
	if !l.fitted {
		panic("ml: LinearRegression.Predict called before Fit")
	}
	if len(x) != len(l.weights) {
		panic(fmt.Sprintf("ml: LinearRegression.Predict got %d features, want %d", len(x), len(l.weights)))
	}
	s := l.intercept
	for i, w := range l.weights {
		s += w * x[i]
	}
	return s
}

// Coefficients returns a copy of the fitted weights and the intercept.
func (l *LinearRegression) Coefficients() (weights []float64, intercept float64) {
	return copyVector(l.weights), l.intercept
}

// solveSPD solves A x = b for a symmetric positive (semi)definite A by
// Gaussian elimination with partial pivoting. A and b are clobbered.
func solveSPD(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		maxAbs := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > maxAbs {
				maxAbs, piv = v, r
			}
		}
		if maxAbs < 1e-300 {
			return nil, errors.New("singular matrix")
		}
		if piv != col {
			a[piv], a[col] = a[col], a[piv]
			b[piv], b[col] = b[col], b[piv]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

package ml

import (
	"math/rand"
	"testing"
)

func TestKFoldIndicesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	folds := KFoldIndices(10, 3, rng)
	if len(folds) != 3 {
		t.Fatalf("got %d folds, want 3", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		for _, i := range f {
			seen[i]++
		}
	}
	if len(seen) != 10 {
		t.Errorf("folds cover %d indices, want 10", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("index %d appears %d times", i, c)
		}
	}
	// Fold sizes differ by at most one.
	min, max := len(folds[0]), len(folds[0])
	for _, f := range folds {
		if len(f) < min {
			min = len(f)
		}
		if len(f) > max {
			max = len(f)
		}
	}
	if max-min > 1 {
		t.Errorf("fold sizes range [%d, %d], want spread <= 1", min, max)
	}
}

func TestKFoldIndicesClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := len(KFoldIndices(5, 100, rng)); got != 5 {
		t.Errorf("k clamped to n: got %d folds, want 5", got)
	}
	if got := len(KFoldIndices(5, 0, rng)); got != 2 {
		t.Errorf("k clamped up to 2: got %d folds, want 2", got)
	}
}

func TestCrossValScoreOnLearnableData(t *testing.T) {
	X, y := friedman1(300, 0.2, 41)
	scores, err := CrossValScore(
		func() Regressor { return NewExtraTrees(30, 1) },
		X, y, 5, 7, MAPE)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 5 {
		t.Fatalf("got %d scores, want 5", len(scores))
	}
	for i, s := range scores {
		if s < 0 || s > 50 {
			t.Errorf("fold %d MAPE = %v, want sane (0, 50)", i, s)
		}
	}
}

func TestCrossValScoreErrors(t *testing.T) {
	if _, err := CrossValScore(func() Regressor { return &KNN{} }, nil, nil, 3, 1, MAPE); err == nil {
		t.Error("expected error on empty data")
	}
}

package ml

import (
	"context"
	"errors"
	"fmt"
)

// ParamGrid names one hyperparameter axis and its candidate values.
type ParamGrid struct {
	Name   string
	Values []float64
}

// GridSearchResult reports one evaluated hyperparameter combination.
type GridSearchResult struct {
	// Params maps axis name to the chosen value.
	Params map[string]float64
	// Score is the mean cross-validation score (lower is better).
	Score float64
}

// GridSearch exhaustively evaluates the cartesian product of the
// parameter grids with k-fold cross-validation and returns every
// combination's mean score plus the best one. newModel receives the
// parameter assignment and must build the corresponding estimator;
// score is the loss to minimise (e.g. MAPE). Candidates are evaluated
// on the process default worker pool; see GridSearchWorkers.
func GridSearch(
	grids []ParamGrid,
	newModel func(params map[string]float64) Regressor,
	X [][]float64, y []float64,
	k int, seed int64,
	score func(yTrue, yPred []float64) float64,
) (best GridSearchResult, all []GridSearchResult, err error) {
	return GridSearchWorkers(grids, newModel, X, y, k, seed, score, 0)
}

// GridSearchWorkers is GridSearch with an explicit worker count (<= 0
// means the process default, 1 forces sequential evaluation). The
// candidate list is enumerated before fan-out and results are stored
// in enumeration order — ties therefore resolve to the same candidate
// as a sequential scan, making the result bit-identical for every
// worker count. Cross-validation inside each candidate runs
// sequentially to keep the pool busy with whole candidates.
func GridSearchWorkers(
	grids []ParamGrid,
	newModel func(params map[string]float64) Regressor,
	X [][]float64, y []float64,
	k int, seed int64,
	score func(yTrue, yPred []float64) float64,
	workers int,
) (best GridSearchResult, all []GridSearchResult, err error) {
	return GridSearchCtx(context.Background(), grids, newModel, X, y, k, seed, score, workers)
}

// enumerateGrid validates the parameter grids and expands their
// cartesian product with a mixed-radix counter, in a deterministic
// enumeration order.
func enumerateGrid(grids []ParamGrid) ([]map[string]float64, error) {
	if len(grids) == 0 {
		return nil, errors.New("ml: GridSearch needs at least one parameter grid")
	}
	for _, g := range grids {
		if len(g.Values) == 0 {
			return nil, fmt.Errorf("ml: parameter %q has no candidate values", g.Name)
		}
	}
	var candidates []map[string]float64
	idx := make([]int, len(grids))
	for {
		params := make(map[string]float64, len(grids))
		for i, g := range grids {
			params[g.Name] = g.Values[idx[i]]
		}
		candidates = append(candidates, params)
		carry := len(grids) - 1
		for carry >= 0 {
			idx[carry]++
			if idx[carry] < len(grids[carry].Values) {
				break
			}
			idx[carry] = 0
			carry--
		}
		if carry < 0 {
			break
		}
	}
	return candidates, nil
}

package ml

import (
	"errors"
	"fmt"
	"math"
)

// ParamGrid names one hyperparameter axis and its candidate values.
type ParamGrid struct {
	Name   string
	Values []float64
}

// GridSearchResult reports one evaluated hyperparameter combination.
type GridSearchResult struct {
	// Params maps axis name to the chosen value.
	Params map[string]float64
	// Score is the mean cross-validation score (lower is better).
	Score float64
}

// GridSearch exhaustively evaluates the cartesian product of the
// parameter grids with k-fold cross-validation and returns every
// combination's mean score plus the best one. newModel receives the
// parameter assignment and must build the corresponding estimator;
// score is the loss to minimise (e.g. MAPE).
func GridSearch(
	grids []ParamGrid,
	newModel func(params map[string]float64) Regressor,
	X [][]float64, y []float64,
	k int, seed int64,
	score func(yTrue, yPred []float64) float64,
) (best GridSearchResult, all []GridSearchResult, err error) {
	if len(grids) == 0 {
		return best, nil, errors.New("ml: GridSearch needs at least one parameter grid")
	}
	for _, g := range grids {
		if len(g.Values) == 0 {
			return best, nil, fmt.Errorf("ml: parameter %q has no candidate values", g.Name)
		}
	}
	if _, err := checkXY(X, y); err != nil {
		return best, nil, err
	}

	idx := make([]int, len(grids))
	best.Score = math.Inf(1)
	for {
		params := make(map[string]float64, len(grids))
		for i, g := range grids {
			params[g.Name] = g.Values[idx[i]]
		}
		scores, err := CrossValScore(func() Regressor { return newModel(params) },
			X, y, k, seed, score)
		if err != nil {
			return best, nil, err
		}
		mean := 0.0
		for _, s := range scores {
			mean += s
		}
		mean /= float64(len(scores))
		res := GridSearchResult{Params: params, Score: mean}
		all = append(all, res)
		if mean < best.Score {
			best = res
		}

		// Advance the mixed-radix counter.
		carry := len(grids) - 1
		for carry >= 0 {
			idx[carry]++
			if idx[carry] < len(grids[carry].Values) {
				break
			}
			idx[carry] = 0
			carry--
		}
		if carry < 0 {
			return best, all, nil
		}
	}
}

package ml

import (
	"errors"
	"fmt"
	"math"

	"lam/internal/parallel"
)

// ParamGrid names one hyperparameter axis and its candidate values.
type ParamGrid struct {
	Name   string
	Values []float64
}

// GridSearchResult reports one evaluated hyperparameter combination.
type GridSearchResult struct {
	// Params maps axis name to the chosen value.
	Params map[string]float64
	// Score is the mean cross-validation score (lower is better).
	Score float64
}

// GridSearch exhaustively evaluates the cartesian product of the
// parameter grids with k-fold cross-validation and returns every
// combination's mean score plus the best one. newModel receives the
// parameter assignment and must build the corresponding estimator;
// score is the loss to minimise (e.g. MAPE). Candidates are evaluated
// on the process default worker pool; see GridSearchWorkers.
func GridSearch(
	grids []ParamGrid,
	newModel func(params map[string]float64) Regressor,
	X [][]float64, y []float64,
	k int, seed int64,
	score func(yTrue, yPred []float64) float64,
) (best GridSearchResult, all []GridSearchResult, err error) {
	return GridSearchWorkers(grids, newModel, X, y, k, seed, score, 0)
}

// GridSearchWorkers is GridSearch with an explicit worker count (<= 0
// means the process default, 1 forces sequential evaluation). The
// candidate list is enumerated before fan-out and results are stored
// in enumeration order — ties therefore resolve to the same candidate
// as a sequential scan, making the result bit-identical for every
// worker count. Cross-validation inside each candidate runs
// sequentially to keep the pool busy with whole candidates.
func GridSearchWorkers(
	grids []ParamGrid,
	newModel func(params map[string]float64) Regressor,
	X [][]float64, y []float64,
	k int, seed int64,
	score func(yTrue, yPred []float64) float64,
	workers int,
) (best GridSearchResult, all []GridSearchResult, err error) {
	if len(grids) == 0 {
		return best, nil, errors.New("ml: GridSearch needs at least one parameter grid")
	}
	for _, g := range grids {
		if len(g.Values) == 0 {
			return best, nil, fmt.Errorf("ml: parameter %q has no candidate values", g.Name)
		}
	}
	if _, err := checkXY(X, y); err != nil {
		return best, nil, err
	}

	// Enumerate the cartesian product with a mixed-radix counter.
	var candidates []map[string]float64
	idx := make([]int, len(grids))
	for {
		params := make(map[string]float64, len(grids))
		for i, g := range grids {
			params[g.Name] = g.Values[idx[i]]
		}
		candidates = append(candidates, params)
		carry := len(grids) - 1
		for carry >= 0 {
			idx[carry]++
			if idx[carry] < len(grids[carry].Values) {
				break
			}
			idx[carry] = 0
			carry--
		}
		if carry < 0 {
			break
		}
	}

	all, err = parallel.MapErr(len(candidates), workers, func(c int) (GridSearchResult, error) {
		params := candidates[c]
		scores, err := CrossValScoreWorkers(func() Regressor { return newModel(params) },
			X, y, k, seed, score, 1)
		if err != nil {
			return GridSearchResult{}, err
		}
		mean := 0.0
		for _, s := range scores {
			mean += s
		}
		mean /= float64(len(scores))
		return GridSearchResult{Params: params, Score: mean}, nil
	})
	if err != nil {
		return best, nil, err
	}
	best.Score = math.Inf(1)
	for _, res := range all {
		if res.Score < best.Score {
			best = res
		}
	}
	return best, all, nil
}

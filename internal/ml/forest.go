package ml

import (
	"context"
	"fmt"
	"math/rand"

	"lam/internal/parallel"
	"lam/internal/xmath"
)

// Forest is an ensemble of regression trees averaged at prediction time.
// Configured one way it is a random forest (bootstrap + best splits),
// configured another it is extra trees (full sample + random splits).
// Use NewRandomForest / NewExtraTrees for the two canonical presets.
type Forest struct {
	// NTrees is the ensemble size; values below 1 are treated as 100
	// (the scikit-learn default the paper inherits).
	NTrees int
	// Tree configures every member tree; the per-tree Seed field is
	// overwritten with a value derived from Seed and the tree index.
	Tree TreeConfig
	// Bootstrap draws each tree's training set with replacement.
	Bootstrap bool
	// Seed drives bootstrap sampling and per-tree randomness.
	Seed int64
	// Workers bounds fitting/prediction parallelism; values <= 0 mean
	// the process default (parallel.DefaultWorkers). Results are
	// bit-identical for every worker count.
	Workers int
	// Layout selects the compiled ensemble's traversal layout;
	// LayoutDefault means the process default (SetDefaultLayout).
	// Quantized layouts that exceed the table's addressing limits fail
	// the fit with the quantizer's error.
	Layout Layout

	trees     []*DecisionTree
	compiled  *CompiledEnsemble
	nFeatures int
}

// NewRandomForest returns a Breiman random forest: bootstrap resampling
// and exact CART splits over all features (the scikit-learn regression
// default of max_features = n_features).
func NewRandomForest(nTrees int, seed int64) *Forest {
	return &Forest{
		NTrees:    nTrees,
		Tree:      TreeConfig{Splitter: BestSplitter},
		Bootstrap: true,
		Seed:      seed,
	}
}

// NewExtraTrees returns an extremely randomized trees ensemble: each
// tree sees the full training set and splits on random thresholds. This
// is the best-performing pure-ML model in the paper (Fig. 3) and the ML
// component of the hybrid model.
func NewExtraTrees(nTrees int, seed int64) *Forest {
	return &Forest{
		NTrees:    nTrees,
		Tree:      TreeConfig{Splitter: RandomSplitter},
		Bootstrap: false,
		Seed:      seed,
	}
}

// Fit grows the ensemble. Trees are grown concurrently but the result is
// independent of scheduling: every tree's randomness derives only from
// (Seed, tree index).
func (f *Forest) Fit(X [][]float64, y []float64) error {
	return f.FitCtx(context.Background(), X, y)
}

// FitCtx is Fit with prompt cancellation between trees: once ctx is
// done no further tree starts growing and the fit returns a typed
// cancellation error (wrapping lamerr.ErrCancelled and ctx.Err())
// without mutating the receiver.
func (f *Forest) FitCtx(ctx context.Context, X [][]float64, y []float64) error {
	p, err := checkXY(X, y)
	if err != nil {
		return err
	}
	n := len(X)
	nTrees := f.NTrees
	if nTrees < 1 {
		nTrees = 100
	}
	trees := make([]*DecisionTree, nTrees)
	err = parallel.ForCtx(ctx, nTrees, f.Workers, func(t int) error {
		// Every tree's randomness derives only from (Seed, t), so the
		// worker pool cannot perturb the fitted ensemble.
		treeSeed := int64(xmath.Hash64(uint64(f.Seed), uint64(t), 0x7265657301))
		cfg := f.Tree
		cfg.Seed = treeSeed

		tx, ty := X, y
		if f.Bootstrap {
			rng := rand.New(rand.NewSource(int64(xmath.Hash64(uint64(f.Seed), uint64(t), 0x626f6f74))))
			bx := make([][]float64, n)
			by := make([]float64, n)
			for i := 0; i < n; i++ {
				j := rng.Intn(n)
				bx[i] = X[j]
				by[i] = y[j]
			}
			tx, ty = bx, by
		}
		tree := NewDecisionTree(cfg)
		if err := tree.Fit(tx, ty); err != nil {
			return err
		}
		trees[t] = tree
		return nil
	})
	if err != nil {
		return err
	}
	compiled := compileMeanEnsemble(trees)
	if f.Layout != LayoutDefault {
		if err := compiled.SetLayout(f.Layout); err != nil {
			return err
		}
	}
	f.trees = trees
	f.compiled = compiled
	f.nFeatures = p
	return nil
}

// Compiled exposes the ensemble's shared flat node table (built at
// Fit/load time). Treat it as read-only; nil before Fit.
func (f *Forest) Compiled() *CompiledEnsemble { return f.compiled }

// Predict returns the mean prediction of all member trees: one
// allocation-free walk over the compiled ensemble, summed in tree
// order — bit-identical to averaging per-tree Predict calls.
func (f *Forest) Predict(x []float64) float64 {
	if f.compiled == nil {
		panic("ml: Forest.Predict called before Fit")
	}
	if len(x) != f.nFeatures {
		panic(fmt.Sprintf("ml: Forest.Predict got %d features, want %d", len(x), f.nFeatures))
	}
	return f.compiled.Predict(x)
}

// PredictBatch scores every row of X on the worker pool. Tree
// traversal is read-only, and each row's tree contributions are summed
// in tree order, so the output matches len(X) sequential Predict calls
// exactly.
func (f *Forest) PredictBatch(X [][]float64) []float64 {
	if f.compiled == nil {
		panic("ml: Forest.PredictBatch called before Fit")
	}
	for _, x := range X {
		if len(x) != f.nFeatures {
			panic(fmt.Sprintf("ml: Forest.PredictBatch got %d features, want %d", len(x), f.nFeatures))
		}
	}
	out := make([]float64, len(X))
	f.predictBatchInto(X, out)
	return out
}

// PredictBatchInto scores every row of X into out on the worker pool
// with no allocations beyond the pool's block dispatch (none at all
// with Workers == 1); out must have len(X) elements.
func (f *Forest) PredictBatchInto(X [][]float64, out []float64) error {
	if err := checkInto(f, X, out); err != nil {
		return err
	}
	f.predictBatchInto(X, out)
	return nil
}

func (f *Forest) predictBatchInto(X [][]float64, out []float64) {
	predictBatchInto(f, X, out, f.Workers)
}

// predictBatchIntoSeq implements the compiled plane's sequential
// block contract: one cache-blocked walk over the fused node table.
func (f *Forest) predictBatchIntoSeq(X [][]float64, out []float64) {
	f.compiled.PredictBatchInto(X, out)
}

// NumTrees returns the number of fitted member trees.
func (f *Forest) NumTrees() int { return len(f.trees) }

// IsFitted reports whether the ensemble has been trained.
func (f *Forest) IsFitted() bool { return len(f.trees) > 0 }

// NumFeatures returns the feature arity the ensemble was fitted on (0
// before Fit).
func (f *Forest) NumFeatures() int { return f.nFeatures }

// FeatureImportances averages the member trees' impurity-decrease
// importances. The returned slice is a copy; it is all zeros when no
// tree managed a split.
func (f *Forest) FeatureImportances() []float64 {
	out := make([]float64, f.nFeatures)
	if len(f.trees) == 0 {
		return out
	}
	for _, t := range f.trees {
		for i, v := range t.FeatureImportances() {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(f.trees))
	}
	return out
}

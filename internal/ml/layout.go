package ml

import (
	"fmt"
	"sync/atomic"
)

// Layout selects the traversal layout of a compiled tree ensemble.
//
// The canonical storage is always implicit-left preorder; the layout
// chooses which derived form the prediction paths walk:
//
//   - LayoutImplicitLeft — the default: branchless descent over the
//     canonical table (compare + conditional move, only the right-child
//     array in the hot loop). Exact.
//   - LayoutStandard — the explicit two-child branchy walk (the PR 3
//     baseline), kept for benchmarking and the CI regression guard.
//     Exact.
//   - LayoutLevelOrder — a depth-bucketed level-order (BFS) table used
//     for tree-major batch striding: a batch walks one level of one
//     tree per pass. Single-row prediction uses the canonical walk.
//     Exact.
//   - LayoutQuant16 / LayoutQuant8 — opt-in quantized node tables:
//     thresholds become per-feature affine-coded 16- or 8-bit integers
//     and leaf values float32, shrinking the table ~3.5-4x so large
//     ensembles fit L1/L2. Approximate: a split can only flip for
//     rows within one quantization step of its threshold
//     (feature-range / 65534 or / 254); see quant.go.
//
// Every exact layout produces bit-identical predictions (pinned by
// TestCompiledEquivalence); quantized layouts are pinned by an
// error-bound property test instead.
type Layout int

const (
	// LayoutDefault resolves to the process default (SetDefaultLayout)
	// at apply time.
	LayoutDefault Layout = iota
	// LayoutImplicitLeft is the canonical branchless walk.
	LayoutImplicitLeft
	// LayoutStandard is the explicit-child baseline walk.
	LayoutStandard
	// LayoutLevelOrder is the depth-bucketed batch-striding layout.
	LayoutLevelOrder
	// LayoutQuant16 is the 16-bit quantized table (approximate).
	LayoutQuant16
	// LayoutQuant8 is the 8-bit quantized table (approximate).
	LayoutQuant8
)

// String returns the flag-friendly layout name (ParseLayout inverts it).
func (l Layout) String() string {
	switch l {
	case LayoutDefault:
		return "default"
	case LayoutImplicitLeft:
		return "implicit-left"
	case LayoutStandard:
		return "standard"
	case LayoutLevelOrder:
		return "level-order"
	case LayoutQuant16:
		return "quant16"
	case LayoutQuant8:
		return "quant8"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Exact reports whether the layout preserves bit-identical predictions.
func (l Layout) Exact() bool { return l != LayoutQuant16 && l != LayoutQuant8 }

// ParseLayout parses a layout name as accepted by the -layout flags:
// default, implicit-left (alias branchless), standard, level-order,
// quant16, quant8.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "", "default":
		return LayoutDefault, nil
	case "implicit-left", "branchless":
		return LayoutImplicitLeft, nil
	case "standard":
		return LayoutStandard, nil
	case "level-order":
		return LayoutLevelOrder, nil
	case "quant16":
		return LayoutQuant16, nil
	case "quant8":
		return LayoutQuant8, nil
	default:
		return LayoutDefault, fmt.Errorf("ml: unknown layout %q (want default, implicit-left, standard, level-order, quant16 or quant8)", s)
	}
}

// defaultLayout is the process-wide layout newly compiled ensembles
// adopt (fits and artifact loads alike). Atomic so serving processes
// can retune without a race.
var defaultLayout atomic.Int32

// SetDefaultLayout sets the process-default traversal layout applied
// to every subsequently compiled ensemble. LayoutDefault restores
// LayoutImplicitLeft. Already-compiled ensembles are unaffected; use
// SetLayoutOf for those.
func SetDefaultLayout(l Layout) {
	defaultLayout.Store(int32(l))
}

// DefaultLayout returns the current process-default layout (resolved,
// never LayoutDefault).
func DefaultLayout() Layout {
	if l := Layout(defaultLayout.Load()); l != LayoutDefault {
		return l
	}
	return LayoutImplicitLeft
}

// resolveLayout maps LayoutDefault to the process default.
func resolveLayout(l Layout) Layout {
	if l == LayoutDefault {
		return DefaultLayout()
	}
	return l
}

// SetLayout switches the ensemble to the given traversal layout,
// building whatever derived table it needs. Exact layouts cannot fail;
// quantized layouts return an error when the ensemble exceeds the
// 16-bit table's addressing limits (see buildQuantEnsemble). Not safe
// to call concurrently with prediction: apply right after Fit/load,
// before the ensemble is shared.
func (e *CompiledEnsemble) SetLayout(l Layout) error {
	l = resolveLayout(l)
	var (
		hot     []hotNode
		stdLeft []int32
		lvl     *levelEnsemble
		qt      *quantEnsemble
		err     error
	)
	switch l {
	case LayoutImplicitLeft:
		hot = buildHotNodes(&e.nodes)
	case LayoutStandard:
		stdLeft = materializeLeft(&e.nodes)
	case LayoutLevelOrder:
		lvl = buildLevelEnsemble(e)
	case LayoutQuant16, LayoutQuant8:
		bits := 16
		if l == LayoutQuant8 {
			bits = 8
		}
		if qt, err = buildQuantEnsemble(e, bits); err != nil {
			return err
		}
	default:
		return fmt.Errorf("ml: unknown layout %d", int(l))
	}
	e.hot, e.stdLeft, e.lvl, e.qt = hot, stdLeft, lvl, qt
	e.layout = l
	return nil
}

// Layout returns the ensemble's active traversal layout.
func (e *CompiledEnsemble) Layout() Layout {
	if e.layout == LayoutDefault {
		return LayoutImplicitLeft
	}
	return e.layout
}

// applyDefaultLayout applies the process default at compile time,
// best-effort: a quantized default that does not fit this ensemble
// falls back to the exact implicit-left layout rather than failing the
// fit/load (an explicit SetLayout call still surfaces the error).
func (e *CompiledEnsemble) applyDefaultLayout() {
	if err := e.SetLayout(DefaultLayout()); err != nil {
		// Exact layouts cannot fail, so this can only be an
		// unquantizable ensemble: fall back to the exact default.
		_ = e.SetLayout(LayoutImplicitLeft)
	}
}

// materializeLeft rebuilds the explicit left-child array the canonical
// layout keeps implicit: i+1 for internal nodes, -1 for leaves.
func materializeLeft(c *CompiledTree) []int32 {
	left := make([]int32, c.Len())
	for i, f := range c.feature {
		if f < 0 {
			left[i] = -1
		} else {
			left[i] = int32(i) + 1
		}
	}
	return left
}

// SetLayoutOf applies a traversal layout to a fitted estimator's
// compiled ensemble(s), recursing through the compound estimators
// (Pipeline, Bagging over non-tree bases, Stacking). Estimators with
// no compiled tree plane (LinearRegression, KNN) accept exact layouts
// as a no-op and reject quantized ones — quantization of a mixed
// model is done with Quantize instead, which rebuilds the model
// around a standalone quantized table. Returns lamerr-free plain
// errors; callers surface them verbatim.
func SetLayoutOf(r Regressor, l Layout) error {
	l = resolveLayout(l)
	switch v := r.(type) {
	case *Forest:
		if v.compiled == nil {
			return fmt.Errorf("ml: SetLayoutOf: forest not fitted")
		}
		return v.compiled.SetLayout(l)
	case *GradientBoosting:
		if v.compiled == nil {
			return fmt.Errorf("ml: SetLayoutOf: gradient boosting not fitted")
		}
		return v.compiled.SetLayout(l)
	case *Bagging:
		if v.compiled != nil {
			return v.compiled.SetLayout(l)
		}
		for i, m := range v.models {
			if err := SetLayoutOf(m, l); err != nil {
				return fmt.Errorf("ml: bagging member %d: %w", i, err)
			}
		}
		return nil
	case *Pipeline:
		return SetLayoutOf(v.Model, l)
	case *Stacking:
		for i, b := range v.bases {
			if err := SetLayoutOf(b, l); err != nil {
				return fmt.Errorf("ml: stacking base %d: %w", i, err)
			}
		}
		if v.meta != nil {
			if err := SetLayoutOf(v.meta, l); err != nil {
				return fmt.Errorf("ml: stacking meta: %w", err)
			}
		}
		return nil
	case *QuantizedModel:
		// Already a frozen quantized table; matching layout is a no-op.
		if (l == LayoutQuant16 && v.q.bits == 16) || (l == LayoutQuant8 && v.q.bits == 8) {
			return nil
		}
		return fmt.Errorf("ml: cannot relayout a quantized model (its exact table was dropped)")
	case *DecisionTree:
		// A bare tree has no ensemble table; its canonical walk is
		// already the branchless implicit-left form and the exact
		// layouts coincide on it.
		if l.Exact() {
			return nil
		}
		return fmt.Errorf("ml: cannot quantize a bare DecisionTree in place; use Quantize")
	default:
		if l.Exact() {
			return nil // no tree plane to relayout
		}
		return fmt.Errorf("ml: cannot quantize %T in place; use Quantize", r)
	}
}

// LayoutOf reports the traversal layout of a fitted estimator's
// compiled plane (the first one found on a structural walk), and
// whether the estimator has one at all.
func LayoutOf(r Regressor) (Layout, bool) {
	switch v := r.(type) {
	case *Forest:
		if v.compiled != nil {
			return v.compiled.Layout(), true
		}
	case *GradientBoosting:
		if v.compiled != nil {
			return v.compiled.Layout(), true
		}
	case *Bagging:
		if v.compiled != nil {
			return v.compiled.Layout(), true
		}
		for _, m := range v.models {
			if l, ok := LayoutOf(m); ok {
				return l, true
			}
		}
	case *Pipeline:
		return LayoutOf(v.Model)
	case *Stacking:
		for _, b := range v.bases {
			if l, ok := LayoutOf(b); ok {
				return l, true
			}
		}
		if v.meta != nil {
			return LayoutOf(v.meta)
		}
	case *QuantizedModel:
		if v.q.bits == 8 {
			return LayoutQuant8, true
		}
		return LayoutQuant16, true
	case *DecisionTree:
		if v.IsFitted() {
			return LayoutImplicitLeft, true
		}
	}
	return LayoutDefault, false
}

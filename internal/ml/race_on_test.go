//go:build race

package ml

// raceEnabled reports whether the race detector is active.
const raceEnabled = true

package ml

import (
	"math"
	"testing"
)

func TestBaggingReducesVariance(t *testing.T) {
	// On a noisy surface, bagged deep trees should beat one deep tree
	// out of sample.
	trainX, trainY := friedman1(300, 2.0, 21)
	testX, testY := friedman1(300, 0, 22)

	single := NewDecisionTree(TreeConfig{Seed: 1})
	if err := single.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	bag := &Bagging{
		NewBase: func() Regressor { return NewDecisionTree(TreeConfig{Seed: 1}) },
		N:       30,
		Seed:    5,
	}
	if err := bag.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	if bag.NumModels() != 30 {
		t.Fatalf("bagging fitted %d models, want 30", bag.NumModels())
	}
	se := RMSE(testY, PredictBatch(single, testX))
	be := RMSE(testY, PredictBatch(bag, testX))
	if be >= se {
		t.Errorf("bagging RMSE %v should beat single tree %v", be, se)
	}
}

func TestBaggingDefaults(t *testing.T) {
	X, y := friedman1(50, 0, 23)
	bag := &Bagging{NewBase: func() Regressor { return NewDecisionTree(TreeConfig{}) }}
	if err := bag.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if bag.NumModels() != 10 {
		t.Errorf("default N = %d models, want 10", bag.NumModels())
	}
}

func TestBaggingRequiresBase(t *testing.T) {
	bag := &Bagging{}
	if err := bag.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("expected error without NewBase")
	}
}

func TestBaggingPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	(&Bagging{NewBase: func() Regressor { return &KNN{} }}).Predict([]float64{1})
}

func TestBaggingSampleFrac(t *testing.T) {
	X, y := friedman1(100, 0, 24)
	bag := &Bagging{
		NewBase:    func() Regressor { return NewDecisionTree(TreeConfig{}) },
		N:          5,
		SampleFrac: 0.5,
		Seed:       1,
	}
	if err := bag.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p := bag.Predict(X[0])
	if math.IsNaN(p) {
		t.Error("prediction is NaN")
	}
}

func TestStackingImprovesOverWeakBase(t *testing.T) {
	// A linear meta model over a shallow tree + knn base should beat the
	// shallow tree alone on a smooth surface.
	trainX, trainY := friedman1(400, 0.5, 25)
	testX, testY := friedman1(300, 0, 26)

	shallow := func() Regressor { return NewDecisionTree(TreeConfig{MaxDepth: 3, Seed: 1}) }
	st := &Stacking{
		NewBases:    []func() Regressor{shallow, func() Regressor { return &KNN{K: 5} }},
		NewMeta:     func() Regressor { return &LinearRegression{} },
		PassThrough: true,
		KFold:       5,
		Seed:        3,
	}
	if err := st.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	base := shallow()
	if err := base.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	stErr := RMSE(testY, PredictBatch(st, testX))
	baseErr := RMSE(testY, PredictBatch(base, testX))
	if stErr >= baseErr {
		t.Errorf("stacking RMSE %v should beat shallow tree %v", stErr, baseErr)
	}
}

func TestStackingWithoutPassThrough(t *testing.T) {
	X, y := friedman1(200, 0.5, 27)
	st := &Stacking{
		NewBases: []func() Regressor{func() Regressor { return NewExtraTrees(10, 1) }},
		NewMeta:  func() Regressor { return &LinearRegression{} },
	}
	if err := st.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Meta over a good base without pass-through is roughly the base.
	if r2 := R2(y, PredictBatch(st, X)); r2 < 0.8 {
		t.Errorf("stack R2 = %v, want >= 0.8", r2)
	}
}

func TestStackingValidation(t *testing.T) {
	st := &Stacking{}
	if err := st.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("expected error with no bases")
	}
	st = &Stacking{NewBases: []func() Regressor{func() Regressor { return &KNN{} }}}
	if err := st.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Error("expected error with no meta")
	}
}

func TestStackingPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	(&Stacking{}).Predict([]float64{1})
}

//go:build !race

package ml

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under -race because instrumentation perturbs
// the counts.
const raceEnabled = false

package ml

import (
	"context"
	"fmt"
	"math/rand"

	"lam/internal/lamerr"
	"lam/internal/parallel"
	"lam/internal/xmath"
)

// newSeededRand derives an independent deterministic stream from a base
// seed and a stream index.
func newSeededRand(seed, stream int64) *rand.Rand {
	return rand.New(rand.NewSource(int64(xmath.Hash64(uint64(seed), uint64(stream), 0x676272))))
}

// GradientBoosting is a least-squares gradient-boosted trees regressor:
// shallow CART trees fitted stage-wise to the residuals, scaled by a
// learning rate. It completes the ensemble family around the paper's
// bagging/stacking methods and serves as an additional baseline in the
// ablation benches.
type GradientBoosting struct {
	// NStages is the number of boosting rounds; values below 1 are
	// treated as 100.
	NStages int
	// LearningRate shrinks each stage's contribution; values outside
	// (0, 1] are treated as 0.1.
	LearningRate float64
	// MaxDepth bounds each stage's tree; values below 1 are treated as
	// 3 (the classic boosting weak learner).
	MaxDepth int
	// MinSamplesLeaf is forwarded to the stage trees.
	MinSamplesLeaf int
	// Subsample draws a fraction of the training set per stage
	// (stochastic gradient boosting); values outside (0, 1] mean 1.
	Subsample float64
	// Seed drives subsampling and stage-tree randomness.
	Seed int64
	// Workers bounds the per-stage training-set scoring parallelism;
	// values <= 0 mean the process default. Boosting stages themselves
	// are inherently sequential (each fits the previous residual), but
	// scoring every training sample with the freshly grown stage tree
	// is an independent-iteration loop and dominates on wide datasets.
	Workers int
	// Layout selects the compiled ensemble's traversal layout;
	// LayoutDefault means the process default (SetDefaultLayout).
	// Quantized layouts that exceed the table's addressing limits fail
	// the fit with the quantizer's error.
	Layout Layout

	init     float64
	stages   []*DecisionTree
	rate     float64
	compiled *CompiledEnsemble
}

// Fit runs stage-wise least-squares boosting.
func (g *GradientBoosting) Fit(X [][]float64, y []float64) error {
	return g.FitCtx(context.Background(), X, y)
}

// FitCtx is Fit with prompt cancellation between boosting stages (the
// stages themselves are inherently sequential); once ctx is done the
// fit returns a typed cancellation error without mutating the receiver.
func (g *GradientBoosting) FitCtx(ctx context.Context, X [][]float64, y []float64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	n := len(X)
	stagesN := g.NStages
	if stagesN < 1 {
		stagesN = 100
	}
	rate := g.LearningRate
	if rate <= 0 || rate > 1 {
		rate = 0.1
	}
	depth := g.MaxDepth
	if depth < 1 {
		depth = 3
	}
	sub := g.Subsample
	if sub <= 0 || sub > 1 {
		sub = 1
	}

	// Initial prediction: the mean.
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	stages := make([]*DecisionTree, 0, stagesN)

	current := make([]float64, n)
	for i := range current {
		current[i] = mean
	}
	residual := make([]float64, n)
	subN := int(sub * float64(n))
	if subN < 1 {
		subN = 1
	}
	for s := 0; s < stagesN; s++ {
		if err := ctx.Err(); err != nil {
			return parallel.Cancelled(err)
		}
		for i := range residual {
			residual[i] = y[i] - current[i]
		}
		tx, ty := X, residual
		if subN < n {
			// Deterministic per-stage subsample.
			rng := newSeededRand(g.Seed, int64(s))
			perm := rng.Perm(n)[:subN]
			tx = make([][]float64, subN)
			ty = make([]float64, subN)
			for k, i := range perm {
				tx[k] = X[i]
				ty[k] = residual[i]
			}
		}
		tree := NewDecisionTree(TreeConfig{
			MaxDepth:       depth,
			MinSamplesLeaf: g.MinSamplesLeaf,
			Seed:           g.Seed + int64(s)*7919,
		})
		if err := tree.Fit(tx, ty); err != nil {
			return fmt.Errorf("ml: boosting stage %d: %w", s, err)
		}
		stages = append(stages, tree)
		// Disjoint per-index writes: the update is bit-identical for
		// every worker count.
		parallel.ForBlocks(n, g.Workers, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				current[i] += rate * tree.Predict(X[i])
			}
		})
	}
	compiled := compileBoostedEnsemble(stages, mean, rate)
	if g.Layout != LayoutDefault {
		if err := compiled.SetLayout(g.Layout); err != nil {
			return err
		}
	}
	g.init = mean
	g.rate = rate
	g.stages = stages
	g.compiled = compiled
	return nil
}

// Compiled exposes the booster's shared flat node table (built at
// Fit/load time). Treat it as read-only; nil before Fit.
func (g *GradientBoosting) Compiled() *CompiledEnsemble { return g.compiled }

// IsFitted reports whether the booster has been trained.
func (g *GradientBoosting) IsFitted() bool { return len(g.stages) > 0 }

// NumFeatures returns the feature arity the booster was fitted on (0
// before Fit).
func (g *GradientBoosting) NumFeatures() int {
	if len(g.stages) == 0 {
		return 0
	}
	return g.stages[0].NumFeatures()
}

// Predict sums the initial value and all shrunken stage contributions:
// one allocation-free walk over the compiled ensemble, accumulated in
// stage order — bit-identical to summing per-stage Predict calls.
func (g *GradientBoosting) Predict(x []float64) float64 {
	if g.compiled == nil {
		panic("ml: GradientBoosting.Predict called before Fit")
	}
	if want := g.stages[0].nFeatures; len(x) != want {
		panic(fmt.Sprintf("ml: GradientBoosting.Predict got %d features, want %d", len(x), want))
	}
	return g.compiled.Predict(x)
}

// PredictBatchInto scores every row of X into out on the worker pool
// (none at all with Workers == 1); out must have len(X) elements.
func (g *GradientBoosting) PredictBatchInto(X [][]float64, out []float64) error {
	if err := checkInto(g, X, out); err != nil {
		return err
	}
	predictBatchInto(g, X, out, g.Workers)
	return nil
}

// predictBatchIntoSeq implements the compiled plane's sequential
// block contract: one walk over the fused stage table.
func (g *GradientBoosting) predictBatchIntoSeq(X [][]float64, out []float64) {
	g.compiled.PredictBatchInto(X, out)
}

// NumStages returns the number of fitted boosting stages.
func (g *GradientBoosting) NumStages() int { return len(g.stages) }

// StagedPredict returns the prediction after every boosting stage,
// useful for picking an early-stopping point on a validation set.
// Misuse (unfitted model, wrong arity) panics, matching Predict.
func (g *GradientBoosting) StagedPredict(x []float64) []float64 {
	if g.compiled == nil {
		panic("ml: GradientBoosting.StagedPredict called before Fit")
	}
	out := make([]float64, len(g.stages))
	if err := g.StagedPredictInto(x, out); err != nil {
		panic("ml: GradientBoosting.StagedPredict: " + err.Error())
	}
	return out
}

// StagedPredictInto writes the prediction after every boosting stage
// into out (which must have NumStages elements) with zero allocations,
// returning the *Into contract's typed errors (ErrNotFitted,
// ErrDimension) instead of panicking.
func (g *GradientBoosting) StagedPredictInto(x []float64, out []float64) error {
	if g.compiled == nil {
		return fmt.Errorf("ml: %w", lamerr.ErrNotFitted)
	}
	if want := g.stages[0].nFeatures; len(x) != want {
		return fmt.Errorf("ml: %w: got %d features, want %d", lamerr.ErrDimension, len(x), want)
	}
	if len(out) != len(g.stages) {
		return fmt.Errorf("ml: %w: output slice holds %d values for %d stages", lamerr.ErrDimension, len(out), len(g.stages))
	}
	g.compiled.PredictInto(x, out)
	return nil
}

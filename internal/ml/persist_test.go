package ml

import (
	"bytes"
	"strings"
	"testing"
)

// roundTrip saves and reloads a model, failing the test on error.
func roundTrip(t *testing.T, m Regressor) Regressor {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// assertSamePredictions compares two models over probe points.
func assertSamePredictions(t *testing.T, a, b Regressor, probes [][]float64) {
	t.Helper()
	for i, x := range probes {
		pa, pb := a.Predict(x), b.Predict(x)
		if pa != pb {
			t.Fatalf("probe %d: original %v, reloaded %v", i, pa, pb)
		}
	}
}

func TestPersistDecisionTree(t *testing.T) {
	X, y := friedman1(200, 0.5, 71)
	probes, _ := friedman1(30, 0, 72)
	tree := NewDecisionTree(TreeConfig{MaxDepth: 6, Seed: 1})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, tree)
	assertSamePredictions(t, tree, loaded, probes)
	lt := loaded.(*DecisionTree)
	if lt.Depth() != tree.Depth() || lt.NumLeaves() != tree.NumLeaves() {
		t.Error("tree shape changed through persistence")
	}
	imp := lt.FeatureImportances()
	want := tree.FeatureImportances()
	for i := range want {
		if imp[i] != want[i] {
			t.Error("importances changed through persistence")
		}
	}
}

func TestPersistForest(t *testing.T) {
	X, y := friedman1(200, 0.5, 73)
	probes, _ := friedman1(30, 0, 74)
	for _, f := range []*Forest{NewRandomForest(15, 2), NewExtraTrees(15, 2)} {
		if err := f.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		loaded := roundTrip(t, f)
		assertSamePredictions(t, f, loaded, probes)
		if loaded.(*Forest).NumTrees() != 15 {
			t.Error("forest size changed")
		}
	}
}

func TestPersistLinearRegression(t *testing.T) {
	X, y := friedman1(100, 0, 75)
	probes, _ := friedman1(20, 0, 76)
	lr := &LinearRegression{Lambda: 0.5}
	if err := lr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	assertSamePredictions(t, lr, roundTrip(t, lr), probes)
}

func TestPersistKNN(t *testing.T) {
	X, y := friedman1(80, 0, 77)
	probes, _ := friedman1(20, 0, 78)
	k := &KNN{K: 3, Weighting: DistanceWeights}
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	assertSamePredictions(t, k, roundTrip(t, k), probes)
}

func TestPersistGradientBoosting(t *testing.T) {
	X, y := friedman1(150, 0.3, 79)
	probes, _ := friedman1(20, 0, 80)
	g := &GradientBoosting{NStages: 25, Seed: 4}
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	assertSamePredictions(t, g, roundTrip(t, g), probes)
}

func TestPersistPipeline(t *testing.T) {
	X, y := friedman1(150, 0.3, 81)
	probes, _ := friedman1(20, 0, 82)
	p := &Pipeline{Model: NewExtraTrees(10, 5)}
	if err := p.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	assertSamePredictions(t, p, roundTrip(t, p), probes)
}

func TestPersistRejectsUnfitted(t *testing.T) {
	var buf bytes.Buffer
	for _, m := range []Regressor{
		NewDecisionTree(TreeConfig{}),
		NewRandomForest(5, 1),
		&LinearRegression{},
		&KNN{},
		&GradientBoosting{},
		&Pipeline{Model: &KNN{}},
	} {
		if err := SaveModel(&buf, m); err == nil {
			t.Errorf("saving unfitted %T should fail", m)
		}
	}
}

func TestPersistRejectsUnsupported(t *testing.T) {
	var buf bytes.Buffer
	st := &Stacking{}
	if err := SaveModel(&buf, st); err == nil {
		t.Error("expected unsupported-type error")
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"kind":"martian","data":{}}`,
		`{"kind":"decision_tree","data":{"nodes":[]}}`,
		`{"kind":"forest","data":{"trees":[]}}`,
		`{"kind":"linreg","data":{}}`,
		`{"kind":"knn","data":{"x":[[1]],"y":[]}}`,
		`{"kind":"gbr","data":{"stages":[]}}`,
		`{"kind":"pipeline","data":{"model":{"kind":"martian","data":{}}}}`,
	}
	for i, c := range cases {
		if _, err := LoadModel(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error for %q", i, c)
		}
	}
}

func TestLoadModelRejectsCorruptTreeLinks(t *testing.T) {
	// Internal node with out-of-range child index.
	payload := `{"kind":"decision_tree","data":{"n_features":1,"nodes":[{"f":0,"t":1,"v":0,"n":2,"l":5,"r":-1}]}}`
	if _, err := LoadModel(strings.NewReader(payload)); err == nil {
		t.Error("expected corrupt-index error")
	}
	// Internal node missing a child.
	payload = `{"kind":"decision_tree","data":{"n_features":1,"nodes":[{"f":0,"t":1,"v":0,"n":2,"l":-1,"r":-1}]}}`
	if _, err := LoadModel(strings.NewReader(payload)); err == nil {
		t.Error("expected missing-child error")
	}
}

package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Splitter selects how a tree node chooses its split threshold.
type Splitter int

const (
	// BestSplitter scans every candidate threshold and picks the one
	// minimising the weighted sum of squared errors (classic CART).
	BestSplitter Splitter = iota
	// RandomSplitter draws one uniform random threshold per candidate
	// feature and keeps the best feature — the extra-trees rule of
	// Geurts et al. that the paper's best-performing model uses.
	RandomSplitter
)

func (s Splitter) String() string {
	switch s {
	case BestSplitter:
		return "best"
	case RandomSplitter:
		return "random"
	default:
		return fmt.Sprintf("Splitter(%d)", int(s))
	}
}

// TreeConfig holds the hyperparameters of a regression tree. The zero
// value is a fully grown CART tree (unlimited depth, best splits, all
// features considered at every node).
type TreeConfig struct {
	// MaxDepth bounds the tree depth; 0 means unlimited.
	MaxDepth int
	// MinSamplesSplit is the minimum node size eligible for splitting.
	// Values below 2 are treated as 2.
	MinSamplesSplit int
	// MinSamplesLeaf is the minimum number of samples a child may hold.
	// Values below 1 are treated as 1.
	MinSamplesLeaf int
	// MaxFeatures is the number of features examined per node; 0 means
	// all features.
	MaxFeatures int
	// Splitter selects CART best-split or extra-trees random-split.
	Splitter Splitter
	// Seed drives every random choice (feature subsets, random
	// thresholds). Trees with equal config, seed and data are identical.
	Seed int64
}

func (c TreeConfig) normalized() TreeConfig {
	if c.MinSamplesSplit < 2 {
		c.MinSamplesSplit = 2
	}
	if c.MinSamplesLeaf < 1 {
		c.MinSamplesLeaf = 1
	}
	return c
}

// DecisionTree is a CART regression tree (variance-reduction splitting)
// with an optional extra-trees random splitter. The fitted tree is
// stored directly in compiled form — a flat preorder node table
// (CompiledTree) — so prediction is an iterative, allocation-free
// index walk with no pointer chasing.
type DecisionTree struct {
	Config TreeConfig

	nodes       CompiledTree
	nFeatures   int
	importances []float64
}

// NewDecisionTree returns a tree with the given configuration.
func NewDecisionTree(cfg TreeConfig) *DecisionTree {
	return &DecisionTree{Config: cfg}
}

// IsFitted reports whether the tree has been grown.
func (t *DecisionTree) IsFitted() bool { return t.nodes.Len() > 0 }

// Compiled exposes the tree's flat node table (the runtime
// representation itself, not a copy). Treat it as read-only.
func (t *DecisionTree) Compiled() *CompiledTree { return &t.nodes }

// NumFeatures returns the feature arity the tree was fitted on (0
// before Fit).
func (t *DecisionTree) NumFeatures() int { return t.nFeatures }

// Fit grows the tree on (X, y).
func (t *DecisionTree) Fit(X [][]float64, y []float64) error {
	p, err := checkXY(X, y)
	if err != nil {
		return err
	}
	cfg := t.Config.normalized()

	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	importances := make([]float64, p)
	b := &treeBuilder{
		X: X, y: y, cfg: cfg, rng: rng,
		nFeatures: p, importances: importances,
		featBuf: make([]int, p),
		scratch: make([]splitSample, len(X)),
	}
	b.build(idx, 1)
	// Normalise importances to sum to 1 (when any split happened).
	total := 0.0
	for _, v := range importances {
		total += v
	}
	if total > 0 {
		for i := range importances {
			importances[i] /= total
		}
	}
	// Assign fitted state only on success, so a failed refit of an
	// already-fitted tree leaves it untouched.
	t.nFeatures = p
	t.importances = importances
	t.nodes = b.out
	return nil
}

// Predict returns the fitted response for x: an iterative walk over
// the compiled node table. Allocation-free.
func (t *DecisionTree) Predict(x []float64) float64 {
	if t.nodes.Len() == 0 {
		panic("ml: DecisionTree.Predict called before Fit")
	}
	if len(x) != t.nFeatures {
		panic(fmt.Sprintf("ml: DecisionTree.Predict got %d features, want %d", len(x), t.nFeatures))
	}
	return t.nodes.Predict(x)
}

// PredictBatchInto scores every row of X into out sequentially with
// zero allocations; out must have len(X) elements.
func (t *DecisionTree) PredictBatchInto(X [][]float64, out []float64) error {
	if err := checkInto(t, X, out); err != nil {
		return err
	}
	t.predictBatchIntoSeq(X, out)
	return nil
}

// predictBatchIntoSeq implements the compiled plane's sequential block
// contract: a bare iterative walk per row (rows are pre-validated).
func (t *DecisionTree) predictBatchIntoSeq(X [][]float64, out []float64) {
	for i, x := range X {
		out[i] = t.nodes.Predict(x)
	}
}

// Depth returns the depth of the fitted tree (a lone leaf has depth 1).
func (t *DecisionTree) Depth() int { return t.nodes.depth() }

// NumLeaves returns the number of leaves of the fitted tree.
func (t *DecisionTree) NumLeaves() int { return t.nodes.numLeaves() }

// FeatureImportances returns the impurity-decrease importance of each
// feature, normalised to sum to one (all zeros when the tree is a single
// leaf). The returned slice is a copy.
func (t *DecisionTree) FeatureImportances() []float64 {
	return copyVector(t.importances)
}

// splitSample pairs one feature value with its response for sorting.
type splitSample struct {
	v, y float64
}

// treeBuilder holds the shared state of one Fit call. Nodes are
// appended to out in preorder (parent, left subtree, right subtree),
// which is the layout CompiledTree's iterative traversal and the
// persistence format both rely on.
type treeBuilder struct {
	X           [][]float64
	y           []float64
	cfg         TreeConfig
	rng         *rand.Rand
	nFeatures   int
	importances []float64
	featBuf     []int
	scratch     []splitSample
	out         CompiledTree
}

// build grows the subtree over the sample indices idx at the given
// depth and returns its root's index in the node table.
func (b *treeBuilder) build(idx []int, depth int) int32 {
	n := len(idx)
	sum, sum2 := 0.0, 0.0
	for _, i := range idx {
		sum += b.y[i]
		sum2 += b.y[i] * b.y[i]
	}
	mean := sum / float64(n)
	sse := sum2 - sum*sum/float64(n)
	node := b.out.grow(mean, n)

	if n < b.cfg.MinSamplesSplit ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) ||
		sse <= 1e-12 {
		return node
	}

	feat, thr, gain, ok := b.findSplit(idx, sse)
	if !ok {
		return node
	}

	left := make([]int, 0, n)
	right := make([]int, 0, n)
	for _, i := range idx {
		if b.X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinSamplesLeaf || len(right) < b.cfg.MinSamplesLeaf {
		return node
	}

	b.importances[feat] += gain
	l := b.build(left, depth+1)
	r := b.build(right, depth+1)
	b.out.split(node, feat, thr, l, r)
	return node
}

// candidateFeatures fills b.featBuf with the features to examine at one
// node: all of them, or a MaxFeatures-sized random subset.
func (b *treeBuilder) candidateFeatures() []int {
	k := b.cfg.MaxFeatures
	if k <= 0 || k >= b.nFeatures {
		for i := range b.featBuf {
			b.featBuf[i] = i
		}
		return b.featBuf
	}
	// Partial Fisher-Yates for a k-subset.
	for i := range b.featBuf {
		b.featBuf[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + b.rng.Intn(b.nFeatures-i)
		b.featBuf[i], b.featBuf[j] = b.featBuf[j], b.featBuf[i]
	}
	return b.featBuf[:k]
}

// findSplit returns the best (feature, threshold) pair at a node along
// with the impurity decrease. ok is false when no valid split exists.
func (b *treeBuilder) findSplit(idx []int, parentSSE float64) (feat int, thr float64, gain float64, ok bool) {
	bestSSE := math.Inf(1)
	for _, f := range b.candidateFeatures() {
		var t float64
		var s float64
		var valid bool
		if b.cfg.Splitter == RandomSplitter {
			t, s, valid = b.randomSplit(idx, f)
		} else {
			t, s, valid = b.bestSplit(idx, f)
		}
		if valid && s < bestSSE {
			bestSSE, feat, thr, ok = s, f, t, true
		}
	}
	if !ok {
		return 0, 0, 0, false
	}
	gain = parentSSE - bestSSE
	if gain <= 0 {
		// A split that does not decrease impurity is only kept for the
		// random splitter, where the theory expects occasional neutral
		// splits; CART stops.
		if b.cfg.Splitter == BestSplitter {
			return 0, 0, 0, false
		}
		gain = 0
	}
	return feat, thr, gain, true
}

// bestSplit scans all midpoints of feature f (CART exact search).
func (b *treeBuilder) bestSplit(idx []int, f int) (thr, sse float64, ok bool) {
	n := len(idx)
	ss := b.scratch[:n]
	for k, i := range idx {
		ss[k] = splitSample{v: b.X[i][f], y: b.y[i]}
	}
	sort.Slice(ss, func(a, c int) bool { return ss[a].v < ss[c].v })
	if ss[0].v == ss[n-1].v {
		return 0, 0, false // constant feature
	}

	totalSum, totalSum2 := 0.0, 0.0
	for _, s := range ss {
		totalSum += s.y
		totalSum2 += s.y * s.y
	}

	minLeaf := b.cfg.MinSamplesLeaf
	best := math.Inf(1)
	leftSum, leftSum2 := 0.0, 0.0
	for k := 0; k < n-1; k++ {
		leftSum += ss[k].y
		leftSum2 += ss[k].y * ss[k].y
		if ss[k].v == ss[k+1].v {
			continue // cannot split between equal values
		}
		nl := k + 1
		nr := n - nl
		if nl < minLeaf || nr < minLeaf {
			continue
		}
		rightSum := totalSum - leftSum
		rightSum2 := totalSum2 - leftSum2
		s := (leftSum2 - leftSum*leftSum/float64(nl)) +
			(rightSum2 - rightSum*rightSum/float64(nr))
		if s < best {
			best = s
			thr = ss[k].v + (ss[k+1].v-ss[k].v)/2
			// Guard against midpoint rounding onto the upper value,
			// which would send equal values both ways inconsistently.
			if thr >= ss[k+1].v {
				thr = ss[k].v
			}
			ok = true
		}
	}
	return thr, best, ok
}

// randomSplit draws one uniform threshold in (min, max) of feature f
// (extra-trees rule) and scores it.
func (b *treeBuilder) randomSplit(idx []int, f int) (thr, sse float64, ok bool) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, i := range idx {
		v := b.X[i][f]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi {
		return 0, 0, false
	}
	thr = lo + b.rng.Float64()*(hi-lo)
	if thr >= hi { // keep the right side non-empty
		thr = lo
	}

	nl, nr := 0, 0
	leftSum, leftSum2, rightSum, rightSum2 := 0.0, 0.0, 0.0, 0.0
	for _, i := range idx {
		y := b.y[i]
		if b.X[i][f] <= thr {
			nl++
			leftSum += y
			leftSum2 += y * y
		} else {
			nr++
			rightSum += y
			rightSum2 += y * y
		}
	}
	if nl < b.cfg.MinSamplesLeaf || nr < b.cfg.MinSamplesLeaf {
		return 0, 0, false
	}
	sse = (leftSum2 - leftSum*leftSum/float64(nl)) +
		(rightSum2 - rightSum*rightSum/float64(nr))
	return thr, sse, true
}

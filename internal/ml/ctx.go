package ml

import (
	"context"
	"fmt"
	"math"

	"lam/internal/lamerr"
	"lam/internal/parallel"
)

// Context-aware entry points for the estimator suite. The v1 functions
// (PredictBatch, CrossValScore, GridSearch, each estimator's Fit)
// remain as thin wrappers over these with context.Background(); new
// code — and everything reachable from the serving layer — should call
// the Ctx variants so long fits and sweeps are cancellable and
// deadline-aware. Cancellation is prompt: it is checked between
// independent units (trees, folds, candidates, prediction blocks), so
// latency is bounded by a single unit's duration.

// ContextFitter is implemented by estimators whose training can be
// cancelled mid-fit (forests, bagging, stacking, boosting, pipelines).
type ContextFitter interface {
	FitCtx(ctx context.Context, X [][]float64, y []float64) error
}

// Fitted reports whether a regressor has been trained, when it exposes
// that state through an IsFitted method (every estimator in this
// package does). Unknown implementations are assumed fitted.
func Fitted(r Regressor) bool {
	if f, ok := r.(interface{ IsFitted() bool }); ok {
		return f.IsFitted()
	}
	return r != nil
}

// NumFeaturesOf returns the feature arity a fitted regressor expects,
// when it exposes one through a NumFeatures method (the estimators in
// this package do). The second result is false when the arity is
// unknown.
func NumFeaturesOf(r Regressor) (int, bool) {
	if nf, ok := r.(interface{ NumFeatures() int }); ok {
		if n := nf.NumFeatures(); n > 0 {
			return n, true
		}
	}
	return 0, false
}

// FitCtx fits r on (X, y), forwarding the context when r supports
// cancellation and otherwise checking it once up front.
func FitCtx(ctx context.Context, r Regressor, X [][]float64, y []float64) error {
	if cf, ok := r.(ContextFitter); ok {
		return cf.FitCtx(ctx, X, y)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return parallel.Cancelled(err)
		}
	}
	return r.Fit(X, y)
}

// checkPredictable guards the panics in the estimators' Predict
// methods (unfitted model, wrong-arity vector) with typed errors, for
// the serving-grade entry points below.
func checkPredictable(r Regressor, x []float64) error {
	if !Fitted(r) {
		return fmt.Errorf("ml: %w", lamerr.ErrNotFitted)
	}
	if want, ok := NumFeaturesOf(r); ok && len(x) != want {
		return fmt.Errorf("ml: %w: got %d features, want %d", lamerr.ErrDimension, len(x), want)
	}
	return nil
}

// PredictCtx scores one feature vector with an up-front context check
// and typed errors (ErrNotFitted, ErrDimension) in place of the panics
// Regressor.Predict reserves for programming errors. It is the
// single-vector serving path shared by the facade's MLPredictor and
// the registry.
func PredictCtx(ctx context.Context, r Regressor, x []float64) (float64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, parallel.Cancelled(err)
		}
	}
	if err := checkPredictable(r, x); err != nil {
		return 0, err
	}
	return r.Predict(x), nil
}

// PredictBatchCtx applies r.Predict to every row of X like
// PredictBatchWorkers, re-checking the context between blocks; on
// cancellation it returns a typed error and no predictions. Fitted and
// per-row arity checks guard the panics in the estimators' Predict
// methods.
func PredictBatchCtx(ctx context.Context, r Regressor, X [][]float64, workers int) ([]float64, error) {
	out := make([]float64, len(X))
	if err := PredictBatchIntoCtx(ctx, r, X, out, workers); err != nil {
		return nil, err
	}
	return out, nil
}

// intoBlock is the row count between context polls on the sequential
// Into path: large enough that the poll is noise, small enough that
// cancellation stays prompt for microsecond-scale tree walks.
const intoBlock = 256

// PredictBatchIntoCtx is PredictBatchInto with prompt cancellation
// between row blocks — the allocation-free serving path behind
// registry batch prediction and lam-serve's /predict endpoint. With
// workers == 1 the loop runs inline with zero allocations (the
// sequential case is a plain loop, no closure, no pool dispatch).
func PredictBatchIntoCtx(ctx context.Context, r Regressor, X [][]float64, out []float64, workers int) error {
	if err := checkInto(r, X, out); err != nil {
		return err
	}
	if ctx == nil || ctx.Done() == nil {
		predictBatchInto(r, X, out, workers)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return parallel.Cancelled(err)
	}
	seq, hasSeq := r.(seqBatchIntoPredictor)
	if parallel.Resolve(workers, len(X)) == 1 {
		done := ctx.Done()
		for lo := 0; lo < len(X); lo += intoBlock {
			select {
			case <-done:
				return parallel.Cancelled(ctx.Err())
			default:
			}
			hi := lo + intoBlock
			if hi > len(X) {
				hi = len(X)
			}
			if hasSeq {
				seq.predictBatchIntoSeq(X[lo:hi], out[lo:hi])
			} else {
				predictRows(r, X[lo:hi], out[lo:hi])
			}
		}
		return nil
	}
	return parallel.ForBlocksCtx(ctx, len(X), workers, 16, func(lo, hi int) {
		if hasSeq {
			seq.predictBatchIntoSeq(X[lo:hi], out[lo:hi])
		} else {
			predictRows(r, X[lo:hi], out[lo:hi])
		}
	})
}

// CrossValScoreCtx is CrossValScoreWorkers with prompt cancellation
// between folds.
func CrossValScoreCtx(ctx context.Context, newModel func() Regressor, X [][]float64, y []float64, k int, seed int64, score func(yTrue, yPred []float64) float64, workers int) ([]float64, error) {
	return crossValScore(ctx, newModel, X, y, k, seed, score, workers)
}

// GridSearchCtx is GridSearchWorkers with prompt cancellation between
// hyperparameter candidates (and between the folds inside each
// candidate).
func GridSearchCtx(
	ctx context.Context,
	grids []ParamGrid,
	newModel func(params map[string]float64) Regressor,
	X [][]float64, y []float64,
	k int, seed int64,
	score func(yTrue, yPred []float64) float64,
	workers int,
) (best GridSearchResult, all []GridSearchResult, err error) {
	candidates, err := enumerateGrid(grids)
	if err != nil {
		return best, nil, err
	}
	if _, err := checkXY(X, y); err != nil {
		return best, nil, err
	}
	all, err = parallel.MapCtx(ctx, len(candidates), workers, func(c int) (GridSearchResult, error) {
		params := candidates[c]
		scores, err := crossValScore(ctx, func() Regressor { return newModel(params) },
			X, y, k, seed, score, 1)
		if err != nil {
			return GridSearchResult{}, err
		}
		mean := 0.0
		for _, s := range scores {
			mean += s
		}
		mean /= float64(len(scores))
		return GridSearchResult{Params: params, Score: mean}, nil
	})
	if err != nil {
		return best, nil, err
	}
	best.Score = math.Inf(1)
	for _, res := range all {
		if res.Score < best.Score {
			best = res
		}
	}
	return best, all, nil
}

package ml

import (
	"fmt"
	"math"
	"sort"
)

// MAPE returns the mean absolute percentage error, in percent — the
// paper's headline metric. Samples with zero truth are skipped (all
// responses in this repository are strictly positive execution times).
func MAPE(yTrue, yPred []float64) float64 {
	checkSameLen(yTrue, yPred)
	s, n := 0.0, 0
	for i := range yTrue {
		ape, ok := APE(yTrue[i], yPred[i])
		if !ok {
			continue
		}
		s += ape
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// APE returns one sample's absolute percentage error, in percent, and
// whether it is defined (zero truth has no percentage error — the
// repository's responses are strictly positive execution times, so a
// zero is a degenerate sample, skipped by the aggregate metrics). It is
// the per-sample unit behind MedAPE and the online plane's sliding
// accuracy window, which must score observations one at a time as they
// stream in.
func APE(yTrue, yPred float64) (float64, bool) {
	if yTrue == 0 {
		return 0, false
	}
	return 100 * math.Abs(yPred-yTrue) / math.Abs(yTrue), true
}

// MedAPE returns the median absolute percentage error, in percent.
func MedAPE(yTrue, yPred []float64) float64 {
	checkSameLen(yTrue, yPred)
	apes := make([]float64, 0, len(yTrue))
	for i := range yTrue {
		ape, ok := APE(yTrue[i], yPred[i])
		if !ok {
			continue
		}
		apes = append(apes, ape)
	}
	if len(apes) == 0 {
		return 0
	}
	sort.Float64s(apes)
	m := len(apes) / 2
	if len(apes)%2 == 1 {
		return apes[m]
	}
	return (apes[m-1] + apes[m]) / 2
}

// MAE returns the mean absolute error.
func MAE(yTrue, yPred []float64) float64 {
	checkSameLen(yTrue, yPred)
	if len(yTrue) == 0 {
		return 0
	}
	s := 0.0
	for i := range yTrue {
		s += math.Abs(yPred[i] - yTrue[i])
	}
	return s / float64(len(yTrue))
}

// RMSE returns the root mean squared error.
func RMSE(yTrue, yPred []float64) float64 {
	checkSameLen(yTrue, yPred)
	if len(yTrue) == 0 {
		return 0
	}
	s := 0.0
	for i := range yTrue {
		d := yPred[i] - yTrue[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(yTrue)))
}

// R2 returns the coefficient of determination. A constant-truth vector
// yields R2 = 0 by convention unless predictions are exact.
func R2(yTrue, yPred []float64) float64 {
	checkSameLen(yTrue, yPred)
	if len(yTrue) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range yTrue {
		mean += v
	}
	mean /= float64(len(yTrue))
	ssRes, ssTot := 0.0, 0.0
	for i := range yTrue {
		d := yTrue[i] - yPred[i]
		ssRes += d * d
		m := yTrue[i] - mean
		ssTot += m * m
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

func checkSameLen(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ml: metric on mismatched lengths %d vs %d", len(a), len(b)))
	}
}

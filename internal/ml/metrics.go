package ml

import (
	"fmt"
	"math"
	"sort"
)

// MAPE returns the mean absolute percentage error, in percent — the
// paper's headline metric. Samples with zero truth are skipped (all
// responses in this repository are strictly positive execution times).
func MAPE(yTrue, yPred []float64) float64 {
	checkSameLen(yTrue, yPred)
	s, n := 0.0, 0
	for i := range yTrue {
		if yTrue[i] == 0 {
			continue
		}
		s += math.Abs(yPred[i]-yTrue[i]) / math.Abs(yTrue[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * s / float64(n)
}

// MedAPE returns the median absolute percentage error, in percent.
func MedAPE(yTrue, yPred []float64) float64 {
	checkSameLen(yTrue, yPred)
	apes := make([]float64, 0, len(yTrue))
	for i := range yTrue {
		if yTrue[i] == 0 {
			continue
		}
		apes = append(apes, 100*math.Abs(yPred[i]-yTrue[i])/math.Abs(yTrue[i]))
	}
	if len(apes) == 0 {
		return 0
	}
	sort.Float64s(apes)
	m := len(apes) / 2
	if len(apes)%2 == 1 {
		return apes[m]
	}
	return (apes[m-1] + apes[m]) / 2
}

// MAE returns the mean absolute error.
func MAE(yTrue, yPred []float64) float64 {
	checkSameLen(yTrue, yPred)
	if len(yTrue) == 0 {
		return 0
	}
	s := 0.0
	for i := range yTrue {
		s += math.Abs(yPred[i] - yTrue[i])
	}
	return s / float64(len(yTrue))
}

// RMSE returns the root mean squared error.
func RMSE(yTrue, yPred []float64) float64 {
	checkSameLen(yTrue, yPred)
	if len(yTrue) == 0 {
		return 0
	}
	s := 0.0
	for i := range yTrue {
		d := yPred[i] - yTrue[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(yTrue)))
}

// R2 returns the coefficient of determination. A constant-truth vector
// yields R2 = 0 by convention unless predictions are exact.
func R2(yTrue, yPred []float64) float64 {
	checkSameLen(yTrue, yPred)
	if len(yTrue) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range yTrue {
		mean += v
	}
	mean /= float64(len(yTrue))
	ssRes, ssTot := 0.0, 0.0
	for i := range yTrue {
		d := yTrue[i] - yPred[i]
		ssRes += d * d
		m := yTrue[i] - mean
		ssTot += m * m
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

func checkSameLen(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ml: metric on mismatched lengths %d vs %d", len(a), len(b)))
	}
}

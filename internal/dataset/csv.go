package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// responseColumn is the header name used for the response column in CSV
// form; it is always the last column.
const responseColumn = "time_s"

// WriteCSV encodes the dataset with a header row: feature columns in
// order, then the response column "time_s".
func (d *Dataset) WriteCSV(w io.Writer) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := append(append([]string{}, d.FeatureNames...), responseColumn)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i, row := range d.X {
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		rec[len(rec)-1] = strconv.FormatFloat(d.Y[i], 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a dataset written by WriteCSV. The last column is the
// response; every other column is a feature.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("dataset: CSV needs at least one feature and a response, got %d columns", len(header))
	}
	d := New(header[:len(header)-1]...)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: CSV line %d has %d columns, want %d", line, len(rec), len(header))
		}
		x := make([]float64, len(rec)-1)
		for j := range x {
			x[j], err = strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d column %q: %w", line, header[j], err)
			}
		}
		y, err := strconv.ParseFloat(rec[len(rec)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d response: %w", line, err)
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, y)
	}
	return d, nil
}

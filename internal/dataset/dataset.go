// Package dataset defines the tabular sample container used throughout
// the repository: named feature vectors paired with a scalar response
// (execution time, in seconds, for every workload in the paper).
//
// It provides the operations the paper's methodology needs: uniform
// random sampling to build training sets (Section V), train/test
// splitting, feature augmentation (used by the stacked hybrid model to
// append the analytical prediction as an extra feature) and CSV
// round-tripping for the cmd/lam-datagen tool.
package dataset

import (
	"errors"
	"fmt"
	"math/rand"
)

// Dataset is a column-named design matrix X with response vector Y.
// Rows of X all share the same length, equal to len(FeatureNames).
type Dataset struct {
	// FeatureNames labels the columns of X, e.g. ["I","J","K","bi","bj","bk"].
	FeatureNames []string
	// X holds one feature vector per sample.
	X [][]float64
	// Y holds the response (execution time in seconds) per sample.
	Y []float64
}

// New returns an empty dataset with the given feature names.
func New(featureNames ...string) *Dataset {
	names := make([]string, len(featureNames))
	copy(names, featureNames)
	return &Dataset{FeatureNames: names}
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// NumFeatures returns the number of feature columns.
func (d *Dataset) NumFeatures() int { return len(d.FeatureNames) }

// Add appends one sample. The feature vector is copied.
func (d *Dataset) Add(x []float64, y float64) error {
	if len(x) != d.NumFeatures() {
		return fmt.Errorf("dataset: sample has %d features, want %d", len(x), d.NumFeatures())
	}
	row := make([]float64, len(x))
	copy(row, x)
	d.X = append(d.X, row)
	d.Y = append(d.Y, y)
	return nil
}

// MustAdd is Add but panics on feature-arity mismatch. It is intended
// for generators whose arity is fixed by construction.
func (d *Dataset) MustAdd(x []float64, y float64) {
	if err := d.Add(x, y); err != nil {
		panic(err)
	}
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := New(d.FeatureNames...)
	out.X = make([][]float64, len(d.X))
	for i, row := range d.X {
		r := make([]float64, len(row))
		copy(r, row)
		out.X[i] = r
	}
	out.Y = make([]float64, len(d.Y))
	copy(out.Y, d.Y)
	return out
}

// Validate checks internal consistency: matching X/Y lengths and uniform
// row arity.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("dataset: %d feature rows but %d responses", len(d.X), len(d.Y))
	}
	for i, row := range d.X {
		if len(row) != d.NumFeatures() {
			return fmt.Errorf("dataset: row %d has %d features, want %d", i, len(row), d.NumFeatures())
		}
	}
	return nil
}

// Subset returns a new dataset holding the rows selected by idx
// (feature vectors are copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := New(d.FeatureNames...)
	for _, i := range idx {
		out.MustAdd(d.X[i], d.Y[i])
	}
	return out
}

// SampleFraction draws a uniform random sample holding round(frac*n)
// samples (at least 1 when frac > 0 and the dataset is non-empty) and
// returns it together with the complement. This mirrors the paper's
// uniform-random-sampling construction of training sets, with the
// complement used as the held-out evaluation set.
func (d *Dataset) SampleFraction(frac float64, rng *rand.Rand) (sample, rest *Dataset, err error) {
	if frac < 0 || frac > 1 {
		return nil, nil, fmt.Errorf("dataset: fraction %v out of [0,1]", frac)
	}
	n := d.Len()
	k := int(frac*float64(n) + 0.5)
	if frac > 0 && k == 0 && n > 0 {
		k = 1
	}
	return d.SampleN(k, rng)
}

// SampleN draws k samples uniformly at random without replacement and
// returns them together with the complement.
func (d *Dataset) SampleN(k int, rng *rand.Rand) (sample, rest *Dataset, err error) {
	n := d.Len()
	if k < 0 || k > n {
		return nil, nil, fmt.Errorf("dataset: cannot sample %d of %d rows", k, n)
	}
	perm := rng.Perm(n)
	return d.Subset(perm[:k]), d.Subset(perm[k:]), nil
}

// Split partitions the dataset into a training set holding frac of the
// rows and a test set holding the remainder, shuffled by rng.
func (d *Dataset) Split(frac float64, rng *rand.Rand) (train, test *Dataset, err error) {
	return d.SampleFraction(frac, rng)
}

// Bootstrap draws n samples uniformly at random with replacement.
func (d *Dataset) Bootstrap(n int, rng *rand.Rand) *Dataset {
	out := New(d.FeatureNames...)
	for i := 0; i < n; i++ {
		j := rng.Intn(d.Len())
		out.MustAdd(d.X[j], d.Y[j])
	}
	return out
}

// WithFeature returns a copy of the dataset with one extra column
// appended. values must have one entry per sample. The stacked hybrid
// model uses this to append the analytical model's prediction.
func (d *Dataset) WithFeature(name string, values []float64) (*Dataset, error) {
	if len(values) != d.Len() {
		return nil, fmt.Errorf("dataset: feature %q has %d values for %d samples", name, len(values), d.Len())
	}
	out := New(append(append([]string{}, d.FeatureNames...), name)...)
	for i, row := range d.X {
		aug := make([]float64, len(row)+1)
		copy(aug, row)
		aug[len(row)] = values[i]
		out.X = append(out.X, aug)
		out.Y = append(out.Y, d.Y[i])
	}
	return out, nil
}

// Column returns a copy of the values of the named feature column.
func (d *Dataset) Column(name string) ([]float64, error) {
	idx := -1
	for i, n := range d.FeatureNames {
		if n == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("dataset: no feature named %q", name)
	}
	out := make([]float64, d.Len())
	for i, row := range d.X {
		out[i] = row[idx]
	}
	return out, nil
}

// Append concatenates other onto d. Feature names must match exactly.
func (d *Dataset) Append(other *Dataset) error {
	if other.NumFeatures() != d.NumFeatures() {
		return errors.New("dataset: appending datasets with different arity")
	}
	for i, n := range d.FeatureNames {
		if other.FeatureNames[i] != n {
			return fmt.Errorf("dataset: feature %d named %q vs %q", i, n, other.FeatureNames[i])
		}
	}
	for i := range other.X {
		d.MustAdd(other.X[i], other.Y[i])
	}
	return nil
}

package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Dataset {
	d := New("a", "b")
	d.MustAdd([]float64{1, 2}, 10)
	d.MustAdd([]float64{3, 4}, 20)
	d.MustAdd([]float64{5, 6}, 30)
	d.MustAdd([]float64{7, 8}, 40)
	return d
}

func TestAddArityMismatch(t *testing.T) {
	d := New("a", "b")
	if err := d.Add([]float64{1}, 10); err == nil {
		t.Fatal("expected arity error")
	}
	if err := d.Add([]float64{1, 2, 3}, 10); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestAddCopiesInput(t *testing.T) {
	d := New("a")
	x := []float64{1}
	d.MustAdd(x, 10)
	x[0] = 99
	if d.X[0][0] != 1 {
		t.Error("Add must copy the feature vector")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := sample()
	c := d.Clone()
	c.X[0][0] = 99
	c.Y[0] = 99
	if d.X[0][0] == 99 || d.Y[0] == 99 {
		t.Error("Clone must deep-copy")
	}
	if c.Len() != d.Len() {
		t.Errorf("clone has %d rows, want %d", c.Len(), d.Len())
	}
}

func TestValidate(t *testing.T) {
	d := sample()
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset reported invalid: %v", err)
	}
	d.Y = d.Y[:2]
	if err := d.Validate(); err == nil {
		t.Error("expected length mismatch error")
	}
	d = sample()
	d.X[1] = []float64{1}
	if err := d.Validate(); err == nil {
		t.Error("expected arity error")
	}
}

func TestSubset(t *testing.T) {
	d := sample()
	s := d.Subset([]int{2, 0})
	if s.Len() != 2 {
		t.Fatalf("subset len = %d, want 2", s.Len())
	}
	if s.Y[0] != 30 || s.Y[1] != 10 {
		t.Errorf("subset rows wrong: %v", s.Y)
	}
}

func TestSampleFractionPartition(t *testing.T) {
	d := sample()
	rng := rand.New(rand.NewSource(1))
	tr, te, err := d.SampleFraction(0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || te.Len() != 2 {
		t.Fatalf("split sizes = %d/%d, want 2/2", tr.Len(), te.Len())
	}
	// The union of responses must be the original multiset.
	seen := map[float64]int{}
	for _, y := range append(append([]float64{}, tr.Y...), te.Y...) {
		seen[y]++
	}
	for _, y := range d.Y {
		if seen[y] != 1 {
			t.Errorf("response %v appears %d times in union", y, seen[y])
		}
	}
}

func TestSampleFractionAtLeastOne(t *testing.T) {
	d := sample()
	rng := rand.New(rand.NewSource(1))
	tr, _, err := d.SampleFraction(0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Errorf("tiny fraction should still yield 1 sample, got %d", tr.Len())
	}
}

func TestSampleFractionBounds(t *testing.T) {
	d := sample()
	rng := rand.New(rand.NewSource(1))
	if _, _, err := d.SampleFraction(-0.1, rng); err == nil {
		t.Error("expected error for negative fraction")
	}
	if _, _, err := d.SampleFraction(1.5, rng); err == nil {
		t.Error("expected error for fraction > 1")
	}
}

func TestSampleNErrors(t *testing.T) {
	d := sample()
	rng := rand.New(rand.NewSource(1))
	if _, _, err := d.SampleN(5, rng); err == nil {
		t.Error("expected error sampling more than n")
	}
	if _, _, err := d.SampleN(-1, rng); err == nil {
		t.Error("expected error for negative k")
	}
}

func TestBootstrapSize(t *testing.T) {
	d := sample()
	rng := rand.New(rand.NewSource(1))
	b := d.Bootstrap(10, rng)
	if b.Len() != 10 {
		t.Errorf("bootstrap len = %d, want 10", b.Len())
	}
	// All bootstrapped responses must come from the original dataset.
	valid := map[float64]bool{10: true, 20: true, 30: true, 40: true}
	for _, y := range b.Y {
		if !valid[y] {
			t.Errorf("bootstrap produced foreign response %v", y)
		}
	}
}

func TestWithFeature(t *testing.T) {
	d := sample()
	aug, err := d.WithFeature("am", []float64{0.1, 0.2, 0.3, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if aug.NumFeatures() != 3 {
		t.Fatalf("augmented arity = %d, want 3", aug.NumFeatures())
	}
	if aug.FeatureNames[2] != "am" {
		t.Errorf("augmented name = %q, want am", aug.FeatureNames[2])
	}
	if aug.X[1][2] != 0.2 {
		t.Errorf("augmented value = %v, want 0.2", aug.X[1][2])
	}
	// Original untouched.
	if d.NumFeatures() != 2 {
		t.Error("WithFeature must not mutate the receiver")
	}
	if _, err := d.WithFeature("am", []float64{1}); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestColumn(t *testing.T) {
	d := sample()
	col, err := d.Column("b")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 6, 8}
	for i := range want {
		if col[i] != want[i] {
			t.Errorf("Column(b)[%d] = %v, want %v", i, col[i], want[i])
		}
	}
	if _, err := d.Column("zzz"); err == nil {
		t.Error("expected missing-column error")
	}
}

func TestAppend(t *testing.T) {
	d := sample()
	e := sample()
	if err := d.Append(e); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 8 {
		t.Errorf("appended len = %d, want 8", d.Len())
	}
	bad := New("a", "zz")
	bad.MustAdd([]float64{1, 2}, 3)
	if err := d.Append(bad); err == nil {
		t.Error("expected name mismatch error")
	}
	bad2 := New("a")
	if err := d.Append(bad2); err == nil {
		t.Error("expected arity mismatch error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.NumFeatures() != d.NumFeatures() {
		t.Fatalf("round trip shape %dx%d, want %dx%d", got.Len(), got.NumFeatures(), d.Len(), d.NumFeatures())
	}
	for i := range d.X {
		for j := range d.X[i] {
			if got.X[i][j] != d.X[i][j] {
				t.Errorf("X[%d][%d] = %v, want %v", i, j, got.X[i][j], d.X[i][j])
			}
		}
		if got.Y[i] != d.Y[i] {
			t.Errorf("Y[%d] = %v, want %v", i, got.Y[i], d.Y[i])
		}
	}
}

func TestCSVRoundTripPreservesPrecision(t *testing.T) {
	f := func(vals [4]float64) bool {
		d := New("x")
		for _, v := range vals {
			d.MustAdd([]float64{v}, v*2)
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		for i := range vals {
			if got.X[i][0] != vals[i] && !(got.X[i][0] != got.X[i][0] && vals[i] != vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                      // no header
		"only_one_column\n1\n",  // too few columns
		"a,time_s\nnotanum,2\n", // bad feature
		"a,time_s\n1,notanum\n", // bad response
		"a,b,time_s\n1,2\n",     // short row (csv pkg catches this)
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error for %q", i, c)
		}
	}
}

func TestReadCSVHeaderNames(t *testing.T) {
	in := "I,J,K,time_s\n1,2,3,0.5\n"
	d, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.FeatureNames) != 3 || d.FeatureNames[0] != "I" || d.FeatureNames[2] != "K" {
		t.Errorf("feature names = %v", d.FeatureNames)
	}
	if d.Y[0] != 0.5 {
		t.Errorf("Y[0] = %v, want 0.5", d.Y[0])
	}
}

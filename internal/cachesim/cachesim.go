// Package cachesim is a trace-driven, multi-level, set-associative LRU
// cache simulator. The repository uses it to validate the paper's
// closed-form stencil cache-miss model (Section IV.A) against an actual
// cache, and as the substrate for the model-vs-simulation ablation
// bench. It plays the role a hardware performance-counter run played
// for the paper's authors.
package cachesim

import (
	"fmt"

	"lam/internal/machine"
)

// Cache is one set-associative LRU cache level.
type Cache struct {
	name     string
	lineBits uint
	setCount int
	assoc    int
	tags     []uint64 // setCount × assoc tag array; 0 means empty
	stamps   []uint64 // LRU timestamps parallel to tags
	clock    uint64
	hits     uint64
	misses   uint64
}

// NewCache builds a cache with the given geometry. sizeBytes must be a
// multiple of lineBytes×assoc and lineBytes must be a power of two.
func NewCache(name string, sizeBytes, lineBytes, assoc int) (*Cache, error) {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cachesim: line size %d not a power of two", lineBytes)
	}
	if assoc <= 0 {
		return nil, fmt.Errorf("cachesim: non-positive associativity %d", assoc)
	}
	lines := sizeBytes / lineBytes
	if lines <= 0 || lines%assoc != 0 {
		return nil, fmt.Errorf("cachesim: %d lines not divisible by %d ways", lines, assoc)
	}
	bits := uint(0)
	for 1<<bits < lineBytes {
		bits++
	}
	c := &Cache{
		name:     name,
		lineBits: bits,
		setCount: lines / assoc,
		assoc:    assoc,
		tags:     make([]uint64, lines),
		stamps:   make([]uint64, lines),
	}
	return c, nil
}

// Access touches the line containing addr and reports whether it hit.
// Misses install the line, evicting the LRU way.
func (c *Cache) Access(addr uint64) bool {
	line := (addr >> c.lineBits) + 1 // +1 so tag 0 means "empty"
	set := int(line % uint64(c.setCount))
	base := set * c.assoc
	c.clock++
	lruIdx, lruStamp := base, c.stamps[base]
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == line {
			c.stamps[i] = c.clock
			c.hits++
			return true
		}
		if c.stamps[i] < lruStamp {
			lruIdx, lruStamp = i, c.stamps[i]
		}
	}
	c.misses++
	c.tags[lruIdx] = line
	c.stamps[lruIdx] = c.clock
	return false
}

// Hits returns the number of hits recorded so far.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of misses recorded so far.
func (c *Cache) Misses() uint64 { return c.misses }

// Name returns the level label.
func (c *Cache) Name() string { return c.name }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamps[i] = 0
	}
	c.clock, c.hits, c.misses = 0, 0, 0
}

// Hierarchy chains cache levels: an access probes L1 first and descends
// on miss; a miss at the last level is a memory access.
type Hierarchy struct {
	levels    []*Cache
	memAccess uint64
	accesses  uint64
}

// NewHierarchy builds a hierarchy from inner to outer levels.
func NewHierarchy(levels ...*Cache) *Hierarchy {
	return &Hierarchy{levels: levels}
}

// FromMachine builds a hierarchy matching a machine description.
func FromMachine(m *machine.Machine) (*Hierarchy, error) {
	levels := make([]*Cache, 0, len(m.Levels))
	for _, l := range m.Levels {
		c, err := NewCache(l.Name, l.SizeBytes, l.LineBytes, l.Assoc)
		if err != nil {
			return nil, fmt.Errorf("cachesim: level %s: %w", l.Name, err)
		}
		levels = append(levels, c)
	}
	return NewHierarchy(levels...), nil
}

// Access walks addr down the hierarchy and returns the index of the
// level that hit, or len(levels) for a memory access.
func (h *Hierarchy) Access(addr uint64) int {
	h.accesses++
	for i, c := range h.levels {
		if c.Access(addr) {
			return i
		}
	}
	h.memAccess++
	return len(h.levels)
}

// Levels returns the cache levels from inner to outer.
func (h *Hierarchy) Levels() []*Cache { return h.levels }

// MemAccesses returns the number of accesses that reached memory.
func (h *Hierarchy) MemAccesses() uint64 { return h.memAccess }

// Accesses returns the total number of Access calls.
func (h *Hierarchy) Accesses() uint64 { return h.accesses }

// Reset clears all levels and counters.
func (h *Hierarchy) Reset() {
	for _, c := range h.levels {
		c.Reset()
	}
	h.memAccess, h.accesses = 0, 0
}

// MissesPerLevel returns the miss count of every level, inner to outer.
func (h *Hierarchy) MissesPerLevel() []uint64 {
	out := make([]uint64, len(h.levels))
	for i, c := range h.levels {
		out[i] = c.Misses()
	}
	return out
}

package cachesim

import (
	"testing"
	"testing/quick"

	"lam/internal/machine"
)

func mustCache(t *testing.T, size, line, assoc int) *Cache {
	t.Helper()
	c, err := NewCache("test", size, line, assoc)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCacheValidation(t *testing.T) {
	if _, err := NewCache("x", 1024, 60, 4); err == nil {
		t.Error("expected error for non-power-of-two line")
	}
	if _, err := NewCache("x", 1024, 64, 0); err == nil {
		t.Error("expected error for zero associativity")
	}
	if _, err := NewCache("x", 64*7, 64, 4); err == nil {
		t.Error("expected error for lines not divisible by ways")
	}
	if _, err := NewCache("x", 0, 64, 4); err == nil {
		t.Error("expected error for zero size")
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustCache(t, 1024, 64, 4)
	if c.Access(0) {
		t.Error("first access must miss (cold)")
	}
	if !c.Access(0) {
		t.Error("second access must hit")
	}
	if !c.Access(63) {
		t.Error("same line must hit")
	}
	if c.Access(64) {
		t.Error("next line must miss")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/2", c.Hits(), c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped cache with 2 sets of 1 way, 64B lines (128B total):
	// addresses 0 and 128 collide in set 0.
	c := mustCache(t, 128, 64, 1)
	c.Access(0)   // miss, install
	c.Access(128) // miss, evicts 0
	if c.Access(0) {
		t.Error("line 0 should have been evicted")
	}
}

func TestLRUOrderWithinSet(t *testing.T) {
	// Fully associative 4-way cache of 4 lines.
	c := mustCache(t, 256, 64, 4)
	for _, a := range []uint64{0, 64, 128, 192} {
		c.Access(a)
	}
	c.Access(0)   // touch 0: LRU is now 64
	c.Access(256) // miss: must evict 64
	if !c.Access(0) {
		t.Error("0 was recently used, must survive")
	}
	if !c.Access(128) || !c.Access(192) {
		t.Error("128/192 must survive")
	}
	// Checked last: this miss re-installs 64 and evicts something else.
	if c.Access(64) {
		t.Error("64 was LRU, must have been evicted")
	}
}

func TestWorkingSetFitsAllHitsAfterWarmup(t *testing.T) {
	// Property: any working set smaller than a fully-associative cache
	// hits forever after one warm-up pass, regardless of access order.
	f := func(seed uint8) bool {
		c, err := NewCache("t", 64*64, 64, 64) // 64 lines fully associative
		if err != nil {
			return false
		}
		n := 1 + int(seed)%60
		for i := 0; i < n; i++ {
			c.Access(uint64(i) * 64)
		}
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < n; i++ {
				if !c.Access(uint64(i) * 64) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamingNeverHits(t *testing.T) {
	c := mustCache(t, 1024, 64, 4)
	for i := uint64(0); i < 1000; i++ {
		if c.Access(i * 64) {
			t.Fatalf("streaming distinct lines must always miss (line %d)", i)
		}
	}
}

func TestReset(t *testing.T) {
	c := mustCache(t, 1024, 64, 4)
	c.Access(0)
	c.Access(0)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("counters must clear on reset")
	}
	if c.Access(0) {
		t.Error("contents must clear on reset")
	}
}

func TestHierarchyDescent(t *testing.T) {
	l1 := mustCache(t, 128, 64, 2)  // 2 lines
	l2 := mustCache(t, 1024, 64, 4) // 16 lines
	h := NewHierarchy(l1, l2)

	if lvl := h.Access(0); lvl != 2 {
		t.Errorf("cold access hit level %d, want 2 (memory)", lvl)
	}
	if lvl := h.Access(0); lvl != 0 {
		t.Errorf("hot access hit level %d, want 0 (L1)", lvl)
	}
	// Evict from tiny L1 by touching two more lines; L2 still holds it.
	h.Access(64)
	h.Access(128)
	if lvl := h.Access(0); lvl != 1 {
		t.Errorf("L1-evicted access hit level %d, want 1 (L2)", lvl)
	}
	if h.Accesses() != 5 {
		t.Errorf("accesses = %d, want 5", h.Accesses())
	}
	if h.MemAccesses() != 3 {
		t.Errorf("memory accesses = %d, want 3", h.MemAccesses())
	}
}

func TestHierarchyFromMachine(t *testing.T) {
	h, err := FromMachine(machine.BlueWatersXE6())
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels()) != 3 {
		t.Fatalf("levels = %d, want 3", len(h.Levels()))
	}
	if h.Levels()[0].Name() != "L1" {
		t.Errorf("level 0 name = %q, want L1", h.Levels()[0].Name())
	}
	h.Access(0)
	h.Reset()
	if h.Accesses() != 0 || h.MemAccesses() != 0 {
		t.Error("hierarchy reset must clear counters")
	}
	if got := h.MissesPerLevel(); len(got) != 3 || got[0] != 0 {
		t.Errorf("MissesPerLevel after reset = %v", got)
	}
}

func TestHierarchyInclusionMissCounts(t *testing.T) {
	// Property: every level's miss count is non-increasing down the
	// hierarchy (an outer level only sees inner misses).
	l1 := mustCache(t, 256, 64, 4)
	l2 := mustCache(t, 2048, 64, 4)
	h := NewHierarchy(l1, l2)
	for i := uint64(0); i < 5000; i++ {
		h.Access((i * 7919) % 65536 << 3)
	}
	m := h.MissesPerLevel()
	if m[1] > m[0] {
		t.Errorf("L2 misses %d exceed L1 misses %d", m[1], m[0])
	}
	if h.MemAccesses() > m[1] {
		t.Errorf("memory accesses %d exceed L2 misses %d", h.MemAccesses(), m[1])
	}
}

package rollout

import "math"

// The traffic splitter is a pure function of (model, candidate
// version, feature vector): every replica that sees the same request
// during the same rollout makes the same canary decision with no
// coordination, and a request's assignment never flaps within a stage.
// Because a stage's threshold only grows as the fraction does, the
// split is also nested — a request assigned to the candidate at 1%
// stays assigned at 10% and 50%, so widening a stage only adds
// traffic, never reshuffles it. Mixing the candidate version into the
// hash rotates which requests canary first across successive rollouts,
// so the same unlucky 1% of the keyspace doesn't absorb every
// first-stage risk forever.

// FNV-1a over bytes, finished with the splitmix64 avalanche — the same
// construction internal/xmath uses; inlined here so the per-request
// hash is a straight loop with no variadic slice allocation.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v))
		v >>= 8
	}
	return h
}

func finalize(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// RowHash hashes one request row's routing identity. It allocates
// nothing: the canary decision rides the serve hot path, which keeps
// its zero-per-row-allocation contract with shadow scoring active.
func RowHash(model string, version int, x []float64) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(model); i++ {
		h = fnvByte(h, model[i])
	}
	h = fnvUint64(h, uint64(version))
	for _, f := range x {
		h = fnvUint64(h, math.Float64bits(f))
	}
	return finalize(h)
}

// BatchHash hashes a whole batch request to one routing decision: a
// batch is served by exactly one version (mixing versions inside one
// response would break the bit-identity contract), so the assignment
// folds every row in.
func BatchHash(model string, version int, rows [][]float64) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(model); i++ {
		h = fnvByte(h, model[i])
	}
	h = fnvUint64(h, uint64(version))
	for _, row := range rows {
		for _, f := range row {
			h = fnvUint64(h, math.Float64bits(f))
		}
	}
	return finalize(h)
}

// thresholdFor maps a traffic fraction to the hash threshold below
// which a request is canary-assigned. Fractions at or above 1 map to
// the sentinel MaxUint64, which assigned treats as "everything" (a
// plain < compare would lose the topmost hash value).
func thresholdFor(fraction float64) uint64 {
	if fraction <= 0 {
		return 0
	}
	if fraction >= 1 {
		return math.MaxUint64
	}
	t := math.Ldexp(fraction, 64)
	if t >= float64(math.MaxUint64) {
		return math.MaxUint64
	}
	return uint64(t)
}

// assigned reports whether hash falls inside the canary fraction.
func assigned(hash, threshold uint64) bool {
	if threshold == math.MaxUint64 {
		return true
	}
	return hash < threshold
}

package rollout

import (
	"math"
	"math/rand"
	"testing"
)

func randRow(rng *rand.Rand) []float64 {
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.NormFloat64() * 100
	}
	return x
}

// TestSplitterFraction is the statistical contract of the canary
// splitter: over a random request stream, each stage's observed
// assignment fraction lands within tolerance of the configured one.
func TestSplitterFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200_000
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = randRow(rng)
	}
	for _, f := range []float64{0.01, 0.10, 0.50, 0.90} {
		threshold := thresholdFor(f)
		hits := 0
		for _, x := range rows {
			if assigned(RowHash("blk", 2, x), threshold) {
				hits++
			}
		}
		got := float64(hits) / n
		// 4 sigma of the binomial plus a small absolute floor.
		tol := 0.002 + 4*math.Sqrt(f*(1-f)/n)
		if math.Abs(got-f) > tol {
			t.Errorf("fraction %.2f: observed %.4f (|Δ| > %.4f)", f, got, tol)
		}
	}
}

// TestSplitterDeterministicAndNested checks the no-flapping contracts:
// the same request always gets the same decision, a request assigned
// at a smaller stage stays assigned at every larger one (widening a
// stage only adds traffic), and the full-traffic stage admits
// everything including the maximal hash.
func TestSplitterDeterministicAndNested(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	stages := []float64{0.01, 0.10, 0.50, 1.0}
	thresholds := make([]uint64, len(stages))
	for i, f := range stages {
		thresholds[i] = thresholdFor(f)
	}
	for i := 0; i < 10_000; i++ {
		x := randRow(rng)
		h := RowHash("blk", 2, x)
		if h != RowHash("blk", 2, x) {
			t.Fatal("RowHash is not deterministic")
		}
		prev := false
		for s, th := range thresholds {
			cur := assigned(h, th)
			if prev && !cur {
				t.Fatalf("row assigned at stage %d but dropped at stage %d — split is not nested", s-1, s)
			}
			prev = cur
		}
		if !assigned(h, thresholds[len(thresholds)-1]) {
			t.Fatal("final 100% stage must admit every request")
		}
	}
	if !assigned(math.MaxUint64, thresholdFor(1.0)) {
		t.Fatal("maximal hash must be admitted at fraction 1.0")
	}
	if assigned(0, thresholdFor(0)) {
		t.Fatal("fraction 0 must admit nothing")
	}
}

// TestSplitterVersionRotation: successive rollouts (different
// candidate versions) must not keep canarying the same keyspace slice
// — mixing the version into the hash rotates the assigned set.
func TestSplitterVersionRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	threshold := thresholdFor(0.10)
	differs := 0
	for i := 0; i < 10_000; i++ {
		x := randRow(rng)
		if assigned(RowHash("blk", 2, x), threshold) != assigned(RowHash("blk", 3, x), threshold) {
			differs++
		}
	}
	// Independent 10% draws disagree ~18% of the time; anything clearly
	// nonzero proves rotation.
	if differs < 500 {
		t.Fatalf("only %d/10000 rows changed assignment across versions — canary set is not rotating", differs)
	}
}

// TestViewRouteReplicasAgree builds two independent View snapshots of
// the same canary stage (as two gateway replicas would) and checks
// they make identical decisions for both single rows and batches.
func TestViewRouteReplicasAgree(t *testing.T) {
	mkView := func() *View {
		return &View{
			Model:       "blk",
			Phase:       PhaseCanary,
			Fraction:    0.25,
			candVersion: 2,
			threshold:   thresholdFor(0.25),
		}
	}
	a, b := mkView(), mkView()
	rng := rand.New(rand.NewSource(4))
	hits := 0
	for i := 0; i < 5_000; i++ {
		x := randRow(rng)
		da, db := a.RouteRow(x), b.RouteRow(x)
		if da != db {
			t.Fatal("two replicas disagree on a canary decision")
		}
		if da {
			hits++
		}
		batch := [][]float64{x, randRow(rng)}
		if a.RouteBatch(batch) != b.RouteBatch(batch) {
			t.Fatal("two replicas disagree on a batch canary decision")
		}
	}
	got := float64(hits) / 5_000
	if math.Abs(got-0.25) > 0.03 {
		t.Fatalf("canary fraction through RouteRow: %.3f, want ~0.25", got)
	}
	// Shadow and idle views never route.
	sh := &View{Model: "blk", Phase: PhaseShadow, candVersion: 2}
	if sh.RouteRow(randRow(rng)) || (*View)(nil).RouteRow(randRow(rng)) {
		t.Fatal("non-canary views must never route to the candidate")
	}
}

package rollout

import (
	"math"
	"sort"
)

// apeRing is a fixed-capacity ring of absolute-percentage-error
// samples, one per scored observation row. The rollout gate compares
// the candidate's and incumbent's rings at matching quantiles, so both
// sides are judged on the same recent traffic rather than on lifetime
// averages that an old incumbent would win on volume alone.
type apeRing struct {
	buf   []float64
	next  int
	count int
}

func newAPERing(capacity int) *apeRing {
	if capacity < 1 {
		capacity = 1
	}
	return &apeRing{buf: make([]float64, capacity)}
}

func (w *apeRing) add(v float64) {
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	if w.count < len(w.buf) {
		w.count++
	}
}

func (w *apeRing) reset() {
	w.next, w.count = 0, 0
}

// quantiles returns nearest-rank quantiles over the current window;
// NaN for each when the window is empty.
func (w *apeRing) quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if w == nil || w.count == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	tmp := make([]float64, w.count)
	copy(tmp, w.buf[:w.count])
	sort.Float64s(tmp)
	for i, q := range qs {
		k := int(math.Ceil(q*float64(w.count))) - 1
		if k < 0 {
			k = 0
		}
		if k >= w.count {
			k = w.count - 1
		}
		out[i] = tmp[k]
	}
	return out
}

// Package rollout is the progressive-delivery controller for the
// online plane. A newly published model version is never served
// directly: it first shadow-scores live traffic (every admitted
// request is also scored by the candidate, predictions recorded but
// never returned), then canaries a deterministically-hashed traffic
// fraction through staged steps, and is promoted only when its
// windowed served-APE quantiles beat the incumbent's by the configured
// margin. A candidate that fails a gate is rolled back and quarantined
// for a hold-down period. All state transitions persist crash-safely
// through the registry, so a restarted server resumes the rollout
// where it left off instead of blindly serving the newest artifact.
package rollout

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"lam/internal/ml"
	"lam/internal/registry"
	"lam/internal/telemetry"
)

// ErrNoRollout is returned by the operator actions (pause, promote,
// rollback) when the named model has no rollout in flight.
var ErrNoRollout = errors.New("rollout: no active rollout")

// Phase is where a candidate stands in the delivery pipeline.
type Phase int

const (
	// PhaseNone: no candidate in flight; "latest" resolves normally
	// (or to the pinned incumbent after a rollback).
	PhaseNone Phase = iota
	// PhaseShadow: candidate scores every admitted request, predictions
	// recorded, nothing served.
	PhaseShadow
	// PhaseCanary: candidate serves a hashed fraction of traffic.
	PhaseCanary
)

func (p Phase) String() string {
	switch p {
	case PhaseShadow:
		return "shadow"
	case PhaseCanary:
		return "canary"
	default:
		return "idle"
	}
}

// Persisted phase strings (registry.RolloutState.Phase).
const (
	phaseShadowStr = "shadow"
	phaseCanaryStr = "canary"
)

// Config tunes the delivery policy. The zero value is normalized to
// the defaults documented on each field.
type Config struct {
	// Stages are the canary traffic fractions, ascending in (0, 1].
	// Default 1%, 10%, 50%, 100%. A final 1.0 stage is appended when
	// missing so every rollout proves itself on full traffic before
	// the swap.
	Stages []float64
	// ShadowSamples is how many candidate-scored observation rows the
	// shadow gate needs before deciding. Default 64.
	ShadowSamples int
	// StageSamples is how many candidate-served observation rows each
	// canary gate needs. Default 64.
	StageSamples int
	// PromoteRatio is the bar: the candidate advances a gate only when
	// its windowed p50 and p90 APE are both <= PromoteRatio x the
	// incumbent's. Default 0.95 (a 5% margin).
	PromoteRatio float64
	// WindowSize caps the per-side APE rings. Default 512.
	WindowSize int
	// Holddown quarantines a rolled-back version from re-canarying.
	// Default 1h.
	Holddown time.Duration
	// Now is a test hook; defaults to time.Now.
	Now func() time.Time
}

func (c Config) normalized() Config {
	if len(c.Stages) == 0 {
		c.Stages = []float64{0.01, 0.10, 0.50, 1.0}
	}
	stages := make([]float64, 0, len(c.Stages)+1)
	prev := 0.0
	for _, f := range c.Stages {
		if f <= prev || f > 1 {
			continue
		}
		stages = append(stages, f)
		prev = f
	}
	if len(stages) == 0 || stages[len(stages)-1] < 1 {
		stages = append(stages, 1.0)
	}
	c.Stages = stages
	if c.ShadowSamples <= 0 {
		c.ShadowSamples = 64
	}
	if c.StageSamples <= 0 {
		c.StageSamples = 64
	}
	if c.PromoteRatio <= 0 || c.PromoteRatio > 1 {
		c.PromoteRatio = 0.95
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 512
	}
	if min := max(c.ShadowSamples, c.StageSamples); c.WindowSize < min {
		c.WindowSize = min
	}
	if c.Holddown <= 0 {
		c.Holddown = time.Hour
	}
	return c
}

// Store is the persistence surface the controller needs; satisfied by
// *registry.Registry.
type Store interface {
	SaveRolloutState(registry.RolloutState) error
	LoadRolloutState(name string) (registry.RolloutState, bool, error)
}

// Controller runs one rollout state machine per model. The serving
// layer consults it on two paths: Pin on every version resolution
// (which is also where a newly published version begins its rollout),
// and ActiveView per request for the canary routing decision. Both are
// lock-free and allocation-free once a model's state is warm.
type Controller struct {
	cfg   Config
	store Store

	// Load fetches a candidate's artifact; wired by the serving layer
	// so rollout candidates share its model cache and layout settings
	// (shadow predictions must be bit-identical to serving the
	// candidate directly).
	Load func(ctx context.Context, name string, version int) (*registry.Model, error)
	// OnBegin fires when a candidate enters shadow — the serving layer
	// pauses background retraining so the comparison window is stable.
	OnBegin func(name string, candidate int)
	// OnPromote fires after a candidate wins its final gate and the
	// pin is released; the serving layer swaps "latest" forward and
	// resumes retraining.
	OnPromote func(name string, version int)
	// OnRollback fires after a candidate is quarantined.
	OnRollback func(name string, version int)
	// ShadowSink observes every shadow-scored batch (test hook for the
	// bit-identity contract).
	ShadowSink func(name string, version int, x [][]float64, preds []float64)
	Log        *slog.Logger

	promotions atomic.Uint64
	rollbacks  atomic.Uint64

	models sync.Map // name -> *modelRollout
}

// New builds a controller persisting through store.
func New(store Store, cfg Config) *Controller {
	return &Controller{cfg: cfg.normalized(), store: store}
}

// Config returns the normalized policy.
func (c *Controller) Config() Config { return c.cfg }

// Promotions and Rollbacks are lifetime counters across all models,
// exposed as lam_rollout_*_total.
func (c *Controller) Promotions() uint64 { return c.promotions.Load() }
func (c *Controller) Rollbacks() uint64  { return c.rollbacks.Load() }

type modelRollout struct {
	name  string
	known atomic.Int64         // highest registry version already processed
	view  atomic.Pointer[View] // request-path snapshot; never nil once pinned once

	mu                    sync.Mutex
	loaded                bool // persisted state consulted
	st                    registry.RolloutState
	cand                  *registry.Model
	candWin               *apeRing
	incWin                *apeRing
	promotions, rollbacks uint64
}

// View is the immutable per-request snapshot of one model's rollout.
// The request path reads it with a single atomic load; transitions
// publish a fresh View rather than mutating in place.
type View struct {
	Model       string
	Phase       Phase
	Stage       int
	Fraction    float64
	Paused      bool
	Pinned      int // version "latest" must resolve to; 0 = registry latest
	Candidate   *registry.Model
	candVersion int
	threshold   uint64
}

// Active reports whether a candidate is in flight.
func (v *View) Active() bool { return v != nil && v.Phase != PhaseNone }

// CandidateVersion returns the in-flight candidate's version (0 when idle).
func (v *View) CandidateVersion() int {
	if v == nil {
		return 0
	}
	return v.candVersion
}

// RouteRow reports whether the canary serves this single-row request.
// Deterministic in (model, candidate version, row): every replica
// agrees, and the answer never flaps within a stage.
func (v *View) RouteRow(x []float64) bool {
	if v == nil || v.Phase != PhaseCanary {
		return false
	}
	return assigned(RowHash(v.Model, v.candVersion, x), v.threshold)
}

// RouteBatch makes one decision for a whole batch request — a batch is
// served entirely by one version.
func (v *View) RouteBatch(rows [][]float64) bool {
	if v == nil || v.Phase != PhaseCanary {
		return false
	}
	return assigned(BatchHash(v.Model, v.candVersion, rows), v.threshold)
}

func (c *Controller) modelFor(name string) *modelRollout {
	if v, ok := c.models.Load(name); ok {
		return v.(*modelRollout)
	}
	v, _ := c.models.LoadOrStore(name, &modelRollout{name: name})
	return v.(*modelRollout)
}

// ActiveView returns the model's current rollout view, or nil when no
// candidate is in flight. Single atomic load on the hot path.
func (c *Controller) ActiveView(name string) *View {
	if c == nil {
		return nil
	}
	if v, ok := c.models.Load(name); ok {
		if view := v.(*modelRollout).view.Load(); view.Active() {
			return view
		}
	}
	return nil
}

// Pin resolves what "latest" means for name given the registry's
// newest version: the pinned incumbent's version while a rollout is in
// flight (or after a rollback whose bad candidate is still newest on
// disk), or 0 to serve the registry latest directly. Seeing a version
// newer than any processed so far is what begins a rollout, so the
// serving layer must route every latest-resolution through here.
func (c *Controller) Pin(ctx context.Context, name string, latest int) int {
	if c == nil || latest <= 0 {
		return 0
	}
	if v, ok := c.models.Load(name); ok {
		m := v.(*modelRollout)
		if int64(latest) <= m.known.Load() {
			if view := m.view.Load(); view != nil {
				return view.Pinned
			}
		}
	}
	return c.pinSlow(ctx, name, latest)
}

func (c *Controller) pinSlow(ctx context.Context, name string, latest int) int {
	m := c.modelFor(name)
	var after []func()
	m.mu.Lock()
	c.loadStateLocked(m)
	c.resumeLocked(ctx, m, &after)
	if int64(latest) > m.known.Load() {
		c.observeVersionLocked(ctx, m, latest, &after)
		m.known.Store(int64(latest))
	}
	m.view.Store(c.viewLocked(m))
	pin := m.st.Pinned
	m.mu.Unlock()
	for _, f := range after {
		f()
	}
	return pin
}

// loadStateLocked lazily consults the persisted rollout state, once.
func (c *Controller) loadStateLocked(m *modelRollout) {
	if m.loaded {
		return
	}
	m.loaded = true
	m.st = registry.RolloutState{Model: m.name}
	if c.store == nil {
		return
	}
	st, ok, err := c.store.LoadRolloutState(m.name)
	if err != nil {
		// A corrupt state file must not take serving down; log and
		// start fresh (the pin is lost, which is the pre-rollout
		// behavior, not a crash).
		c.logf("rollout state load failed", "model", m.name, "err", err)
		return
	}
	if ok {
		m.st = st
		m.st.Model = m.name
		known := int64(max(m.st.Pinned, m.st.Candidate))
		if known > m.known.Load() {
			m.known.Store(known)
		}
	}
}

// resumeLocked re-arms an active persisted rollout after a restart:
// the candidate artifact is reloaded and evaluation windows start
// empty (APE windows are in-memory by design — stale pre-crash samples
// would judge the candidate on traffic it no longer sees).
func (c *Controller) resumeLocked(ctx context.Context, m *modelRollout, after *[]func()) {
	if m.st.Candidate == 0 || m.cand != nil {
		return
	}
	cm, err := c.loadModel(ctx, m.name, m.st.Candidate)
	if err != nil {
		c.rollbackLocked(m, fmt.Sprintf("candidate artifact load failed: %v", err), after)
		return
	}
	m.cand = cm
	m.candWin = newAPERing(c.cfg.WindowSize)
	m.incWin = newAPERing(c.cfg.WindowSize)
	if cb := c.OnBegin; cb != nil {
		name, ver := m.name, m.st.Candidate
		*after = append(*after, func() { cb(name, ver) })
	}
}

// observeVersionLocked reacts to a registry version newer than any
// processed so far.
func (c *Controller) observeVersionLocked(ctx context.Context, m *modelRollout, latest int, after *[]func()) {
	switch {
	case m.st.Candidate != 0:
		if latest > m.st.Candidate {
			// An even newer version appeared mid-rollout (out-of-band
			// publish). The in-flight candidate is obsolete: cancel it
			// without quarantine and evaluate the newcomer instead.
			c.cancelLocked(m, fmt.Sprintf("v%d superseded by v%d", m.st.Candidate, latest), after)
			c.beginLocked(ctx, m, latest, after)
		}
	case m.st.Pinned == 0 && m.known.Load() == 0:
		// Bootstrap: first version(s) this controller has ever seen for
		// the model, with no rollout history. There is no incumbent to
		// compare against, so the registry latest serves directly.
	default:
		c.beginLocked(ctx, m, latest, after)
	}
}

// beginLocked starts a rollout of candidate against the current
// incumbent, unless the candidate is quarantined or fails to load.
func (c *Controller) beginLocked(ctx context.Context, m *modelRollout, candidate int, after *[]func()) {
	if c.inHolddownLocked(m, candidate) {
		return
	}
	incumbent := m.st.Pinned
	if incumbent == 0 {
		incumbent = int(m.known.Load())
	}
	if incumbent <= 0 || incumbent >= candidate {
		return
	}
	cm, err := c.loadModel(ctx, m.name, candidate)
	if err != nil {
		// An unloadable artifact is quarantined like a failed gate:
		// without a hold-down every subsequent request would retry the
		// load on the slow path. The pin moves to the incumbent so
		// "latest" keeps resolving to the last good version instead of
		// the artifact that just failed to load.
		m.st.Pinned = incumbent
		m.st.Holddown = append(m.st.Holddown, registry.HolddownEntry{
			Version: candidate,
			Until:   c.now().Add(c.cfg.Holddown),
			Reason:  fmt.Sprintf("artifact load failed: %v", err),
		})
		m.st.LastTransition = fmt.Sprintf("refused v%d: artifact load failed", candidate)
		c.persistLocked(m)
		c.logf("rollout candidate load failed", "model", m.name, "version", candidate, "err", err)
		return
	}
	m.cand = cm
	m.candWin = newAPERing(c.cfg.WindowSize)
	m.incWin = newAPERing(c.cfg.WindowSize)
	m.st.Pinned = incumbent
	m.st.Candidate = candidate
	m.st.Phase = phaseShadowStr
	m.st.Stage = 0
	m.st.Paused = false
	m.st.LastTransition = fmt.Sprintf("shadowing v%d against incumbent v%d", candidate, incumbent)
	c.persistLocked(m)
	c.logf("rollout began", "model", m.name, "candidate", candidate, "incumbent", incumbent)
	if cb := c.OnBegin; cb != nil {
		name := m.name
		*after = append(*after, func() { cb(name, candidate) })
	}
}

// cancelLocked drops the in-flight candidate without quarantine (used
// when a newer publish supersedes it). The pin is kept: the canceled
// candidate may still be the newest artifact on disk for a moment.
func (c *Controller) cancelLocked(m *modelRollout, reason string, after *[]func()) {
	ver := m.st.Candidate
	m.cand, m.candWin, m.incWin = nil, nil, nil
	m.st.Candidate = 0
	m.st.Phase = ""
	m.st.Stage = 0
	m.st.Paused = false
	m.st.LastTransition = reason
	c.persistLocked(m)
	if cb := c.OnRollback; cb != nil && ver != 0 {
		name := m.name
		*after = append(*after, func() { cb(name, ver) })
	}
}

// Ingest feeds one scored observation batch into the active rollout's
// evaluation windows and runs the current gate. The serving layer
// partitions rows: cand* are rows the candidate scored (all rows in
// shadow, its hash share in canary), inc* the incumbent's. At most one
// state transition happens per call, so a replayed stream observes
// every stage. Returns the post-ingest status.
func (c *Controller) Ingest(ctx context.Context, name string, candObs, candPred, incObs, incPred []float64) Status {
	m := c.modelFor(name)
	sp := telemetry.StartSpan(ctx, "rollout")
	var after []func()
	m.mu.Lock()
	if m.st.Candidate == 0 || m.cand == nil {
		st := c.statusLocked(m)
		m.mu.Unlock()
		sp.Detail("idle").End()
		return st
	}
	for i := range candObs {
		if ape, ok := ml.APE(candObs[i], candPred[i]); ok {
			m.candWin.add(ape)
		}
	}
	for i := range incObs {
		if ape, ok := ml.APE(incObs[i], incPred[i]); ok {
			m.incWin.add(ape)
		}
	}
	if !m.st.Paused {
		c.gateLocked(m, &after)
	}
	st := c.statusLocked(m)
	m.view.Store(c.viewLocked(m))
	m.mu.Unlock()
	for _, f := range after {
		f()
	}
	sp.Detail(st.Phase).End()
	return st
}

// gateLocked evaluates the current gate once both windows hold enough
// samples: the candidate advances (shadow -> canary 0 -> ... -> final
// stage -> promote) when its p50 and p90 APE both beat the incumbent's
// by the configured ratio, and rolls back the moment they don't.
func (c *Controller) gateLocked(m *modelRollout, after *[]func()) {
	need := c.cfg.ShadowSamples
	if m.st.Phase == phaseCanaryStr {
		need = c.cfg.StageSamples
	}
	if m.candWin.count < need || m.incWin.count < need {
		return
	}
	cq := m.candWin.quantiles(0.5, 0.9)
	iq := m.incWin.quantiles(0.5, 0.9)
	beats := cq[0] <= c.cfg.PromoteRatio*iq[0] && cq[1] <= c.cfg.PromoteRatio*iq[1]
	gate := m.st.Phase
	if gate == phaseCanaryStr {
		gate = fmt.Sprintf("canary stage %d (%.0f%%)", m.st.Stage, 100*c.stageFraction(m.st.Stage))
	}
	if !beats {
		c.rollbackLocked(m, fmt.Sprintf(
			"%s gate: candidate p50/p90 APE %.2f/%.2f vs incumbent %.2f/%.2f (need <= %.2fx)",
			gate, cq[0], cq[1], iq[0], iq[1], c.cfg.PromoteRatio), after)
		return
	}
	switch m.st.Phase {
	case phaseShadowStr:
		m.st.Phase = phaseCanaryStr
		m.st.Stage = 0
		// The candidate's shadow window judged it on traffic it was not
		// serving; each canary gate re-proves it on the traffic it is.
		m.candWin.reset()
		m.st.LastTransition = fmt.Sprintf("v%d passed shadow, canary stage 0 (%.0f%%)",
			m.st.Candidate, 100*c.stageFraction(0))
		c.persistLocked(m)
		c.logf("rollout advanced", "model", m.name, "candidate", m.st.Candidate, "to", m.st.LastTransition)
	case phaseCanaryStr:
		if m.st.Stage+1 >= len(c.cfg.Stages) {
			c.promoteLocked(m, fmt.Sprintf("promoted v%d (won %s)", m.st.Candidate, gate), after)
			return
		}
		m.st.Stage++
		m.candWin.reset()
		m.st.LastTransition = fmt.Sprintf("v%d advanced to canary stage %d (%.0f%%)",
			m.st.Candidate, m.st.Stage, 100*c.stageFraction(m.st.Stage))
		c.persistLocked(m)
		c.logf("rollout advanced", "model", m.name, "candidate", m.st.Candidate, "to", m.st.LastTransition)
	}
}

func (c *Controller) promoteLocked(m *modelRollout, reason string, after *[]func()) {
	ver := m.st.Candidate
	m.cand, m.candWin, m.incWin = nil, nil, nil
	m.st = registry.RolloutState{
		Model:          m.name,
		Holddown:       c.pruneHolddown(m.st.Holddown),
		LastTransition: reason,
	}
	m.promotions++
	c.promotions.Add(1)
	c.persistLocked(m)
	c.logf("rollout promoted", "model", m.name, "version", ver)
	if cb := c.OnPromote; cb != nil {
		name := m.name
		*after = append(*after, func() { cb(name, ver) })
	}
}

func (c *Controller) rollbackLocked(m *modelRollout, reason string, after *[]func()) {
	ver := m.st.Candidate
	m.cand, m.candWin, m.incWin = nil, nil, nil
	m.st.Candidate = 0
	m.st.Phase = ""
	m.st.Stage = 0
	m.st.Paused = false
	m.st.Holddown = append(c.pruneHolddown(m.st.Holddown), registry.HolddownEntry{
		Version: ver,
		Until:   c.now().Add(c.cfg.Holddown),
		Reason:  reason,
	})
	m.st.LastTransition = fmt.Sprintf("rolled back v%d: %s", ver, reason)
	m.rollbacks++
	c.rollbacks.Add(1)
	c.persistLocked(m)
	c.logf("rollout rolled back", "model", m.name, "version", ver, "reason", reason)
	if cb := c.OnRollback; cb != nil {
		name := m.name
		*after = append(*after, func() { cb(name, ver) })
	}
}

// Pause freezes (or unfreezes) automatic gate transitions; traffic
// keeps flowing at the current stage fraction.
func (c *Controller) Pause(name string, paused bool) error {
	return c.action(name, func(m *modelRollout, _ *[]func()) {
		m.st.Paused = paused
		verb := "paused"
		if !paused {
			verb = "resumed"
		}
		m.st.LastTransition = fmt.Sprintf("%s v%d by operator", verb, m.st.Candidate)
		c.persistLocked(m)
	})
}

// ForcePromote promotes the in-flight candidate immediately.
func (c *Controller) ForcePromote(name string) error {
	return c.action(name, func(m *modelRollout, after *[]func()) {
		c.promoteLocked(m, fmt.Sprintf("force-promoted v%d by operator", m.st.Candidate), after)
	})
}

// ForceRollback quarantines the in-flight candidate immediately.
func (c *Controller) ForceRollback(name string) error {
	return c.action(name, func(m *modelRollout, after *[]func()) {
		c.rollbackLocked(m, "forced by operator", after)
	})
}

func (c *Controller) action(name string, fn func(m *modelRollout, after *[]func())) error {
	v, ok := c.models.Load(name)
	if !ok {
		return ErrNoRollout
	}
	m := v.(*modelRollout)
	var after []func()
	m.mu.Lock()
	if m.st.Candidate == 0 {
		m.mu.Unlock()
		return ErrNoRollout
	}
	fn(m, &after)
	m.view.Store(c.viewLocked(m))
	m.mu.Unlock()
	for _, f := range after {
		f()
	}
	return nil
}

// WindowStats summarizes one side's APE evaluation window.
type WindowStats struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50,omitempty"`
	P90   float64 `json:"p90,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// Status is the externally visible rollout state of one model,
// returned by GET /models/{name}/rollout and embedded in /observe
// responses while a rollout is active.
type Status struct {
	Model           string                   `json:"model"`
	Phase           string                   `json:"phase"`
	Stage           int                      `json:"stage"`
	Stages          []float64                `json:"stages,omitempty"`
	Fraction        float64                  `json:"fraction"`
	Paused          bool                     `json:"paused,omitempty"`
	Incumbent       int                      `json:"incumbent,omitempty"`
	Candidate       int                      `json:"candidate,omitempty"`
	NeedSamples     int                      `json:"need_samples,omitempty"`
	PromoteRatio    float64                  `json:"promote_ratio,omitempty"`
	CandidateWindow WindowStats              `json:"candidate_window"`
	IncumbentWindow WindowStats              `json:"incumbent_window"`
	Promotions      uint64                   `json:"promotions"`
	Rollbacks       uint64                   `json:"rollbacks"`
	Holddown        []registry.HolddownEntry `json:"holddown,omitempty"`
	LastTransition  string                   `json:"last_transition,omitempty"`
}

// Status reports the model's current rollout state (idle status for a
// model the controller has never pinned).
func (c *Controller) Status(name string) Status {
	v, ok := c.models.Load(name)
	if !ok {
		return Status{Model: name, Phase: PhaseNone.String(), PromoteRatio: c.cfg.PromoteRatio}
	}
	m := v.(*modelRollout)
	m.mu.Lock()
	defer m.mu.Unlock()
	return c.statusLocked(m)
}

// Snapshot returns the status of every model the controller tracks,
// for scrape-time telemetry collectors.
func (c *Controller) Snapshot() []Status {
	var out []Status
	c.models.Range(func(_, v any) bool {
		m := v.(*modelRollout)
		m.mu.Lock()
		out = append(out, c.statusLocked(m))
		m.mu.Unlock()
		return true
	})
	return out
}

func (c *Controller) statusLocked(m *modelRollout) Status {
	st := Status{
		Model:          m.name,
		Phase:          PhaseNone.String(),
		Incumbent:      m.st.Pinned,
		Candidate:      m.st.Candidate,
		PromoteRatio:   c.cfg.PromoteRatio,
		Promotions:     m.promotions,
		Rollbacks:      m.rollbacks,
		Holddown:       m.st.Holddown,
		LastTransition: m.st.LastTransition,
		Paused:         m.st.Paused,
	}
	if m.st.Candidate != 0 {
		st.Stages = c.cfg.Stages
		switch m.st.Phase {
		case phaseCanaryStr:
			st.Phase = PhaseCanary.String()
			st.Stage = m.st.Stage
			st.Fraction = c.stageFraction(m.st.Stage)
			st.NeedSamples = c.cfg.StageSamples
		default:
			st.Phase = PhaseShadow.String()
			st.NeedSamples = c.cfg.ShadowSamples
		}
		st.CandidateWindow = windowStats(m.candWin)
		st.IncumbentWindow = windowStats(m.incWin)
	}
	return st
}

func windowStats(w *apeRing) WindowStats {
	if w == nil || w.count == 0 {
		return WindowStats{}
	}
	q := w.quantiles(0.5, 0.9, 0.99)
	return WindowStats{Count: w.count, P50: q[0], P90: q[1], P99: q[2]}
}

// viewLocked builds the immutable request-path snapshot.
func (c *Controller) viewLocked(m *modelRollout) *View {
	v := &View{Model: m.name, Pinned: m.st.Pinned, Paused: m.st.Paused}
	if m.st.Candidate != 0 && m.cand != nil {
		v.Candidate = m.cand
		v.candVersion = m.st.Candidate
		if m.st.Phase == phaseCanaryStr {
			v.Phase = PhaseCanary
			v.Stage = m.st.Stage
			v.Fraction = c.stageFraction(m.st.Stage)
			v.threshold = thresholdFor(v.Fraction)
		} else {
			v.Phase = PhaseShadow
		}
	}
	return v
}

func (c *Controller) stageFraction(stage int) float64 {
	if stage < 0 || stage >= len(c.cfg.Stages) {
		return 1.0
	}
	return c.cfg.Stages[stage]
}

func (c *Controller) inHolddownLocked(m *modelRollout, version int) bool {
	m.st.Holddown = c.pruneHolddown(m.st.Holddown)
	for _, h := range m.st.Holddown {
		if h.Version == version {
			return true
		}
	}
	return false
}

func (c *Controller) pruneHolddown(hs []registry.HolddownEntry) []registry.HolddownEntry {
	now := c.now()
	out := hs[:0]
	for _, h := range hs {
		if h.Until.After(now) {
			out = append(out, h)
		}
	}
	return out
}

func (c *Controller) persistLocked(m *modelRollout) {
	if c.store == nil {
		return
	}
	if err := c.store.SaveRolloutState(m.st); err != nil {
		// Never let a disk hiccup take the serving path down; the
		// in-memory state machine stays authoritative until the next
		// successful persist.
		c.logf("rollout state persist failed", "model", m.name, "err", err)
	}
}

func (c *Controller) loadModel(ctx context.Context, name string, version int) (*registry.Model, error) {
	if c.Load == nil {
		return nil, errors.New("rollout: no artifact loader wired")
	}
	return c.Load(ctx, name, version)
}

func (c *Controller) now() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	return time.Now()
}

func (c *Controller) logf(msg string, kv ...any) {
	if c.Log != nil {
		c.Log.Info(msg, kv...)
	}
}

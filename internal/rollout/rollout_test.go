package rollout

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"lam/internal/registry"
)

// memStore is an in-memory Store so the state-machine tests need no
// filesystem; it also counts saves to prove transitions persist.
type memStore struct {
	mu    sync.Mutex
	state map[string]registry.RolloutState
	saves int
}

func newMemStore() *memStore { return &memStore{state: map[string]registry.RolloutState{}} }

func (s *memStore) SaveRolloutState(st registry.RolloutState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state[st.Model] = st
	s.saves++
	return nil
}

func (s *memStore) LoadRolloutState(name string) (registry.RolloutState, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.state[name]
	return st, ok, nil
}

// stubLoader returns placeholder artifacts (the unit tests never score
// through them) and can be told to fail specific versions.
func stubLoader(fail map[int]bool) func(context.Context, string, int) (*registry.Model, error) {
	return func(_ context.Context, name string, version int) (*registry.Model, error) {
		if fail[version] {
			return nil, fmt.Errorf("stub: no artifact for v%d", version)
		}
		return &registry.Model{Meta: registry.Meta{Name: name, Version: version}}, nil
	}
}

func testConfig(now func() time.Time) Config {
	return Config{
		Stages:        []float64{0.5, 1.0},
		ShadowSamples: 4,
		StageSamples:  4,
		PromoteRatio:  0.9,
		WindowSize:    16,
		Holddown:      time.Hour,
		Now:           now,
	}
}

// ingestAPE feeds n observation rows where the candidate's APE is
// candPct and the incumbent's incPct (obs fixed at 100).
func ingestAPE(c *Controller, name string, n int, candPct, incPct float64) Status {
	obs := make([]float64, n)
	cp := make([]float64, n)
	ip := make([]float64, n)
	for i := range obs {
		obs[i] = 100
		cp[i] = 100 - candPct
		ip[i] = 100 - incPct
	}
	return c.Ingest(context.Background(), name, obs, cp, obs, ip)
}

// TestControllerPromotionWalk drives the full happy path: bootstrap,
// begin on a newer publish, shadow gate, every canary stage, promote —
// with callbacks firing and the pin releasing at the end.
func TestControllerPromotionWalk(t *testing.T) {
	ctx := context.Background()
	store := newMemStore()
	c := New(store, testConfig(nil))
	c.Load = stubLoader(nil)
	var began, promoted []int
	c.OnBegin = func(_ string, v int) { began = append(began, v) }
	c.OnPromote = func(_ string, v int) { promoted = append(promoted, v) }

	// Bootstrap: the first version ever seen has no incumbent — serve
	// it directly, no rollout.
	if pin := c.Pin(ctx, "m", 1); pin != 0 {
		t.Fatalf("bootstrap pin = %d, want 0 (serve registry latest)", pin)
	}
	if st := c.Status("m"); st.Phase != "idle" {
		t.Fatalf("bootstrap must not start a rollout: %+v", st)
	}

	// v2 appears: rollout begins, latest stays pinned to v1.
	if pin := c.Pin(ctx, "m", 2); pin != 1 {
		t.Fatalf("pin during rollout = %d, want 1", pin)
	}
	st := c.Status("m")
	if st.Phase != "shadow" || st.Candidate != 2 || st.Incumbent != 1 {
		t.Fatalf("after begin: %+v", st)
	}
	if len(began) != 1 || began[0] != 2 {
		t.Fatalf("OnBegin calls = %v, want [2]", began)
	}
	if v := c.ActiveView("m"); !v.Active() || v.Phase != PhaseShadow || v.CandidateVersion() != 2 {
		t.Fatalf("active view after begin: %+v", v)
	}

	// Candidate clearly better (5% vs 40% APE): one gate per ingest.
	st = ingestAPE(c, "m", 4, 5, 40)
	if st.Phase != "canary" || st.Stage != 0 || st.Fraction != 0.5 {
		t.Fatalf("after shadow gate: %+v", st)
	}
	if st.CandidateWindow.Count != 0 {
		t.Fatalf("candidate window must reset entering canary, count=%d", st.CandidateWindow.Count)
	}
	st = ingestAPE(c, "m", 4, 5, 40)
	if st.Phase != "canary" || st.Stage != 1 || st.Fraction != 1.0 {
		t.Fatalf("after stage-0 gate: %+v", st)
	}
	st = ingestAPE(c, "m", 4, 5, 40)
	if st.Phase != "idle" || st.Candidate != 0 || st.Promotions != 1 {
		t.Fatalf("after final gate: %+v", st)
	}
	if len(promoted) != 1 || promoted[0] != 2 {
		t.Fatalf("OnPromote calls = %v, want [2]", promoted)
	}
	if c.Promotions() != 1 || c.Rollbacks() != 0 {
		t.Fatalf("counters: promotions=%d rollbacks=%d", c.Promotions(), c.Rollbacks())
	}
	// The pin is released: v2 is now latest for real.
	if pin := c.Pin(ctx, "m", 2); pin != 0 {
		t.Fatalf("pin after promote = %d, want 0", pin)
	}
	// Persisted state is idle with the promotion recorded.
	ps, ok, _ := store.LoadRolloutState("m")
	if !ok || ps.Candidate != 0 || ps.Pinned != 0 || ps.Phase != "" {
		t.Fatalf("persisted state after promote: %+v", ps)
	}
	if store.saves < 4 {
		t.Fatalf("every transition must persist; only %d saves", store.saves)
	}
}

// TestControllerRollbackAndHolddown: a worse candidate fails its gate,
// rolls back, serves nothing, and is quarantined — while a later,
// different version may still roll out.
func TestControllerRollbackAndHolddown(t *testing.T) {
	ctx := context.Background()
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	store := newMemStore()
	c := New(store, testConfig(clock))
	c.Load = stubLoader(nil)
	var rolledBack []int
	c.OnRollback = func(_ string, v int) { rolledBack = append(rolledBack, v) }

	c.Pin(ctx, "m", 1)
	c.Pin(ctx, "m", 2)
	st := ingestAPE(c, "m", 4, 40, 5) // candidate much worse
	if st.Phase != "idle" || st.Rollbacks != 1 {
		t.Fatalf("after failed shadow gate: %+v", st)
	}
	if len(rolledBack) != 1 || rolledBack[0] != 2 {
		t.Fatalf("OnRollback calls = %v, want [2]", rolledBack)
	}
	if len(st.Holddown) != 1 || st.Holddown[0].Version != 2 {
		t.Fatalf("holddown after rollback: %+v", st.Holddown)
	}
	// The pin survives the rollback: v2 is still newest on disk but
	// must not serve.
	if pin := c.Pin(ctx, "m", 2); pin != 1 {
		t.Fatalf("pin after rollback = %d, want 1", pin)
	}
	if v := c.ActiveView("m"); v.Active() {
		t.Fatalf("no view may be active after rollback: %+v", v)
	}

	// A quarantined version must not re-enter, even through a cold
	// controller entry that re-reads the persisted state.
	c.models.Delete("m")
	if pin := c.Pin(ctx, "m", 2); pin != 1 {
		t.Fatalf("quarantined version re-pinned differently: %d", pin)
	}
	if st := c.Status("m"); st.Phase != "idle" {
		t.Fatalf("quarantined version restarted a rollout: %+v", st)
	}

	// v3 is a different artifact: it gets its chance immediately.
	if pin := c.Pin(ctx, "m", 3); pin != 1 {
		t.Fatalf("pin during v3 rollout = %d, want 1", pin)
	}
	if st := c.Status("m"); st.Phase != "shadow" || st.Candidate != 3 {
		t.Fatalf("v3 must begin a fresh rollout: %+v", st)
	}

	// Expire the quarantine and roll v3 back too; v2's entry is pruned
	// from the persisted holddown on the next transition.
	now = now.Add(2 * time.Hour)
	st = ingestAPE(c, "m", 4, 40, 5)
	if c.Rollbacks() != 2 {
		t.Fatalf("v3 rollback missing (lifetime rollbacks=%d): %+v", c.Rollbacks(), st)
	}
	for _, h := range st.Holddown {
		if h.Version == 2 {
			t.Fatalf("expired holddown entry for v2 not pruned: %+v", st.Holddown)
		}
	}
}

// TestControllerSupersede: publishing v3 while v2 is mid-rollout
// cancels v2 without quarantine and evaluates v3 against the same
// incumbent.
func TestControllerSupersede(t *testing.T) {
	ctx := context.Background()
	c := New(newMemStore(), testConfig(nil))
	c.Load = stubLoader(nil)
	c.Pin(ctx, "m", 1)
	c.Pin(ctx, "m", 2)
	ingestAPE(c, "m", 4, 5, 40) // v2 into canary
	if pin := c.Pin(ctx, "m", 3); pin != 1 {
		t.Fatalf("pin after supersede = %d, want 1", pin)
	}
	st := c.Status("m")
	if st.Candidate != 3 || st.Phase != "shadow" || st.Incumbent != 1 {
		t.Fatalf("v3 must restart evaluation from shadow: %+v", st)
	}
	if len(st.Holddown) != 0 {
		t.Fatalf("a superseded candidate is not quarantined: %+v", st.Holddown)
	}
	if c.Rollbacks() != 0 {
		t.Fatal("supersede must not count as a rollback")
	}
}

// TestControllerResume: a fresh controller over the same store picks
// the rollout up where the crashed one left it — same phase, stage and
// pin — with the candidate artifact reloaded and a matching view.
func TestControllerResume(t *testing.T) {
	ctx := context.Background()
	store := newMemStore()
	c1 := New(store, testConfig(nil))
	c1.Load = stubLoader(nil)
	c1.Pin(ctx, "m", 1)
	c1.Pin(ctx, "m", 2)
	ingestAPE(c1, "m", 4, 5, 40) // advance to canary stage 0

	c2 := New(store, testConfig(nil))
	c2.Load = stubLoader(nil)
	began := 0
	c2.OnBegin = func(string, int) { began++ }
	if pin := c2.Pin(ctx, "m", 2); pin != 1 {
		t.Fatalf("resumed pin = %d, want 1", pin)
	}
	if began != 1 {
		t.Fatal("resume must re-arm the serving hooks (OnBegin)")
	}
	st := c2.Status("m")
	if st.Phase != "canary" || st.Stage != 0 || st.Candidate != 2 || st.Incumbent != 1 {
		t.Fatalf("resumed status: %+v", st)
	}
	// Evaluation windows restart empty: stale pre-crash samples must
	// not judge the candidate.
	if st.CandidateWindow.Count != 0 || st.IncumbentWindow.Count != 0 {
		t.Fatalf("resumed windows must be empty: %+v", st)
	}

	// Replica agreement: both controllers are mid-canary at the same
	// stage; their views must route every request identically.
	v1, v2 := c1.ActiveView("m"), c2.ActiveView("m")
	if !v1.Active() || !v2.Active() {
		t.Fatal("both replicas must have an active view")
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2_000; i++ {
		x := randRow(rng)
		if v1.RouteRow(x) != v2.RouteRow(x) {
			t.Fatal("replicas disagree on a canary routing decision")
		}
	}
}

// TestControllerCandidateLoadFailure: an unloadable artifact is
// refused and quarantined instead of being retried on every request.
func TestControllerCandidateLoadFailure(t *testing.T) {
	ctx := context.Background()
	store := newMemStore()
	c := New(store, testConfig(nil))
	c.Load = stubLoader(map[int]bool{2: true})
	c.Pin(ctx, "m", 1)
	if pin := c.Pin(ctx, "m", 2); pin != 1 {
		t.Fatalf("pin with unloadable candidate = %d, want 1 (keep serving incumbent)", pin)
	}
	st := c.Status("m")
	if st.Phase != "idle" || st.Candidate != 0 {
		t.Fatalf("unloadable candidate must not enter shadow: %+v", st)
	}
	if len(st.Holddown) != 1 || st.Holddown[0].Version != 2 {
		t.Fatalf("unloadable candidate must be quarantined: %+v", st.Holddown)
	}
}

// TestControllerOperatorActions covers pause (gates freeze, traffic
// keeps flowing), force-promote, force-rollback, and ErrNoRollout when
// idle.
func TestControllerOperatorActions(t *testing.T) {
	ctx := context.Background()
	c := New(newMemStore(), testConfig(nil))
	c.Load = stubLoader(nil)

	if err := c.Pause("m", true); !errors.Is(err, ErrNoRollout) {
		t.Fatalf("pause with no rollout: %v, want ErrNoRollout", err)
	}
	if err := c.ForcePromote("m"); !errors.Is(err, ErrNoRollout) {
		t.Fatalf("promote with no rollout: %v, want ErrNoRollout", err)
	}

	c.Pin(ctx, "m", 1)
	c.Pin(ctx, "m", 2)
	if err := c.Pause("m", true); err != nil {
		t.Fatal(err)
	}
	// Paused: windows fill but no transition happens.
	st := ingestAPE(c, "m", 8, 5, 40)
	if st.Phase != "shadow" || !st.Paused {
		t.Fatalf("paused rollout must not advance: %+v", st)
	}
	if err := c.Pause("m", false); err != nil {
		t.Fatal(err)
	}
	st = ingestAPE(c, "m", 1, 5, 40)
	if st.Phase != "canary" {
		t.Fatalf("resumed rollout must gate again: %+v", st)
	}
	if err := c.ForceRollback("m"); err != nil {
		t.Fatal(err)
	}
	if st := c.Status("m"); st.Phase != "idle" || st.Rollbacks != 1 || len(st.Holddown) != 1 {
		t.Fatalf("after force-rollback: %+v", st)
	}

	// Force-promote a second rollout (v3; v2 is quarantined).
	c.Pin(ctx, "m", 3)
	if err := c.ForcePromote("m"); err != nil {
		t.Fatal(err)
	}
	if st := c.Status("m"); st.Phase != "idle" || st.Promotions != 1 {
		t.Fatalf("after force-promote: %+v", st)
	}
	if pin := c.Pin(ctx, "m", 3); pin != 0 {
		t.Fatalf("pin after force-promote = %d, want 0", pin)
	}
}

// TestAPERingQuantiles pins the nearest-rank quantile math the gates
// ride on, including wrap-around once the ring is full.
func TestAPERingQuantiles(t *testing.T) {
	r := newAPERing(4)
	if q := r.quantiles(0.5); !math.IsNaN(q[0]) {
		t.Fatal("empty ring must report NaN")
	}
	for _, v := range []float64{40, 10, 30, 20} {
		r.add(v)
	}
	q := r.quantiles(0.5, 0.9)
	if q[0] != 20 || q[1] != 40 {
		t.Fatalf("quantiles of {10,20,30,40}: p50=%v p90=%v, want 20,40", q[0], q[1])
	}
	// Overwrite the oldest two: window is now {30,20,100,100}.
	r.add(100)
	r.add(100)
	if r.count != 4 {
		t.Fatalf("ring count = %d, want 4", r.count)
	}
	q = r.quantiles(0.5)
	if q[0] != 30 {
		t.Fatalf("p50 after wrap = %v, want 30", q[0])
	}
	r.reset()
	if r.count != 0 {
		t.Fatal("reset must empty the ring")
	}
}

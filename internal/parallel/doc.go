// Package parallel is the shared worker-pool substrate behind every
// embarrassingly parallel loop in the repository: per-tree ensemble
// fitting, batch prediction, cross-validation folds, grid-search
// candidates and the experiment sweeps.
//
// The contract every caller relies on is that For(n, workers, fn)
// calls fn(i) exactly once for every i in [0, n) and that callers
// write results by index, so the observable output is independent of
// the worker count and of goroutine scheduling. Randomised callers
// must derive each unit's seed from (master seed, unit index) before
// fanning out — never share an RNG across units — which keeps parallel
// runs bit-identical to sequential ones. This determinism contract is
// what lets the serving layer's micro-batch coalescer (internal/serve)
// promise that a coalesced batch response is byte-for-byte what each
// request would have received alone.
//
// A non-positive workers argument means "use the process default"
// (SetDefaultWorkers, falling back to GOMAXPROCS), and an effective
// worker count of one runs the loop inline on the calling goroutine,
// so degenerate inputs (empty or single-element ranges, Workers <= 0)
// degrade to plain sequential execution instead of deadlocking.
//
// Default-inherited loops additionally share one process-wide helper
// budget, so nested fan-out (a sweep over trials, each fitting a
// forest, each fitting trees) keeps total concurrency near the
// default instead of multiplying the levels together.
//
// The Ctx variants (ForCtx, MapCtx, ForBlocksCtx) add prompt
// between-unit cancellation: returned errors wrap both
// lamerr.ErrCancelled and the underlying ctx.Err().
package parallel

package parallel

import (
	"context"
	"fmt"
	"sync/atomic"

	"lam/internal/lamerr"
)

// Cancelled wraps a context error in the shared lamerr.ErrCancelled
// sentinel, so callers can match the failure class
// (errors.Is(err, lamerr.ErrCancelled)) as well as the concrete cause
// (errors.Is(err, context.Canceled) / context.DeadlineExceeded).
func Cancelled(cause error) error {
	return fmt.Errorf("%w: %w", lamerr.ErrCancelled, cause)
}

// ForCtx runs fn over [0, n) like ForErr, with prompt cancellation
// between units: each worker re-checks the context before claiming the
// next index, so after ctx is done no new unit starts and the loop
// returns once the in-flight units finish. Cancellation latency is
// therefore bounded by the duration of a single unit.
//
// When the loop is cancelled before every unit has run, the returned
// error wraps both lamerr.ErrCancelled and ctx.Err(); cancellation
// takes precedence over unit errors (the sequential prefix is
// incomplete, so "the lowest failing index" is not well defined).
// Otherwise ForCtx returns the error of the lowest failing index, like
// ForErr. A nil ctx means context.Background().
func ForCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Cancelled(err)
	}
	if ctx.Done() == nil {
		// Background-like context: cancellation is impossible, skip the
		// per-unit bookkeeping.
		return ForErr(n, workers, fn)
	}
	if Resolve(workers, n) == 1 {
		// Mirror ForErr's sequential path: stop at the first failing
		// index instead of running the remaining units.
		done := ctx.Done()
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return Cancelled(ctx.Err())
			default:
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var stopped atomic.Bool
	done := ctx.Done()
	For(n, workers, func(i int) {
		if stopped.Load() {
			return
		}
		select {
		case <-done:
			stopped.Store(true)
			return
		default:
		}
		errs[i] = fn(i)
	})
	if stopped.Load() {
		return Cancelled(ctx.Err())
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MapCtx runs fn over [0, n) like MapErr, with ForCtx's prompt
// cancellation between units; on failure it returns the partial
// results alongside the error.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForCtx(ctx, n, workers, func(i int) error {
		v, e := fn(i)
		out[i] = v
		return e
	})
	return out, err
}

// ForBlocksCtx processes [0, n) as contiguous blocks like ForBlocks,
// re-checking the context before each block; fn itself cannot fail
// (block loops in this repository are pure writes by index), so the
// only error is cancellation.
func ForBlocksCtx(ctx context.Context, n, workers, minBlock int, fn func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	if minBlock < 1 {
		minBlock = 1
	}
	blocks := (n + minBlock - 1) / minBlock
	return ForCtx(ctx, blocks, workers, func(b int) error {
		lo := b * minBlock
		hi := lo + minBlock
		if hi > n {
			hi = n
		}
		fn(lo, hi)
		return nil
	})
}

package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"lam/internal/lamerr"
)

// TestForCtxCompletesLikeForErr checks the uncancelled path is
// indistinguishable from ForErr.
func TestForCtxCompletesLikeForErr(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForCtx(context.Background(), 100, workers, func(i int) error {
			ran.Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: unexpected error: %v", workers, err)
		}
		if ran.Load() != 100 {
			t.Fatalf("workers=%d: ran %d units, want 100", workers, ran.Load())
		}
	}
}

// TestForCtxNilContext treats nil as context.Background().
func TestForCtxNilContext(t *testing.T) {
	if err := ForCtx(nil, 10, 2, func(int) error { return nil }); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
}

// TestForCtxLowestError keeps ForErr's deterministic error selection.
func TestForCtxLowestError(t *testing.T) {
	want := errors.New("unit 3")
	err := ForCtx(context.Background(), 10, 4, func(i int) error {
		switch i {
		case 3:
			return want
		case 7:
			return errors.New("unit 7")
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want the lowest failing index error", err)
	}
}

// TestForCtxPreCancelled runs nothing when the context is already done.
func TestForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForCtx(ctx, 100, 4, func(i int) error {
		ran.Add(1)
		return nil
	})
	if ran.Load() != 0 {
		t.Fatalf("ran %d units after pre-cancel, want 0", ran.Load())
	}
	assertCancelled(t, err)
}

// TestForCtxMidLoopCancel cancels from inside a unit and checks that no
// new units start, that the error carries both sentinels, and that the
// loop returns promptly.
func TestForCtxMidLoopCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		start := time.Now()
		err := ForCtx(ctx, 10_000, workers, func(i int) error {
			if ran.Add(1) == 8 {
				cancel()
			}
			time.Sleep(100 * time.Microsecond)
			return nil
		})
		cancel()
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("workers=%d: cancellation took %v", workers, elapsed)
		}
		assertCancelled(t, err)
		// Units already claimed may finish, but the vast majority must
		// never start.
		if n := ran.Load(); n > 100 {
			t.Fatalf("workers=%d: %d units ran after cancellation", workers, n)
		}
	}
}

// TestForCtxSequentialShortCircuit checks the one-worker path mirrors
// ForErr: a failing unit stops the loop instead of running the rest.
func TestForCtxSequentialShortCircuit(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	want := errors.New("unit 2")
	var ran atomic.Int64
	err := ForCtx(ctx, 1000, 1, func(i int) error {
		ran.Add(1)
		if i == 2 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want unit-2 error", err)
	}
	if ran.Load() != 3 {
		t.Fatalf("ran %d units after the failure, want 3", ran.Load())
	}
}

// TestMapCtxCancelled checks MapCtx surfaces the cancellation error.
func TestMapCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := MapCtx(ctx, 1000, 4, func(i int) (int, error) {
		if ran.Add(1) == 4 {
			cancel()
		}
		return i, nil
	})
	assertCancelled(t, err)
}

// TestForBlocksCtxCovers checks the block loop covers [0, n) exactly
// once without cancellation.
func TestForBlocksCtxCovers(t *testing.T) {
	seen := make([]atomic.Int64, 100)
	err := ForBlocksCtx(context.Background(), 100, 4, 7, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i].Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, seen[i].Load())
		}
	}
}

func assertCancelled(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("expected a cancellation error, got nil")
	}
	if !errors.Is(err, lamerr.ErrCancelled) {
		t.Fatalf("error %v does not wrap lamerr.ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide default worker count; values <= 0
// mean GOMAXPROCS.
var defaultWorkers atomic.Int64

// The helper budget bounds total pool concurrency across *nested*
// calls: a loop whose caller inherited the process default (workers
// <= 0) may only spawn helper goroutines while the process-wide
// budget of DefaultWorkers()-1 has headroom (the calling goroutine is
// the +1). Acquisition never blocks — a nested loop that finds the
// budget exhausted simply runs inline on its caller — so the scheme
// cannot deadlock, and concurrency stays additive rather than
// multiplicative when sweeps, cross-validation and ensemble fits
// nest. Loops with an explicit positive workers count bypass the
// budget: the caller asked for that parallelism by name.
var helperMu sync.Mutex
var helpersInUse int

func acquireHelpers(want int) int {
	limit := DefaultWorkers() - 1
	helperMu.Lock()
	defer helperMu.Unlock()
	free := limit - helpersInUse
	if want > free {
		want = free
	}
	if want < 0 {
		want = 0
	}
	helpersInUse += want
	return want
}

func releaseHelpers(n int) {
	helperMu.Lock()
	helpersInUse -= n
	helperMu.Unlock()
}

// SetDefaultWorkers sets the process-wide default used when a caller
// passes workers <= 0. Passing n <= 0 restores the GOMAXPROCS default.
func SetDefaultWorkers(n int) { defaultWorkers.Store(int64(n)) }

// DefaultWorkers returns the process-wide default worker count.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Resolve maps a caller-supplied Workers knob to an effective worker
// count for n independent units: non-positive workers means the
// process default, and the result is clamped to [1, n] so a degenerate
// workload runs sequentially.
func Resolve(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For calls fn(i) exactly once for every i in [0, n), using the
// calling goroutine plus up to workers-1 helper goroutines. Indices
// are handed out through a shared atomic counter (a work-stealing-free
// pool), so uneven unit costs balance automatically. With one
// effective worker — including when a default-inherited nested call
// finds the process-wide helper budget exhausted — the loop runs
// inline.
func For(n, workers int, fn func(i int)) {
	resolved := Resolve(workers, n)
	helpers := resolved - 1
	budgeted := workers <= 0 && helpers > 0
	if budgeted {
		helpers = acquireHelpers(helpers)
		defer releaseHelpers(helpers)
	}
	if helpers == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(helpers)
	for w := 0; w < helpers; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// ForErr runs fn over [0, n) like For and returns the error of the
// lowest failing index — the same error a sequential loop that stops
// at the first failure would report, which keeps error output
// independent of scheduling.
func ForErr(n, workers int, fn func(i int) error) error {
	if Resolve(workers, n) == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	For(n, workers, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForBlocks processes [0, n) as contiguous blocks of at least minBlock
// elements, calling fn(lo, hi) for each block. Use it when the
// per-element work is too cheap to pay a pool dispatch per index
// (e.g. scoring one sample with a shallow tree).
func ForBlocks(n, workers, minBlock int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minBlock < 1 {
		minBlock = 1
	}
	blocks := (n + minBlock - 1) / minBlock
	if Resolve(workers, blocks) == 1 {
		fn(0, n)
		return
	}
	For(blocks, workers, func(b int) {
		lo := b * minBlock
		hi := lo + minBlock
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// Map runs fn over [0, n) and collects the results by index.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr runs fn over [0, n), collecting results by index; on failure
// it returns the error of the lowest failing index alongside the
// partial results.
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForErr(n, workers, func(i int) error {
		v, e := fn(i)
		out[i] = v
		return e
	})
	return out, err
}

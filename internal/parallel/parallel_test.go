package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 2, 3, 100} {
			hits := make([]int32, n)
			For(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestResolveClamps(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{0, 10, DefaultWorkers()},
		{-3, 10, DefaultWorkers()},
		{4, 2, 2},
		{4, 0, 1},
		{1, 100, 1},
		{8, 8, 8},
	}
	for _, c := range cases {
		if c.want > c.n && c.n >= 1 {
			c.want = c.n
		}
		if got := Resolve(c.workers, c.n); got != c.want {
			t.Errorf("Resolve(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestSetDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers() = %d after SetDefaultWorkers(3)", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers() = %d, want GOMAXPROCS default", got)
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForErr(10, workers, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("unit %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "unit 3 failed" {
			t.Fatalf("workers=%d: got %v, want the lowest-index error", workers, err)
		}
	}
	if err := ForErr(5, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestForBlocksCoversRange(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, n := range []int{0, 1, 5, 64, 100} {
			hits := make([]int32, n)
			ForBlocks(n, workers, 8, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad block [%d, %d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	got := Map(5, 4, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapErr(t *testing.T) {
	sentinel := errors.New("boom")
	got, err := MapErr(4, 2, func(i int) (int, error) {
		if i == 2 {
			return 0, sentinel
		}
		return i + 1, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got err %v, want sentinel", err)
	}
	if got[1] != 2 {
		t.Fatalf("partial results not preserved: %v", got)
	}
}

// TestDeterministicUnderContention checks the package's core promise:
// index-addressed writes make output independent of worker count.
func TestDeterministicUnderContention(t *testing.T) {
	ref := Map(1000, 1, func(i int) float64 { return float64(i) * 1.5 })
	for _, workers := range []int{2, 5, 16} {
		got := Map(1000, workers, func(i int) float64 { return float64(i) * 1.5 })
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: result[%d] differs", workers, i)
			}
		}
	}
}

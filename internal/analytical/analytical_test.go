package analytical

import (
	"math"
	"testing"
	"testing/quick"

	"lam/internal/machine"
)

func stencilModel() *StencilModel {
	return &StencilModel{Machine: machine.BlueWatersXE6(), WriteAllocate: true}
}

func TestStencilPredictPositiveAndFinite(t *testing.T) {
	m := stencilModel()
	for _, p := range []StencilParams{
		{I: 16, J: 16, K: 1},
		{I: 128, J: 128, K: 128},
		{I: 256, J: 256, K: 256},
		{I: 64, J: 64, K: 64, TI: 16, TJ: 16, TK: 16},
		{I: 100, J: 100, K: 100, TI: 7, TJ: 13, TK: 3},
	} {
		got, err := m.Predict(p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if got <= 0 || math.IsInf(got, 0) || math.IsNaN(got) {
			t.Errorf("%+v: predicted %v", p, got)
		}
	}
}

func TestStencilMonotoneInGridSize(t *testing.T) {
	m := stencilModel()
	prev := 0.0
	for _, dim := range []int{32, 64, 128, 192, 256} {
		got, err := m.Predict(StencilParams{I: dim, J: dim, K: dim})
		if err != nil {
			t.Fatal(err)
		}
		if got <= prev {
			t.Errorf("time for %d³ = %v not greater than for smaller grid %v", dim, got, prev)
		}
		prev = got
	}
}

func TestStencilTimeStepsScaleLinearly(t *testing.T) {
	m := stencilModel()
	one, err := m.Predict(StencilParams{I: 64, J: 64, K: 64, TimeSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	ten, err := m.Predict(StencilParams{I: 64, J: 64, K: 64, TimeSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ten-10*one) > 1e-9*ten {
		t.Errorf("10 steps = %v, want 10 × %v", ten, one)
	}
}

func TestStencilTinyBlocksCostMore(t *testing.T) {
	// Degenerate 1×1×1 blocking re-reads ghost planes per point: the
	// model must charge more traffic than the unblocked traversal.
	m := stencilModel()
	unblocked, err := m.Predict(StencilParams{I: 64, J: 64, K: 64})
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := m.Predict(StencilParams{I: 64, J: 64, K: 64, TI: 1, TJ: 1, TK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tiny <= unblocked {
		t.Errorf("1×1×1 blocks %v should cost more than unblocked %v", tiny, unblocked)
	}
}

func TestStencilFullBlockEqualsUnblocked(t *testing.T) {
	m := stencilModel()
	a, err := m.Predict(StencilParams{I: 64, J: 48, K: 32})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Predict(StencilParams{I: 64, J: 48, K: 32, TI: 64, TJ: 48, TK: 32})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("explicit full block %v != unblocked %v", b, a)
	}
}

func TestStencilCalibrationScales(t *testing.T) {
	a := stencilModel()
	b := stencilModel()
	b.Calibration = 2
	pa, _ := a.Predict(StencilParams{I: 64, J: 64, K: 64})
	pb, _ := b.Predict(StencilParams{I: 64, J: 64, K: 64})
	if math.Abs(pb-2*pa) > 1e-12*pb {
		t.Errorf("calibration 2: %v, want %v", pb, 2*pa)
	}
}

func TestStencilWriteAllocateCostsMore(t *testing.T) {
	wa := stencilModel()
	nwa := stencilModel()
	nwa.WriteAllocate = false
	a, _ := wa.Predict(StencilParams{I: 128, J: 128, K: 128})
	b, _ := nwa.Predict(StencilParams{I: 128, J: 128, K: 128})
	if a <= b {
		t.Errorf("write-allocate %v should exceed no-write-allocate %v", a, b)
	}
}

func TestStencilErrors(t *testing.T) {
	m := &StencilModel{}
	if _, err := m.Predict(StencilParams{I: 4, J: 4, K: 4}); err == nil {
		t.Error("expected error without machine")
	}
	m = stencilModel()
	if _, err := m.Predict(StencilParams{I: 0, J: 4, K: 4}); err == nil {
		t.Error("expected error for bad grid")
	}
}

func TestNplanesMonotoneDecreasingInCapacity(t *testing.T) {
	// Property: larger caches never fetch more planes, and the value
	// stays within [1, 2P−1].
	f := func(capRaw, gridRaw uint16) bool {
		pread := 3.0
		ii := 16 + float64(gridRaw%512)
		jj := ii + 2
		sread := ii * jj
		stotal := pread*sread + ii*(jj-2)
		rcol := pread / (2*pread - 1)
		prev := math.Inf(1)
		for c := 64.0; c <= 1e8; c *= 1.5 {
			np := nplanes(c, pread, stotal, sread, ii, rcol)
			if np < 1 || np > 2*pread-1 {
				return false
			}
			if np > prev+1e-12 {
				return false
			}
			prev = np
		}
		_ = capRaw
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNplanesLimits(t *testing.T) {
	pread, ii := 3.0, 130.0
	jj := 132.0
	sread := ii * jj
	stotal := pread * sread
	rcol := pread / (2*pread - 1)
	if got := nplanes(1e9, pread, stotal, sread, ii, rcol); got != 1 {
		t.Errorf("huge cache nplanes = %v, want 1", got)
	}
	if got := nplanes(1, pread, stotal, sread, ii, rcol); got != 2*pread-1 {
		t.Errorf("tiny cache nplanes = %v, want %v", got, 2*pread-1)
	}
}

func fmmModel() *FMMModel {
	return &FMMModel{Machine: machine.BlueWatersXE6()}
}

func TestFMMPredictPositive(t *testing.T) {
	m := fmmModel()
	for _, p := range []FMMParams{
		{N: 4096, Q: 64, K: 2},
		{N: 16384, Q: 512, K: 12},
		{N: 8192, Q: 1, K: 4},
	} {
		got, err := m.Predict(p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if got <= 0 || math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%+v: predicted %v", p, got)
		}
	}
}

func TestFMMLinearInN(t *testing.T) {
	m := fmmModel()
	a, _ := m.Predict(FMMParams{N: 4096, Q: 64, K: 6})
	b, _ := m.Predict(FMMParams{N: 8192, Q: 64, K: 6})
	if math.Abs(b-2*a) > 1e-9*b {
		t.Errorf("doubling N: %v, want %v (model is O(N))", b, 2*a)
	}
}

func TestFMMOrderGrowsSteeply(t *testing.T) {
	m := fmmModel()
	low, _ := m.Predict(FMMParams{N: 8192, Q: 64, K: 2})
	high, _ := m.Predict(FMMParams{N: 8192, Q: 64, K: 12})
	if high < low*100 {
		t.Errorf("k=12 (%v) should dwarf k=2 (%v): M2L is O(k⁶)", high, low)
	}
}

func TestFMMQTradeoff(t *testing.T) {
	// P2P grows with q, M2L shrinks with q: the model must be convex-ish
	// with an interior optimum for moderate k.
	m := fmmModel()
	tiny, _ := m.Predict(FMMParams{N: 16384, Q: 2, K: 6})
	mid, _ := m.Predict(FMMParams{N: 16384, Q: 128, K: 6})
	huge, _ := m.Predict(FMMParams{N: 16384, Q: 8192, K: 6})
	if mid >= tiny || mid >= huge {
		t.Errorf("q trade-off broken: tiny=%v mid=%v huge=%v", tiny, mid, huge)
	}
}

func TestFMMOptimalQ(t *testing.T) {
	m := fmmModel()
	q, tm, err := m.OptimalQ(16384, 6, 1, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if q <= 2 || q >= 2048 {
		t.Errorf("optimal q = %d, want interior optimum", q)
	}
	// Check optimality against neighbours.
	left, _ := m.Predict(FMMParams{N: 16384, Q: q - 1, K: 6})
	right, _ := m.Predict(FMMParams{N: 16384, Q: q + 1, K: 6})
	if tm > left || tm > right {
		t.Errorf("reported optimum %v worse than neighbours %v/%v", tm, left, right)
	}
	if _, _, err := m.OptimalQ(16384, 6, 10, 5); err == nil {
		t.Error("expected error for empty q range")
	}
}

func TestFMMErrors(t *testing.T) {
	m := &FMMModel{}
	if _, err := m.Predict(FMMParams{N: 10, Q: 1, K: 1}); err == nil {
		t.Error("expected error without machine")
	}
	m = fmmModel()
	for _, p := range []FMMParams{{N: 0, Q: 1, K: 1}, {N: 10, Q: 0, K: 1}, {N: 10, Q: 1, K: 0}} {
		if _, err := m.Predict(p); err == nil {
			t.Errorf("expected error for %+v", p)
		}
	}
}

func TestFMMCalibration(t *testing.T) {
	a := fmmModel()
	b := fmmModel()
	b.Calibration = 0.5
	pa, _ := a.Predict(FMMParams{N: 4096, Q: 64, K: 4})
	pb, _ := b.Predict(FMMParams{N: 4096, Q: 64, K: 4})
	if math.Abs(pb-0.5*pa) > 1e-12*pa {
		t.Errorf("calibration 0.5: %v, want %v", pb, 0.5*pa)
	}
}

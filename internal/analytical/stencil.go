// Package analytical implements the paper's closed-form performance
// models (Section IV): the multi-level cache model for the 7-point 3-D
// stencil (after de la Cruz & Araya-Polo, Eqs. 3–7 and the blocked
// variant Eq. 15) and the FMM P2P/M2L flop and memory-cost models
// (Eqs. 8, 9, 12, 14).
//
// Deliberately, these models are used *untuned* in the hybrid
// experiments, exactly as in the paper ("we do not tune the analytical
// models", Sections VII.A and VII.B): the point of the hybrid method is
// that a rough analytical sketch already helps the ML model.
package analytical

import (
	"fmt"

	"lam/internal/machine"
	"lam/internal/xmath"
)

// StencilParams is the workload configuration the stencil model scores.
type StencilParams struct {
	// I, J, K are interior grid dimensions (I fastest varying).
	I, J, K int
	// TI, TJ, TK are spatial block sizes; 0 disables blocking in that
	// dimension.
	TI, TJ, TK int
	// TimeSteps is the sweep count; 0 means 1.
	TimeSteps int
}

func (p StencilParams) normalized() (StencilParams, error) {
	if p.I <= 0 || p.J <= 0 || p.K <= 0 {
		return p, fmt.Errorf("analytical: non-positive grid %dx%dx%d", p.I, p.J, p.K)
	}
	if p.TI <= 0 || p.TI > p.I {
		p.TI = p.I
	}
	if p.TJ <= 0 || p.TJ > p.J {
		p.TJ = p.J
	}
	if p.TK <= 0 || p.TK > p.K {
		p.TK = p.K
	}
	if p.TimeSteps <= 0 {
		p.TimeSteps = 1
	}
	return p, nil
}

// StencilModel is the paper's single-core stencil cache model.
type StencilModel struct {
	// Machine supplies cache geometry and bandwidths. Required.
	Machine *machine.Machine
	// Order is the stencil radius l; 0 means 1 (the 7-point stencil).
	Order int
	// WriteAllocate selects Eq. 3 (true) or Eq. 4 (false) for the
	// working-set size. Interlagos L1 is write-through/no-write-allocate
	// but L2/L3 are write-back; the model applies one policy globally,
	// as the paper does.
	WriteAllocate bool
	// Calibration scales the final time; 1 (default 0 is treated as 1)
	// means the untuned model used throughout the paper's evaluation.
	Calibration float64
}

// refsPerPoint is the number of explicit array references per stencil
// update used for the L1-hit traffic term: 2l+5 reads + 1 write = 8 for
// the 7-point stencil.
func (m *StencilModel) refsPerPoint(l int) float64 { return float64(2*l + 5 + 1) }

// Misses returns the modelled number of cache-line misses at every
// cache level (inner to outer) for one sweep — Eqs. 6–7 with the
// blocked Eq. 15 and interpolated nplanes. Exposed so the ablation
// bench can compare the closed-form model against the trace-driven
// cache simulator.
func (m *StencilModel) Misses(p StencilParams) ([]float64, error) {
	if m.Machine == nil {
		return nil, fmt.Errorf("analytical: StencilModel requires a Machine")
	}
	pp, err := p.normalized()
	if err != nil {
		return nil, err
	}
	l := m.Order
	if l <= 0 {
		l = 1
	}
	mach := m.Machine
	w := mach.Levels[0].LineElems()
	bii := xmath.CeilDiv(pp.TI+2*l, w) * w
	bi := xmath.CeilDiv(pp.TI, w) * w
	bjj := pp.TJ + 2*l
	bkk := pp.TK + 2*l
	nb := float64(xmath.CeilDiv(pp.I, pp.TI)) *
		float64(xmath.CeilDiv(pp.J, pp.TJ)) *
		float64(xmath.CeilDiv(pp.K, pp.TK))
	pread := float64(2*l + 1)
	sread := float64(bii * bjj)
	stotal := pread * sread
	if m.WriteAllocate {
		stotal += float64(bi * pp.TJ)
	}
	basePlanes := float64(xmath.CeilDiv(bii, w)) * float64(bjj) * float64(bkk) * nb
	rcol := pread / (2*pread - 1)
	misses := make([]float64, len(mach.Levels))
	for i, lvl := range mach.Levels {
		np := nplanes(float64(lvl.SizeElems()), pread, stotal, sread, float64(bii), rcol)
		misses[i] = basePlanes * np
	}
	for i := 1; i < len(misses); i++ {
		if misses[i] > misses[i-1] {
			misses[i] = misses[i-1]
		}
	}
	return misses, nil
}

// Predict returns the modelled execution time in seconds for one core.
func (m *StencilModel) Predict(p StencilParams) (float64, error) {
	misses, err := m.Misses(p)
	if err != nil {
		return 0, err
	}
	pp, err := p.normalized()
	if err != nil {
		return 0, err
	}
	l := m.Order
	if l <= 0 {
		l = 1
	}
	cal := m.Calibration
	if cal == 0 {
		cal = 1
	}

	mach := m.Machine
	w := mach.Levels[0].LineElems() // W, elements per cache line

	bi := xmath.CeilDiv(pp.TI, w) * w
	bj := pp.TJ
	bkk := pp.TK + 2*l
	nb := float64(xmath.CeilDiv(pp.I, pp.TI)) *
		float64(xmath.CeilDiv(pp.J, pp.TJ)) *
		float64(xmath.CeilDiv(pp.K, pp.TK))
	n := float64(pp.I) * float64(pp.J) * float64(pp.K)

	// Eq. 5–6 accounting: L1 hits move elements at the L1 rate; every
	// outer level moves whole lines for the lines the previous level
	// missed but this one holds; main memory serves the last level's
	// misses.
	refs := m.refsPerPoint(l) * n
	t := (refs - float64(w)*misses[0]) * mach.Levels[0].BetaSecPerElem()
	if t < 0 {
		t = 0
	}
	for i := 1; i < len(mach.Levels); i++ {
		hits := misses[i-1] - misses[i]
		if hits < 0 {
			hits = 0
		}
		t += hits * float64(w) * mach.Levels[i].BetaSecPerElem()
	}
	t += misses[len(misses)-1] * float64(w) * mach.MemBetaSecPerElem()
	if m.WriteAllocate {
		// Store stream: one written plane per k iteration per tile.
		t += float64(xmath.CeilDiv(bi, w)) * float64(bj) * float64(bkk) * nb *
			float64(w) * mach.MemBetaSecPerElem()
	}

	// Eq. 2: overlap of flops and memory.
	tflops := stencilFlopsPerPoint * n * mach.TimePerFlop()
	total := t
	if tflops > total {
		total = tflops
	}
	return cal * total * float64(pp.TimeSteps), nil
}

// stencilFlopsPerPoint matches internal/stencil.FlopsPerPoint without
// importing it (the model must stand alone).
const stencilFlopsPerPoint = 9

// nplanes evaluates the paper's conditional equations for the number of
// II×JJ planes fetched from the next level per k iteration, with linear
// interpolation between the case boundaries (the paper smooths the
// discontinuities the same way).
//
// cap is the level capacity in elements. The breakpoints, in decreasing
// capacity order, are:
//
//	cap ≥ Stotal/Rcol           → 1          (R1)
//	Stotal ≤ cap < Stotal/Rcol  → (1, P−1]   (¬R1 ∧ R2)
//	Sread/Rcol ≤ cap < Stotal   → (P−1, P]   (¬R2 ∧ R3)
//	P·II/Rcol ≤ cap < Sread/Rcol→ (P, 2P−1]  (¬R3 ∧ ¬R4)
//	cap < P·II/Rcol             → 2P−1       (R4)
func nplanes(cap, pread, stotal, sread, ii, rcol float64) float64 {
	b1 := stotal / rcol // above: everything reused
	b2 := stotal
	b3 := sread / rcol
	b4 := pread * ii / rcol
	switch {
	case cap >= b1:
		return 1
	case cap >= b2:
		return xmath.Lerp(pread-1, 1, xmath.InvLerp(b2, b1, cap))
	case cap >= b3:
		return xmath.Lerp(pread, pread-1, xmath.InvLerp(b3, b2, cap))
	case cap >= b4:
		return xmath.Lerp(2*pread-1, pread, xmath.InvLerp(b4, b3, cap))
	default:
		return 2*pread - 1
	}
}

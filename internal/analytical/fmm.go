package analytical

import (
	"fmt"
	"math"

	"lam/internal/machine"
)

// FMMParams is the workload configuration the FMM model scores — the
// paper's X = (t, N, q, k) minus t, because the analytical models are
// single-core (Section VII.B couples them with ML precisely to cover
// parallelism).
type FMMParams struct {
	// N is the number of particles.
	N int
	// Q is the number of particles per leaf cell.
	Q int
	// K is the expansion order.
	K int
}

// Validate checks the parameters.
func (p FMMParams) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("analytical: non-positive N %d", p.N)
	}
	if p.Q <= 0 {
		return fmt.Errorf("analytical: non-positive q %d", p.Q)
	}
	if p.K < 1 {
		return fmt.Errorf("analytical: order k %d < 1", p.K)
	}
	return nil
}

// FMMModel is the paper's single-core FMM cost model for the two
// dominant phases, P2P and M2L (Section IV.B).
type FMMModel struct {
	// Machine supplies tc, βmem and the cache size Z. Required.
	Machine *machine.Machine
	// Calibration scales the final time; 0 is treated as 1 (untuned, as
	// in the paper: FMM analytical model MAPE = 84.5%).
	Calibration float64
}

// bP2P is the average number of source cells in the neighbour list of
// an interior target leaf (paper: 26 neighbours + self = 27 in Eq. 8).
const bP2P = 27

// m2lOpsPerCell is the Cartesian-expansion M2L operation count factor
// (paper: 189·k⁶ for the 189-cell well-separated list, Eq. 9).
const m2lOpsPerCell = 189

// Predict returns the modelled single-core execution time in seconds:
// max(Tflop, Tmem) per phase, summed over P2P and M2L (Eq. 2 applied
// per phase).
func (m *FMMModel) Predict(p FMMParams) (float64, error) {
	if m.Machine == nil {
		return 0, fmt.Errorf("analytical: FMMModel requires a Machine")
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	cal := m.Calibration
	if cal == 0 {
		cal = 1
	}
	tc := m.Machine.TimePerFlop()
	beta := m.Machine.MemBetaSecPerElem()
	last := m.Machine.Levels[len(m.Machine.Levels)-1]
	z := float64(last.SizeElems())      // Z, cache size in elements
	lElems := float64(last.LineElems()) // L, cache-line length in elements

	n := float64(p.N)
	q := float64(p.Q)
	k := float64(p.K)
	k6 := k * k * k * k * k * k

	// Eq. 8: Tflop,P2P = 27·q·N·tc.
	tFlopP2P := bP2P * q * n * tc
	// Eq. 12: Tmem,P2P = N·βmem + N·L/(Z^{1/3}·q^{2/3})·βmem.
	tMemP2P := n*beta + n*lElems/(math.Cbrt(z)*math.Pow(q, 2.0/3.0))*beta

	// Eq. 9: Tflop,M2L = 189·N·k⁶/q·tc.
	tFlopM2L := m2lOpsPerCell * n * k6 / q * tc
	// Eq. 14: Tmem,M2L = (N·k⁶/q)·βmem·(L/L) + (N·k²·L)/(q·Z^{1/3})·βmem.
	tMemM2L := n*k6/q*beta + n*k*k*lElems/(q*math.Cbrt(z))*beta

	total := math.Max(tFlopP2P, tMemP2P) + math.Max(tFlopM2L, tMemM2L)
	return cal * total, nil
}

// OptimalQ returns the leaf capacity that minimises the modelled time
// for fixed N and k, scanned over a sensible range. It exposes the
// model's headline use: balancing P2P (∝q) against M2L (∝1/q).
func (m *FMMModel) OptimalQ(n, k, qMin, qMax int) (int, float64, error) {
	if qMin < 1 {
		qMin = 1
	}
	if qMax < qMin {
		return 0, 0, fmt.Errorf("analytical: empty q range [%d, %d]", qMin, qMax)
	}
	bestQ, bestT := 0, math.Inf(1)
	for q := qMin; q <= qMax; q++ {
		t, err := m.Predict(FMMParams{N: n, Q: q, K: k})
		if err != nil {
			return 0, 0, err
		}
		if t < bestT {
			bestQ, bestT = q, t
		}
	}
	return bestQ, bestT, nil
}

package online

import (
	"lam/internal/ml"
)

// Sample is one ground-truth observation: the feature vector that was
// served, the prediction the deployed model gave for it, and the
// runtime that was then actually measured.
type Sample struct {
	X         []float64
	Predicted float64
	Observed  float64
}

// WindowStats is a point-in-time summary of a window.
type WindowStats struct {
	// Count is the number of samples currently held (≤ Capacity).
	Count int `json:"count"`
	// Capacity is the ring size.
	Capacity int `json:"capacity"`
	// MAPE is the rolling mean absolute percentage error of served
	// prediction vs. observation over the held samples, in percent
	// (zero-observation samples are skipped, as in ml.MAPE).
	MAPE float64 `json:"mape"`
	// Total is the lifetime number of samples ingested, including
	// those the ring has since overwritten and pre-reset history.
	Total uint64 `json:"total"`
}

// window is a bounded ring of the most recent samples for one model.
// It is not internally synchronised: the Plane guards each model's
// window with that model's state lock.
type window struct {
	buf   []Sample
	next  int // ring write cursor
	count int // samples held, ≤ len(buf)
	total uint64
}

func newWindow(capacity int) *window {
	return &window{buf: make([]Sample, capacity)}
}

// add appends one sample, overwriting the oldest once full. The
// feature vector is copied: callers hand in request-scoped slices.
func (w *window) add(s Sample) {
	x := make([]float64, len(s.X))
	copy(x, s.X)
	s.X = x
	w.buf[w.next] = s
	w.next = (w.next + 1) % len(w.buf)
	if w.count < len(w.buf) {
		w.count++
	}
	w.total++
}

// stats recomputes the rolling MAPE over the held samples. An exact
// O(count) pass per call (not an incremental float sum, which would
// drift over unbounded streams); the mean is order-independent, so the
// ring is read in place — no per-call allocation on the ingest path.
func (w *window) stats() WindowStats {
	st := WindowStats{Count: w.count, Capacity: len(w.buf), Total: w.total}
	sum, n := 0.0, 0
	for _, s := range w.buf[:w.count] {
		ape, ok := ml.APE(s.Observed, s.Predicted)
		if !ok {
			continue
		}
		sum += ape
		n++
	}
	if n > 0 {
		st.MAPE = sum / float64(n)
	}
	return st
}

// snapshot returns an owned copy of the held samples, oldest first —
// what the retrainer trains on after the state lock is released. The
// feature vectors are shared (they were copied at add and never
// mutated afterwards). A full ring's oldest sample sits at the write
// cursor.
func (w *window) snapshot() []Sample {
	out := make([]Sample, 0, w.count)
	if w.count < len(w.buf) {
		return append(out, w.buf[:w.count]...)
	}
	out = append(out, w.buf[w.next:]...)
	return append(out, w.buf[:w.next]...)
}

// reset discards the held samples (lifetime total is kept): called
// when a retrained model is published, so the window measures the new
// model from scratch instead of blending two models' errors.
func (w *window) reset() {
	w.next, w.count = 0, 0
	for i := range w.buf {
		w.buf[i] = Sample{}
	}
}

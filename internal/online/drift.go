package online

// DetectorConfig tunes the drift detector. The zero value is usable:
// every field has a conservative default chosen so the detector is not
// flappy on noisy windows.
type DetectorConfig struct {
	// DegradeFactor trips the detector when the windowed MAPE exceeds
	// DegradeFactor × the model's registry-recorded test MAPE.
	// 0 means 1.5 (accuracy degraded by half again over the baseline).
	DegradeFactor float64
	// RecoverFactor re-arms a tripped detector once the windowed MAPE
	// falls back below RecoverFactor × baseline — the hysteresis band
	// that keeps a window oscillating around the trip threshold from
	// firing repeatedly. 0 means 1.1.
	RecoverFactor float64
	// MinSamples is the number of windowed samples required before the
	// detector changes state in either direction, so a handful of
	// unlucky observations cannot trip it. 0 means 64.
	MinSamples int
	// MinMAPE is an absolute floor (percent) on the trip threshold:
	// models whose recorded baseline is tiny (or zero, for artifacts
	// saved without a TestMAPE) would otherwise trip on measurement
	// noise alone. 0 means 5.
	MinMAPE float64
}

func (c DetectorConfig) normalized() DetectorConfig {
	if c.DegradeFactor <= 0 {
		c.DegradeFactor = 1.5
	}
	if c.RecoverFactor <= 0 {
		c.RecoverFactor = 1.1
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 64
	}
	if c.MinMAPE <= 0 {
		c.MinMAPE = 5
	}
	return c
}

// threshold returns the trip threshold for a baseline MAPE.
func (c DetectorConfig) threshold(baseline float64) float64 {
	t := c.DegradeFactor * baseline
	if t < c.MinMAPE {
		t = c.MinMAPE
	}
	return t
}

// recoverThreshold returns the re-arm threshold. It carries the same
// MinMAPE floor as the trip threshold: with a zero or tiny recorded
// baseline, a pure RecoverFactor×baseline band could demand a window
// MAPE the floor-tripped detector can never reach, latching it tripped
// forever. RecoverFactor < DegradeFactor keeps it at or below the trip
// threshold, preserving the hysteresis band.
func (c DetectorConfig) recoverThreshold(baseline float64) float64 {
	t := c.RecoverFactor * baseline
	if t < c.MinMAPE {
		t = c.MinMAPE
	}
	return t
}

// detector is the per-model drift state machine. Not internally
// synchronised: the Plane guards it with the model's state lock.
type detector struct {
	cfg     DetectorConfig
	tripped bool
}

// update feeds one windowed accuracy reading and reports whether the
// detector fired on this reading (the untripped→tripped edge — the
// retrain trigger). While tripped it will not fire again; it re-arms
// only when the window recovers below the hysteresis band or is reset
// on publish.
func (d *detector) update(windowMAPE, baseline float64, n int) (fired bool) {
	if n < d.cfg.MinSamples {
		return false
	}
	if d.tripped {
		if windowMAPE <= d.cfg.recoverThreshold(baseline) {
			d.tripped = false
		}
		return false
	}
	if windowMAPE > d.cfg.threshold(baseline) {
		d.tripped = true
		return true
	}
	return false
}

func (d *detector) reset() { d.tripped = false }

package online

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"lam/internal/dataset"
	"lam/internal/experiments"
	"lam/internal/hybrid"
	"lam/internal/ml"
	"lam/internal/registry"
)

func TestWindowRingAndRollingMAPE(t *testing.T) {
	w := newWindow(4)
	// Six samples through a capacity-4 ring: the first two fall out.
	for i := 1; i <= 6; i++ {
		w.add(Sample{X: []float64{float64(i)}, Predicted: float64(i) * 1.1, Observed: float64(i)})
	}
	st := w.stats()
	if st.Count != 4 || st.Capacity != 4 || st.Total != 6 {
		t.Fatalf("stats %+v, want count 4 / cap 4 / total 6", st)
	}
	// Every held sample has a 10% error.
	if st.MAPE < 9.99 || st.MAPE > 10.01 {
		t.Fatalf("rolling MAPE %v, want ~10", st.MAPE)
	}
	snap := w.snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot holds %d samples", len(snap))
	}
	for i, s := range snap {
		if want := float64(i + 3); s.Observed != want || s.X[0] != want {
			t.Fatalf("snapshot[%d] = %+v, want oldest-first starting at 3", i, s)
		}
	}
	// add must copy the caller's vector: mutating it afterwards must
	// not reach the stored sample.
	x := []float64{42}
	w.add(Sample{X: x, Predicted: 1, Observed: 1})
	x[0] = -1
	snap = w.snapshot()
	if got := snap[len(snap)-1].X[0]; got != 42 {
		t.Fatalf("stored feature vector aliased the caller's slice: %v", got)
	}
	w.reset()
	st = w.stats()
	if st.Count != 0 || st.MAPE != 0 {
		t.Fatalf("reset left %+v", st)
	}
	if st.Total != 7 {
		t.Fatalf("reset dropped lifetime total: %d", st.Total)
	}
	// Zero-observation samples are skipped by the rolling MAPE, as in
	// ml.MAPE.
	w.add(Sample{X: []float64{1}, Predicted: 5, Observed: 0})
	w.add(Sample{X: []float64{1}, Predicted: 2, Observed: 1})
	if got := w.stats().MAPE; got != 100 {
		t.Fatalf("MAPE with one undefined sample = %v, want 100", got)
	}
}

func TestDetectorHysteresisAndMinSamples(t *testing.T) {
	d := detector{cfg: DetectorConfig{
		DegradeFactor: 1.5, RecoverFactor: 1.1, MinSamples: 10, MinMAPE: 5,
	}.normalized()}
	baseline := 10.0 // threshold 15, recover band 11

	if d.update(50, baseline, 9) {
		t.Fatal("fired below MinSamples")
	}
	if d.tripped {
		t.Fatal("state changed below MinSamples")
	}
	if !d.update(16, baseline, 10) {
		t.Fatal("did not fire past threshold with enough samples")
	}
	if d.update(25, baseline, 11) {
		t.Fatal("re-fired while already tripped (no hysteresis)")
	}
	if !d.tripped {
		t.Fatal("lost tripped state")
	}
	// Back inside the hysteresis band but above recover: stays tripped.
	if d.update(12, baseline, 12) || !d.tripped {
		t.Fatal("recovered above the recover band")
	}
	// Below recover: re-arms without firing.
	if d.update(10.5, baseline, 12) {
		t.Fatal("fired on recovery")
	}
	if d.tripped {
		t.Fatal("did not re-arm below the recover band")
	}
	// Re-armed: a fresh degradation fires again.
	if !d.update(16, baseline, 12) {
		t.Fatal("did not fire after re-arming")
	}

	// The absolute floor guards near-zero baselines — both when
	// tripping and when re-arming (a pure factor×baseline recovery
	// band would demand MAPE <= 0 and latch the detector forever).
	d2 := detector{cfg: DetectorConfig{MinSamples: 1}.normalized()}
	if d2.update(4, 0, 100) {
		t.Fatal("fired below the MinMAPE floor on a zero baseline")
	}
	if !d2.update(6, 0, 100) {
		t.Fatal("did not fire above the MinMAPE floor")
	}
	if d2.update(4, 0, 100) {
		t.Fatal("fired instead of recovering")
	}
	if d2.tripped {
		t.Fatal("zero-baseline detector did not re-arm below the floor")
	}
	if !d2.update(6, 0, 100) {
		t.Fatal("re-armed zero-baseline detector did not fire again")
	}
}

// driftFixture publishes a hybrid trained on the source machine and
// returns the registry, the loaded model and the target-machine
// observation stream.
func driftFixture(t *testing.T) (*registry.Registry, *registry.Model, *experiments.DriftScenario) {
	t.Helper()
	sc, err := experiments.NewDriftScenario("stencil-grid", "bluewaters", "xeon", 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := hybrid.Train(sc.Train, sc.AM, hybrid.Config{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := hy.MAPE(sc.SourceTest)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveHybrid(hy, registry.Meta{
		Name: "grid", Workload: sc.Workload, Machine: sc.SourceName,
		TrainSize: sc.Train.Len(), TestMAPE: baseline,
	}); err != nil {
		t.Fatal(err)
	}
	m, err := reg.Load("grid", 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Workers = 1
	return reg, m, sc
}

// observeStream feeds n observations from the scenario stream (starting
// at off) through the plane, scoring them with m, and returns the last
// status.
func observeStream(t *testing.T, p *Plane, m *registry.Model, sc *experiments.DriftScenario, off, n int) Status {
	t.Helper()
	var last Status
	for lo := off; lo < off+n; lo += 16 {
		hi := lo + 16
		if hi > off+n {
			hi = off + n
		}
		X := sc.Stream.X[lo:hi]
		obs := sc.Stream.Y[lo:hi]
		pred := make([]float64, len(X))
		if err := m.PredictBatchInto(context.Background(), X, pred); err != nil {
			t.Fatal(err)
		}
		st, err := p.Observe(m, X, pred, obs)
		if err != nil {
			t.Fatal(err)
		}
		last = st
	}
	return last
}

func waitRetrainDone(t *testing.T, p *Plane, m *registry.Model) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := p.Status(m)
		if !st.Retraining && st.RetrainsStarted > 0 {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("retrain did not finish: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPlaneDriftRetrainPublishImproves is the library-level closed
// loop: hardware-transfer observations trip the detector, the
// background retrain merges window + original training set, publishes
// an improved version, resets the window, and the adapted model's
// windowed accuracy on further target observations beats the pre-swap
// window.
func TestPlaneDriftRetrainPublishImproves(t *testing.T) {
	reg, m, sc := driftFixture(t)
	var published []registry.Meta
	p := New(reg, Config{
		WindowSize: 128,
		Detector:   DetectorConfig{MinSamples: 48},
		BaseData: func(meta registry.Meta) (*dataset.Dataset, error) {
			return sc.Train, nil
		},
		Seed:    7,
		Workers: 1,
	})
	defer p.Close()
	p.OnPublish = func(meta registry.Meta) { published = append(published, meta) }

	// Target-machine observations through the source-trained model:
	// the window MAPE should blow past the threshold and trip.
	st := observeStream(t, p, m, sc, 0, 64)
	if !st.Tripped && !st.Retraining && st.RetrainsStarted == 0 {
		t.Fatalf("detector did not trip on hardware-transfer drift: %+v", st)
	}
	preTrip := st.LastTripMAPE
	if preTrip <= st.ThresholdMAPE {
		t.Fatalf("trip MAPE %v not above threshold %v", preTrip, st.ThresholdMAPE)
	}

	st = waitRetrainDone(t, p, m)
	if st.RetrainsPublished != 1 {
		t.Fatalf("retrain did not publish: %+v", st)
	}
	if len(published) != 1 || published[0].Version != 2 {
		t.Fatalf("OnPublish saw %+v, want version 2", published)
	}
	if published[0].TestMAPE <= 0 {
		t.Fatalf("published meta lacks holdout MAPE: %+v", published[0])
	}
	// BaseSize pins the original training-set size across generations;
	// TrainSize records the merged set this version was fitted on.
	if published[0].BaseSize != sc.Train.Len() || published[0].TrainSize <= published[0].BaseSize {
		t.Fatalf("published sizes: base %d (want %d), train %d",
			published[0].BaseSize, sc.Train.Len(), published[0].TrainSize)
	}
	if st.Window.Count != 0 {
		t.Fatalf("window not reset on publish: %+v", st.Window)
	}
	if st.PreSwapMAPE <= 0 {
		t.Fatalf("pre-swap MAPE not recorded: %+v", st)
	}

	// Serve the published version and stream more target observations:
	// the adapted window MAPE must be measurably below the pre-swap one.
	m2, err := reg.Load("grid", 0)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Meta.Version != 2 {
		t.Fatalf("latest is v%d, want the retrained v2", m2.Meta.Version)
	}
	m2.Workers = 1
	st = observeStream(t, p, m2, sc, 64, 96)
	if st.Window.MAPE >= st.PreSwapMAPE {
		t.Fatalf("no adaptation: post-swap window MAPE %.2f%% vs pre-swap %.2f%%",
			st.Window.MAPE, st.PreSwapMAPE)
	}
	t.Logf("windowed MAPE: pre-swap %.2f%%, post-swap %.2f%% (baseline %.2f%%, published holdout %.2f%%)",
		st.PreSwapMAPE, st.Window.MAPE, m.Meta.TestMAPE, published[0].TestMAPE)
}

// TestRetrainOneInFlightPerModel holds a retrain inside its BaseData
// hook and checks the plane refuses a second one for the same model.
func TestRetrainOneInFlightPerModel(t *testing.T) {
	reg, m, sc := driftFixture(t)
	release := make(chan struct{})
	p := New(reg, Config{
		WindowSize: 128,
		Detector:   DetectorConfig{MinSamples: 16},
		BaseData: func(meta registry.Meta) (*dataset.Dataset, error) {
			<-release
			return sc.Train, nil
		},
		// Only the test's own RetrainNow calls may start retrains, or
		// the drifting window would race us to the in-flight slot.
		DisableRetrain: true,
		Seed:           7,
		Workers:        1,
	})
	defer func() {
		// Close waits on the in-flight retrain; make sure it can exit
		// even when an assertion fails before the release.
		select {
		case <-release:
		default:
			close(release)
		}
		p.Close()
	}()

	observeStream(t, p, m, sc, 0, 32)
	if err := p.RetrainNow(m); err != nil {
		t.Fatal(err)
	}
	if err := p.RetrainNow(m); !errors.Is(err, ErrRetrainInFlight) {
		t.Fatalf("second retrain got %v, want ErrRetrainInFlight", err)
	}
	close(release)
	st := waitRetrainDone(t, p, m)
	if st.RetrainsStarted != 1 {
		t.Fatalf("started %d retrains, want 1", st.RetrainsStarted)
	}
}

// TestRetrainDiscardsWhenWorse poisons the base training set so the
// retrained candidate must lose to the deployed model on the holdout —
// the plane must discard it and publish nothing.
func TestRetrainDiscardsWhenWorse(t *testing.T) {
	reg, m, sc := driftFixture(t)
	p := New(reg, Config{
		WindowSize: 128,
		Detector:   DetectorConfig{MinSamples: 16},
		BaseData: func(meta registry.Meta) (*dataset.Dataset, error) {
			// Same features, scrambled responses: any model fitted on
			// this is noise.
			bad := sc.Train.Clone()
			rng := rand.New(rand.NewSource(1))
			for i := range bad.Y {
				bad.Y[i] *= 1000 * (1 + rng.Float64())
			}
			return bad, nil
		},
		DisableRetrain: true,
		Seed:           7,
		Workers:        1,
	})
	defer p.Close()

	// Observations from the *source* distribution: the deployed model
	// is accurate here, so the poisoned retrain cannot beat it.
	X := sc.SourceTest.X[:32]
	obs := sc.SourceTest.Y[:32]
	pred := make([]float64, len(X))
	if err := m.PredictBatchInto(context.Background(), X, pred); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Observe(m, X, pred, obs); err != nil {
		t.Fatal(err)
	}
	if err := p.RetrainNow(m); err != nil {
		t.Fatal(err)
	}
	st := waitRetrainDone(t, p, m)
	if st.RetrainsDiscarded != 1 || st.RetrainsPublished != 0 {
		t.Fatalf("want 1 discarded / 0 published, got %+v", st)
	}
	if st.LastError != "" {
		t.Fatalf("discard recorded as error: %q", st.LastError)
	}
	if v, err := reg.LatestVersion("grid"); err != nil || v != 1 {
		t.Fatalf("a worse model was published: latest v%d, err %v", v, err)
	}
	if st.Window.Count == 0 {
		t.Fatal("window was reset despite no publish")
	}
}

// TestRetrainRetriesAfterDiscard: a failed adaptation must not latch
// the detector off. The first (auto-started) retrain loses on the
// holdout because its base set is poisoned; the plane re-arms the
// detector behind a MinSamples fresh-observation barrier, and once the
// drift persists past it a second retrain runs — this time with a
// clean base — and publishes.
func TestRetrainRetriesAfterDiscard(t *testing.T) {
	reg, m, sc := driftFixture(t)
	var calls atomic.Int64
	p := New(reg, Config{
		WindowSize: 128,
		Detector:   DetectorConfig{MinSamples: 16},
		BaseData: func(meta registry.Meta) (*dataset.Dataset, error) {
			if calls.Add(1) == 1 {
				bad := sc.Train.Clone()
				for i := range bad.Y {
					bad.Y[i] *= 1e6
				}
				return bad, nil
			}
			return sc.Train, nil
		},
		Seed:    7,
		Workers: 1,
	})
	defer p.Close()

	// Trip on the drifting stream; the poisoned first retrain discards.
	st := observeStream(t, p, m, sc, 0, 16)
	if st.Trips != 1 || st.RetrainsStarted != 1 {
		t.Fatalf("first trip did not start a retrain: %+v", st)
	}
	st = waitRetrainDone(t, p, m)
	if st.RetrainsDiscarded != 1 || st.RetrainsPublished != 0 {
		t.Fatalf("poisoned retrain was not discarded: %+v", st)
	}
	if st.Tripped {
		t.Fatalf("detector not re-armed after discard: %+v", st)
	}

	// Stream past the barrier: the still-degraded window must trip and
	// retrain again, and the clean base must publish this time.
	deadline := time.Now().Add(30 * time.Second)
	off := 16
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no retry within the stream: %+v", st)
		}
		st = observeStream(t, p, m, sc, off, 16)
		off += 16
		if st.RetrainsStarted >= 2 {
			break
		}
	}
	st = waitRetrainDone(t, p, m)
	if st.RetrainsPublished != 1 {
		t.Fatalf("retry did not publish: %+v", st)
	}
	if v, err := reg.LatestVersion("grid"); err != nil || v != 2 {
		t.Fatalf("latest v%d (%v), want the retried publish v2", v, err)
	}
}

// TestRetrainRegressorKind covers the non-hybrid publish path: a plain
// regressor artifact retrains from the window alone (no workload
// provenance) and publishes when it improves.
func TestRetrainRegressorKind(t *testing.T) {
	sc, err := experiments.NewDriftScenario("stencil-grid", "bluewaters", "xeon", 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	et := &ml.Pipeline{Model: ml.NewExtraTrees(25, 7)}
	if err := et.Fit(sc.Train.X, sc.Train.Y); err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveRegressor(et, registry.Meta{Name: "grid-et", TestMAPE: 10}); err != nil {
		t.Fatal(err)
	}
	m, err := reg.Load("grid-et", 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Workers = 1

	p := New(reg, Config{
		WindowSize:     256,
		Detector:       DetectorConfig{MinSamples: 32},
		DisableRetrain: true,
		Seed:           7,
		Workers:        1,
	})
	defer p.Close()
	observeStream(t, p, m, sc, 0, 192)
	if err := p.RetrainNow(m); err != nil {
		t.Fatal(err)
	}
	st := waitRetrainDone(t, p, m)
	if st.RetrainsPublished != 1 {
		t.Fatalf("regressor retrain did not publish: %+v", st)
	}
	m2, err := reg.Load("grid-et", 0)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Meta.Version != 2 || m2.Meta.Kind != registry.KindRegressor {
		t.Fatalf("published %+v", m2.Meta)
	}
	if m2.Meta.TrainSize == 0 || m2.Meta.Notes == "" {
		t.Fatalf("retrained meta lacks provenance: %+v", m2.Meta)
	}
}

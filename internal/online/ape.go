package online

import (
	"math"
	"sort"

	"lam/internal/ml"
)

// apeWindow is a bounded ring of absolute-percentage-error values for
// one served (model, version). Like window it is unsynchronised: the
// model's state lock guards it. A separate ring per version — rather
// than a version tag on the main window — keeps the retraining plane
// untouched while giving /metrics the per-version accuracy series
// (lam_served_ape{model,version}) a progressive-delivery controller
// compares across a canary and its baseline.
type apeWindow struct {
	buf   []float64
	next  int
	count int
}

func newAPEWindow(capacity int) *apeWindow {
	return &apeWindow{buf: make([]float64, capacity)}
}

func (w *apeWindow) add(ape float64) {
	w.buf[w.next] = ape
	w.next = (w.next + 1) % len(w.buf)
	if w.count < len(w.buf) {
		w.count++
	}
}

// quantiles returns the q-quantiles (0..1, nearest-rank) of the held
// values. Returns nil when empty.
func (w *apeWindow) quantiles(qs ...float64) []float64 {
	if w.count == 0 {
		return nil
	}
	vals := make([]float64, w.count)
	copy(vals, w.buf[:w.count])
	sort.Float64s(vals)
	out := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(math.Ceil(q*float64(len(vals)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(vals) {
			idx = len(vals) - 1
		}
		out[i] = vals[idx]
	}
	return out
}

// keepAPEVersions bounds the per-version rings kept per model: the
// serving fleet only ever compares a handful of live versions (the
// incumbent, a canary, and recent history); rings for long-retired
// versions would grow the scrape without informing anyone.
const keepAPEVersions = 4

// ServedAPE is one (model, version)'s served-accuracy summary: APE
// quantiles in percent over the version's recent observations.
type ServedAPE struct {
	Model   string  `json:"model"`
	Version int     `json:"version"`
	Count   int     `json:"count"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	P99     float64 `json:"p99"`
}

// ServedAPE reports every tracked (model, version)'s quantiles, sorted
// by model then version — the backing data of lam_served_ape.
func (p *Plane) ServedAPE() []ServedAPE {
	p.mu.Lock()
	type entry struct {
		name string
		st   *modelState
	}
	entries := make([]entry, 0, len(p.models))
	for name, st := range p.models {
		entries = append(entries, entry{name, st})
	}
	p.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	var out []ServedAPE
	for _, e := range entries {
		e.st.mu.Lock()
		versions := make([]int, 0, len(e.st.ape))
		for v := range e.st.ape {
			versions = append(versions, v)
		}
		sort.Ints(versions)
		for _, v := range versions {
			w := e.st.ape[v]
			if qs := w.quantiles(0.5, 0.9, 0.99); qs != nil {
				out = append(out, ServedAPE{
					Model: e.name, Version: v, Count: w.count,
					P50: qs[0], P90: qs[1], P99: qs[2],
				})
			}
		}
		e.st.mu.Unlock()
	}
	return out
}

// recordAPELocked feeds one observation's APE into the ring for the
// served version, creating the ring (and evicting the oldest version
// past keepAPEVersions) on first sight. Caller holds st.mu.
func (st *modelState) recordAPELocked(version, capacity int, observed, predicted float64) {
	if st.ape == nil {
		st.ape = make(map[int]*apeWindow)
	}
	w := st.ape[version]
	if w == nil {
		if len(st.ape) >= keepAPEVersions {
			oldest := -1
			for v := range st.ape {
				if oldest < 0 || v < oldest {
					oldest = v
				}
			}
			delete(st.ape, oldest)
		}
		w = newAPEWindow(capacity)
		st.ape[version] = w
	}
	if ape, ok := ml.APE(observed, predicted); ok {
		w.add(ape)
	}
}

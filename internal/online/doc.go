// Package online is the continuous-learning plane behind lam-serve: it
// closes the loop the paper's hardware-transfer experiment motivates
// (a deployed hybrid model collapses when the machine or workload
// distribution shifts) by ingesting ground-truth observations, tracking
// served accuracy over a sliding window, detecting drift against the
// model's registry-recorded baseline, retraining in the background on
// the merged (original + observed) data, and republishing a new
// registry version only when it measurably improves — at which point
// the serving layer hot-swaps to it.
//
// The plane is deliberately layered below HTTP: internal/serve feeds it
// from POST /observe and exposes its state at GET /models/{name}/drift,
// but the same Plane drives library-level replay (see the end-to-end
// tests and cmd/lam-replay).
//
// Contracts callers rely on:
//
//   - Ingest is bounded: each model's window is a fixed-size ring, so
//     memory does not grow with stream length, and Observe never
//     blocks on retraining.
//   - Retraining is bounded to one run in flight per model
//     (ErrRetrainInFlight reports a second on-demand request) and is
//     cancellable via Plane.Close.
//   - Publication is monotone and judged: a retrained candidate is
//     compared against the deployed model on a held-out slice of the
//     window and published — as a new, higher registry version — only
//     on improvement, so the served model never silently regresses.
//     The serving layer's hot swap (serve.Server) is likewise
//     monotone: the served version number never moves backwards.
//   - The detector has hysteresis (DegradeFactor to trip,
//     RecoverFactor to re-arm) plus MinSamples and MinMAPE guards, so
//     a handful of noisy observations cannot flap it.
package online

package online

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"lam/internal/dataset"
	"lam/internal/experiments"
	"lam/internal/hybrid"
	"lam/internal/lamerr"
	"lam/internal/machine"
	"lam/internal/ml"
	"lam/internal/registry"
	"lam/internal/telemetry"
	"lam/internal/xmath"
)

// ErrRetrainInFlight reports an on-demand retrain request for a model
// that is already retraining — the plane bounds retraining to one run
// in flight per model.
var ErrRetrainInFlight = errors.New("retrain already in flight")

// Config tunes the plane. The zero value is usable: a 512-sample
// window per model, default detector thresholds, automatic retraining
// enabled.
type Config struct {
	// WindowSize is the per-model observation ring capacity. 0 means 512.
	WindowSize int
	// Detector tunes drift detection.
	Detector DetectorConfig
	// DisableRetrain turns off automatic background retraining on
	// drift trips (ingest and detection keep running; RetrainNow still
	// works). Named negatively so the zero Config adapts.
	DisableRetrain bool
	// HoldoutFraction is the share of the window held out of retraining
	// to judge old vs. new model on fresh-distribution data. 0 means 0.25.
	HoldoutFraction float64
	// BaseData rebuilds a model's original training set for merging
	// with the window. nil means the canonical workload dataset named
	// by the model's metadata, resampled to its recorded TrainSize —
	// the same distribution, not necessarily the same rows; callers
	// that still hold the true training set should supply it here.
	// Returning (nil, nil) retrains on the window alone.
	BaseData func(meta registry.Meta) (*dataset.Dataset, error)
	// Seed drives holdout splits, base resampling and retrain model
	// seeds (derived per model version, so reruns are deterministic).
	Seed int64
	// Workers bounds retraining parallelism; <= 0 means the process
	// default.
	Workers int
}

func (c Config) normalized() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 512
	}
	c.Detector = c.Detector.normalized()
	// A window smaller than the detector's min-sample guard could
	// never trip it — the plane would silently be inert. Clamp up.
	if c.WindowSize < c.Detector.MinSamples {
		c.WindowSize = c.Detector.MinSamples
	}
	if c.HoldoutFraction <= 0 || c.HoldoutFraction >= 1 {
		c.HoldoutFraction = 0.25
	}
	return c
}

// Status is a point-in-time view of one model's adaptation state: the
// sliding window, the detector, and the retrain history. It is the
// JSON body of lam-serve's GET /models/{name}/drift.
type Status struct {
	Model string `json:"model"`
	// Version is the served version the status was taken against.
	Version int         `json:"version"`
	Window  WindowStats `json:"window"`
	// BaselineMAPE is the served model's registry-recorded test MAPE.
	BaselineMAPE float64 `json:"baseline_mape"`
	// ThresholdMAPE is the windowed MAPE that trips the detector.
	ThresholdMAPE     float64 `json:"threshold_mape"`
	Tripped           bool    `json:"tripped"`
	Retraining        bool    `json:"retraining"`
	Trips             uint64  `json:"trips"`
	RetrainsStarted   uint64  `json:"retrains_started"`
	RetrainsPublished uint64  `json:"retrains_published"`
	RetrainsDiscarded uint64  `json:"retrains_discarded"`
	// LastTripMAPE is the windowed MAPE at the most recent trip.
	LastTripMAPE float64 `json:"last_trip_mape,omitempty"`
	// PreSwapMAPE is the windowed MAPE immediately before the most
	// recent publish — compare with Window.MAPE after the swap for the
	// before/after adaptation delta.
	PreSwapMAPE float64 `json:"pre_swap_mape,omitempty"`
	// LastPublished is the metadata of the most recent version this
	// plane published for the model.
	LastPublished *registry.Meta `json:"last_published,omitempty"`
	// LastError is the most recent retrain failure, if any.
	LastError string `json:"last_error,omitempty"`
}

// Counters aggregates the plane's lifetime activity across models, for
// lam-serve's GET /metrics.
type Counters struct {
	Observations      uint64 `json:"observations"`
	Trips             uint64 `json:"trips"`
	RetrainsStarted   uint64 `json:"retrains_started"`
	RetrainsPublished uint64 `json:"retrains_published"`
	RetrainsDiscarded uint64 `json:"retrains_discarded"`
	RetrainErrors     uint64 `json:"retrain_errors"`
}

// modelState is the per-model adaptation state. mu guards every field;
// the long-running retrain itself runs outside the lock.
type modelState struct {
	mu         sync.Mutex
	window     *window
	det        detector
	retraining bool
	// paused suppresses detector-triggered retrains while a rollout is
	// evaluating a candidate: publishing a second new version mid-canary
	// would invalidate the comparison window. Set via SetRetrainPaused.
	paused bool
	// ape holds one APE ring per served version (at most
	// keepAPEVersions), the backing data of lam_served_ape.
	ape map[int]*apeWindow

	trips, started, published, discarded, errs uint64
	lastTripMAPE                               float64
	preSwapMAPE                                float64
	lastPublished                              *registry.Meta
	lastError                                  string

	// retrainBarrier silences the detector until the window's lifetime
	// total reaches it: set after a discarded or failed retrain, so the
	// re-armed detector cannot re-trip (and re-retrain) until MinSamples
	// fresh observations have arrived. Without it a failed attempt would
	// either latch the detector tripped forever (no retry) or retry on
	// every batch (a retrain storm).
	retrainBarrier uint64
}

// Plane is the online adaptation coordinator: one ingest window and
// drift detector per model name, plus the background retrainer. All
// methods are safe for concurrent use.
type Plane struct {
	cfg Config
	reg *registry.Registry

	// OnPublish, if set, is called (outside any plane lock) after a
	// retrained version is published — internal/serve hooks its hot
	// swap here. Set it before the first Observe.
	OnPublish func(meta registry.Meta)
	// Tracer, if set, records each background retrain as a trace
	// (spans: fit, judge, publish) in the process's /trace/recent ring.
	// serve.AttachOnline defaults it to the server's recorder.
	Tracer *telemetry.Recorder
	// Log, if set, receives retrain outcomes as structured log lines.
	Log *slog.Logger

	mu     sync.Mutex
	models map[string]*modelState
	// closed (guarded by mu) refuses new retrain spawns once Close has
	// begun, so wg.Add can never race wg.Wait.
	closed bool

	observations atomic.Uint64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New returns a plane that retrains into (and republishes through) reg.
func New(reg *registry.Registry, cfg Config) *Plane {
	ctx, cancel := context.WithCancel(context.Background())
	return &Plane{
		cfg:    cfg.normalized(),
		reg:    reg,
		models: make(map[string]*modelState),
		ctx:    ctx,
		cancel: cancel,
	}
}

// Close cancels in-flight retrains and waits for them to exit.
// Concurrent Observe/RetrainNow calls remain safe: once Close has
// begun they can no longer spawn a retrain (the trip still registers;
// a fresh plane would pick it up).
func (p *Plane) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cancel()
	p.wg.Wait()
}

func (p *Plane) state(name string) *modelState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.models[name]
	if st == nil {
		st = &modelState{
			window: newWindow(p.cfg.WindowSize),
			det:    detector{cfg: p.cfg.Detector},
		}
		p.models[name] = st
	}
	return st
}

// Observe ingests ground-truth observations for the served model m:
// X[i] was scored as predicted[i] and then measured as observed[i].
// It updates the model's sliding window and drift detector and — when
// the detector fires and retraining is enabled — kicks off a
// background retrain (at most one in flight per model). The returned
// Status reflects the state after ingest.
func (p *Plane) Observe(m *registry.Model, X [][]float64, predicted, observed []float64) (Status, error) {
	if len(X) != len(predicted) || len(X) != len(observed) {
		return Status{}, fmt.Errorf("online: %w: %d rows, %d predictions, %d observations",
			lamerr.ErrDimension, len(X), len(predicted), len(observed))
	}
	// A single non-finite value would poison the window's rolling MAPE
	// (and with it the detector and every JSON status) for up to
	// WindowSize samples; refuse the whole batch instead.
	for i := range X {
		if math.IsNaN(predicted[i]) || math.IsInf(predicted[i], 0) ||
			math.IsNaN(observed[i]) || math.IsInf(observed[i], 0) {
			return Status{}, fmt.Errorf("online: %w: sample %d is not finite (predicted %v, observed %v)",
				lamerr.ErrBadRequest, i, predicted[i], observed[i])
		}
	}
	st := p.state(m.Meta.Name)
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := range X {
		st.window.add(Sample{X: X[i], Predicted: predicted[i], Observed: observed[i]})
		st.recordAPELocked(m.Meta.Version, p.cfg.WindowSize, observed[i], predicted[i])
	}
	p.observations.Add(uint64(len(X)))
	ws := st.window.stats()
	if ws.Total >= st.retrainBarrier {
		if fired := st.det.update(ws.MAPE, m.Meta.TestMAPE, ws.Count); fired {
			st.trips++
			st.lastTripMAPE = ws.MAPE
			if !p.cfg.DisableRetrain && !st.paused {
				p.startRetrainLocked(st, m)
			}
		}
	}
	return p.statusLocked(st, m, ws), nil
}

// SetRetrainPaused suppresses (or re-enables) detector-triggered
// retrains for name. The rollout controller pauses the plane while a
// candidate is under evaluation and resumes it after promotion or
// rollback; observations keep flowing into the window either way.
func (p *Plane) SetRetrainPaused(name string, paused bool) {
	st := p.state(name)
	st.mu.Lock()
	st.paused = paused
	st.mu.Unlock()
}

// ResetWindow clears name's observation window and re-arms its drift
// detector. Called after a rollout resolves: the window mixed the
// incumbent's predictions with rollout-era traffic, and judging the
// post-rollout model on it would double-count drift that has already
// been acted on.
func (p *Plane) ResetWindow(name string) {
	st := p.state(name)
	st.mu.Lock()
	st.window.reset()
	st.det.reset()
	st.mu.Unlock()
}

// Status reports the adaptation state of the served model m.
func (p *Plane) Status(m *registry.Model) Status {
	st := p.state(m.Meta.Name)
	st.mu.Lock()
	defer st.mu.Unlock()
	return p.statusLocked(st, m, st.window.stats())
}

func (p *Plane) statusLocked(st *modelState, m *registry.Model, ws WindowStats) Status {
	return Status{
		Model:             m.Meta.Name,
		Version:           m.Meta.Version,
		Window:            ws,
		BaselineMAPE:      m.Meta.TestMAPE,
		ThresholdMAPE:     p.cfg.Detector.threshold(m.Meta.TestMAPE),
		Tripped:           st.det.tripped,
		Retraining:        st.retraining,
		Trips:             st.trips,
		RetrainsStarted:   st.started,
		RetrainsPublished: st.published,
		RetrainsDiscarded: st.discarded,
		LastTripMAPE:      st.lastTripMAPE,
		PreSwapMAPE:       st.preSwapMAPE,
		LastPublished:     st.lastPublished,
		LastError:         st.lastError,
	}
}

// Counters aggregates lifetime activity across every model.
func (p *Plane) Counters() Counters {
	c := Counters{Observations: p.observations.Load()}
	p.mu.Lock()
	states := make([]*modelState, 0, len(p.models))
	for _, st := range p.models {
		states = append(states, st)
	}
	p.mu.Unlock()
	for _, st := range states {
		st.mu.Lock()
		c.Trips += st.trips
		c.RetrainsStarted += st.started
		c.RetrainsPublished += st.published
		c.RetrainsDiscarded += st.discarded
		c.RetrainErrors += st.errs
		st.mu.Unlock()
	}
	return c
}

// RetrainNow starts a background retrain of the served model m without
// waiting for the detector (the "on demand" path). It returns
// ErrRetrainInFlight if one is already running for the model, and an
// error (not a silent no-op) if the plane has been closed.
func (p *Plane) RetrainNow(m *registry.Model) error {
	st := p.state(m.Meta.Name)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.retraining {
		return fmt.Errorf("online: %s: %w", m.Meta.Name, ErrRetrainInFlight)
	}
	if !p.startRetrainLocked(st, m) {
		return fmt.Errorf("online: %s: plane is closed", m.Meta.Name)
	}
	return nil
}

// startRetrainLocked marks the model retraining and spawns the
// background run, reporting whether it did (false once the plane is
// closed or a run is already in flight). Caller holds st.mu; the
// retraining flag is what bounds the plane to one retrain in flight
// per model. The wg.Add happens under p.mu against the closed flag
// (p.mu nests inside st.mu here; nothing takes them in the other
// order), so a concurrent Close can never see Add racing its Wait.
func (p *Plane) startRetrainLocked(st *modelState, m *registry.Model) bool {
	if st.retraining {
		return false
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	p.wg.Add(1)
	p.mu.Unlock()
	st.retraining = true
	st.started++
	go p.retrain(st, m)
	return true
}

// retrain runs one background retraining attempt and records its
// outcome. Cancellation (plane Close) is silent; real failures land in
// the model's LastError. A discarded or failed attempt re-arms the
// detector behind a fresh-observation barrier, so adaptation retries
// once MinSamples new samples have arrived instead of latching off —
// by then the window is also fuller than at the failed attempt.
func (p *Plane) retrain(st *modelState, old *registry.Model) {
	defer p.wg.Done()
	tr := p.Tracer.Start("retrain")
	tr.SetModel(old.Meta.Name, old.Meta.Version)
	ctx := telemetry.WithTrace(p.ctx, tr)
	published, err := p.retrainOnce(ctx, st, old)
	p.Tracer.Finish(tr)
	if p.Log != nil {
		switch {
		case err != nil && errors.Is(err, lamerr.ErrCancelled):
			// Shutdown, not an outcome.
		case err != nil:
			p.Log.Warn("retrain failed", "model", old.Meta.Name, "version", old.Meta.Version,
				"trace_id", tr.ID().String(), "error", err)
		case published:
			p.Log.Info("retrain published", "model", old.Meta.Name, "from_version", old.Meta.Version,
				"trace_id", tr.ID().String())
		default:
			p.Log.Info("retrain discarded", "model", old.Meta.Name, "version", old.Meta.Version,
				"trace_id", tr.ID().String())
		}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.retraining = false
	if err != nil && errors.Is(err, lamerr.ErrCancelled) {
		return
	}
	if err != nil {
		st.errs++
		st.lastError = err.Error()
	}
	if !published {
		st.det.reset()
		st.retrainBarrier = st.window.total + uint64(p.cfg.Detector.MinSamples)
	}
}

// retrainOnce merges the observation window with the model's original
// training set, fits a replacement in the background, judges old vs.
// new on a held-out slice of the window, and publishes the new version
// only if it improves.
func (p *Plane) retrainOnce(ctx context.Context, st *modelState, old *registry.Model) (published bool, err error) {
	st.mu.Lock()
	samples := st.window.snapshot()
	st.mu.Unlock()
	if len(samples) < p.cfg.Detector.MinSamples {
		return false, fmt.Errorf("online: %s: window holds %d samples, need %d to retrain",
			old.Meta.Name, len(samples), p.cfg.Detector.MinSamples)
	}

	// Deterministic per-(seed, version) randomness: reruns of the same
	// publish sequence split and fit identically.
	seed := int64(xmath.Hash64(uint64(p.cfg.Seed), uint64(old.Meta.Version)))
	rng := rand.New(rand.NewSource(seed))

	// Hold out a slice of the window — fresh-distribution data — to
	// judge both models on; train on the rest plus the original set.
	holdN := int(p.cfg.HoldoutFraction*float64(len(samples)) + 0.5)
	if holdN < 1 {
		holdN = 1
	}
	if holdN >= len(samples) {
		holdN = len(samples) - 1
	}
	perm := rng.Perm(len(samples))
	holdX := make([][]float64, holdN)
	holdY := make([]float64, holdN)
	for i, j := range perm[:holdN] {
		holdX[i] = samples[j].X
		holdY[i] = samples[j].Observed
	}

	// The base size is the *original* (pre-adaptation) training-set
	// size, carried across generations: resampling at the previous
	// retrain's merged TrainSize would grow the source-distribution
	// draw every generation and drown the window out.
	baseSize := old.Meta.BaseSize
	if baseSize == 0 {
		baseSize = old.Meta.TrainSize
	}
	merged, err := p.baseFor(old.Meta, baseSize, rng, len(samples[0].X))
	if err != nil {
		return false, err
	}
	for _, j := range perm[holdN:] {
		if err := merged.Add(samples[j].X, samples[j].Observed); err != nil {
			return false, fmt.Errorf("online: merging window into training set: %w", err)
		}
	}

	jsp := telemetry.StartSpan(ctx, "judge")
	oldMAPE, err := modelMAPE(ctx, old, holdX, holdY)
	jsp.End()
	if err != nil {
		return false, err
	}

	meta := old.Meta
	meta.TrainSize = merged.Len()
	meta.BaseSize = baseSize
	var publish func() (registry.Meta, error)
	var newMAPE float64
	// The fit span covers training the candidate and judging it on the
	// holdout; it ends only on the success path — an error abandons the
	// whole trace's usefulness anyway.
	fsp := telemetry.StartSpan(ctx, "fit")
	switch old.Meta.Kind {
	case registry.KindHybrid:
		am, err := registry.AnalyticalFor(old.Meta)
		if err != nil {
			return false, err
		}
		cfg := old.Hybrid().Config()
		cfg.Seed = seed
		cfg.Workers = p.cfg.Workers
		hy, err := hybrid.TrainCtx(ctx, merged, am, cfg)
		if err != nil {
			return false, err
		}
		if newMAPE, err = hybridMAPE(ctx, hy, holdX, holdY); err != nil {
			return false, err
		}
		publish = func() (registry.Meta, error) { return p.reg.SaveHybrid(hy, meta) }
	case registry.KindRegressor:
		et := ml.NewExtraTrees(100, seed)
		et.Workers = p.cfg.Workers
		reg := &ml.Pipeline{Model: et}
		if err := reg.FitCtx(ctx, merged.X, merged.Y); err != nil {
			return false, err
		}
		if newMAPE, err = regressorMAPE(ctx, reg, holdX, holdY); err != nil {
			return false, err
		}
		publish = func() (registry.Meta, error) { return p.reg.SaveRegressor(reg, meta) }
	default:
		return false, fmt.Errorf("online: cannot retrain kind %q", old.Meta.Kind)
	}
	fsp.End()

	if newMAPE >= oldMAPE {
		st.mu.Lock()
		st.discarded++
		st.mu.Unlock()
		return false, nil
	}
	meta.TestMAPE = newMAPE
	meta.Notes = fmt.Sprintf("online retrain of v%d: %d window + %d base samples, holdout MAPE %.2f%% (was %.2f%%)",
		old.Meta.Version, len(samples)-holdN, meta.TrainSize-(len(samples)-holdN), newMAPE, oldMAPE)
	psp := telemetry.StartSpan(ctx, "publish")
	newMeta, err := publish()
	psp.End()
	if err != nil {
		return false, err
	}

	st.mu.Lock()
	st.published++
	st.preSwapMAPE = st.window.stats().MAPE
	st.lastPublished = &newMeta
	st.lastError = ""
	// Measure the swapped-in model from scratch: stale window entries
	// are the old model's errors, not the new one's.
	st.window.reset()
	st.det.reset()
	st.mu.Unlock()

	if p.OnPublish != nil {
		p.OnPublish(newMeta)
	}
	return true, nil
}

// baseFor rebuilds the model's original training set (or the
// configured substitute), resampled to baseSize rows on the default
// path. A nil dataset from the hook — or metadata with no workload
// provenance — yields an empty set with synthesised feature names: the
// retrain then uses the window alone.
func (p *Plane) baseFor(meta registry.Meta, baseSize int, rng *rand.Rand, arity int) (*dataset.Dataset, error) {
	var base *dataset.Dataset
	if p.cfg.BaseData != nil {
		b, err := p.cfg.BaseData(meta)
		if err != nil {
			return nil, fmt.Errorf("online: rebuilding base training set: %w", err)
		}
		base = b
	} else if meta.Workload != "" && meta.Machine != "" {
		m, ok := machine.Presets()[meta.Machine]
		if !ok {
			return nil, fmt.Errorf("online: %w: %q", lamerr.ErrUnknownMachine, meta.Machine)
		}
		ds, err := experiments.DatasetByName(meta.Workload, m, uint64(p.cfg.Seed))
		if err != nil {
			return nil, err
		}
		if baseSize > 0 && baseSize < ds.Len() {
			sub, _, err := ds.SampleN(baseSize, rng)
			if err != nil {
				return nil, err
			}
			ds = sub
		}
		base = ds
	}
	if base == nil {
		names := make([]string, arity)
		for i := range names {
			names[i] = fmt.Sprintf("f%d", i)
		}
		return dataset.New(names...), nil
	}
	return base.Clone(), nil
}

func modelMAPE(ctx context.Context, m *registry.Model, X [][]float64, y []float64) (float64, error) {
	buf := ml.GetScratch(len(X))
	defer ml.PutScratch(buf)
	if err := m.PredictBatchInto(ctx, X, *buf); err != nil {
		return 0, err
	}
	return ml.MAPE(y, *buf), nil
}

func hybridMAPE(ctx context.Context, m *hybrid.Model, X [][]float64, y []float64) (float64, error) {
	buf := ml.GetScratch(len(X))
	defer ml.PutScratch(buf)
	if err := m.PredictBatchIntoCtx(ctx, X, *buf); err != nil {
		return 0, err
	}
	return ml.MAPE(y, *buf), nil
}

func regressorMAPE(ctx context.Context, r ml.Regressor, X [][]float64, y []float64) (float64, error) {
	buf := ml.GetScratch(len(X))
	defer ml.PutScratch(buf)
	if err := ml.PredictBatchIntoCtx(ctx, r, X, *buf, 1); err != nil {
		return 0, err
	}
	return ml.MAPE(y, *buf), nil
}

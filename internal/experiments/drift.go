package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"lam/internal/dataset"
	"lam/internal/hybrid"
	"lam/internal/lamerr"
	"lam/internal/machine"
	"lam/internal/parallel"
)

// Drift injection reuses the hardware-transfer ingredients (see
// HardwareTransferCtx) in streaming form: a model is trained on the
// source machine's data, deployed, and then fed the *target* machine's
// measurements one batch at a time — the production analogue of the
// paper's concluding hardware-change scenario, and the workload the
// online adaptation plane (internal/online) is built to absorb. This
// package only prepares the data; replaying it through an ingest
// window, drift detector and retrainer is internal/online's job (over
// HTTP: lam-serve -online plus cmd/lam-replay).

// DriftScenario bundles the ingredients of one drift-injection run.
type DriftScenario struct {
	// Workload is the canonical dataset name (DatasetByName).
	Workload string
	// SourceName and TargetName are machine preset keys
	// (machine.Presets), as recorded in registry metadata.
	SourceName, TargetName string
	// Train is the source-machine training sample — what the deployed
	// model was fitted on, and the "original training set" the online
	// retrainer merges fresh observations into.
	Train *dataset.Dataset
	// SourceTest is the source-machine complement of Train: the
	// held-out set whose MAPE becomes the registry-recorded baseline
	// the drift detector compares the live window against.
	SourceTest *dataset.Dataset
	// Stream is the full target-machine dataset in shuffled order —
	// the observation stream that injects the drift.
	Stream *dataset.Dataset
	// AM is the source machine's analytical model: the component a
	// registry load rebuilds for the deployed hybrid artifact.
	AM hybrid.AnalyticalModel
}

// DriftScenario builds the drift-injection data: the source machine's
// dataset split into a training sample (trainFrac, the paper's small-
// budget regime; 0 means 2%) and held-out baseline, plus the target
// machine's full dataset shuffled into an observation stream. Source
// and target are machine preset keys; the same workload and seed are
// used on both machines, so the feature grid is identical and only the
// response distribution shifts — a pure concept drift.
func NewDriftScenario(workload, source, target string, trainFrac float64, seed int64) (*DriftScenario, error) {
	return DriftScenarioCtx(context.Background(), workload, source, target, trainFrac, seed)
}

// DriftScenarioCtx is NewDriftScenario with cancellation checks between
// the two dataset builds (each is a full simulator sweep).
func DriftScenarioCtx(ctx context.Context, workload, source, target string, trainFrac float64, seed int64) (*DriftScenario, error) {
	presets := machine.Presets()
	src, ok := presets[source]
	if !ok {
		return nil, fmt.Errorf("experiments: %w: %q", lamerr.ErrUnknownMachine, source)
	}
	tgt, ok := presets[target]
	if !ok {
		return nil, fmt.Errorf("experiments: %w: %q", lamerr.ErrUnknownMachine, target)
	}
	if trainFrac <= 0 {
		trainFrac = 0.02
	}
	if trainFrac > 1 {
		return nil, fmt.Errorf("experiments: drift training fraction %v out of (0,1]", trainFrac)
	}
	srcDS, err := DatasetByName(workload, src, uint64(seed))
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, parallel.Cancelled(err)
		}
	}
	tgtDS, err := DatasetByName(workload, tgt, uint64(seed))
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, parallel.Cancelled(err)
		}
	}
	am, err := AMByDataset(workload, src)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	train, test, err := srcDS.SampleFraction(trainFrac, rng)
	if err != nil {
		return nil, err
	}
	return &DriftScenario{
		Workload:   workload,
		SourceName: source,
		TargetName: target,
		Train:      train,
		SourceTest: test,
		Stream:     tgtDS.Subset(rng.Perm(tgtDS.Len())),
		AM:         am,
	}, nil
}

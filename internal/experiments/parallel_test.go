package experiments

import (
	"reflect"
	"testing"

	"lam/internal/machine"
)

// smallOpts keeps the parallel-determinism sweeps fast.
func smallOpts(workers int) Options {
	return Options{
		Machine: machine.BlueWatersXE6(),
		Seed:    21,
		Reps:    2,
		Trees:   10,
		Workers: workers,
	}
}

// TestMAPECurveParallelBitIdentical asserts the tentpole guarantee at
// the sweep level: the same curve comes out whether trials run on one
// worker or many.
func TestMAPECurveParallelBitIdentical(t *testing.T) {
	o := smallOpts(1)
	ds, err := StencilGridDataset(NewStencilSim(o.Machine, uint64(o.Seed)))
	if err != nil {
		t.Fatal(err)
	}
	newModel := MLTrainable(DefaultPipeline("et", o.Trees))
	fractions := []float64{0.05, 0.10}

	seq, err := MAPECurveWorkers(ds, newModel, fractions, 3, o.Seed, "et", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := MAPECurveWorkers(ds, newModel, fractions, 3, o.Seed, "et", workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: series differs from sequential:\nseq: %+v\npar: %+v", workers, seq, par)
		}
	}
}

// TestFigureParallelBitIdentical runs one full figure sequentially and
// in parallel and requires identical reports.
func TestFigureParallelBitIdentical(t *testing.T) {
	seq, err := Fig5(smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig5(smallOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("fig5 differs between worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestRunManyMatchesRun checks the batched figure API returns exactly
// what per-figure calls return, in input order.
func TestRunManyMatchesRun(t *testing.T) {
	ids := []string{"fig5", "fig6"}
	opts := smallOpts(4)
	batch, err := RunMany(ids, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(ids) {
		t.Fatalf("RunMany returned %d reports, want %d", len(batch), len(ids))
	}
	for i, id := range ids {
		single, err := Run(id, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(single, batch[i]) {
			t.Fatalf("RunMany[%d] (%s) differs from Run", i, id)
		}
	}
}

// TestNoiseSensitivityParallelBitIdentical covers the extension sweep's
// per-level fan-out.
func TestNoiseSensitivityParallelBitIdentical(t *testing.T) {
	levels := []float64{0.02, 0.08}
	seq, err := NoiseSensitivity(smallOpts(1), levels)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NoiseSensitivity(smallOpts(8), levels)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("noise sweep differs between worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
}

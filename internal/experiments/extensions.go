package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"lam/internal/hybrid"
	"lam/internal/machine"
	"lam/internal/perfsim"
)

// Extension experiments beyond the paper's figure set: a measurement-
// noise sensitivity sweep (how robust is the hybrid advantage to run-
// to-run variance?) and the hardware-transfer experiment the paper's
// conclusion motivates but does not plot.

// NoiseSensitivity re-runs the Fig. 6 comparison (blocking dataset, 2%
// training) at several simulator noise levels and reports one series
// per model across noise levels (the Fractions field carries the noise
// level instead of a training fraction).
func NoiseSensitivity(opts Options, noiseLevels []float64) (*Report, error) {
	o := opts.normalized()
	if len(noiseLevels) == 0 {
		noiseLevels = []float64{0.01, 0.035, 0.08, 0.15}
	}
	r := &Report{
		ID:    "ext-noise",
		Title: "hybrid vs pure ML under increasing measurement noise (blocking dataset, 2% training)",
	}
	et := Series{Label: "Extra Trees (pure ML)", Reps: o.Reps}
	hy := Series{Label: "Hybrid Model", Reps: o.Reps}
	am := Series{Label: "Analytical Model alone", Reps: 1}
	for _, nl := range noiseLevels {
		sim := &perfsim.StencilSim{Machine: o.Machine, Seed: uint64(o.Seed), NoiseLevel: nl}
		ds, err := StencilBlockingDataset(sim)
		if err != nil {
			return nil, err
		}
		r.DatasetSize = ds.Len()
		amModel := StencilBlockingAM(o.Machine)

		etc, err := MAPECurve(ds, MLTrainable(DefaultPipeline("et", o.Trees)),
			[]float64{0.02}, o.Reps, o.Seed, "et")
		if err != nil {
			return nil, err
		}
		hyc, err := MAPECurve(ds, HybridTrainable(amModel, hybrid.Config{}),
			[]float64{0.02}, o.Reps, o.Seed, "hy")
		if err != nil {
			return nil, err
		}
		amMAPE, err := hybrid.AnalyticalMAPE(ds, amModel)
		if err != nil {
			return nil, err
		}
		et.Fractions = append(et.Fractions, nl)
		et.MeanMAPE = append(et.MeanMAPE, etc.MeanMAPE[0])
		et.StdMAPE = append(et.StdMAPE, etc.StdMAPE[0])
		et.MedianMAPE = append(et.MedianMAPE, etc.MedianMAPE[0])
		hy.Fractions = append(hy.Fractions, nl)
		hy.MeanMAPE = append(hy.MeanMAPE, hyc.MeanMAPE[0])
		hy.StdMAPE = append(hy.StdMAPE, hyc.StdMAPE[0])
		hy.MedianMAPE = append(hy.MedianMAPE, hyc.MedianMAPE[0])
		am.Fractions = append(am.Fractions, nl)
		am.MeanMAPE = append(am.MeanMAPE, amMAPE)
		am.StdMAPE = append(am.StdMAPE, 0)
		am.MedianMAPE = append(am.MedianMAPE, amMAPE)
	}
	r.Notes = append(r.Notes, "x axis is the simulator noise level σ, not a training fraction")
	r.Series = []Series{et, hy, am}
	return r, nil
}

// HardwareTransfer runs the paper's concluding scenario: a model must
// become accurate on a new machine from a small re-measurement budget.
// It reports hybrid vs pure ML on the target machine's blocking
// dataset across budgets.
func HardwareTransfer(opts Options, target *machine.Machine, budgets []float64) (*Report, error) {
	o := opts.normalized()
	if target == nil {
		target = machine.GenericXeon()
	}
	if len(budgets) == 0 {
		budgets = []float64{0.01, 0.02, 0.04}
	}
	ds, err := StencilBlockingDataset(NewStencilSim(target, uint64(o.Seed)))
	if err != nil {
		return nil, err
	}
	am := StencilBlockingAM(target)
	r := &Report{
		ID:          "ext-transfer",
		Title:       fmt.Sprintf("hardware change %s -> %s: accuracy per re-measurement budget", o.Machine.Name, target.Name),
		DatasetSize: ds.Len(),
	}
	amMAPE, err := hybrid.AnalyticalMAPE(ds, am)
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes, fmt.Sprintf("target-machine analytical model (from spec sheet, no data): MAPE = %.1f%%", amMAPE))

	et, err := MAPECurve(ds, MLTrainable(DefaultPipeline("et", o.Trees)), budgets, o.Reps, o.Seed, "Extra Trees (pure ML)")
	if err != nil {
		return nil, err
	}
	hy, err := MAPECurve(ds, HybridTrainable(am, hybrid.Config{}), budgets, o.Reps, o.Seed, "Hybrid Model")
	if err != nil {
		return nil, err
	}
	r.Series = []Series{et, hy}
	return r, nil
}

// WriteSeriesCSV exports a report's series in long form
// (series,fraction,mean,std,median) for external plotting.
func (r *Report) WriteSeriesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "fraction", "mean_mape", "std_mape", "median_mape"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, s := range r.Series {
		for i := range s.Fractions {
			rec := []string{s.Label, f(s.Fractions[i]), f(s.MeanMAPE[i]), f(s.StdMAPE[i]), f(s.MedianMAPE[i])}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

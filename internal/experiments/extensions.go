package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"lam/internal/hybrid"
	"lam/internal/machine"
	"lam/internal/parallel"
	"lam/internal/perfsim"
)

// Extension experiments beyond the paper's figure set: a measurement-
// noise sensitivity sweep (how robust is the hybrid advantage to run-
// to-run variance?) and the hardware-transfer experiment the paper's
// conclusion motivates but does not plot.

// NoiseSensitivity re-runs the Fig. 6 comparison (blocking dataset, 2%
// training) at several simulator noise levels and reports one series
// per model across noise levels (the Fractions field carries the noise
// level instead of a training fraction).
func NoiseSensitivity(opts Options, noiseLevels []float64) (*Report, error) {
	return NoiseSensitivityCtx(context.Background(), opts, noiseLevels)
}

// NoiseSensitivityCtx is NoiseSensitivity with prompt cancellation
// between noise levels and between the trials inside each level.
func NoiseSensitivityCtx(ctx context.Context, opts Options, noiseLevels []float64) (*Report, error) {
	o := opts.normalized()
	if len(noiseLevels) == 0 {
		noiseLevels = []float64{0.01, 0.035, 0.08, 0.15}
	}
	r := &Report{
		ID:    "ext-noise",
		Title: "hybrid vs pure ML under increasing measurement noise (blocking dataset, 2% training)",
	}
	et := Series{Label: "Extra Trees (pure ML)", Reps: o.Reps}
	hy := Series{Label: "Hybrid Model", Reps: o.Reps}
	am := Series{Label: "Analytical Model alone", Reps: 1}
	// Each noise level builds its own simulator and dataset, so the
	// levels are fully independent; run them on the worker pool and
	// assemble the series in level order afterwards.
	type levelResult struct {
		etc, hyc Series
		amMAPE   float64
		size     int
	}
	results, err := parallel.MapCtx(ctx, len(noiseLevels), o.Workers, func(li int) (levelResult, error) {
		nl := noiseLevels[li]
		sim := &perfsim.StencilSim{Machine: o.Machine, Seed: uint64(o.Seed), NoiseLevel: nl}
		ds, err := StencilBlockingDataset(sim)
		if err != nil {
			return levelResult{}, err
		}
		amModel := StencilBlockingAM(o.Machine)

		etc, err := MAPECurveCtx(ctx, ds, MLTrainable(DefaultPipeline("et", o.Trees)),
			[]float64{0.02}, o.Reps, o.Seed, "et", o.Workers)
		if err != nil {
			return levelResult{}, err
		}
		hyc, err := MAPECurveCtx(ctx, ds, HybridTrainable(amModel, hybrid.Config{Workers: o.Workers}),
			[]float64{0.02}, o.Reps, o.Seed, "hy", o.Workers)
		if err != nil {
			return levelResult{}, err
		}
		amMAPE, err := hybrid.AnalyticalMAPECtx(ctx, ds, amModel)
		if err != nil {
			return levelResult{}, err
		}
		return levelResult{etc: etc, hyc: hyc, amMAPE: amMAPE, size: ds.Len()}, nil
	})
	if err != nil {
		return nil, err
	}
	for li, res := range results {
		nl := noiseLevels[li]
		r.DatasetSize = res.size
		et.Fractions = append(et.Fractions, nl)
		et.MeanMAPE = append(et.MeanMAPE, res.etc.MeanMAPE[0])
		et.StdMAPE = append(et.StdMAPE, res.etc.StdMAPE[0])
		et.MedianMAPE = append(et.MedianMAPE, res.etc.MedianMAPE[0])
		hy.Fractions = append(hy.Fractions, nl)
		hy.MeanMAPE = append(hy.MeanMAPE, res.hyc.MeanMAPE[0])
		hy.StdMAPE = append(hy.StdMAPE, res.hyc.StdMAPE[0])
		hy.MedianMAPE = append(hy.MedianMAPE, res.hyc.MedianMAPE[0])
		am.Fractions = append(am.Fractions, nl)
		am.MeanMAPE = append(am.MeanMAPE, res.amMAPE)
		am.StdMAPE = append(am.StdMAPE, 0)
		am.MedianMAPE = append(am.MedianMAPE, res.amMAPE)
	}
	r.Notes = append(r.Notes, "x axis is the simulator noise level σ, not a training fraction")
	r.Series = []Series{et, hy, am}
	return r, nil
}

// HardwareTransfer runs the paper's concluding scenario: a model must
// become accurate on a new machine from a small re-measurement budget.
// It reports hybrid vs pure ML on the target machine's blocking
// dataset across budgets.
func HardwareTransfer(opts Options, target *machine.Machine, budgets []float64) (*Report, error) {
	return HardwareTransferCtx(context.Background(), opts, target, budgets)
}

// HardwareTransferCtx is HardwareTransfer with prompt cancellation
// between trials.
func HardwareTransferCtx(ctx context.Context, opts Options, target *machine.Machine, budgets []float64) (*Report, error) {
	o := opts.normalized()
	if target == nil {
		target = machine.GenericXeon()
	}
	if len(budgets) == 0 {
		budgets = []float64{0.01, 0.02, 0.04}
	}
	ds, err := StencilBlockingDataset(NewStencilSim(target, uint64(o.Seed)))
	if err != nil {
		return nil, err
	}
	am := StencilBlockingAM(target)
	r := &Report{
		ID:          "ext-transfer",
		Title:       fmt.Sprintf("hardware change %s -> %s: accuracy per re-measurement budget", o.Machine.Name, target.Name),
		DatasetSize: ds.Len(),
	}
	amMAPE, err := hybrid.AnalyticalMAPECtx(ctx, ds, am)
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes, fmt.Sprintf("target-machine analytical model (from spec sheet, no data): MAPE = %.1f%%", amMAPE))

	et, err := MAPECurveCtx(ctx, ds, MLTrainable(DefaultPipeline("et", o.Trees)), budgets, o.Reps, o.Seed, "Extra Trees (pure ML)", o.Workers)
	if err != nil {
		return nil, err
	}
	hy, err := MAPECurveCtx(ctx, ds, HybridTrainable(am, hybrid.Config{Workers: o.Workers}), budgets, o.Reps, o.Seed, "Hybrid Model", o.Workers)
	if err != nil {
		return nil, err
	}
	r.Series = []Series{et, hy}
	return r, nil
}

// WriteSeriesCSV exports a report's series in long form
// (series,fraction,mean,std,median) for external plotting.
func (r *Report) WriteSeriesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "fraction", "mean_mape", "std_mape", "median_mape"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, s := range r.Series {
		for i := range s.Fractions {
			rec := []string{s.Label, f(s.Fractions[i]), f(s.MeanMAPE[i]), f(s.StdMAPE[i]), f(s.MedianMAPE[i])}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

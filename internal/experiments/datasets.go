// Package experiments regenerates every figure of the paper's
// evaluation (Figs. 3, 5, 6, 7, 8): it builds the per-figure datasets
// from the ground-truth performance simulators, adapts the analytical
// models to each dataset's feature layout, sweeps training-set
// fractions with repeated resampling, and renders the resulting
// MAPE-vs-training-size series.
package experiments

import (
	"fmt"

	"lam/internal/dataset"
	"lam/internal/lamerr"
	"lam/internal/machine"
	"lam/internal/perfsim"
)

// blockSizes returns the block-size candidates for a dimension of
// extent d: powers of two up to d, plus d itself (the "1×1×1 … I×J×K"
// sweep of Section V restricted to the sizes autotuners actually try).
func blockSizes(d int) []int {
	var out []int
	for b := 1; b < d; b *= 2 {
		out = append(out, b)
	}
	out = append(out, d)
	return out
}

// StencilGridDataset builds the Fig. 5 dataset: cubic-ish grids only,
// X = (I, J, K) with I×J×K in {128…256}³ on a 16-point stride, serial,
// unblocked — the region the analytical model covers accurately.
func StencilGridDataset(sim *perfsim.StencilSim) (*dataset.Dataset, error) {
	ds := dataset.New("I", "J", "K")
	for i := 128; i <= 256; i += 16 {
		for j := 128; j <= 256; j += 16 {
			for k := 128; k <= 256; k += 16 {
				y, err := sim.Measure(perfsim.StencilWorkload{I: i, J: j, K: k})
				if err != nil {
					return nil, err
				}
				ds.MustAdd([]float64{float64(i), float64(j), float64(k)}, y)
			}
		}
	}
	return ds, nil
}

// StencilBlockingDataset builds the Fig. 3A / Fig. 6 dataset:
// X = (I, J, K, bi, bj, bk) with I×J×K in {1×16×16 … 1×128×128} on a
// 16-point stride and block sizes sweeping each dimension.
func StencilBlockingDataset(sim *perfsim.StencilSim) (*dataset.Dataset, error) {
	ds := dataset.New("I", "J", "K", "bi", "bj", "bk")
	for j := 16; j <= 128; j += 16 {
		for k := 16; k <= 128; k += 16 {
			for _, bj := range blockSizes(j) {
				for _, bk := range blockSizes(k) {
					y, err := sim.Measure(perfsim.StencilWorkload{
						I: 1, J: j, K: k, TI: 1, TJ: bj, TK: bk,
					})
					if err != nil {
						return nil, err
					}
					ds.MustAdd([]float64{1, float64(j), float64(k), 1, float64(bj), float64(bk)}, y)
				}
			}
		}
	}
	return ds, nil
}

// StencilThreadsDataset builds the Fig. 7 dataset: X = (I, J, K, t)
// with I×J×K in {128×128×1 … 176×176×1} on a 4-point stride and
// t = 1…8 threads. (The paper uses a 16-point stride; the denser
// stride keeps 1% of the dataset above a handful of samples, standing
// in for the measurement repetitions a hardware campaign would have.)
func StencilThreadsDataset(sim *perfsim.StencilSim) (*dataset.Dataset, error) {
	ds := dataset.New("I", "J", "K", "t")
	for i := 128; i <= 176; i += 4 {
		for j := 128; j <= 176; j += 4 {
			for t := 1; t <= 8; t++ {
				y, err := sim.Measure(perfsim.StencilWorkload{
					I: i, J: j, K: 1, Threads: t, TimeSteps: ThreadsDatasetTimeSteps,
				})
				if err != nil {
					return nil, err
				}
				ds.MustAdd([]float64{float64(i), float64(j), 1, float64(t)}, y)
			}
		}
	}
	return ds, nil
}

// ThreadsDatasetTimeSteps is the sweep count of the Fig. 7 workload: a
// timed multi-sweep run, as stencil benchmarking campaigns use.
const ThreadsDatasetTimeSteps = 50

// StencilFullDataset builds the complete PATUS configuration space of
// Section III.B — the paper's full modelling vector
// X = (I, J, K, bi, bj, bk, u, t) — which no single figure sweeps but
// the framework is defined over. Grid dims {32, 64, 96}³, block sizes
// from the power-of-two ladder, unroll u ∈ {0, 2, 4, 8}, t ∈ {1, 4, 8}.
func StencilFullDataset(sim *perfsim.StencilSim) (*dataset.Dataset, error) {
	ds := dataset.New("I", "J", "K", "bi", "bj", "bk", "u", "t")
	dims := []int{32, 64, 96}
	unrolls := []int{0, 2, 4, 8}
	threads := []int{1, 4, 8}
	for _, d := range dims {
		for _, bi := range []int{8, d} {
			for _, bj := range []int{4, 16, d} {
				for _, bk := range []int{4, 16, d} {
					for _, u := range unrolls {
						for _, t := range threads {
							y, err := sim.Measure(perfsim.StencilWorkload{
								I: d, J: d, K: d, TI: bi, TJ: bj, TK: bk,
								Unroll: u, Threads: t,
							})
							if err != nil {
								return nil, err
							}
							ds.MustAdd([]float64{
								float64(d), float64(d), float64(d),
								float64(bi), float64(bj), float64(bk),
								float64(u), float64(t),
							}, y)
						}
					}
				}
			}
		}
	}
	return ds, nil
}

// FMMQValues is the per-leaf-capacity sweep of the FMM dataset.
var FMMQValues = []int{8, 16, 32, 64, 128, 256, 512}

// FMMDataset builds the Fig. 3B / Fig. 8 dataset: X = (t, N, q, k) with
// t = 1…16, N ∈ {4096, 8192, 16384}, q in FMMQValues and k = 2…12
// (Section V).
func FMMDataset(sim *perfsim.FMMSim) (*dataset.Dataset, error) {
	ds := dataset.New("t", "N", "q", "k")
	for t := 1; t <= 16; t++ {
		for _, n := range []int{4096, 8192, 16384} {
			for _, q := range FMMQValues {
				for k := 2; k <= 12; k++ {
					y, err := sim.Measure(perfsim.FMMWorkload{N: n, Q: q, K: k, Threads: t})
					if err != nil {
						return nil, err
					}
					ds.MustAdd([]float64{float64(t), float64(n), float64(q), float64(k)}, y)
				}
			}
		}
	}
	return ds, nil
}

// NewStencilSim returns the default ground-truth stencil simulator for
// a machine (seed fixes the noise stream).
func NewStencilSim(m *machine.Machine, seed uint64) *perfsim.StencilSim {
	return &perfsim.StencilSim{Machine: m, Seed: seed}
}

// NewFMMSim returns the default ground-truth FMM simulator.
func NewFMMSim(m *machine.Machine, seed uint64) *perfsim.FMMSim {
	return &perfsim.FMMSim{Machine: m, Seed: seed}
}

// DatasetByName builds one of the four canonical datasets; names:
// "stencil-grid", "stencil-blocking", "stencil-threads", "fmm".
func DatasetByName(name string, m *machine.Machine, seed uint64) (*dataset.Dataset, error) {
	switch name {
	case "stencil-grid":
		return StencilGridDataset(NewStencilSim(m, seed))
	case "stencil-blocking":
		return StencilBlockingDataset(NewStencilSim(m, seed))
	case "stencil-threads":
		return StencilThreadsDataset(NewStencilSim(m, seed))
	case "stencil-full":
		return StencilFullDataset(NewStencilSim(m, seed))
	case "fmm":
		return FMMDataset(NewFMMSim(m, seed))
	default:
		return nil, fmt.Errorf("experiments: %w: dataset %q", lamerr.ErrUnknownWorkload, name)
	}
}

package experiments

import (
	"bytes"
	"strings"
	"testing"

	"lam/internal/machine"
)

func TestNoiseSensitivity(t *testing.T) {
	r, err := NoiseSensitivity(Options{Seed: 5, Reps: 2, Trees: 20}, []float64{0.01, 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("got %d series, want 3 (ET, hybrid, AM)", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.MeanMAPE) != 2 {
			t.Fatalf("series %s has %d points, want 2", s.Label, len(s.MeanMAPE))
		}
		for _, m := range s.MeanMAPE {
			if m <= 0 || m > 1000 {
				t.Errorf("series %s MAPE %v insane", s.Label, m)
			}
		}
	}
	// The hybrid should stay ahead of pure ML at both noise levels.
	et, hy := r.Series[0], r.Series[1]
	for i := range et.MeanMAPE {
		if hy.MeanMAPE[i] >= et.MeanMAPE[i] {
			t.Errorf("noise %v: hybrid %v should beat ET %v", et.Fractions[i], hy.MeanMAPE[i], et.MeanMAPE[i])
		}
	}
}

func TestHardwareTransfer(t *testing.T) {
	r, err := HardwareTransfer(Options{Seed: 5, Reps: 2, Trees: 20},
		machine.GenericXeon(), []float64{0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("got %d series, want 2", len(r.Series))
	}
	et, hy := r.Series[0], r.Series[1]
	if hy.MeanMAPE[0] >= et.MeanMAPE[0] {
		t.Errorf("on the new machine the hybrid (%v) should beat pure ML (%v) at a 2%% budget",
			hy.MeanMAPE[0], et.MeanMAPE[0])
	}
	if len(r.Notes) == 0 || !strings.Contains(r.Notes[0], "MAPE") {
		t.Error("transfer report should note the target-machine AM MAPE")
	}
}

func TestHardwareTransferDefaults(t *testing.T) {
	r, err := HardwareTransfer(Options{Seed: 5, Reps: 1, Trees: 10}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series[0].Fractions) != 3 {
		t.Errorf("default budgets = %v, want 3", r.Series[0].Fractions)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	r := &Report{Series: []Series{{
		Label: "m", Fractions: []float64{0.01, 0.02},
		MeanMAPE: []float64{10, 8}, StdMAPE: []float64{1, 1}, MedianMAPE: []float64{9.5, 7.9},
	}}}
	var buf bytes.Buffer
	if err := r.WriteSeriesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d CSV lines, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "series,fraction") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "m,0.01,10,1,9.5") {
		t.Errorf("row = %q", lines[1])
	}
}

package experiments

import (
	"context"
	"errors"
	"testing"

	"lam/internal/lamerr"
	"lam/internal/ml"
)

// TestDriftScenarioShapes checks the drift-injection ingredients line
// up: identical feature grids on both machines, a small source
// training sample with its complement, a full-length shuffled target
// stream, and a genuinely shifted response distribution.
func TestDriftScenarioShapes(t *testing.T) {
	sc, err := NewDriftScenario("stencil-grid", "bluewaters", "xeon", 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Workload != "stencil-grid" || sc.SourceName != "bluewaters" || sc.TargetName != "xeon" {
		t.Fatalf("identity fields: %+v", sc)
	}
	total := sc.Train.Len() + sc.SourceTest.Len()
	if sc.Stream.Len() != total {
		t.Fatalf("stream holds %d rows, source dataset %d — same workload must give the same grid", sc.Stream.Len(), total)
	}
	wantTrain := int(0.05*float64(total) + 0.5)
	if sc.Train.Len() != wantTrain {
		t.Fatalf("train holds %d rows, want ~%d (5%%)", sc.Train.Len(), wantTrain)
	}
	if sc.Train.NumFeatures() != sc.Stream.NumFeatures() {
		t.Fatalf("feature arity differs: %d vs %d", sc.Train.NumFeatures(), sc.Stream.NumFeatures())
	}
	// The source AM must accept the stream's feature layout.
	if _, err := sc.AM.Predict(sc.Stream.X[0]); err != nil {
		t.Fatalf("source AM rejects stream features: %v", err)
	}
	// The drift must be real: the source-machine analytical model
	// scores the target stream much worse than a faster/slower clock
	// alone could hide — quantified as nonzero MAPE shift between the
	// distributions' mean response.
	srcMean, tgtMean := 0.0, 0.0
	for _, y := range sc.SourceTest.Y {
		srcMean += y
	}
	srcMean /= float64(sc.SourceTest.Len())
	for _, y := range sc.Stream.Y {
		tgtMean += y
	}
	tgtMean /= float64(sc.Stream.Len())
	if ape, _ := ml.APE(srcMean, tgtMean); ape < 10 {
		t.Fatalf("source and target response distributions are too close to inject drift: mean shift %.2f%%", ape)
	}
	// The stream is shuffled: generation order would start at the grid
	// corner; a shuffled stream will not be globally sorted by any
	// feature column.
	sorted := true
	for i := 1; i < sc.Stream.Len(); i++ {
		if sc.Stream.X[i][0] < sc.Stream.X[i-1][0] {
			sorted = false
			break
		}
	}
	if sorted {
		t.Fatal("stream is in generation order, want shuffled")
	}
}

func TestDriftScenarioErrors(t *testing.T) {
	if _, err := NewDriftScenario("stencil-grid", "nope", "xeon", 0.05, 1); !errors.Is(err, lamerr.ErrUnknownMachine) {
		t.Fatalf("unknown source: %v", err)
	}
	if _, err := NewDriftScenario("stencil-grid", "bluewaters", "nope", 0.05, 1); !errors.Is(err, lamerr.ErrUnknownMachine) {
		t.Fatalf("unknown target: %v", err)
	}
	if _, err := NewDriftScenario("nope", "bluewaters", "xeon", 0.05, 1); !errors.Is(err, lamerr.ErrUnknownWorkload) {
		t.Fatalf("unknown workload: %v", err)
	}
	if _, err := NewDriftScenario("stencil-grid", "bluewaters", "xeon", 1.5, 1); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DriftScenarioCtx(ctx, "stencil-grid", "bluewaters", "xeon", 0.05, 1); !errors.Is(err, lamerr.ErrCancelled) {
		t.Fatalf("cancelled build: %v", err)
	}
}

package experiments

import (
	"math/rand"
	"testing"

	"lam/internal/hybrid"
	"lam/internal/ml"
)

func TestStencilFullDatasetShape(t *testing.T) {
	ds, err := StencilFullDataset(NewStencilSim(bw(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumFeatures() != 8 {
		t.Fatalf("full dataset arity %d, want 8", ds.NumFeatures())
	}
	// 3 dims × 2 bi × 3 bj × 3 bk × 4 unrolls × 3 threads
	want := 3 * 2 * 3 * 3 * 4 * 3
	if ds.Len() != want {
		t.Errorf("full dataset has %d rows, want %d", ds.Len(), want)
	}
	for _, y := range ds.Y {
		if y <= 0 {
			t.Fatal("non-positive response")
		}
	}
}

func TestStencilFullAMIgnoresUncoveredFeatures(t *testing.T) {
	am := StencilFullAM(bw())
	a, err := am.Predict([]float64{64, 64, 64, 8, 16, 16, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := am.Predict([]float64{64, 64, 64, 8, 16, 16, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("AM must ignore (u, t): %v vs %v", a, b)
	}
	if _, err := am.Predict([]float64{1, 2}); err == nil {
		t.Error("expected arity error")
	}
}

func TestStencilFullHybridBeatsPureML(t *testing.T) {
	// Even on the full 8-D space with two AM-invisible dimensions, the
	// hybrid should beat pure ML at a small training fraction.
	ds, err := DatasetByName("stencil-full", bw(), 7)
	if err != nil {
		t.Fatal(err)
	}
	am, err := AMByDataset("stencil-full", bw())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	train, test, err := ds.SampleFraction(0.03, rng)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := hybrid.Train(train, am, hybrid.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hyMAPE, err := hy.MAPE(test)
	if err != nil {
		t.Fatal(err)
	}
	et := &ml.Pipeline{Model: ml.NewExtraTrees(100, 1)}
	if err := et.Fit(train.X, train.Y); err != nil {
		t.Fatal(err)
	}
	etMAPE := ml.MAPE(test.Y, ml.PredictBatch(et, test.X))
	t.Logf("full 8-D space @3%%: hybrid %.1f%%, pure ET %.1f%%", hyMAPE, etMAPE)
	if hyMAPE >= etMAPE {
		t.Errorf("hybrid (%.1f%%) should beat pure ML (%.1f%%)", hyMAPE, etMAPE)
	}
}

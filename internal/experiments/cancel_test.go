package experiments

import (
	"context"
	"errors"
	"testing"
	"time"

	"lam/internal/lamerr"
)

// cancelOpts keeps each trial small so the promptness bound is tight
// without making the sweep trivial.
func cancelOpts() Options {
	return Options{Seed: 42, Reps: 4, Trees: 30}
}

// assertCancelled checks the double sentinel contract: errors wrap both
// the repository-wide lamerr.ErrCancelled class and the concrete
// context cause.
func assertCancelled(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("expected a cancellation error, got nil")
	}
	if !errors.Is(err, lamerr.ErrCancelled) {
		t.Fatalf("error %v does not wrap lamerr.ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

// TestRunCtxMidSweepCancel cancels one figure shortly after it starts
// and checks the sweep stops promptly (bounded wall clock, far below
// the full figure's runtime) with the typed error.
func TestRunCtxMidSweepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunCtx(ctx, "fig6", cancelOpts())
	elapsed := time.Since(start)
	assertCancelled(t, err)
	// One trial (2-4% training fit of a <=40-tree ensemble) is well
	// under a second even under -race; 15s is a generous ceiling that
	// still proves the sweep did not run to completion on a loaded CI
	// machine.
	if elapsed > 15*time.Second {
		t.Fatalf("cancelled figure sweep took %v", elapsed)
	}
}

// TestRunManyCtxCancelStopsBatch cancels a multi-figure batch and
// checks the typed error propagates through the batch path.
func TestRunManyCtxCancelStopsBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunManyCtx(ctx, []string{"fig5", "fig6", "fig7"}, cancelOpts())
	elapsed := time.Since(start)
	assertCancelled(t, err)
	if elapsed > 15*time.Second {
		t.Fatalf("cancelled batch took %v", elapsed)
	}
}

// TestRunCtxPreCancelled returns immediately when the context is
// already done.
func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := RunCtx(ctx, "fig5", cancelOpts())
	assertCancelled(t, err)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pre-cancelled figure took %v", elapsed)
	}
}

// TestRunCtxUnknownFigure checks the typed unknown-figure error.
func TestRunCtxUnknownFigure(t *testing.T) {
	_, err := RunCtx(context.Background(), "fig99", cancelOpts())
	if !errors.Is(err, lamerr.ErrUnknownFigure) {
		t.Fatalf("got %v, want ErrUnknownFigure", err)
	}
}

// TestNoiseSensitivityCtxCancel covers the extension-experiment path.
func TestNoiseSensitivityCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := NoiseSensitivityCtx(ctx, cancelOpts(), []float64{0.01, 0.05, 0.1})
	assertCancelled(t, err)
}

// TestRunCtxUncancelledMatchesRun checks the ctx plumbing did not
// change the deterministic output of an untouched run.
func TestRunCtxUncancelledMatchesRun(t *testing.T) {
	opts := Options{Seed: 7, Reps: 2, Trees: 10}
	a, err := RunCtx(context.Background(), "fig5", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig5", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Series) != len(b.Series) {
		t.Fatalf("series count %d != %d", len(a.Series), len(b.Series))
	}
	for si := range a.Series {
		for i := range a.Series[si].MeanMAPE {
			if a.Series[si].MeanMAPE[i] != b.Series[si].MeanMAPE[i] {
				t.Fatalf("series %d point %d: %v != %v",
					si, i, a.Series[si].MeanMAPE[i], b.Series[si].MeanMAPE[i])
			}
		}
	}
}

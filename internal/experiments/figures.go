package experiments

import (
	"context"
	"fmt"
	"io"

	"lam/internal/dataset"
	"lam/internal/hybrid"
	"lam/internal/lamerr"
	"lam/internal/machine"
	"lam/internal/parallel"
)

// Options configures a figure run.
type Options struct {
	// Machine is the simulated platform; nil means BlueWatersXE6 (the
	// paper's testbed).
	Machine *machine.Machine
	// Seed fixes both the simulator noise stream and the sampling.
	Seed int64
	// Reps is the number of training-set redraws per fraction; 0 means 7.
	Reps int
	// Trees is the forest size; 0 means 100.
	Trees int
	// Workers bounds the sweep-level trial parallelism (and is passed
	// to hybrid training); values <= 0 mean the process default
	// (parallel.SetDefaultWorkers / GOMAXPROCS), 1 forces sequential
	// sweeps. Every figure is bit-identical for every worker count.
	Workers int
}

func (o Options) normalized() Options {
	if o.Machine == nil {
		o.Machine = machine.BlueWatersXE6()
	}
	if o.Reps <= 0 {
		o.Reps = 7
	}
	if o.Trees <= 0 {
		o.Trees = 100
	}
	return o
}

// Report is one regenerated figure: its series plus free-form notes
// (e.g. the standalone analytical-model MAPE the paper quotes).
type Report struct {
	ID    string
	Title string
	// DatasetSize is the full configuration-space size.
	DatasetSize int
	Series      []Series
	Notes       []string
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	fmt.Fprintf(w, "dataset: %d configurations\n", r.DatasetSize)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "\n%s (%d repetitions per point)\n", s.Label, s.Reps)
		fmt.Fprintf(w, "  %10s  %12s  %10s  %12s\n", "train", "mean MAPE%", "std", "median MAPE%")
		for i := range s.Fractions {
			fmt.Fprintf(w, "  %9.1f%%  %12.2f  %10.2f  %12.2f\n",
				s.Fractions[i]*100, s.MeanMAPE[i], s.StdMAPE[i], s.MedianMAPE[i])
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Fig3Stencil regenerates Fig. 3(A): MAPE of decision trees, extra
// trees and random forests on the stencil blocking dataset at training
// fractions {1, 2, 4, 6, 10}%.
func Fig3Stencil(opts Options) (*Report, error) {
	return fig3Stencil(context.Background(), opts)
}

func fig3Stencil(ctx context.Context, opts Options) (*Report, error) {
	o := opts.normalized()
	ds, err := StencilBlockingDataset(NewStencilSim(o.Machine, uint64(o.Seed)))
	if err != nil {
		return nil, err
	}
	fractions := []float64{0.01, 0.02, 0.04, 0.06, 0.10}
	r := &Report{
		ID:          "fig3a",
		Title:       "pure-ML model comparison, stencil (X = I,J,K,bi,bj,bk)",
		DatasetSize: ds.Len(),
	}
	for _, kind := range []struct{ key, label string }{
		{"dt", "Decision Trees"}, {"et", "Extra Trees"}, {"rf", "Random Forests"},
	} {
		s, err := MAPECurveCtx(ctx, ds, MLTrainable(DefaultPipeline(kind.key, o.Trees)),
			fractions, o.Reps, o.Seed, kind.label, o.Workers)
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, s)
	}
	return r, nil
}

// Fig3FMM regenerates Fig. 3(B): the same three models on the FMM
// dataset at training fractions {10, 20, 40, 60, 80}%.
func Fig3FMM(opts Options) (*Report, error) {
	return fig3FMM(context.Background(), opts)
}

func fig3FMM(ctx context.Context, opts Options) (*Report, error) {
	o := opts.normalized()
	ds, err := FMMDataset(NewFMMSim(o.Machine, uint64(o.Seed)))
	if err != nil {
		return nil, err
	}
	fractions := []float64{0.10, 0.20, 0.40, 0.60, 0.80}
	r := &Report{
		ID:          "fig3b",
		Title:       "pure-ML model comparison, FMM (X = t,N,q,k)",
		DatasetSize: ds.Len(),
	}
	for _, kind := range []struct{ key, label string }{
		{"dt", "Decision Trees"}, {"et", "Extra Trees"}, {"rf", "Random Forests"},
	} {
		s, err := MAPECurveCtx(ctx, ds, MLTrainable(DefaultPipeline(kind.key, o.Trees)),
			fractions, o.Reps, o.Seed, kind.label, o.Workers)
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, s)
	}
	return r, nil
}

// hybridVsET builds the standard two-panel comparison the paper uses in
// Figs. 5–8: extra trees at the larger fractions, the hybrid model at
// the smaller ones, plus the standalone AM MAPE as a note.
func hybridVsET(ctx context.Context, id, title string, ds *dataset.Dataset, am hybrid.AnalyticalModel,
	etFractions, hyFractions []float64, cfg hybrid.Config, o Options) (*Report, error) {
	r := &Report{ID: id, Title: title, DatasetSize: ds.Len()}

	amMAPE, err := hybrid.AnalyticalMAPECtx(ctx, ds, am)
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("standalone analytical model MAPE = %.1f%% (untuned)", amMAPE))

	et, err := MAPECurveCtx(ctx, ds, MLTrainable(DefaultPipeline("et", o.Trees)),
		etFractions, o.Reps, o.Seed, "Extra Trees (pure ML)", o.Workers)
	if err != nil {
		return nil, err
	}
	r.Series = append(r.Series, et)

	cfg.Workers = o.Workers
	hy, err := MAPECurveCtx(ctx, ds, HybridTrainable(am, cfg),
		hyFractions, o.Reps, o.Seed, "Hybrid Model", o.Workers)
	if err != nil {
		return nil, err
	}
	r.Series = append(r.Series, hy)
	return r, nil
}

// Fig5 regenerates Fig. 5: grid-size-only stencil dataset, where the
// analytical model is accurate. Extra trees at {10, 15, 20}%, hybrid at
// {1, 2, 4}%; aggregation enabled (the AM is representative).
func Fig5(opts Options) (*Report, error) {
	return fig5(context.Background(), opts)
}

func fig5(ctx context.Context, opts Options) (*Report, error) {
	o := opts.normalized()
	ds, err := StencilGridDataset(NewStencilSim(o.Machine, uint64(o.Seed)))
	if err != nil {
		return nil, err
	}
	return hybridVsET(ctx, "fig5",
		"stencil, grid sizes only (accurate AM); hybrid needs 5-10x less data",
		ds, StencilGridAM(o.Machine),
		[]float64{0.10, 0.15, 0.20}, []float64{0.01, 0.02, 0.04},
		hybrid.Config{Aggregate: false}, o)
}

// Fig6 regenerates Fig. 6: grid sizes + loop blocking with the untuned
// blocking AM (paper: AM MAPE = 42%); both models at {1, 2, 4}%.
func Fig6(opts Options) (*Report, error) {
	return fig6(context.Background(), opts)
}

func fig6(ctx context.Context, opts Options) (*Report, error) {
	o := opts.normalized()
	ds, err := StencilBlockingDataset(NewStencilSim(o.Machine, uint64(o.Seed)))
	if err != nil {
		return nil, err
	}
	return hybridVsET(ctx, "fig6",
		"stencil, grid sizes + loop blocking (inaccurate AM)",
		ds, StencilBlockingAM(o.Machine),
		[]float64{0.01, 0.02, 0.04}, []float64{0.01, 0.02, 0.04},
		hybrid.Config{Aggregate: false}, o)
}

// Fig7 regenerates Fig. 7: multithreaded stencil with the serial AM.
// Aggregation is disabled, as in the paper ("we do not aggregate ...
// as the analytical models do not capture the parallelism").
func Fig7(opts Options) (*Report, error) {
	return fig7(context.Background(), opts)
}

func fig7(ctx context.Context, opts Options) (*Report, error) {
	o := opts.normalized()
	ds, err := StencilThreadsDataset(NewStencilSim(o.Machine, uint64(o.Seed)))
	if err != nil {
		return nil, err
	}
	return hybridVsET(ctx, "fig7",
		"stencil, multithreaded (serial AM, stacking only)",
		ds, StencilThreadsAM(o.Machine),
		[]float64{0.01, 0.02, 0.04}, []float64{0.01, 0.02, 0.04},
		hybrid.Config{Aggregate: false}, o)
}

// Fig8 regenerates Fig. 8: the FMM workload with the untuned
// single-core AM (paper: AM MAPE = 84.5%); extra trees and hybrid at
// {15, 20, 25}%.
func Fig8(opts Options) (*Report, error) {
	return fig8(context.Background(), opts)
}

func fig8(ctx context.Context, opts Options) (*Report, error) {
	o := opts.normalized()
	ds, err := FMMDataset(NewFMMSim(o.Machine, uint64(o.Seed)))
	if err != nil {
		return nil, err
	}
	return hybridVsET(ctx, "fig8",
		"FMM, X = (t,N,q,k) (highly inaccurate AM, stacking only)",
		ds, FMMAM(o.Machine),
		[]float64{0.15, 0.20, 0.25}, []float64{0.15, 0.20, 0.25},
		hybrid.Config{Aggregate: false}, o)
}

// Run regenerates one figure by id: fig3a, fig3b, fig5, fig6, fig7 or
// fig8.
func Run(id string, opts Options) (*Report, error) {
	return RunCtx(context.Background(), id, opts)
}

// RunCtx is Run with prompt cancellation between the figure's
// (fraction, repetition) trials; an unknown id wraps
// lamerr.ErrUnknownFigure.
func RunCtx(ctx context.Context, id string, opts Options) (*Report, error) {
	switch id {
	case "fig3a", "3a":
		return fig3Stencil(ctx, opts)
	case "fig3b", "3b":
		return fig3FMM(ctx, opts)
	case "fig5", "5":
		return fig5(ctx, opts)
	case "fig6", "6":
		return fig6(ctx, opts)
	case "fig7", "7":
		return fig7(ctx, opts)
	case "fig8", "8":
		return fig8(ctx, opts)
	default:
		return nil, fmt.Errorf("experiments: %w: %q (have %v, see EXPERIMENTS.md)",
			lamerr.ErrUnknownFigure, id, AllFigureIDs())
	}
}

// AllFigureIDs lists the reproducible figures in paper order.
func AllFigureIDs() []string {
	return []string{"fig3a", "fig3b", "fig5", "fig6", "fig7", "fig8"}
}

// RunMany regenerates several figures concurrently on the worker pool
// and returns the reports in input order. Each figure is itself
// deterministic, so the batch matches len(ids) sequential Run calls.
func RunMany(ids []string, opts Options) ([]*Report, error) {
	return RunManyCtx(context.Background(), ids, opts)
}

// RunManyCtx is RunMany with prompt cancellation: the context is
// threaded into every figure's trial sweep, so one cancel stops the
// whole batch within a trial's duration.
func RunManyCtx(ctx context.Context, ids []string, opts Options) ([]*Report, error) {
	return parallel.MapCtx(ctx, len(ids), opts.Workers, func(i int) (*Report, error) {
		r, err := RunCtx(ctx, ids[i], opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ids[i], err)
		}
		return r, nil
	})
}

package experiments

import (
	"fmt"

	"lam/internal/analytical"
	"lam/internal/hybrid"
	"lam/internal/lamerr"
	"lam/internal/machine"
)

// StencilGridAM adapts the stencil analytical model to the Fig. 5
// feature layout X = (I, J, K).
func StencilGridAM(m *machine.Machine) hybrid.AnalyticalModel {
	am := &analytical.StencilModel{Machine: m, WriteAllocate: true}
	return hybrid.AnalyticalFunc(func(x []float64) (float64, error) {
		if len(x) != 3 {
			return 0, fmt.Errorf("experiments: grid AM wants 3 features, got %d", len(x))
		}
		return am.Predict(analytical.StencilParams{
			I: int(x[0]), J: int(x[1]), K: int(x[2]),
		})
	})
}

// StencilBlockingAM adapts the stencil analytical model with the Eq. 15
// blocking extension to the Fig. 3A / Fig. 6 layout
// X = (I, J, K, bi, bj, bk). Untuned, as in the paper (AM MAPE = 42%).
func StencilBlockingAM(m *machine.Machine) hybrid.AnalyticalModel {
	am := &analytical.StencilModel{Machine: m, WriteAllocate: true}
	return hybrid.AnalyticalFunc(func(x []float64) (float64, error) {
		if len(x) != 6 {
			return 0, fmt.Errorf("experiments: blocking AM wants 6 features, got %d", len(x))
		}
		return am.Predict(analytical.StencilParams{
			I: int(x[0]), J: int(x[1]), K: int(x[2]),
			TI: int(x[3]), TJ: int(x[4]), TK: int(x[5]),
		})
	})
}

// StencilThreadsAM adapts the *serial* stencil analytical model to the
// Fig. 7 layout X = (I, J, K, t): the thread count is deliberately
// ignored, reproducing the paper's "region not covered by the
// analytical models" experiment.
func StencilThreadsAM(m *machine.Machine) hybrid.AnalyticalModel {
	am := &analytical.StencilModel{Machine: m, WriteAllocate: true}
	return hybrid.AnalyticalFunc(func(x []float64) (float64, error) {
		if len(x) != 4 {
			return 0, fmt.Errorf("experiments: threads AM wants 4 features, got %d", len(x))
		}
		return am.Predict(analytical.StencilParams{
			I: int(x[0]), J: int(x[1]), K: int(x[2]),
			TimeSteps: ThreadsDatasetTimeSteps,
		})
	})
}

// FMMAM adapts the single-core FMM analytical model to the Fig. 3B /
// Fig. 8 layout X = (t, N, q, k); t is ignored (the model is
// single-core). Untuned, as in the paper (AM MAPE = 84.5%).
func FMMAM(m *machine.Machine) hybrid.AnalyticalModel {
	am := &analytical.FMMModel{Machine: m}
	return hybrid.AnalyticalFunc(func(x []float64) (float64, error) {
		if len(x) != 4 {
			return 0, fmt.Errorf("experiments: FMM AM wants 4 features, got %d", len(x))
		}
		return am.Predict(analytical.FMMParams{
			N: int(x[1]), Q: int(x[2]), K: int(x[3]),
		})
	})
}

// StencilFullAM adapts the blocking analytical model to the complete
// 8-feature PATUS layout X = (I, J, K, bi, bj, bk, u, t); unroll and
// threads are outside the model's coverage and ignored, the paper's
// worst-case stacking scenario.
func StencilFullAM(m *machine.Machine) hybrid.AnalyticalModel {
	am := &analytical.StencilModel{Machine: m, WriteAllocate: true}
	return hybrid.AnalyticalFunc(func(x []float64) (float64, error) {
		if len(x) != 8 {
			return 0, fmt.Errorf("experiments: full AM wants 8 features, got %d", len(x))
		}
		return am.Predict(analytical.StencilParams{
			I: int(x[0]), J: int(x[1]), K: int(x[2]),
			TI: int(x[3]), TJ: int(x[4]), TK: int(x[5]),
		})
	})
}

// AMByDataset returns the analytical-model adapter matching a canonical
// dataset name (see DatasetByName).
func AMByDataset(name string, m *machine.Machine) (hybrid.AnalyticalModel, error) {
	switch name {
	case "stencil-grid":
		return StencilGridAM(m), nil
	case "stencil-blocking":
		return StencilBlockingAM(m), nil
	case "stencil-threads":
		return StencilThreadsAM(m), nil
	case "stencil-full":
		return StencilFullAM(m), nil
	case "fmm":
		return FMMAM(m), nil
	default:
		return nil, fmt.Errorf("experiments: %w: dataset %q", lamerr.ErrUnknownWorkload, name)
	}
}

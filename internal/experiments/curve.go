package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"lam/internal/dataset"
	"lam/internal/hybrid"
	"lam/internal/ml"
	"lam/internal/parallel"
	"lam/internal/xmath"
)

// Trainable is anything the sweep can fit on a dataset and query —
// pure-ML pipelines and hybrid models both satisfy it through the
// wrappers below.
type Trainable interface {
	Fit(train *dataset.Dataset) error
	Predict(x []float64) (float64, error)
}

// mlTrainable wraps an ml.Regressor factory.
type mlTrainable struct {
	factory func(seed int64) ml.Regressor
	seed    int64
	model   ml.Regressor
}

// MLTrainable adapts a seeded regressor factory (e.g. extra trees in a
// standardising pipeline) to the sweep interface.
func MLTrainable(factory func(seed int64) ml.Regressor) func(seed int64) Trainable {
	return func(seed int64) Trainable {
		return &mlTrainable{factory: factory, seed: seed}
	}
}

func (m *mlTrainable) Fit(train *dataset.Dataset) error {
	m.model = m.factory(m.seed)
	return m.model.Fit(train.X, train.Y)
}

func (m *mlTrainable) Predict(x []float64) (float64, error) {
	return m.model.Predict(x), nil
}

// PredictBatchInto implements the sweep's allocation-free fast path;
// rows are scored sequentially (the trials themselves fan out on the
// worker pool).
func (m *mlTrainable) PredictBatchInto(X [][]float64, out []float64) error {
	return ml.PredictBatchInto(m.model, X, out, 1)
}

// hybridTrainable wraps hybrid.Train.
type hybridTrainable struct {
	am    hybrid.AnalyticalModel
	cfg   hybrid.Config
	model *hybrid.Model
}

// HybridTrainable adapts a hybrid configuration to the sweep interface.
func HybridTrainable(am hybrid.AnalyticalModel, cfg hybrid.Config) func(seed int64) Trainable {
	return func(seed int64) Trainable {
		c := cfg
		c.Seed = seed
		return &hybridTrainable{am: am, cfg: c}
	}
}

func (h *hybridTrainable) Fit(train *dataset.Dataset) error {
	m, err := hybrid.Train(train, h.am, h.cfg)
	if err != nil {
		return err
	}
	h.model = m
	return nil
}

func (h *hybridTrainable) Predict(x []float64) (float64, error) {
	return h.model.Predict(x)
}

// PredictBatchInto implements the sweep's allocation-free fast path.
func (h *hybridTrainable) PredictBatchInto(X [][]float64, out []float64) error {
	return h.model.PredictBatchIntoCtx(context.Background(), X, out)
}

// Series is one MAPE-vs-training-fraction curve: the content of one
// panel of the paper's figures (mean over repetitions, with spread).
type Series struct {
	Label     string
	Fractions []float64
	// MeanMAPE, StdMAPE, MedianMAPE aggregate the repetitions at each
	// fraction (the paper draws boxplots; we report the moments).
	MeanMAPE   []float64
	StdMAPE    []float64
	MedianMAPE []float64
	// Reps is the number of training-set redraws per fraction.
	Reps int
}

// MAPECurve sweeps training-set fractions: at each fraction it redraws
// a uniform random training set reps times (fresh model seed per draw),
// trains, and scores MAPE on the complement. Trials run on the process
// default worker pool; see MAPECurveWorkers.
func MAPECurve(ds *dataset.Dataset, newModel func(seed int64) Trainable, fractions []float64, reps int, seed int64, label string) (Series, error) {
	return MAPECurveWorkers(ds, newModel, fractions, reps, seed, label, 0)
}

// MAPECurveWorkers is MAPECurve with an explicit worker count (<= 0
// means the process default, 1 forces sequential evaluation). The
// (fraction, repetition) trials are independent: each derives its draw
// seed from (seed, fraction index, repetition index) before fan-out
// and writes its score by trial index, so the series is bit-identical
// for every worker count.
func MAPECurveWorkers(ds *dataset.Dataset, newModel func(seed int64) Trainable, fractions []float64, reps int, seed int64, label string, workers int) (Series, error) {
	return MAPECurveCtx(context.Background(), ds, newModel, fractions, reps, seed, label, workers)
}

// MAPECurveCtx is MAPECurveWorkers with prompt cancellation between
// (fraction, repetition) trials: once ctx is done no further trial
// starts and the sweep returns a typed cancellation error (wrapping
// lamerr.ErrCancelled and ctx.Err()) within one trial's duration.
func MAPECurveCtx(ctx context.Context, ds *dataset.Dataset, newModel func(seed int64) Trainable, fractions []float64, reps int, seed int64, label string, workers int) (Series, error) {
	if reps < 1 {
		reps = 1
	}
	s := Series{Label: label, Fractions: fractions, Reps: reps}
	scores := make([]float64, len(fractions)*reps)
	err := parallel.ForCtx(ctx, len(scores), workers, func(u int) error {
		fi, r := u/reps, u%reps
		frac := fractions[fi]
		drawSeed := int64(xmath.Hash64(uint64(seed), uint64(fi), uint64(r)))
		rng := rand.New(rand.NewSource(drawSeed))
		train, test, err := ds.SampleFraction(frac, rng)
		if err != nil {
			return err
		}
		if train.Len() == 0 || test.Len() == 0 {
			return fmt.Errorf("experiments: degenerate split at fraction %v", frac)
		}
		m := newModel(drawSeed)
		if err := m.Fit(train); err != nil {
			return fmt.Errorf("experiments: fit at fraction %v rep %d: %w", frac, r, err)
		}
		// Score the held-out rows through the compiled Into path when
		// the model exposes it (both wrappers above do), with a pooled
		// buffer — the sweep's eval loop allocates nothing per trial.
		buf := ml.GetScratch(test.Len())
		defer ml.PutScratch(buf)
		pred := *buf
		if bp, ok := m.(interface {
			PredictBatchInto(X [][]float64, out []float64) error
		}); ok {
			if err := bp.PredictBatchInto(test.X, pred); err != nil {
				return err
			}
		} else {
			for i, x := range test.X {
				p, err := m.Predict(x)
				if err != nil {
					return err
				}
				pred[i] = p
			}
		}
		scores[u] = ml.MAPE(test.Y, pred)
		return nil
	})
	if err != nil {
		return Series{}, err
	}
	for fi := range fractions {
		fs := scores[fi*reps : (fi+1)*reps]
		s.MeanMAPE = append(s.MeanMAPE, xmath.Mean(fs))
		s.StdMAPE = append(s.StdMAPE, xmath.StdDev(fs))
		s.MedianMAPE = append(s.MedianMAPE, xmath.Median(fs))
	}
	return s, nil
}

// DefaultPipeline returns the paper's standard estimator stack: a
// StandardScaler feeding the given tree ensemble.
func DefaultPipeline(kind string, nTrees int) func(seed int64) ml.Regressor {
	return func(seed int64) ml.Regressor {
		var inner ml.Regressor
		switch kind {
		case "dt":
			inner = ml.NewDecisionTree(ml.TreeConfig{Seed: seed})
		case "rf":
			inner = ml.NewRandomForest(nTrees, seed)
		default: // "et"
			inner = ml.NewExtraTrees(nTrees, seed)
		}
		return &ml.Pipeline{Model: inner}
	}
}

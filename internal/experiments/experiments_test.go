package experiments

import (
	"bytes"
	"strings"
	"testing"

	"lam/internal/hybrid"
	"lam/internal/machine"
)

func bw() *machine.Machine { return machine.BlueWatersXE6() }

func TestBlockSizes(t *testing.T) {
	got := blockSizes(16)
	want := []int{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("blockSizes(16) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("blockSizes(16)[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	got = blockSizes(48)
	// powers of two below 48, then 48 itself
	want = []int{1, 2, 4, 8, 16, 32, 48}
	if len(got) != len(want) || got[len(got)-1] != 48 {
		t.Errorf("blockSizes(48) = %v, want %v", got, want)
	}
}

func TestStencilGridDatasetShape(t *testing.T) {
	ds, err := StencilGridDataset(NewStencilSim(bw(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 9*9*9 {
		t.Errorf("grid dataset has %d rows, want 729", ds.Len())
	}
	if ds.NumFeatures() != 3 {
		t.Errorf("grid dataset arity %d, want 3", ds.NumFeatures())
	}
	for _, y := range ds.Y {
		if y <= 0 {
			t.Fatal("non-positive response in grid dataset")
		}
	}
}

func TestStencilBlockingDatasetShape(t *testing.T) {
	ds, err := StencilBlockingDataset(NewStencilSim(bw(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumFeatures() != 6 {
		t.Errorf("blocking dataset arity %d, want 6", ds.NumFeatures())
	}
	if ds.Len() < 2000 {
		t.Errorf("blocking dataset has %d rows, want a few thousand", ds.Len())
	}
	// All block sizes divide into valid candidates, bi == 1 everywhere.
	bi, err := ds.Column("bi")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bi {
		if v != 1 {
			t.Fatal("bi must be 1 (I = 1 in the paper's sweep)")
		}
	}
}

func TestStencilThreadsDatasetShape(t *testing.T) {
	ds, err := StencilThreadsDataset(NewStencilSim(bw(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumFeatures() != 4 {
		t.Errorf("threads dataset arity %d, want 4", ds.NumFeatures())
	}
	tcol, err := ds.Column("t")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := tcol[0], tcol[0]
	for _, v := range tcol {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo != 1 || hi != 8 {
		t.Errorf("thread range [%v, %v], want [1, 8]", lo, hi)
	}
}

func TestFMMDatasetShape(t *testing.T) {
	ds, err := FMMDataset(NewFMMSim(bw(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 16*3*len(FMMQValues)*11 {
		t.Errorf("fmm dataset has %d rows, want %d", ds.Len(), 16*3*len(FMMQValues)*11)
	}
	if ds.NumFeatures() != 4 {
		t.Errorf("fmm dataset arity %d, want 4", ds.NumFeatures())
	}
}

func TestDatasetByNameAndAMByDataset(t *testing.T) {
	for _, name := range []string{"stencil-grid", "stencil-threads"} {
		ds, err := DatasetByName(name, bw(), 1)
		if err != nil {
			t.Fatal(err)
		}
		am, err := AMByDataset(name, bw())
		if err != nil {
			t.Fatal(err)
		}
		p, err := am.Predict(ds.X[0])
		if err != nil {
			t.Fatal(err)
		}
		if p <= 0 {
			t.Errorf("%s AM predicted %v", name, p)
		}
	}
	if _, err := DatasetByName("zzz", bw(), 1); err == nil {
		t.Error("expected unknown-dataset error")
	}
	if _, err := AMByDataset("zzz", bw()); err == nil {
		t.Error("expected unknown-AM error")
	}
}

func TestAMAdaptersCheckArity(t *testing.T) {
	for _, am := range []hybrid.AnalyticalModel{
		StencilGridAM(bw()), StencilBlockingAM(bw()), StencilThreadsAM(bw()), FMMAM(bw()),
	} {
		if _, err := am.Predict([]float64{1}); err == nil {
			t.Error("expected arity error from adapter")
		}
	}
}

func TestThreadsAMIgnoresThreadCount(t *testing.T) {
	am := StencilThreadsAM(bw())
	a, err := am.Predict([]float64{128, 128, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := am.Predict([]float64{128, 128, 1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("serial AM must ignore t: got %v vs %v", a, b)
	}
}

func TestFMMAMIgnoresThreadCount(t *testing.T) {
	am := FMMAM(bw())
	a, _ := am.Predict([]float64{1, 8192, 64, 6})
	b, _ := am.Predict([]float64{16, 8192, 64, 6})
	if a != b {
		t.Errorf("single-core FMM AM must ignore t: %v vs %v", a, b)
	}
}

func TestMAPECurveShapesAndDeterminism(t *testing.T) {
	ds, err := StencilGridDataset(NewStencilSim(bw(), 1))
	if err != nil {
		t.Fatal(err)
	}
	newModel := MLTrainable(DefaultPipeline("et", 20))
	fractions := []float64{0.05, 0.10}
	a, err := MAPECurve(ds, newModel, fractions, 2, 9, "et")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.MeanMAPE) != 2 || len(a.StdMAPE) != 2 || len(a.MedianMAPE) != 2 {
		t.Fatalf("curve shape wrong: %+v", a)
	}
	b, err := MAPECurve(ds, newModel, fractions, 2, 9, "et")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.MeanMAPE {
		if a.MeanMAPE[i] != b.MeanMAPE[i] {
			t.Errorf("curve not deterministic at %d: %v vs %v", i, a.MeanMAPE[i], b.MeanMAPE[i])
		}
	}
	// More training data should not hurt on average (weak monotonicity
	// with generous tolerance for sampling noise).
	if a.MeanMAPE[1] > a.MeanMAPE[0]*1.5 {
		t.Errorf("MAPE grew sharply with more data: %v", a.MeanMAPE)
	}
}

func TestHybridTrainableWiring(t *testing.T) {
	ds, err := StencilGridDataset(NewStencilSim(bw(), 1))
	if err != nil {
		t.Fatal(err)
	}
	newModel := HybridTrainable(StencilGridAM(bw()), hybrid.Config{})
	s, err := MAPECurve(ds, newModel, []float64{0.02}, 2, 5, "hybrid")
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanMAPE[0] <= 0 || s.MeanMAPE[0] > 50 {
		t.Errorf("hybrid curve MAPE = %v, want sane", s.MeanMAPE[0])
	}
}

func TestReportRender(t *testing.T) {
	r := &Report{
		ID: "figX", Title: "demo", DatasetSize: 10,
		Notes: []string{"hello"},
		Series: []Series{{
			Label: "model", Fractions: []float64{0.01},
			MeanMAPE: []float64{12.3}, StdMAPE: []float64{1.2}, MedianMAPE: []float64{12.0},
			Reps: 3,
		}},
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figX", "demo", "hello", "model", "12.30", "1.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run("fig99", Options{}); err == nil {
		t.Error("expected unknown-figure error")
	}
}

func TestAllFigureIDsRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Smallest possible configuration: just verify each figure runner
	// completes and produces non-empty series.
	opts := Options{Seed: 1, Reps: 1, Trees: 10}
	for _, id := range AllFigureIDs() {
		r, err := Run(id, opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(r.Series) == 0 {
			t.Errorf("%s: no series", id)
		}
		for _, s := range r.Series {
			for i, m := range s.MeanMAPE {
				if m <= 0 || m > 10000 {
					t.Errorf("%s %s[%d]: MAPE %v insane", id, s.Label, i, m)
				}
			}
		}
	}
}

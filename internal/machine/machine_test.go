package machine

import (
	"math"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for name, m := range Presets() {
		if err := m.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
	}
}

func TestValidateCatchesBadMachines(t *testing.T) {
	good := BlueWatersXE6()
	cases := []struct {
		name   string
		mutate func(*Machine)
	}{
		{"no levels", func(m *Machine) { m.Levels = nil }},
		{"zero size", func(m *Machine) { m.Levels[0].SizeBytes = 0 }},
		{"size not multiple of line", func(m *Machine) { m.Levels[0].SizeBytes = 100 }},
		{"lines not divisible by ways", func(m *Machine) { m.Levels[0].Assoc = 7 }},
		{"shrinking hierarchy", func(m *Machine) { m.Levels[1].SizeBytes = 1 << 10 }},
		{"zero level bandwidth", func(m *Machine) { m.Levels[0].BandwidthBytesPerSec = 0 }},
		{"zero mem bandwidth", func(m *Machine) { m.MemBandwidthBytesPerSec = 0 }},
		{"zero flops", func(m *Machine) { m.FlopsPerCorePerSec = 0 }},
		{"zero cores", func(m *Machine) { m.Cores = 0 }},
		{"zero saturation", func(m *Machine) { m.BWSaturationThreads = 0 }},
	}
	for _, c := range cases {
		m := *good
		m.Levels = append([]CacheLevel{}, good.Levels...)
		c.mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestCacheLevelConversions(t *testing.T) {
	l := CacheLevel{SizeBytes: 16 << 10, LineBytes: 64, BandwidthBytesPerSec: 8e9}
	if got := l.SizeElems(); got != 2048 {
		t.Errorf("SizeElems = %d, want 2048", got)
	}
	if got := l.LineElems(); got != 8 {
		t.Errorf("LineElems = %d, want 8", got)
	}
	if got := l.BetaSecPerElem(); math.Abs(got-1e-9) > 1e-15 {
		t.Errorf("BetaSecPerElem = %v, want 1e-9", got)
	}
}

func TestTimePerFlopAndBeta(t *testing.T) {
	m := BlueWatersXE6()
	if got := m.TimePerFlop(); math.Abs(got*m.FlopsPerCorePerSec-1) > 1e-12 {
		t.Errorf("TimePerFlop inconsistent: %v", got)
	}
	if got := m.MemBetaSecPerElem(); math.Abs(got*m.MemBandwidthBytesPerSec-8) > 1e-9 {
		t.Errorf("MemBetaSecPerElem inconsistent: %v", got)
	}
}

func TestEffectiveMemBandwidthSaturates(t *testing.T) {
	m := BlueWatersXE6()
	one := m.EffectiveMemBandwidth(1)
	if one != m.MemBandwidthBytesPerSec {
		t.Errorf("1-thread bandwidth = %v, want base %v", one, m.MemBandwidthBytesPerSec)
	}
	two := m.EffectiveMemBandwidth(2)
	if two <= one {
		t.Error("2 threads should add bandwidth below saturation")
	}
	sat := m.EffectiveMemBandwidth(int(m.BWSaturationThreads))
	beyond := m.EffectiveMemBandwidth(16)
	if beyond != sat {
		t.Errorf("bandwidth beyond saturation = %v, want flat %v", beyond, sat)
	}
	if m.EffectiveMemBandwidth(0) != one {
		t.Error("0 threads should be clamped to 1")
	}
}

func TestBlueWatersMatchesPaperGeometry(t *testing.T) {
	m := BlueWatersXE6()
	// Section III.A: 16KB L1 data, 2MB L2, 8MB shared L3.
	if m.Levels[0].SizeBytes != 16<<10 {
		t.Errorf("L1 = %d bytes, want 16KB", m.Levels[0].SizeBytes)
	}
	if m.Levels[1].SizeBytes != 2<<20 {
		t.Errorf("L2 = %d bytes, want 2MB", m.Levels[1].SizeBytes)
	}
	if m.Levels[2].SizeBytes != 8<<20 {
		t.Errorf("L3 = %d bytes, want 8MB", m.Levels[2].SizeBytes)
	}
	if m.Cores != 16 {
		t.Errorf("cores = %d, want 16 (dual 8-core Interlagos)", m.Cores)
	}
}

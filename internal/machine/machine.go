// Package machine describes the hardware parameters consumed by the
// analytical models and the performance simulators: the cache hierarchy,
// memory bandwidth and per-core floating-point throughput.
//
// The paper's experiments ran on Blue Waters XE6 nodes (2× AMD
// Interlagos 6276). That machine is unavailable here, so the
// BlueWatersXE6 preset reproduces its published parameters and two
// additional presets support the hardware-change experiments the paper
// motivates (training cheaply after a machine swap).
package machine

import (
	"errors"
	"fmt"
)

// CacheLevel describes one level of the cache hierarchy.
type CacheLevel struct {
	// Name labels the level, e.g. "L1".
	Name string
	// SizeBytes is the capacity of the level.
	SizeBytes int
	// LineBytes is the cache-line size.
	LineBytes int
	// Assoc is the set associativity (ways).
	Assoc int
	// BandwidthBytesPerSec is the sustainable transfer rate from this
	// level to the level above it.
	BandwidthBytesPerSec float64
	// LatencySec is the access latency of the level.
	LatencySec float64
}

// SizeElems returns the level capacity in float64 elements.
func (c CacheLevel) SizeElems() int { return c.SizeBytes / 8 }

// LineElems returns the cache-line size in float64 elements (the W of
// the paper's Eq. 7).
func (c CacheLevel) LineElems() int { return c.LineBytes / 8 }

// BetaSecPerElem returns the per-element transfer time (the paper's
// βmem for this level), assuming 8-byte elements.
func (c CacheLevel) BetaSecPerElem() float64 {
	return 8 / c.BandwidthBytesPerSec
}

// Machine is a complete single-node hardware description.
type Machine struct {
	// Name identifies the preset.
	Name string
	// Levels lists the cache hierarchy from L1 outward.
	Levels []CacheLevel
	// MemBandwidthBytesPerSec is the sustainable main-memory bandwidth
	// of one core (stream-like access).
	MemBandwidthBytesPerSec float64
	// MemLatencySec is the main-memory access latency.
	MemLatencySec float64
	// FlopsPerCorePerSec is the peak scalar-equivalent floating-point
	// rate of one core (the 1/tc of the paper's Eq. 2 family).
	FlopsPerCorePerSec float64
	// Cores is the number of cores of one socket-pair node.
	Cores int
	// BWSaturationThreads is the number of concurrent threads that
	// saturate the node memory bandwidth; extra threads add no memory
	// throughput. Used by the performance simulators only — the paper's
	// analytical models are single-core.
	BWSaturationThreads float64
	// ThreadSpawnOverheadSec is the per-thread fork/join cost per
	// parallel region. Used by the performance simulators only.
	ThreadSpawnOverheadSec float64
}

// Validate checks that the machine description is physically sensible.
func (m *Machine) Validate() error {
	if len(m.Levels) == 0 {
		return errors.New("machine: at least one cache level required")
	}
	prev := 0
	for i, l := range m.Levels {
		if l.SizeBytes <= 0 || l.LineBytes <= 0 || l.Assoc <= 0 {
			return fmt.Errorf("machine: level %s has non-positive geometry", l.Name)
		}
		if l.SizeBytes%l.LineBytes != 0 {
			return fmt.Errorf("machine: level %s size not a multiple of line size", l.Name)
		}
		if (l.SizeBytes/l.LineBytes)%l.Assoc != 0 {
			return fmt.Errorf("machine: level %s lines not divisible by associativity", l.Name)
		}
		if l.SizeBytes < prev {
			return fmt.Errorf("machine: level %s smaller than inner level", l.Name)
		}
		if l.BandwidthBytesPerSec <= 0 {
			return fmt.Errorf("machine: level %s has non-positive bandwidth", l.Name)
		}
		prev = l.SizeBytes
		_ = i
	}
	if m.MemBandwidthBytesPerSec <= 0 {
		return errors.New("machine: non-positive memory bandwidth")
	}
	if m.FlopsPerCorePerSec <= 0 {
		return errors.New("machine: non-positive flop rate")
	}
	if m.Cores <= 0 {
		return errors.New("machine: non-positive core count")
	}
	if m.BWSaturationThreads <= 0 {
		return errors.New("machine: non-positive bandwidth-saturation thread count")
	}
	return nil
}

// TimePerFlop returns tc, the seconds per floating-point operation.
func (m *Machine) TimePerFlop() float64 { return 1 / m.FlopsPerCorePerSec }

// MemBetaSecPerElem returns the main-memory per-element transfer time
// (the paper's βmem) for 8-byte elements.
func (m *Machine) MemBetaSecPerElem() float64 {
	return 8 / m.MemBandwidthBytesPerSec
}

// EffectiveMemBandwidth returns the aggregate memory bandwidth seen by t
// concurrent threads: linear scaling up to BWSaturationThreads, flat
// beyond. This is the saturation behaviour stencil codes exhibit on
// multi-core chips and one of the effects the paper's serial analytical
// model does not capture (Fig. 7 discussion).
func (m *Machine) EffectiveMemBandwidth(threads int) float64 {
	t := float64(threads)
	if t < 1 {
		t = 1
	}
	if t > m.BWSaturationThreads {
		t = m.BWSaturationThreads
	}
	return m.MemBandwidthBytesPerSec * t
}

// BlueWatersXE6 returns the paper's experimental platform: one AMD
// Interlagos model 6276 socket of a Cray XE6 node (Section III.A).
// 16 KB write-through L1D, 2 MB write-back L2, 8 MB shared write-back
// L3, 2.3 GHz Bulldozer cores.
func BlueWatersXE6() *Machine {
	return &Machine{
		Name: "BlueWaters-XE6-Interlagos6276",
		Levels: []CacheLevel{
			{Name: "L1", SizeBytes: 16 << 10, LineBytes: 64, Assoc: 4,
				BandwidthBytesPerSec: 70e9, LatencySec: 1.7e-9},
			{Name: "L2", SizeBytes: 2 << 20, LineBytes: 64, Assoc: 16,
				BandwidthBytesPerSec: 35e9, LatencySec: 9e-9},
			{Name: "L3", SizeBytes: 8 << 20, LineBytes: 64, Assoc: 64,
				BandwidthBytesPerSec: 20e9, LatencySec: 20e-9},
		},
		MemBandwidthBytesPerSec: 6.4e9, // per-core share of ~51 GB/s socket
		MemLatencySec:           90e-9,
		FlopsPerCorePerSec:      9.2e9, // 2.3 GHz × 4-wide FMA-less SIMD
		Cores:                   16,
		BWSaturationThreads:     5,
		ThreadSpawnOverheadSec:  4e-6,
	}
}

// GenericXeon returns a contemporary Intel-like server socket, used by
// the hardware-change example.
func GenericXeon() *Machine {
	return &Machine{
		Name: "Generic-Xeon",
		Levels: []CacheLevel{
			{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8,
				BandwidthBytesPerSec: 150e9, LatencySec: 1.2e-9},
			{Name: "L2", SizeBytes: 1 << 20, LineBytes: 64, Assoc: 16,
				BandwidthBytesPerSec: 75e9, LatencySec: 4e-9},
			{Name: "L3", SizeBytes: 32 << 20, LineBytes: 64, Assoc: 16,
				BandwidthBytesPerSec: 40e9, LatencySec: 15e-9},
		},
		MemBandwidthBytesPerSec: 12e9,
		MemLatencySec:           70e-9,
		FlopsPerCorePerSec:      38.4e9,
		Cores:                   24,
		BWSaturationThreads:     8,
		ThreadSpawnOverheadSec:  2e-6,
	}
}

// SmallEdgeNode returns a two-level-cache embedded-class machine, used
// to stress the analytical model's generic n-level formulation.
func SmallEdgeNode() *Machine {
	return &Machine{
		Name: "Small-Edge-Node",
		Levels: []CacheLevel{
			{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 4,
				BandwidthBytesPerSec: 40e9, LatencySec: 2e-9},
			{Name: "L2", SizeBytes: 1 << 20, LineBytes: 64, Assoc: 8,
				BandwidthBytesPerSec: 20e9, LatencySec: 8e-9},
		},
		MemBandwidthBytesPerSec: 4e9,
		MemLatencySec:           110e-9,
		FlopsPerCorePerSec:      4e9,
		Cores:                   4,
		BWSaturationThreads:     2,
		ThreadSpawnOverheadSec:  6e-6,
	}
}

// Presets returns all built-in machine descriptions keyed by short name.
func Presets() map[string]*Machine {
	return map[string]*Machine{
		"bluewaters": BlueWatersXE6(),
		"xeon":       GenericXeon(),
		"edge":       SmallEdgeNode(),
	}
}

package trace

import (
	"testing"

	"lam/internal/cachesim"
)

func TestStencilAccessCount(t *testing.T) {
	cfg := StencilConfig{I: 4, J: 3, K: 2}
	var n uint64
	count, err := Stencil(cfg, func(Access) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	// 8 references (7 reads + 1 write) per interior point.
	want := uint64(4 * 3 * 2 * 8)
	if count != want || n != want {
		t.Errorf("accesses = %d (callback %d), want %d", count, n, want)
	}
}

func TestStencilBlockingPreservesAccessCount(t *testing.T) {
	base := StencilConfig{I: 16, J: 16, K: 8}
	blocked := StencilConfig{I: 16, J: 16, K: 8, BI: 4, BJ: 8, BK: 2}
	var a, b uint64
	if _, err := Stencil(base, func(Access) { a++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := Stencil(blocked, func(Access) { b++ }); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("blocked traversal emits %d accesses, unblocked %d; must match", b, a)
	}
}

func TestStencilBlockingCoversAllWrites(t *testing.T) {
	// Every interior point must be written exactly once, blocked or not.
	cfg := StencilConfig{I: 10, J: 7, K: 5, BI: 3, BJ: 4, BK: 2}
	writes := map[uint64]int{}
	if _, err := Stencil(cfg, func(a Access) {
		if a.Write {
			writes[a.Addr]++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(writes) != 10*7*5 {
		t.Errorf("wrote %d distinct points, want %d", len(writes), 10*7*5)
	}
	for addr, c := range writes {
		if c != 1 {
			t.Errorf("address %d written %d times", addr, c)
		}
	}
}

func TestStencilReadsAndWritesDisjointArrays(t *testing.T) {
	cfg := StencilConfig{I: 8, J: 8, K: 4}
	ii, jj, kk := uint64(8+2), uint64(8+2), uint64(4+2)
	gridBytes := ii * jj * kk * 8
	if _, err := Stencil(cfg, func(a Access) {
		if a.Write && a.Addr < gridBytes {
			t.Fatalf("write at %d landed in the read array (< %d)", a.Addr, gridBytes)
		}
		if !a.Write && a.Addr >= gridBytes {
			t.Fatalf("read at %d landed in the write array", a.Addr)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestStencilTimeStepsPingPong(t *testing.T) {
	cfg := StencilConfig{I: 4, J: 4, K: 2, TimeSteps: 2}
	ii, jj, kk := uint64(6), uint64(6), uint64(4)
	gridBytes := ii * jj * kk * 8
	sawWriteLow, sawWriteHigh := false, false
	if _, err := Stencil(cfg, func(a Access) {
		if a.Write {
			if a.Addr < gridBytes {
				sawWriteLow = true
			} else {
				sawWriteHigh = true
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !sawWriteLow || !sawWriteHigh {
		t.Error("two time steps must write both arrays (ping-pong)")
	}
}

func TestStencilInvalidConfig(t *testing.T) {
	if _, err := Stencil(StencilConfig{I: 0, J: 1, K: 1}, func(Access) {}); err == nil {
		t.Error("expected error for non-positive dims")
	}
}

func TestStencilSmallGridFitsL1AllRevisitsHit(t *testing.T) {
	// A grid whose two arrays fit in one cache must produce exactly
	// compulsory misses: distinct lines touched = misses.
	cfg := StencilConfig{I: 8, J: 8, K: 2}
	c, err := cachesim.NewCache("L", 1<<20, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	lines := map[uint64]bool{}
	if _, err := Stencil(cfg, func(a Access) {
		lines[a.Addr>>6] = true
		c.Access(a.Addr)
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := c.Misses(), uint64(len(lines)); got != want {
		t.Errorf("misses = %d, want compulsory only = %d", got, want)
	}
}

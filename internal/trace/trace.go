// Package trace generates synthetic memory-address traces for the
// stencil traversal patterns the paper models. Feeding these traces to
// internal/cachesim reproduces, in software, the cache-miss counts the
// paper's closed-form model (Section IV.A) approximates — which lets the
// test suite quantify how good that approximation is.
package trace

import "fmt"

// Access is one memory reference of a trace.
type Access struct {
	// Addr is the byte address referenced.
	Addr uint64
	// Write marks a store (the stencil's single output write).
	Write bool
}

// StencilConfig describes one 7-point stencil traversal. Dimensions are
// interior sizes; a ghost layer of width Order surrounds the domain.
type StencilConfig struct {
	// I, J, K are the interior grid dimensions (I fastest-varying).
	I, J, K int
	// Order is the stencil radius l (1 for the 7-point stencil).
	Order int
	// BI, BJ, BK are spatial block sizes; 0 disables blocking in that
	// dimension (block = full extent).
	BI, BJ, BK int
	// TimeSteps is the number of sweeps; 0 means 1.
	TimeSteps int
}

func (c StencilConfig) normalized() (StencilConfig, error) {
	if c.I <= 0 || c.J <= 0 || c.K <= 0 {
		return c, fmt.Errorf("trace: non-positive grid %dx%dx%d", c.I, c.J, c.K)
	}
	if c.Order <= 0 {
		c.Order = 1
	}
	if c.BI <= 0 || c.BI > c.I {
		c.BI = c.I
	}
	if c.BJ <= 0 || c.BJ > c.J {
		c.BJ = c.J
	}
	if c.BK <= 0 || c.BK > c.K {
		c.BK = c.K
	}
	if c.TimeSteps <= 0 {
		c.TimeSteps = 1
	}
	return c, nil
}

// Stencil replays the access stream of a blocked 7-point Jacobi sweep
// over two arrays (read grid and write grid), invoking visit for every
// reference in program order. Returns the number of accesses generated.
//
// Layout matches internal/stencil: row-major with I fastest, ghost
// layer of width Order on each side, arrays placed back to back.
func Stencil(cfg StencilConfig, visit func(Access)) (uint64, error) {
	c, err := cfg.normalized()
	if err != nil {
		return 0, err
	}
	l := c.Order
	ii := uint64(c.I + 2*l)
	jj := uint64(c.J + 2*l)
	kk := uint64(c.K + 2*l)
	gridBytes := ii * jj * kk * 8
	var count uint64

	idx := func(i, j, k int) uint64 {
		return ((uint64(k)*jj+uint64(j))*ii + uint64(i)) * 8
	}
	emit := func(a Access) {
		visit(a)
		count++
	}

	for ts := 0; ts < c.TimeSteps; ts++ {
		// Alternate read/write arrays each sweep (Jacobi ping-pong).
		readBase := uint64(0)
		writeBase := gridBytes
		if ts%2 == 1 {
			readBase, writeBase = writeBase, readBase
		}
		for k0 := l; k0 < c.K+l; k0 += c.BK {
			for j0 := l; j0 < c.J+l; j0 += c.BJ {
				for i0 := l; i0 < c.I+l; i0 += c.BI {
					kEnd := min(k0+c.BK, c.K+l)
					jEnd := min(j0+c.BJ, c.J+l)
					iEnd := min(i0+c.BI, c.I+l)
					for k := k0; k < kEnd; k++ {
						for j := j0; j < jEnd; j++ {
							for i := i0; i < iEnd; i++ {
								emit(Access{Addr: readBase + idx(i, j, k)})
								emit(Access{Addr: readBase + idx(i-1, j, k)})
								emit(Access{Addr: readBase + idx(i+1, j, k)})
								emit(Access{Addr: readBase + idx(i, j-1, k)})
								emit(Access{Addr: readBase + idx(i, j+1, k)})
								emit(Access{Addr: readBase + idx(i, j, k-1)})
								emit(Access{Addr: readBase + idx(i, j, k+1)})
								emit(Access{Addr: writeBase + idx(i, j, k), Write: true})
							}
						}
					}
				}
			}
		}
	}
	return count, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

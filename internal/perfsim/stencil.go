// Package perfsim provides the deterministic ground-truth performance
// simulators that stand in for the paper's Blue Waters measurements
// (see DESIGN.md, substitution table). Each simulator shares the broad
// cost structure of the corresponding analytical model in
// internal/analytical but adds the effects the paper's models *do not*
// capture — blocking loop overheads, SIMD/unroll efficiency, cache
// pressure beyond the idealised working-set analysis, thread bandwidth
// saturation and load imbalance, and configuration-hashed measurement
// noise. That gap is the point: the paper evaluates the hybrid method
// precisely on its ability to learn the difference between an untuned
// analytical model and reality (stencil blocking AM MAPE = 42%, FMM AM
// MAPE = 84.5%).
//
// Every simulator is a pure function of (configuration, machine, seed),
// so each figure in EXPERIMENTS.md is bit-reproducible.
package perfsim

import (
	"fmt"

	"lam/internal/machine"
	"lam/internal/xmath"
)

// StencilWorkload is one stencil configuration — the paper's full PATUS
// modelling vector X = (I, J, K, bi, bj, bk, u, t).
type StencilWorkload struct {
	I, J, K    int // grid dimensions
	TI, TJ, TK int // block sizes; 0 = unblocked dimension
	Unroll     int // inner-loop unroll factor, 0..8
	Threads    int // OpenMP-style worker count; 0 = 1
	TimeSteps  int // sweeps; 0 = 1
}

func (w StencilWorkload) normalized() (StencilWorkload, error) {
	if w.I <= 0 || w.J <= 0 || w.K <= 0 {
		return w, fmt.Errorf("perfsim: non-positive grid %dx%dx%d", w.I, w.J, w.K)
	}
	if w.TI <= 0 || w.TI > w.I {
		w.TI = w.I
	}
	if w.TJ <= 0 || w.TJ > w.J {
		w.TJ = w.J
	}
	if w.TK <= 0 || w.TK > w.K {
		w.TK = w.K
	}
	w.Unroll = xmath.ClampInt(w.Unroll, 0, 8)
	if w.Threads < 1 {
		w.Threads = 1
	}
	if w.TimeSteps < 1 {
		w.TimeSteps = 1
	}
	return w, nil
}

// features returns the hash key identifying this configuration for
// noise generation.
func (w StencilWorkload) features() []float64 {
	return []float64{float64(w.I), float64(w.J), float64(w.K),
		float64(w.TI), float64(w.TJ), float64(w.TK),
		float64(w.Unroll), float64(w.Threads), float64(w.TimeSteps)}
}

// StencilSim is the stencil ground-truth simulator.
type StencilSim struct {
	// Machine describes the simulated hardware. Required.
	Machine *machine.Machine
	// Seed drives the deterministic noise stream.
	Seed uint64
	// NoiseLevel is the relative σ of run-to-run variation; negative
	// disables noise, 0 means the 3.5% default.
	NoiseLevel float64
}

const defaultNoise = 0.035

// Measure returns the simulated execution time in seconds.
func (s *StencilSim) Measure(w StencilWorkload) (float64, error) {
	if s.Machine == nil {
		return 0, fmt.Errorf("perfsim: StencilSim requires a Machine")
	}
	cfg, err := w.normalized()
	if err != nil {
		return 0, err
	}
	mach := s.Machine
	lineW := mach.Levels[0].LineElems()
	const l = 1 // 7-point stencil radius

	// --- Memory traffic (working-set skeleton shared with the AM, but
	// with reduced effective capacity and a TLB-pressure term). ---
	bii := xmath.CeilDiv(cfg.TI+2*l, lineW) * lineW
	bjj := cfg.TJ + 2*l
	bkk := cfg.TK + 2*l
	nb := float64(xmath.CeilDiv(cfg.I, cfg.TI)) *
		float64(xmath.CeilDiv(cfg.J, cfg.TJ)) *
		float64(xmath.CeilDiv(cfg.K, cfg.TK))

	pread := float64(2*l + 1)
	sread := float64(bii * bjj)
	swrite := float64(xmath.CeilDiv(cfg.TI, lineW) * lineW * cfg.TJ)
	stotal := pread*sread + swrite

	basePlanes := float64(xmath.CeilDiv(bii, lineW)) * float64(bjj) * float64(bkk) * nb
	n := float64(cfg.I) * float64(cfg.J) * float64(cfg.K)

	misses := make([]float64, len(mach.Levels))
	for i, lvl := range mach.Levels {
		// Real caches lose capacity to conflicts and the second array:
		// only ~62% of nominal capacity behaves like the idealised
		// fully-associative model.
		capEff := 0.62 * float64(lvl.SizeElems())
		misses[i] = basePlanes * simPlanes(capEff, pread, stotal, sread, float64(bii))
	}
	for i := 1; i < len(misses); i++ {
		if misses[i] > misses[i-1] {
			misses[i] = misses[i-1]
		}
	}

	// Cache-resident transfer time (private per core, scales with
	// threads) and DRAM time (shared, saturates) are tracked apart.
	refs := float64(8) * n // 7 reads + 1 write per point
	cacheT := (refs - float64(lineW)*misses[0]) * mach.Levels[0].BetaSecPerElem()
	if cacheT < 0 {
		cacheT = 0
	}
	for i := 1; i < len(mach.Levels); i++ {
		hits := misses[i-1] - misses[i]
		if hits < 0 {
			hits = 0
		}
		cacheT += hits * float64(lineW) * mach.Levels[i].BetaSecPerElem()
	}
	memBeta := 8 / mach.EffectiveMemBandwidth(cfg.Threads)
	dramT := misses[len(misses)-1] * float64(lineW) * memBeta
	// Write-allocate store stream.
	dramT += float64(xmath.CeilDiv(cfg.TI, lineW)) * float64(cfg.TJ) * float64(bkk) * nb *
		float64(lineW) * memBeta
	// TLB pressure: planes larger than ~512 KB walk page tables.
	if float64(bii*bjj)*8 > 512<<10 {
		dramT *= 1.18
	}
	// Hardware prefetchers lose the stream on very short rows.
	if cfg.TJ < 8 {
		cacheT *= 1.35
		dramT *= 1.35
	}
	if cfg.TK < 4 {
		cacheT *= 1.10
		dramT *= 1.10
	}

	// --- Floating-point time with SIMD/unroll efficiency. ---
	eff := unrollEfficiency(cfg.Unroll)
	if cfg.TI%lineW != 0 {
		eff *= 0.85 // misaligned tile edges break vector stores
	}
	if cfg.TI < lineW {
		eff *= 0.70 // tiles narrower than a vector register
	}
	flopT := 9 * n * mach.TimePerFlop() / eff

	// --- Loop and blocking overheads the AM ignores. ---
	rows := float64(xmath.CeilDiv(cfg.I, cfg.TI)) * float64(cfg.J) * float64(cfg.K)
	overheadT := nb*85e-9 + rows*2.2e-9 + n*0.15e-9

	// --- Thread scaling: memory saturates (already in memBeta), flops
	// scale with sync loss and slab imbalance; spawn cost per sweep. ---
	t := cfg.Threads
	if t > mach.Cores {
		t = mach.Cores
	}
	// Bulldozer modules pair two cores on one FPU: flop throughput
	// climbs in stair-steps of the module count, with the second
	// thread of a module contributing only ~30%. The serial analytical
	// model sees none of this (Fig. 7's premise).
	modules := float64((t + 1) / 2)
	fpUnits := modules + 0.3*(float64(t)-modules)
	par := fpUnits / (1 + 0.05*float64(t-1))
	cachePar := float64(t) / (1 + 0.03*float64(t-1))
	slabs := float64(cfg.J * cfg.K) // collapse(2) scheduling over j,k
	imbalance := 1.0
	if float64(t) > 1 {
		imbalance = float64(xmath.CeilDiv(int(slabs), t)*t) / slabs
	}
	flopT = flopT / par * imbalance
	cacheT = cacheT / cachePar * imbalance
	overheadT = overheadT / par * imbalance
	spawnT := float64(t-1) * mach.ThreadSpawnOverheadSec
	if t > mach.Cores/2 && len(mach.Levels) >= 3 {
		dramT *= 1.08 // cross-socket traffic on the dual-socket node
	}

	// Inter-sweep reuse: when both arrays fit in the last-level cache,
	// only the first sweep pays DRAM; later sweeps run cache-resident.
	// (The paper's analytical model charges full traffic every sweep —
	// one more effect the hybrid has to learn.)
	coldStep := maxf(flopT, cacheT+dramT) + overheadT + spawnT
	steadyStep := coldStep
	wsBytes := 2 * float64((cfg.I+2)*(cfg.J+2)*(cfg.K+2)) * 8
	llc := mach.Levels[len(mach.Levels)-1]
	if wsBytes < 0.62*float64(llc.SizeBytes) {
		steadyStep = maxf(flopT, cacheT) + overheadT + spawnT
	}
	total := coldStep + steadyStep*float64(cfg.TimeSteps-1)
	return s.applyNoise(total, cfg.features()), nil
}

// unrollEfficiency maps the PATUS unroll factor to achieved fraction of
// peak vector throughput.
func unrollEfficiency(u int) float64 {
	switch u {
	case 0, 1:
		return 0.58
	case 2:
		return 0.74
	case 3:
		return 0.78
	case 4:
		return 0.92
	case 5:
		return 0.84
	case 6:
		return 0.88
	case 7:
		return 0.80
	default: // 8: register pressure
		return 0.83
	}
}

// simPlanes is the simulator's plane-fetch curve. Same asymptotes as the
// paper's nplanes cases but a smoothstep transition and the reduced
// capacity applied by the caller — the mismatch the hybrid model must
// learn.
func simPlanes(capEff, pread, stotal, sread, ii float64) float64 {
	b1 := stotal * (2*pread - 1) / pread
	b2 := stotal
	b3 := sread * (2*pread - 1) / pread
	b4 := pread * ii * (2*pread - 1) / pread
	smooth := func(t float64) float64 {
		t = xmath.Clamp(t, 0, 1)
		return t * t * (3 - 2*t)
	}
	switch {
	case capEff >= b1:
		return 1
	case capEff >= b2:
		return xmath.Lerp(pread-1, 1, smooth(xmath.InvLerp(b2, b1, capEff)))
	case capEff >= b3:
		return xmath.Lerp(pread, pread-1, smooth(xmath.InvLerp(b3, b2, capEff)))
	case capEff >= b4:
		return xmath.Lerp(2*pread-1, pread, smooth(xmath.InvLerp(b4, b3, capEff)))
	default:
		return 2*pread - 1
	}
}

// applyNoise multiplies t by the deterministic measurement-noise factor
// for this configuration.
func (s *StencilSim) applyNoise(t float64, feats []float64) float64 {
	return applyNoise(t, s.NoiseLevel, s.Seed, feats)
}

// applyNoise is shared by all simulators: Gaussian relative noise
// truncated at ±3σ plus occasional system jitter (+8% on ~5% of
// configurations), both derived from the configuration hash.
func applyNoise(t, level float64, seed uint64, feats []float64) float64 {
	if level < 0 {
		return t
	}
	if level == 0 {
		level = defaultNoise
	}
	h := xmath.HashConfig(seed, feats)
	g := xmath.Clamp(xmath.HashNormal(h), -3, 3)
	f := 1 + level*g
	if xmath.HashFloat(h, 0x6a6974746572) < 0.05 {
		f *= 1.08
	}
	return t * f
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

package perfsim

import (
	"math"
	"testing"
	"testing/quick"

	"lam/internal/analytical"
	"lam/internal/machine"
)

func stencilSim() *StencilSim {
	return &StencilSim{Machine: machine.BlueWatersXE6(), Seed: 1}
}

func fmmSim() *FMMSim {
	return &FMMSim{Machine: machine.BlueWatersXE6(), Seed: 1}
}

func TestStencilSimPositiveFinite(t *testing.T) {
	s := stencilSim()
	cases := []StencilWorkload{
		{I: 16, J: 16, K: 1},
		{I: 128, J: 128, K: 128},
		{I: 1, J: 128, K: 128, TJ: 8, TK: 8},
		{I: 256, J: 256, K: 256, Threads: 16},
		{I: 64, J: 64, K: 64, TI: 16, TJ: 16, TK: 16, Unroll: 4, Threads: 8},
	}
	for _, w := range cases {
		got, err := s.Measure(w)
		if err != nil {
			t.Fatalf("%+v: %v", w, err)
		}
		if got <= 0 || math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%+v: time %v", w, got)
		}
	}
}

func TestStencilSimDeterministic(t *testing.T) {
	s1 := stencilSim()
	s2 := stencilSim()
	w := StencilWorkload{I: 64, J: 64, K: 64, TI: 8, TJ: 8, TK: 8, Threads: 4}
	a, _ := s1.Measure(w)
	b, _ := s2.Measure(w)
	if a != b {
		t.Errorf("same seed produced %v and %v", a, b)
	}
	s3 := &StencilSim{Machine: machine.BlueWatersXE6(), Seed: 2}
	c, _ := s3.Measure(w)
	if a == c {
		t.Error("different seeds should perturb the measurement")
	}
}

func TestStencilSimNoiseBounded(t *testing.T) {
	noisy := stencilSim()
	clean := &StencilSim{Machine: machine.BlueWatersXE6(), Seed: 1, NoiseLevel: -1}
	f := func(j, k uint8) bool {
		w := StencilWorkload{I: 32, J: 16 + int(j)%112, K: 16 + int(k)%112}
		a, err := noisy.Measure(w)
		if err != nil {
			return false
		}
		b, err := clean.Measure(w)
		if err != nil {
			return false
		}
		r := a / b
		return r > 0.85 && r < 1.25 // 3σ of 3.5% plus 8% jitter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStencilSimMoreThreadsNeverMuchSlower(t *testing.T) {
	// Memory-bound large grid: threads should help up to saturation.
	s := &StencilSim{Machine: machine.BlueWatersXE6(), Seed: 1, NoiseLevel: -1}
	w := StencilWorkload{I: 192, J: 192, K: 192}
	t1, _ := s.Measure(w)
	w.Threads = 4
	t4, _ := s.Measure(w)
	if t4 >= t1 {
		t.Errorf("4 threads (%v) should beat 1 thread (%v) on a large grid", t4, t1)
	}
}

func TestStencilSimTinyBlocksPenalised(t *testing.T) {
	s := &StencilSim{Machine: machine.BlueWatersXE6(), Seed: 1, NoiseLevel: -1}
	good, _ := s.Measure(StencilWorkload{I: 128, J: 128, K: 64})
	bad, _ := s.Measure(StencilWorkload{I: 128, J: 128, K: 64, TI: 1, TJ: 1, TK: 1})
	if bad < 2*good {
		t.Errorf("1×1×1 blocking (%v) should be far slower than unblocked (%v)", bad, good)
	}
}

func TestStencilSimUnrollHelps(t *testing.T) {
	// A compute-heavy small-cache configuration: unroll 4 beats none.
	s := &StencilSim{Machine: machine.BlueWatersXE6(), Seed: 1, NoiseLevel: -1}
	w0 := StencilWorkload{I: 64, J: 64, K: 64}
	w4 := StencilWorkload{I: 64, J: 64, K: 64, Unroll: 4}
	a, _ := s.Measure(w0)
	b, _ := s.Measure(w4)
	if b > a {
		t.Errorf("unroll 4 (%v) should not be slower than no unroll (%v)", b, a)
	}
}

func TestStencilSimErrors(t *testing.T) {
	s := &StencilSim{}
	if _, err := s.Measure(StencilWorkload{I: 4, J: 4, K: 4}); err == nil {
		t.Error("expected error without machine")
	}
	s = stencilSim()
	if _, err := s.Measure(StencilWorkload{I: 0, J: 4, K: 4}); err == nil {
		t.Error("expected error for bad grid")
	}
}

func TestStencilSimVsAnalyticalGridRegion(t *testing.T) {
	// In the Fig. 5 region (cubic grids, no blocking, serial) the
	// paper treats the AM as accurate: our simulator must agree within
	// ~25% there, else Fig. 5's premise breaks.
	s := &StencilSim{Machine: machine.BlueWatersXE6(), Seed: 1, NoiseLevel: -1}
	model := &analytical.StencilModel{Machine: machine.BlueWatersXE6(), WriteAllocate: true}
	worst := 0.0
	for dim := 128; dim <= 256; dim += 16 {
		sim, err := s.Measure(StencilWorkload{I: dim, J: dim, K: dim})
		if err != nil {
			t.Fatal(err)
		}
		pred, err := model.Predict(analytical.StencilParams{I: dim, J: dim, K: dim})
		if err != nil {
			t.Fatal(err)
		}
		ape := math.Abs(pred-sim) / sim
		if ape > worst {
			worst = ape
		}
	}
	if worst > 0.30 {
		t.Errorf("AM error in the accurate region = %.1f%%, want <= 30%%", worst*100)
	}
}

func TestFMMSimPositiveFinite(t *testing.T) {
	s := fmmSim()
	for _, w := range []FMMWorkload{
		{N: 4096, Q: 32, K: 2},
		{N: 16384, Q: 512, K: 12, Threads: 16},
		{N: 8192, Q: 8, K: 6, Threads: 3},
	} {
		got, err := s.Measure(w)
		if err != nil {
			t.Fatalf("%+v: %v", w, err)
		}
		if got <= 0 || math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%+v: time %v", w, got)
		}
	}
}

func TestFMMSimOrderDominates(t *testing.T) {
	s := &FMMSim{Machine: machine.BlueWatersXE6(), Seed: 1, NoiseLevel: -1}
	lo, _ := s.Measure(FMMWorkload{N: 8192, Q: 64, K: 2})
	hi, _ := s.Measure(FMMWorkload{N: 8192, Q: 64, K: 12})
	if hi < 20*lo {
		t.Errorf("k=12 (%v) should dwarf k=2 (%v)", hi, lo)
	}
}

func TestFMMSimThreadsHelpLargeProblems(t *testing.T) {
	s := &FMMSim{Machine: machine.BlueWatersXE6(), Seed: 1, NoiseLevel: -1}
	serial, _ := s.Measure(FMMWorkload{N: 16384, Q: 64, K: 8})
	par, _ := s.Measure(FMMWorkload{N: 16384, Q: 64, K: 8, Threads: 8})
	if par >= serial {
		t.Errorf("8 threads (%v) should beat serial (%v)", par, serial)
	}
	if serial/par > 8 {
		t.Errorf("speedup %v exceeds thread count", serial/par)
	}
}

func TestFMMSimDiminishingThreadReturns(t *testing.T) {
	// Small problem: going from 8 to 16 threads helps less than 1→2.
	s := &FMMSim{Machine: machine.BlueWatersXE6(), Seed: 1, NoiseLevel: -1}
	t1, _ := s.Measure(FMMWorkload{N: 4096, Q: 256, K: 3, Threads: 1})
	t2, _ := s.Measure(FMMWorkload{N: 4096, Q: 256, K: 3, Threads: 2})
	t8, _ := s.Measure(FMMWorkload{N: 4096, Q: 256, K: 3, Threads: 8})
	t16, _ := s.Measure(FMMWorkload{N: 4096, Q: 256, K: 3, Threads: 16})
	gainEarly := t1 / t2
	gainLate := t8 / t16
	if gainLate >= gainEarly {
		t.Errorf("late speedup %v should trail early speedup %v", gainLate, gainEarly)
	}
}

func TestFMMSimQTradeoff(t *testing.T) {
	s := &FMMSim{Machine: machine.BlueWatersXE6(), Seed: 1, NoiseLevel: -1}
	tiny, _ := s.Measure(FMMWorkload{N: 16384, Q: 2, K: 6})
	mid, _ := s.Measure(FMMWorkload{N: 16384, Q: 128, K: 6})
	huge, _ := s.Measure(FMMWorkload{N: 16384, Q: 8192, K: 6})
	if mid >= tiny || mid >= huge {
		t.Errorf("q trade-off broken: q=2 %v, q=128 %v, q=8192 %v", tiny, mid, huge)
	}
}

func TestFMMSimErrors(t *testing.T) {
	s := &FMMSim{}
	if _, err := s.Measure(FMMWorkload{N: 10, Q: 1, K: 1}); err == nil {
		t.Error("expected error without machine")
	}
	s = fmmSim()
	for _, w := range []FMMWorkload{{N: 0, Q: 1, K: 1}, {N: 10, Q: 0, K: 1}, {N: 10, Q: 1, K: 0}} {
		if _, err := s.Measure(w); err == nil {
			t.Errorf("expected error for %+v", w)
		}
	}
}

func TestFMMSimDeterministic(t *testing.T) {
	a, _ := fmmSim().Measure(FMMWorkload{N: 8192, Q: 64, K: 5, Threads: 4})
	b, _ := fmmSim().Measure(FMMWorkload{N: 8192, Q: 64, K: 5, Threads: 4})
	if a != b {
		t.Errorf("FMM sim not deterministic: %v vs %v", a, b)
	}
}

func TestBoundaryFactorRange(t *testing.T) {
	f := func(raw uint16) bool {
		leaves := 1 + float64(raw)
		b := boundaryFactor(leaves)
		return b >= 0.2 && b <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if boundaryFactor(8) >= boundaryFactor(32768) {
		t.Error("bigger trees should have larger interior fraction")
	}
}

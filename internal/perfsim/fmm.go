package perfsim

import (
	"fmt"
	"math"

	"lam/internal/machine"
	"lam/internal/xmath"
)

// FMMWorkload is one FMM configuration — the paper's ExaFMM modelling
// vector X = (t, N, q, k).
type FMMWorkload struct {
	N       int // particles
	Q       int // particles per leaf cell
	K       int // expansion order
	Threads int // worker count; 0 = 1
}

func (w FMMWorkload) normalized() (FMMWorkload, error) {
	if w.N <= 0 {
		return w, fmt.Errorf("perfsim: non-positive N %d", w.N)
	}
	if w.Q <= 0 {
		return w, fmt.Errorf("perfsim: non-positive q %d", w.Q)
	}
	if w.K < 1 {
		return w, fmt.Errorf("perfsim: order k %d < 1", w.K)
	}
	if w.Threads < 1 {
		w.Threads = 1
	}
	return w, nil
}

func (w FMMWorkload) features() []float64 {
	return []float64{float64(w.N), float64(w.Q), float64(w.K), float64(w.Threads)}
}

// FMMSim is the FMM ground-truth simulator. Its per-phase structure
// mirrors the real implementation in internal/fmm (tree build, P2M,
// M2M, M2L, L2L, L2P, P2P) with Cartesian-expansion operation counts,
// whereas the paper's analytical model covers only single-core P2P and
// M2L with idealised constants — the documented gap (AM MAPE ≈ 85%).
type FMMSim struct {
	// Machine describes the simulated hardware. Required.
	Machine *machine.Machine
	// Seed drives the deterministic noise stream.
	Seed uint64
	// NoiseLevel is the relative σ of run-to-run variation; negative
	// disables noise, 0 means the 3.5% default.
	NoiseLevel float64
}

// Measure returns the simulated execution time in seconds.
func (s *FMMSim) Measure(w FMMWorkload) (float64, error) {
	if s.Machine == nil {
		return 0, fmt.Errorf("perfsim: FMMSim requires a Machine")
	}
	cfg, err := w.normalized()
	if err != nil {
		return 0, err
	}
	mach := s.Machine
	tc := mach.TimePerFlop()

	n := float64(cfg.N)
	q := float64(cfg.Q)
	k := float64(cfg.K)
	ncoef := float64((cfg.K + 1) * (cfg.K + 2) * (cfg.K + 3) / 6)

	// Tree geometry: uniform oct-tree with leaves of ~q particles.
	depth := math.Max(1, math.Ceil(math.Log(n/q)/math.Log(8)))
	leaves := math.Pow(8, depth)
	cells := leaves * 8 / 7

	// Tree construction: pointer chasing, essentially serial memory
	// latency bound.
	treeT := n * depth * 22e-9

	// P2M + L2P: per particle, one expansion evaluation (SIMD-hostile).
	plT := 2 * n * ncoef * 6 * tc / 0.5

	// M2M + L2L: per cell, a dense multi-index convolution.
	mmT := 2 * cells * 0.30 * ncoef * ncoef * 4 * tc / 0.6

	// M2L: ~189 well-separated pairs per cell. Per pair: an O(ncoef²)
	// tensor contraction plus the order-2k Taylor table, plus list
	// bookkeeping per pair.
	m2lPairs := 189 * cells * boundaryFactor(leaves)
	m2lFlops := m2lPairs * (0.9*ncoef*ncoef + 10*math.Pow(2*k+1, 3)/6)
	m2lT := m2lFlops * 4 * tc / 0.65
	m2lT += m2lPairs * 45e-9 // per-interaction list/setup overhead

	// P2P: ~27 neighbour cells per leaf, shrunk by the boundary factor
	// the AM's interior-cell assumption ignores; ~10 flops and 4 loads
	// per pair.
	p2pPairs := 27 * boundaryFactor(leaves) * q * n
	p2pT := p2pPairs * 7 * tc / 0.75

	// Memory: P2P streams 4 values per source particle visit; M2L
	// streams source expansions; the cache-oblivious Z^{1/3} terms of
	// Eqs. 12/14 appear with the actual leaf count.
	last := mach.Levels[len(mach.Levels)-1]
	z := float64(last.SizeElems())
	lElems := float64(last.LineElems())
	memBeta := 8 / mach.EffectiveMemBandwidth(cfg.Threads)
	memT := 4*p2pPairs/q*lElems/8*memBeta/lElems*8 + // neighbour-list streaming
		n*lElems/(math.Cbrt(z)*math.Pow(q, 2.0/3.0))*memBeta +
		m2lPairs*ncoef*memBeta +
		n*k*k*lElems/(q*math.Cbrt(z))*memBeta

	// Thread scaling: tree build stays serial; expansion phases scale
	// with per-phase barriers; P2P scales best. (The paper's AM has no
	// thread term at all.)
	t := cfg.Threads
	if t > mach.Cores {
		t = mach.Cores
	}
	// Small FMM problems (N ≤ 16K) scale poorly: heavy sync loss per
	// thread and per-phase barriers put an Amdahl ceiling of ~4x on the
	// speedup the paper's thread range can reach.
	tf := float64(t)
	scaleCompute := tf / (1 + 0.18*(tf-1))
	scaleP2P := tf / (1 + 0.10*(tf-1))
	// Imbalance: few leaves per worker leave stragglers.
	imb := 1.0
	if tf > 1 {
		perWorker := leaves / tf
		imb = (math.Ceil(perWorker) + 0.3) / (perWorker + 0.3)
	}
	barrierT := 6 * 12e-6 * tf // six phase barriers

	compute := treeT +
		(plT+mmT+m2lT)/scaleCompute*imb +
		p2pT/scaleP2P*imb
	total := maxf(compute, memT) + barrierT
	return applyNoise(total, s.NoiseLevel, s.Seed, cfg.features()), nil
}

// boundaryFactor is the mean fraction of the interior-cell neighbour
// count that cells actually have, given the tree's leaf count: small
// trees are mostly surface.
func boundaryFactor(leaves float64) float64 {
	side := math.Cbrt(leaves)
	f := math.Pow((side+1)/(side+3), 3) // (m+1)³/(m+3)³ average over a m³ grid
	return xmath.Clamp(f, 0.2, 1)
}

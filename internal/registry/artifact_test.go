package registry

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lam/internal/artifact"
	"lam/internal/lamerr"
	"lam/internal/ml"
)

// TestFormatDefaultsAndEscapeHatch checks new saves write lamb1 under
// model.lamb, the jsonv1 escape hatch writes model.json, and both load
// bit-identically.
func TestFormatDefaultsAndEscapeHatch(t *testing.T) {
	hy, X := trainFixture(t)
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := Meta{Name: "m", Workload: "stencil-grid", Machine: "bluewaters"}
	m1, err := reg.SaveHybrid(hy, base)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Format != artifact.FormatLAMB1 {
		t.Fatalf("default save format = %q, want lamb1", m1.Format)
	}
	m2, err := reg.SaveHybridOpts(hy, base, SaveOptions{Format: artifact.FormatJSONV1})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Format != artifact.FormatJSONV1 {
		t.Fatalf("jsonv1 save format = %q", m2.Format)
	}
	if _, err := os.Stat(filepath.Join(reg.Root(), "m", "v0001", "model.lamb")); err != nil {
		t.Fatalf("lamb1 artifact file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(reg.Root(), "m", "v0002", "model.json")); err != nil {
		t.Fatalf("jsonv1 artifact file: %v", err)
	}
	if _, err := reg.SaveHybridOpts(hy, base, SaveOptions{Format: "no-such-format"}); err == nil {
		t.Fatal("unknown format accepted")
	}

	want, err := hy.PredictBatchCtx(context.Background(), X)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 2; v++ {
		lm, err := reg.Load("m", v)
		if err != nil {
			t.Fatalf("load v%d: %v", v, err)
		}
		got, err := lm.PredictBatch(context.Background(), X)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("v%d row %d: %v != %v", v, i, got[i], want[i])
			}
		}
	}
}

// TestLegacyRegistrySniffAndCache simulates a registry written before
// the codec layer — model.json with no format field in meta.json — and
// checks it loads unchanged, with the sniffed format cached back into
// meta.json so the second load skips the probe.
func TestLegacyRegistrySniffAndCache(t *testing.T) {
	hy, X := trainFixture(t)
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveHybridOpts(hy, Meta{Name: "legacy", Workload: "stencil-grid", Machine: "bluewaters"},
		SaveOptions{Format: artifact.FormatJSONV1}); err != nil {
		t.Fatal(err)
	}
	// Rewrite meta.json without the format field, as a pre-codec build
	// would have written it.
	metaPath := filepath.Join(reg.Root(), "legacy", "v0001", "meta.json")
	raw, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]any
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	delete(fields, "format")
	stripped, err := json.Marshal(fields)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(metaPath, stripped, 0o644); err != nil {
		t.Fatal(err)
	}

	lm, err := reg.Load("legacy", 0)
	if err != nil {
		t.Fatalf("legacy load: %v", err)
	}
	if lm.Meta.Format != artifact.FormatJSONV1 {
		t.Fatalf("sniffed format = %q, want jsonv1", lm.Meta.Format)
	}
	want, err := hy.PredictBatchCtx(context.Background(), X)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lm.PredictBatch(context.Background(), X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %v != %v", i, got[i], want[i])
		}
	}
	// The sniff result must now be cached in meta.json (satellite:
	// mixed-format registries pay the probe once, not per load).
	cached, err := reg.readMeta("legacy", 1)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Format != artifact.FormatJSONV1 {
		t.Fatalf("cached format = %q, want jsonv1 written back", cached.Format)
	}
}

// TestConvertInPlace converts a version jsonv1 → lamb1 → jsonv1 and
// checks predictions are bit-identical at every step, the artifact file
// is swapped, and converting to the current format is a no-op.
func TestConvertInPlace(t *testing.T) {
	hy, X := trainFixture(t)
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveHybridOpts(hy, Meta{Name: "c", Workload: "stencil-grid", Machine: "bluewaters"},
		SaveOptions{Format: artifact.FormatJSONV1}); err != nil {
		t.Fatal(err)
	}
	want, err := hy.PredictBatchCtx(context.Background(), X)
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		lm, err := reg.Load("c", 0)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		got, err := lm.PredictBatch(context.Background(), X)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s row %d: %v != %v", stage, i, got[i], want[i])
			}
		}
	}
	vdir := filepath.Join(reg.Root(), "c", "v0001")

	meta, err := reg.Convert("c", 0, artifact.FormatLAMB1)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Format != artifact.FormatLAMB1 {
		t.Fatalf("converted format = %q", meta.Format)
	}
	if _, err := os.Stat(filepath.Join(vdir, "model.json")); !os.IsNotExist(err) {
		t.Fatalf("old jsonv1 artifact still present after convert: %v", err)
	}
	check("after convert to lamb1")

	// No-op convert.
	if _, err := reg.Convert("c", 0, artifact.FormatLAMB1); err != nil {
		t.Fatal(err)
	}
	check("after no-op convert")

	if _, err := reg.Convert("c", 0, artifact.FormatJSONV1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(vdir, "model.lamb")); !os.IsNotExist(err) {
		t.Fatalf("old lamb1 artifact still present after convert back: %v", err)
	}
	check("after convert back to jsonv1")

	info, _, err := reg.ArtifactInfo("c", 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Format != artifact.FormatJSONV1 || info.Kind != KindHybrid {
		t.Fatalf("ArtifactInfo = %+v", info)
	}
	if !strings.HasPrefix(info.Estimator, "hybrid(") {
		t.Fatalf("estimator = %q", info.Estimator)
	}
}

// TestCorruptLamb1FailsTyped damages a saved lamb1 artifact and checks
// Load fails with ErrCorruptArtifact.
func TestCorruptLamb1FailsTyped(t *testing.T) {
	hy, _ := trainFixture(t)
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveHybrid(hy, Meta{Name: "x", Workload: "stencil-grid", Machine: "bluewaters"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(reg.Root(), "x", "v0001", "model.lamb")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("x", 0); !errors.Is(err, lamerr.ErrCorruptArtifact) {
		t.Fatalf("load of bit-flipped artifact: got %v, want ErrCorruptArtifact", err)
	}
}

// benchModel builds a serving-scale regressor: a 100-tree extra-trees
// pipeline fitted on a few thousand samples, the shape lam-serve
// actually cold-loads.
func benchModel(b *testing.B) ml.Regressor {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	n, d := 4000, 6
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		X[i] = row
		y[i] = row[0]*row[1] + row[2]
	}
	reg := &ml.Pipeline{Model: ml.NewExtraTrees(100, 1)}
	if err := reg.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	return reg
}

// benchRegistry publishes the bench model once per format and returns
// the registry.
func benchRegistry(b *testing.B, format string) *Registry {
	b.Helper()
	reg, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := reg.SaveRegressorOpts(benchModel(b), Meta{Name: "bench"}, SaveOptions{Format: format}); err != nil {
		b.Fatal(err)
	}
	return reg
}

func benchColdLoad(b *testing.B, format string) {
	reg := benchRegistry(b, format)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Load("bench", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdLoadJSON vs BenchmarkColdLoadBinary is the cold-start
// claim of the artifact plane: lamb1 loads are one file read plus
// slice-casting, jsonv1 loads decode per node. See BENCH_PR6.json for
// recorded runs.
func BenchmarkColdLoadJSON(b *testing.B)   { benchColdLoad(b, artifact.FormatJSONV1) }
func BenchmarkColdLoadBinary(b *testing.B) { benchColdLoad(b, artifact.FormatLAMB1) }

package registry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// rolloutStateFile is the per-model progressive-delivery state file,
// written next to the version directories (and their meta.json files)
// so the rollout a model is in survives a serving restart exactly like
// the artifacts themselves do.
const rolloutStateFile = "rollout.json"

// HolddownEntry quarantines one version after a rollback: until Until
// passes, the rollout controller refuses to canary it again.
type HolddownEntry struct {
	Version int       `json:"version"`
	Until   time.Time `json:"until"`
	// Reason is free-form provenance ("rolled back at canary stage 1",
	// "artifact load failed").
	Reason string `json:"reason,omitempty"`
}

// RolloutState is the persisted progressive-delivery state of one
// model: which version "latest" requests are pinned to while a newer
// version is still proving itself, which candidate is under evaluation
// and where it stands, and which versions are quarantined. The file is
// written atomically (tmp + rename) on every transition, so a crashed
// or restarted server resumes the rollout instead of blindly serving
// the registry's newest version.
type RolloutState struct {
	Model string `json:"model"`
	// Pinned is the version served as "latest" while non-zero — the
	// incumbent of an active rollout, or the last good version after a
	// rollback whose bad candidate is still the newest on disk.
	Pinned int `json:"pinned,omitempty"`
	// Candidate is the version under evaluation; 0 when no rollout is
	// active.
	Candidate int `json:"candidate,omitempty"`
	// Phase is "shadow" or "canary" while a rollout is active, ""
	// otherwise.
	Phase string `json:"phase,omitempty"`
	// Stage is the canary stage index (into the configured fractions).
	Stage int `json:"stage,omitempty"`
	// Paused freezes automatic stage transitions (operator action).
	Paused    bool      `json:"paused,omitempty"`
	UpdatedAt time.Time `json:"updated_at"`
	// Holddown lists quarantined versions.
	Holddown []HolddownEntry `json:"holddown,omitempty"`
	// LastTransition is free-form provenance of the most recent state
	// change ("promoted v3", "rolled back v2 at canary stage 0").
	LastTransition string `json:"last_transition,omitempty"`
}

// SaveRolloutState persists st atomically under st.Model's directory.
// The temp file is created in the same directory as the final name so
// the rename can never cross filesystems.
func (r *Registry) SaveRolloutState(st RolloutState) error {
	if !nameRE.MatchString(st.Model) {
		return fmt.Errorf("registry: invalid model name %q (want %s)", st.Model, nameRE)
	}
	nameDir := filepath.Join(r.root, st.Model)
	if err := os.MkdirAll(nameDir, 0o755); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	st.UpdatedAt = time.Now().UTC()
	raw, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	tmp, err := os.CreateTemp(nameDir, ".rollout-*")
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	_, werr := tmp.Write(append(raw, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("registry: writing rollout state: %w", werr)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(nameDir, rolloutStateFile)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("registry: publishing rollout state: %w", err)
	}
	return nil
}

// LoadRolloutState reads the persisted rollout state for name. ok is
// false when no state has ever been saved (a model that has never been
// through a rollout); a corrupt file is an error, not an absence — the
// caller decides whether serving blind is acceptable.
func (r *Registry) LoadRolloutState(name string) (st RolloutState, ok bool, err error) {
	if !nameRE.MatchString(name) {
		return RolloutState{}, false, nil
	}
	raw, err := os.ReadFile(filepath.Join(r.root, name, rolloutStateFile))
	if os.IsNotExist(err) {
		return RolloutState{}, false, nil
	}
	if err != nil {
		return RolloutState{}, false, fmt.Errorf("registry: %w", err)
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return RolloutState{}, false, fmt.Errorf("registry: corrupt rollout state for %s: %w", name, err)
	}
	return st, true, nil
}

// ClearRolloutState removes name's persisted rollout state. A missing
// file is not an error.
func (r *Registry) ClearRolloutState(name string) error {
	if !nameRE.MatchString(name) {
		return nil
	}
	err := os.Remove(filepath.Join(r.root, name, rolloutStateFile))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("registry: %w", err)
	}
	return nil
}

package registry

import (
	"context"
	"math"
	"testing"

	"lam/internal/ml"
)

// TestApplyLayout relayouts a loaded model through every exact layout
// and checks predictions stay bit-identical; a quantized relayout of
// the loaded copy also works (the compiled plane is private to it).
func TestApplyLayout(t *testing.T) {
	X := make([][]float64, 150)
	y := make([]float64, 150)
	for i := range X {
		X[i] = []float64{float64(i % 17), float64(i % 5), float64(i % 3)}
		y[i] = X[i][0]*1.5 - X[i][1] + 0.25*X[i][2]
	}
	f := ml.NewExtraTrees(20, 9)
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveRegressor(f, Meta{Name: "et"}); err != nil {
		t.Fatal(err)
	}
	lm, err := reg.Load("et", 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lm.PredictBatch(context.Background(), X)
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range []ml.Layout{ml.LayoutStandard, ml.LayoutLevelOrder, ml.LayoutImplicitLeft} {
		if err := lm.ApplyLayout(layout); err != nil {
			t.Fatalf("ApplyLayout(%v): %v", layout, err)
		}
		if got, ok := lm.Layout(); !ok || got != layout {
			t.Fatalf("Layout() = %v, %v after ApplyLayout(%v)", got, ok, layout)
		}
		got, err := lm.PredictBatch(context.Background(), X)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("layout %v row %d: %v != %v", layout, i, got[i], want[i])
			}
		}
	}
	if err := lm.ApplyLayout(ml.LayoutQuant16); err != nil {
		t.Fatalf("ApplyLayout(quant16): %v", err)
	}
	if got, ok := lm.Layout(); !ok || got != ml.LayoutQuant16 {
		t.Fatalf("Layout() = %v, %v after quant16", got, ok)
	}
}

// TestQuantizedModelRegistryRoundTrip publishes a quantized model as a
// new version (the lam-model quantize flow) and checks the reloaded
// copy predicts bit-identically to the in-memory quantized model while
// the exact source version stays intact.
func TestQuantizedModelRegistryRoundTrip(t *testing.T) {
	X := make([][]float64, 150)
	y := make([]float64, 150)
	for i := range X {
		X[i] = []float64{float64(i % 17), float64(i % 5)}
		y[i] = X[i][0] - 2*X[i][1]
	}
	f := ml.NewExtraTrees(10, 4)
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveRegressor(f, Meta{Name: "m"}); err != nil {
		t.Fatal(err)
	}
	q, err := ml.Quantize(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := reg.SaveRegressor(q, Meta{Name: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != 2 {
		t.Fatalf("quantized publish got version %d, want 2", meta.Version)
	}

	qlm, err := reg.Load("m", 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := qlm.PredictBatch(context.Background(), X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if math.Float64bits(got[i]) != math.Float64bits(q.Predict(X[i])) {
			t.Fatalf("row %d: reloaded quantized model diverges", i)
		}
	}
	if l, ok := qlm.Layout(); !ok || l != ml.LayoutQuant8 {
		t.Fatalf("quantized version layout %v, %v; want quant8", l, ok)
	}

	// The exact source version still loads and predicts exactly.
	lm, err := reg.Load("m", 1)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := lm.PredictBatch(context.Background(), X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if math.Float64bits(exact[i]) != math.Float64bits(f.Predict(X[i])) {
			t.Fatalf("row %d: exact version diverges after quantized publish", i)
		}
	}
}

package registry

import (
	"context"
	"fmt"

	"lam/internal/hybrid"
	"lam/internal/lamerr"
	"lam/internal/ml"
)

// Model is one loaded registry version, ready to serve. It satisfies
// the facade's context-first Predictor interface, and its batch path is
// bit-identical to calling the underlying library model directly —
// there is exactly one prediction code path, shared by the library, the
// registry and lam-serve.
type Model struct {
	// Meta is the stored metadata of the loaded version.
	Meta Meta

	hybrid    *hybrid.Model
	regressor ml.Regressor
	// Workers bounds batch-prediction parallelism for regressor models
	// (hybrid models carry their own Workers in their config); <= 0
	// means the process default.
	Workers int
}

// Hybrid returns the underlying hybrid model, or nil for regressor
// artifacts.
func (m *Model) Hybrid() *hybrid.Model { return m.hybrid }

// Regressor returns the underlying ML regressor, or nil for hybrid
// artifacts.
func (m *Model) Regressor() ml.Regressor { return m.regressor }

// ApplyLayout switches the loaded model's compiled tree plane to the
// given traversal layout (see ml.Layout). Call right after Load, before
// the model is shared with request goroutines — relayout is not
// concurrency-safe. LayoutDefault resolves to the process default;
// non-tree models accept exact layouts as a no-op.
func (m *Model) ApplyLayout(l ml.Layout) error {
	if m.hybrid != nil {
		return m.hybrid.SetLayout(l)
	}
	if m.regressor == nil {
		return fmt.Errorf("registry: %w", lamerr.ErrNotFitted)
	}
	return ml.SetLayoutOf(m.regressor, l)
}

// Layout reports the traversal layout of the model's compiled tree
// plane, and whether it has one.
func (m *Model) Layout() (ml.Layout, bool) {
	if m.hybrid != nil {
		return ml.LayoutOf(m.hybrid.ML())
	}
	if m.regressor == nil {
		return ml.LayoutDefault, false
	}
	return ml.LayoutOf(m.regressor)
}

// Predict scores one feature vector.
func (m *Model) Predict(ctx context.Context, x []float64) (float64, error) {
	if m.hybrid != nil {
		return m.hybrid.PredictCtx(ctx, x)
	}
	if m.regressor == nil {
		return 0, fmt.Errorf("registry: %w", lamerr.ErrNotFitted)
	}
	return ml.PredictCtx(ctx, m.regressor, x)
}

// PredictBatch scores every row of X with prompt cancellation between
// rows; the output is bit-identical to len(X) sequential Predict calls
// for every worker count.
func (m *Model) PredictBatch(ctx context.Context, X [][]float64) ([]float64, error) {
	out := make([]float64, len(X))
	if err := m.PredictBatchInto(ctx, X, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictBatchInto scores every row of X into out (which must have
// len(X) elements): the allocation-free path lam-serve feeds its
// pooled response buffers through. Loaded artifacts decode straight
// into compiled flat node tables, so with Workers == 1 the regressor
// path performs zero allocations per call in steady state.
func (m *Model) PredictBatchInto(ctx context.Context, X [][]float64, out []float64) error {
	if m.hybrid != nil {
		return m.hybrid.PredictBatchIntoCtx(ctx, X, out)
	}
	if m.regressor == nil {
		return fmt.Errorf("registry: %w", lamerr.ErrNotFitted)
	}
	return ml.PredictBatchIntoCtx(ctx, m.regressor, X, out, m.Workers)
}

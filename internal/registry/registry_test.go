package registry

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"lam/internal/experiments"
	"lam/internal/hybrid"
	"lam/internal/lamerr"
	"lam/internal/machine"
	"lam/internal/ml"
)

// trainFixture builds a small hybrid model + its train/test split on
// the stencil-grid workload.
func trainFixture(t *testing.T) (*hybrid.Model, [][]float64) {
	t.Helper()
	m := machine.BlueWatersXE6()
	ds, err := experiments.DatasetByName("stencil-grid", m, 42)
	if err != nil {
		t.Fatal(err)
	}
	am, err := experiments.AMByDataset("stencil-grid", m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	train, test, err := ds.SampleFraction(0.02, rng)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := hybrid.Train(train, am, hybrid.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return hy, test.X[:50]
}

// TestHybridRoundTrip saves a hybrid model, reloads it through the
// registry, and checks predictions are bit-identical to the in-memory
// model.
func TestHybridRoundTrip(t *testing.T) {
	hy, X := trainFixture(t)
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta, err := reg.SaveHybrid(hy, Meta{
		Name: "grid-hybrid", Workload: "stencil-grid", Machine: "bluewaters",
		TrainSize: 14, TestMAPE: 1.23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != 1 || meta.Kind != KindHybrid || meta.CreatedAt.IsZero() {
		t.Fatalf("bad completed meta: %+v", meta)
	}

	lm, err := reg.Load("grid-hybrid", 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := hy.PredictBatchCtx(context.Background(), X)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lm.PredictBatch(context.Background(), X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: registry %v != library %v", i, got[i], want[i])
		}
	}
}

// TestVersioning checks auto-increment and explicit-version loads.
func TestVersioning(t *testing.T) {
	hy, _ := trainFixture(t)
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := Meta{Name: "m", Workload: "stencil-grid", Machine: "bluewaters"}
	for want := 1; want <= 3; want++ {
		meta, err := reg.SaveHybrid(hy, base)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Version != want {
			t.Fatalf("save %d allocated version %d", want, meta.Version)
		}
	}
	lm, err := reg.Load("m", 2)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Meta.Version != 2 {
		t.Fatalf("loaded version %d, want 2", lm.Meta.Version)
	}
	all, err := reg.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("List returned %d entries, want 3", len(all))
	}
}

// TestRegressorRoundTrip saves a fitted pipeline and checks the loaded
// model predicts bit-identically and validates arity.
func TestRegressorRoundTrip(t *testing.T) {
	X := make([][]float64, 120)
	y := make([]float64, 120)
	for i := range X {
		X[i] = []float64{float64(i % 13), float64(i % 7)}
		y[i] = 2*X[i][0] - X[i][1]
	}
	p := &ml.Pipeline{Model: ml.NewExtraTrees(15, 5)}
	if err := p.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveRegressor(p, Meta{Name: "et-pipe"}); err != nil {
		t.Fatal(err)
	}
	lm, err := reg.Load("et-pipe", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lm.PredictBatch(context.Background(), X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if got[i] != p.Predict(X[i]) {
			t.Fatalf("row %d: %v != %v", i, got[i], p.Predict(X[i]))
		}
	}
	if _, err := lm.Predict(context.Background(), []float64{1, 2, 3}); !errors.Is(err, lamerr.ErrDimension) {
		t.Fatalf("wrong-arity predict: got %v, want ErrDimension", err)
	}
}

// TestConcurrentSaves races several goroutines saving under one name
// and checks every save lands on a distinct version with none lost.
func TestConcurrentSaves(t *testing.T) {
	hy, _ := trainFixture(t)
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	versions := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			meta, err := reg.SaveHybrid(hy, Meta{Name: "raced", Workload: "stencil-grid", Machine: "bluewaters"})
			versions[i], errs[i] = meta.Version, err
		}(i)
	}
	wg.Wait()
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("save %d: %v", i, errs[i])
		}
		if seen[versions[i]] {
			t.Fatalf("version %d allocated twice", versions[i])
		}
		seen[versions[i]] = true
	}
	latest, err := reg.LatestVersion("raced")
	if err != nil {
		t.Fatal(err)
	}
	if latest != n {
		t.Fatalf("latest = %d, want %d", latest, n)
	}
}

// TestConcurrentSaveStress is the publish-path guard for the online
// retrainer: many goroutines spread over several independent Registry
// handles on the same directory (the cross-process case — in-process
// saveMu does not serialise them, only the rename-retry loop does)
// hammer SaveHybrid on one name. Every save must land on its own
// version, the version sequence must come out dense 1..N, and every
// published version must be fully readable — meta.json consistent with
// its directory and the artifact loadable (no torn publishes).
func TestConcurrentSaveStress(t *testing.T) {
	hy, X := trainFixture(t)
	dir := t.TempDir()
	const handles = 4
	const savesPerHandle = 6
	regs := make([]*Registry, handles)
	for i := range regs {
		r, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		regs[i] = r
	}

	type result struct {
		meta Meta
		err  error
	}
	results := make([]result, handles*savesPerHandle)
	var wg sync.WaitGroup
	for h := 0; h < handles; h++ {
		for s := 0; s < savesPerHandle; s++ {
			wg.Add(1)
			go func(h, s int) {
				defer wg.Done()
				meta, err := regs[h].SaveHybrid(hy, Meta{
					Name: "stress", Workload: "stencil-grid", Machine: "bluewaters",
					TrainSize: 14, TestMAPE: float64(h*savesPerHandle + s),
				})
				results[h*savesPerHandle+s] = result{meta, err}
			}(h, s)
		}
	}
	wg.Wait()

	const total = handles * savesPerHandle
	seen := make(map[int]bool, total)
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("save %d: %v", i, r.err)
		}
		if seen[r.meta.Version] {
			t.Fatalf("version %d allocated twice", r.meta.Version)
		}
		seen[r.meta.Version] = true
	}
	for v := 1; v <= total; v++ {
		if !seen[v] {
			t.Fatalf("version sequence has a hole at v%d", v)
		}
	}
	reg := regs[0]
	if latest, err := reg.LatestVersion("stress"); err != nil || latest != total {
		t.Fatalf("latest = %d (%v), want %d", latest, err, total)
	}
	// No torn meta: List (which reads every meta.json) must see all of
	// them, each internally consistent.
	metas, err := reg.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != total {
		t.Fatalf("List sees %d versions, want %d (a torn meta.json is skipped)", len(metas), total)
	}
	for _, m := range metas {
		if m.Name != "stress" || m.Kind != KindHybrid || m.CreatedAt.IsZero() {
			t.Fatalf("torn meta: %+v", m)
		}
		if on, err := reg.readMeta(m.Name, m.Version); err != nil || on.Version != m.Version {
			t.Fatalf("meta for v%d reads back as %+v (%v)", m.Version, on, err)
		}
	}
	// And the artifacts serve: spot-check first, middle, last.
	want, err := hy.PredictBatchCtx(context.Background(), X[:4])
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{1, total / 2, total} {
		lm, err := reg.Load("stress", v)
		if err != nil {
			t.Fatalf("loading v%d: %v", v, err)
		}
		got, err := lm.PredictBatch(context.Background(), X[:4])
		if err != nil {
			t.Fatalf("serving v%d: %v", v, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("v%d row %d: %v != %v", v, i, got[i], want[i])
			}
		}
	}
}

// TestVersionDirParsing checks stray directories are ignored and
// 5-digit versions round-trip (the zero-padding is a floor, not a
// ceiling).
func TestVersionDirParsing(t *testing.T) {
	dir := t.TempDir()
	reg, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hy, _ := trainFixture(t)
	if _, err := reg.SaveHybrid(hy, Meta{Name: "m", Workload: "stencil-grid", Machine: "bluewaters"}); err != nil {
		t.Fatal(err)
	}
	// Junk that must not parse as versions.
	for _, junk := range []string{"v0001abc", "vx", "notes", ".tmp-v123"} {
		if err := os.MkdirAll(filepath.Join(dir, "m", junk), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	// A hand-planted 5-digit version: copy v0001's contents.
	src := filepath.Join(dir, "m", "v0001")
	dst := filepath.Join(dir, "m", "v10000")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	latest, err := reg.LatestVersion("m")
	if err != nil {
		t.Fatal(err)
	}
	if latest != 10000 {
		t.Fatalf("latest = %d, want 10000", latest)
	}
	meta, err := reg.SaveHybrid(hy, Meta{Name: "m", Workload: "stencil-grid", Machine: "bluewaters"})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != 10001 {
		t.Fatalf("next version = %d, want 10001", meta.Version)
	}
	if _, err := reg.Load("m", 10001); err != nil {
		t.Fatalf("loading v10001: %v", err)
	}
}

// TestLatestVersion covers the cheap latest-resolution path.
func TestLatestVersion(t *testing.T) {
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.LatestVersion("missing"); !errors.Is(err, lamerr.ErrUnknownModel) {
		t.Fatalf("missing name: got %v, want ErrUnknownModel", err)
	}
	hy, _ := trainFixture(t)
	for i := 0; i < 2; i++ {
		if _, err := reg.SaveHybrid(hy, Meta{Name: "m", Workload: "stencil-grid", Machine: "bluewaters"}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := reg.LatestVersion("m")
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("latest = %d, want 2", v)
	}
}

// TestPathShapedNamesRejected checks HTTP-supplied names cannot escape
// the registry root: anything failing the name grammar resolves to
// ErrUnknownModel without touching the filesystem outside root.
func TestPathShapedNamesRejected(t *testing.T) {
	dir := t.TempDir()
	reg, err := Open(filepath.Join(dir, "registry"))
	if err != nil {
		t.Fatal(err)
	}
	// Plant a version-shaped layout OUTSIDE the registry root; a
	// traversal name must not reach it.
	outside := filepath.Join(dir, "secret", "v0001")
	if err := os.MkdirAll(outside, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"../secret", "..", "a/b", "/etc", ".hidden", "UPPER"} {
		if _, err := reg.Load(name, 0); !errors.Is(err, lamerr.ErrUnknownModel) {
			t.Errorf("Load(%q): got %v, want ErrUnknownModel", name, err)
		}
		if _, err := reg.LatestVersion(name); !errors.Is(err, lamerr.ErrUnknownModel) {
			t.Errorf("LatestVersion(%q): got %v, want ErrUnknownModel", name, err)
		}
	}
}

// TestTypedErrors covers the failure classes.
func TestTypedErrors(t *testing.T) {
	hy, _ := trainFixture(t)
	reg, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("nope", 0); !errors.Is(err, lamerr.ErrUnknownModel) {
		t.Fatalf("missing name: got %v, want ErrUnknownModel", err)
	}
	if _, err := reg.SaveHybrid(hy, Meta{Name: "m"}); err == nil {
		t.Fatal("SaveHybrid without workload/machine metadata succeeded")
	}
	if _, err := reg.SaveHybrid(hy, Meta{Name: "m", Workload: "bogus", Machine: "bluewaters"}); !errors.Is(err, lamerr.ErrUnknownWorkload) {
		t.Fatalf("bogus workload: got %v, want ErrUnknownWorkload", err)
	}
	if _, err := reg.SaveHybrid(hy, Meta{Name: "m", Workload: "stencil-grid", Machine: "bogus"}); !errors.Is(err, lamerr.ErrUnknownMachine) {
		t.Fatalf("bogus machine: got %v, want ErrUnknownMachine", err)
	}
	if _, err := reg.SaveHybrid(hy, Meta{Name: "Bad Name!", Workload: "stencil-grid", Machine: "bluewaters"}); err == nil {
		t.Fatal("invalid name accepted")
	}
	meta, err := reg.SaveHybrid(hy, Meta{Name: "m", Workload: "stencil-grid", Machine: "bluewaters"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("m", meta.Version+5); !errors.Is(err, lamerr.ErrUnknownModel) {
		t.Fatalf("missing version: got %v, want ErrUnknownModel", err)
	}
}

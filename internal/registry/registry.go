package registry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"

	"lam/internal/artifact"
	"lam/internal/experiments"
	"lam/internal/hybrid"
	"lam/internal/lamerr"
	"lam/internal/machine"
	"lam/internal/ml"
	"lam/internal/telemetry"
)

// Model kinds stored in Meta.Kind.
const (
	KindHybrid    = artifact.KindHybrid
	KindRegressor = artifact.KindRegressor
)

// Meta describes one stored model version. Name and Kind are set by the
// registry on save; the caller provides the provenance fields.
type Meta struct {
	// Name is the model's registry name ([a-z0-9._-]+).
	Name string `json:"name"`
	// Version is the 1-based version number within Name.
	Version int `json:"version"`
	// Kind is KindHybrid or KindRegressor.
	Kind string `json:"kind"`
	// Workload is the canonical dataset name the model was trained for
	// (see experiments.DatasetByName). Required for hybrid models — the
	// analytical component is rebuilt from it at load time.
	Workload string `json:"workload,omitempty"`
	// Machine is the machine-preset name the model was trained on.
	// Required for hybrid models.
	Machine string `json:"machine,omitempty"`
	// TrainSize is the number of training samples.
	TrainSize int `json:"train_size,omitempty"`
	// BaseSize is the size of the model's original (pre-adaptation)
	// training set; zero for directly trained artifacts, where
	// TrainSize is the original size. The online retrainer carries it
	// across generations so each retrain rebuilds a same-sized base
	// instead of compounding previously merged window samples into an
	// ever-growing source-distribution draw.
	BaseSize int `json:"base_size,omitempty"`
	// TestMAPE is the held-out MAPE (percent) measured at save time.
	TestMAPE float64 `json:"test_mape,omitempty"`
	// Format is the artifact codec the model file is encoded with
	// (artifact.FormatLAMB1 / artifact.FormatJSONV1). Empty in
	// registries written before the codec layer; Load sniffs those by
	// content and caches the resolved format back into meta.json so
	// later loads skip the probe.
	Format string `json:"format,omitempty"`
	// CreatedAt is the save timestamp (UTC).
	CreatedAt time.Time `json:"created_at"`
	// Notes is free-form provenance.
	Notes string `json:"notes,omitempty"`
}

// SaveOptions tune how an artifact is written. The zero value is the
// default: the lamb1 flat binary format.
type SaveOptions struct {
	// Format selects the artifact codec by name; empty means
	// artifact.DefaultFormat (lamb1). Use artifact.FormatJSONV1 to
	// write artifacts older builds can read.
	Format string
}

// artifactFileName maps a codec name to the artifact's file name in a
// version directory. The jsonv1 name is the historical "model.json",
// so legacy registries need no migration.
func artifactFileName(format string) string {
	if format == artifact.FormatJSONV1 {
		return "model.json"
	}
	return "model.lamb"
}

// artifactCandidates are the file names Load probes, newest format
// first, when metadata doesn't record one.
var artifactCandidates = []string{"model.lamb", "model.json"}

var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]*$`)

// ValidName reports whether name is a legal registry model name
// ([a-z0-9][a-z0-9._-]*). Callers that train before saving (e.g.
// lam-predict -registry) should check this up front so a typo fails in
// milliseconds instead of discarding a long training run at publish
// time.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// versionDirRE matches exactly the directory names versionDir
// produces: "v" + digits (zero-padded to at least 4, wider when the
// count outgrows them). Anything else in a model directory — tmp dirs,
// stray files — is ignored rather than misparsed.
var versionDirRE = regexp.MustCompile(`^v(\d{4,})$`)

// Registry is a directory of versioned model artifacts. All methods are
// safe for concurrent use by independent processes to the extent the
// filesystem's rename atomicity allows; a single process may share one
// Registry across goroutines.
type Registry struct {
	root string
	// saveMu serialises in-process version allocation; cross-process
	// races are resolved by the rename-retry loop in save.
	saveMu sync.Mutex
}

// Open opens (creating if necessary) a registry rooted at dir.
func Open(dir string) (*Registry, error) {
	if dir == "" {
		return nil, fmt.Errorf("registry: empty root directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	return &Registry{root: dir}, nil
}

// Root returns the registry's root directory.
func (r *Registry) Root() string { return r.root }

// SaveHybrid stores a trained hybrid model under meta.Name and returns
// the completed metadata (version, kind, timestamp filled in).
// meta.Workload and meta.Machine are required: they are what Load uses
// to reconstruct the analytical component. The artifact is written in
// the default format (lamb1); use SaveHybridOpts to pick another.
func (r *Registry) SaveHybrid(m *hybrid.Model, meta Meta) (Meta, error) {
	return r.SaveHybridOpts(m, meta, SaveOptions{})
}

// SaveHybridOpts is SaveHybrid with explicit save options.
func (r *Registry) SaveHybridOpts(m *hybrid.Model, meta Meta, opts SaveOptions) (Meta, error) {
	if m == nil || !m.IsFitted() {
		return Meta{}, fmt.Errorf("registry: %w", lamerr.ErrNotFitted)
	}
	if meta.Workload == "" || meta.Machine == "" {
		return Meta{}, fmt.Errorf("registry: hybrid models need Workload and Machine metadata to rebuild the analytical component")
	}
	// Fail on an unknown workload/machine at save time, not at load.
	if _, err := amFor(meta.Workload, meta.Machine); err != nil {
		return Meta{}, err
	}
	meta.Kind = KindHybrid
	return r.save(meta, &artifact.Payload{Hybrid: m}, opts)
}

// SaveRegressor stores a fitted ML regressor (any type the artifact
// codecs support) under meta.Name and returns the completed metadata.
// The artifact is written in the default format (lamb1); use
// SaveRegressorOpts to pick another.
func (r *Registry) SaveRegressor(reg ml.Regressor, meta Meta) (Meta, error) {
	return r.SaveRegressorOpts(reg, meta, SaveOptions{})
}

// SaveRegressorOpts is SaveRegressor with explicit save options.
func (r *Registry) SaveRegressorOpts(reg ml.Regressor, meta Meta, opts SaveOptions) (Meta, error) {
	if reg == nil || !ml.Fitted(reg) {
		return Meta{}, fmt.Errorf("registry: %w", lamerr.ErrNotFitted)
	}
	meta.Kind = KindRegressor
	return r.save(meta, &artifact.Payload{Regressor: reg}, opts)
}

// save allocates the next version directory and writes the model
// artifact (via the codec opts.Format selects) and meta.json into it
// atomically (tmp dir + rename). In-process saves are serialised by
// saveMu; a concurrent save from another process is detected by the
// rename failing against the already-published version directory, in
// which case the allocation is retried with a fresh version number (the
// artifact is only written once — only meta.json is rewritten with the
// new number).
func (r *Registry) save(meta Meta, p *artifact.Payload, opts SaveOptions) (Meta, error) {
	if !nameRE.MatchString(meta.Name) {
		return Meta{}, fmt.Errorf("registry: invalid model name %q (want %s)", meta.Name, nameRE)
	}
	codec, err := artifact.ByName(opts.Format)
	if err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	meta.Format = codec.Name()
	r.saveMu.Lock()
	defer r.saveMu.Unlock()

	nameDir := filepath.Join(r.root, meta.Name)
	if err := os.MkdirAll(nameDir, 0o755); err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	tmp, err := os.MkdirTemp(nameDir, ".tmp-v*")
	if err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	defer os.RemoveAll(tmp)

	mf, err := os.Create(filepath.Join(tmp, artifactFileName(meta.Format)))
	if err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	if err := codec.Encode(mf, p); err != nil {
		mf.Close()
		return Meta{}, fmt.Errorf("registry: writing model artifact: %w", err)
	}
	if err := mf.Close(); err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}

	const maxAttempts = 10
	for attempt := 0; attempt < maxAttempts; attempt++ {
		versions, err := r.versionNumbers(meta.Name)
		if err != nil {
			return Meta{}, err
		}
		next := 1
		if len(versions) > 0 {
			next = versions[len(versions)-1] + 1
		}
		meta.Version = next
		meta.CreatedAt = time.Now().UTC()
		metaRaw, err := json.MarshalIndent(meta, "", "  ")
		if err != nil {
			return Meta{}, fmt.Errorf("registry: %w", err)
		}
		if err := os.WriteFile(filepath.Join(tmp, "meta.json"), append(metaRaw, '\n'), 0o644); err != nil {
			return Meta{}, fmt.Errorf("registry: %w", err)
		}
		err = os.Rename(tmp, r.versionDir(meta.Name, next))
		if err == nil {
			return meta, nil
		}
		// Another process published this version between our scan and
		// the rename; rescan and try the next number.
		if !os.IsExist(err) && !errors.Is(err, syscall.ENOTEMPTY) {
			return Meta{}, fmt.Errorf("registry: publishing version: %w", err)
		}
	}
	return Meta{}, fmt.Errorf("registry: publishing %s: lost the version race %d times", meta.Name, maxAttempts)
}

func (r *Registry) versionDir(name string, version int) string {
	return filepath.Join(r.root, name, fmt.Sprintf("v%04d", version))
}

// versionNumbers lists the published versions of a name, ascending.
// Names that fail nameRE (including anything path-shaped — Load and
// LatestVersion take names straight from HTTP requests via
// internal/serve) resolve to no versions rather than touching the
// filesystem outside the registry root.
func (r *Registry) versionNumbers(name string) ([]int, error) {
	if !nameRE.MatchString(name) {
		return nil, nil
	}
	entries, err := os.ReadDir(filepath.Join(r.root, name))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	var out []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		m := versionDirRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		v, err := strconv.Atoi(m[1])
		if err == nil && v > 0 {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// LatestVersion resolves the newest published version number of a
// name with a single directory scan (no artifact read). A missing name
// wraps lamerr.ErrUnknownModel.
func (r *Registry) LatestVersion(name string) (int, error) {
	versions, err := r.versionNumbers(name)
	if err != nil {
		return 0, err
	}
	if len(versions) == 0 {
		return 0, fmt.Errorf("registry: %w: %q", lamerr.ErrUnknownModel, name)
	}
	return versions[len(versions)-1], nil
}

// Names lists the model names in the registry, sorted.
func (r *Registry) Names() ([]string, error) {
	entries, err := os.ReadDir(r.root)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && nameRE.MatchString(e.Name()) {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// List returns the metadata of every stored version, sorted by name
// then version. Versions whose meta.json is missing or corrupt (e.g. a
// hand-copied directory) are skipped rather than failing the whole
// listing — they still error loudly on Load.
func (r *Registry) List() ([]Meta, error) {
	names, err := r.Names()
	if err != nil {
		return nil, err
	}
	var out []Meta
	for _, name := range names {
		versions, err := r.versionNumbers(name)
		if err != nil {
			return nil, err
		}
		for _, v := range versions {
			m, err := r.readMeta(name, v)
			if err != nil {
				continue
			}
			out = append(out, m)
		}
	}
	return out, nil
}

func (r *Registry) readMeta(name string, version int) (Meta, error) {
	raw, err := os.ReadFile(filepath.Join(r.versionDir(name, version), "meta.json"))
	if err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	var m Meta
	if err := json.Unmarshal(raw, &m); err != nil {
		return Meta{}, fmt.Errorf("registry: corrupt meta for %s v%d: %w", name, version, err)
	}
	return m, nil
}

// AnalyticalFor rebuilds the analytical component a stored hybrid
// version carries, from its metadata — exactly what Load does
// internally. The online retrainer uses it to retrain a drifted hybrid
// against the same analytical model the deployed artifact serves with.
func AnalyticalFor(meta Meta) (hybrid.AnalyticalModel, error) {
	return amFor(meta.Workload, meta.Machine)
}

// amFor rebuilds the analytical model for a (workload, machine) pair.
func amFor(workload, machineName string) (hybrid.AnalyticalModel, error) {
	m, ok := machine.Presets()[machineName]
	if !ok {
		return nil, fmt.Errorf("registry: %w: %q", lamerr.ErrUnknownMachine, machineName)
	}
	return experiments.AMByDataset(workload, m)
}

// resolveVersion maps version <= 0 to the latest published version and
// validates explicit ones. Missing names and versions wrap
// lamerr.ErrUnknownModel.
func (r *Registry) resolveVersion(name string, version int) (int, error) {
	versions, err := r.versionNumbers(name)
	if err != nil {
		return 0, err
	}
	if len(versions) == 0 {
		return 0, fmt.Errorf("registry: %w: %q", lamerr.ErrUnknownModel, name)
	}
	if version <= 0 {
		return versions[len(versions)-1], nil
	}
	if !slices.Contains(versions, version) {
		return 0, fmt.Errorf("registry: %w: %q v%d (have %v)", lamerr.ErrUnknownModel, name, version, versions)
	}
	return version, nil
}

// readArtifact locates and reads a version's model artifact. When the
// metadata records a format, that codec's file is read directly — one
// ReadFile, no probing. Otherwise (legacy registries, or a format this
// build doesn't know) the candidate file names are probed and the codec
// detected from the artifact's leading bytes; cached=false then tells
// the caller to write the resolved format back into meta.json so the
// next load skips the probe.
func (r *Registry) readArtifact(dir, format string) (data []byte, codec artifact.Codec, cached bool, err error) {
	if format != "" {
		if codec, err := artifact.ByName(format); err == nil {
			data, err := os.ReadFile(filepath.Join(dir, artifactFileName(format)))
			if err == nil {
				return data, codec, true, nil
			}
			if !os.IsNotExist(err) {
				return nil, nil, false, fmt.Errorf("registry: %w", err)
			}
			// Recorded file is gone (e.g. a hand-edited directory);
			// fall through to probing.
		}
	}
	for _, fn := range artifactCandidates {
		data, err := os.ReadFile(filepath.Join(dir, fn))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, nil, false, fmt.Errorf("registry: %w", err)
		}
		codec, err := artifact.Detect(data)
		if err != nil {
			return nil, nil, false, fmt.Errorf("registry: %s: %w", fn, err)
		}
		return data, codec, false, nil
	}
	return nil, nil, false, fmt.Errorf("registry: no model artifact in %s (tried %v)", dir, artifactCandidates)
}

// cacheFormat rewrites a version's meta.json with the resolved artifact
// format so subsequent loads skip content sniffing. It is best-effort:
// a read-only registry keeps working, it just re-sniffs each load.
func (r *Registry) cacheFormat(dir string, meta Meta) {
	raw, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, ".meta-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(append(raw, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), filepath.Join(dir, "meta.json")) != nil {
		os.Remove(tmp.Name())
	}
}

// decodeOptions builds the codec decode options for a version: the
// expected payload kind plus, for hybrids, the analytical component
// rebuilt from the (workload, machine) metadata.
func decodeOptions(meta Meta) (artifact.DecodeOptions, error) {
	opts := artifact.DecodeOptions{Kind: meta.Kind}
	if meta.Kind == KindHybrid {
		am, err := amFor(meta.Workload, meta.Machine)
		if err != nil {
			return artifact.DecodeOptions{}, err
		}
		opts.Analytical = am
	}
	return opts, nil
}

// Load restores one stored version as a ready-to-serve Model. version
// <= 0 means the latest. Missing names and versions wrap
// lamerr.ErrUnknownModel; a damaged artifact wraps
// lamerr.ErrCorruptArtifact. The artifact's format comes from the
// metadata when recorded and is sniffed from the file's leading bytes
// otherwise (then cached back into meta.json), so registries written
// before the codec layer load unchanged.
func (r *Registry) Load(name string, version int) (*Model, error) {
	version, err := r.resolveVersion(name, version)
	if err != nil {
		return nil, err
	}
	meta, err := r.readMeta(name, version)
	if err != nil {
		return nil, err
	}
	dir := r.versionDir(name, version)
	data, codec, cached, err := r.readArtifact(dir, meta.Format)
	if err != nil {
		return nil, err
	}
	if !cached {
		meta.Format = codec.Name()
		r.cacheFormat(dir, meta)
	}
	opts, err := decodeOptions(meta)
	if err != nil {
		return nil, err
	}
	p, err := codec.Decode(data, opts)
	if err != nil {
		return nil, fmt.Errorf("registry: %s v%d: %w", name, version, err)
	}
	return &Model{Meta: meta, hybrid: p.Hybrid, regressor: p.Regressor}, nil
}

// LoadCtx is Load with the artifact read and decode recorded as an
// "artifact_load" span on ctx's request trace (no-op without one) —
// the cold-start cost a slow-trace report attributes to the registry
// rather than to scoring.
func (r *Registry) LoadCtx(ctx context.Context, name string, version int) (*Model, error) {
	sp := telemetry.StartSpan(ctx, "artifact_load")
	m, err := r.Load(name, version)
	if err == nil {
		sp.Detail(m.Meta.Name + "@v" + strconv.Itoa(m.Meta.Version))
	}
	sp.End()
	return m, err
}

// ArtifactInfo inspects one stored version's artifact — format, payload
// kind, estimator structure, node counts, size, checksum — without
// constructing a serving Model. version <= 0 means the latest.
func (r *Registry) ArtifactInfo(name string, version int) (artifact.Info, Meta, error) {
	version, err := r.resolveVersion(name, version)
	if err != nil {
		return artifact.Info{}, Meta{}, err
	}
	meta, err := r.readMeta(name, version)
	if err != nil {
		return artifact.Info{}, Meta{}, err
	}
	data, _, _, err := r.readArtifact(r.versionDir(name, version), meta.Format)
	if err != nil {
		return artifact.Info{}, Meta{}, err
	}
	opts, err := decodeOptions(meta)
	if err != nil {
		return artifact.Info{}, Meta{}, err
	}
	info, _, err := artifact.Inspect(data, opts)
	if err != nil {
		return artifact.Info{}, Meta{}, fmt.Errorf("registry: %s v%d: %w", name, version, err)
	}
	return info, meta, nil
}

// Convert re-encodes one stored version's artifact in the named format,
// in place. version <= 0 means the latest. Converting to the format the
// version already uses is a no-op (beyond caching the format in
// meta.json if it wasn't recorded). The new artifact is written and
// renamed into place before meta.json is updated and the old file
// removed, so a crash mid-convert leaves a loadable version: both
// artifact files briefly coexist and Load follows meta.json, falling
// back to probing.
func (r *Registry) Convert(name string, version int, format string) (Meta, error) {
	target, err := artifact.ByName(format)
	if err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	version, err = r.resolveVersion(name, version)
	if err != nil {
		return Meta{}, err
	}
	meta, err := r.readMeta(name, version)
	if err != nil {
		return Meta{}, err
	}
	dir := r.versionDir(name, version)
	data, codec, cached, err := r.readArtifact(dir, meta.Format)
	if err != nil {
		return Meta{}, err
	}
	if codec.Name() == target.Name() {
		if !cached || meta.Format != target.Name() {
			meta.Format = target.Name()
			r.cacheFormat(dir, meta)
		}
		return meta, nil
	}
	opts, err := decodeOptions(meta)
	if err != nil {
		return Meta{}, err
	}
	p, err := codec.Decode(data, opts)
	if err != nil {
		return Meta{}, fmt.Errorf("registry: %s v%d: %w", name, version, err)
	}

	tmp, err := os.CreateTemp(dir, ".convert-*")
	if err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := target.Encode(tmp, p); err != nil {
		tmp.Close()
		return Meta{}, fmt.Errorf("registry: converting %s v%d: %w", name, version, err)
	}
	if err := tmp.Close(); err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	oldFile := artifactFileName(codec.Name())
	newFile := artifactFileName(target.Name())
	if err := os.Rename(tmp.Name(), filepath.Join(dir, newFile)); err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	meta.Format = target.Name()
	raw, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), append(raw, '\n'), 0o644); err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	if oldFile != newFile {
		if err := os.Remove(filepath.Join(dir, oldFile)); err != nil && !os.IsNotExist(err) {
			return Meta{}, fmt.Errorf("registry: removing superseded artifact: %w", err)
		}
	}
	return meta, nil
}

package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"

	"lam/internal/experiments"
	"lam/internal/hybrid"
	"lam/internal/lamerr"
	"lam/internal/machine"
	"lam/internal/ml"
)

// Model kinds stored in Meta.Kind.
const (
	KindHybrid    = "hybrid"
	KindRegressor = "regressor"
)

// Meta describes one stored model version. Name and Kind are set by the
// registry on save; the caller provides the provenance fields.
type Meta struct {
	// Name is the model's registry name ([a-z0-9._-]+).
	Name string `json:"name"`
	// Version is the 1-based version number within Name.
	Version int `json:"version"`
	// Kind is KindHybrid or KindRegressor.
	Kind string `json:"kind"`
	// Workload is the canonical dataset name the model was trained for
	// (see experiments.DatasetByName). Required for hybrid models — the
	// analytical component is rebuilt from it at load time.
	Workload string `json:"workload,omitempty"`
	// Machine is the machine-preset name the model was trained on.
	// Required for hybrid models.
	Machine string `json:"machine,omitempty"`
	// TrainSize is the number of training samples.
	TrainSize int `json:"train_size,omitempty"`
	// BaseSize is the size of the model's original (pre-adaptation)
	// training set; zero for directly trained artifacts, where
	// TrainSize is the original size. The online retrainer carries it
	// across generations so each retrain rebuilds a same-sized base
	// instead of compounding previously merged window samples into an
	// ever-growing source-distribution draw.
	BaseSize int `json:"base_size,omitempty"`
	// TestMAPE is the held-out MAPE (percent) measured at save time.
	TestMAPE float64 `json:"test_mape,omitempty"`
	// CreatedAt is the save timestamp (UTC).
	CreatedAt time.Time `json:"created_at"`
	// Notes is free-form provenance.
	Notes string `json:"notes,omitempty"`
}

var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]*$`)

// ValidName reports whether name is a legal registry model name
// ([a-z0-9][a-z0-9._-]*). Callers that train before saving (e.g.
// lam-predict -registry) should check this up front so a typo fails in
// milliseconds instead of discarding a long training run at publish
// time.
func ValidName(name string) bool { return nameRE.MatchString(name) }

// versionDirRE matches exactly the directory names versionDir
// produces: "v" + digits (zero-padded to at least 4, wider when the
// count outgrows them). Anything else in a model directory — tmp dirs,
// stray files — is ignored rather than misparsed.
var versionDirRE = regexp.MustCompile(`^v(\d{4,})$`)

// Registry is a directory of versioned model artifacts. All methods are
// safe for concurrent use by independent processes to the extent the
// filesystem's rename atomicity allows; a single process may share one
// Registry across goroutines.
type Registry struct {
	root string
	// saveMu serialises in-process version allocation; cross-process
	// races are resolved by the rename-retry loop in save.
	saveMu sync.Mutex
}

// Open opens (creating if necessary) a registry rooted at dir.
func Open(dir string) (*Registry, error) {
	if dir == "" {
		return nil, fmt.Errorf("registry: empty root directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	return &Registry{root: dir}, nil
}

// Root returns the registry's root directory.
func (r *Registry) Root() string { return r.root }

// SaveHybrid stores a trained hybrid model under meta.Name and returns
// the completed metadata (version, kind, timestamp filled in).
// meta.Workload and meta.Machine are required: they are what Load uses
// to reconstruct the analytical component.
func (r *Registry) SaveHybrid(m *hybrid.Model, meta Meta) (Meta, error) {
	if m == nil || !m.IsFitted() {
		return Meta{}, fmt.Errorf("registry: %w", lamerr.ErrNotFitted)
	}
	if meta.Workload == "" || meta.Machine == "" {
		return Meta{}, fmt.Errorf("registry: hybrid models need Workload and Machine metadata to rebuild the analytical component")
	}
	// Fail on an unknown workload/machine at save time, not at load.
	if _, err := amFor(meta.Workload, meta.Machine); err != nil {
		return Meta{}, err
	}
	meta.Kind = KindHybrid
	return r.save(meta, m.Save)
}

// SaveRegressor stores a fitted ML regressor (any type ml.SaveModel
// supports) under meta.Name and returns the completed metadata.
func (r *Registry) SaveRegressor(reg ml.Regressor, meta Meta) (Meta, error) {
	if reg == nil || !ml.Fitted(reg) {
		return Meta{}, fmt.Errorf("registry: %w", lamerr.ErrNotFitted)
	}
	meta.Kind = KindRegressor
	return r.save(meta, func(w io.Writer) error { return ml.SaveModel(w, reg) })
}

// save allocates the next version directory and writes model.json (via
// writeModel) and meta.json into it atomically (tmp dir + rename).
// In-process saves are serialised by saveMu; a concurrent save from
// another process is detected by the rename failing against the
// already-published version directory, in which case the allocation is
// retried with a fresh version number (the artifact is only written
// once — only meta.json is rewritten with the new number).
func (r *Registry) save(meta Meta, writeModel func(io.Writer) error) (Meta, error) {
	if !nameRE.MatchString(meta.Name) {
		return Meta{}, fmt.Errorf("registry: invalid model name %q (want %s)", meta.Name, nameRE)
	}
	r.saveMu.Lock()
	defer r.saveMu.Unlock()

	nameDir := filepath.Join(r.root, meta.Name)
	if err := os.MkdirAll(nameDir, 0o755); err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	tmp, err := os.MkdirTemp(nameDir, ".tmp-v*")
	if err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	defer os.RemoveAll(tmp)

	mf, err := os.Create(filepath.Join(tmp, "model.json"))
	if err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	if err := writeModel(mf); err != nil {
		mf.Close()
		return Meta{}, fmt.Errorf("registry: writing model artifact: %w", err)
	}
	if err := mf.Close(); err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}

	const maxAttempts = 10
	for attempt := 0; attempt < maxAttempts; attempt++ {
		versions, err := r.versionNumbers(meta.Name)
		if err != nil {
			return Meta{}, err
		}
		next := 1
		if len(versions) > 0 {
			next = versions[len(versions)-1] + 1
		}
		meta.Version = next
		meta.CreatedAt = time.Now().UTC()
		metaRaw, err := json.MarshalIndent(meta, "", "  ")
		if err != nil {
			return Meta{}, fmt.Errorf("registry: %w", err)
		}
		if err := os.WriteFile(filepath.Join(tmp, "meta.json"), append(metaRaw, '\n'), 0o644); err != nil {
			return Meta{}, fmt.Errorf("registry: %w", err)
		}
		err = os.Rename(tmp, r.versionDir(meta.Name, next))
		if err == nil {
			return meta, nil
		}
		// Another process published this version between our scan and
		// the rename; rescan and try the next number.
		if !os.IsExist(err) && !errors.Is(err, syscall.ENOTEMPTY) {
			return Meta{}, fmt.Errorf("registry: publishing version: %w", err)
		}
	}
	return Meta{}, fmt.Errorf("registry: publishing %s: lost the version race %d times", meta.Name, maxAttempts)
}

func (r *Registry) versionDir(name string, version int) string {
	return filepath.Join(r.root, name, fmt.Sprintf("v%04d", version))
}

// versionNumbers lists the published versions of a name, ascending.
// Names that fail nameRE (including anything path-shaped — Load and
// LatestVersion take names straight from HTTP requests via
// internal/serve) resolve to no versions rather than touching the
// filesystem outside the registry root.
func (r *Registry) versionNumbers(name string) ([]int, error) {
	if !nameRE.MatchString(name) {
		return nil, nil
	}
	entries, err := os.ReadDir(filepath.Join(r.root, name))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	var out []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		m := versionDirRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		v, err := strconv.Atoi(m[1])
		if err == nil && v > 0 {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// LatestVersion resolves the newest published version number of a
// name with a single directory scan (no artifact read). A missing name
// wraps lamerr.ErrUnknownModel.
func (r *Registry) LatestVersion(name string) (int, error) {
	versions, err := r.versionNumbers(name)
	if err != nil {
		return 0, err
	}
	if len(versions) == 0 {
		return 0, fmt.Errorf("registry: %w: %q", lamerr.ErrUnknownModel, name)
	}
	return versions[len(versions)-1], nil
}

// Names lists the model names in the registry, sorted.
func (r *Registry) Names() ([]string, error) {
	entries, err := os.ReadDir(r.root)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && nameRE.MatchString(e.Name()) {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// List returns the metadata of every stored version, sorted by name
// then version. Versions whose meta.json is missing or corrupt (e.g. a
// hand-copied directory) are skipped rather than failing the whole
// listing — they still error loudly on Load.
func (r *Registry) List() ([]Meta, error) {
	names, err := r.Names()
	if err != nil {
		return nil, err
	}
	var out []Meta
	for _, name := range names {
		versions, err := r.versionNumbers(name)
		if err != nil {
			return nil, err
		}
		for _, v := range versions {
			m, err := r.readMeta(name, v)
			if err != nil {
				continue
			}
			out = append(out, m)
		}
	}
	return out, nil
}

func (r *Registry) readMeta(name string, version int) (Meta, error) {
	raw, err := os.ReadFile(filepath.Join(r.versionDir(name, version), "meta.json"))
	if err != nil {
		return Meta{}, fmt.Errorf("registry: %w", err)
	}
	var m Meta
	if err := json.Unmarshal(raw, &m); err != nil {
		return Meta{}, fmt.Errorf("registry: corrupt meta for %s v%d: %w", name, version, err)
	}
	return m, nil
}

// AnalyticalFor rebuilds the analytical component a stored hybrid
// version carries, from its metadata — exactly what Load does
// internally. The online retrainer uses it to retrain a drifted hybrid
// against the same analytical model the deployed artifact serves with.
func AnalyticalFor(meta Meta) (hybrid.AnalyticalModel, error) {
	return amFor(meta.Workload, meta.Machine)
}

// amFor rebuilds the analytical model for a (workload, machine) pair.
func amFor(workload, machineName string) (hybrid.AnalyticalModel, error) {
	m, ok := machine.Presets()[machineName]
	if !ok {
		return nil, fmt.Errorf("registry: %w: %q", lamerr.ErrUnknownMachine, machineName)
	}
	return experiments.AMByDataset(workload, m)
}

// Load restores one stored version as a ready-to-serve Model. version
// <= 0 means the latest. Missing names and versions wrap
// lamerr.ErrUnknownModel.
func (r *Registry) Load(name string, version int) (*Model, error) {
	versions, err := r.versionNumbers(name)
	if err != nil {
		return nil, err
	}
	if len(versions) == 0 {
		return nil, fmt.Errorf("registry: %w: %q", lamerr.ErrUnknownModel, name)
	}
	if version <= 0 {
		version = versions[len(versions)-1]
	} else if !slices.Contains(versions, version) {
		return nil, fmt.Errorf("registry: %w: %q v%d (have %v)", lamerr.ErrUnknownModel, name, version, versions)
	}
	meta, err := r.readMeta(name, version)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(r.versionDir(name, version), "model.json"))
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	defer f.Close()

	lm := &Model{Meta: meta}
	switch meta.Kind {
	case KindHybrid:
		am, err := amFor(meta.Workload, meta.Machine)
		if err != nil {
			return nil, err
		}
		hy, err := hybrid.Load(f, am)
		if err != nil {
			return nil, err
		}
		lm.hybrid = hy
	case KindRegressor:
		reg, err := ml.LoadModel(f)
		if err != nil {
			return nil, err
		}
		lm.regressor = reg
	default:
		return nil, fmt.Errorf("registry: %s v%d has unknown kind %q", name, version, meta.Kind)
	}
	return lm, nil
}

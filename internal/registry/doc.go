// Package registry stores versioned trained-model artifacts on disk,
// unifying the repository's ad-hoc Save/Load paths (ml.SaveModel,
// hybrid.Model.Save) behind one layout with metadata. It is the
// storage backend of the lam-serve prediction service and of the
// -registry flag on lam-predict.
//
// Layout (one directory per model name, one per version):
//
//	<root>/<name>/v0001/meta.json   — Meta: kind, workload, machine, …
//	<root>/<name>/v0001/model.json  — the serialised model artifact
//	<root>/<name>/v0002/…
//
// Contracts callers rely on:
//
//   - Versions auto-increment on save, are dense from 1, and are never
//     rewritten; writes go through a temporary directory renamed into
//     place, so a crashed or concurrent save can never produce a
//     half-readable version. Multiple Registry handles on one
//     directory may save concurrently.
//   - Loading a hybrid model reconstructs its analytical component
//     from the (workload, machine) metadata, exactly as at training
//     time — which is what the old hybrid.Load required every caller
//     to hand-wire.
//   - A loaded Model satisfies the facade's context-first Predictor
//     interface, decodes tree ensembles straight into the compiled
//     plane's flat node tables, and its PredictBatchInto is the
//     allocation-free serving path: batch output is bit-identical to
//     sequential Predict calls for every worker count.
package registry

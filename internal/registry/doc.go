// Package registry stores versioned trained-model artifacts on disk,
// unifying the repository's ad-hoc Save/Load paths (ml.SaveModel,
// hybrid.Model.Save) behind one layout with metadata. It is the
// storage backend of the lam-serve prediction service and of the
// -registry flag on lam-predict.
//
// Layout (one directory per model name, one per version):
//
//	<root>/<name>/v0001/meta.json   — Meta: kind, format, workload, …
//	<root>/<name>/v0001/model.lamb  — the artifact (lamb1 flat binary,
//	                                  the default) — or model.json for
//	                                  jsonv1 saves and legacy registries
//	<root>/<name>/v0002/…
//
// All byte-level encoding and decoding goes through internal/artifact's
// codec layer; the registry only decides which codec to use. Saves
// default to lamb1 (SaveOptions.Format is the escape hatch); loads
// follow the format recorded in meta.json, and when it is absent (any
// registry written before the codec layer) sniff the artifact's leading
// bytes and cache the resolved format back into meta.json so only the
// first load pays the probe. Convert re-encodes a version in place;
// ArtifactInfo summarises one without building a serving model.
//
// Contracts callers rely on:
//
//   - Versions auto-increment on save, are dense from 1, and are never
//     rewritten; writes go through a temporary directory renamed into
//     place, so a crashed or concurrent save can never produce a
//     half-readable version. Multiple Registry handles on one
//     directory may save concurrently.
//   - Legacy jsonv1 registries load forever, unchanged; a damaged
//     artifact in either format fails Load with an error wrapping
//     lamerr.ErrCorruptArtifact rather than panicking or serving a
//     silently wrong model.
//   - Loading a hybrid model reconstructs its analytical component
//     from the (workload, machine) metadata, exactly as at training
//     time — which is what the old hybrid.Load required every caller
//     to hand-wire.
//   - A loaded Model satisfies the facade's context-first Predictor
//     interface, decodes tree ensembles straight into the compiled
//     plane's flat node tables, and its PredictBatchInto is the
//     allocation-free serving path: batch output is bit-identical to
//     sequential Predict calls for every worker count.
package registry

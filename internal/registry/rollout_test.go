package registry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRolloutStateRoundTrip is the crash-safety contract of the
// progressive-delivery state: what the controller saves is exactly
// what a restarted process loads back, the write is atomic (no stray
// temp files), and absence is distinguished from corruption.
func TestRolloutStateRoundTrip(t *testing.T) {
	r, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// A model that has never been through a rollout: ok=false, no error.
	if _, ok, err := r.LoadRolloutState("fresh"); ok || err != nil {
		t.Fatalf("load of never-saved state: ok=%v err=%v, want false,nil", ok, err)
	}

	until := time.Now().Add(time.Hour).UTC().Truncate(time.Second)
	st := RolloutState{
		Model:     "blk",
		Pinned:    1,
		Candidate: 2,
		Phase:     "canary",
		Stage:     1,
		Paused:    true,
		Holddown: []HolddownEntry{
			{Version: 3, Until: until, Reason: "rolled back at canary stage 0"},
		},
		LastTransition: "v2 advanced to canary stage 1 (10%)",
	}
	if err := r.SaveRolloutState(st); err != nil {
		t.Fatal(err)
	}
	got, ok, err := r.LoadRolloutState("blk")
	if err != nil || !ok {
		t.Fatalf("load after save: ok=%v err=%v", ok, err)
	}
	if got.Pinned != 1 || got.Candidate != 2 || got.Phase != "canary" ||
		got.Stage != 1 || !got.Paused || got.LastTransition != st.LastTransition {
		t.Fatalf("state did not round-trip: %+v", got)
	}
	if len(got.Holddown) != 1 || got.Holddown[0].Version != 3 ||
		!got.Holddown[0].Until.Equal(until) || got.Holddown[0].Reason == "" {
		t.Fatalf("holddown did not round-trip: %+v", got.Holddown)
	}
	if got.UpdatedAt.IsZero() {
		t.Fatal("SaveRolloutState must stamp UpdatedAt")
	}

	// Atomicity hygiene: the tmp+rename dance must leave no temp files
	// behind in the model directory.
	entries, err := os.ReadDir(filepath.Join(r.Root(), "blk"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".rollout-") {
			t.Fatalf("stray temp file %s after save", e.Name())
		}
	}

	// Overwrite wins: a later transition replaces, not appends.
	st.Phase = ""
	st.Candidate = 0
	st.LastTransition = "promoted v2"
	if err := r.SaveRolloutState(st); err != nil {
		t.Fatal(err)
	}
	got, _, err = r.LoadRolloutState("blk")
	if err != nil {
		t.Fatal(err)
	}
	if got.Candidate != 0 || got.Phase != "" || got.LastTransition != "promoted v2" {
		t.Fatalf("overwrite did not replace state: %+v", got)
	}

	// Corruption is an error, not an absence — the caller must know the
	// pin may have been lost.
	path := filepath.Join(r.Root(), "blk", "rollout.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.LoadRolloutState("blk"); err == nil {
		t.Fatal("corrupt rollout.json must surface an error")
	}

	// Clear removes; clearing twice is idempotent.
	if err := r.ClearRolloutState("blk"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := r.LoadRolloutState("blk"); ok || err != nil {
		t.Fatalf("load after clear: ok=%v err=%v, want false,nil", ok, err)
	}
	if err := r.ClearRolloutState("blk"); err != nil {
		t.Fatal(err)
	}

	// Invalid model names are rejected on save, ignored on load.
	if err := r.SaveRolloutState(RolloutState{Model: "../escape"}); err == nil {
		t.Fatal("invalid model name must be rejected")
	}
	if _, ok, _ := r.LoadRolloutState("../escape"); ok {
		t.Fatal("invalid model name must not resolve state")
	}
}

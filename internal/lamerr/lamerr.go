// Package lamerr defines the typed sentinel errors shared by every
// layer of the repository and re-exported by the public facade. It is a
// leaf package — it imports only the standard library — so the
// substrates (internal/parallel, internal/ml, internal/hybrid,
// internal/experiments, internal/registry, internal/serve) can all wrap
// the same sentinels without import cycles, and callers can branch on
// failure classes with errors.Is instead of string matching.
//
// Every sentinel is wrapped, never returned bare, so messages keep
// their context ("lam: unknown machine %q (have …)") while errors.Is
// still matches.
package lamerr

import "errors"

var (
	// ErrCancelled reports that an operation stopped early because its
	// context was cancelled or its deadline expired. Errors wrapping it
	// also wrap the underlying ctx.Err(), so both
	// errors.Is(err, lamerr.ErrCancelled) and
	// errors.Is(err, context.Canceled) (or context.DeadlineExceeded)
	// hold.
	ErrCancelled = errors.New("operation cancelled")

	// ErrUnknownMachine reports a machine preset name with no
	// registered description.
	ErrUnknownMachine = errors.New("unknown machine")

	// ErrUnknownWorkload reports a canonical dataset/workload name the
	// experiment harness does not know.
	ErrUnknownWorkload = errors.New("unknown workload")

	// ErrUnknownFigure reports a figure id outside the reproducible set
	// (see EXPERIMENTS.md).
	ErrUnknownFigure = errors.New("unknown figure")

	// ErrNotFitted reports a prediction request against a model that
	// has not been (successfully) trained or loaded.
	ErrNotFitted = errors.New("model not fitted")

	// ErrDimension reports a feature vector whose arity does not match
	// the model's training layout.
	ErrDimension = errors.New("feature dimension mismatch")

	// ErrUnknownModel reports a model name or version missing from a
	// registry.
	ErrUnknownModel = errors.New("unknown model")

	// ErrBadRequest reports a malformed request to the serving layer
	// (unparseable JSON, no feature vector, …).
	ErrBadRequest = errors.New("bad request")

	// ErrCorruptArtifact reports a model artifact that failed integrity
	// or structural validation on load — bad magic, short read,
	// checksum mismatch, out-of-range node indices. Corrupt artifacts
	// always fail with this sentinel (wrapped, with the offending
	// detail in the message) and never panic, so the serving layer can
	// refuse a bad version while continuing to serve the old one.
	ErrCorruptArtifact = errors.New("corrupt model artifact")
)

package artifact

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"lam/internal/hybrid"
	"lam/internal/lamerr"
	"lam/internal/ml"
)

// jsonv1Codec wraps today's JSON encodings unchanged: a regressor
// payload is exactly ml.SaveModel's document, a hybrid payload is
// exactly hybrid.Model.Save's. Registries written before the codec
// layer existed are jsonv1 registries; they keep loading forever.
type jsonv1Codec struct{}

func (jsonv1Codec) Name() string { return FormatJSONV1 }

func (jsonv1Codec) Encode(w io.Writer, p *Payload) error {
	if err := p.validate(); err != nil {
		return err
	}
	if p.Hybrid != nil {
		return p.Hybrid.Save(w)
	}
	return ml.SaveModel(w, p.Regressor)
}

// jsonv1Probe distinguishes the two jsonv1 document shapes when the
// caller doesn't say which to expect: the hybrid DTO carries an "ml"
// payload, the regressor envelope a "kind" tag.
type jsonv1Probe struct {
	Kind string          `json:"kind"`
	ML   json.RawMessage `json:"ml"`
}

func (jsonv1Codec) Decode(data []byte, opts DecodeOptions) (*Payload, error) {
	kind := opts.Kind
	if kind == "" {
		var probe jsonv1Probe
		if err := json.Unmarshal(data, &probe); err != nil {
			return nil, fmt.Errorf("artifact: %w: jsonv1: %v", lamerr.ErrCorruptArtifact, err)
		}
		switch {
		case probe.ML != nil:
			kind = KindHybrid
		case probe.Kind != "":
			kind = KindRegressor
		default:
			return nil, fmt.Errorf("artifact: %w: jsonv1 document is neither a model envelope nor a hybrid payload",
				lamerr.ErrCorruptArtifact)
		}
	}
	switch kind {
	case KindHybrid:
		if opts.Analytical == nil {
			return nil, fmt.Errorf("artifact: decoding a hybrid payload requires the analytical model")
		}
		hy, err := hybrid.Load(bytes.NewReader(data), opts.Analytical)
		if err != nil {
			return nil, fmt.Errorf("artifact: %w: jsonv1: %v", lamerr.ErrCorruptArtifact, err)
		}
		return &Payload{Hybrid: hy}, nil
	case KindRegressor:
		reg, err := ml.LoadModel(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("artifact: %w: jsonv1: %v", lamerr.ErrCorruptArtifact, err)
		}
		return &Payload{Regressor: reg}, nil
	default:
		return nil, fmt.Errorf("artifact: unknown payload kind %q", kind)
	}
}

// Sniff accepts anything starting (after ASCII whitespace) with a JSON
// object brace — exactly the documents the two jsonv1 writers produce.
func (jsonv1Codec) Sniff(prefix []byte) bool {
	for _, b := range prefix {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			return true
		default:
			return false
		}
	}
	return false
}

package artifact

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"lam/internal/dataset"
	"lam/internal/hybrid"
	"lam/internal/lamerr"
	"lam/internal/ml"
)

var update = flag.Bool("update", false, "regenerate the golden artifacts under testdata/")

// synth builds a deterministic synthetic regression set: a smooth
// nonlinear response over d features, the shape every estimator in the
// suite can fit something sensible to.
func synth(rng *rand.Rand, n, d int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()*4 - 2
		}
		X[i] = row
		y[i] = 1 + row[0]*row[0] + 0.5*math.Sin(3*row[1%d]) + 0.25*row[d-1] + 0.01*rng.NormFloat64()
	}
	return X, y
}

// testAM is the fixed deterministic analytical model used for hybrid
// fixtures; goldens depend on it never changing.
var testAM = hybrid.AnalyticalFunc(func(x []float64) (float64, error) {
	return 1 + 0.5*x[0]*x[0] + 0.25*x[len(x)-1], nil
})

func treeFactory(cfg ml.TreeConfig) func() ml.Regressor {
	return func() ml.Regressor { return ml.NewDecisionTree(cfg) }
}

// fixtures are the deterministic estimator configurations pinned by the
// goldens: one per artifact-visible kind.
var fixtures = []struct {
	name  string
	build func() ml.Regressor
}{
	{"tree", func() ml.Regressor { return ml.NewDecisionTree(ml.TreeConfig{MaxDepth: 6, Seed: 1}) }},
	{"forest", func() ml.Regressor { return ml.NewExtraTrees(12, 1) }},
	{"linreg", func() ml.Regressor { return &ml.LinearRegression{} }},
	{"knn", func() ml.Regressor { return &ml.KNN{K: 3, Weighting: ml.DistanceWeights} }},
	{"gbr", func() ml.Regressor {
		return &ml.GradientBoosting{NStages: 25, MaxDepth: 3, LearningRate: 0.1, Subsample: 0.8, Seed: 1}
	}},
	{"bagging", func() ml.Regressor {
		return &ml.Bagging{NewBase: treeFactory(ml.TreeConfig{MaxDepth: 5, Seed: 2}), N: 8, SampleFrac: 0.9, Seed: 1}
	}},
	{"stacking", func() ml.Regressor {
		return &ml.Stacking{
			NewBases:    []func() ml.Regressor{treeFactory(ml.TreeConfig{MaxDepth: 4, Seed: 3}), func() ml.Regressor { return &ml.LinearRegression{} }},
			NewMeta:     func() ml.Regressor { return &ml.LinearRegression{} },
			PassThrough: true,
			KFold:       3,
			Seed:        1,
		}
	}},
	{"pipeline", func() ml.Regressor { return &ml.Pipeline{Model: ml.NewExtraTrees(8, 1)} }},
}

func fitFixture(t testing.TB, build func() ml.Regressor) (ml.Regressor, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	X, y := synth(rng, 80, 3)
	reg := build()
	if err := reg.Fit(X, y); err != nil {
		t.Fatalf("fit: %v", err)
	}
	probe, _ := synth(rand.New(rand.NewSource(8)), 24, 3)
	return reg, probe
}

func fitHybrid(t testing.TB, cfg hybrid.Config) (*hybrid.Model, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	X, y := synth(rng, 80, 3)
	ds := dataset.New("a", "b", "c")
	for i := range X {
		ds.MustAdd(X[i], y[i])
	}
	m, err := hybrid.Train(ds, testAM, cfg)
	if err != nil {
		t.Fatalf("hybrid train: %v", err)
	}
	probe, _ := synth(rand.New(rand.NewSource(8)), 24, 3)
	return m, probe
}

func predict(t testing.TB, p *Payload, X [][]float64) []float64 {
	t.Helper()
	out := make([]float64, len(X))
	for i, x := range X {
		var err error
		if p.Hybrid != nil {
			out[i], err = p.Hybrid.Predict(x)
		} else {
			out[i], err = ml.PredictCtx(t.Context(), p.Regressor, x)
		}
		if err != nil {
			t.Fatalf("predict row %d: %v", i, err)
		}
	}
	return out
}

func encode(t testing.TB, c Codec, p *Payload) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Encode(&buf, p); err != nil {
		t.Fatalf("%s encode: %v", c.Name(), err)
	}
	return buf.Bytes()
}

func requireBitIdentical(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d predictions, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: row %d: %v != %v (bits %016x vs %016x)",
				label, i, got[i], want[i], math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// roundTrip encodes p with every codec, decodes each artifact back, and
// requires bit-identical predictions from every copy.
func roundTrip(t *testing.T, p *Payload, probe [][]float64) {
	t.Helper()
	want := predict(t, p, probe)
	opts := DecodeOptions{}
	if p.Hybrid != nil {
		opts.Analytical = testAM
	}
	for _, c := range codecs {
		data := encode(t, c, p)
		if again := encode(t, c, p); !bytes.Equal(data, again) {
			t.Fatalf("%s: encoding is not deterministic", c.Name())
		}
		detected, err := Detect(data)
		if err != nil {
			t.Fatalf("%s: Detect: %v", c.Name(), err)
		}
		if detected.Name() != c.Name() {
			t.Fatalf("Detect picked %s for a %s artifact", detected.Name(), c.Name())
		}
		decoded, err := c.Decode(data, opts)
		if err != nil {
			t.Fatalf("%s decode: %v", c.Name(), err)
		}
		requireBitIdentical(t, c.Name(), want, predict(t, decoded, probe))

		// Cross-convert: re-encode the decoded payload with the other
		// codec and check the predictions survive the full cycle.
		for _, other := range codecs {
			if other.Name() == c.Name() {
				continue
			}
			converted, err := other.Decode(encode(t, other, decoded), opts)
			if err != nil {
				t.Fatalf("%s->%s decode: %v", c.Name(), other.Name(), err)
			}
			requireBitIdentical(t, c.Name()+"->"+other.Name(), want, predict(t, converted, probe))
		}
	}
}

// TestRoundTripFixtures covers every estimator kind with its pinned
// configuration.
func TestRoundTripFixtures(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			reg, probe := fitFixture(t, fx.build)
			roundTrip(t, &Payload{Regressor: reg}, probe)
		})
	}
}

// TestRoundTripHybrid covers the hybrid payload in each coupling mode,
// with and without aggregation.
func TestRoundTripHybrid(t *testing.T) {
	for _, cfg := range []hybrid.Config{
		{Seed: 1},
		{Seed: 1, Mode: hybrid.ResidualMode},
		{Seed: 1, Mode: hybrid.RatioMode, Aggregate: true, AggregateWeight: 0.7},
	} {
		t.Run(fmt.Sprintf("mode%d-agg%v", cfg.Mode, cfg.Aggregate), func(t *testing.T) {
			m, probe := fitHybrid(t, cfg)
			roundTrip(t, &Payload{Hybrid: m}, probe)
		})
	}
}

// TestRoundTripRandomConfigs is the property test: random estimator
// kinds with random hyperparameters, all of which must survive both
// codecs bit-identically.
func TestRoundTripRandomConfigs(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			build := randomBuild(rng)
			reg, probe := fitFixture(t, build)
			roundTrip(t, &Payload{Regressor: reg}, probe)
		})
	}
}

// randomBuild draws one random estimator configuration.
func randomBuild(rng *rand.Rand) func() ml.Regressor {
	randTree := func() ml.TreeConfig {
		return ml.TreeConfig{
			MaxDepth:        rng.Intn(8),
			MinSamplesSplit: rng.Intn(5),
			MinSamplesLeaf:  rng.Intn(3),
			MaxFeatures:     rng.Intn(4),
			Splitter:        ml.Splitter(rng.Intn(2)),
			Seed:            rng.Int63(),
		}
	}
	seed := rng.Int63()
	nTrees := 2 + rng.Intn(10)
	switch rng.Intn(8) {
	case 0:
		cfg := randTree()
		return func() ml.Regressor { return ml.NewDecisionTree(cfg) }
	case 1:
		if rng.Intn(2) == 0 {
			return func() ml.Regressor { return ml.NewRandomForest(nTrees, seed) }
		}
		return func() ml.Regressor { return ml.NewExtraTrees(nTrees, seed) }
	case 2:
		return func() ml.Regressor { return &ml.LinearRegression{} }
	case 3:
		k := 1 + rng.Intn(6)
		w := ml.KNNWeighting(rng.Intn(2))
		return func() ml.Regressor { return &ml.KNN{K: k, Weighting: w} }
	case 4:
		g := ml.GradientBoosting{
			NStages:      1 + rng.Intn(30),
			LearningRate: 0.05 + rng.Float64()*0.4,
			MaxDepth:     1 + rng.Intn(4),
			Subsample:    0.5 + rng.Float64()*0.5,
			Seed:         seed,
		}
		return func() ml.Regressor { g2 := g; return &g2 }
	case 5:
		cfg := randTree()
		frac := 0.5 + rng.Float64()*0.5
		n := 2 + rng.Intn(6)
		return func() ml.Regressor {
			return &ml.Bagging{NewBase: treeFactory(cfg), N: n, SampleFrac: frac, Seed: seed}
		}
	case 6:
		cfg := randTree()
		kfold := rng.Intn(4)
		pass := rng.Intn(2) == 0
		return func() ml.Regressor {
			return &ml.Stacking{
				NewBases:    []func() ml.Regressor{treeFactory(cfg), func() ml.Regressor { return &ml.LinearRegression{} }},
				NewMeta:     func() ml.Regressor { return &ml.LinearRegression{} },
				PassThrough: pass,
				KFold:       kfold,
				Seed:        seed,
			}
		}
	default:
		inner := ml.NewExtraTrees(nTrees, seed)
		return func() ml.Regressor { return &ml.Pipeline{Model: inner} }
	}
}

// TestLamb1CorruptionFailsTyped mangles a lamb1 artifact every way a
// disk or transport can — truncation at every stride, a bit flip at
// every stride — and requires a typed ErrCorruptArtifact, never a panic
// and never a silent success.
func TestLamb1CorruptionFailsTyped(t *testing.T) {
	reg, _ := fitFixture(t, fixtures[1].build) // forest: multi-tree payload
	data := encode(t, lamb1Codec{}, &Payload{Regressor: reg})

	requireCorrupt := func(label string, mangled []byte) {
		t.Helper()
		p, err := lamb1Codec{}.Decode(mangled, DecodeOptions{})
		if err == nil {
			t.Fatalf("%s: decode succeeded on mangled artifact (payload %v)", label, p.Kind())
		}
		if !errors.Is(err, lamerr.ErrCorruptArtifact) {
			t.Fatalf("%s: error %v does not wrap ErrCorruptArtifact", label, err)
		}
	}

	for l := 0; l < len(data); l += 13 {
		requireCorrupt(fmt.Sprintf("truncate[:%d]", l), data[:l:l])
	}
	for i := 0; i < len(data); i += 11 {
		mangled := bytes.Clone(data)
		mangled[i] ^= 1 << (i % 8)
		requireCorrupt(fmt.Sprintf("bitflip@%d", i), mangled)
	}
	// The classic transport mangling the magic exists to catch: CRLF
	// translation rewriting the \r\n.
	mangled := bytes.Clone(data)
	mangled[5] = '\n'
	requireCorrupt("crlf", mangled)
	// Kind mismatch against metadata.
	if _, err := (lamb1Codec{}).Decode(data, DecodeOptions{Kind: KindHybrid, Analytical: testAM}); !errors.Is(err, lamerr.ErrCorruptArtifact) {
		t.Fatalf("kind mismatch: got %v, want ErrCorruptArtifact", err)
	}
}

// TestJSONV1CorruptionFailsTyped checks the legacy codec fails typed on
// damaged documents too.
func TestJSONV1CorruptionFailsTyped(t *testing.T) {
	reg, _ := fitFixture(t, fixtures[0].build)
	data := encode(t, jsonv1Codec{}, &Payload{Regressor: reg})
	for _, mangled := range [][]byte{
		data[:len(data)/2],
		[]byte("{}"),
		[]byte(`{"kind":"no-such-estimator","model":{}}`),
	} {
		if _, err := (jsonv1Codec{}).Decode(mangled, DecodeOptions{}); !errors.Is(err, lamerr.ErrCorruptArtifact) {
			t.Fatalf("jsonv1 decode of %.40q: got %v, want ErrCorruptArtifact", mangled, err)
		}
	}
	if _, err := Detect([]byte("\x00\x01\x02garbage")); !errors.Is(err, lamerr.ErrCorruptArtifact) {
		t.Fatalf("Detect on garbage: got %v, want ErrCorruptArtifact", err)
	}
}

// goldenPredictions is the sidecar document pinning each golden's
// expected behaviour: the probe inputs and the exact predictions.
type goldenPredictions struct {
	X    [][]float64 `json:"x"`
	Pred []float64   `json:"pred"`
}

// TestGoldenArtifacts decodes the committed jsonv1 artifacts — one per
// estimator kind — and requires bit-identical predictions to the
// committed values, directly and after converting to lamb1 and back.
// This is the cross-build forward-compat contract: a change that breaks
// these goldens breaks every registry in the field. Regenerate with
// -update only when intentionally revving the format.
func TestGoldenArtifacts(t *testing.T) {
	type golden struct {
		name string
		make func(t *testing.T) (*Payload, [][]float64)
		hyb  bool
	}
	var cases []golden
	for _, fx := range fixtures {
		build := fx.build
		cases = append(cases, golden{name: fx.name, make: func(t *testing.T) (*Payload, [][]float64) {
			reg, probe := fitFixture(t, build)
			return &Payload{Regressor: reg}, probe
		}})
	}
	cases = append(cases, golden{name: "hybrid", hyb: true, make: func(t *testing.T) (*Payload, [][]float64) {
		m, probe := fitHybrid(t, hybrid.Config{Seed: 1})
		return &Payload{Hybrid: m}, probe
	}})

	for _, g := range cases {
		t.Run(g.name, func(t *testing.T) {
			artPath := filepath.Join("testdata", "golden_"+g.name+".json")
			predPath := filepath.Join("testdata", "golden_"+g.name+".pred.json")
			opts := DecodeOptions{}
			if g.hyb {
				opts.Analytical = testAM
			}

			if *update {
				p, probe := g.make(t)
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(artPath, encode(t, jsonv1Codec{}, p), 0o644); err != nil {
					t.Fatal(err)
				}
				raw, err := json.MarshalIndent(goldenPredictions{X: probe, Pred: predict(t, p, probe)}, "", " ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(predPath, append(raw, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
			}

			data, err := os.ReadFile(artPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to generate): %v", err)
			}
			rawPred, err := os.ReadFile(predPath)
			if err != nil {
				t.Fatal(err)
			}
			var want goldenPredictions
			if err := json.Unmarshal(rawPred, &want); err != nil {
				t.Fatal(err)
			}

			info, p, err := Inspect(data, opts)
			if err != nil {
				t.Fatalf("decoding golden: %v", err)
			}
			if info.Format != FormatJSONV1 {
				t.Fatalf("golden detected as %s, want jsonv1", info.Format)
			}
			requireBitIdentical(t, "golden jsonv1", want.Pred, predict(t, p, want.X))

			// Convert golden → lamb1 → decode: the upgrade path every
			// legacy registry takes.
			bin := encode(t, lamb1Codec{}, p)
			binInfo, fromBin, err := Inspect(bin, opts)
			if err != nil {
				t.Fatalf("decoding converted golden: %v", err)
			}
			if binInfo.Format != FormatLAMB1 {
				t.Fatalf("converted golden detected as %s, want lamb1", binInfo.Format)
			}
			requireBitIdentical(t, "golden lamb1", want.Pred, predict(t, fromBin, want.X))

			// And back: lamb1 → jsonv1, the downgrade escape hatch.
			back, err := jsonv1Codec{}.Decode(encode(t, jsonv1Codec{}, fromBin), opts)
			if err != nil {
				t.Fatalf("round-trip back to jsonv1: %v", err)
			}
			requireBitIdentical(t, "golden jsonv1 round trip", want.Pred, predict(t, back, want.X))
		})
	}
}

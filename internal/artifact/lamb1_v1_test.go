package artifact

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"

	"lam/internal/hybrid"
	"lam/internal/ml"
)

// Version-1 decode regression: artifacts written before the implicit-left
// node layout (PR 8) carry explicit left-child arrays in every tree body
// and a version-1 lamb1 header. Those files must keep decoding forever,
// bit-identically. The encoder half of version 1 survives as
// ml.AppendBinaryVersion, so the tests build real v1 artifacts rather
// than pinning opaque byte fixtures.

// encodeLamb1V1 assembles a lamb1 version-1 artifact: v1 header, v1
// payload (explicit left arrays), CRC trailer — exactly what a pre-PR 8
// build wrote.
func encodeLamb1V1(t testing.TB, p *Payload) []byte {
	t.Helper()
	buf := make([]byte, lamb1HeaderLen)
	copy(buf, lamb1Magic[:])
	var kind uint32
	var err error
	if p.Hybrid != nil {
		kind = lamb1KindHybrid
		// The v1 hybrid payload is the same fixed 32-byte coupling
		// header followed by a v1 ML section.
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(hybridMode(p.Hybrid))))
		var agg uint64
		if hybridAggregate(p.Hybrid) {
			agg = 1
		}
		buf = binary.LittleEndian.AppendUint64(buf, agg)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(hybridAggregateWeight(p.Hybrid)))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Hybrid.NumFeatures()))
		buf, err = ml.AppendBinaryVersion(buf, p.Hybrid.ML(), ml.BinaryVersion1)
	} else {
		kind = lamb1KindRegressor
		buf, err = ml.AppendBinaryVersion(buf, p.Regressor, ml.BinaryVersion1)
	}
	if err != nil {
		t.Fatalf("v1 encode: %v", err)
	}
	binary.LittleEndian.PutUint32(buf[8:12], lamb1Version1)
	binary.LittleEndian.PutUint32(buf[12:16], kind)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(len(buf)-lamb1HeaderLen))
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

func hybridMode(m *hybrid.Model) hybrid.Mode { return m.Config().Mode }
func hybridAggregate(m *hybrid.Model) bool   { return m.Config().Aggregate }
func hybridAggregateWeight(m *hybrid.Model) float64 {
	return m.Config().AggregateWeight
}

// TestLamb1V1Decode checks every tree-carrying fixture decodes from a
// version-1 artifact bit-identically, and that Inspect reports the
// legacy explicit-children node layout for it.
func TestLamb1V1Decode(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			reg, probe := fitFixture(t, fx.build)
			p := &Payload{Regressor: reg}
			want := predict(t, p, probe)

			data := encodeLamb1V1(t, p)
			info, decoded, err := Inspect(data, DecodeOptions{})
			if err != nil {
				t.Fatalf("v1 Inspect: %v", err)
			}
			requireBitIdentical(t, "lamb1-v1", want, predict(t, decoded, probe))
			if info.Format != FormatLAMB1 {
				t.Fatalf("format %q, want lamb1", info.Format)
			}
			if info.Trees > 0 && info.NodeLayout != "explicit-children" {
				t.Fatalf("v1 node layout %q, want explicit-children", info.NodeLayout)
			}
			if info.Quant != "" {
				t.Fatalf("v1 quant %q, want empty", info.Quant)
			}
		})
	}
}

// TestLamb1V1DecodeHybrid is the same regression for a hybrid payload.
func TestLamb1V1DecodeHybrid(t *testing.T) {
	m, probe := fitHybrid(t, hybrid.Config{Seed: 1, Mode: hybrid.ResidualMode})
	p := &Payload{Hybrid: m}
	want := predict(t, p, probe)

	data := encodeLamb1V1(t, p)
	decoded, err := lamb1Codec{}.Decode(data, DecodeOptions{Analytical: testAM})
	if err != nil {
		t.Fatalf("v1 hybrid decode: %v", err)
	}
	requireBitIdentical(t, "lamb1-v1-hybrid", want, predict(t, decoded, probe))
}

// TestLamb1VersionReporting pins the header versions and the Inspect
// layout/quant fields across the format generations: new artifacts are
// v2 implicit-left; quantized payloads surface their mode; jsonv1 stays
// explicit-children.
func TestLamb1VersionReporting(t *testing.T) {
	reg, probe := fitFixture(t, fixtures[1].build) // forest
	p := &Payload{Regressor: reg}

	data := encode(t, lamb1Codec{}, p)
	if v := lamb1FormatVersion(data); v != lamb1VersionLatest {
		t.Fatalf("new artifact written at version %d, want %d", v, lamb1VersionLatest)
	}
	info, _, err := Inspect(data, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.NodeLayout != "implicit-left" {
		t.Fatalf("v2 node layout %q, want implicit-left", info.NodeLayout)
	}

	jdata := encode(t, jsonv1Codec{}, p)
	jinfo, _, err := Inspect(jdata, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if jinfo.NodeLayout != "explicit-children" {
		t.Fatalf("jsonv1 node layout %q, want explicit-children", jinfo.NodeLayout)
	}

	qreg, err := ml.Quantize(reg, 16)
	if err != nil {
		t.Fatal(err)
	}
	qp := &Payload{Regressor: qreg}
	qdata := encode(t, lamb1Codec{}, qp)
	qinfo, qdecoded, err := Inspect(qdata, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if qinfo.Quant != "quant16" {
		t.Fatalf("quant %q, want quant16", qinfo.Quant)
	}
	if qinfo.NodeLayout != "implicit-left" {
		t.Fatalf("quant node layout %q, want implicit-left", qinfo.NodeLayout)
	}
	requireBitIdentical(t, "quant-roundtrip", predict(t, qp, probe), predict(t, qdecoded, probe))

	// A quantized payload cannot be downgraded to version 1.
	if _, err := ml.AppendBinaryVersion(nil, qreg, ml.BinaryVersion1); err == nil {
		t.Fatal("v1 encode of a quantized model succeeded, want error")
	}
}

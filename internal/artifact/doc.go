// Package artifact is the single codec layer for trained-model
// artifacts: every byte that the registry writes to or reads from disk
// goes through one of the codecs registered here. It unifies what used
// to be two hand-rolled serialisation paths (ml.SaveModel / LoadModel
// and hybrid.Model.Save / Load) behind a Codec interface with
// byte-level format detection, so the layers above — internal/registry,
// internal/serve's latest-pointer loads, internal/online's
// retrain-publish path, and the lam-model / lam-predict CLIs — neither
// know nor care how a given version was encoded.
//
// Two codecs exist:
//
//   - jsonv1 — the original JSON encoding, byte-for-byte unchanged.
//     Every registry written before the binary format keeps loading
//     forever; this codec is the forward-compat contract (pinned by the
//     goldens under testdata/).
//   - lamb1 — a versioned flat binary format whose on-disk layout IS
//     the compiled plane's runtime layout: magic, format version,
//     model-kind header and CRC32-C trailer around the
//     CompiledTree/CompiledEnsemble SoA arrays written verbatim,
//     little-endian and 8-byte aligned. Loading is one ReadFile (the
//     layout is equally mmap-able) plus slice-casting the arrays out of
//     the buffer — no per-node decode, no per-node allocation — which
//     turns cold starts from a function of model size into an
//     effectively constant file read (see BenchmarkColdLoad* in
//     internal/registry and BENCH_PR6.json).
//
// Contracts callers rely on:
//
//   - Bit-identity: a payload decoded from either codec produces
//     byte-identical predictions to its twin in the other codec,
//     asserted by a property test over random estimator configs and by
//     the committed goldens.
//   - Corruption safety: a truncated or bit-flipped artifact fails
//     Decode with a typed error wrapping lamerr.ErrCorruptArtifact —
//     never a panic, never a silently wrong model. lamb1's CRC covers
//     the whole header+payload, so any single-bit flip is detected
//     before parsing begins.
//   - Detection: Detect picks the codec from the artifact's leading
//     bytes (lamb1 by magic, jsonv1 by JSON syntax), so mixed-format
//     registries need no out-of-band bookkeeping beyond the cached
//     format in meta.json.
package artifact

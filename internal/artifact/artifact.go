package artifact

import (
	"fmt"
	"io"

	"lam/internal/hybrid"
	"lam/internal/lamerr"
	"lam/internal/ml"
)

// Payload kinds: the two shapes of trained model the registry stores.
// The string values match internal/registry's Meta.Kind.
const (
	KindHybrid    = "hybrid"
	KindRegressor = "regressor"
)

// Codec names. FormatLAMB1 is the default for new saves; FormatJSONV1
// is the legacy encoding that keeps loading forever.
const (
	FormatJSONV1 = "jsonv1"
	FormatLAMB1  = "lamb1"
)

// DefaultFormat is the codec new artifacts are written with unless a
// SaveOptions escape hatch says otherwise.
const DefaultFormat = FormatLAMB1

// Payload is one trained model on its way to or from disk: exactly one
// of Hybrid or Regressor is set.
type Payload struct {
	Hybrid    *hybrid.Model
	Regressor ml.Regressor
}

// Kind returns KindHybrid or KindRegressor.
func (p *Payload) Kind() string {
	if p.Hybrid != nil {
		return KindHybrid
	}
	return KindRegressor
}

// Stats summarises the payload's structure (estimator kind, member
// tree count, flat-table node count) for lam-model info.
func (p *Payload) Stats() ml.ModelStats {
	if p.Hybrid != nil {
		s := ml.StatsOf(p.Hybrid.ML())
		s.Kind = "hybrid(" + s.Kind + ")"
		return s
	}
	return ml.StatsOf(p.Regressor)
}

func (p *Payload) validate() error {
	if p == nil || (p.Hybrid == nil) == (p.Regressor == nil) {
		return fmt.Errorf("artifact: payload must carry exactly one of a hybrid model or a regressor")
	}
	return nil
}

// DecodeOptions parameterise Decode.
type DecodeOptions struct {
	// Kind is the expected payload kind (KindHybrid / KindRegressor),
	// normally taken from registry metadata. Empty means "whatever the
	// artifact says" — jsonv1 then sniffs the document shape.
	Kind string
	// Analytical is the analytical model to reattach to hybrid
	// payloads (rebuilt from the (workload, machine) metadata by the
	// registry). Required when the payload is hybrid.
	Analytical hybrid.AnalyticalModel
}

// Codec encodes and decodes model payloads in one on-disk format.
type Codec interface {
	// Name returns the format name recorded in registry metadata.
	Name() string
	// Encode writes p to w.
	Encode(w io.Writer, p *Payload) error
	// Decode restores a payload from a complete artifact. Corrupt
	// input fails with an error wrapping lamerr.ErrCorruptArtifact and
	// never panics.
	Decode(data []byte, opts DecodeOptions) (*Payload, error)
	// Sniff reports whether prefix (the artifact's leading bytes, at
	// least 8 when the file has them) looks like this format.
	Sniff(prefix []byte) bool
}

// codecs is the codec registry, in detection-priority order: lamb1's
// 8-byte magic cannot occur at the start of a JSON document, so the
// binary codec sniffs first.
var codecs = []Codec{lamb1Codec{}, jsonv1Codec{}}

// Formats lists the registered codec names in detection order.
func Formats() []string {
	out := make([]string, len(codecs))
	for i, c := range codecs {
		out[i] = c.Name()
	}
	return out
}

// ByName resolves a codec by format name ("" means the default).
func ByName(name string) (Codec, error) {
	if name == "" {
		name = DefaultFormat
	}
	for _, c := range codecs {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("artifact: unknown format %q (have %v)", name, Formats())
}

// Detect picks the codec for an artifact from its leading bytes. An
// artifact matching no registered codec is corrupt.
func Detect(data []byte) (Codec, error) {
	for _, c := range codecs {
		if c.Sniff(data) {
			return c, nil
		}
	}
	return nil, fmt.Errorf("artifact: %w: unrecognised artifact (no codec magic matched %d-byte prefix)",
		lamerr.ErrCorruptArtifact, min(len(data), 8))
}

// Info describes one artifact for inspection (lam-model info).
type Info struct {
	// Format is the codec name the artifact is encoded with.
	Format string `json:"format"`
	// Kind is KindHybrid or KindRegressor.
	Kind string `json:"kind"`
	// Estimator is the decoded model's structural kind, e.g.
	// "pipeline(forest)" or "hybrid(pipeline(forest))".
	Estimator string `json:"estimator"`
	// Trees and Nodes count the flat node tables (zero for non-tree
	// estimators).
	Trees int `json:"trees"`
	Nodes int `json:"nodes"`
	// NodeLayout is the on-disk node encoding: "implicit-left" for
	// lamb1 version-2 payloads (tree bodies drop the left-child array),
	// "explicit-children" for version-1 and jsonv1 artifacts. Empty for
	// non-tree estimators.
	NodeLayout string `json:"node_layout,omitempty"`
	// Quant is the quantization mode ("quant16" / "quant8") when the
	// payload is a quantized node table, empty for exact models.
	Quant string `json:"quant,omitempty"`
	// SizeBytes is the artifact's total encoded size.
	SizeBytes int `json:"size_bytes"`
	// CRC32 is the lamb1 trailer checksum (Castagnoli), zero for
	// formats without one.
	CRC32 uint32 `json:"crc32,omitempty"`
}

// Inspect detects an artifact's codec, decodes it, and summarises it.
// The decoded payload is returned alongside so callers (lam-model
// convert) don't pay a second decode.
func Inspect(data []byte, opts DecodeOptions) (Info, *Payload, error) {
	c, err := Detect(data)
	if err != nil {
		return Info{}, nil, err
	}
	p, err := c.Decode(data, opts)
	if err != nil {
		return Info{}, nil, err
	}
	stats := p.Stats()
	info := Info{
		Format:    c.Name(),
		Kind:      p.Kind(),
		Estimator: stats.Kind,
		Trees:     stats.Trees,
		Nodes:     stats.Nodes,
		Quant:     stats.Quant,
		SizeBytes: len(data),
	}
	if stats.Trees > 0 {
		info.NodeLayout = "explicit-children"
	}
	if c.Name() == FormatLAMB1 {
		info.CRC32 = lamb1TrailerCRC(data)
		if stats.Trees > 0 && lamb1FormatVersion(data) >= 2 {
			info.NodeLayout = "implicit-left"
		}
	}
	return info, p, nil
}

package artifact

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"unsafe"

	"lam/internal/hybrid"
	"lam/internal/lamerr"
	"lam/internal/ml"
)

// lamb1: the flat binary artifact format.
//
// File layout (all integers little-endian):
//
//	offset  0  magic   [8]byte  "LAMB1\r\n\x00"
//	offset  8  u32     format version (1 or 2)
//	offset 12  u32     payload kind (1 = regressor, 2 = hybrid)
//	offset 16  u64     payload length in bytes
//	offset 24  []byte  payload (internal/ml + internal/hybrid binary
//	                   encoding; starts 8-byte aligned, every array on
//	                   its natural alignment — see ml/binary.go)
//	trailer    u32     CRC32-C over bytes [0, 24+payloadLen)
//
// The \r\n in the magic catches text-mode line-ending mangling the way
// PNG's does; the CRC covers header and payload, so any truncation or
// bit flip fails loudly (wrapping lamerr.ErrCorruptArtifact) before a
// single payload byte is parsed.
var lamb1Magic = [8]byte{'L', 'A', 'M', 'B', '1', '\r', '\n', 0}

const (
	// lamb1Version1 payloads carry explicit left-child arrays in every
	// tree body; lamb1Version2 drops them (the canonical layout makes
	// left implicit, shrinking tree bodies 25%) and adds the quantized
	// model kind. The header version equals the ml binary payload
	// version, so decode threads it straight down. New artifacts are
	// written at lamb1VersionLatest; both versions decode forever.
	lamb1Version1      = 1
	lamb1VersionLatest = ml.BinaryVersionLatest
	lamb1HeaderLen     = 24
	lamb1TrailerLen    = 4

	lamb1KindRegressor uint32 = 1
	lamb1KindHybrid    uint32 = 2
)

// crcTable is the Castagnoli polynomial — hardware-accelerated on
// every platform Go targets that has SSE4.2/ARMv8 CRC instructions.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

type lamb1Codec struct{}

func (lamb1Codec) Name() string { return FormatLAMB1 }

func (lamb1Codec) Encode(w io.Writer, p *Payload) error {
	if err := p.validate(); err != nil {
		return err
	}
	// Encode the payload first: its length lives in the header and its
	// bytes under the CRC, and append-style encoding lets the whole
	// artifact be assembled in one buffer and written in one call.
	buf := make([]byte, lamb1HeaderLen)
	copy(buf, lamb1Magic[:])
	var kind uint32
	var err error
	if p.Hybrid != nil {
		kind = lamb1KindHybrid
		buf, err = hybrid.AppendBinary(buf, p.Hybrid)
	} else {
		kind = lamb1KindRegressor
		buf, err = ml.AppendBinary(buf, p.Regressor)
	}
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf[8:12], lamb1VersionLatest)
	binary.LittleEndian.PutUint32(buf[12:16], kind)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(len(buf)-lamb1HeaderLen))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	_, err = w.Write(buf)
	return err
}

func corrupt1(format string, args ...any) error {
	return fmt.Errorf("artifact: %w: lamb1: "+format, append([]any{lamerr.ErrCorruptArtifact}, args...)...)
}

func (lamb1Codec) Decode(data []byte, opts DecodeOptions) (*Payload, error) {
	if len(data) < lamb1HeaderLen+lamb1TrailerLen {
		return nil, corrupt1("short artifact: %d bytes", len(data))
	}
	if !bytes.Equal(data[:8], lamb1Magic[:]) {
		return nil, corrupt1("bad magic %q", data[:8])
	}
	version := binary.LittleEndian.Uint32(data[8:12])
	if version != lamb1Version1 && version != lamb1VersionLatest {
		return nil, corrupt1("unsupported format version %d (this build reads %d and %d)",
			version, lamb1Version1, lamb1VersionLatest)
	}
	kind := binary.LittleEndian.Uint32(data[12:16])
	payloadLen := binary.LittleEndian.Uint64(data[16:24])
	if payloadLen != uint64(len(data)-lamb1HeaderLen-lamb1TrailerLen) {
		return nil, corrupt1("header says %d payload bytes, file carries %d",
			payloadLen, len(data)-lamb1HeaderLen-lamb1TrailerLen)
	}
	body := data[:len(data)-lamb1TrailerLen]
	if got, want := crc32.Checksum(body, crcTable), lamb1TrailerCRC(data); got != want {
		return nil, corrupt1("CRC32C mismatch: computed %08x, trailer %08x", got, want)
	}
	payload := alignedPayload(body[lamb1HeaderLen:])

	var kindName string
	switch kind {
	case lamb1KindRegressor:
		kindName = KindRegressor
	case lamb1KindHybrid:
		kindName = KindHybrid
	default:
		return nil, corrupt1("unknown payload kind %d", kind)
	}
	if opts.Kind != "" && opts.Kind != kindName {
		return nil, corrupt1("artifact carries a %s payload, metadata expects %s", kindName, opts.Kind)
	}
	switch kind {
	case lamb1KindRegressor:
		reg, err := ml.DecodeBinaryVersion(payload, int(version))
		if err != nil {
			return nil, fmt.Errorf("artifact: lamb1: %w", err)
		}
		return &Payload{Regressor: reg}, nil
	default:
		if opts.Analytical == nil {
			return nil, fmt.Errorf("artifact: decoding a hybrid payload requires the analytical model")
		}
		hy, err := hybrid.DecodeBinaryVersion(payload, opts.Analytical, int(version))
		if err != nil {
			return nil, fmt.Errorf("artifact: lamb1: %w", err)
		}
		return &Payload{Hybrid: hy}, nil
	}
}

func (lamb1Codec) Sniff(prefix []byte) bool {
	return len(prefix) >= 8 && bytes.Equal(prefix[:8], lamb1Magic[:])
}

// lamb1TrailerCRC reads the stored trailer checksum. Callers guarantee
// len(data) covers header+trailer.
func lamb1TrailerCRC(data []byte) uint32 {
	return binary.LittleEndian.Uint32(data[len(data)-lamb1TrailerLen:])
}

// lamb1FormatVersion reads the header version of an already-decoded
// artifact (callers guarantee the header is present and valid).
func lamb1FormatVersion(data []byte) uint32 {
	return binary.LittleEndian.Uint32(data[8:12])
}

// alignedPayload returns the payload bytes at 8-byte base alignment so
// the decoder's slice-casts land on natural boundaries. The header is
// 24 bytes, so when the file buffer itself is 8-byte aligned — which
// every Go heap allocation of this size is — the payload alias is
// returned as-is, zero-copy. A misaligned buffer (a caller slicing
// into the middle of something) falls back to one bulk copy into
// uint64-backed storage.
func alignedPayload(payload []byte) []byte {
	if len(payload) == 0 || uintptr(unsafe.Pointer(&payload[0]))%8 == 0 {
		return payload
	}
	backing := make([]uint64, (len(payload)+7)/8)
	aligned := unsafe.Slice((*byte)(unsafe.Pointer(&backing[0])), len(payload))
	copy(aligned, payload)
	return aligned
}

package telemetry

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"time"
)

// TraceHeader is the HTTP header that propagates a trace ID across
// hops: the gateway mints an ID (or adopts the client's), forwards it
// to the replica, and both record against the same ID.
const TraceHeader = "X-Lam-Trace"

// TraceID is a 128-bit trace identifier, rendered as 32 hex digits.
type TraceID [16]byte

// String renders the ID as lowercase hex.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is all-zero (no trace).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// ParseTraceID parses a 32-hex-digit ID; ok is false on malformed or
// all-zero input.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return id, !id.IsZero()
}

// NewTraceID mints a random 128-bit ID. math/rand/v2's global
// generator is seeded from the OS and safe for concurrent use; trace
// IDs need uniqueness, not unpredictability.
func NewTraceID() TraceID {
	var id TraceID
	a, b := rand.Uint64(), rand.Uint64()
	for i := 0; i < 8; i++ {
		id[i] = byte(a >> (8 * i))
		id[8+i] = byte(b >> (8 * i))
	}
	return id
}

// maxSpans bounds one trace's span list; a span started past the
// bound increments Dropped instead of growing the slice, so a
// pathological request cannot balloon the ring's memory.
const maxSpans = 64

// Span is one completed unit of work within a trace. Times are offsets
// from the trace's start so span trees from different processes can be
// read side by side without clock agreement beyond the trace boundary.
type Span struct {
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"` // offset from trace start
	DurNs   int64  `json:"dur_ns"`
	Detail  string `json:"detail,omitempty"`
}

// Trace is one request's (or background job's) span collection. All
// methods are safe on a nil receiver — instrumented code never checks
// whether tracing is enabled.
type Trace struct {
	id    TraceID
	name  string
	start time.Time

	mu      sync.Mutex
	model   string
	version int
	spans   []Span
	dropped int
}

// ID returns the trace's identifier (zero on nil).
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// SetModel records the model name and version the trace resolved to;
// call once known (it may not be at mint time — the gateway peeks the
// model, a replica resolves the version after load).
func (t *Trace) SetModel(model string, version int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.model = model
	t.version = version
	t.mu.Unlock()
}

// ActiveSpan is an in-progress span; End completes it and appends it
// to the trace.
type ActiveSpan struct {
	t      *Trace
	name   string
	detail string
	start  time.Time
}

// StartSpan opens a span. Nil-safe: on a nil trace the returned nil
// *ActiveSpan's methods no-op.
func (t *Trace) StartSpan(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, name: name, start: time.Now()}
}

// Detail attaches a free-form annotation (backend URL, model@version,
// batch size) and returns the span for chaining.
func (s *ActiveSpan) Detail(d string) *ActiveSpan {
	if s == nil {
		return s
	}
	s.detail = d
	return s
}

// End completes the span and records it on the trace.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	now := time.Now()
	t := s.t
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, Span{
			Name:    s.name,
			StartNs: s.start.Sub(t.start).Nanoseconds(),
			DurNs:   now.Sub(s.start).Nanoseconds(),
			Detail:  s.detail,
		})
	}
	t.mu.Unlock()
}

type traceCtxKey struct{}

// WithTrace attaches a trace to a context for the request path to
// instrument against.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// FromContext returns the context's trace, or nil (whose methods all
// no-op) when none is attached.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// StartSpan opens a span on the context's trace; the common one-line
// instrumentation form:
//
//	defer telemetry.StartSpan(ctx, "artifact_load").End()
func StartSpan(ctx context.Context, name string) *ActiveSpan {
	return FromContext(ctx).StartSpan(name)
}

package telemetry

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the daemons' structured logger for the -log-format
// flag: "text" (human-oriented key=value) or "json" (one object per
// line, for log shippers). Unknown formats error so a typo fails at
// startup instead of silently logging in the wrong shape.
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

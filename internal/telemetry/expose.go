package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// escapeLabelValue applies the Prometheus text-format label-value
// escapes: backslash, double-quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a # HELP line payload (backslash and newline).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatSeconds renders a nanosecond bound as seconds the way
// Prometheus clients conventionally do: shortest representation that
// round-trips.
func formatSeconds(ns uint64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {a="x",b="y"} (empty string for no labels), with
// extra appended last — used for the histogram le label, which by
// convention trails the user labels.
func writeLabels(w *bufio.Writer, labels []Label, extra ...Label) {
	if len(labels) == 0 && len(extra) == 0 {
		return
	}
	w.WriteByte('{')
	first := true
	for _, l := range labels {
		if !first {
			w.WriteByte(',')
		}
		first = false
		w.WriteString(l.Name)
		w.WriteString(`="`)
		w.WriteString(escapeLabelValue(l.Value))
		w.WriteString(`"`)
	}
	for _, l := range extra {
		if !first {
			w.WriteByte(',')
		}
		first = false
		w.WriteString(l.Name)
		w.WriteString(`="`)
		w.WriteString(escapeLabelValue(l.Value))
		w.WriteString(`"`)
	}
	w.WriteByte('}')
}

// WriteExposition writes every family in Prometheus text format:
// families sorted by name, series within a family sorted by label
// signature, histogram buckets cumulative with a terminal +Inf.
func (r *Registry) WriteExposition(w io.Writer) error {
	// Scrape hooks run outside the registry lock: they typically call
	// back into registration (lazily creating labeled series) or read
	// other subsystems' locks.
	r.mu.Lock()
	hooks := make([]func(), len(r.hooks))
	copy(hooks, r.hooks)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}

	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	// Snapshot each family's series list under the lock; the slots
	// themselves are atomics and are read lock-free below.
	type famSnap struct {
		f      *family
		series []*series
	}
	snaps := make([]famSnap, len(fams))
	for i, f := range fams {
		ordered := make([]*series, len(f.ordered))
		copy(ordered, f.ordered)
		sort.Slice(ordered, func(a, b int) bool { return ordered[a].sig < ordered[b].sig })
		snaps[i] = famSnap{f: f, series: ordered}
	}
	r.mu.Unlock()
	sort.Slice(snaps, func(a, b int) bool { return snaps[a].f.name < snaps[b].f.name })

	bw := bufio.NewWriter(w)
	for _, sn := range snaps {
		f := sn.f
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		if f.collect != nil {
			// Collector family: gather, then sort for deterministic and
			// duplicate-free output.
			type sample struct {
				sig    string
				labels []Label
				value  float64
			}
			var samples []sample
			f.collect(func(labels []Label, value float64) {
				ls := normalizeLabels(f.name, labels)
				samples = append(samples, sample{sig: signature(ls), labels: ls, value: value})
			})
			sort.Slice(samples, func(a, b int) bool { return samples[a].sig < samples[b].sig })
			for _, s := range samples {
				bw.WriteString(f.name)
				writeLabels(bw, s.labels)
				bw.WriteByte(' ')
				bw.WriteString(formatValue(s.value))
				bw.WriteByte('\n')
			}
			continue
		}
		for _, s := range sn.series {
			switch {
			case s.c != nil:
				bw.WriteString(f.name)
				writeLabels(bw, s.labels)
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(s.c.Load(), 10))
				bw.WriteByte('\n')
			case s.g != nil:
				bw.WriteString(f.name)
				writeLabels(bw, s.labels)
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(s.g.Load(), 10))
				bw.WriteByte('\n')
			case s.f != nil:
				bw.WriteString(f.name)
				writeLabels(bw, s.labels)
				bw.WriteByte(' ')
				bw.WriteString(formatValue(s.f.Value()))
				bw.WriteByte('\n')
			case s.h != nil:
				cum := s.h.Cumulative()
				for i, bound := range s.h.boundsNs {
					bw.WriteString(f.name)
					bw.WriteString("_bucket")
					writeLabels(bw, s.labels, L("le", formatSeconds(bound)))
					bw.WriteByte(' ')
					bw.WriteString(strconv.FormatUint(cum[i], 10))
					bw.WriteByte('\n')
				}
				bw.WriteString(f.name)
				bw.WriteString("_bucket")
				writeLabels(bw, s.labels, L("le", "+Inf"))
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(cum[len(cum)-1], 10))
				bw.WriteByte('\n')
				bw.WriteString(f.name)
				bw.WriteString("_sum")
				writeLabels(bw, s.labels)
				bw.WriteByte(' ')
				bw.WriteString(formatValue(float64(s.h.SumNs()) / 1e9))
				bw.WriteByte('\n')
				bw.WriteString(f.name)
				bw.WriteString("_count")
				writeLabels(bw, s.labels)
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(cum[len(cum)-1], 10))
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

// ExpositionContentType is the Content-Type of the Prometheus text
// format, version 0.0.4.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves GET /metrics as the Prometheus text exposition. (The
// legacy ?format=json flat document had its one-release compatibility
// window and is gone; scrape the text format.)
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ExpositionContentType)
		if err := r.WriteExposition(w); err != nil {
			// Headers are gone; nothing useful left to do but note it.
			return
		}
	})
}

package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ExpoSample is one parsed sample line.
type ExpoSample struct {
	Name   string // full sample name, including _bucket/_sum/_count suffixes
	Labels []Label
	Value  float64
}

// Label lookup helper.
func (s ExpoSample) Label(name string) (string, bool) {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

// ExpoFamily is one parsed metric family: its # HELP / # TYPE header
// plus every sample that followed it.
type ExpoFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ExpoSample
}

// Exposition is a parsed /metrics document.
type Exposition struct {
	Families []*ExpoFamily
}

// Family returns the named family, or nil.
func (e *Exposition) Family(name string) *ExpoFamily {
	for _, f := range e.Families {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// ParseExposition parses a Prometheus text-format document strictly.
// Beyond syntax it enforces the invariants our Registry promises and
// the test suites scrape for:
//
//   - every sample is preceded by its family's # HELP and # TYPE lines
//   - family names are unique and each family's samples are contiguous
//   - no duplicate series (same name + label set twice)
//   - label names are valid and strictly sorted, with histogram "le"
//     trailing the user labels
//   - per histogram series: le bounds strictly ascending, cumulative
//     bucket counts monotonically non-decreasing, a terminal +Inf
//     bucket, a _sum, and a _count equal to the +Inf bucket
//
// Any violation returns an error naming the offending line.
func ParseExposition(doc string) (*Exposition, error) {
	exp := &Exposition{}
	byName := map[string]*ExpoFamily{}
	var cur *ExpoFamily
	var curHelp string
	helpSeen := map[string]string{}

	lines := strings.Split(doc, "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			if ln != len(lines)-1 {
				return nil, fmt.Errorf("line %d: blank line inside exposition", lineNo)
			}
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := line[len("# HELP "):]
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				// HELP with empty help text: tolerate "name" alone.
				name, help = rest, ""
			}
			if !metricNameRE.MatchString(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q in HELP", lineNo, name)
			}
			if _, dup := helpSeen[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate # HELP for %s", lineNo, name)
			}
			helpSeen[name] = help
			curHelp = name
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line[len("# TYPE "):])
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
			}
			name, typ := fields[0], fields[1]
			if typ != TypeCounter && typ != TypeGauge && typ != TypeHistogram && typ != "summary" && typ != "untyped" {
				return nil, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
			}
			if curHelp != name {
				return nil, fmt.Errorf("line %d: # TYPE %s not immediately preceded by its # HELP", lineNo, name)
			}
			if _, dup := byName[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate family %s", lineNo, name)
			}
			cur = &ExpoFamily{Name: name, Help: helpSeen[name], Type: typ}
			byName[name] = cur
			exp.Families = append(exp.Families, cur)
			continue
		}
		if strings.HasPrefix(line, "#") {
			return nil, fmt.Errorf("line %d: unexpected comment %q", lineNo, line)
		}

		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if cur == nil {
			return nil, fmt.Errorf("line %d: sample %s before any # TYPE", lineNo, s.Name)
		}
		base := s.Name
		if cur.Type == TypeHistogram {
			base = strings.TrimSuffix(base, "_bucket")
			base = strings.TrimSuffix(base, "_sum")
			base = strings.TrimSuffix(base, "_count")
		}
		if base != cur.Name {
			return nil, fmt.Errorf("line %d: sample %s under family %s (samples must be contiguous)", lineNo, s.Name, cur.Name)
		}
		if cur.Type == TypeHistogram && s.Name == cur.Name {
			return nil, fmt.Errorf("line %d: bare sample %s for histogram family", lineNo, s.Name)
		}
		cur.Samples = append(cur.Samples, s)
	}

	for _, f := range exp.Families {
		if err := validateFamily(f); err != nil {
			return nil, err
		}
	}
	return exp, nil
}

// parseSampleLine parses `name{a="b",...} value` (no timestamps — the
// Registry never writes them, so the parser rejects them).
func parseSampleLine(line string) (ExpoSample, error) {
	var s ExpoSample
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !metricNameRE.MatchString(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	if i < len(line) && line[i] == '{' {
		j := i + 1
		for j < len(line) && line[j] != '}' {
			// label name
			k := j
			for k < len(line) && line[k] != '=' {
				k++
			}
			if k == len(line) {
				return s, fmt.Errorf("unterminated label in %q", line)
			}
			lname := line[j:k]
			if !labelNameRE.MatchString(lname) {
				return s, fmt.Errorf("invalid label name %q", lname)
			}
			if k+1 >= len(line) || line[k+1] != '"' {
				return s, fmt.Errorf("label %s: value not quoted", lname)
			}
			val, rest, err := unquoteLabelValue(line[k+2:])
			if err != nil {
				return s, fmt.Errorf("label %s: %v", lname, err)
			}
			s.Labels = append(s.Labels, Label{Name: lname, Value: val})
			j = len(line) - len(rest)
			if j < len(line) && line[j] == ',' {
				j++
			} else if j < len(line) && line[j] != '}' {
				return s, fmt.Errorf("malformed label list in %q", line)
			}
		}
		if j == len(line) {
			return s, fmt.Errorf("unterminated label list in %q", line)
		}
		i = j + 1
	}
	if i >= len(line) || line[i] != ' ' {
		return s, fmt.Errorf("missing value in %q", line)
	}
	valStr := line[i+1:]
	if strings.ContainsAny(valStr, " \t") {
		return s, fmt.Errorf("trailing content after value in %q (timestamps are not accepted)", line)
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", valStr, err)
	}
	s.Value = v
	return s, nil
}

// unquoteLabelValue consumes an escaped label value up to its closing
// quote, returning the value and the remainder of the line after the
// quote.
func unquoteLabelValue(rest string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(rest); i++ {
		c := rest[i]
		switch c {
		case '"':
			return b.String(), rest[i+1:], nil
		case '\\':
			if i+1 >= len(rest) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch rest[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", rest[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validateFamily checks series uniqueness, label ordering, and the
// histogram invariants.
func validateFamily(f *ExpoFamily) error {
	seen := map[string]bool{}
	for _, s := range f.Samples {
		// Label names strictly sorted; for histogram buckets "le" must
		// be last (our writer appends it after the sorted user labels,
		// and "le" is not required to sort after arbitrary names — the
		// contract is: user labels sorted, le trailing).
		labels := s.Labels
		if f.Type == TypeHistogram && strings.HasSuffix(s.Name, "_bucket") {
			if len(labels) == 0 || labels[len(labels)-1].Name != "le" {
				return fmt.Errorf("family %s: bucket sample missing trailing le label", f.Name)
			}
			labels = labels[:len(labels)-1]
		}
		for i := 1; i < len(labels); i++ {
			if labels[i-1].Name >= labels[i].Name {
				return fmt.Errorf("family %s: labels of %s not strictly sorted (%s before %s)",
					f.Name, s.Name, labels[i-1].Name, labels[i].Name)
			}
		}
		key := s.Name + "|" + signature(s.Labels)
		if seen[key] {
			return fmt.Errorf("family %s: duplicate series %s{%s}", f.Name, s.Name, signature(s.Labels))
		}
		seen[key] = true
	}

	if f.Type != TypeHistogram {
		return nil
	}

	// Group buckets/sum/count per label signature (excluding le).
	type hseries struct {
		bounds []float64
		counts []float64
		sum    *float64
		count  *float64
	}
	groups := map[string]*hseries{}
	order := []string{}
	get := func(sig string) *hseries {
		h := groups[sig]
		if h == nil {
			h = &hseries{}
			groups[sig] = h
			order = append(order, sig)
		}
		return h
	}
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, _ := s.Label("le")
			bound, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("family %s: bad le %q", f.Name, le)
			}
			user := s.Labels[:len(s.Labels)-1]
			h := get(signature(user))
			h.bounds = append(h.bounds, bound)
			h.counts = append(h.counts, s.Value)
		case strings.HasSuffix(s.Name, "_sum"):
			h := get(signature(s.Labels))
			if h.sum != nil {
				return fmt.Errorf("family %s: duplicate _sum", f.Name)
			}
			v := s.Value
			h.sum = &v
		case strings.HasSuffix(s.Name, "_count"):
			h := get(signature(s.Labels))
			if h.count != nil {
				return fmt.Errorf("family %s: duplicate _count", f.Name)
			}
			v := s.Value
			h.count = &v
		}
	}
	sort.Strings(order)
	for _, sig := range order {
		h := groups[sig]
		if len(h.bounds) == 0 {
			return fmt.Errorf("family %s{%s}: histogram series with no buckets", f.Name, sig)
		}
		for i := 1; i < len(h.bounds); i++ {
			if !(h.bounds[i-1] < h.bounds[i]) {
				return fmt.Errorf("family %s{%s}: le bounds not strictly ascending", f.Name, sig)
			}
			if h.counts[i] < h.counts[i-1] {
				return fmt.Errorf("family %s{%s}: cumulative bucket counts decrease at le=%v", f.Name, sig, h.bounds[i])
			}
		}
		if !math.IsInf(h.bounds[len(h.bounds)-1], 1) {
			return fmt.Errorf("family %s{%s}: missing terminal +Inf bucket", f.Name, sig)
		}
		if h.sum == nil {
			return fmt.Errorf("family %s{%s}: missing _sum", f.Name, sig)
		}
		if h.count == nil {
			return fmt.Errorf("family %s{%s}: missing _count", f.Name, sig)
		}
		if *h.count != h.counts[len(h.counts)-1] {
			return fmt.Errorf("family %s{%s}: _count %v != +Inf bucket %v", f.Name, sig, *h.count, h.counts[len(h.counts)-1])
		}
	}
	return nil
}

package telemetry

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("lam_test_total", "help", L("model", "m0"))
	b := r.Counter("lam_test_total", "help", L("model", "m0"))
	if a != b {
		t.Fatal("same name+labels must resolve to one handle")
	}
	c := r.Counter("lam_test_total", "help", L("model", "m1"))
	if a == c {
		t.Fatal("different labels must resolve to distinct handles")
	}
	// Label order must not matter.
	d := r.Counter("lam_multi_total", "help", L("a", "1"), L("b", "2"))
	e := r.Counter("lam_multi_total", "help", L("b", "2"), L("a", "1"))
	if d != e {
		t.Fatal("label registration order must not create distinct series")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("lam_conflict", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("lam_conflict", "help")
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if got := g.Load(); got != 5 {
		t.Fatalf("SetMax must keep the high water mark, got %d", got)
	}
	g.SetMax(9)
	if got := g.Load(); got != 9 {
		t.Fatalf("SetMax must raise, got %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lam_lat_seconds", "help")
	h.Observe(100 * time.Nanosecond)  // bucket 0 (<=250ns)
	h.Observe(500 * time.Microsecond) // <=1ms
	h.Observe(2 * time.Second)        // +Inf
	if got := h.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	cum := h.Cumulative()
	if cum[len(cum)-1] != 3 {
		t.Fatalf("+Inf cumulative = %d, want 3", cum[len(cum)-1])
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative counts decreased at %d", i)
		}
	}
	if h.SumNs() != uint64(100+500_000+2_000_000_000) {
		t.Fatalf("SumNs = %d", h.SumNs())
	}
}

func TestExpositionRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("lam_b_total", "b count").Add(7)
	r.Counter("lam_a_total", "a count", L("model", "g"), L("outcome", "ok")).Add(2)
	r.Counter("lam_a_total", "a count", L("model", "g"), L("outcome", "error")).Inc()
	r.Gauge("lam_depth", "queue depth").Store(4)
	r.FloatGauge("lam_ratio", "a ratio").Set(0.25)
	h := r.Histogram("lam_lat_seconds", "latency", L("model", "g"))
	h.Observe(3 * time.Millisecond)
	r.CollectFunc("lam_col", "collected", TypeGauge, func(emit func([]Label, float64)) {
		emit([]Label{L("v", "2")}, 42)
		emit([]Label{L("v", "1")}, 41)
	})

	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	doc := sb.String()
	exp, err := ParseExposition(doc)
	if err != nil {
		t.Fatalf("own exposition must parse: %v\n%s", err, doc)
	}
	// Families sorted by name.
	var names []string
	for _, f := range exp.Families {
		names = append(names, f.Name)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("families not sorted: %v", names)
		}
	}
	fa := exp.Family("lam_a_total")
	if fa == nil || fa.Type != TypeCounter || len(fa.Samples) != 2 {
		t.Fatalf("lam_a_total family wrong: %+v", fa)
	}
	if v, _ := fa.Samples[0].Label("outcome"); v != "error" {
		t.Fatalf("series not sorted by signature: %+v", fa.Samples)
	}
	col := exp.Family("lam_col")
	if col == nil || len(col.Samples) != 2 || col.Samples[0].Value != 41 {
		t.Fatalf("collector family wrong: %+v", col)
	}
	hist := exp.Family("lam_lat_seconds")
	if hist == nil || hist.Type != TypeHistogram {
		t.Fatal("histogram family missing")
	}
	// NumLatencyBuckets bucket samples + _sum + _count.
	if len(hist.Samples) != NumLatencyBuckets+2 {
		t.Fatalf("histogram sample count = %d, want %d", len(hist.Samples), NumLatencyBuckets+2)
	}
}

func TestExpositionLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("lam_esc_total", "help", L("model", "a\"b\\c\nd")).Inc()
	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(sb.String())
	if err != nil {
		t.Fatalf("escaped exposition must parse: %v\n%s", err, sb.String())
	}
	got, _ := exp.Family("lam_esc_total").Samples[0].Label("model")
	if got != "a\"b\\c\nd" {
		t.Fatalf("label value did not round-trip: %q", got)
	}
}

func TestOnScrapeHook(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("lam_hooked", "help")
	r.OnScrape(func() { g.Store(11) })
	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "lam_hooked 11") {
		t.Fatalf("scrape hook did not run:\n%s", sb.String())
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("lam_x_total", "help").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	// The legacy ?format=json dispatch is gone: every request gets the
	// Prometheus text exposition.
	for _, url := range []string{srv.URL, srv.URL + "?format=json"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != ExpositionContentType {
			t.Fatalf("GET %s: Content-Type %q, want %q", url, ct, ExpositionContentType)
		}
		if !strings.Contains(sb.String(), "# TYPE lam_x_total counter") {
			t.Fatalf("GET %s: missing exposition in:\n%s", url, sb.String())
		}
	}
}

// TestConcurrentScrape hammers registration, updates and exposition
// concurrently; run under -race this is the registry's thread-safety
// proof, and every interleaved scrape must still parse strictly.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			models := []string{"m0", "m1", "m2"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m := models[i%len(models)]
				r.Counter("lam_cc_total", "help", L("model", m)).Inc()
				r.Histogram("lam_cc_seconds", "help", L("model", m)).Observe(time.Duration(i) * time.Microsecond)
				r.Gauge("lam_cc_depth", "help").SetMax(int64(i % 100))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WriteExposition(&sb); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseExposition(sb.String()); err != nil {
			t.Fatalf("scrape %d failed strict parse: %v\n%s", i, err, sb.String())
		}
	}
	close(stop)
	wg.Wait()
}

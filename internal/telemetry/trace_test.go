package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("minted ID must not be zero")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("ID string length = %d, want 32", len(s))
	}
	got, ok := ParseTraceID(s)
	if !ok || got != id {
		t.Fatalf("round trip failed: %s -> %s", id, got)
	}
	for _, bad := range []string{"", "xyz", strings.Repeat("0", 32), strings.Repeat("g", 32), strings.Repeat("a", 31)} {
		if _, ok := ParseTraceID(bad); ok {
			t.Fatalf("ParseTraceID(%q) must fail", bad)
		}
	}
}

func TestRecorderAdoptsHeader(t *testing.T) {
	r := NewRecorder(8)
	h := http.Header{}
	want := NewTraceID()
	h.Set(TraceHeader, want.String())
	tr := r.StartFromHeader(h, "predict")
	if tr.ID() != want {
		t.Fatalf("header ID not adopted: got %s want %s", tr.ID(), want)
	}
	// Absent or malformed header mints.
	tr2 := r.StartFromHeader(http.Header{}, "predict")
	if tr2.ID().IsZero() || tr2.ID() == want {
		t.Fatal("missing header must mint a fresh ID")
	}
}

func TestSpansAndRing(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 3; i++ {
		tr := r.Start("predict")
		tr.SetModel("grid", 3)
		sp := tr.StartSpan("admission")
		sp.End()
		tr.StartSpan("predict").Detail("batch=4").End()
		r.Finish(tr)
	}
	recs := r.Recent()
	if len(recs) != 2 {
		t.Fatalf("ring must cap at 2, got %d", len(recs))
	}
	rec := recs[0]
	if rec.Model != "grid" || rec.Version != 3 {
		t.Fatalf("model/version lost: %+v", rec)
	}
	if len(rec.Spans) != 2 || rec.Spans[0].Name != "admission" || rec.Spans[1].Detail != "batch=4" {
		t.Fatalf("spans wrong: %+v", rec.Spans)
	}
	if rec.Spans[1].StartNs < rec.Spans[0].StartNs {
		t.Fatal("span start offsets must be ordered by wall time")
	}
}

func TestSpanCap(t *testing.T) {
	r := NewRecorder(1)
	tr := r.Start("predict")
	for i := 0; i < maxSpans+10; i++ {
		tr.StartSpan("s").End()
	}
	r.Finish(tr)
	rec := r.Recent()[0]
	if len(rec.Spans) != maxSpans || rec.SpansDropped != 10 {
		t.Fatalf("span cap: got %d spans, %d dropped", len(rec.Spans), rec.SpansDropped)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	tr := r.Start("predict") // nil
	tr.SetModel("m", 1)
	tr.StartSpan("x").Detail("d").End()
	r.Finish(tr)
	if r.Recent() != nil {
		t.Fatal("nil recorder must report no traces")
	}
	tr2 := r.StartFromHeader(http.Header{}, "p")
	if tr2 != nil {
		t.Fatal("nil recorder must mint nil traces")
	}
	// Context plumbing with no trace attached.
	StartSpan(context.Background(), "x").End()
}

func TestContextPlumbing(t *testing.T) {
	r := NewRecorder(1)
	tr := r.Start("predict")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext must return the attached trace")
	}
	StartSpan(ctx, "inner").End()
	r.Finish(tr)
	if got := r.Recent()[0].Spans; len(got) != 1 || got[0].Name != "inner" {
		t.Fatalf("context span not recorded: %+v", got)
	}
}

func TestSlowTraceLogged(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(4)
	r.Slow = time.Nanosecond
	r.Logger = slog.New(slog.NewJSONHandler(&buf, nil))
	tr := r.Start("predict")
	tr.StartSpan("predict").End()
	time.Sleep(time.Millisecond)
	r.Finish(tr)
	out := buf.String()
	if !strings.Contains(out, "slow trace") || !strings.Contains(out, tr.ID().String()) {
		t.Fatalf("slow trace not logged with its ID:\n%s", out)
	}
	// Threshold respected: a fast trace with a huge threshold stays quiet.
	buf.Reset()
	r.Slow = time.Hour
	tr2 := r.Start("predict")
	r.Finish(tr2)
	if buf.Len() != 0 {
		t.Fatalf("fast trace must not log: %s", buf.String())
	}
}

func TestRecentHandler(t *testing.T) {
	r := NewRecorder(4)
	tr := r.Start("observe")
	tr.StartSpan("observe_ingest").End()
	r.Finish(tr)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Traces []Record `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Traces) != 1 || doc.Traces[0].Name != "observe" || len(doc.Traces[0].Spans) != 1 {
		t.Fatalf("handler payload wrong: %+v", doc)
	}
	if _, ok := ParseTraceID(doc.Traces[0].TraceID); !ok {
		t.Fatalf("trace_id not a valid ID: %q", doc.Traces[0].TraceID)
	}
}

package telemetry

import (
	"strings"
	"testing"
)

func TestParseRejectsBrokenDocuments(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{
			"sample before TYPE",
			"lam_x 1\n",
			"before any # TYPE",
		},
		{
			"TYPE without HELP",
			"# TYPE lam_x counter\nlam_x 1\n",
			"not immediately preceded",
		},
		{
			"duplicate family",
			"# HELP lam_x h\n# TYPE lam_x counter\nlam_x 1\n# HELP lam_x h\n# TYPE lam_x counter\nlam_x 2\n",
			"duplicate",
		},
		{
			"duplicate series",
			"# HELP lam_x h\n# TYPE lam_x counter\nlam_x{a=\"1\"} 1\nlam_x{a=\"1\"} 2\n",
			"duplicate series",
		},
		{
			"unsorted labels",
			"# HELP lam_x h\n# TYPE lam_x counter\nlam_x{b=\"1\",a=\"2\"} 1\n",
			"not strictly sorted",
		},
		{
			"non-contiguous family",
			"# HELP lam_x h\n# TYPE lam_x counter\nlam_x 1\nlam_y 2\n",
			"contiguous",
		},
		{
			"histogram missing +Inf",
			"# HELP lam_h h\n# TYPE lam_h histogram\nlam_h_bucket{le=\"1\"} 1\nlam_h_sum 1\nlam_h_count 1\n",
			"+Inf",
		},
		{
			"histogram buckets decrease",
			"# HELP lam_h h\n# TYPE lam_h histogram\nlam_h_bucket{le=\"1\"} 5\nlam_h_bucket{le=\"+Inf\"} 3\nlam_h_sum 1\nlam_h_count 3\n",
			"decrease",
		},
		{
			"histogram le not ascending",
			"# HELP lam_h h\n# TYPE lam_h histogram\nlam_h_bucket{le=\"2\"} 1\nlam_h_bucket{le=\"1\"} 1\nlam_h_bucket{le=\"+Inf\"} 1\nlam_h_sum 1\nlam_h_count 1\n",
			"ascending",
		},
		{
			"histogram count mismatch",
			"# HELP lam_h h\n# TYPE lam_h histogram\nlam_h_bucket{le=\"+Inf\"} 3\nlam_h_sum 1\nlam_h_count 4\n",
			"_count",
		},
		{
			"histogram missing sum",
			"# HELP lam_h h\n# TYPE lam_h histogram\nlam_h_bucket{le=\"+Inf\"} 3\nlam_h_count 3\n",
			"_sum",
		},
		{
			"bucket without le",
			"# HELP lam_h h\n# TYPE lam_h histogram\nlam_h_bucket{a=\"1\"} 3\nlam_h_sum 1\nlam_h_count 3\n",
			"le",
		},
		{
			"timestamp rejected",
			"# HELP lam_x h\n# TYPE lam_x counter\nlam_x 1 1700000000\n",
			"timestamps",
		},
		{
			"unterminated label value",
			"# HELP lam_x h\n# TYPE lam_x counter\nlam_x{a=\"1} 1\n",
			"unterminated",
		},
		{
			"bad escape",
			"# HELP lam_x h\n# TYPE lam_x counter\nlam_x{a=\"\\q\"} 1\n",
			"escape",
		},
		{
			"bad value",
			"# HELP lam_x h\n# TYPE lam_x counter\nlam_x abc\n",
			"value",
		},
		{
			"blank line inside",
			"# HELP lam_x h\n# TYPE lam_x counter\n\nlam_x 1\n",
			"blank",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseExposition(tc.doc)
			if err == nil {
				t.Fatalf("parse must fail for:\n%s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseAcceptsWellFormed(t *testing.T) {
	doc := strings.Join([]string{
		`# HELP lam_h latency`,
		`# TYPE lam_h histogram`,
		`lam_h_bucket{model="g",le="0.001"} 2`,
		`lam_h_bucket{model="g",le="+Inf"} 3`,
		`lam_h_sum{model="g"} 0.005`,
		`lam_h_count{model="g"} 3`,
		`# HELP lam_x requests`,
		`# TYPE lam_x counter`,
		`lam_x{model="g",outcome="ok"} 9`,
		``,
	}, "\n")
	exp, err := ParseExposition(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Families) != 2 {
		t.Fatalf("families = %d, want 2", len(exp.Families))
	}
	h := exp.Family("lam_h")
	if h.Help != "latency" || h.Type != TypeHistogram || len(h.Samples) != 4 {
		t.Fatalf("histogram family wrong: %+v", h)
	}
	if v, ok := exp.Family("lam_x").Samples[0].Label("outcome"); !ok || v != "ok" {
		t.Fatal("label lookup failed")
	}
}

package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension. The repository's conventional label
// names are "model", "version", "backend" and "outcome".
type Label struct {
	Name  string
	Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing metric slot. It embeds the
// atomic directly: Add/Load on a registered handle are single atomic
// operations with no indirection beyond the pointer itself.
type Counter struct{ atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Gauge is a settable signed metric slot.
type Gauge struct{ atomic.Int64 }

// SetMax raises the gauge to v if v is greater — the high-water-mark
// idiom used for queue and in-flight peaks.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// FloatGauge is a settable float64 metric slot (atomic on the bits).
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value loads the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// LatencyBucketBoundsNs is the one shared histogram bucket ladder
// (upper bounds, inclusive, nanoseconds; the final implicit bucket is
// +Inf): 0.25µs through 1s in 4x steps. It is the union of the ladders
// serve's predict histogram and gateway's routing histogram used
// before the telemetry plane, so the two daemons' histograms became
// directly comparable without losing resolution at either end —
// sub-microsecond routing decisions and worst-case cold batch
// predictions land in distinct buckets of the same ladder.
var LatencyBucketBoundsNs = [...]uint64{
	250,           // 0.25µs
	1_000,         // 1µs
	4_000,         // 4µs
	16_000,        // 16µs
	64_000,        // 64µs
	256_000,       // 256µs
	1_000_000,     // 1ms
	4_000_000,     // 4ms
	16_000_000,    // 16ms
	64_000_000,    // 64ms
	256_000_000,   // 256ms
	1_000_000_000, // 1s
}

// NumLatencyBuckets includes the +Inf overflow bucket.
const NumLatencyBuckets = len(LatencyBucketBoundsNs) + 1

// Histogram is a fixed-bucket duration histogram. Stored counts are
// per-interval so Observe is one bucket scan (≤ len(bounds) compares)
// plus two atomic adds; exposition accumulates them into cumulative
// Prometheus form.
type Histogram struct {
	boundsNs []uint64
	buckets  []atomic.Uint64 // len(boundsNs)+1; last is +Inf
	sumNs    atomic.Uint64
}

func newHistogram(boundsNs []uint64) *Histogram {
	return &Histogram{boundsNs: boundsNs, buckets: make([]atomic.Uint64, len(boundsNs)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(d)
	h.sumNs.Add(ns)
	for i, b := range h.boundsNs {
		if ns <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(h.buckets)-1].Add(1)
}

// Cumulative returns the cumulative bucket counts (last entry is the
// +Inf bucket, equal to Count).
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.buckets))
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// SumNs returns the accumulated observed time in nanoseconds.
func (h *Histogram) SumNs() uint64 { return h.sumNs.Load() }

// BoundsNs returns the bucket upper bounds (nanoseconds, +Inf
// excluded).
func (h *Histogram) BoundsNs() []uint64 { return h.boundsNs }

// Metric family types, as emitted in the exposition's # TYPE line.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// series is one registered (labels → slot) binding within a family.
type series struct {
	labels []Label // sorted by name
	sig    string
	c      *Counter
	g      *Gauge
	f      *FloatGauge
	h      *Histogram
}

// family is one metric name with its type, help and series set.
type family struct {
	name, help, typ string
	series          map[string]*series
	ordered         []*series // insertion order; sorted at exposition
	// collect, when set, makes this a collector family: samples are
	// produced by the callback at scrape time instead of from
	// registered slots.
	collect func(emit func(labels []Label, value float64))
}

// Registry is a set of metric families with a Prometheus text
// exposition. Registration (Counter/Gauge/FloatGauge/Histogram) is
// get-or-create on (name, label set) and safe for concurrent use; the
// returned handles are the storage, so the hot path never touches the
// registry again.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	hooks    []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// signature renders sorted labels into a canonical, unambiguous key.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte(',')
	}
	return b.String()
}

func normalizeLabels(name string, labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	for i, l := range out {
		if !labelNameRE.MatchString(l.Name) {
			panic(fmt.Sprintf("telemetry: metric %s: invalid label name %q", name, l.Name))
		}
		if i > 0 && out[i-1].Name == l.Name {
			panic(fmt.Sprintf("telemetry: metric %s: duplicate label %q", name, l.Name))
		}
	}
	return out
}

// getOrCreate resolves the series for (name, labels), creating family
// and series as needed. The slot kind is fixed at creation so series
// fields are immutable afterwards and exposition can read them
// lock-free. Conflicting re-registration (same name, different type or
// gauge kind) panics: it is a programming error, caught at init or
// first load, never on the hot path.
func (r *Registry) getOrCreate(name, help, typ string, float bool, labels []Label) *series {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	labels = normalizeLabels(name, labels)
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = fam
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %s re-registered as %s (was %s)", name, typ, fam.typ))
	}
	if fam.collect != nil {
		panic(fmt.Sprintf("telemetry: metric %s is a collector family; cannot register slots on it", name))
	}
	s := fam.series[sig]
	if s == nil {
		s = &series{labels: labels, sig: sig}
		switch {
		case typ == TypeCounter:
			s.c = &Counter{}
		case typ == TypeGauge && float:
			s.f = &FloatGauge{}
		case typ == TypeGauge:
			s.g = &Gauge{}
		case typ == TypeHistogram:
			s.h = newHistogram(LatencyBucketBoundsNs[:])
		}
		fam.series[sig] = s
		fam.ordered = append(fam.ordered, s)
	}
	if typ == TypeGauge && (float != (s.f != nil)) {
		panic(fmt.Sprintf("telemetry: gauge %s re-registered with a different value kind", name))
	}
	return s
}

// Counter returns the counter registered under name with the given
// labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.getOrCreate(name, help, TypeCounter, false, labels).c
}

// Gauge returns the gauge registered under name with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.getOrCreate(name, help, TypeGauge, false, labels).g
}

// FloatGauge returns a float-valued gauge. It shares the gauge type in
// the exposition; a family is either all-int or all-float.
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	return r.getOrCreate(name, help, TypeGauge, true, labels).f
}

// Histogram returns the duration histogram registered under name. All
// histograms share the one LatencyBucketBoundsNs ladder — defined
// once, here, so serve and gateway can never drift apart again.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.getOrCreate(name, help, TypeHistogram, false, labels).h
}

// CollectFunc registers a collector family: at each scrape, fn is
// invoked and every emit(labels, value) call becomes one sample. Use
// it for values that already live elsewhere (online-plane windows,
// health state) instead of mirroring them into slots. typ must be
// TypeCounter or TypeGauge.
func (r *Registry) CollectFunc(name, help, typ string, fn func(emit func(labels []Label, value float64))) {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	if typ != TypeCounter && typ != TypeGauge {
		panic(fmt.Sprintf("telemetry: collector %s: unsupported type %s", name, typ))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("telemetry: metric %s registered twice", name))
	}
	r.families[name] = &family{name: name, help: help, typ: typ, collect: fn}
}

// OnScrape registers a hook run at the start of every exposition,
// before any family is written — the place to refresh gauges whose
// source of truth lives outside the registry.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// Package telemetry is the shared observability plane: one metric
// registry, one trace model and one logging convention used by every
// daemon in the repository (lam-serve, lam-gateway and the tools that
// drive them).
//
// # Metrics
//
// A Registry holds counters, gauges and fixed-bucket duration
// histograms behind an allocation-free API. Handles are resolved once,
// at registration time (Registry.Counter and friends are get-or-create
// on the full name + label set); the hot path then performs plain
// atomic adds on the returned handle — no map lookups, no allocation,
// no locks. Registration is the slow path and may be called lazily
// (e.g. per loaded model version) because it is idempotent.
//
// The registry exposes the Prometheus text format via Handler /
// WriteExposition: families sorted by name, series sorted by label
// signature, histogram buckets cumulative with a terminal +Inf, and a
// strict in-repo parser (ParseExposition) that the test suites of both
// daemons run against live scrapes. The text exposition is the only
// /metrics format (the transitional ?format=json document is gone).
//
// Every duration histogram shares one bucket ladder
// (LatencyBucketBoundsNs, 0.25µs..1s in 4x steps plus +Inf) so serve
// and gateway latencies are directly comparable — the ladder is
// defined exactly once, here.
//
// # Tracing
//
// A Trace carries a 128-bit ID minted at the edge or adopted from the
// X-Lam-Trace header (TraceHeader), so a gateway hop and the replica
// hop it proxies to join one logical trace. Spans (admission wait,
// coalesce queue, artifact load, predict, …) are recorded into the
// trace by the request path via context (WithTrace / StartSpan) and
// are cheap: one small append under the trace's own mutex, bounded by
// maxSpans. A Recorder keeps the most recent finished traces in a
// bounded ring served as JSON at GET /trace/recent, and logs the full
// span list of any trace slower than its Slow threshold through its
// slog.Logger — the "-trace-slow" flag of the daemons.
//
// All tracing entry points are nil-safe: a nil *Recorder mints nil
// *Trace values whose span methods no-op, so library code instruments
// unconditionally and embedders that want no tracing pay almost
// nothing.
//
// # Logging
//
// NewLogger builds the daemons' slog.Logger ("-log-format text|json").
// Request-scoped log lines carry trace_id, model and version so a log
// line, a metric series and a trace record can be joined on the same
// keys.
package telemetry

package telemetry

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"sync"
	"time"
)

// Record is one finished trace as stored in the Recorder's ring and
// served by GET /trace/recent.
type Record struct {
	TraceID      string    `json:"trace_id"`
	Name         string    `json:"name"`
	Model        string    `json:"model,omitempty"`
	Version      int       `json:"version,omitempty"`
	Start        time.Time `json:"start"`
	DurNs        int64     `json:"dur_ns"`
	Spans        []Span    `json:"spans"`
	SpansDropped int       `json:"spans_dropped,omitempty"`
}

// Recorder owns a process's finished traces: a bounded ring (newest
// wins) plus the slow-trace log hook. All methods are nil-safe so a
// daemon that opts out of tracing passes nil and the instrumented
// paths degrade to no-ops.
type Recorder struct {
	// Slow, when positive, logs the full span list of any trace whose
	// total duration meets or exceeds it (the -trace-slow flag).
	Slow time.Duration
	// Logger receives slow-trace reports; nil falls back to
	// slog.Default().
	Logger *slog.Logger

	mu   sync.Mutex
	ring []Record
	next int
	full bool
}

// NewRecorder returns a recorder keeping the last size finished
// traces (minimum 1).
func NewRecorder(size int) *Recorder {
	if size < 1 {
		size = 1
	}
	return &Recorder{ring: make([]Record, size)}
}

// Start mints a fresh trace. name labels the operation ("predict",
// "observe", "retrain"). Nil-safe: a nil recorder returns a nil trace.
func (r *Recorder) Start(name string) *Trace {
	if r == nil {
		return nil
	}
	return &Trace{id: NewTraceID(), name: name, start: time.Now()}
}

// StartFromHeader adopts the TraceHeader ID from an incoming request,
// minting a fresh one when the header is absent or malformed — the
// edge mints, interior hops join.
func (r *Recorder) StartFromHeader(h http.Header, name string) *Trace {
	if r == nil {
		return nil
	}
	t := &Trace{name: name, start: time.Now()}
	if id, ok := ParseTraceID(h.Get(TraceHeader)); ok {
		t.id = id
	} else {
		t.id = NewTraceID()
	}
	return t
}

// Finish completes the trace: stores it in the ring and, if the trace
// ran slower than Slow, logs its span tree.
func (r *Recorder) Finish(t *Trace) {
	if r == nil || t == nil {
		return
	}
	dur := time.Since(t.start)
	t.mu.Lock()
	rec := Record{
		TraceID:      t.id.String(),
		Name:         t.name,
		Model:        t.model,
		Version:      t.version,
		Start:        t.start,
		DurNs:        dur.Nanoseconds(),
		Spans:        append([]Span(nil), t.spans...),
		SpansDropped: t.dropped,
	}
	t.mu.Unlock()

	r.mu.Lock()
	r.ring[r.next] = rec
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()

	if r.Slow > 0 && dur >= r.Slow {
		lg := r.Logger
		if lg == nil {
			lg = slog.Default()
		}
		lg.Warn("slow trace",
			"trace_id", rec.TraceID,
			"op", rec.Name,
			"model", rec.Model,
			"version", rec.Version,
			"dur", dur,
			"spans", rec.Spans,
		)
	}
}

// Recent returns the stored traces newest-first.
func (r *Recorder) Recent() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.ring)
	}
	out := make([]Record, 0, n)
	// Walk backwards from the most recently written slot.
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.ring)
		}
		out = append(out, r.ring[idx])
	}
	return out
}

// Handler serves GET /trace/recent: {"traces":[...]}, newest first.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		recs := r.Recent()
		if recs == nil {
			recs = []Record{}
		}
		json.NewEncoder(w).Encode(map[string]any{"traces": recs})
	})
}

package xmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 10, 0},
		{10, 0, 10, 10},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClampInt(t *testing.T) {
	if got := ClampInt(5, 1, 3); got != 3 {
		t.Errorf("ClampInt(5,1,3) = %d, want 3", got)
	}
	if got := ClampInt(-5, 1, 3); got != 1 {
		t.Errorf("ClampInt(-5,1,3) = %d, want 1", got)
	}
	if got := ClampInt(2, 1, 3); got != 2 {
		t.Errorf("ClampInt(2,1,3) = %d, want 2", got)
	}
}

func TestLerpEndpoints(t *testing.T) {
	if got := Lerp(2, 8, 0); got != 2 {
		t.Errorf("Lerp(2,8,0) = %v, want 2", got)
	}
	if got := Lerp(2, 8, 1); got != 8 {
		t.Errorf("Lerp(2,8,1) = %v, want 8", got)
	}
	if got := Lerp(2, 8, 0.5); got != 5 {
		t.Errorf("Lerp(2,8,0.5) = %v, want 5", got)
	}
}

func TestInvLerpRoundTrip(t *testing.T) {
	f := func(a, b, tt float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(tt) {
			return true
		}
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		tt = math.Mod(tt, 1)
		if math.Abs(a-b) < 1e-9 {
			return true
		}
		v := Lerp(a, b, tt)
		got := InvLerp(a, b, v)
		return math.Abs(got-tt) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvLerpDegenerate(t *testing.T) {
	if got := InvLerp(3, 3, 7); got != 0 {
		t.Errorf("InvLerp(3,3,7) = %v, want 0", got)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v, want 5", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("P50 = %v, want 3", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("P25 = %v, want 2", got)
	}
	if got := Median([]float64{1, 2}); got != 1.5 {
		t.Errorf("Median = %v, want 1.5", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 90); got != 7 {
		t.Errorf("Percentile(single) = %v, want 7", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Errorf("MinMax(nil) = (%v, %v), want (0, 0)", lo, hi)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1, 2, 3}); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{10, 5, 2}, {11, 5, 3}, {1, 5, 1}, {5, 5, 1}, {0, 5, 0},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestNearlyEqual(t *testing.T) {
	if !NearlyEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("expected nearly equal")
	}
	if NearlyEqual(1.0, 1.1, 1e-3) {
		t.Error("expected not nearly equal")
	}
	if !NearlyEqual(0, 1e-12, 1e-9) {
		t.Error("expected nearly equal near zero")
	}
}

func TestHash64Deterministic(t *testing.T) {
	a := Hash64(1, 2, 3)
	b := Hash64(1, 2, 3)
	if a != b {
		t.Errorf("Hash64 not deterministic: %x vs %x", a, b)
	}
	if Hash64(1, 2, 3) == Hash64(3, 2, 1) {
		t.Error("Hash64 should be order sensitive")
	}
	if Hash64(1) == Hash64(2) {
		t.Error("Hash64 should differ for different inputs")
	}
}

func TestHashFloatRange(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		v := HashFloat(i)
		if v < 0 || v >= 1 {
			t.Fatalf("HashFloat(%d) = %v out of [0,1)", i, v)
		}
	}
}

func TestHashFloatUniformity(t *testing.T) {
	// Coarse uniformity check: 10 buckets over 100k draws, each bucket
	// should hold 10% +/- 1.5%.
	const n = 100000
	var buckets [10]int
	for i := uint64(0); i < n; i++ {
		buckets[int(HashFloat(i)*10)]++
	}
	for b, c := range buckets {
		frac := float64(c) / n
		if frac < 0.085 || frac > 0.115 {
			t.Errorf("bucket %d holds %.3f of mass, want ~0.1", b, frac)
		}
	}
}

func TestHashUnitRange(t *testing.T) {
	for i := uint64(0); i < 1000; i++ {
		v := HashUnit(i)
		if v < -1 || v >= 1 {
			t.Fatalf("HashUnit(%d) = %v out of [-1,1)", i, v)
		}
	}
}

func TestHashNormalMoments(t *testing.T) {
	const n = 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = HashNormal(uint64(i))
	}
	if m := Mean(xs); math.Abs(m) > 0.02 {
		t.Errorf("HashNormal mean = %v, want ~0", m)
	}
	if s := StdDev(xs); math.Abs(s-1) > 0.02 {
		t.Errorf("HashNormal stddev = %v, want ~1", s)
	}
}

func TestHashConfigSensitivity(t *testing.T) {
	x := []float64{1, 2, 3}
	a := HashConfig(7, x)
	if a != HashConfig(7, []float64{1, 2, 3}) {
		t.Error("HashConfig not deterministic")
	}
	if a == HashConfig(8, x) {
		t.Error("HashConfig should depend on seed")
	}
	if a == HashConfig(7, []float64{1, 2, 3.0000001}) {
		t.Error("HashConfig should depend on feature values")
	}
}

func TestPercentileMatchesSortedExtremes(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi := MinMax(xs)
		return Percentile(xs, 0) == lo && Percentile(xs, 100) == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package xmath

import "math"

// fnvOffset and fnvPrime are the FNV-1a 64-bit constants.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Hash64 combines the given 64-bit parts with FNV-1a byte-wise mixing
// followed by an avalanche finalizer (splitmix64). It is deterministic
// across platforms and Go versions, which makes every experiment in this
// repository bit-reproducible.
func Hash64(parts ...uint64) uint64 {
	h := fnvOffset
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			h ^= p & 0xff
			h *= fnvPrime
			p >>= 8
		}
	}
	// splitmix64 finalizer: FNV alone has weak high bits.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// HashFloat returns a deterministic uniform value in [0, 1) derived from
// the given parts.
func HashFloat(parts ...uint64) float64 {
	return float64(Hash64(parts...)>>11) / float64(1<<53)
}

// HashUnit returns a deterministic uniform value in [-1, 1) derived from
// the given parts.
func HashUnit(parts ...uint64) float64 {
	return 2*HashFloat(parts...) - 1
}

// HashNormal returns a deterministic sample from the standard normal
// distribution derived from the given parts, via the Box-Muller
// transform over two decorrelated hash streams.
func HashNormal(parts ...uint64) float64 {
	u1 := HashFloat(append([]uint64{0x9e3779b97f4a7c15}, parts...)...)
	u2 := HashFloat(append([]uint64{0xd1b54a32d192ed03}, parts...)...)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// F2U converts a float64 to its IEEE-754 bit pattern for hashing.
func F2U(f float64) uint64 {
	return math.Float64bits(f)
}

// HashConfig hashes a seed together with a feature vector. It is the
// canonical way the performance simulators attach deterministic noise to
// a configuration.
func HashConfig(seed uint64, x []float64) uint64 {
	parts := make([]uint64, 0, len(x)+1)
	parts = append(parts, seed)
	for _, v := range x {
		parts = append(parts, F2U(v))
	}
	return Hash64(parts...)
}

// Package xmath provides small numerical helpers shared across the
// repository: clamping, interpolation, streaming statistics, percentiles
// and deterministic configuration-hashed noise.
//
// Everything in this package is pure and allocation-light; the heavier
// numerical machinery (linear solvers, regression trees) lives in
// internal/ml.
package xmath

import (
	"math"
	"sort"
)

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt limits v to the closed interval [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates between a and b; t=0 yields a, t=1 yields b.
// t is not clamped.
func Lerp(a, b, t float64) float64 {
	return a + (b-a)*t
}

// InvLerp returns the parameter t such that Lerp(a, b, t) == v.
// It returns 0 when a == b.
func InvLerp(a, b, v float64) float64 {
	if a == b {
		return 0
	}
	return (v - a) / (b - a)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (divisor n), or 0 for
// fewer than one element. It uses the two-pass algorithm for stability.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using
// linear interpolation between closest ranks. xs need not be sorted.
// It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	p = Clamp(p, 0, 100)
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	return Lerp(s[lo], s[hi], rank-float64(lo))
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// MinMax returns the minimum and maximum of xs.
// It returns (0, 0) for an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// CeilDiv returns ceil(a/b) for positive integers.
func CeilDiv(a, b int) int {
	return (a + b - 1) / b
}

// NearlyEqual reports whether a and b agree to within a relative
// tolerance rel (or an absolute tolerance rel for values near zero).
func NearlyEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff <= rel
	}
	return diff <= rel*scale
}

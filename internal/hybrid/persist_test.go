package hybrid

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestHybridSaveLoadRoundTrip(t *testing.T) {
	full, am := syntheticWorkload(800, 31)
	rng := rand.New(rand.NewSource(1))
	train, test, _ := full.SampleFraction(0.1, rng)
	for _, cfg := range []Config{
		{Seed: 3},
		{Seed: 3, Mode: ResidualMode},
		{Seed: 3, Mode: RatioMode},
		{Seed: 3, Aggregate: true, AggregateWeight: 0.7},
	} {
		orig, err := Train(train, am, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf, am)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			a, err := orig.Predict(test.X[i])
			if err != nil {
				t.Fatal(err)
			}
			b, err := loaded.Predict(test.X[i])
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("cfg %+v sample %d: original %v, reloaded %v", cfg, i, a, b)
			}
		}
	}
}

func TestHybridLoadValidation(t *testing.T) {
	_, am := syntheticWorkload(10, 32)
	if _, err := Load(strings.NewReader("{}"), nil); err == nil {
		t.Error("expected error without analytical model")
	}
	if _, err := Load(strings.NewReader("not json"), am); err == nil {
		t.Error("expected decode error")
	}
	if _, err := Load(strings.NewReader(`{"n_features":0,"ml":{}}`), am); err == nil {
		t.Error("expected corrupt-features error")
	}
	if _, err := Load(strings.NewReader(`{"n_features":2,"ml":{"kind":"martian","data":{}}}`), am); err == nil {
		t.Error("expected ML decode error")
	}
}

func TestHybridSaveUntrained(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Model{}).Save(&buf); err == nil {
		t.Error("expected error saving untrained model")
	}
}

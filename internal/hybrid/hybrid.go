// Package hybrid implements the paper's contribution (Section VI): a
// performance predictor that couples an analytical model with a machine
// learning model through two ensemble devices.
//
//  1. Stacking: the analytical model's prediction is appended to every
//     feature vector and an ML regressor (extra trees by default) is
//     trained on the augmented features, letting it "learn and correct"
//     the analytical model.
//  2. Bagging-style aggregation (optional): the analytical and stacked
//     predictions are averaged, reducing variance when the analytical
//     model is representative of the code. The paper disables this when
//     the analytical model misses whole effects (Fig. 7: a serial AM
//     paired with a multithreaded code).
//
// Training follows Fig. 4 of the paper: the model is constructed once
// offline from a (small) training dataset and then queried many times.
package hybrid

import (
	"context"
	"errors"
	"fmt"

	"lam/internal/dataset"
	"lam/internal/lamerr"
	"lam/internal/ml"
	"lam/internal/parallel"
)

// AnalyticalModel scores a raw (unscaled) feature vector with a
// closed-form performance model. Implementations adapt the typed models
// in internal/analytical to each dataset's feature layout. Predict must
// be safe for concurrent use (the models in internal/analytical are
// pure functions of their machine description): batch scoring and the
// experiment sweeps call it from the worker pool.
type AnalyticalModel interface {
	Predict(x []float64) (float64, error)
}

// AnalyticalFunc adapts a plain function to AnalyticalModel.
type AnalyticalFunc func(x []float64) (float64, error)

// Predict implements AnalyticalModel.
func (f AnalyticalFunc) Predict(x []float64) (float64, error) { return f(x) }

// Mode selects how the ML component consumes the analytical prediction.
type Mode int

const (
	// StackMode appends the analytical prediction as an extra feature
	// (the paper's method).
	StackMode Mode = iota
	// ResidualMode trains the ML model on y − AM(x) and adds the AM
	// back at prediction time (the Didona et al. alternative; kept for
	// the ablation benches).
	ResidualMode
	// RatioMode trains the ML model on y / AM(x) and multiplies at
	// prediction time.
	RatioMode
)

func (m Mode) String() string {
	switch m {
	case StackMode:
		return "stack"
	case ResidualMode:
		return "residual"
	case RatioMode:
		return "ratio"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config tunes the hybrid model. The zero value reproduces the paper's
// setup: stacking with a standardising extra-trees pipeline and no
// aggregation.
type Config struct {
	// NewML constructs the untrained ML component; nil means a
	// StandardScaler + 100-tree extra-trees pipeline, the paper's
	// best-performing estimator.
	NewML func() ml.Regressor
	// Mode selects stacking (default), residual or ratio coupling.
	Mode Mode
	// Aggregate enables the bagging-style averaging of the analytical
	// and stacked predictions (paper Fig. 4, "optional").
	Aggregate bool
	// AggregateWeight is the weight of the stacked model in the
	// aggregate; 0 means 0.5 (the plain average of the two predictors).
	AggregateWeight float64
	// Seed drives the ML component's randomness.
	Seed int64
	// Workers bounds training and batch-prediction parallelism; values
	// <= 0 mean the process default. Predictions are bit-identical for
	// every worker count.
	Workers int
}

func (c Config) newML() ml.Regressor {
	if c.NewML != nil {
		return c.NewML()
	}
	et := ml.NewExtraTrees(100, c.Seed)
	et.Workers = c.Workers
	return &ml.Pipeline{Model: et}
}

// Model is a trained hybrid predictor.
type Model struct {
	cfg       Config
	am        AnalyticalModel
	mlModel   ml.Regressor
	nFeatures int
}

// Train builds a hybrid model from a training dataset and an analytical
// model, following the paper's training algorithm: score every training
// sample with the AM, augment (or transform) the features, fit the ML
// component.
func Train(train *dataset.Dataset, am AnalyticalModel, cfg Config) (*Model, error) {
	return TrainCtx(context.Background(), train, am, cfg)
}

// TrainCtx is Train with prompt cancellation: the context is checked
// between analytical-model scores and threaded into the ML component's
// fit, so a cancelled training run returns a typed error (wrapping
// lamerr.ErrCancelled and ctx.Err()) within one unit's duration.
func TrainCtx(ctx context.Context, train *dataset.Dataset, am AnalyticalModel, cfg Config) (*Model, error) {
	if am == nil {
		return nil, errors.New("hybrid: analytical model required")
	}
	if train == nil || train.Len() == 0 {
		return nil, errors.New("hybrid: empty training set")
	}
	if err := train.Validate(); err != nil {
		return nil, err
	}
	amPred := make([]float64, train.Len())
	if err := parallel.ForCtx(ctx, train.Len(), cfg.Workers, func(i int) error {
		p, err := am.Predict(train.X[i])
		if err != nil {
			return fmt.Errorf("hybrid: analytical model on training sample %d: %w", i, err)
		}
		amPred[i] = p
		return nil
	}); err != nil {
		return nil, err
	}

	m := &Model{cfg: cfg, am: am, nFeatures: train.NumFeatures()}
	mlModel := cfg.newML()
	switch cfg.Mode {
	case StackMode:
		aug, err := train.WithFeature("__analytical", amPred)
		if err != nil {
			return nil, err
		}
		if err := ml.FitCtx(ctx, mlModel, aug.X, aug.Y); err != nil {
			return nil, err
		}
	case ResidualMode:
		res := make([]float64, train.Len())
		for i := range res {
			res[i] = train.Y[i] - amPred[i]
		}
		if err := ml.FitCtx(ctx, mlModel, train.X, res); err != nil {
			return nil, err
		}
	case RatioMode:
		ratio := make([]float64, train.Len())
		for i := range ratio {
			if amPred[i] == 0 {
				return nil, fmt.Errorf("hybrid: ratio mode with zero analytical prediction at sample %d", i)
			}
			ratio[i] = train.Y[i] / amPred[i]
		}
		if err := ml.FitCtx(ctx, mlModel, train.X, ratio); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("hybrid: unknown mode %v", cfg.Mode)
	}
	m.mlModel = mlModel
	return m, nil
}

// NumFeatures returns the feature arity the model was trained on (the
// raw vector, without the stacked analytical feature).
func (m *Model) NumFeatures() int { return m.nFeatures }

// Config returns the coupling configuration the model was trained (or
// loaded) with. The online retrainer uses it to rebuild a drifted
// model with the same mode/aggregation as the deployed artifact —
// persistence stores these fields, so a registry-loaded model
// round-trips its coupling exactly. NewML is not persisted; a zero
// NewML retrains with the default extra-trees pipeline.
func (m *Model) Config() Config { return m.cfg }

// IsFitted reports whether the model carries a trained ML component.
func (m *Model) IsFitted() bool { return m != nil && m.mlModel != nil }

// SetLayout switches the ML component's compiled tree plane to the
// given traversal layout (see ml.Layout). Not concurrency-safe: apply
// right after Train/load, before the model is shared.
func (m *Model) SetLayout(l ml.Layout) error {
	if !m.IsFitted() {
		return fmt.Errorf("hybrid: %w", lamerr.ErrNotFitted)
	}
	return ml.SetLayoutOf(m.mlModel, l)
}

// Quantize returns a new hybrid model whose ML component is replaced by
// a frozen bits-wide quantized table (see ml.Quantize); the analytical
// model and coupling configuration are shared. The source model is not
// modified. Quantization is approximate — publish the result as a new
// artifact version, never over the exact model.
func (m *Model) Quantize(bits int) (*Model, error) {
	if !m.IsFitted() {
		return nil, fmt.Errorf("hybrid: %w", lamerr.ErrNotFitted)
	}
	qml, err := ml.Quantize(m.mlModel, bits)
	if err != nil {
		return nil, fmt.Errorf("hybrid: %w", err)
	}
	return &Model{cfg: m.cfg, am: m.am, mlModel: qml, nFeatures: m.nFeatures}, nil
}

// Predict scores one feature vector: run the AM, couple it with the ML
// component per the mode, optionally aggregate.
func (m *Model) Predict(x []float64) (float64, error) {
	if !m.IsFitted() {
		return 0, fmt.Errorf("hybrid: %w", lamerr.ErrNotFitted)
	}
	if len(x) != m.nFeatures {
		return 0, fmt.Errorf("hybrid: %w: predict got %d features, want %d",
			lamerr.ErrDimension, len(x), m.nFeatures)
	}
	amP, err := m.am.Predict(x)
	if err != nil {
		return 0, fmt.Errorf("hybrid: analytical model: %w", err)
	}
	var stacked float64
	switch m.cfg.Mode {
	case StackMode:
		// The augmented vector lives in pooled scratch: the serve hot
		// path calls Predict per row and must not allocate per row.
		buf := ml.GetScratch(len(x) + 1)
		aug := *buf
		copy(aug, x)
		aug[len(x)] = amP
		stacked = m.mlModel.Predict(aug)
		ml.PutScratch(buf)
	case ResidualMode:
		stacked = amP + m.mlModel.Predict(x)
	case RatioMode:
		stacked = amP * m.mlModel.Predict(x)
	}
	if !m.cfg.Aggregate {
		return stacked, nil
	}
	w := m.cfg.AggregateWeight
	if w == 0 {
		w = 0.5
	}
	return w*stacked + (1-w)*amP, nil
}

// PredictCtx is Predict with an up-front cancellation check — single
// scores are microsecond-scale, so no mid-prediction check is needed.
func (m *Model) PredictCtx(ctx context.Context, x []float64) (float64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, parallel.Cancelled(err)
		}
	}
	return m.Predict(x)
}

// PredictBatch scores every row of a dataset on the worker pool; rows
// are written by index, so the output is bit-identical for every
// worker count.
func (m *Model) PredictBatch(ds *dataset.Dataset) ([]float64, error) {
	return m.PredictBatchCtx(context.Background(), ds.X)
}

// PredictBatchCtx scores every row of X on the worker pool with prompt
// cancellation between rows. Rows are written by index, so the output
// is bit-identical for every worker count — and identical to len(X)
// sequential Predict calls, which is what lets the serving layer in
// internal/serve answer requests bit-identical to library calls.
func (m *Model) PredictBatchCtx(ctx context.Context, X [][]float64) ([]float64, error) {
	out := make([]float64, len(X))
	if err := m.PredictBatchIntoCtx(ctx, X, out); err != nil {
		return nil, err
	}
	return out, nil
}

// intoBlock is the row count between context polls on the sequential
// Into path.
const intoBlock = 256

// PredictBatchIntoCtx scores every row of X into out (which must have
// len(X) elements) with prompt cancellation between rows: the
// allocation-free serving path behind registry batch prediction and
// lam-serve. With Workers == 1 the loop runs inline and — given an
// allocation-free analytical model — performs zero steady-state
// allocations per row: the stacked feature vector and the ML
// pipeline's scaled row both come from pooled scratch.
func (m *Model) PredictBatchIntoCtx(ctx context.Context, X [][]float64, out []float64) error {
	if !m.IsFitted() {
		return fmt.Errorf("hybrid: %w", lamerr.ErrNotFitted)
	}
	if len(out) != len(X) {
		return fmt.Errorf("hybrid: %w: output slice holds %d values for %d rows",
			lamerr.ErrDimension, len(out), len(X))
	}
	// The sequential branch mirrors ml.PredictBatchIntoCtx's inline
	// block loop rather than sharing a helper: a closure-taking helper
	// would cost one heap allocation per call, breaking the hard
	// zero-allocation assertions the serve tests make on this path.
	if parallel.Resolve(m.cfg.Workers, len(X)) == 1 {
		if ctx == nil || ctx.Done() == nil {
			for i, x := range X {
				p, err := m.Predict(x)
				if err != nil {
					return err
				}
				out[i] = p
			}
			return nil
		}
		if err := ctx.Err(); err != nil {
			return parallel.Cancelled(err)
		}
		done := ctx.Done()
		for lo := 0; lo < len(X); lo += intoBlock {
			select {
			case <-done:
				return parallel.Cancelled(ctx.Err())
			default:
			}
			hi := lo + intoBlock
			if hi > len(X) {
				hi = len(X)
			}
			for i := lo; i < hi; i++ {
				p, err := m.Predict(X[i])
				if err != nil {
					return err
				}
				out[i] = p
			}
		}
		return nil
	}
	return parallel.ForCtx(ctx, len(X), m.cfg.Workers, func(i int) error {
		p, err := m.Predict(X[i])
		if err != nil {
			return err
		}
		out[i] = p
		return nil
	})
}

// MAPE evaluates the trained model on a held-out dataset and returns
// the paper's headline metric.
func (m *Model) MAPE(test *dataset.Dataset) (float64, error) {
	return m.MAPECtx(context.Background(), test)
}

// MAPECtx is MAPE with prompt cancellation between test rows. The
// prediction buffer is pooled, so repeated sweep evaluations do not
// allocate per call.
func (m *Model) MAPECtx(ctx context.Context, test *dataset.Dataset) (float64, error) {
	buf := ml.GetScratch(test.Len())
	defer ml.PutScratch(buf)
	if err := m.PredictBatchIntoCtx(ctx, test.X, *buf); err != nil {
		return 0, err
	}
	return ml.MAPE(test.Y, *buf), nil
}

// AnalyticalMAPE scores the analytical model alone on a dataset — the
// paper quotes these untuned baselines (42% for blocked stencil, 84.5%
// for FMM).
func AnalyticalMAPE(ds *dataset.Dataset, am AnalyticalModel) (float64, error) {
	return AnalyticalMAPECtx(context.Background(), ds, am)
}

// AnalyticalMAPECtx is AnalyticalMAPE with prompt cancellation between
// rows; the prediction buffer is pooled.
func AnalyticalMAPECtx(ctx context.Context, ds *dataset.Dataset, am AnalyticalModel) (float64, error) {
	buf := ml.GetScratch(ds.Len())
	defer ml.PutScratch(buf)
	pred := *buf
	err := parallel.ForCtx(ctx, ds.Len(), 0, func(i int) error {
		p, err := am.Predict(ds.X[i])
		if err != nil {
			return err
		}
		pred[i] = p
		return nil
	})
	if err != nil {
		return 0, err
	}
	return ml.MAPE(ds.Y, pred), nil
}

package hybrid

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"lam/internal/ml"
)

// Persistence for trained hybrid models. The analytical model is a
// closed-form function and is not serialised — Load takes it as an
// argument (it is reconstructed from the machine description, exactly
// as at training time). The fitted ML component and coupling
// configuration are stored.

type modelDTO struct {
	Mode            Mode            `json:"mode"`
	Aggregate       bool            `json:"aggregate"`
	AggregateWeight float64         `json:"aggregate_weight"`
	NFeatures       int             `json:"n_features"`
	ML              json.RawMessage `json:"ml"`
}

// Save serialises the trained hybrid model. The ML component must be
// one of the types internal/ml can persist (the default extra-trees
// pipeline is).
func (m *Model) Save(w io.Writer) error {
	if m.mlModel == nil {
		return fmt.Errorf("hybrid: cannot save untrained model")
	}
	var mlBuf bytes.Buffer
	if err := ml.SaveModel(&mlBuf, m.mlModel); err != nil {
		return fmt.Errorf("hybrid: saving ML component: %w", err)
	}
	dto := modelDTO{
		Mode:            m.cfg.Mode,
		Aggregate:       m.cfg.Aggregate,
		AggregateWeight: m.cfg.AggregateWeight,
		NFeatures:       m.nFeatures,
		ML:              json.RawMessage(mlBuf.Bytes()),
	}
	return json.NewEncoder(w).Encode(dto)
}

// Load restores a hybrid model saved with Save, reattaching the
// analytical model.
func Load(r io.Reader, am AnalyticalModel) (*Model, error) {
	if am == nil {
		return nil, fmt.Errorf("hybrid: Load requires the analytical model")
	}
	var dto modelDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("hybrid: decoding model: %w", err)
	}
	if dto.NFeatures <= 0 {
		return nil, fmt.Errorf("hybrid: corrupt model: %d features", dto.NFeatures)
	}
	mlModel, err := ml.LoadModel(bytes.NewReader(dto.ML))
	if err != nil {
		return nil, fmt.Errorf("hybrid: loading ML component: %w", err)
	}
	return &Model{
		cfg: Config{
			Mode:            dto.Mode,
			Aggregate:       dto.Aggregate,
			AggregateWeight: dto.AggregateWeight,
		},
		am:        am,
		mlModel:   mlModel,
		nFeatures: dto.NFeatures,
	}, nil
}

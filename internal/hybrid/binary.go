package hybrid

import (
	"encoding/binary"
	"fmt"
	"math"

	"lam/internal/lamerr"
	"lam/internal/ml"
)

// Binary persistence: the lamb1 payload encoding of a hybrid model,
// mirroring Save/Load exactly — the coupling configuration and the
// fitted ML component are stored, the analytical model is reattached by
// the caller. The body is a fixed 32-byte header (mode, aggregate flag,
// aggregate weight, feature arity — all 8-byte little-endian words, so
// the nested ML section stays 8-byte aligned) followed by the ML
// component in internal/ml's binary encoding.

// ML returns the fitted ML component (nil before training). The
// artifact layer uses it for structural introspection (lam-model info);
// treat it as read-only.
func (m *Model) ML() ml.Regressor { return m.mlModel }

// AppendBinary appends the binary encoding of a trained hybrid model to
// buf and returns the extended slice.
func AppendBinary(buf []byte, m *Model) ([]byte, error) {
	if m == nil || m.mlModel == nil {
		return nil, fmt.Errorf("hybrid: cannot save untrained model")
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(m.cfg.Mode)))
	var agg uint64
	if m.cfg.Aggregate {
		agg = 1
	}
	buf = binary.LittleEndian.AppendUint64(buf, agg)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.cfg.AggregateWeight))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.nFeatures))
	out, err := ml.AppendBinary(buf, m.mlModel)
	if err != nil {
		return nil, fmt.Errorf("hybrid: saving ML component: %w", err)
	}
	return out, nil
}

// DecodeBinary restores a hybrid model encoded by AppendBinary,
// reattaching the analytical model, and consumes the whole input.
// Corruption (short header, trailing bytes, a mangled ML section) wraps
// lamerr.ErrCorruptArtifact.
func DecodeBinary(data []byte, am AnalyticalModel) (*Model, error) {
	return DecodeBinaryVersion(data, am, ml.BinaryVersionLatest)
}

// DecodeBinaryVersion is DecodeBinary for an explicit ML payload
// version — the artifact layer passes the lamb1 header version down so
// version-1 artifacts (whose tree bodies still carry explicit left
// arrays) keep decoding forever.
func DecodeBinaryVersion(data []byte, am AnalyticalModel, version int) (*Model, error) {
	if am == nil {
		return nil, fmt.Errorf("hybrid: DecodeBinary requires the analytical model")
	}
	if len(data) < 32 {
		return nil, fmt.Errorf("hybrid: %w: short payload: %d bytes for a 32-byte header",
			lamerr.ErrCorruptArtifact, len(data))
	}
	mode := Mode(int64(binary.LittleEndian.Uint64(data[0:8])))
	aggregate := binary.LittleEndian.Uint64(data[8:16]) != 0
	weight := math.Float64frombits(binary.LittleEndian.Uint64(data[16:24]))
	nFeatures := int(int64(binary.LittleEndian.Uint64(data[24:32])))
	if nFeatures <= 0 {
		return nil, fmt.Errorf("hybrid: %w: %d features", lamerr.ErrCorruptArtifact, nFeatures)
	}
	mlModel, consumed, err := ml.DecodeBinaryPrefixVersion(data[32:], version)
	if err != nil {
		return nil, fmt.Errorf("hybrid: loading ML component: %w", err)
	}
	if rest := len(data) - 32 - consumed; rest != 0 {
		return nil, fmt.Errorf("hybrid: %w: %d trailing bytes after ML component",
			lamerr.ErrCorruptArtifact, rest)
	}
	return &Model{
		cfg: Config{
			Mode:            mode,
			Aggregate:       aggregate,
			AggregateWeight: weight,
		},
		am:        am,
		mlModel:   mlModel,
		nFeatures: nFeatures,
	}, nil
}

package hybrid

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"lam/internal/dataset"
	"lam/internal/ml"
)

// syntheticWorkload builds a dataset whose truth is a noisy, warped
// version of a known "analytical model": y = am(x) · warp(x) + effects
// the AM does not see. This mirrors the paper's setting.
func syntheticWorkload(n int, seed int64) (*dataset.Dataset, AnalyticalModel) {
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.New("a", "b", "c")
	am := AnalyticalFunc(func(x []float64) (float64, error) {
		// A rough model: ignores feature c entirely.
		return 1 + 2*x[0] + x[1]*x[1], nil
	})
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 4, rng.Float64() * 3, rng.Float64()}
		base, _ := am.Predict(x)
		// Truth: calibration off by 1.7x, plus an effect on c the AM
		// misses, plus mild noise.
		y := 1.7*base*(1+0.5*x[2]) + 0.02*rng.NormFloat64()
		ds.MustAdd(x, y)
	}
	return ds, am
}

func TestHybridBeatsPureMLOnSmallTrainingSets(t *testing.T) {
	full, am := syntheticWorkload(2000, 1)
	rng := rand.New(rand.NewSource(7))
	train, test, err := full.SampleFraction(0.02, rng) // 40 samples
	if err != nil {
		t.Fatal(err)
	}

	hy, err := Train(train, am, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hyMAPE, err := hy.MAPE(test)
	if err != nil {
		t.Fatal(err)
	}

	pure := &ml.Pipeline{Model: ml.NewExtraTrees(100, 3)}
	if err := pure.Fit(train.X, train.Y); err != nil {
		t.Fatal(err)
	}
	pureMAPE := ml.MAPE(test.Y, ml.PredictBatch(pure, test.X))

	t.Logf("hybrid MAPE = %.2f%%, pure ML MAPE = %.2f%%", hyMAPE, pureMAPE)
	if hyMAPE >= pureMAPE {
		t.Errorf("hybrid (%.2f%%) should beat pure ML (%.2f%%) at 2%% training", hyMAPE, pureMAPE)
	}
}

func TestHybridLearnsCalibration(t *testing.T) {
	// Even though the AM is off by a large factor, the stacked model
	// must land close to the truth with a decent training set.
	full, am := syntheticWorkload(2000, 2)
	rng := rand.New(rand.NewSource(8))
	train, test, _ := full.SampleFraction(0.2, rng)
	amMAPE, err := AnalyticalMAPE(test, am)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := Train(train, am, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hyMAPE, _ := hy.MAPE(test)
	t.Logf("AM MAPE = %.1f%%, hybrid MAPE = %.2f%%", amMAPE, hyMAPE)
	if amMAPE < 30 {
		t.Fatalf("test setup broken: AM should be badly calibrated, got %.1f%%", amMAPE)
	}
	if hyMAPE > amMAPE/4 {
		t.Errorf("hybrid (%.2f%%) should cut the AM error (%.1f%%) at least 4x", hyMAPE, amMAPE)
	}
}

func TestHybridModes(t *testing.T) {
	full, am := syntheticWorkload(1500, 3)
	rng := rand.New(rand.NewSource(9))
	train, test, _ := full.SampleFraction(0.1, rng)
	for _, mode := range []Mode{StackMode, ResidualMode, RatioMode} {
		hy, err := Train(train, am, Config{Mode: mode, Seed: 3})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		mape, err := hy.MAPE(test)
		if err != nil {
			t.Fatal(err)
		}
		if mape > 40 {
			t.Errorf("mode %v MAPE = %.2f%%, want < 40%%", mode, mape)
		}
	}
}

func TestHybridAggregation(t *testing.T) {
	// With Aggregate the prediction is pulled toward the AM: build a
	// case where stacked and AM differ and check the blend.
	ds := dataset.New("x")
	for i := 1; i <= 20; i++ {
		ds.MustAdd([]float64{float64(i)}, float64(2*i)) // truth 2x
	}
	am := AnalyticalFunc(func(x []float64) (float64, error) { return x[0], nil }) // AM = x
	plain, err := Train(ds, am, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Train(ds, am, Config{Seed: 1, Aggregate: true})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{10}
	ps, _ := plain.Predict(x)
	pa, _ := agg.Predict(x)
	amP, _ := am.Predict(x)
	want := 0.5*ps + 0.5*amP
	if math.Abs(pa-want) > 1e-9 {
		t.Errorf("aggregate prediction %v, want %v", pa, want)
	}
	wagg, err := Train(ds, am, Config{Seed: 1, Aggregate: true, AggregateWeight: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	pw, _ := wagg.Predict(x)
	want = 0.9*ps + 0.1*amP
	if math.Abs(pw-want) > 1e-9 {
		t.Errorf("weighted aggregate %v, want %v", pw, want)
	}
}

func TestHybridModeStrings(t *testing.T) {
	if StackMode.String() != "stack" || ResidualMode.String() != "residual" || RatioMode.String() != "ratio" {
		t.Error("mode strings wrong")
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode should still format")
	}
}

func TestTrainValidation(t *testing.T) {
	ds, am := syntheticWorkload(10, 4)
	if _, err := Train(nil, am, Config{}); err == nil {
		t.Error("expected error for nil dataset")
	}
	if _, err := Train(dataset.New("x"), am, Config{}); err == nil {
		t.Error("expected error for empty dataset")
	}
	if _, err := Train(ds, nil, Config{}); err == nil {
		t.Error("expected error for nil analytical model")
	}
	if _, err := Train(ds, am, Config{Mode: Mode(42)}); err == nil {
		t.Error("expected error for unknown mode")
	}
}

func TestTrainPropagatesAMErrors(t *testing.T) {
	ds, _ := syntheticWorkload(10, 5)
	bad := AnalyticalFunc(func(x []float64) (float64, error) { return 0, errors.New("boom") })
	if _, err := Train(ds, bad, Config{}); err == nil {
		t.Error("expected AM error to propagate from Train")
	}
}

func TestRatioModeRejectsZeroAM(t *testing.T) {
	ds := dataset.New("x")
	ds.MustAdd([]float64{1}, 2)
	zero := AnalyticalFunc(func(x []float64) (float64, error) { return 0, nil })
	if _, err := Train(ds, zero, Config{Mode: RatioMode}); err == nil {
		t.Error("expected zero-AM error in ratio mode")
	}
}

func TestPredictArityChecked(t *testing.T) {
	ds, am := syntheticWorkload(50, 6)
	hy, err := Train(ds, am, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hy.Predict([]float64{1}); err == nil {
		t.Error("expected arity error")
	}
}

func TestAnalyticalMAPEPerfectModel(t *testing.T) {
	ds := dataset.New("x")
	for i := 1; i <= 10; i++ {
		ds.MustAdd([]float64{float64(i)}, float64(i)*3)
	}
	am := AnalyticalFunc(func(x []float64) (float64, error) { return 3 * x[0], nil })
	got, err := AnalyticalMAPE(ds, am)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("perfect AM MAPE = %v, want 0", got)
	}
}

func TestCustomMLComponent(t *testing.T) {
	ds, am := syntheticWorkload(300, 7)
	hy, err := Train(ds, am, Config{
		NewML: func() ml.Regressor { return &ml.LinearRegression{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	mape, err := hy.MAPE(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Linear meta over (x, am) on this near-multiplicative surface is
	// rough but must be sane.
	if mape > 60 {
		t.Errorf("linear-ML hybrid MAPE = %.1f%%, want < 60%%", mape)
	}
}

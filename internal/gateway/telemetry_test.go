package gateway

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lam/internal/registry"
	"lam/internal/serve"
	"lam/internal/telemetry"
)

// newTracedReplica builds a warmed replica with admission control and
// coalescing on, so a proxied single-row request produces the full
// span set (admission, coalesce, predict).
func newTracedReplica(t *testing.T, dir string, names []string) (*serve.Server, *httptest.Server) {
	t.Helper()
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(reg)
	s.Coalesce = serve.CoalesceConfig{MaxBatch: 2, MaxDelay: time.Millisecond}
	s.Admit = serve.AdmitConfig{MaxInflight: 8, Queue: 8}
	s.WarmNames = names
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	return s, ts
}

// TestGatewayTraceJoin is the tracing acceptance check: one request
// through the gateway yields a single trace ID minted at the gateway,
// echoed to the client, and adopted by the replica — with the
// gateway's routing spans and the replica's serving spans recorded
// against the same ID, at least five spans in total.
func TestGatewayTraceJoin(t *testing.T) {
	names := []string{"m0"}
	dir, X := newFleetRegistry(t, names)
	s1, r1 := newTracedReplica(t, dir, names)
	s2, r2 := newTracedReplica(t, dir, names)

	g, err := New([]string{r1.URL, r2.URL}, Config{Health: fastHealth})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	body, _ := json.Marshal(map[string]any{"model": "m0", "x": X[0]})
	resp, out := postJSON(t, gw.URL+"/predict", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict through gateway: %d (%s)", resp.StatusCode, out)
	}
	id := resp.Header.Get(telemetry.TraceHeader)
	if _, ok := telemetry.ParseTraceID(id); !ok {
		t.Fatalf("gateway response carries no valid trace ID, got %q", id)
	}

	spanNames := func(recs []telemetry.Record) []string {
		var names []string
		for _, rec := range recs {
			if rec.TraceID != id {
				continue
			}
			for _, sp := range rec.Spans {
				names = append(names, sp.Name)
			}
		}
		return names
	}
	gwSpans := spanNames(g.Tracer.Recent())
	for _, want := range []string{"route", "proxy"} {
		if !contains(gwSpans, want) {
			t.Errorf("gateway trace %s is missing span %q (has %v)", id, want, gwSpans)
		}
	}
	// Exactly one replica served the request; its ring must hold the
	// gateway-minted ID with the serving spans.
	replicaSpans := spanNames(s1.Tracer.Recent())
	if len(replicaSpans) == 0 {
		replicaSpans = spanNames(s2.Tracer.Recent())
	}
	for _, want := range []string{"admission", "coalesce", "predict"} {
		if !contains(replicaSpans, want) {
			t.Errorf("replica trace %s is missing span %q (has %v)", id, want, replicaSpans)
		}
	}
	if total := len(gwSpans) + len(replicaSpans); total < 5 {
		t.Errorf("trace %s spans %d in total (gateway %v + replica %v), want >= 5",
			id, total, gwSpans, replicaSpans)
	}

	// The gateway's /trace/recent endpoint serves the same record.
	r, err := http.Get(gw.URL + "/trace/recent")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var doc struct {
		Traces []telemetry.Record `json:"traces"`
	}
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rec := range doc.Traces {
		if rec.TraceID == id {
			found = true
			if rec.Model != "m0" {
				t.Errorf("trace %s records model %q, want m0", id, rec.Model)
			}
		}
	}
	if !found {
		t.Errorf("/trace/recent does not list trace %s", id)
	}
}

func contains(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

// TestGatewayMetricsExposition scrapes the gateway's /metrics under
// concurrent proxied load, strict-parses every scrape, and checks the
// backend-labeled families.
func TestGatewayMetricsExposition(t *testing.T) {
	names := []string{"m0", "m1"}
	dir, X := newFleetRegistry(t, names)
	_, _, r1 := newReplica(t, dir, names, serve.CoalesceConfig{})
	_, _, r2 := newReplica(t, dir, names, serve.CoalesceConfig{})

	g, err := New([]string{r1.URL, r2.URL}, Config{Health: fastHealth})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				body, _ := json.Marshal(map[string]any{"model": names[i%len(names)], "x": X[0]})
				resp, out := postJSON(t, gw.URL+"/predict", body)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("predict: %d (%s)", resp.StatusCode, out)
					return
				}
			}
		}(w)
	}
	// Scrape concurrently with the load: every intermediate document
	// must already be a valid exposition.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := scrape(t, gw.URL); err != nil {
				t.Errorf("scrape %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()

	exp, err := scrape(t, gw.URL)
	if err != nil {
		t.Fatal(err)
	}
	fam := exp.Family("lam_gateway_predict_requests_total")
	if fam == nil || len(fam.Samples) == 0 || fam.Samples[0].Value < 64 {
		t.Fatalf("lam_gateway_predict_requests_total missing or low: %+v", fam)
	}
	breq := exp.Family("lam_gateway_backend_requests_total")
	if breq == nil {
		t.Fatal("no lam_gateway_backend_requests_total family")
	}
	urls := map[string]bool{}
	for _, s := range breq.Samples {
		if v, ok := s.Label("backend"); ok {
			urls[v] = true
		}
	}
	if !urls[r1.URL] || !urls[r2.URL] {
		t.Fatalf("backend label values %v do not cover both replicas (%s, %s)", urls, r1.URL, r2.URL)
	}
	up := exp.Family("lam_gateway_backend_up")
	if up == nil || len(up.Samples) != 2 {
		t.Fatalf("lam_gateway_backend_up samples: %+v", up)
	}
	for _, s := range up.Samples {
		if s.Value != 1 {
			u, _ := s.Label("backend")
			t.Errorf("backend %s reported down during healthy-fleet test", u)
		}
	}
	if h := exp.Family("lam_gateway_route_latency_seconds"); h == nil || h.Type != "histogram" {
		t.Fatalf("route latency histogram missing: %+v", h)
	}
}

// scrape fetches and strict-parses one Prometheus exposition.
func scrape(t *testing.T, base string) (*telemetry.Exposition, error) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return telemetry.ParseExposition(string(raw))
}

// Package gateway is the horizontal scale-out plane behind
// cmd/lam-gateway: an HTTP reverse proxy that fronts a fleet of
// lam-serve replicas sharing one model registry, multiplying the
// single-core serving capacity measured in BENCH_PR5.json while
// preserving the properties the single-node planes rely on.
//
// # Routing
//
// Requests that address a model (POST /predict, POST /observe) are
// routed by consistent hashing on the model name: a static ring of
// virtual nodes (ring.go) maps each model to a primary replica and a
// deterministic spill-over sequence through the rest of the fleet.
// Affinity is the point — the replicas' micro-batch coalescers
// (internal/serve) only reach dense flushes when one model's
// single-row traffic lands on one replica, and per-model observation
// windows (internal/online) only see a coherent stream the same way.
// A bounded-load check (Config.BoundFactor, the consistent-hashing-
// with-bounded-loads rule) rotates a request off its primary while
// that replica's in-flight count exceeds BoundFactor × the fleet mean,
// so one hot model cannot melt one replica while the rest idle.
//
// # Health
//
// Every backend is probed at GET /readyz on an interval (health.go).
// EjectAfter consecutive failures — active probe failures and passive
// per-request connection failures share one counter — eject the
// backend: it receives no client traffic but probes continue. The
// first probe success moves it half-open; ReadmitAfter consecutive
// successes re-admit it. The ring never changes, so a recovered
// replica gets exactly its old models back.
//
// # Retry and spill-over
//
// A request that hits a connection failure or a 429 is retried on the
// next ring candidate, within a total budget of Config.MaxAttempts.
// 429s set a Retry-After cooldown that deprioritizes the shedding
// replica for subsequent routing decisions, and a 429 that survives
// the attempt budget is forwarded to the client with its Retry-After
// intact. /predict is idempotent and retries after any transport
// failure; /observe mutates the online plane's windows, so it is
// retried only on dial errors (the request provably never reached a
// backend) or 429s (the backend shed before processing) — an
// observation is never ingested twice.
//
// Responses stream through unchanged, so a proxied prediction is
// byte-identical to the direct replica call. GET /models aggregates
// the fleet (union by name and version), GET /healthz summarizes
// per-backend liveness, and GET /metrics exports per-backend counters
// (requests, retries, failures, 429s, ejections, in-flight) plus a
// routing-decision latency histogram (metrics.go).
package gateway

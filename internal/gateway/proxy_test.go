package gateway

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// slowHealth keeps the active prober out of a test's way: policy
// assertions must see the request path's behavior, not a probe racing
// it to an ejection or re-admission.
var slowHealth = HealthConfig{
	Interval:     time.Hour,
	Timeout:      time.Second,
	EjectAfter:   3,
	ReadmitAfter: 2,
}

// stubBackend is a minimal fake replica: always-ready /readyz plus a
// scripted /predict + /observe behavior.
func stubBackend(t *testing.T, handle http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /predict", handle)
	mux.HandleFunc("POST /observe", handle)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// modelWithPrimary finds a model name the ring routes to the given
// backend index first — the deterministic way to exercise one specific
// spill path despite the httptest servers' random ports.
func modelWithPrimary(t *testing.T, g *Gateway, idx int) string {
	t.Helper()
	var buf [maxBackends]int
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("probe-model-%d", i)
		if g.ring.candidates(name, buf[:])[0] == idx {
			return name
		}
	}
	t.Fatal("no model name hashed to the wanted primary in 1000 tries")
	return ""
}

// TestSpillOver429 drives a request whose primary always sheds: the
// gateway must answer from the next ring candidate, record the spill,
// and honor the shedding replica's Retry-After as a routing cooldown.
func TestSpillOver429(t *testing.T) {
	shedder := stubBackend(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"overloaded"}`)
	})
	answer := []byte(`{"model":"x","version":1,"y":42}` + "\n")
	server := stubBackend(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(answer)
	})

	g, err := New([]string{shedder.URL, server.URL}, Config{Health: slowHealth})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	model := modelWithPrimary(t, g, 0) // primary = the shedder
	body := []byte(fmt.Sprintf(`{"model":%q,"x":[1,2,3]}`, model))

	resp, got := postJSON(t, gw.URL+"/predict", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, answer) {
		t.Fatalf("spilled answer diverged: %q", got)
	}
	if got := g.Metrics.Spilled429.Load(); got != 1 {
		t.Fatalf("spilled_429 = %d, want 1", got)
	}
	if got := g.backends[0].metrics.Shed429.Load(); got != 1 {
		t.Fatalf("shedder shed_429 = %d, want 1", got)
	}

	// The Retry-After cooldown deprioritizes the shedder: an immediate
	// second request goes straight to the healthy candidate.
	before := g.backends[0].metrics.Requests.Load()
	resp, got = postJSON(t, gw.URL+"/predict", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second request status %d: %s", resp.StatusCode, got)
	}
	if after := g.backends[0].metrics.Requests.Load(); after != before {
		t.Fatalf("cooldown ignored: shedder received %d more request(s)", after-before)
	}
}

// TestAllShed429Forwarded: when every candidate sheds, the client gets
// the 429 — with Retry-After intact — not a gateway error.
func TestAllShed429Forwarded(t *testing.T) {
	mk := func() *httptest.Server {
		return stubBackend(t, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"overloaded"}`)
		})
	}
	s1, s2 := mk(), mk()
	g, err := New([]string{s1.URL, s2.URL}, Config{Health: slowHealth})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	resp, _ := postJSON(t, gw.URL+"/predict", []byte(`{"model":"m","x":[1]}`))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After %q, want 2", ra)
	}
}

// TestObserveRetryPolicy: /observe retries when the request provably
// never reached a backend (dial error) but never after bytes were
// written to a live connection.
func TestObserveRetryPolicy(t *testing.T) {
	// Case 1: dead primary (connection refused — a dial error) → the
	// observation is retried and succeeds on the survivor.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // the port now refuses connections
	var observed int
	alive := stubBackend(t, func(w http.ResponseWriter, r *http.Request) {
		observed++
		_, _ = io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ingested":1}`)
	})
	g, err := New([]string{deadURL, alive.URL}, Config{Health: slowHealth})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	model := modelWithPrimary(t, g, 0) // primary = the dead one
	body := []byte(fmt.Sprintf(`{"model":%q,"x":[1,2,3],"y":0.5}`, model))
	resp, got := postJSON(t, gw.URL+"/observe", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe via dead primary: status %d: %s", resp.StatusCode, got)
	}
	if observed != 1 {
		t.Fatalf("observation ingested %d times, want exactly 1", observed)
	}
	if got := g.Metrics.SpilledFailure.Load(); got != 1 {
		t.Fatalf("spilled_failure = %d, want 1", got)
	}

	// Case 2: the primary accepts the connection, reads the request,
	// then kills the connection — an ambiguous failure. /observe must
	// NOT be retried (the backend may have ingested it); /predict may.
	var aliveHits int
	ambiguous := stubBackend(t, func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		hijackClose(w)
	})
	alive2 := stubBackend(t, func(w http.ResponseWriter, r *http.Request) {
		aliveHits++
		_, _ = io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, `{"ok":true}`)
	})
	g2, err := New([]string{ambiguous.URL, alive2.URL}, Config{Health: slowHealth})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	gw2 := httptest.NewServer(g2.Handler())
	defer gw2.Close()

	model2 := modelWithPrimary(t, g2, 0) // primary = the ambiguous one
	body2 := []byte(fmt.Sprintf(`{"model":%q,"x":[1,2,3],"y":0.5}`, model2))

	resp, got = postJSON(t, gw2.URL+"/observe", body2)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("ambiguous observe failure: status %d (%s), want 502", resp.StatusCode, got)
	}
	if aliveHits != 0 {
		t.Fatalf("ambiguous observe was retried onto the survivor %d time(s)", aliveHits)
	}

	// The same ambiguous failure on idempotent /predict IS retried.
	resp, got = postJSON(t, gw2.URL+"/predict", body2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after ambiguous failure: status %d: %s", resp.StatusCode, got)
	}
	if aliveHits != 1 {
		t.Fatalf("predict retry hit the survivor %d time(s), want 1", aliveHits)
	}
}

// TestNoLiveBackend: with every backend ejected the gateway answers
// 503 + Retry-After instead of hanging or panicking.
func TestNoLiveBackend(t *testing.T) {
	s := stubBackend(t, func(w http.ResponseWriter, r *http.Request) {})
	g, err := New([]string{s.URL}, Config{Health: slowHealth})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	g.backends[0].health.ejected.Store(true)
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	resp, _ := postJSON(t, gw.URL+"/predict", []byte(`{"model":"m","x":[1]}`))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if g.Metrics.NoBackend.Load() != 1 {
		t.Fatalf("no_backend = %d, want 1", g.Metrics.NoBackend.Load())
	}
}

// TestRandomRouteSpread: random mode must hit every live backend.
func TestRandomRouteSpread(t *testing.T) {
	var hits [2]int
	mk := func(i int) *httptest.Server {
		return stubBackend(t, func(w http.ResponseWriter, r *http.Request) {
			hits[i]++
			fmt.Fprint(w, `{}`)
		})
	}
	s1, s2 := mk(0), mk(1)
	g, err := New([]string{s1.URL, s2.URL}, Config{Health: slowHealth, Random: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	body := []byte(`{"model":"one-single-model","x":[1]}`)
	for i := 0; i < 40; i++ {
		resp, _ := postJSON(t, gw.URL+"/predict", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if hits[0] == 0 || hits[1] == 0 {
		t.Fatalf("random routing did not spread: hits %v", hits)
	}
}

package gateway

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// HealthConfig tunes the active health checker and the ejection
// policy. The zero value is replaced by defaults in New.
type HealthConfig struct {
	// Interval between active probes of one backend's /readyz.
	Interval time.Duration
	// Timeout bounds one probe round trip.
	Timeout time.Duration
	// EjectAfter consecutive failures (probe failures and passive
	// request-level connection failures both count) ejects a backend.
	EjectAfter int
	// ReadmitAfter consecutive probe successes re-admits an ejected
	// backend: the first success moves it half-open, the ReadmitAfter-th
	// closes the circuit and client traffic resumes.
	ReadmitAfter int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 2
	}
	return c
}

// health is one backend's liveness state machine. Failures arrive from
// two sources — the active prober and passive per-request connection
// failures reported by the proxy — and both feed the same consecutive-
// failure counter, so a dead replica under live traffic is ejected in
// one request burst instead of waiting out probe intervals.
//
// States: healthy (serving) → ejected after EjectAfter consecutive
// failures (no client traffic, probes continue) → half-open on the
// first probe success → healthy again after ReadmitAfter consecutive
// successes (a single failed probe while half-open drops straight back
// to ejected).
type health struct {
	ejected atomic.Bool

	mu          sync.Mutex
	consecFails int
	consecOKs   int
	cfg         HealthConfig

	// ejections counts healthy→ejected transitions (exported via
	// /metrics); lastProbeOK records the most recent probe outcome for
	// the /healthz summary.
	ejections   atomic.Uint64
	lastProbeOK atomic.Bool

	// lg and url annotate the state-transition log lines; both
	// transitions (ejection, readmission) are fleet-membership changes
	// an operator greps for.
	lg  *slog.Logger
	url string
}

func newHealth(cfg HealthConfig, lg *slog.Logger, url string) *health {
	if lg == nil {
		lg = slog.New(slog.DiscardHandler)
	}
	return &health{cfg: cfg, lg: lg, url: url}
}

// reportFailure records one failed probe or one request-level
// connection failure.
func (h *health) reportFailure() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecOKs = 0
	h.consecFails++
	if h.consecFails >= h.cfg.EjectAfter && !h.ejected.Load() {
		h.ejected.Store(true)
		h.ejections.Add(1)
		h.lg.Warn("backend ejected", "backend", h.url, "consecutive_failures", h.consecFails)
	}
}

// reportProbeSuccess records one successful /readyz probe. Only probe
// successes count toward re-admission: an ejected backend receives no
// client traffic, so request-level successes cannot exist, and a
// healthy backend's successes just reset the failure streak.
func (h *health) reportProbeSuccess() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecFails = 0
	if !h.ejected.Load() {
		return
	}
	h.consecOKs++
	if h.consecOKs >= h.cfg.ReadmitAfter {
		h.consecOKs = 0
		h.ejected.Store(false)
		h.lg.Info("backend readmitted", "backend", h.url)
	}
}

// reportRequestSuccess resets the failure streak after a request that
// reached the backend and got any HTTP response (a 4xx/5xx is the
// backend answering, not the backend being dead).
func (h *health) reportRequestSuccess() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecFails = 0
}

// live reports whether the backend may receive client traffic.
func (h *health) live() bool { return !h.ejected.Load() }

// probeLoop actively checks one backend's /readyz until ctx is done.
// Probes continue while ejected — that is the half-open path back in.
func probeLoop(ctx context.Context, client *http.Client, readyzURL string, h *health) {
	t := time.NewTicker(h.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		probeOnce(ctx, client, readyzURL, h)
	}
}

// probeOnce issues one /readyz round trip and feeds the outcome into
// the state machine. Any 2xx is ready; anything else — non-2xx,
// timeout, connection refused — is a failure.
func probeOnce(ctx context.Context, client *http.Client, readyzURL string, h *health) {
	pctx, cancel := context.WithTimeout(ctx, h.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, readyzURL, nil)
	if err != nil {
		h.lastProbeOK.Store(false)
		h.reportFailure()
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		h.lastProbeOK.Store(false)
		h.reportFailure()
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		h.lastProbeOK.Store(true)
		h.reportProbeSuccess()
	} else {
		h.lastProbeOK.Store(false)
		h.reportFailure()
	}
}

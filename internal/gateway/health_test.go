package gateway

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestHealthStateMachine(t *testing.T) {
	h := newHealth(HealthConfig{EjectAfter: 3, ReadmitAfter: 2}.withDefaults(), nil, "http://backend")
	if !h.live() {
		t.Fatal("new backend must start live")
	}
	h.reportFailure()
	h.reportFailure()
	if !h.live() {
		t.Fatal("ejected before EjectAfter consecutive failures")
	}
	// A success resets the streak.
	h.reportRequestSuccess()
	h.reportFailure()
	h.reportFailure()
	if !h.live() {
		t.Fatal("failure streak did not reset on success")
	}
	h.reportFailure()
	if h.live() {
		t.Fatal("not ejected after EjectAfter consecutive failures")
	}
	if got := h.ejections.Load(); got != 1 {
		t.Fatalf("ejections = %d, want 1", got)
	}
	// Half-open: one probe success is not enough.
	h.reportProbeSuccess()
	if h.live() {
		t.Fatal("re-admitted after a single probe success")
	}
	// A failure while half-open drops straight back.
	h.reportFailure()
	h.reportProbeSuccess()
	if h.live() {
		t.Fatal("half-open failure did not reset the success streak")
	}
	h.reportProbeSuccess()
	if !h.live() {
		t.Fatal("not re-admitted after ReadmitAfter consecutive probe successes")
	}
	// Re-admission must not leave a stale failure streak behind: one
	// new failure is a fresh streak of one, not EjectAfter + one.
	h.reportFailure()
	if !h.live() {
		t.Fatal("single failure after re-admission ejected the backend")
	}
}

// TestProbeLoopEjectsAndReadmits runs the active prober against a
// replica whose /readyz flips 200 → 503 → 200.
func TestProbeLoopEjectsAndReadmits(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if ready.Load() {
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	g, err := New([]string{ts.URL}, Config{Health: fastHealth})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	b := g.backends[0]

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("first probe success", func() bool { return b.health.lastProbeOK.Load() })
	ready.Store(false)
	waitFor("ejection on failing readyz", func() bool { return !b.health.live() })
	ready.Store(true)
	waitFor("re-admission on recovered readyz", func() bool { return b.health.live() })
	if got := b.health.ejections.Load(); got != 1 {
		t.Fatalf("ejections = %d, want 1", got)
	}
}

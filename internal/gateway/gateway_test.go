package gateway

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lam/internal/ml"
	"lam/internal/registry"
	"lam/internal/serve"
)

// fastHealth keeps test ejection/readmission cycles short.
var fastHealth = HealthConfig{
	Interval:     20 * time.Millisecond,
	Timeout:      250 * time.Millisecond,
	EjectAfter:   2,
	ReadmitAfter: 2,
}

// newFleetRegistry publishes len(names) small trained regressors into
// a fresh registry dir and returns the dir plus a feature matrix to
// score.
func newFleetRegistry(t *testing.T, names []string) (string, [][]float64) {
	t.Helper()
	dir := t.TempDir()
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const rows, feats = 200, 3
	X := make([][]float64, rows)
	Y := make([]float64, rows)
	for i := range X {
		X[i] = []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 10}
		Y[i] = X[i][0]*0.01 + X[i][1]*0.002 + X[i][2]*0.1 + rng.NormFloat64()*0.01
	}
	for _, name := range names {
		et := &ml.Pipeline{Model: ml.NewExtraTrees(15, 7)}
		if err := et.Fit(X, Y); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.SaveRegressor(et, registry.Meta{Name: name}); err != nil {
			t.Fatal(err)
		}
	}
	return dir, X[:16]
}

// killableReplica wraps one replica's handler: while down, every
// connection (requests and /readyz probes alike) is hijacked and
// closed without a response — the closest in-process stand-in for a
// SIGKILLed process.
type killableReplica struct {
	down  atomic.Bool
	inner http.Handler
}

func (k *killableReplica) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.down.Load() {
		hijackClose(w)
		return
	}
	k.inner.ServeHTTP(w, r)
}

func hijackClose(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("test server does not support hijacking")
	}
	conn, _, err := hj.Hijack()
	if err == nil {
		conn.Close()
	}
}

// newReplica builds one warmed lam-serve replica over the shared
// registry dir.
func newReplica(t *testing.T, dir string, names []string, co serve.CoalesceConfig) (*serve.Server, *killableReplica, *httptest.Server) {
	t.Helper()
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(reg)
	s.Coalesce = co
	s.WarmNames = names
	k := &killableReplica{inner: s.Handler()}
	ts := httptest.NewServer(k)
	t.Cleanup(ts.Close)
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	return s, k, ts
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestGatewayBitIdentical is the fleet acceptance check: a response
// proxied through the gateway is byte-identical to the direct replica
// call, for single and batch requests, under concurrency.
func TestGatewayBitIdentical(t *testing.T) {
	names := []string{"m0", "m1", "m2", "m3"}
	dir, X := newFleetRegistry(t, names)
	_, _, r1 := newReplica(t, dir, names, serve.CoalesceConfig{})
	_, _, r2 := newReplica(t, dir, names, serve.CoalesceConfig{})

	g, err := New([]string{r1.URL, r2.URL}, Config{Health: fastHealth})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	// One single and one batch body per model, expected bytes taken
	// from a direct replica call.
	type probe struct{ body, want []byte }
	var probes []probe
	for i, name := range names {
		single, _ := json.Marshal(map[string]any{"model": name, "x": X[i]})
		batch, _ := json.Marshal(map[string]any{"model": name, "batch": X})
		for _, body := range [][]byte{single, batch} {
			resp, direct := postJSON(t, r1.URL+"/predict", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("direct call failed: %d %s", resp.StatusCode, direct)
			}
			probes = append(probes, probe{body: body, want: direct})
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 24; i++ {
				p := probes[(w+i)%len(probes)]
				resp, got := postJSON(t, gw.URL+"/predict", p.body)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("gateway status %d: %s", resp.StatusCode, got)
					return
				}
				if !bytes.Equal(got, p.want) {
					t.Errorf("gateway response diverged:\n gateway %s\n direct  %s", got, p.want)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// The aggregated /models must union to exactly the registry's
	// contents (both replicas share it).
	resp, body := func() (*http.Response, []byte) {
		r, err := http.Get(gw.URL + "/models")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(r.Body); err != nil {
			t.Fatal(err)
		}
		return r, buf.Bytes()
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/models status %d", resp.StatusCode)
	}
	var doc struct {
		Models []registry.Meta `json:"models"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Models) != len(names) {
		t.Fatalf("aggregated /models holds %d entries, want %d: %s", len(doc.Models), len(names), body)
	}
}

// TestGatewayEjectsAndRecovers kills one replica mid-load and expects:
// zero wrong answers throughout, the dead replica ejected and traffic
// rebalanced onto the survivor, then re-admission and traffic return
// after recovery.
func TestGatewayEjectsAndRecovers(t *testing.T) {
	names := []string{"m0", "m1", "m2", "m3"}
	dir, X := newFleetRegistry(t, names)
	_, _, r1 := newReplica(t, dir, names, serve.CoalesceConfig{})
	_, k2, r2 := newReplica(t, dir, names, serve.CoalesceConfig{})

	g, err := New([]string{r1.URL, r2.URL}, Config{Health: fastHealth, MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	// Expected bytes per model from a direct call.
	want := make(map[string][]byte, len(names))
	bodies := make(map[string][]byte, len(names))
	for i, name := range names {
		body, _ := json.Marshal(map[string]any{"model": name, "x": X[i%len(X)]})
		bodies[name] = body
		resp, direct := postJSON(t, r1.URL+"/predict", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("direct call failed: %d %s", resp.StatusCode, direct)
		}
		want[name] = direct
	}

	// Continuous background load: every answer must be a correct 200 —
	// through the kill, the ejection, and the recovery.
	stop := make(chan struct{})
	var wrong, total atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := names[(w+i)%len(names)]
				resp, got := postJSON(t, gw.URL+"/predict", bodies[name])
				total.Add(1)
				if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want[name]) {
					wrong.Add(1)
					t.Errorf("during fleet churn: status %d body %s (want %s)", resp.StatusCode, got, want[name])
					return
				}
			}
		}(w)
	}

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	b2 := g.backends[1]

	time.Sleep(100 * time.Millisecond) // load flows through both
	k2.down.Store(true)                // SIGKILL stand-in
	waitFor("replica 2 ejection", func() bool { return !b2.health.live() })
	if got := b2.health.ejections.Load(); got < 1 {
		t.Fatalf("ejections = %d, want >= 1", got)
	}

	// Traffic has rebalanced: replica 2 receives nothing while ejected.
	base := b2.metrics.Requests.Load()
	before := total.Load()
	waitFor("25 served requests during ejection", func() bool { return total.Load() >= before+25 })
	if got := b2.metrics.Requests.Load(); got != base {
		t.Fatalf("ejected replica still received %d request(s)", got-base)
	}

	k2.down.Store(false) // recovery
	waitFor("replica 2 re-admission", func() bool { return b2.health.live() })
	// Traffic returns — but only if the ring actually made replica 2
	// primary for one of the driven models (the httptest ports are
	// random, so the hash split varies per run).
	var buf [maxBackends]int
	primaryOn2 := false
	for _, name := range names {
		if g.ring.candidates(name, buf[:])[0] == 1 {
			primaryOn2 = true
			break
		}
	}
	if primaryOn2 {
		readmitted := b2.metrics.Requests.Load()
		waitFor("traffic back on replica 2", func() bool { return b2.metrics.Requests.Load() > readmitted })
	}

	close(stop)
	wg.Wait()
	if wrong.Load() != 0 {
		t.Fatalf("%d wrong answers out of %d", wrong.Load(), total.Load())
	}
	if total.Load() == 0 {
		t.Fatal("no requests flowed")
	}
}

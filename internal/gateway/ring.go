package gateway

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringVnodesPerBackend is the number of virtual nodes each backend
// contributes to the hash ring. 128 points per backend keeps the
// largest-to-smallest arc ratio low enough that a handful of model
// names spread acceptably across a handful of replicas; the ring is
// built once at startup, so the only cost is a few KiB.
const ringVnodesPerBackend = 128

// ring is a consistent hash ring over backend indices. It is immutable
// after construction: the backend set is fixed for the life of the
// gateway process, and liveness is layered on top by the caller
// (ejected backends are skipped at selection time, not removed from
// the ring — so a recovered backend gets exactly its old arcs back and
// model→replica affinity survives the outage).
type ring struct {
	// vnodeHashes is sorted ascending; vnodeOwner[i] is the backend
	// index owning vnodeHashes[i].
	vnodeHashes []uint64
	vnodeOwner  []int
	n           int // backend count
}

// newRing builds the ring for n backends identified by their URLs.
// Vnode hashes mix the backend URL with the vnode ordinal so two
// gateways configured with the same backend list (in any order) agree
// on every model's candidate sequence.
func newRing(urls []string) *ring {
	r := &ring{n: len(urls)}
	type vn struct {
		h     uint64
		owner int
	}
	vns := make([]vn, 0, len(urls)*ringVnodesPerBackend)
	for i, u := range urls {
		for k := 0; k < ringVnodesPerBackend; k++ {
			vns = append(vns, vn{h: hashKey(u + "#" + strconv.Itoa(k)), owner: i})
		}
	}
	sort.Slice(vns, func(a, b int) bool { return vns[a].h < vns[b].h })
	r.vnodeHashes = make([]uint64, len(vns))
	r.vnodeOwner = make([]int, len(vns))
	for i, v := range vns {
		r.vnodeHashes[i] = v.h
		r.vnodeOwner[i] = v.owner
	}
	return r
}

// hashKey is 64-bit FNV-1a plus a finalizer: fast, dependency-free,
// and stable across processes and architectures (routing must agree
// between gateway restarts so replica-local caches stay warm). The
// finalizer matters: raw FNV-1a of a short key leaves the product's
// high bits nearly untouched by the last byte (one ~2^40 prime
// multiply cannot avalanche to the top), so sibling model names like
// "m0".."m9" would all land within one narrow region of the ring and
// hash to the same replica. The mix spreads them uniformly.
func hashKey(s string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(s))
	h := f.Sum64()
	// murmur3 fmix64 finalizer: full avalanche in three xor-multiplies.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// candidates appends to buf the distinct backend indices in ring order
// starting at key's successor vnode: buf[0] is the model's primary
// replica, buf[1] the first spill-over target, and so on through every
// backend exactly once. The full-fleet ordering is what makes
// spill-over deterministic: every gateway-side retry for a model walks
// the same sequence.
func (r *ring) candidates(key string, buf []int) []int {
	buf = buf[:0]
	if r.n == 0 {
		return buf
	}
	h := hashKey(key)
	start := sort.Search(len(r.vnodeHashes), func(i int) bool { return r.vnodeHashes[i] >= h })
	seen := 0
	var mask uint64 // backend count is small (≤ 64 enforced by config)
	for i := 0; seen < r.n && i < len(r.vnodeOwner); i++ {
		owner := r.vnodeOwner[(start+i)%len(r.vnodeOwner)]
		if mask&(1<<uint(owner)) != 0 {
			continue
		}
		mask |= 1 << uint(owner)
		buf = append(buf, owner)
		seen++
	}
	return buf
}

package gateway

import (
	"lam/internal/telemetry"
)

// backendMetrics is one backend's counter set. Every field is a handle
// into the gateway's telemetry registry, labeled backend=<url>; the
// proxy hot path touches the resolved atomics lock-free.
type backendMetrics struct {
	// Requests counts attempts proxied to this backend (a request
	// retried onto a second backend counts once per backend tried).
	Requests *telemetry.Counter
	// Retries counts attempts to this backend that were retries — the
	// request failed or was shed elsewhere first.
	Retries *telemetry.Counter
	// Failures counts attempts that died in transport (connection
	// refused/reset, timeout) — the passive ejection signal.
	Failures *telemetry.Counter
	// Shed429 counts 429 responses received from this backend; each is
	// a spill-over opportunity for the next ring candidate.
	Shed429 *telemetry.Counter
	// Inflight is the live number of proxied requests outstanding
	// against this backend — the bounded-load routing signal — with its
	// high-water mark.
	Inflight     *telemetry.Gauge
	InflightPeak *telemetry.Gauge
	// SpillsAway counts requests whose bounded-load check moved them
	// off this backend while it was their ring primary.
	SpillsAway *telemetry.Counter
}

func newBackendMetrics(reg *telemetry.Registry, url string) backendMetrics {
	l := telemetry.L("backend", url)
	return backendMetrics{
		Requests:     reg.Counter("lam_gateway_backend_requests_total", "Proxied attempts per backend.", l),
		Retries:      reg.Counter("lam_gateway_backend_retries_total", "Retry attempts per backend.", l),
		Failures:     reg.Counter("lam_gateway_backend_failures_total", "Transport failures per backend.", l),
		Shed429:      reg.Counter("lam_gateway_backend_shed_429_total", "429 responses received per backend.", l),
		Inflight:     reg.Gauge("lam_gateway_backend_inflight", "Live proxied requests outstanding per backend.", l),
		InflightPeak: reg.Gauge("lam_gateway_backend_inflight_peak", "High-water mark of per-backend in-flight requests.", l),
		SpillsAway:   reg.Counter("lam_gateway_backend_spills_away_total", "Requests moved off this backend by the bounded-load rule.", l),
	}
}

// Metrics is the gateway's counter set, exposed at GET /metrics
// (Prometheus text).
type Metrics struct {
	// PredictRequests / ObserveRequests count client requests by
	// endpoint (not attempts; one request may try several backends).
	PredictRequests *telemetry.Counter
	ObserveRequests *telemetry.Counter
	// Retries counts backend attempts beyond each request's first.
	Retries *telemetry.Counter
	// Spilled429 counts requests answered by a non-primary backend
	// after a 429 elsewhere; SpilledFailure the same for transport
	// failures.
	Spilled429     *telemetry.Counter
	SpilledFailure *telemetry.Counter
	// NoBackend counts requests refused with 503 because no live
	// backend remained to try.
	NoBackend *telemetry.Counter
	// Errors counts requests answered 5xx by the gateway itself
	// (NoBackend included) — never requests a backend answered.
	Errors *telemetry.Counter
	// RouteLatency is the routing-decision histogram: the time spent
	// picking a backend (hash, candidate walk, bounded-load check) per
	// proxied request, not the proxied round trip itself. It shares
	// telemetry's one bucket ladder with serve's predict histogram.
	RouteLatency *telemetry.Histogram
}

func newMetrics(reg *telemetry.Registry) Metrics {
	return Metrics{
		PredictRequests: reg.Counter("lam_gateway_predict_requests_total", "Client /predict requests received."),
		ObserveRequests: reg.Counter("lam_gateway_observe_requests_total", "Client /observe requests received."),
		Retries:         reg.Counter("lam_gateway_retries_total", "Backend attempts beyond each request's first."),
		Spilled429:      reg.Counter("lam_gateway_spilled_429_total", "Requests answered by a non-primary backend after a 429."),
		SpilledFailure:  reg.Counter("lam_gateway_spilled_failure_total", "Requests answered by a non-primary backend after a transport failure."),
		NoBackend:       reg.Counter("lam_gateway_no_backend_total", "Requests refused because no live backend remained."),
		Errors:          reg.Counter("lam_gateway_errors_total", "Requests answered 5xx by the gateway itself."),
		RouteLatency:    reg.Histogram("lam_gateway_route_latency_seconds", "Routing-decision latency (backend selection, not the proxied round trip)."),
	}
}

package gateway

import (
	"net/http"
	"sync/atomic"
	"time"
)

// maxInt64 is an atomic high-water-mark tracker (same idiom as
// internal/serve).
type maxInt64 struct{ atomic.Int64 }

func (g *maxInt64) max(v int64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// routeBucketBoundsNs are the upper bounds (inclusive, nanoseconds) of
// the routing-decision latency histogram: the time spent picking a
// backend (hash, candidate walk, bounded-load check) per proxied
// request, not the proxied round trip itself. Routing is expected in
// the sub-microsecond range; the tail buckets exist to surface
// contention regressions.
var routeBucketBoundsNs = [...]uint64{
	250,       // 0.25µs
	1_000,     // 1µs
	4_000,     // 4µs
	16_000,    // 16µs
	64_000,    // 64µs
	256_000,   // 256µs
	1_000_000, // 1ms
}

// numRouteBuckets includes the +Inf overflow bucket.
const numRouteBuckets = len(routeBucketBoundsNs) + 1

// backendMetrics is one backend's counter set. Counters are atomics:
// the proxy hot path touches them lock-free.
type backendMetrics struct {
	// Requests counts attempts proxied to this backend (a request
	// retried onto a second backend counts once per backend tried).
	Requests atomic.Uint64
	// Retries counts attempts to this backend that were retries — the
	// request failed or was shed elsewhere first.
	Retries atomic.Uint64
	// Failures counts attempts that died in transport (connection
	// refused/reset, timeout) — the passive ejection signal.
	Failures atomic.Uint64
	// Shed429 counts 429 responses received from this backend; each is
	// a spill-over opportunity for the next ring candidate.
	Shed429 atomic.Uint64
	// Inflight is the live number of proxied requests outstanding
	// against this backend — the bounded-load routing signal — with its
	// high-water mark.
	Inflight     atomic.Int64
	InflightPeak maxInt64
	// SpillsAway counts requests whose bounded-load check moved them
	// off this backend while it was their ring primary.
	SpillsAway atomic.Uint64
}

// Metrics is the gateway's counter set, exposed at GET /metrics.
type Metrics struct {
	// PredictRequests / ObserveRequests count client requests by
	// endpoint (not attempts; one request may try several backends).
	PredictRequests atomic.Uint64
	ObserveRequests atomic.Uint64
	// Retries counts backend attempts beyond each request's first.
	Retries atomic.Uint64
	// Spilled429 counts requests answered by a non-primary backend
	// after a 429 elsewhere; SpilledFailure the same for transport
	// failures.
	Spilled429     atomic.Uint64
	SpilledFailure atomic.Uint64
	// NoBackend counts requests refused with 503 because no live
	// backend remained to try.
	NoBackend atomic.Uint64
	// Errors counts requests answered 5xx by the gateway itself
	// (NoBackend included) — never requests a backend answered.
	Errors atomic.Uint64
	// RouteDecisionNs accumulates time spent choosing backends;
	// RouteDecisions the number of decisions; RouteBuckets the
	// per-interval histogram counts (cumulated into le_ns form by
	// /metrics, same convention as internal/serve's predict histogram).
	RouteDecisionNs atomic.Uint64
	RouteDecisions  atomic.Uint64
	RouteBuckets    [numRouteBuckets]atomic.Uint64
}

// observeRouteLatency records one routing decision.
func (m *Metrics) observeRouteLatency(d time.Duration) {
	ns := uint64(d)
	m.RouteDecisionNs.Add(ns)
	m.RouteDecisions.Add(1)
	for i, b := range routeBucketBoundsNs {
		if ns <= b {
			m.RouteBuckets[i].Add(1)
			return
		}
	}
	m.RouteBuckets[numRouteBuckets-1].Add(1)
}

// routeBucket is one histogram entry in the /metrics JSON; LeNs nil
// marks the +Inf bucket.
type routeBucket struct {
	LeNs  *uint64 `json:"le_ns"`
	Count uint64  `json:"count"`
}

// backendSnapshot is one backend's row in the /metrics document.
type backendSnapshot struct {
	URL          string `json:"url"`
	Live         bool   `json:"live"`
	Requests     uint64 `json:"requests"`
	Retries      uint64 `json:"retries"`
	Failures     uint64 `json:"failures"`
	Shed429      uint64 `json:"shed_429"`
	Ejections    uint64 `json:"ejections"`
	Inflight     int64  `json:"inflight"`
	InflightPeak int64  `json:"inflight_peak"`
	SpillsAway   uint64 `json:"spills_away"`
}

// metricsSnapshot is the JSON shape of the gateway's GET /metrics.
type metricsSnapshot struct {
	PredictRequests uint64            `json:"predict_requests"`
	ObserveRequests uint64            `json:"observe_requests"`
	Retries         uint64            `json:"retries"`
	Spilled429      uint64            `json:"spilled_429"`
	SpilledFailure  uint64            `json:"spilled_failure"`
	NoBackend       uint64            `json:"no_backend"`
	Errors          uint64            `json:"errors"`
	RouteDecisionNs uint64            `json:"route_decision_ns_total"`
	RouteDecisions  uint64            `json:"route_decisions"`
	RouteBuckets    []routeBucket     `json:"route_decision_buckets"`
	Backends        []backendSnapshot `json:"backends"`
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := &g.Metrics
	buckets := make([]routeBucket, numRouteBuckets)
	var cum uint64
	for i := range routeBucketBoundsNs {
		le := routeBucketBoundsNs[i]
		cum += m.RouteBuckets[i].Load()
		buckets[i] = routeBucket{LeNs: &le, Count: cum}
	}
	cum += m.RouteBuckets[numRouteBuckets-1].Load()
	buckets[numRouteBuckets-1] = routeBucket{Count: cum}
	snap := metricsSnapshot{
		PredictRequests: m.PredictRequests.Load(),
		ObserveRequests: m.ObserveRequests.Load(),
		Retries:         m.Retries.Load(),
		Spilled429:      m.Spilled429.Load(),
		SpilledFailure:  m.SpilledFailure.Load(),
		NoBackend:       m.NoBackend.Load(),
		Errors:          m.Errors.Load(),
		RouteDecisionNs: m.RouteDecisionNs.Load(),
		RouteDecisions:  m.RouteDecisions.Load(),
		RouteBuckets:    buckets,
		Backends:        make([]backendSnapshot, len(g.backends)),
	}
	for i, b := range g.backends {
		snap.Backends[i] = backendSnapshot{
			URL:          b.url,
			Live:         b.health.live(),
			Requests:     b.metrics.Requests.Load(),
			Retries:      b.metrics.Retries.Load(),
			Failures:     b.metrics.Failures.Load(),
			Shed429:      b.metrics.Shed429.Load(),
			Ejections:    b.health.ejections.Load(),
			Inflight:     b.metrics.Inflight.Load(),
			InflightPeak: b.metrics.InflightPeak.Load(),
			SpillsAway:   b.metrics.SpillsAway.Load(),
		}
	}
	writeJSON(w, http.StatusOK, snap)
}

package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lam/internal/registry"
	"lam/internal/telemetry"
)

// maxRequestBytes bounds a proxied request body — the same 64 MiB cap
// internal/serve applies, enforced here so an oversized POST is
// refused before it is buffered for retry.
const maxRequestBytes = 64 << 20

// maxBackends bounds the fleet size (the ring's candidate walk uses a
// 64-bit visited mask).
const maxBackends = 64

// cooldownCap bounds how long a backend's Retry-After can keep it
// deprioritized: a replica advertising a huge backoff must not be able
// to write itself out of the fleet.
const cooldownCap = 5 * time.Second

// traceRingSize is the number of finished traces GET /trace/recent can
// return (same bound as internal/serve).
const traceRingSize = 256

// Config tunes the gateway. The zero value gets defaults in New.
type Config struct {
	// Health is the active checking + ejection policy.
	Health HealthConfig
	// BoundFactor is the bounded-load spill threshold: a request's
	// primary replica is skipped when its in-flight count exceeds
	// BoundFactor × the fleet-wide mean (the consistent-hashing-with-
	// bounded-loads rule), trading a little batch density for an upper
	// bound on hot-model imbalance. <= 1 disables spilling; default 1.25.
	BoundFactor float64
	// MaxAttempts is the total backend attempts one client request may
	// consume (first try + retries). Default 2.
	MaxAttempts int
	// Random replaces consistent routing with a uniform-random live
	// backend per request — the comparison baseline for measuring what
	// per-model affinity buys the replicas' coalescers. Default false.
	Random bool
	// Seed seeds the Random mode's generator; 0 means 1.
	Seed int64
	// Logger receives the gateway's structured log output (backend
	// ejections/readmissions, slow traces). Nil discards.
	Logger *slog.Logger
	// TraceSlow, when positive, logs the span tree of any proxied
	// request slower than it (the -trace-slow flag).
	TraceSlow time.Duration
}

func (c Config) withDefaults() Config {
	c.Health = c.Health.withDefaults()
	if c.BoundFactor == 0 {
		c.BoundFactor = 1.25
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// backend is one lam-serve replica: its base URL, a dedicated pooled
// HTTP client (per-backend pooling keeps one slow replica from
// starving the others' idle connections), its health state machine and
// its counter set.
type backend struct {
	url     string
	client  *http.Client
	health  *health
	metrics backendMetrics
	// cooldownUntil is a unix-nano deadline set from a 429's
	// Retry-After: until it passes, routing deprioritizes this backend
	// (used only when every other live candidate is also cooling down).
	cooldownUntil atomic.Int64
}

// Gateway fronts a fleet of lam-serve replicas: per-model consistent
// routing with bounded-load spill, active health ejection, and
// retry/spill-over on 429s and connection failures.
type Gateway struct {
	backends []*backend
	ring     *ring
	cfg      Config
	// Metrics is the gateway's counter set (GET /metrics). Exported so
	// tests and embedders can read it; the handles resolve into
	// Telemetry.
	Metrics Metrics
	// Telemetry is the metric registry backing GET /metrics.
	Telemetry *telemetry.Registry
	// Tracer records finished request traces (GET /trace/recent) and
	// logs slow ones.
	Tracer *telemetry.Recorder
	// Log is the gateway's structured logger (Config.Logger, or a
	// discard logger when unset).
	Log *slog.Logger

	rngMu sync.Mutex
	rng   *rand.Rand

	cancel context.CancelFunc
}

// New builds a gateway over the given replica base URLs and starts the
// active health probers. Call Close to stop them.
func New(urls []string, cfg Config) (*Gateway, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("gateway: at least one backend URL is required")
	}
	if len(urls) > maxBackends {
		return nil, fmt.Errorf("gateway: %d backends exceeds the maximum of %d", len(urls), maxBackends)
	}
	cfg = cfg.withDefaults()
	lg := cfg.Logger
	if lg == nil {
		lg = slog.New(slog.DiscardHandler)
	}
	g := &Gateway{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		Telemetry: telemetry.NewRegistry(),
		Tracer:    telemetry.NewRecorder(traceRingSize),
		Log:       lg,
	}
	g.Metrics = newMetrics(g.Telemetry)
	g.Tracer.Slow = cfg.TraceSlow
	g.Tracer.Logger = lg
	seen := make(map[string]bool, len(urls))
	normalized := make([]string, 0, len(urls))
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("gateway: empty backend URL")
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("gateway: backend %q must be an http(s) URL", u)
		}
		if seen[u] {
			return nil, fmt.Errorf("gateway: duplicate backend %q", u)
		}
		seen[u] = true
		normalized = append(normalized, u)
		g.backends = append(g.backends, &backend{
			url: u,
			client: &http.Client{
				// No overall timeout: a slow prediction must be allowed
				// to finish, and the client request context already
				// cancels abandoned work. Probes get their own timeout.
				Transport: &http.Transport{
					MaxIdleConns:        256,
					MaxIdleConnsPerHost: 256,
					IdleConnTimeout:     90 * time.Second,
				},
			},
			health:  newHealth(cfg.Health, lg, u),
			metrics: newBackendMetrics(g.Telemetry, u),
		})
	}
	// Liveness and ejection counts live in the health state machine;
	// collectors read them at scrape time instead of mirroring.
	g.Telemetry.CollectFunc("lam_gateway_backend_up",
		"Backend liveness (1 live, 0 ejected).", telemetry.TypeGauge,
		func(emit func([]telemetry.Label, float64)) {
			for _, b := range g.backends {
				v := 0.0
				if b.health.live() {
					v = 1
				}
				emit([]telemetry.Label{telemetry.L("backend", b.url)}, v)
			}
		})
	g.Telemetry.CollectFunc("lam_gateway_backend_ejections_total",
		"Healthy-to-ejected transitions per backend.", telemetry.TypeCounter,
		func(emit func([]telemetry.Label, float64)) {
			for _, b := range g.backends {
				emit([]telemetry.Label{telemetry.L("backend", b.url)}, float64(b.health.ejections.Load()))
			}
		})
	g.ring = newRing(normalized)
	ctx, cancel := context.WithCancel(context.Background())
	g.cancel = cancel
	for _, b := range g.backends {
		go probeLoop(ctx, b.client, b.url+"/readyz", b.health)
	}
	return g, nil
}

// Close stops the health probers and releases pooled connections.
func (g *Gateway) Close() {
	g.cancel()
	for _, b := range g.backends {
		b.client.CloseIdleConnections()
	}
}

// Handler returns the gateway's HTTP routes.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /models", g.handleModels)
	mux.Handle("GET /metrics", g.Telemetry.Handler())
	mux.Handle("GET /trace/recent", g.Tracer.Handler())
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		g.Metrics.PredictRequests.Add(1)
		g.proxy(w, r, "/predict", true)
	})
	mux.HandleFunc("POST /observe", func(w http.ResponseWriter, r *http.Request) {
		g.Metrics.ObserveRequests.Add(1)
		g.proxy(w, r, "/observe", false)
	})
	mux.HandleFunc("GET /models/{name}/rollout", g.proxyRollout)
	mux.HandleFunc("POST /models/{name}/rollout", g.proxyRollout)
	return mux
}

// proxyRollout forwards a rollout inspect or action request, routed by
// the model name in the path — the same ring key /predict uses, so the
// state a client reads comes from the replica most of that model's
// traffic lands on. (Replicas share the registry and make canary
// decisions from the same deterministic hash, so any replica's answer
// agrees; routing by name just keeps reads cheap and cache-warm.)
// Inspections (GET) may retry on any transport failure; actions (POST)
// only when the failure provably preceded the request reaching a
// backend, so a force-promote is never applied twice.
func (g *Gateway) proxyRollout(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	tr := g.Tracer.StartFromHeader(r.Header, "rollout")
	if tr != nil {
		w.Header().Set(telemetry.TraceHeader, tr.ID().String())
		defer g.Tracer.Finish(tr)
	}
	ctx := telemetry.WithTrace(r.Context(), tr)
	tr.SetModel(name, 0)
	var body []byte
	if r.Method == http.MethodPost {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
		if err != nil {
			g.Metrics.Errors.Add(1)
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("gateway: reading request body: %v", err)})
			return
		}
	}
	var orderBuf [maxBackends]int
	rsp := telemetry.StartSpan(ctx, "route")
	order := g.tryOrder(name, orderBuf[:])
	rsp.End()
	if len(order) == 0 {
		g.Metrics.NoBackend.Add(1)
		g.Metrics.Errors.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "gateway: no live backend"})
		return
	}
	attempts := g.cfg.MaxAttempts
	if attempts > len(order) {
		attempts = len(order)
	}
	endpoint := "/models/" + name + "/rollout"
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		b := g.backends[order[attempt]]
		b.metrics.Requests.Add(1)
		if attempt > 0 {
			b.metrics.Retries.Add(1)
			g.Metrics.Retries.Add(1)
		}
		psp := telemetry.StartSpan(ctx, "proxy").Detail(b.url)
		resp, err := g.attempt(ctx, b, r.Method, endpoint, body, r.Header.Get("Content-Type"))
		psp.End()
		if err != nil {
			b.metrics.Failures.Add(1)
			b.health.reportFailure()
			lastErr = err
			if r.Context().Err() != nil {
				break
			}
			if attempt+1 < attempts && (r.Method == http.MethodGet || isDialError(err)) {
				continue
			}
			break
		}
		b.health.reportRequestSuccess()
		forward(w, resp)
		return
	}
	g.Metrics.Errors.Add(1)
	writeJSON(w, http.StatusBadGateway, errorResponse{
		Error: fmt.Sprintf("gateway: all attempts failed: %v", lastErr),
	})
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// modelPeek extracts the one field routing needs from a request body.
type modelPeek struct {
	Model string `json:"model"`
}

// tryOrder returns the ordered backends this request may attempt:
// live candidates in ring order for the model (or a uniform-random
// permutation in Random mode), rotated so the first entry respects the
// bounded-load rule and active cooldowns. The walk is the routing
// decision proper and is what the route-latency histogram measures.
func (g *Gateway) tryOrder(model string, buf []int) []int {
	start := time.Now()
	defer func() { g.Metrics.RouteLatency.Observe(time.Since(start)) }()

	if g.cfg.Random {
		g.rngMu.Lock()
		perm := g.rng.Perm(len(g.backends))
		g.rngMu.Unlock()
		live := buf[:0]
		for _, i := range perm {
			if g.backends[i].health.live() {
				live = append(live, i)
			}
		}
		return live
	}

	cands := g.ring.candidates(model, buf)
	live := cands[:0] // filter in place: cands is not reused
	for _, i := range cands {
		if g.backends[i].health.live() {
			live = append(live, i)
		}
	}
	if len(live) <= 1 {
		return live
	}
	// Bounded load: skip the primary while its in-flight count exceeds
	// BoundFactor × the live-fleet mean. The chosen start is a rotation,
	// not a reorder — spill-over retries still walk the ring sequence.
	if g.cfg.BoundFactor > 1 {
		var total int64
		for _, b := range g.backends {
			total += b.metrics.Inflight.Load()
		}
		bound := int64(g.cfg.BoundFactor * float64(total+1) / float64(len(live)))
		if bound < 1 {
			bound = 1
		}
		for off := 0; off < len(live); off++ {
			if g.backends[live[off]].metrics.Inflight.Load() < bound {
				if off > 0 {
					g.backends[live[0]].metrics.SpillsAway.Add(1)
					rotate(live, off)
				}
				break
			}
		}
	}
	// Cooldown (Retry-After) deprioritization: rotate past backends
	// that recently shed, unless every candidate is cooling down.
	now := time.Now().UnixNano()
	for off := 0; off < len(live); off++ {
		if g.backends[live[off]].cooldownUntil.Load() <= now {
			rotate(live, off)
			break
		}
	}
	return live
}

// rotate moves live[off:] to the front, preserving relative order.
func rotate(live []int, off int) {
	if off == 0 {
		return
	}
	tmp := make([]int, 0, len(live))
	tmp = append(tmp, live[off:]...)
	tmp = append(tmp, live[:off]...)
	copy(live, tmp)
}

// proxy forwards one model-addressed POST to the fleet. The body is
// buffered (routing needs the model name and a retry needs to resend
// it); the response streams straight through, so a forwarded answer is
// byte-identical to the backend's. idempotent requests (/predict) may
// be retried after any transport failure; non-idempotent ones
// (/observe) are retried only when the failure provably happened
// before the request reached a backend (a dial error) or when the
// backend shed it with 429 before processing — never after bytes were
// written to a live connection, so an observation is never ingested
// twice.
func (g *Gateway) proxy(w http.ResponseWriter, r *http.Request, endpoint string, idempotent bool) {
	// The gateway is the trace edge: it adopts the client's X-Lam-Trace
	// ID or mints one, echoes it on the response, and forwards it on
	// every backend attempt so the replica's spans join the same trace.
	tr := g.Tracer.StartFromHeader(r.Header, strings.TrimPrefix(endpoint, "/"))
	if tr != nil {
		w.Header().Set(telemetry.TraceHeader, tr.ID().String())
		defer g.Tracer.Finish(tr)
	}
	ctx := telemetry.WithTrace(r.Context(), tr)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		status := http.StatusBadRequest
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		g.Metrics.Errors.Add(1)
		writeJSON(w, status, errorResponse{Error: fmt.Sprintf("gateway: reading request body: %v", err)})
		return
	}
	// A body the gateway cannot peek a model out of still gets
	// forwarded (with an empty routing key): the backend owns the
	// authoritative 400 so error responses are byte-identical too.
	var peek modelPeek
	_ = json.Unmarshal(body, &peek)
	// Version is unknown at the gateway: routing keys on the name; the
	// replica resolves (and records) the served version.
	tr.SetModel(peek.Model, 0)

	var orderBuf [maxBackends]int
	rsp := telemetry.StartSpan(ctx, "route")
	order := g.tryOrder(peek.Model, orderBuf[:])
	rsp.End()
	if len(order) == 0 {
		g.Metrics.NoBackend.Add(1)
		g.Metrics.Errors.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "gateway: no live backend"})
		return
	}
	attempts := g.cfg.MaxAttempts
	if attempts > len(order) {
		attempts = len(order)
	}

	var lastErr error
	spill429 := false
	for attempt := 0; attempt < attempts; attempt++ {
		b := g.backends[order[attempt]]
		b.metrics.Requests.Add(1)
		if attempt > 0 {
			b.metrics.Retries.Add(1)
			g.Metrics.Retries.Add(1)
		}
		psp := telemetry.StartSpan(ctx, "proxy").Detail(b.url)
		resp, err := g.attempt(ctx, b, http.MethodPost, endpoint, body, r.Header.Get("Content-Type"))
		psp.End()
		if err != nil {
			b.metrics.Failures.Add(1)
			b.health.reportFailure()
			lastErr = err
			if r.Context().Err() != nil {
				// The client is gone; nothing to retry for.
				break
			}
			if attempt+1 < attempts && (idempotent || isDialError(err)) {
				continue
			}
			break
		}
		b.health.reportRequestSuccess()
		if resp.StatusCode == http.StatusTooManyRequests {
			b.metrics.Shed429.Add(1)
			b.cooldownUntil.Store(time.Now().Add(retryAfter(resp)).UnixNano())
			if attempt+1 < attempts {
				// Spill over: the next ring candidate gets one shot. A
				// 429 always precedes processing, so this is safe for
				// /observe too.
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				spill429 = true
				continue
			}
		}
		if attempt > 0 {
			if spill429 {
				g.Metrics.Spilled429.Add(1)
			} else {
				g.Metrics.SpilledFailure.Add(1)
			}
		}
		forward(w, resp)
		return
	}
	g.Metrics.Errors.Add(1)
	writeJSON(w, http.StatusBadGateway, errorResponse{
		Error: fmt.Sprintf("gateway: all attempts failed: %v", lastErr),
	})
}

// attempt issues one backend round trip, tracking the in-flight gauge
// the bounded-load router reads. The response body is the caller's to
// close.
func (g *Gateway) attempt(ctx context.Context, b *backend, method, endpoint string, body []byte, contentType string) (*http.Response, error) {
	inflight := b.metrics.Inflight.Add(1)
	b.metrics.InflightPeak.SetMax(inflight)
	defer b.metrics.Inflight.Add(-1)
	req, err := http.NewRequestWithContext(ctx, method, b.url+endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if tr := telemetry.FromContext(ctx); tr != nil {
		req.Header.Set(telemetry.TraceHeader, tr.ID().String())
	}
	req.ContentLength = int64(len(body))
	return b.client.Do(req)
}

// forward streams a backend response to the client unchanged: status,
// the headers the API uses, and the body bytes verbatim — the
// bit-identity contract for proxied predictions.
func forward(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// retryAfter parses a 429's Retry-After seconds, capped so a
// misbehaving replica cannot cool itself out of the fleet.
func retryAfter(resp *http.Response) time.Duration {
	s, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || s < 0 {
		return time.Second
	}
	d := time.Duration(s) * time.Second
	if d > cooldownCap {
		d = cooldownCap
	}
	return d
}

// isDialError reports whether err happened while establishing the
// connection — before any request bytes could have reached a backend,
// which is what makes retrying a non-idempotent request safe.
func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// handleHealthz summarizes fleet liveness: 200 while at least one
// backend is live, 503 once none are.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type backendHealthz struct {
		URL         string `json:"url"`
		Live        bool   `json:"live"`
		LastProbeOK bool   `json:"last_probe_ok"`
		Ejections   uint64 `json:"ejections"`
	}
	out := struct {
		Status   string           `json:"status"`
		Live     int              `json:"live"`
		Total    int              `json:"total"`
		Backends []backendHealthz `json:"backends"`
	}{Total: len(g.backends)}
	for _, b := range g.backends {
		live := b.health.live()
		if live {
			out.Live++
		}
		out.Backends = append(out.Backends, backendHealthz{
			URL: b.url, Live: live,
			LastProbeOK: b.health.lastProbeOK.Load(),
			Ejections:   b.health.ejections.Load(),
		})
	}
	status := http.StatusOK
	out.Status = "ok"
	if out.Live == 0 {
		status = http.StatusServiceUnavailable
		out.Status = "down"
	} else if out.Live < out.Total {
		out.Status = "degraded"
	}
	writeJSON(w, status, out)
}

// handleModels aggregates every live backend's /models. Replicas share
// one registry, so the union is normally identical to any single
// answer; deduplication by (name, version) covers a replica that has
// not yet observed a just-published version.
func (g *Gateway) handleModels(w http.ResponseWriter, r *http.Request) {
	type modelsDoc struct {
		Models []registry.Meta `json:"models"`
	}
	seen := make(map[string]bool)
	var merged []registry.Meta
	var lastErr error
	answered := false
	for _, b := range g.backends {
		if !b.health.live() {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.url+"/models", nil)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := b.client.Do(req)
		if err != nil {
			b.health.reportFailure()
			lastErr = err
			continue
		}
		var doc modelsDoc
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("backend %s /models: status %d, %v", b.url, resp.StatusCode, err)
			continue
		}
		answered = true
		for _, m := range doc.Models {
			key := m.Name + "@" + strconv.Itoa(m.Version)
			if !seen[key] {
				seen[key] = true
				merged = append(merged, m)
			}
		}
	}
	if !answered {
		g.Metrics.Errors.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error: fmt.Sprintf("gateway: no backend answered /models: %v", lastErr),
		})
		return
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Name != merged[j].Name {
			return merged[i].Name < merged[j].Name
		}
		return merged[i].Version < merged[j].Version
	})
	writeJSON(w, http.StatusOK, modelsDoc{Models: merged})
}

package gateway

import (
	"fmt"
	"testing"
)

func TestRingCandidatesCompleteAndStable(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := newRing(urls)
	var buf [maxBackends]int
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("model-%d", i)
		c1 := append([]int(nil), r.candidates(key, buf[:])...)
		if len(c1) != len(urls) {
			t.Fatalf("key %q: %d candidates, want %d", key, len(c1), len(urls))
		}
		seen := map[int]bool{}
		for _, b := range c1 {
			if b < 0 || b >= len(urls) || seen[b] {
				t.Fatalf("key %q: bad candidate list %v", key, c1)
			}
			seen[b] = true
		}
		c2 := r.candidates(key, buf[:])
		for j := range c1 {
			if c1[j] != c2[j] {
				t.Fatalf("key %q: candidate order not deterministic: %v vs %v", key, c1, c2)
			}
		}
	}
}

// TestRingDistribution checks the vnode count gives an acceptable
// primary spread: over many keys, no backend of four may own less
// than 10% or more than 45% of primaries.
func TestRingDistribution(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := newRing(urls)
	counts := make([]int, len(urls))
	const keys = 4000
	var buf [maxBackends]int
	for i := 0; i < keys; i++ {
		counts[r.candidates(fmt.Sprintf("model-%d", i), buf[:])[0]]++
	}
	for b, c := range counts {
		share := float64(c) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("backend %d owns %.1f%% of primaries (counts %v)", b, share*100, counts)
		}
	}
}

// TestRingSiblingNamesSpread pins the hashKey finalizer: short model
// names differing in one trailing character ("m0".."m15", the shape
// real registries use) must spread across a two-backend fleet. Raw
// FNV-1a fails this — its last-byte avalanche cannot reach the high
// bits that position a key on the ring, so every sibling lands in one
// narrow region and the fleet degenerates to a single replica.
func TestRingSiblingNamesSpread(t *testing.T) {
	r := newRing([]string{"http://10.0.0.1:9001", "http://10.0.0.2:9001"})
	var buf [maxBackends]int
	counts := make([]int, 2)
	for i := 0; i < 16; i++ {
		counts[r.candidates(fmt.Sprintf("m%d", i), buf[:])[0]]++
	}
	if counts[0] < 3 || counts[1] < 3 {
		t.Fatalf("sibling model names m0..m15 split %v across two backends — hash clustering", counts)
	}
}

// TestRingAgreesAcrossBackendOrder: two gateways configured with the
// same fleet in different list order must route every model the same
// way (vnode hashes mix the URL, not the list index).
func TestRingAgreesAcrossBackendOrder(t *testing.T) {
	urlsA := []string{"http://a:1", "http://b:1", "http://c:1"}
	urlsB := []string{"http://c:1", "http://a:1", "http://b:1"}
	ra, rb := newRing(urlsA), newRing(urlsB)
	var bufA, bufB [maxBackends]int
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("model-%d", i)
		ca := ra.candidates(key, bufA[:])
		cb := rb.candidates(key, bufB[:])
		for j := range ca {
			if urlsA[ca[j]] != urlsB[cb[j]] {
				t.Fatalf("key %q: order-dependent routing: %v(A-indexed) vs %v(B-indexed)", key, ca, cb)
			}
		}
	}
}

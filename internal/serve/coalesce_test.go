package serve

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lam/internal/experiments"
	"lam/internal/hybrid"
	"lam/internal/machine"
	"lam/internal/registry"
)

// newThroughputServer builds a registry with one trained hybrid model
// and returns a live server with the given throughput-plane configs,
// the underlying library model for bit-identity checks, the serve
// instance for metric assertions, and held-out feature rows.
func newThroughputServer(t *testing.T, co CoalesceConfig, ad AdmitConfig) (*httptest.Server, *Server, *hybrid.Model, [][]float64) {
	t.Helper()
	m := machine.BlueWatersXE6()
	ds, err := experiments.DatasetByName("stencil-grid", m, 42)
	if err != nil {
		t.Fatal(err)
	}
	am, err := experiments.AMByDataset("stencil-grid", m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	train, test, err := ds.SampleFraction(0.02, rng)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := hybrid.Train(train, am, hybrid.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.SaveHybrid(hy, registry.Meta{
		Name: "grid-hybrid", Workload: "stencil-grid", Machine: "bluewaters",
		TrainSize: train.Len(),
	}); err != nil {
		t.Fatal(err)
	}
	srv := New(reg)
	srv.Coalesce = co
	srv.Admit = ad
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, hy, test.X[:64]
}

// TestCoalescedBitIdentical is the coalescing acceptance check: under
// concurrent mixed single/batch load, every coalesced response is bit
// identical to the direct library call for that row — coalescing is
// observable only in the metrics, never in the payloads.
func TestCoalescedBitIdentical(t *testing.T) {
	ts, srv, hy, X := newThroughputServer(t,
		CoalesceConfig{MaxBatch: 8, MaxDelay: 2 * time.Millisecond}, AdmitConfig{})

	want := make([]float64, len(X))
	for i, x := range X {
		y, err := hy.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = y
	}

	const workers = 16
	const iters = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (w*iters + it) % len(X)
				if it%2 == 0 {
					// Single row: rides the coalescer.
					resp, body := postPredict(t, ts.URL, map[string]any{"model": "grid-hybrid", "x": X[i]})
					if resp.StatusCode != http.StatusOK {
						t.Errorf("single %d: status %d: %s", i, resp.StatusCode, body)
						return
					}
					var out predictOut
					if err := json.Unmarshal(body, &out); err != nil {
						t.Error(err)
						return
					}
					if out.Y == nil || *out.Y != want[i] {
						t.Errorf("single row %d: served %v, want %v", i, out.Y, want[i])
					}
				} else {
					// Small batch: bypasses the coalescer, shares the server.
					lo := i
					hi := lo + 4
					if hi > len(X) {
						hi = len(X)
					}
					resp, body := postPredict(t, ts.URL, map[string]any{"model": "grid-hybrid", "batch": X[lo:hi]})
					if resp.StatusCode != http.StatusOK {
						t.Errorf("batch [%d:%d): status %d: %s", lo, hi, resp.StatusCode, body)
						return
					}
					var out predictOut
					if err := json.Unmarshal(body, &out); err != nil {
						t.Error(err)
						return
					}
					for j, y := range out.YBatch {
						if y != want[lo+j] {
							t.Errorf("batch row %d: served %v, want %v", lo+j, y, want[lo+j])
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got := srv.Metrics.CoalescedRequests.Load(); got != workers*iters/2 {
		t.Fatalf("coalesced %d singles, want %d", got, workers*iters/2)
	}
	if f := srv.Metrics.CoalesceFlushes.Load(); f == 0 {
		t.Fatal("no coalesce flushes recorded")
	}
	if mx := srv.Metrics.CoalesceMaxFlush.Load(); mx > 8 {
		t.Fatalf("a flush held %d rows, above MaxBatch 8", mx)
	}
}

// TestCoalesceFlushTriggers pins both flush triggers: MaxBatch fires
// well before a long MaxDelay when enough rows accumulate, and a lone
// request is flushed solo once MaxDelay elapses.
func TestCoalesceFlushTriggers(t *testing.T) {
	// Size trigger: the delay is far beyond the test's patience, so
	// only MaxBatch-triggered flushes can complete these requests.
	ts, srv, hy, X := newThroughputServer(t,
		CoalesceConfig{MaxBatch: 4, MaxDelay: 30 * time.Second}, AdmitConfig{})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postPredict(t, ts.URL, map[string]any{"model": "grid-hybrid", "x": X[i]})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			var out predictOut
			if err := json.Unmarshal(body, &out); err != nil {
				t.Error(err)
				return
			}
			want, err := hy.Predict(X[i])
			if err != nil {
				t.Error(err)
				return
			}
			if out.Y == nil || *out.Y != want {
				t.Errorf("row %d: served %v, want %v", i, out.Y, want)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("8 requests with MaxBatch 4 took %s: size-triggered flush did not fire", elapsed)
	}
	if rows := srv.Metrics.CoalesceRows.Load(); rows != 8 {
		t.Fatalf("coalesced %d rows, want 8", rows)
	}
	if f := srv.Metrics.CoalesceFlushes.Load(); f != 2 {
		t.Fatalf("flushed %d times, want exactly 2 (two full batches)", f)
	}
	if mx := srv.Metrics.CoalesceMaxFlush.Load(); mx != 4 {
		t.Fatalf("max flush %d rows, want exactly MaxBatch=4", mx)
	}

	// Delay trigger: a lone request must wait out MaxDelay, then be
	// scored as a 1-row flush.
	ts2, srv2, hy2, X2 := newThroughputServer(t,
		CoalesceConfig{MaxBatch: 64, MaxDelay: 50 * time.Millisecond}, AdmitConfig{})
	start = time.Now()
	resp, body := postPredict(t, ts2.URL, map[string]any{"model": "grid-hybrid", "x": X2[0]})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out predictOut
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	want, err := hy2.Predict(X2[0])
	if err != nil {
		t.Fatal(err)
	}
	if out.Y == nil || *out.Y != want {
		t.Fatalf("served %v, want %v", out.Y, want)
	}
	if elapsed < 40*time.Millisecond {
		t.Fatalf("lone request returned after %s, before the 50ms MaxDelay window", elapsed)
	}
	if f, rows := srv2.Metrics.CoalesceFlushes.Load(), srv2.Metrics.CoalesceRows.Load(); f != 1 || rows != 1 {
		t.Fatalf("lone request: %d flushes / %d rows, want 1 / 1", f, rows)
	}
}

// TestColdStartSingleFlight fires a burst of concurrent requests at a
// freshly started server: the artifact must be deserialized exactly
// once (single-flighted), not once per request — the thundering-herd
// guard on the latest-pointer refresh path.
func TestColdStartSingleFlight(t *testing.T) {
	ts, srv, hy, X := newThroughputServer(t, CoalesceConfig{}, AdmitConfig{})
	const clients = 16
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postPredict(t, ts.URL, map[string]any{"model": "grid-hybrid", "x": X[i]})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			var out predictOut
			if err := json.Unmarshal(body, &out); err != nil {
				t.Error(err)
				return
			}
			want, err := hy.Predict(X[i])
			if err != nil {
				t.Error(err)
				return
			}
			if out.Y == nil || *out.Y != want {
				t.Errorf("row %d: served %v, want %v", i, out.Y, want)
			}
		}(i)
	}
	wg.Wait()
	if misses := srv.Metrics.ModelCacheMisses.Load(); misses != 1 {
		t.Fatalf("cold burst of %d requests deserialized the artifact %d times, want 1", clients, misses)
	}
	if hits := srv.Metrics.ModelCacheHits.Load(); hits != clients-1 {
		t.Fatalf("cache hits %d, want %d", hits, clients-1)
	}
}

// TestAdmissionShedsNeverWrong drives far more concurrent requests
// than the in-flight + queue budget admits while the coalescer's delay
// holds slots busy: the budgeted requests must all come back correct,
// everything else must be a 429 with Retry-After — a shed is always an
// honest refusal, never a wrong answer.
func TestAdmissionShedsNeverWrong(t *testing.T) {
	// MaxDelay is the window within which all clients must hit the
	// admission gate for the shed split to be deterministic; 1s is
	// generous even on a loaded 1-core CI box, and the assertions
	// below still allow a straggler to be admitted into a freed slot.
	const inflight, queue, clients = 2, 2, 16
	ts, srv, hy, X := newThroughputServer(t,
		CoalesceConfig{MaxBatch: 64, MaxDelay: time.Second},
		AdmitConfig{MaxInflight: inflight, Queue: queue})

	var ok, shed atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postPredict(t, ts.URL, map[string]any{"model": "grid-hybrid", "x": X[i]})
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
				var out predictOut
				if err := json.Unmarshal(body, &out); err != nil {
					t.Error(err)
					return
				}
				want, err := hy.Predict(X[i])
				if err != nil {
					t.Error(err)
					return
				}
				if out.Y == nil || *out.Y != want {
					t.Errorf("admitted row %d: served %v, want %v", i, out.Y, want)
				}
			case http.StatusTooManyRequests:
				shed.Add(1)
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				var e struct {
					Error string `json:"error"`
				}
				if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
					t.Errorf("429 body %s is not a JSON error", body)
				}
			default:
				t.Errorf("request %d: unexpected status %d: %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()

	// Nominally exactly inflight+queue requests are served and the
	// rest shed; a goroutine scheduled after the first flush freed
	// slots can raise the served count, so assert bounds, not the
	// exact split — the invariant under test is "budget served
	// correctly, overflow shed honestly, nothing lost".
	if got := ok.Load(); got < inflight+queue || got > 2*(inflight+queue) {
		t.Fatalf("%d requests served, want in [%d, %d] (in-flight %d + queue %d, plus stragglers)",
			got, inflight+queue, 2*(inflight+queue), inflight, queue)
	}
	if ok.Load()+shed.Load() != clients {
		t.Fatalf("%d ok + %d shed != %d requests", ok.Load(), shed.Load(), clients)
	}
	if got := srv.Metrics.Shed.Load(); got != shed.Load() {
		t.Fatalf("shed counter %d, want %d", got, shed.Load())
	}
	if peak := srv.Metrics.QueuePeakDepth.Load(); peak > queue {
		t.Fatalf("queue peaked at %d, above configured bound %d", peak, queue)
	}
	if d := srv.Metrics.QueueDepth.Load(); d != 0 {
		t.Fatalf("queue depth %d after drain, want 0", d)
	}
}

// TestOverloadBoundedQueue hammers the server well past its admission
// budget from many closed-loop clients and asserts the overload
// invariants: the wait queue never grows past its bound, every
// response is either a correct 200 or a 429, and the queue drains to
// zero afterwards.
func TestOverloadBoundedQueue(t *testing.T) {
	const inflight, queue, clients, iters = 2, 4, 32, 10
	ts, srv, hy, X := newThroughputServer(t,
		CoalesceConfig{MaxBatch: 64, MaxDelay: 2 * time.Millisecond},
		AdmitConfig{MaxInflight: inflight, Queue: queue})

	want := make([]float64, len(X))
	for i, x := range X {
		y, err := hy.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = y
	}

	var ok, shed atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (w + it*clients) % len(X)
				resp, body := postPredict(t, ts.URL, map[string]any{"model": "grid-hybrid", "x": X[i]})
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					var out predictOut
					if err := json.Unmarshal(body, &out); err != nil {
						t.Error(err)
						return
					}
					if out.Y == nil || *out.Y != want[i] {
						t.Errorf("row %d: served %v, want %v", i, out.Y, want[i])
					}
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					t.Errorf("unexpected status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if ok.Load() == 0 {
		t.Fatal("no requests served under overload")
	}
	if shed.Load() == 0 {
		t.Fatal("no requests shed: overload never hit the admission bound")
	}
	if ok.Load()+shed.Load() != clients*iters {
		t.Fatalf("%d ok + %d shed != %d requests", ok.Load(), shed.Load(), clients*iters)
	}
	if peak := srv.Metrics.QueuePeakDepth.Load(); peak > queue {
		t.Fatalf("queue peaked at %d, above configured bound %d", peak, queue)
	}
	if d := srv.Metrics.QueueDepth.Load(); d != 0 {
		t.Fatalf("queue depth %d after drain, want 0", d)
	}
}

// TestCoalescedBadRowDoesNotPoisonBatch queues a wrong-arity row and a
// valid row into the same coalesced batch: the valid row must get its
// bit-identical answer, the bad row its own 400 — the per-row fallback
// of the flush error path.
func TestCoalescedBadRowDoesNotPoisonBatch(t *testing.T) {
	ts, _, hy, X := newThroughputServer(t,
		CoalesceConfig{MaxBatch: 2, MaxDelay: time.Second}, AdmitConfig{})

	var wg sync.WaitGroup
	wg.Add(2)
	var goodStatus, badStatus int
	var goodBody []byte
	go func() {
		defer wg.Done()
		resp, body := postPredict(t, ts.URL, map[string]any{"model": "grid-hybrid", "x": X[0]})
		goodStatus, goodBody = resp.StatusCode, body
	}()
	go func() {
		defer wg.Done()
		// Arity matches but the analytical model rejects non-positive
		// dimensions — an error the batch path reports for the whole
		// batch, exercising the per-row fallback.
		resp, _ := postPredict(t, ts.URL, map[string]any{"model": "grid-hybrid", "x": []float64{-1, 240, 160}})
		badStatus = resp.StatusCode
	}()
	wg.Wait()

	if badStatus != http.StatusBadRequest {
		t.Fatalf("bad row: status %d, want 400", badStatus)
	}
	if goodStatus != http.StatusOK {
		t.Fatalf("good row: status %d: %s", goodStatus, goodBody)
	}
	var out predictOut
	if err := json.Unmarshal(goodBody, &out); err != nil {
		t.Fatal(err)
	}
	want, err := hy.Predict(X[0])
	if err != nil {
		t.Fatal(err)
	}
	if out.Y == nil || *out.Y != want {
		t.Fatalf("good row served %v, want %v", out.Y, want)
	}
}

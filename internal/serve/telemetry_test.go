package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"

	"lam/internal/telemetry"
)

// scrapeStrict fetches /metrics and runs the strict exposition parser
// over the document.
func scrapeStrict(t *testing.T, base string) (*telemetry.Exposition, error) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return telemetry.ParseExposition(string(raw))
}

// TestMetricsExpositionUnderLoad drives concurrent predicts and
// observes while scraping /metrics: every intermediate document must
// strict-parse, and the final one must carry the per-model and
// per-version labeled series plus the served-accuracy quantiles.
func TestMetricsExpositionUnderLoad(t *testing.T) {
	ts, _, _, X := newOnlineTestServer(t)

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, body := postPredict(t, ts.URL, map[string]any{"model": "grid-hybrid", "x": X[i%len(X)]})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("predict: %d (%s)", resp.StatusCode, body)
					return
				}
				resp, body = postJSON(t, ts.URL+"/observe", map[string]any{"model": "grid-hybrid", "x": X[i%len(X)], "y": 0.5})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("observe: %d (%s)", resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := scrapeStrict(t, ts.URL); err != nil {
				t.Errorf("scrape %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()

	exp, err := scrapeStrict(t, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if f := exp.Family("lam_predict_requests_total"); f == nil || len(f.Samples) == 0 || f.Samples[0].Value < 30 {
		t.Fatalf("lam_predict_requests_total missing or low: %+v", f)
	}
	if f := exp.Family("lam_predict_latency_seconds"); f == nil || f.Type != "histogram" {
		t.Fatalf("predict latency histogram missing: %+v", f)
	}
	perModel := exp.Family("lam_model_predict_requests_total")
	if perModel == nil {
		t.Fatal("no lam_model_predict_requests_total family")
	}
	foundOK := false
	for _, s := range perModel.Samples {
		model, _ := s.Label("model")
		version, _ := s.Label("version")
		outcome, _ := s.Label("outcome")
		if model == "grid-hybrid" && version == "1" && outcome == "ok" && s.Value >= 30 {
			foundOK = true
		}
	}
	if !foundOK {
		t.Fatalf("no lam_model_predict_requests_total{model=grid-hybrid,version=1,outcome=ok} sample: %+v", perModel.Samples)
	}
	if f := exp.Family("lam_online_observations_total"); f == nil || len(f.Samples) == 0 || f.Samples[0].Value < 30 {
		t.Fatalf("lam_online_observations_total missing or low: %+v", f)
	}
	ape := exp.Family("lam_served_ape")
	if ape == nil || len(ape.Samples) == 0 {
		t.Fatalf("lam_served_ape missing after observations: %+v", ape)
	}
	quantiles := map[string]bool{}
	for _, s := range ape.Samples {
		model, _ := s.Label("model")
		if version, _ := s.Label("version"); model != "grid-hybrid" || version != "1" {
			t.Errorf("unexpected lam_served_ape labels: %+v", s.Labels)
		}
		q, _ := s.Label("quantile")
		quantiles[q] = true
	}
	for _, q := range []string{"0.5", "0.9", "0.99"} {
		if !quantiles[q] {
			t.Errorf("lam_served_ape is missing quantile %q (has %v)", q, quantiles)
		}
	}
}

// TestPredictTraceAdoption sends /predict under a client-minted trace
// ID: the response must echo it and /trace/recent must list the trace
// with a predict span and the resolved model version.
func TestPredictTraceAdoption(t *testing.T) {
	ts, _, _, X := newOnlineTestServer(t)
	id := telemetry.NewTraceID().String()

	body, _ := json.Marshal(map[string]any{"model": "grid-hybrid", "x": X[0]})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/predict", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(telemetry.TraceHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(telemetry.TraceHeader); got != id {
		t.Fatalf("response trace ID %q, want the client's %q", got, id)
	}

	r, err := http.Get(ts.URL + "/trace/recent")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var doc struct {
		Traces []telemetry.Record `json:"traces"`
	}
	if err := json.NewDecoder(r.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	for _, rec := range doc.Traces {
		if rec.TraceID != id {
			continue
		}
		if rec.Model != "grid-hybrid" || rec.Version != 1 {
			t.Errorf("trace resolved %s@v%d, want grid-hybrid@v1", rec.Model, rec.Version)
		}
		for _, sp := range rec.Spans {
			if sp.Name == "predict" {
				return
			}
		}
		t.Fatalf("trace %s has no predict span: %+v", id, rec.Spans)
	}
	t.Fatalf("/trace/recent does not list trace %s", id)
}

// Package serve is the HTTP prediction service behind cmd/lam-serve:
// a JSON API that loads trained models from a registry
// (internal/registry) and answers single and batched prediction
// requests bit-identical to the equivalent library calls — the handler
// funnels every request through the same registry.Model batch path the
// library exposes, so there is exactly one prediction code path.
//
// Endpoints:
//
//	GET  /healthz  — liveness: {"status":"ok","models":N}
//	GET  /models   — every stored model version's metadata
//	GET  /metrics  — request/coalesce/shed/cache/swap counters and the
//	                 /predict latency histogram (+ online-plane
//	                 counters when attached), flat JSON
//	POST /predict  — {"model":"name","version":2,"x":[…]} or
//	                 {"model":"name","batch":[[…],[…]]}
//
// With an online adaptation plane attached (AttachOnline; lam-serve
// -online):
//
//	POST /observe              — ground-truth ingest: {"model":…,
//	                             "x":[…],"y":0.12} or {"model":…,
//	                             "batch":[[…]],"y_batch":[…]}
//	GET  /models/{name}/drift  — the model's sliding-window accuracy,
//	                             detector and retrain state
//
// # Throughput plane
//
// Two optional layers sit in front of the prediction path; both are
// configured on Server before Handler is called and both default off.
//
// Micro-batch coalescing (CoalesceConfig): concurrent single-row
// /predict requests that resolve to the same loaded model are queued
// and scored as one batch — flushed when MaxBatch rows accumulate or
// MaxDelay (default 1ms) elapses, whichever is first — then fanned
// back out to their requests. Because batch prediction is bit-identical
// to row-at-a-time prediction for every estimator in this repository
// (the internal/parallel and internal/ml determinism contract), a
// coalesced response is byte-for-byte the response the request would
// have received alone; coalescing trades at most MaxDelay of added
// latency for the compiled plane's tree-major batch throughput. If a
// batch fails, rows are re-scored individually so a malformed row
// returns its own error and never poisons batch-mates.
//
// Admission control (AdmitConfig): at most MaxInflight /predict
// requests execute concurrently, at most Queue more wait for a slot,
// and everything beyond is shed immediately with 429 + Retry-After —
// never a wrong or late answer. Queue depth, its high-water mark, and
// the shed count are exported via /metrics.
//
// The request context is threaded into the batch predictor, so a
// dropped client connection cancels the in-flight prediction between
// rows (a coalesced row is the exception: its flush completes on a
// background context so batch-mates are unaffected, and only the wait
// is abandoned). "Latest" requests are served through a per-name
// atomic model pointer: a newly published version — whether written by
// an external process or republished by the online plane's retrainer —
// is swapped in without any lock on the predict path, so in-flight
// requests finish on the old compiled ensemble while new requests get
// the new one, and the served version never moves backwards.
// Version-pinned requests go through a small bounded cache.
package serve

//go:build !race

package serve

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under -race because instrumentation perturbs
// the counts.
const raceEnabled = false

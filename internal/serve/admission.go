package serve

import (
	"context"
	"errors"
	"fmt"

	"lam/internal/lamerr"
)

// AdmitConfig bounds /predict concurrency: MaxInflight requests may
// execute at once, Queue more may wait for a slot, and everything
// beyond that is shed immediately with 429 + Retry-After. Shedding is
// the overload contract — a client gets a fast, honest "try again"
// instead of an unbounded queueing delay, and the server's memory and
// latency stay bounded no matter the offered load.
type AdmitConfig struct {
	// MaxInflight is the number of /predict requests allowed to execute
	// concurrently (including time spent waiting inside the coalescer).
	// <= 0 disables admission control entirely.
	MaxInflight int
	// Queue is the number of requests beyond MaxInflight allowed to
	// wait for an in-flight slot. <= 0 means no waiting room: every
	// request past the in-flight budget is shed.
	Queue int
}

func (c AdmitConfig) enabled() bool { return c.MaxInflight > 0 }

// errOverloaded is the shed signal mapped to 429 by the handler.
var errOverloaded = errors.New("server overloaded: in-flight and queue budgets exhausted")

// admission is a semaphore with a bounded wait queue. The fast path
// (a free slot) is one non-blocking channel send; the queue is
// accounted with an atomic gauge so /metrics can report live and peak
// depth.
type admission struct {
	cfg     AdmitConfig
	slots   chan struct{}
	metrics *Metrics
}

func newAdmission(cfg AdmitConfig, m *Metrics) *admission {
	return &admission{cfg: cfg, slots: make(chan struct{}, cfg.MaxInflight), metrics: m}
}

// admit acquires an in-flight slot, waiting in the bounded queue if
// necessary. It returns a release func on success; errOverloaded when
// both the in-flight budget and the queue are full; a cancellation
// error if the client gives up while queued.
func (a *admission) admit(ctx context.Context) (func(), error) {
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	default:
	}
	// All slots busy: claim a queue place or shed. The gauge is the
	// queue — claiming is a bounded atomic increment, so a burst can
	// never grow the waiting set past cfg.Queue.
	for {
		d := a.metrics.QueueDepth.Load()
		if d >= int64(a.cfg.Queue) {
			a.metrics.Shed.Add(1)
			return nil, errOverloaded
		}
		if a.metrics.QueueDepth.CompareAndSwap(d, d+1) {
			a.metrics.QueuePeakDepth.SetMax(d + 1)
			break
		}
	}
	defer a.metrics.QueueDepth.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("serve: %w: %w", lamerr.ErrCancelled, ctx.Err())
	}
}

func (a *admission) release() { <-a.slots }

package serve

import (
	"lam/internal/telemetry"
)

// Metrics is the server's counter set. Every field is a handle into
// the server's telemetry.Registry, resolved once at construction: the
// predict hot path increments them lock-free and allocation-free, and
// GET /metrics renders the same slots as Prometheus text.
type Metrics struct {
	// PredictRequests counts POST /predict requests (single and batch).
	PredictRequests *telemetry.Counter
	// PredictBatchRequests counts the batched subset.
	PredictBatchRequests *telemetry.Counter
	// PredictRows counts scored rows across single and batch requests.
	PredictRows *telemetry.Counter
	// PredictErrors counts /predict requests answered with an error.
	// Shed requests (429) are deliberate and counted in Shed instead.
	PredictErrors *telemetry.Counter
	// PredictLatency is the /predict wall-time histogram
	// (decode→encode), on the shared telemetry bucket ladder.
	PredictLatency *telemetry.Histogram
	// ObserveRequests / ObserveRows mirror the ingest endpoint.
	ObserveRequests *telemetry.Counter
	ObserveRows     *telemetry.Counter
	ObserveErrors   *telemetry.Counter
	// ModelCacheHits / Misses count resolved-model lookups served from
	// memory vs. loaded from disk (latest pointer and pinned cache).
	ModelCacheHits   *telemetry.Counter
	ModelCacheMisses *telemetry.Counter
	// ModelCacheEvictions counts pinned-cache evictions.
	ModelCacheEvictions *telemetry.Counter
	// ModelSwaps counts latest-pointer replacements — each is one hot
	// swap of a newly published version.
	ModelSwaps *telemetry.Counter

	// CoalescedRequests counts single-row /predict requests that went
	// through the micro-batch coalescer (every single when coalescing
	// is on).
	CoalescedRequests *telemetry.Counter
	// CoalesceFlushes counts scored batches; CoalesceRows the rows in
	// them. CoalesceRows / CoalesceFlushes is the mean flush size — the
	// number to watch when tuning MaxBatch/MaxDelay.
	CoalesceFlushes *telemetry.Counter
	CoalesceRows    *telemetry.Counter
	// CoalesceMaxFlush is the largest flush observed; it can never
	// exceed the configured MaxBatch.
	CoalesceMaxFlush *telemetry.Gauge

	// Shed counts requests rejected with 429 because both the in-flight
	// budget and the wait queue were full.
	Shed *telemetry.Counter
	// QueueDepth is the live number of requests waiting for an
	// in-flight slot; QueuePeakDepth its high-water mark. The depth can
	// never exceed the configured Queue.
	QueueDepth     *telemetry.Gauge
	QueuePeakDepth *telemetry.Gauge
}

// newMetrics registers every serve-level family on reg and returns the
// resolved handles.
func newMetrics(reg *telemetry.Registry) Metrics {
	return Metrics{
		PredictRequests:      reg.Counter("lam_predict_requests_total", "POST /predict requests (single and batch)"),
		PredictBatchRequests: reg.Counter("lam_predict_batch_requests_total", "Batched /predict requests"),
		PredictRows:          reg.Counter("lam_predict_rows_total", "Rows scored across single and batch /predict requests"),
		PredictErrors:        reg.Counter("lam_predict_errors_total", "/predict requests answered with an error (429 sheds counted separately)"),
		PredictLatency:       reg.Histogram("lam_predict_latency_seconds", "/predict wall time, decode to encode"),
		ObserveRequests:      reg.Counter("lam_observe_requests_total", "POST /observe requests"),
		ObserveRows:          reg.Counter("lam_observe_rows_total", "Observations ingested"),
		ObserveErrors:        reg.Counter("lam_observe_errors_total", "/observe requests answered with an error"),
		ModelCacheHits:       reg.Counter("lam_model_cache_hits_total", "Model resolutions served from memory"),
		ModelCacheMisses:     reg.Counter("lam_model_cache_misses_total", "Model resolutions that loaded from disk"),
		ModelCacheEvictions:  reg.Counter("lam_model_cache_evictions_total", "Pinned-cache evictions"),
		ModelSwaps:           reg.Counter("lam_model_swaps_total", "Hot swaps of a newly published version into the latest pointer"),
		CoalescedRequests:    reg.Counter("lam_coalesced_requests_total", "Single-row /predict requests that went through the coalescer"),
		CoalesceFlushes:      reg.Counter("lam_coalesce_flushes_total", "Coalesced batches scored"),
		CoalesceRows:         reg.Counter("lam_coalesce_rows_total", "Rows scored inside coalesced batches"),
		CoalesceMaxFlush:     reg.Gauge("lam_coalesce_max_flush", "Largest coalesced flush observed"),
		Shed:                 reg.Counter("lam_shed_total", "Requests rejected 429: in-flight and queue budgets exhausted"),
		QueueDepth:           reg.Gauge("lam_queue_depth", "Requests currently waiting for an in-flight slot"),
		QueuePeakDepth:       reg.Gauge("lam_queue_peak_depth", "High-water mark of the admission wait queue"),
	}
}

// modelTelemetry is the per-(model, version) labeled series bundle,
// resolved once per loaded model and cached keyed by the loaded
// *registry.Model — a pointer-keyed sync.Map lookup, so the hot path
// pays no per-request allocation for labels.
type modelTelemetry struct {
	ok   *telemetry.Counter
	err  *telemetry.Counter
	rows *telemetry.Counter
}

package serve

import (
	"net/http"
	"sync/atomic"
	"time"

	"lam/internal/online"
)

// maxUint64 is an atomic high-water-mark tracker.
type maxUint64 struct{ atomic.Uint64 }

func (g *maxUint64) max(v uint64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// maxInt64 is an atomic high-water-mark tracker for signed gauges.
type maxInt64 struct{ atomic.Int64 }

func (g *maxInt64) max(v int64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// latencyBucketBoundsNs are the upper bounds (inclusive, nanoseconds)
// of the /predict latency histogram; the final implicit bucket is
// +Inf. Quarter-millisecond through one second in 4x steps covers
// everything from a coalesced cache-hot single row to a worst-case
// cold batch.
var latencyBucketBoundsNs = [...]uint64{
	250_000,       // 0.25ms
	1_000_000,     // 1ms
	4_000_000,     // 4ms
	16_000_000,    // 16ms
	64_000_000,    // 64ms
	256_000_000,   // 256ms
	1_000_000_000, // 1s
}

// numLatencyBuckets includes the +Inf overflow bucket.
const numLatencyBuckets = len(latencyBucketBoundsNs) + 1

// Metrics is the server's counter set, exposed as a flat expvar-style
// JSON document at GET /metrics. Counters are atomics: the predict hot
// path increments them lock-free and allocation-free.
type Metrics struct {
	// PredictRequests counts POST /predict requests (single and batch).
	PredictRequests atomic.Uint64
	// PredictBatchRequests counts the batched subset.
	PredictBatchRequests atomic.Uint64
	// PredictRows counts scored rows across single and batch requests.
	PredictRows atomic.Uint64
	// PredictErrors counts /predict requests answered with an error.
	// Shed requests (429) are deliberate and counted in Shed instead.
	PredictErrors atomic.Uint64
	// PredictLatencyNs accumulates wall time spent in /predict
	// handling (decode→encode); divide by PredictRequests for the mean.
	PredictLatencyNs atomic.Uint64
	// PredictLatencyBuckets is the /predict latency histogram. Stored
	// counts are per-interval (bucket i counts requests in
	// (latencyBucketBoundsNs[i-1], latencyBucketBoundsNs[i]]; the last
	// bucket is the +Inf overflow) so the hot path is one increment;
	// the /metrics JSON accumulates them into cumulative
	// Prometheus-style le_ns counts.
	PredictLatencyBuckets [numLatencyBuckets]atomic.Uint64
	// ObserveRequests / ObserveRows mirror the ingest endpoint.
	ObserveRequests atomic.Uint64
	ObserveRows     atomic.Uint64
	ObserveErrors   atomic.Uint64
	// ModelCacheHits / Misses count resolved-model lookups served from
	// memory vs. loaded from disk (latest pointer and pinned cache).
	ModelCacheHits   atomic.Uint64
	ModelCacheMisses atomic.Uint64
	// ModelCacheEvictions counts pinned-cache evictions.
	ModelCacheEvictions atomic.Uint64
	// ModelSwaps counts latest-pointer replacements — each is one hot
	// swap of a newly published version.
	ModelSwaps atomic.Uint64

	// CoalescedRequests counts single-row /predict requests that went
	// through the micro-batch coalescer (every single when coalescing
	// is on).
	CoalescedRequests atomic.Uint64
	// CoalesceFlushes counts scored batches; CoalesceRows the rows in
	// them. CoalesceRows / CoalesceFlushes is the mean flush size — the
	// number to watch when tuning MaxBatch/MaxDelay.
	CoalesceFlushes atomic.Uint64
	CoalesceRows    atomic.Uint64
	// CoalesceMaxFlush is the largest flush observed; it can never
	// exceed the configured MaxBatch.
	CoalesceMaxFlush maxUint64

	// Shed counts requests rejected with 429 because both the in-flight
	// budget and the wait queue were full.
	Shed atomic.Uint64
	// QueueDepth is the live number of requests waiting for an
	// in-flight slot; QueuePeakDepth its high-water mark. The depth can
	// never exceed the configured Queue.
	QueueDepth     atomic.Int64
	QueuePeakDepth maxInt64
}

// observePredictLatency records one /predict round into the total and
// the histogram.
func (m *Metrics) observePredictLatency(d time.Duration) {
	ns := uint64(d)
	m.PredictLatencyNs.Add(ns)
	for i, b := range latencyBucketBoundsNs {
		if ns <= b {
			m.PredictLatencyBuckets[i].Add(1)
			return
		}
	}
	m.PredictLatencyBuckets[numLatencyBuckets-1].Add(1)
}

// latencyBucket is one histogram entry in the /metrics JSON: Count is
// cumulative — the number of requests that took <= LeNs. LeNs nil
// marks the +Inf bucket, whose count equals the total request count.
type latencyBucket struct {
	LeNs  *uint64 `json:"le_ns"`
	Count uint64  `json:"count"`
}

// metricsSnapshot is the JSON shape of GET /metrics. Request counters
// always present; the online section appears when the plane is
// attached.
type metricsSnapshot struct {
	PredictRequests       uint64          `json:"predict_requests"`
	PredictBatchRequests  uint64          `json:"predict_batch_requests"`
	PredictRows           uint64          `json:"predict_rows"`
	PredictErrors         uint64          `json:"predict_errors"`
	PredictLatencyNs      uint64          `json:"predict_latency_ns_total"`
	PredictLatencyBuckets []latencyBucket `json:"predict_latency_buckets"`
	ObserveRequests       uint64          `json:"observe_requests"`
	ObserveRows           uint64          `json:"observe_rows"`
	ObserveErrors         uint64          `json:"observe_errors"`
	ModelCacheHits        uint64          `json:"model_cache_hits"`
	ModelCacheMisses      uint64          `json:"model_cache_misses"`
	ModelCacheEvictions   uint64          `json:"model_cache_evictions"`
	ModelSwaps            uint64          `json:"model_swaps"`

	CoalescedRequests uint64 `json:"coalesced_requests"`
	CoalesceFlushes   uint64 `json:"coalesce_flushes"`
	CoalesceRows      uint64 `json:"coalesce_rows"`
	CoalesceMaxFlush  uint64 `json:"coalesce_max_flush"`
	Shed              uint64 `json:"shed"`
	QueueDepth        int64  `json:"queue_depth"`
	QueuePeakDepth    int64  `json:"queue_peak_depth"`

	Online *online.Counters `json:"online,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := &s.Metrics
	buckets := make([]latencyBucket, numLatencyBuckets)
	var cum uint64
	for i := range latencyBucketBoundsNs {
		le := latencyBucketBoundsNs[i]
		cum += m.PredictLatencyBuckets[i].Load()
		buckets[i] = latencyBucket{LeNs: &le, Count: cum}
	}
	cum += m.PredictLatencyBuckets[numLatencyBuckets-1].Load()
	buckets[numLatencyBuckets-1] = latencyBucket{Count: cum}
	snap := metricsSnapshot{
		PredictRequests:       m.PredictRequests.Load(),
		PredictBatchRequests:  m.PredictBatchRequests.Load(),
		PredictRows:           m.PredictRows.Load(),
		PredictErrors:         m.PredictErrors.Load(),
		PredictLatencyNs:      m.PredictLatencyNs.Load(),
		PredictLatencyBuckets: buckets,
		ObserveRequests:       m.ObserveRequests.Load(),
		ObserveRows:           m.ObserveRows.Load(),
		ObserveErrors:         m.ObserveErrors.Load(),
		ModelCacheHits:        m.ModelCacheHits.Load(),
		ModelCacheMisses:      m.ModelCacheMisses.Load(),
		ModelCacheEvictions:   m.ModelCacheEvictions.Load(),
		ModelSwaps:            m.ModelSwaps.Load(),
		CoalescedRequests:     m.CoalescedRequests.Load(),
		CoalesceFlushes:       m.CoalesceFlushes.Load(),
		CoalesceRows:          m.CoalesceRows.Load(),
		CoalesceMaxFlush:      m.CoalesceMaxFlush.Load(),
		Shed:                  m.Shed.Load(),
		QueueDepth:            m.QueueDepth.Load(),
		QueuePeakDepth:        m.QueuePeakDepth.Load(),
	}
	if s.online != nil {
		c := s.online.Counters()
		snap.Online = &c
	}
	writeJSON(w, http.StatusOK, snap)
}

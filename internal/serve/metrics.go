package serve

import (
	"net/http"
	"sync/atomic"

	"lam/internal/online"
)

// Metrics is the server's counter set, exposed as a flat expvar-style
// JSON document at GET /metrics. Counters are atomics: the predict hot
// path increments them lock-free and allocation-free.
type Metrics struct {
	// PredictRequests counts POST /predict requests (single and batch).
	PredictRequests atomic.Uint64
	// PredictBatchRequests counts the batched subset.
	PredictBatchRequests atomic.Uint64
	// PredictRows counts scored rows across single and batch requests.
	PredictRows atomic.Uint64
	// PredictErrors counts /predict requests answered with an error.
	PredictErrors atomic.Uint64
	// PredictLatencyNs accumulates wall time spent in /predict
	// handling (decode→encode); divide by PredictRequests for the mean.
	PredictLatencyNs atomic.Uint64
	// ObserveRequests / ObserveRows mirror the ingest endpoint.
	ObserveRequests atomic.Uint64
	ObserveRows     atomic.Uint64
	ObserveErrors   atomic.Uint64
	// ModelCacheHits / Misses count resolved-model lookups served from
	// memory vs. loaded from disk (latest pointer and pinned cache).
	ModelCacheHits   atomic.Uint64
	ModelCacheMisses atomic.Uint64
	// ModelCacheEvictions counts pinned-cache evictions.
	ModelCacheEvictions atomic.Uint64
	// ModelSwaps counts latest-pointer replacements — each is one hot
	// swap of a newly published version.
	ModelSwaps atomic.Uint64
}

// metricsSnapshot is the JSON shape of GET /metrics. Request counters
// always present; the online section appears when the plane is
// attached.
type metricsSnapshot struct {
	PredictRequests      uint64 `json:"predict_requests"`
	PredictBatchRequests uint64 `json:"predict_batch_requests"`
	PredictRows          uint64 `json:"predict_rows"`
	PredictErrors        uint64 `json:"predict_errors"`
	PredictLatencyNs     uint64 `json:"predict_latency_ns_total"`
	ObserveRequests      uint64 `json:"observe_requests"`
	ObserveRows          uint64 `json:"observe_rows"`
	ObserveErrors        uint64 `json:"observe_errors"`
	ModelCacheHits       uint64 `json:"model_cache_hits"`
	ModelCacheMisses     uint64 `json:"model_cache_misses"`
	ModelCacheEvictions  uint64 `json:"model_cache_evictions"`
	ModelSwaps           uint64 `json:"model_swaps"`

	Online *online.Counters `json:"online,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := &s.Metrics
	snap := metricsSnapshot{
		PredictRequests:      m.PredictRequests.Load(),
		PredictBatchRequests: m.PredictBatchRequests.Load(),
		PredictRows:          m.PredictRows.Load(),
		PredictErrors:        m.PredictErrors.Load(),
		PredictLatencyNs:     m.PredictLatencyNs.Load(),
		ObserveRequests:      m.ObserveRequests.Load(),
		ObserveRows:          m.ObserveRows.Load(),
		ObserveErrors:        m.ObserveErrors.Load(),
		ModelCacheHits:       m.ModelCacheHits.Load(),
		ModelCacheMisses:     m.ModelCacheMisses.Load(),
		ModelCacheEvictions:  m.ModelCacheEvictions.Load(),
		ModelSwaps:           m.ModelSwaps.Load(),
	}
	if s.online != nil {
		c := s.online.Counters()
		snap.Online = &c
	}
	writeJSON(w, http.StatusOK, snap)
}

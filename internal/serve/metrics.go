package serve

import (
	"net/http"

	"lam/internal/online"
	"lam/internal/telemetry"
)

// Metrics is the server's counter set. Every field is a handle into
// the server's telemetry.Registry, resolved once at construction: the
// predict hot path increments them lock-free and allocation-free, and
// GET /metrics renders the same slots as Prometheus text (or the
// legacy JSON document at /metrics?format=json).
type Metrics struct {
	// PredictRequests counts POST /predict requests (single and batch).
	PredictRequests *telemetry.Counter
	// PredictBatchRequests counts the batched subset.
	PredictBatchRequests *telemetry.Counter
	// PredictRows counts scored rows across single and batch requests.
	PredictRows *telemetry.Counter
	// PredictErrors counts /predict requests answered with an error.
	// Shed requests (429) are deliberate and counted in Shed instead.
	PredictErrors *telemetry.Counter
	// PredictLatency is the /predict wall-time histogram
	// (decode→encode), on the shared telemetry bucket ladder.
	PredictLatency *telemetry.Histogram
	// ObserveRequests / ObserveRows mirror the ingest endpoint.
	ObserveRequests *telemetry.Counter
	ObserveRows     *telemetry.Counter
	ObserveErrors   *telemetry.Counter
	// ModelCacheHits / Misses count resolved-model lookups served from
	// memory vs. loaded from disk (latest pointer and pinned cache).
	ModelCacheHits   *telemetry.Counter
	ModelCacheMisses *telemetry.Counter
	// ModelCacheEvictions counts pinned-cache evictions.
	ModelCacheEvictions *telemetry.Counter
	// ModelSwaps counts latest-pointer replacements — each is one hot
	// swap of a newly published version.
	ModelSwaps *telemetry.Counter

	// CoalescedRequests counts single-row /predict requests that went
	// through the micro-batch coalescer (every single when coalescing
	// is on).
	CoalescedRequests *telemetry.Counter
	// CoalesceFlushes counts scored batches; CoalesceRows the rows in
	// them. CoalesceRows / CoalesceFlushes is the mean flush size — the
	// number to watch when tuning MaxBatch/MaxDelay.
	CoalesceFlushes *telemetry.Counter
	CoalesceRows    *telemetry.Counter
	// CoalesceMaxFlush is the largest flush observed; it can never
	// exceed the configured MaxBatch.
	CoalesceMaxFlush *telemetry.Gauge

	// Shed counts requests rejected with 429 because both the in-flight
	// budget and the wait queue were full.
	Shed *telemetry.Counter
	// QueueDepth is the live number of requests waiting for an
	// in-flight slot; QueuePeakDepth its high-water mark. The depth can
	// never exceed the configured Queue.
	QueueDepth     *telemetry.Gauge
	QueuePeakDepth *telemetry.Gauge
}

// newMetrics registers every serve-level family on reg and returns the
// resolved handles.
func newMetrics(reg *telemetry.Registry) Metrics {
	return Metrics{
		PredictRequests:      reg.Counter("lam_predict_requests_total", "POST /predict requests (single and batch)"),
		PredictBatchRequests: reg.Counter("lam_predict_batch_requests_total", "Batched /predict requests"),
		PredictRows:          reg.Counter("lam_predict_rows_total", "Rows scored across single and batch /predict requests"),
		PredictErrors:        reg.Counter("lam_predict_errors_total", "/predict requests answered with an error (429 sheds counted separately)"),
		PredictLatency:       reg.Histogram("lam_predict_latency_seconds", "/predict wall time, decode to encode"),
		ObserveRequests:      reg.Counter("lam_observe_requests_total", "POST /observe requests"),
		ObserveRows:          reg.Counter("lam_observe_rows_total", "Observations ingested"),
		ObserveErrors:        reg.Counter("lam_observe_errors_total", "/observe requests answered with an error"),
		ModelCacheHits:       reg.Counter("lam_model_cache_hits_total", "Model resolutions served from memory"),
		ModelCacheMisses:     reg.Counter("lam_model_cache_misses_total", "Model resolutions that loaded from disk"),
		ModelCacheEvictions:  reg.Counter("lam_model_cache_evictions_total", "Pinned-cache evictions"),
		ModelSwaps:           reg.Counter("lam_model_swaps_total", "Hot swaps of a newly published version into the latest pointer"),
		CoalescedRequests:    reg.Counter("lam_coalesced_requests_total", "Single-row /predict requests that went through the coalescer"),
		CoalesceFlushes:      reg.Counter("lam_coalesce_flushes_total", "Coalesced batches scored"),
		CoalesceRows:         reg.Counter("lam_coalesce_rows_total", "Rows scored inside coalesced batches"),
		CoalesceMaxFlush:     reg.Gauge("lam_coalesce_max_flush", "Largest coalesced flush observed"),
		Shed:                 reg.Counter("lam_shed_total", "Requests rejected 429: in-flight and queue budgets exhausted"),
		QueueDepth:           reg.Gauge("lam_queue_depth", "Requests currently waiting for an in-flight slot"),
		QueuePeakDepth:       reg.Gauge("lam_queue_peak_depth", "High-water mark of the admission wait queue"),
	}
}

// modelTelemetry is the per-(model, version) labeled series bundle,
// resolved once per loaded model and cached keyed by the loaded
// *registry.Model — a pointer-keyed sync.Map lookup, so the hot path
// pays no per-request allocation for labels.
type modelTelemetry struct {
	ok   *telemetry.Counter
	err  *telemetry.Counter
	rows *telemetry.Counter
}

// latencyBucket is one histogram entry in the legacy /metrics JSON:
// Count is cumulative — the number of requests that took <= LeNs. LeNs
// nil marks the +Inf bucket, whose count equals the total request
// count. Bounds come from the shared telemetry ladder.
type latencyBucket struct {
	LeNs  *uint64 `json:"le_ns"`
	Count uint64  `json:"count"`
}

// metricsSnapshot is the JSON shape of GET /metrics?format=json — the
// pre-telemetry document, kept for one release. Request counters
// always present; the online section appears when the plane is
// attached.
type metricsSnapshot struct {
	PredictRequests       uint64          `json:"predict_requests"`
	PredictBatchRequests  uint64          `json:"predict_batch_requests"`
	PredictRows           uint64          `json:"predict_rows"`
	PredictErrors         uint64          `json:"predict_errors"`
	PredictLatencyNs      uint64          `json:"predict_latency_ns_total"`
	PredictLatencyBuckets []latencyBucket `json:"predict_latency_buckets"`
	ObserveRequests       uint64          `json:"observe_requests"`
	ObserveRows           uint64          `json:"observe_rows"`
	ObserveErrors         uint64          `json:"observe_errors"`
	ModelCacheHits        uint64          `json:"model_cache_hits"`
	ModelCacheMisses      uint64          `json:"model_cache_misses"`
	ModelCacheEvictions   uint64          `json:"model_cache_evictions"`
	ModelSwaps            uint64          `json:"model_swaps"`

	CoalescedRequests uint64 `json:"coalesced_requests"`
	CoalesceFlushes   uint64 `json:"coalesce_flushes"`
	CoalesceRows      uint64 `json:"coalesce_rows"`
	CoalesceMaxFlush  int64  `json:"coalesce_max_flush"`
	Shed              uint64 `json:"shed"`
	QueueDepth        int64  `json:"queue_depth"`
	QueuePeakDepth    int64  `json:"queue_peak_depth"`

	Online *online.Counters `json:"online,omitempty"`
}

// handleMetricsJSON serves the legacy JSON document, dispatched by the
// telemetry handler on /metrics?format=json.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	m := &s.Metrics
	bounds := m.PredictLatency.BoundsNs()
	cum := m.PredictLatency.Cumulative()
	buckets := make([]latencyBucket, len(cum))
	for i := range bounds {
		le := bounds[i]
		buckets[i] = latencyBucket{LeNs: &le, Count: cum[i]}
	}
	buckets[len(cum)-1] = latencyBucket{Count: cum[len(cum)-1]}
	snap := metricsSnapshot{
		PredictRequests:       m.PredictRequests.Load(),
		PredictBatchRequests:  m.PredictBatchRequests.Load(),
		PredictRows:           m.PredictRows.Load(),
		PredictErrors:         m.PredictErrors.Load(),
		PredictLatencyNs:      m.PredictLatency.SumNs(),
		PredictLatencyBuckets: buckets,
		ObserveRequests:       m.ObserveRequests.Load(),
		ObserveRows:           m.ObserveRows.Load(),
		ObserveErrors:         m.ObserveErrors.Load(),
		ModelCacheHits:        m.ModelCacheHits.Load(),
		ModelCacheMisses:      m.ModelCacheMisses.Load(),
		ModelCacheEvictions:   m.ModelCacheEvictions.Load(),
		ModelSwaps:            m.ModelSwaps.Load(),
		CoalescedRequests:     m.CoalescedRequests.Load(),
		CoalesceFlushes:       m.CoalesceFlushes.Load(),
		CoalesceRows:          m.CoalesceRows.Load(),
		CoalesceMaxFlush:      m.CoalesceMaxFlush.Load(),
		Shed:                  m.Shed.Load(),
		QueueDepth:            m.QueueDepth.Load(),
		QueuePeakDepth:        m.QueuePeakDepth.Load(),
	}
	if s.online != nil {
		c := s.online.Counters()
		snap.Online = &c
	}
	writeJSON(w, http.StatusOK, snap)
}

// Package serve is the HTTP prediction service behind cmd/lam-serve:
// a JSON API that loads trained models from a registry
// (internal/registry) and answers single and batched prediction
// requests bit-identical to the equivalent library calls — the handler
// funnels every request through the same registry.Model batch path the
// library exposes, so there is exactly one prediction code path.
//
// Endpoints:
//
//	GET  /healthz  — liveness: {"status":"ok","models":N}
//	GET  /models   — every stored model version's metadata
//	POST /predict  — {"model":"name","version":2,"x":[…]} or
//	                 {"model":"name","batch":[[…],[…]]}
//
// The request context is threaded into the batch predictor, so a
// dropped client connection cancels the in-flight prediction between
// rows. Loaded models are cached per (name, version); "latest" is
// re-resolved on every request so a new save becomes visible without a
// restart.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"lam/internal/lamerr"
	"lam/internal/ml"
	"lam/internal/registry"
)

// Server serves predictions from one registry.
type Server struct {
	reg *registry.Registry
	// Workers bounds per-request batch parallelism for regressor
	// models; <= 0 means the process default.
	Workers int

	mu    sync.RWMutex
	cache map[string]*registry.Model // key: name@version
}

// New returns a server backed by reg.
func New(reg *registry.Registry) *Server {
	return &Server{reg: reg, cache: make(map[string]*registry.Model)}
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /models", s.handleModels)
	mux.HandleFunc("POST /predict", s.handlePredict)
	return mux
}

// load returns the cached model for (name, version), loading it on
// first use. version <= 0 first resolves to the latest stored version
// with a cheap directory scan — so "latest" requests still hit the
// deserialized-model cache, and a newly published version is picked up
// without a restart.
func (s *Server) load(name string, version int) (*registry.Model, error) {
	if version <= 0 {
		latest, err := s.reg.LatestVersion(name)
		if err != nil {
			return nil, err
		}
		version = latest
	}
	key := fmt.Sprintf("%s@%d", name, version)
	s.mu.RLock()
	m := s.cache[key]
	s.mu.RUnlock()
	if m != nil {
		return m, nil
	}
	m, err := s.reg.Load(name, version)
	if err != nil {
		return nil, err
	}
	m.Workers = s.Workers
	s.mu.Lock()
	if cached, ok := s.cache[key]; ok {
		m = cached // another request won the load race; keep one instance
	} else {
		s.cache[key] = m
		s.evictOldLocked(name)
	}
	s.mu.Unlock()
	return m, nil
}

// keepVersionsPerName bounds the cache per model name: the live
// workflow republishes models while the server runs, and without
// eviction every superseded deserialized ensemble would stay resident
// forever. Two versions cover the steady state (latest plus one pinned
// or draining predecessor); older pins are served correctly but reload
// on each cache miss.
const keepVersionsPerName = 2

// evictOldLocked drops all but the newest keepVersionsPerName cached
// versions of name. Caller holds s.mu.
func (s *Server) evictOldLocked(name string) {
	var versions []int
	prefix := name + "@"
	for key, m := range s.cache {
		if strings.HasPrefix(key, prefix) {
			versions = append(versions, m.Meta.Version)
		}
	}
	if len(versions) <= keepVersionsPerName {
		return
	}
	sort.Ints(versions)
	for _, v := range versions[:len(versions)-keepVersionsPerName] {
		delete(s.cache, fmt.Sprintf("%s@%d", name, v))
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxRequestBytes bounds a /predict request body (64 MiB ≈ a 400k-row
// batch of 20 features): without a cap, one oversized POST would be
// fully decoded into memory before any validation runs.
const maxRequestBytes = 64 << 20

// writeError maps the repository's typed sentinels to HTTP status
// codes and emits a JSON error body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var tooLarge *http.MaxBytesError
	switch {
	case errors.As(err, &tooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, lamerr.ErrBadRequest), errors.Is(err, lamerr.ErrDimension):
		status = http.StatusBadRequest
	case errors.Is(err, lamerr.ErrUnknownModel):
		status = http.StatusNotFound
	case errors.Is(err, lamerr.ErrCancelled):
		// The client is gone or gave up; 499 in nginx convention. The
		// response is moot but keeps logs truthful.
		status = 499
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// predictError classifies a prediction-time failure: cancellation and
// server-state faults (unfitted model) keep their classes, everything
// else on a well-formed request is input the model rejected (e.g. the
// analytical model refusing non-positive grid dimensions) and is the
// client's fault.
func predictError(err error) error {
	if errors.Is(err, lamerr.ErrCancelled) || errors.Is(err, lamerr.ErrNotFitted) {
		return err
	}
	if errors.Is(err, lamerr.ErrBadRequest) || errors.Is(err, lamerr.ErrDimension) {
		return err
	}
	return fmt.Errorf("serve: %w: %w", lamerr.ErrBadRequest, err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type healthzResponse struct {
	Status string `json:"status"`
	Models int    `json:"models"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness must stay cheap enough for tight probe loops: one
	// directory scan, no meta.json reads (unlike /models).
	names, err := s.reg.Names()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, healthzResponse{Status: "ok", Models: len(names)})
}

type modelsResponse struct {
	Models []registry.Meta `json:"models"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	metas, err := s.reg.List()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, modelsResponse{Models: metas})
}

// predictRequest carries one single-vector or batched prediction
// request. Exactly one of X and Batch must be set.
type predictRequest struct {
	// Model is the registry name. Required.
	Model string `json:"model"`
	// Version selects a stored version; 0 or absent means latest.
	Version int `json:"version,omitempty"`
	// X is a single feature vector.
	X []float64 `json:"x,omitempty"`
	// Batch is a list of feature vectors.
	Batch [][]float64 `json:"batch,omitempty"`
}

// predictResponse mirrors the request shape: Y for single, YBatch for
// batched. Values are encoded by encoding/json's shortest-round-trip
// float formatting, so decoding yields the library's float64 bits
// exactly.
type predictResponse struct {
	Model   string    `json:"model"`
	Version int       `json:"version"`
	Y       *float64  `json:"y,omitempty"`
	YBatch  []float64 `json:"y_batch,omitempty"`
}

// Batch output buffers come from the shared ml scratch pool: each
// /predict batch request checks one out, scores into it via the
// registry model's allocation-free PredictBatchInto, encodes the
// response, and returns it — so the serve batch hot path performs zero
// per-row allocations in steady state (the JSON decode of the request
// body is the only per-row cost left).

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("serve: %w: %w", lamerr.ErrBadRequest, err))
		return
	}
	if req.Model == "" {
		writeError(w, fmt.Errorf("serve: %w: missing \"model\"", lamerr.ErrBadRequest))
		return
	}
	single := req.X != nil
	if single == (len(req.Batch) > 0) {
		writeError(w, fmt.Errorf("serve: %w: exactly one of \"x\" and \"batch\" must be set", lamerr.ErrBadRequest))
		return
	}
	m, err := s.load(req.Model, req.Version)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := predictResponse{Model: m.Meta.Name, Version: m.Meta.Version}
	if single {
		y, err := m.Predict(r.Context(), req.X)
		if err != nil {
			writeError(w, predictError(err))
			return
		}
		resp.Y = &y
		writeJSON(w, http.StatusOK, resp)
		return
	}
	buf := ml.GetScratch(len(req.Batch))
	defer ml.PutScratch(buf)
	if err := m.PredictBatchInto(r.Context(), req.Batch, *buf); err != nil {
		writeError(w, predictError(err))
		return
	}
	resp.YBatch = *buf
	writeJSON(w, http.StatusOK, resp)
}

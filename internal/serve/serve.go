package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lam/internal/lamerr"
	"lam/internal/ml"
	"lam/internal/online"
	"lam/internal/registry"
)

// Server serves predictions from one registry.
type Server struct {
	reg *registry.Registry
	// Workers bounds per-request batch parallelism for regressor
	// models; <= 0 means the process default.
	Workers int
	// Layout is the traversal layout applied to every model the server
	// loads or swaps in (lam-serve -layout). LayoutDefault keeps the
	// process default (branchless implicit-left). A model that cannot
	// take the layout — e.g. a quantized layout over a non-tree or
	// already-quantized model — fails its load loudly rather than
	// serving with a silently different speed/accuracy profile.
	Layout ml.Layout
	// Metrics is the server's counter set (GET /metrics). Zero value
	// ready; exported so tests and embedders can read it.
	Metrics Metrics
	// Coalesce enables micro-batch coalescing of single-row /predict
	// requests when MaxBatch > 1 (see CoalesceConfig). Set before
	// Handler; the zero value leaves coalescing off.
	Coalesce CoalesceConfig
	// Admit bounds /predict concurrency when MaxInflight > 0 (see
	// AdmitConfig). Set before Handler; the zero value admits
	// everything.
	Admit AdmitConfig
	// WarmNames lists models that must be resident in the hot-swap
	// pointer before GET /readyz reports ready — the fleet-admission
	// gate a gateway health-checks before routing traffic here. Set
	// before Handler; Warm loads them.
	WarmNames []string
	// InjectLatency, when > 0, sleeps that long inside every /predict
	// while holding its admission slot. It is a fault-injection aid for
	// fleet and capacity testing (emulating slower replicas or
	// constrained hardware so routing, shedding and spill-over can be
	// exercised deterministically); it must stay 0 in production.
	InjectLatency time.Duration

	// online is the adaptation plane, nil until AttachOnline.
	online *online.Plane
	// co and admit are built by Handler from Coalesce and Admit.
	co    *coalescer
	admit *admission

	// latest holds one *atomic.Pointer[registry.Model] per name: the
	// hot-swap slot "latest" requests read lock-free.
	latest sync.Map
	// loading holds one *sync.Mutex per name, taken only while a stale
	// latest pointer is refreshed from disk: it single-flights the
	// artifact deserialization so a burst of cold requests costs one
	// decode, not one per request.
	loading sync.Map

	// mu guards the version-pinned cache only; the latest path never
	// takes it.
	mu    sync.RWMutex
	cache map[string]*registry.Model // key: name@version
}

// New returns a server backed by reg.
func New(reg *registry.Registry) *Server {
	return &Server{reg: reg, cache: make(map[string]*registry.Model)}
}

// AttachOnline wires an online adaptation plane into the server: the
// /observe and /models/{name}/drift endpoints start serving, and every
// version the plane's retrainer publishes is immediately swapped into
// the latest pointer. Call before Handler.
func (s *Server) AttachOnline(p *online.Plane) {
	s.online = p
	p.OnPublish = func(meta registry.Meta) {
		// Warm and swap eagerly so the first post-publish request does
		// not pay the deserialization; the per-request version check
		// would pick the new version up regardless.
		_, _ = s.Reload(meta.Name)
	}
}

// Handler returns the service's HTTP routes, materialising the
// coalescing and admission planes from the Coalesce and Admit configs.
func (s *Server) Handler() http.Handler {
	if s.Coalesce.enabled() {
		s.co = newCoalescer(s.Coalesce, &s.Metrics)
	}
	if s.Admit.enabled() {
		s.admit = newAdmission(s.Admit, &s.Metrics)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /models", s.handleModels)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /predict", s.handlePredict)
	if s.online != nil {
		mux.HandleFunc("POST /observe", s.handleObserve)
		mux.HandleFunc("GET /models/{name}/drift", s.handleDrift)
	}
	return mux
}

// load returns the model for (name, version). version <= 0 means the
// latest published version, served through the lock-free hot-swap
// pointer; pinned versions go through the bounded cache.
func (s *Server) load(name string, version int) (*registry.Model, error) {
	if version <= 0 {
		return s.loadLatest(name)
	}
	return s.loadPinned(name, version)
}

// loadLatest resolves name's newest published version (one cheap
// directory scan — no artifact read, no lock) and returns the model
// behind the name's atomic pointer, swapping a fresh load in when the
// pointer is stale. In-flight requests holding the previous *Model
// keep using it untouched: a swap is publication, not mutation.
func (s *Server) loadLatest(name string) (*registry.Model, error) {
	latest, err := s.reg.LatestVersion(name)
	if err != nil {
		return nil, err
	}
	p := s.latestPtr(name)
	if m := p.Load(); m != nil && m.Meta.Version >= latest {
		s.Metrics.ModelCacheHits.Add(1)
		return m, nil
	}
	return s.swapIn(name, latest)
}

func (s *Server) latestPtr(name string) *atomic.Pointer[registry.Model] {
	if v, ok := s.latest.Load(name); ok {
		return v.(*atomic.Pointer[registry.Model])
	}
	v, _ := s.latest.LoadOrStore(name, &atomic.Pointer[registry.Model]{})
	return v.(*atomic.Pointer[registry.Model])
}

// swapIn loads (name, version) from disk and publishes it to the
// name's latest pointer — unless a concurrent loader or publish got a
// newer version there first, in which case that one wins and is
// returned. Monotonicity means a client can never observe the served
// version move backwards. Loading is single-flighted per name: a cold
// or just-published model hit by a burst of requests is deserialized
// exactly once, with the rest of the burst waiting on the loader
// instead of each decoding its own copy.
func (s *Server) swapIn(name string, version int) (*registry.Model, error) {
	muAny, _ := s.loading.LoadOrStore(name, &sync.Mutex{})
	mu := muAny.(*sync.Mutex)
	mu.Lock()
	defer mu.Unlock()
	if cur := s.latestPtr(name).Load(); cur != nil && cur.Meta.Version >= version {
		// The loader we waited on already brought this version (or a
		// newer one) in.
		s.Metrics.ModelCacheHits.Add(1)
		return cur, nil
	}
	s.Metrics.ModelCacheMisses.Add(1)
	m, err := s.reg.Load(name, version)
	if err != nil {
		return nil, err
	}
	m.Workers = s.Workers
	if err := s.applyLayout(m); err != nil {
		return nil, err
	}
	p := s.latestPtr(name)
	for {
		cur := p.Load()
		if cur != nil && cur.Meta.Version >= m.Meta.Version {
			return cur, nil
		}
		if p.CompareAndSwap(cur, m) {
			if cur != nil {
				s.Metrics.ModelSwaps.Add(1)
			}
			return m, nil
		}
	}
}

// applyLayout relayouts a freshly loaded model per the server's Layout
// config, before the model is published to any request goroutine (both
// load paths call it while the model is still private to the loader).
func (s *Server) applyLayout(m *registry.Model) error {
	if s.Layout == ml.LayoutDefault {
		return nil // decode already applied the process default
	}
	if err := m.ApplyLayout(s.Layout); err != nil {
		return fmt.Errorf("serve: applying layout %v to %s@%d: %w", s.Layout, m.Meta.Name, m.Meta.Version, err)
	}
	return nil
}

// Reload force-resolves name's latest registry version into the hot
// pointer: the publish notification path of the online plane, also
// usable by embedders after an out-of-band registry write.
func (s *Server) Reload(name string) (*registry.Model, error) {
	latest, err := s.reg.LatestVersion(name)
	if err != nil {
		return nil, err
	}
	return s.swapIn(name, latest)
}

// loadPinned returns the cached model for an explicit (name, version),
// loading it on first use. A pin of the version the hot-swap pointer
// already serves as "latest" reuses that instance instead of holding a
// second deserialized copy of the same ensemble.
func (s *Server) loadPinned(name string, version int) (*registry.Model, error) {
	if v, ok := s.latest.Load(name); ok {
		if m := v.(*atomic.Pointer[registry.Model]).Load(); m != nil && m.Meta.Version == version {
			s.Metrics.ModelCacheHits.Add(1)
			return m, nil
		}
	}
	key := fmt.Sprintf("%s@%d", name, version)
	s.mu.RLock()
	m := s.cache[key]
	s.mu.RUnlock()
	if m != nil {
		s.Metrics.ModelCacheHits.Add(1)
		return m, nil
	}
	s.Metrics.ModelCacheMisses.Add(1)
	m, err := s.reg.Load(name, version)
	if err != nil {
		return nil, err
	}
	m.Workers = s.Workers
	if err := s.applyLayout(m); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if cached, ok := s.cache[key]; ok {
		m = cached // another request won the load race; keep one instance
	} else {
		s.cache[key] = m
		s.evictOldLocked(name)
	}
	s.mu.Unlock()
	return m, nil
}

// keepVersionsPerName bounds the pinned cache per model name: clients
// pinning historic versions would otherwise keep every superseded
// deserialized ensemble resident forever. Older pins are served
// correctly but reload on each cache miss.
const keepVersionsPerName = 2

// evictOldLocked drops all but the newest keepVersionsPerName cached
// versions of name. Caller holds s.mu.
func (s *Server) evictOldLocked(name string) {
	var versions []int
	prefix := name + "@"
	for key, m := range s.cache {
		if strings.HasPrefix(key, prefix) {
			versions = append(versions, m.Meta.Version)
		}
	}
	if len(versions) <= keepVersionsPerName {
		return
	}
	sort.Ints(versions)
	for _, v := range versions[:len(versions)-keepVersionsPerName] {
		delete(s.cache, fmt.Sprintf("%s@%d", name, v))
		s.Metrics.ModelCacheEvictions.Add(1)
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxRequestBytes bounds a /predict request body (64 MiB ≈ a 400k-row
// batch of 20 features): without a cap, one oversized POST would be
// fully decoded into memory before any validation runs.
const maxRequestBytes = 64 << 20

// writeError maps the repository's typed sentinels to HTTP status
// codes and emits a JSON error body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var tooLarge *http.MaxBytesError
	switch {
	case errors.As(err, &tooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, lamerr.ErrBadRequest), errors.Is(err, lamerr.ErrDimension):
		status = http.StatusBadRequest
	case errors.Is(err, lamerr.ErrUnknownModel):
		status = http.StatusNotFound
	case errors.Is(err, lamerr.ErrCancelled):
		// The client is gone or gave up; 499 in nginx convention. The
		// response is moot but keeps logs truthful.
		status = 499
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// predictError classifies a prediction-time failure: cancellation and
// server-state faults (unfitted model) keep their classes, everything
// else on a well-formed request is input the model rejected (e.g. the
// analytical model refusing non-positive grid dimensions) and is the
// client's fault.
func predictError(err error) error {
	if errors.Is(err, lamerr.ErrCancelled) || errors.Is(err, lamerr.ErrNotFitted) {
		return err
	}
	if errors.Is(err, lamerr.ErrBadRequest) || errors.Is(err, lamerr.ErrDimension) {
		return err
	}
	return fmt.Errorf("serve: %w: %w", lamerr.ErrBadRequest, err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type healthzResponse struct {
	Status string `json:"status"`
	Models int    `json:"models"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness must stay cheap enough for tight probe loops: one
	// directory scan, no meta.json reads (unlike /models).
	names, err := s.reg.Names()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, healthzResponse{Status: "ok", Models: len(names)})
}

// Warm force-loads every WarmNames model into its hot-swap pointer,
// returning the first load error. Call after construction (typically
// concurrently with serving — /readyz reports warming until every
// named model is resident, which is the point: a fleet gateway must
// not route here while cold loads are still paying artifact decodes).
func (s *Server) Warm() error {
	for _, name := range s.WarmNames {
		if _, err := s.Reload(name); err != nil {
			return fmt.Errorf("warming %s: %w", name, err)
		}
	}
	return nil
}

type readyzResponse struct {
	Status  string   `json:"status"`
	Models  int      `json:"models"`
	Warming []string `json:"warming,omitempty"`
}

// handleReadyz is readiness, distinct from /healthz liveness: ready
// means the registry is reachable AND every WarmNames model is
// resident in memory. A replica that is up but still paying cold-start
// decodes answers 503 here, so a fleet gateway keeps traffic off it
// until it can serve at full speed.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	names, err := s.reg.Names()
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, readyzResponse{Status: "registry unreachable"})
		return
	}
	var warming []string
	for _, name := range s.WarmNames {
		if m := s.latestPtr(name).Load(); m == nil {
			warming = append(warming, name)
		}
	}
	if len(warming) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, readyzResponse{
			Status: "warming", Models: len(names), Warming: warming,
		})
		return
	}
	writeJSON(w, http.StatusOK, readyzResponse{Status: "ready", Models: len(names)})
}

type modelsResponse struct {
	Models []registry.Meta `json:"models"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	metas, err := s.reg.List()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, modelsResponse{Models: metas})
}

// predictRequest carries one single-vector or batched prediction
// request. Exactly one of X and Batch must be set.
type predictRequest struct {
	// Model is the registry name. Required.
	Model string `json:"model"`
	// Version selects a stored version; 0 or absent means latest.
	Version int `json:"version,omitempty"`
	// X is a single feature vector.
	X []float64 `json:"x,omitempty"`
	// Batch is a list of feature vectors.
	Batch [][]float64 `json:"batch,omitempty"`
}

// predictResponse mirrors the request shape: Y for single, YBatch for
// batched. Values are encoded by encoding/json's shortest-round-trip
// float formatting, so decoding yields the library's float64 bits
// exactly.
type predictResponse struct {
	Model   string    `json:"model"`
	Version int       `json:"version"`
	Y       *float64  `json:"y,omitempty"`
	YBatch  []float64 `json:"y_batch,omitempty"`
}

// Batch output buffers come from the shared ml scratch pool: each
// /predict batch request checks one out, scores into it via the
// registry model's allocation-free PredictBatchInto, encodes the
// response, and returns it — so the serve batch hot path performs zero
// per-row allocations in steady state (the JSON decode of the request
// body is the only per-row cost left).

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.Metrics.PredictRequests.Add(1)
	defer func() { s.Metrics.observePredictLatency(time.Since(start)) }()
	fail := func(err error) {
		s.Metrics.PredictErrors.Add(1)
		writeError(w, err)
	}
	if s.admit != nil {
		release, err := s.admit.admit(r.Context())
		if err != nil {
			if errors.Is(err, errOverloaded) {
				// Shed, not failed: the client is told to back off for
				// roughly one coalescing window plus queue turnover.
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
				return
			}
			fail(err)
			return
		}
		defer release()
	}
	if s.InjectLatency > 0 {
		select {
		case <-time.After(s.InjectLatency):
		case <-r.Context().Done():
			fail(fmt.Errorf("serve: %w: %w", lamerr.ErrCancelled, r.Context().Err()))
			return
		}
	}
	var req predictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(fmt.Errorf("serve: %w: %w", lamerr.ErrBadRequest, err))
		return
	}
	if req.Model == "" {
		fail(fmt.Errorf("serve: %w: missing \"model\"", lamerr.ErrBadRequest))
		return
	}
	single := req.X != nil
	if single == (len(req.Batch) > 0) {
		fail(fmt.Errorf("serve: %w: exactly one of \"x\" and \"batch\" must be set", lamerr.ErrBadRequest))
		return
	}
	m, err := s.load(req.Model, req.Version)
	if err != nil {
		fail(err)
		return
	}
	resp := predictResponse{Model: m.Meta.Name, Version: m.Meta.Version}
	if single {
		var y float64
		if s.co != nil {
			s.Metrics.CoalescedRequests.Add(1)
			y, err = s.co.predict(r.Context(), m, req.X)
		} else {
			y, err = m.Predict(r.Context(), req.X)
		}
		if err != nil {
			fail(predictError(err))
			return
		}
		s.Metrics.PredictRows.Add(1)
		resp.Y = &y
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.Metrics.PredictBatchRequests.Add(1)
	buf := ml.GetScratch(len(req.Batch))
	defer ml.PutScratch(buf)
	if err := m.PredictBatchInto(r.Context(), req.Batch, *buf); err != nil {
		fail(predictError(err))
		return
	}
	s.Metrics.PredictRows.Add(uint64(len(req.Batch)))
	resp.YBatch = *buf
	writeJSON(w, http.StatusOK, resp)
}

// observeRequest carries ground-truth observations: each feature
// vector paired with the runtime actually measured for it. Exactly one
// of (X, Y) and (Batch, YBatch) must be set.
type observeRequest struct {
	// Model is the registry name. Required. Observations are always
	// scored against the latest served version.
	Model string `json:"model"`
	// X, Y is a single observation.
	X []float64 `json:"x,omitempty"`
	Y *float64  `json:"y,omitempty"`
	// Batch, YBatch is a batched observation stream.
	Batch  [][]float64 `json:"batch,omitempty"`
	YBatch []float64   `json:"y_batch,omitempty"`
}

// observeResponse reports what was ingested and the model's resulting
// adaptation state — enough for a replay client to watch the drift
// detector trip and the retrained version publish without polling a
// second endpoint.
type observeResponse struct {
	Model    string        `json:"model"`
	Version  int           `json:"version"`
	Ingested int           `json:"ingested"`
	Drift    online.Status `json:"drift"`
}

// handleObserve scores each observed feature vector with the current
// latest model (the "served prediction" half of the window's rolling
// accuracy) and feeds the (x, predicted, observed) triples to the
// online plane. Drift detection and any resulting background retrain
// happen inside the plane; the response carries the updated status.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	s.Metrics.ObserveRequests.Add(1)
	fail := func(err error) {
		s.Metrics.ObserveErrors.Add(1)
		writeError(w, err)
	}
	var req observeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(fmt.Errorf("serve: %w: %w", lamerr.ErrBadRequest, err))
		return
	}
	if req.Model == "" {
		fail(fmt.Errorf("serve: %w: missing \"model\"", lamerr.ErrBadRequest))
		return
	}
	single := req.X != nil || req.Y != nil
	batch := len(req.Batch) > 0 || len(req.YBatch) > 0
	if single == batch {
		fail(fmt.Errorf("serve: %w: exactly one of (\"x\",\"y\") and (\"batch\",\"y_batch\") must be set", lamerr.ErrBadRequest))
		return
	}
	var X [][]float64
	var obs []float64
	if single {
		if req.X == nil || req.Y == nil {
			fail(fmt.Errorf("serve: %w: a single observation needs both \"x\" and \"y\"", lamerr.ErrBadRequest))
			return
		}
		X, obs = [][]float64{req.X}, []float64{*req.Y}
	} else {
		if len(req.Batch) != len(req.YBatch) {
			fail(fmt.Errorf("serve: %w: %d feature rows but %d observed runtimes",
				lamerr.ErrBadRequest, len(req.Batch), len(req.YBatch)))
			return
		}
		X, obs = req.Batch, req.YBatch
	}
	for i, y := range obs {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			fail(fmt.Errorf("serve: %w: observation %d is not finite", lamerr.ErrBadRequest, i))
			return
		}
	}
	m, err := s.load(req.Model, 0)
	if err != nil {
		fail(err)
		return
	}
	buf := ml.GetScratch(len(X))
	defer ml.PutScratch(buf)
	if err := m.PredictBatchInto(r.Context(), X, *buf); err != nil {
		fail(predictError(err))
		return
	}
	status, err := s.online.Observe(m, X, *buf, obs)
	if err != nil {
		fail(err)
		return
	}
	s.Metrics.ObserveRows.Add(uint64(len(X)))
	writeJSON(w, http.StatusOK, observeResponse{
		Model:    m.Meta.Name,
		Version:  m.Meta.Version,
		Ingested: len(X),
		Drift:    status,
	})
}

// handleDrift reports the adaptation state of a model's latest served
// version.
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	m, err := s.load(r.PathValue("name"), 0)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.online.Status(m))
}
